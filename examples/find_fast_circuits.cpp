// find_fast_circuits: demonstrate §5.2 — use an all-pairs RTT dataset to
// find triangle-inequality-violation detours and long-but-fast circuits.
//
// Usage: find_fast_circuits [n_nodes]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "analysis/circuits.h"
#include "analysis/tiv.h"
#include "geo/cities.h"
#include "simnet/latency_model.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace ting;
  using namespace ting::analysis;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 50;

  simnet::LatencyModel model{simnet::LatencyConfig{}};
  Rng rng(7);
  std::vector<dir::Fingerprint> fps;
  std::vector<simnet::HostId> hosts;
  meas::RttMatrix matrix;
  for (std::uint32_t i = 0; i < n; ++i) {
    const geo::City& c = geo::sample_city_tor_weighted(rng);
    hosts.push_back(
        model.add_host(geo::jitter_location({c.lat, c.lon}, 15.0, rng)));
    crypto::X25519Key k{};
    k[0] = static_cast<std::uint8_t>(i);
    k[1] = static_cast<std::uint8_t>(i >> 8);
    fps.push_back(dir::Fingerprint::of_identity(k));
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      matrix.set(fps[i], fps[j],
                 model.rtt(hosts[i], hosts[j], simnet::Protocol::kTor).ms());

  // ---- Triangle inequality violations (§5.2.1) ---------------------------
  const auto tivs = find_all_tivs(matrix);
  const double pairs = static_cast<double>(n * (n - 1) / 2);
  std::printf("TIVs: %zu of %.0f pairs (%.0f%%) have a faster relay detour "
              "(paper: 69%%)\n",
              tivs.size(), pairs, 100.0 * static_cast<double>(tivs.size()) / pairs);
  std::vector<double> savings;
  for (const auto& t : tivs) savings.push_back(t.savings());
  if (!savings.empty()) {
    std::printf("  median saving %.1f%% (paper: 7.5%%); top decile >= %.1f%% "
                "(paper: 28%%)\n",
                100 * quantile(savings, 0.5), 100 * quantile(savings, 0.9));
    const auto best =
        *std::max_element(tivs.begin(), tivs.end(),
                          [](const TivFinding& a, const TivFinding& b) {
                            return a.savings() < b.savings();
                          });
    std::printf("  best detour: %.1fms direct -> %.1fms via $%s (%.0f%% faster)\n",
                best.direct_ms, best.detour_ms,
                best.detour.short_name().c_str(), 100 * best.savings());
  }

  // ---- Longer circuits need not be slower (§5.2.2) -----------------------
  std::printf("\ncircuits with end-to-end RTT in 200-300ms, by length "
              "(scaled to C(%zu, l)):\n", n);
  Rng crng(11);
  for (std::size_t len = 3; len <= 10; ++len) {
    const auto hist =
        circuit_rtt_histogram(matrix, fps, len, 10000, 50.0, 60, crng);
    double in_band = 0;
    for (std::size_t b = 4; b < 6; ++b) in_band += hist.scaled_counts[b];
    std::printf("  %2zu hops: %12.0f circuits\n", len, in_band);
  }
  std::printf("\nlonger circuits offer orders of magnitude more options at "
              "the same RTT,\nso length can buy anonymity without latency "
              "(Fig 16).\n");
  return 0;
}
