// churn_under_scan: run a parallel all-pairs scan while the consensus
// churns underneath it and relay links degrade — the conditions a real
// multi-day Ting scan of the live network faces (§4.2/§4.6).
//
// A fault plan removes relays from the directory mid-scan (they rejoin a
// couple of minutes later) and adds packet loss on every scan node. The
// scan classifies each failure (transient / permanent / churned), retries
// per class — churned pairs wait for a fresh consensus and re-resolve the
// relay before requeueing — and reports per-class counters plus the fault
// events that fired.
//
// Usage: churn_under_scan [n_relays] [pool_size]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "scenario/faults.h"
#include "scenario/testbed.h"
#include "simnet/fault_plan.h"
#include "ting/measurer.h"
#include "ting/rtt_matrix.h"
#include "ting/scheduler.h"

int main(int argc, char** argv) {
  using namespace ting;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20;
  const std::size_t pool_size =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
  if (n < 4 || n > 200 || pool_size < 1) {
    std::fprintf(stderr, "usage: churn_under_scan [n_relays 4-200] [pool]\n");
    return 2;
  }

  scenario::TestbedOptions options;
  options.seed = 77;
  scenario::Testbed world = scenario::live_tor(n, options);
  std::vector<dir::Fingerprint> nodes = world.all_fingerprints();

  // 5% loss everywhere, one relay crashing for a minute, and three
  // consensus leave/rejoin cycles starting 30 s into the scan.
  simnet::FaultPlan plan(world.net());
  const auto spec = scenario::FaultSpec::parse(
      "loss:*:0.05;crash:1:40:60;churn:3:30:90:150");
  scenario::apply_fault_spec(spec, world, nodes, plan, options.seed);

  meas::TingConfig config;
  config.samples = 10;
  std::vector<std::unique_ptr<meas::TingMeasurer>> measurers;
  std::vector<meas::TingMeasurer*> pool;
  for (meas::MeasurementHost* host : world.measurement_pool(pool_size)) {
    measurers.push_back(std::make_unique<meas::TingMeasurer>(*host, config));
    pool.push_back(measurers.back().get());
  }

  meas::RttMatrix matrix;
  meas::ParallelScanner scanner(pool, matrix);
  meas::ParallelScanOptions scan_options;
  scan_options.attempts_per_pair = 4;
  scan_options.live_consensus = &world.consensus();
  scan_options.fault_plan = &plan;
  scan_options.churn_requeue_delay = Duration::seconds(30);

  std::printf("scanning %zu relays (%zu pairs) with K=%zu under faults...\n",
              n, n * (n - 1) / 2, pool_size);
  const meas::ScanReport report = scanner.scan(nodes, scan_options);

  std::printf("\nfault events during the scan:\n");
  for (const auto& e : report.fault_events)
    std::printf("  @%7.1fs  %s\n", e.at.sec(), e.what.c_str());

  std::printf("\nmeasured %zu/%zu pairs in %.1f virtual hours "
              "(%zu retries, in-flight peak %zu)\n",
              report.measured, report.pairs_total,
              report.virtual_time.sec() / 3600.0, report.retries,
              report.max_in_flight);
  std::printf("failures by class: %zu transient, %zu permanent, %zu churned; "
              "%zu churned pairs re-resolved against the live consensus\n",
              report.failed_transient, report.failed_permanent,
              report.failed_churned, report.churn_reresolved);
  for (const auto& f : report.failed_pairs)
    std::printf("  failed [%s] %s <-> %s: %s\n",
                meas::to_string(f.error_class), f.a.short_name().c_str(),
                f.b.short_name().c_str(), f.error.c_str());

  // A churn-tolerant scan should still cover the overwhelming majority of
  // the matrix: relays that left the consensus came back and were
  // re-measured on a later attempt.
  const double coverage = static_cast<double>(report.measured) /
                          static_cast<double>(report.pairs_total);
  std::printf("\ncoverage: %.1f%%\n", 100.0 * coverage);
  return coverage >= 0.9 ? 0 : 1;
}
