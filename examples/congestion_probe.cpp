// congestion_probe: run the §5.1 attack end to end with no oracle.
//
// A victim builds a circuit and chats with a server the attacker controls.
// The attacker knows only the exit, its own RTT to the exit, and the
// end-to-end RTT. It orders candidates with Algorithm 1 over a Ting
// all-pairs matrix and tests each with a real Murdoch–Danezis congestion
// probe (flooding its own circuit through the candidate and watching the
// victim's latency) until the entry and middle relays are identified.
#include <cstdio>

#include "analysis/congestion.h"
#include "analysis/deanon.h"
#include "echo/echo.h"
#include "scenario/testbed.h"

int main() {
  using namespace ting;
  using namespace ting::analysis;

  scenario::TestbedOptions options;
  options.seed = 424;
  options.differential_fraction = 0;
  scenario::Testbed world = scenario::planetlab31(options);

  // ---- the victim -------------------------------------------------------
  const std::size_t entry = 4, middle = 9, exit = 13;
  bool built = false;
  tor::CircuitHandle handle = 0;
  world.ting().op().build_circuit(
      {world.fp(entry), world.fp(middle), world.fp(exit), world.ting().z_fp()},
      [&](tor::CircuitHandle h) {
        built = true;
        handle = h;
      },
      {});
  world.loop().run_while_waiting_for([&] { return built; },
                                     Duration::seconds(120));
  bool connected = false;
  auto victim = world.ting().op().open_stream(
      handle, world.ting().echo_endpoint(), [&] { connected = true; }, {});
  world.loop().run_while_waiting_for([&] { return connected; },
                                     Duration::seconds(120));
  std::printf("victim circuit up: entry=relay%zu middle=relay%zu "
              "exit=relay%zu\n", entry, middle, exit);

  // ---- the attacker's knowledge -----------------------------------------
  std::vector<std::size_t> universe{0, 2, 4, 6, 8, 9, 11, 13, 15, 18, 21, 25};
  DeanonWorld dw;
  meas::RttMatrix matrix;
  std::size_t exit_index = 0;
  for (std::size_t i = 0; i < universe.size(); ++i) {
    dw.nodes.push_back(world.fp(universe[i]));
    if (universe[i] == exit) exit_index = i;
  }
  for (std::size_t a = 0; a < dw.nodes.size(); ++a)
    for (std::size_t b = a + 1; b < dw.nodes.size(); ++b)
      matrix.set(dw.nodes[a], dw.nodes[b],
                 world.true_rtt_ms(dw.nodes[a], dw.nodes[b]));
  dw.matrix = &matrix;

  AttackerView view;
  view.exit = exit_index;
  view.exit_to_dst_ms = world.net()
                            .latency()
                            .rtt(world.host_of(world.fp(exit)),
                                 world.measurement_host(),
                                 simnet::Protocol::kTcp)
                            .ms();
  std::optional<double> e2e;
  echo::measure_stream_rtt(world.loop(), victim,
                           [&](std::optional<Duration> r) {
                             if (r.has_value()) e2e = r->ms();
                           });
  world.loop().run_while_waiting_for([&] { return e2e.has_value(); },
                                     Duration::seconds(60));
  view.e2e_ms = *e2e;
  std::printf("attacker view: exit known, r=%.1fms, Re2e=%.1fms, "
              "%zu candidates\n", view.exit_to_dst_ms, view.e2e_ms,
              dw.nodes.size() - 1);

  // ---- the attack --------------------------------------------------------
  CongestionProbeConfig pcfg;
  pcfg.rounds = 4;
  pcfg.burst_spacing = Duration::millis(1);
  std::size_t total_flood_cells = 0;
  Rng rng(9);
  const DeanonResult result = deanonymize_with_probe(
      dw, view, Strategy::kInformed, rng, [&](std::size_t node) {
        const CongestionVerdict v =
            congestion_probe(world.ting(), victim, dw.nodes[node], pcfg);
        total_flood_cells += v.flood_cells;
        std::printf("  probe relay $%s: %s (on %.1fms / off %.1fms, "
                    "d=%.2f)\n", dw.nodes[node].short_name().c_str(),
                    v.on_path ? "ON PATH" : "off path", v.mean_on_ms,
                    v.mean_off_ms, v.effect_size);
        return v.on_path;
      });

  if (!result.success) {
    std::printf("attack inconclusive\n");
    return 1;
  }
  std::printf("\ncircuit deanonymized with %d congestion probes "
              "(%.0f%% of candidates, %zu flood cells):\n",
              result.probes, 100 * result.fraction_probed,
              total_flood_cells);
  for (std::size_t idx : result.identified)
    std::printf("  identified: $%s (%s)\n",
                dw.nodes[idx].short_name().c_str(),
                universe[idx] == entry    ? "the entry — correct"
                : universe[idx] == middle ? "the middle — correct"
                                          : "WRONG");
  return 0;
}
