// measure_testbed: build an all-pairs RTT dataset over a testbed, persist
// it as CSV, and validate it against ground truth — the §4.2 workflow at
// example scale (12 relays so it finishes in a few seconds).
//
// Usage: measure_testbed [n_relays] [samples] [out.csv]
#include <cstdio>
#include <cstdlib>

#include "scenario/testbed.h"
#include "ting/measurer.h"
#include "ting/rtt_matrix.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace ting;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 12;
  const int samples = argc > 2 ? std::atoi(argv[2]) : 100;
  const char* out_path = argc > 3 ? argv[3] : "testbed_matrix.csv";
  if (n < 4 || n > 200 || samples < 1) {
    std::fprintf(stderr,
                 "usage: measure_testbed [n_relays 4-200] [samples] [out.csv]\n");
    return 2;
  }

  scenario::TestbedOptions options;
  options.seed = 99;
  scenario::Testbed world = scenario::live_tor(n, options);
  meas::TingConfig config;
  config.samples = samples;
  meas::TingMeasurer ting(world.ting(), config);

  meas::RttMatrix matrix;
  std::vector<double> measured, truth;
  std::printf("measuring %zu pairs at %d samples each...\n",
              n * (n - 1) / 2, samples);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const meas::PairResult r =
          ting.measure_blocking(world.fp(i), world.fp(j));
      if (!r.ok) {
        std::printf("  pair (%zu,%zu) failed: %s\n", i, j, r.error.c_str());
        continue;
      }
      matrix.set(world.fp(i), world.fp(j), r.rtt_ms,
                 world.loop().now(), samples);
      measured.push_back(r.rtt_ms);
      truth.push_back(world.true_rtt_ms(world.fp(i), world.fp(j)));
    }
  }

  matrix.save_csv(out_path);
  std::printf("saved %zu pair measurements to %s\n", matrix.size(), out_path);
  std::printf("spearman rank correlation vs ground truth: %.4f (paper: 0.997)\n",
              spearman(measured, truth));

  int within10 = 0;
  for (std::size_t k = 0; k < measured.size(); ++k)
    if (std::abs(measured[k] - truth[k]) / truth[k] <= 0.10) ++within10;
  std::printf("within 10%% of truth: %d/%zu pairs\n", within10,
              measured.size());

  // Demonstrate the cache round trip (§4.6: measure rarely, cache).
  const meas::RttMatrix reloaded = meas::RttMatrix::load_csv(out_path);
  std::printf("reloaded matrix: %zu pairs, mean RTT %.1f ms\n",
              reloaded.size(), reloaded.mean_rtt());
  return 0;
}
