// Quickstart: measure the RTT between two Tor relays with Ting.
//
// Builds a simulated PlanetLab-style world (31 relays + a measurement host
// running the echo pair, two local relays, an onion proxy and its control
// port), then runs the full §3.3 procedure for one pair: three circuits,
// min-of-samples, Eq. (4).
#include <cstdio>

#include "scenario/testbed.h"
#include "ting/measurer.h"

int main() {
  using namespace ting;

  // 1. A world to measure: the §4.1 ground-truth testbed.
  scenario::TestbedOptions options;
  options.seed = 2015;
  scenario::Testbed world = scenario::planetlab31(options);
  std::printf("testbed: %zu relays + measurement host %s\n",
              world.relay_count(),
              world.net().ip_of(world.measurement_host()).str().c_str());

  // 2. A measurer bound to the measurement host's controller session.
  meas::TingConfig config;
  config.samples = 200;  // the paper's default operating point (§4.4)
  meas::TingMeasurer ting(world.ting(), config);

  // 3. Pick a pair — say New York (relay 0) and Tokyo (relay 15).
  const dir::Fingerprint x = world.fp(0);
  const dir::Fingerprint y = world.fp(15);
  std::printf("measuring R(x, y) for x=$%s y=$%s ...\n",
              x.short_name().c_str(), y.short_name().c_str());

  const meas::PairResult result = ting.measure_blocking(x, y);
  if (!result.ok) {
    std::printf("measurement failed: %s\n", result.error.c_str());
    return 1;
  }

  // 4. Report, against the simulator's ground truth.
  std::printf("  circuit minima: C_xy=%.3fms  C_x=%.3fms  C_y=%.3fms\n",
              result.cxy.min_rtt_ms, result.cx.min_rtt_ms,
              result.cy.min_rtt_ms);
  std::printf("  Ting estimate R(x,y) = %.3f ms   (Eq. 4)\n", result.rtt_ms);
  std::printf("  ground truth         = %.3f ms\n", world.true_rtt_ms(x, y));
  std::printf("  virtual time spent   = %.1f s\n", result.wall_time.sec());
  return 0;
}
