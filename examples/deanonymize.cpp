// deanonymize: demonstrate §5.1 — how an all-pairs RTT dataset speeds up
// circuit deanonymization. Builds a 50-node world, simulates victim
// circuits, and compares the probe budgets of the three attacker
// strategies.
//
// Usage: deanonymize [runs]
#include <cstdio>
#include <cstdlib>

#include "analysis/deanon.h"
#include "geo/cities.h"
#include "simnet/latency_model.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace ting;
  using namespace ting::analysis;
  const int runs = argc > 1 ? std::atoi(argv[1]) : 300;

  // A 50-node all-pairs matrix with Tor-like geography (what Ting would
  // produce; see examples/measure_testbed.cpp for the measured version).
  simnet::LatencyModel model{simnet::LatencyConfig{}};
  Rng rng(50);
  std::vector<dir::Fingerprint> fps;
  std::vector<simnet::HostId> hosts;
  meas::RttMatrix matrix;
  for (std::uint32_t i = 0; i < 50; ++i) {
    const geo::City& c = geo::sample_city_tor_weighted(rng);
    hosts.push_back(
        model.add_host(geo::jitter_location({c.lat, c.lon}, 15.0, rng)));
    crypto::X25519Key k{};
    k[0] = static_cast<std::uint8_t>(i);
    fps.push_back(dir::Fingerprint::of_identity(k));
  }
  for (std::size_t i = 0; i < fps.size(); ++i)
    for (std::size_t j = i + 1; j < fps.size(); ++j)
      matrix.set(fps[i], fps[j],
                 model.rtt(hosts[i], hosts[j], simnet::Protocol::kTor).ms());

  DeanonWorld world;
  world.nodes = fps;
  world.matrix = &matrix;

  struct Row {
    const char* name;
    Strategy strategy;
  };
  const Row rows[] = {
      {"RTT-unaware brute force", Strategy::kRttUnaware},
      {"ignore too-large RTTs", Strategy::kIgnoreTooLarge},
      {"+ informed target selection", Strategy::kInformed},
  };

  std::printf("deanonymizing %d victim circuits per strategy "
              "(50 nodes, attacker = destination)\n\n", runs);
  std::printf("%-30s %10s %10s %10s\n", "strategy", "median", "p25", "p75");
  double unaware_median = 0;
  for (const Row& row : rows) {
    Rng circuit_rng(42), probe_rng(43);  // identical circuits per strategy
    std::vector<double> fractions;
    for (int i = 0; i < runs; ++i) {
      const CircuitInstance c = sample_circuit(world, circuit_rng, false);
      const DeanonResult r = deanonymize(world, c, row.strategy, probe_rng);
      fractions.push_back(r.fraction_probed);
    }
    const Summary s = summarize(fractions);
    if (row.strategy == Strategy::kRttUnaware) unaware_median = s.median;
    std::printf("%-30s %9.1f%% %9.1f%% %9.1f%%\n", row.name, 100 * s.median,
                100 * s.p25, 100 * s.p75);
    if (row.strategy == Strategy::kInformed && s.median > 0)
      std::printf("\nmedian speedup over RTT-unaware: %.2fx (paper: 1.5x)\n",
                  unaware_median / s.median);
  }
  return 0;
}
