#include "scenario/rdns.h"

#include <cstdio>

namespace ting::scenario {

namespace {

// US-style residential suffixes (ISP + regional qualifier).
const char* kUsResidential[] = {
    "hsd1.%s.comcast-sim.net", "res.spectrum-sim.com",
    "lightspeed.%sslca.sbcglobal-sim.net", "dsl.%s.frontier-sim.net",
    "fios.verizon-sim.net", "cable.rcn-sim.com",
};

// European residential patterns.
const char* kEuResidential[] = {
    "dip0.t-ipconnect-sim.de", "dynamic.kabel-deutschland-sim.de",
    "abo.wanadoo-sim.fr", "dsl.telefonica-sim.es",
    "cust.bredbandsbolaget-sim.se", "dynamic.ziggo-sim.nl",
    "plus.com-sim.uk", "clients.your-isp-sim.ch",
};

// Hosting providers (the paper names linode, amazonaws, ovh, cloudatcost,
// your-server.de, leaseweb, and Digital Ocean).
const char* kDatacenter[] = {
    "linode-sim.com",      "amazonaws-sim.com",  "ovh-sim.com",
    "cloudatcost-sim.com", "your-server-sim.de", "leaseweb-sim.com",
    "digitalocean-sim.com",
};

std::string low_state(Rng& rng) {
  static const char* states[] = {"ga", "ca", "wa", "tx", "il", "fl", "ny",
                                 "ma", "co", "or", "pa", "va"};
  return states[rng.next_below(std::size(states))];
}

}  // namespace

std::string make_rdns(IpAddr ip, HostClass cls, const std::string& country,
                      Rng& rng) {
  if (cls == HostClass::kNoRdns) return "";
  const std::uint32_t v = ip.value();
  char buf[128];
  if (cls == HostClass::kDatacenter) {
    const char* provider = kDatacenter[rng.next_below(std::size(kDatacenter))];
    std::snprintf(buf, sizeof(buf), "server-%u-%u.%s", (v >> 8) & 0xff,
                  v & 0xff, provider);
    return buf;
  }
  // Residential: octets or hex of the address + ISP suffix. The classifier
  // keys on numbers in the name plus a known access-network suffix.
  if (country == "US") {
    const char* pattern =
        kUsResidential[rng.next_below(std::size(kUsResidential))];
    char suffix[96];
    std::snprintf(suffix, sizeof(suffix), pattern, low_state(rng).c_str());
    std::snprintf(buf, sizeof(buf), "c-%u-%u-%u-%u.%s", (v >> 24) & 0xff,
                  (v >> 16) & 0xff, (v >> 8) & 0xff, v & 0xff, suffix);
    return buf;
  }
  const char* suffix = kEuResidential[rng.next_below(std::size(kEuResidential))];
  std::snprintf(buf, sizeof(buf), "p%08X.%s", v, suffix);
  return buf;
}

}  // namespace ting::scenario
