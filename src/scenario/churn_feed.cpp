#include "scenario/churn_feed.h"

#include "util/assert.h"
#include "util/rng.h"

namespace ting::scenario {

ChurnFeed::ChurnFeed(std::vector<dir::Fingerprint> relays,
                     ChurnFeedOptions options)
    : relays_(std::move(relays)),
      present_(relays_.size(), true),
      options_(options) {
  TING_CHECK_MSG(options_.churn_rate >= 0 && options_.churn_rate <= 1,
                 "churn rate must be a probability");
  TING_CHECK_MSG(options_.rejoin_rate >= 0 && options_.rejoin_rate <= 1,
                 "rejoin rate must be a probability");
  TING_CHECK_MSG(
      options_.initially_absent >= 0 && options_.initially_absent <= 1,
      "initial holdout must be a fraction");
}

std::vector<ChurnFeed::Event> ChurnFeed::advance(std::size_t epoch) {
  TING_CHECK_MSG(epoch == next_epoch_,
                 "churn feed must advance sequentially (expected epoch "
                     << next_epoch_ << ", got " << epoch << ")");
  ++next_epoch_;

  // One generator per epoch, derived from (seed, epoch) alone — a resumed
  // daemon replaying epochs 0..E reproduces the exact event history.
  Rng rng(mix64(options_.seed ^
                mix64(static_cast<std::uint64_t>(epoch) + 0x5eedULL)));
  std::vector<Event> events;

  if (epoch == 0 && options_.initially_absent > 0) {
    for (std::size_t i = 0; i < relays_.size(); ++i) {
      if (rng.chance(options_.initially_absent)) {
        present_[i] = false;
        events.push_back(Event{relays_[i], /*leave=*/true});
      }
    }
    return events;  // the holdout IS epoch 0's churn
  }

  for (std::size_t i = 0; i < relays_.size(); ++i) {
    if (present_[i]) {
      if (rng.chance(options_.churn_rate)) {
        present_[i] = false;
        events.push_back(Event{relays_[i], /*leave=*/true});
      }
    } else {
      if (rng.chance(options_.rejoin_rate)) {
        present_[i] = true;
        events.push_back(Event{relays_[i], /*leave=*/false});
      }
    }
  }
  return events;
}

std::vector<dir::Fingerprint> ChurnFeed::members() const {
  std::vector<dir::Fingerprint> out;
  out.reserve(relays_.size());
  for (std::size_t i = 0; i < relays_.size(); ++i)
    if (present_[i]) out.push_back(relays_[i]);
  return out;
}

std::size_t ChurnFeed::member_count() const {
  std::size_t n = 0;
  for (const bool p : present_)
    if (p) ++n;
  return n;
}

void ChurnApplier::apply(const std::vector<ChurnFeed::Event>& events,
                         const std::vector<meas::MeasurementHost*>& pool) {
  for (const ChurnFeed::Event& ev : events) {
    if (ev.leave) {
      // nullopt = already out of the consensus (a die: fault beat us to
      // it); stash nothing so the relay stays dead.
      if (auto desc = tb_.directory_remove(ev.relay))
        stash_.emplace(ev.relay, std::move(*desc));
    } else {
      const auto it = stash_.find(ev.relay);
      if (it == stash_.end()) continue;  // never saw it leave — nothing to do
      tb_.directory_restore(it->second);
      // The hosts' "next consensus fetch": without this the epoch's scan
      // would classify every pair of the returnee as churned first.
      for (meas::MeasurementHost* host : pool)
        if (host->op().consensus().find(ev.relay) == nullptr)
          host->op().add_descriptor(it->second);
      stash_.erase(it);
    }
  }
}

}  // namespace ting::scenario
