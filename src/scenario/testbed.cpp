#include "scenario/testbed.h"

#include "util/assert.h"

namespace ting::scenario {

std::vector<dir::Fingerprint> Testbed::all_fingerprints() const {
  std::vector<dir::Fingerprint> out;
  out.reserve(relays_.size());
  for (const auto& r : relays_) out.push_back(r->fingerprint());
  return out;
}

simnet::HostId Testbed::host_of(const dir::Fingerprint& fp) const {
  auto it = host_by_fp_.find(fp);
  TING_CHECK_MSG(it != host_by_fp_.end(), "unknown relay fingerprint");
  return it->second;
}

double Testbed::true_rtt_ms(const dir::Fingerprint& a,
                            const dir::Fingerprint& b) const {
  return net_->latency()
      .rtt(host_of(a), host_of(b), simnet::Protocol::kTcp)
      .ms();
}

double Testbed::ping_rtt_ms(const dir::Fingerprint& a,
                            const dir::Fingerprint& b) const {
  return net_->latency()
      .rtt(host_of(a), host_of(b), simnet::Protocol::kIcmp)
      .ms();
}

std::vector<meas::MeasurementHost*> Testbed::measurement_pool(
    std::size_t count) {
  TING_CHECK(count >= 1);
  while (pool_extras_.size() + 1 < count) {
    const std::size_t n = pool_extras_.size() + 1;
    // Same campus as the primary host; each pool member is nonetheless its
    // own network endpoint with its own relays, ports, and sessions.
    const IpAddr ip = ipalloc_->allocate("US", geo::HostKind::kDatacenter);
    const simnet::HostId host = net_->add_host(ip, {38.99, -76.94});
    meas::MeasurementHostConfig config;
    config.label = std::to_string(n);
    pool_extras_.push_back(std::make_unique<meas::MeasurementHost>(
        *net_, host, consensus_, config, seed_ + 2000 + 13 * n));
    pool_extras_.back()->start_blocking();
  }
  std::vector<meas::MeasurementHost*> pool;
  pool.push_back(ting_host_.get());
  for (std::size_t i = 0; i + 1 < count; ++i)
    pool.push_back(pool_extras_[i].get());
  return pool;
}

std::optional<dir::RelayDescriptor> Testbed::directory_remove(
    const dir::Fingerprint& fp) {
  const dir::RelayDescriptor* found = consensus_.find(fp);
  if (found == nullptr) return std::nullopt;
  dir::RelayDescriptor copy = *found;
  consensus_.remove(fp);
  if (ting_host_) ting_host_->op().remove_descriptor(fp);
  for (auto& extra : pool_extras_) extra->op().remove_descriptor(fp);
  return copy;
}

void Testbed::directory_restore(const dir::RelayDescriptor& desc) {
  consensus_.add(desc);
}

void Testbed::reseed_stochastics(std::uint64_t seed) {
  net_->reseed(mix64(seed ^ 0x6e6574));  // "net"
  for (std::size_t i = 0; i < relays_.size(); ++i)
    relays_[i]->reseed(mix64(seed + 1000 + i));
  if (ting_host_) ting_host_->reseed(mix64(seed ^ 0x74696e67));  // "ting"
  for (std::size_t n = 0; n < pool_extras_.size(); ++n)
    pool_extras_[n]->reseed(mix64(seed + 5000 + 13 * n));
}

Testbed testbed_from_topology(TopologyPtr topology) {
  TING_CHECK(topology != nullptr);
  const TestbedOptions& options = topology->options();
  Testbed tb;
  tb.loop_ = std::make_unique<simnet::EventLoop>();
  tb.net_ = std::make_unique<simnet::Network>(*tb.loop_, options.latency,
                                              options.seed);
  tb.seed_ = options.seed;
  // Copy the post-build allocator/geolocation state so on-demand
  // allocations (measurement-pool extras) continue identically per world.
  tb.ipalloc_ = std::make_unique<geo::IpAllocator>(
      topology->ipalloc_after_build());
  tb.geolocation_ = topology->geolocation();

  tb.measurement_host_ = tb.net_->add_host(topology->measurement_ip(),
                                           topology->measurement_location());
  for (const RelayBlueprint& bp : topology->relays()) {
    const simnet::HostId host =
        tb.net_->add_host(bp.ip, bp.location, bp.policy, bp.group_tag);
    tb.relays_.push_back(std::make_unique<tor::Relay>(
        *tb.net_, host, bp.config, bp.identity, bp.rng_after_keygen));
    tb.consensus_.add(tb.relays_.back()->descriptor());
    tb.host_by_fp_[bp.fingerprint] = host;
  }
  // Host ids [0, 1+relays) match the table's build order exactly; packet
  // deliveries now index into it instead of re-deriving geometry.
  tb.net_->latency().attach_base_table(topology->base_rtt_table());
  tb.topology_ = std::move(topology);

  tb.ting_host_ = std::make_unique<meas::MeasurementHost>(
      *tb.net_, tb.measurement_host_, tb.consensus_,
      meas::MeasurementHostConfig{}, options.seed + 999);
  if (options.start_measurement_host) tb.ting_host_->start_blocking();
  return tb;
}

Testbed build_testbed(const std::vector<RelaySpec>& specs,
                      const TestbedOptions& options) {
  return testbed_from_topology(SharedTopology::build(specs, options));
}

Testbed planetlab31(const TestbedOptions& options) {
  return testbed_from_topology(SharedTopology::planetlab31(options));
}

Testbed live_tor(std::size_t n, const TestbedOptions& options) {
  return testbed_from_topology(SharedTopology::live_tor(n, options));
}

}  // namespace ting::scenario
