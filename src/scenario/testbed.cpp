#include "scenario/testbed.h"

#include "util/assert.h"

namespace ting::scenario {

namespace {

/// Protocol-differential policy for an "anomalous" network (§3.2/§4.3):
/// ICMP and TCP each get their own bias, sometimes opposite in sign, and a
/// minority of networks additionally shape Tor itself.
simnet::NetworkPolicy anomalous_policy(Rng& rng) {
  simnet::NetworkPolicy p;
  // Magnitudes are a few milliseconds: glaring at forwarding-delay scale
  // (F is 0–3 ms, so Fig 5's estimates go visibly negative) yet only a few
  // percent of a typical end-to-end RTT (Fig 3 stays accurate, with the
  // <50 ms pairs providing the outlier tail the paper observes).
  const int kind = static_cast<int>(rng.next_below(4));
  switch (kind) {
    case 0:  // ICMP deprioritised (classic slow-path ping)
      p.icmp_extra_ms = rng.uniform(1.0, 4.0);
      p.tcp_extra_ms = rng.uniform(0.0, 0.5);
      break;
    case 1:  // Tor shaped: ping looks faster than Tor
      p.tor_extra_ms = rng.uniform(0.8, 3.0);
      break;
    case 2:  // TCP vs ICMP disparity both present
      p.icmp_extra_ms = rng.uniform(0.8, 3.5);
      p.tcp_extra_ms = rng.uniform(0.5, 2.5);
      break;
    default:  // mild mixed treatment
      p.icmp_extra_ms = rng.uniform(0.3, 1.5);
      p.tcp_extra_ms = rng.uniform(0.2, 1.0);
      p.tor_extra_ms = rng.uniform(0.0, 0.8);
      break;
  }
  return p;
}

const geo::City* city(const std::string& name) {
  for (const geo::City& c : geo::all_cities())
    if (name == c.name) return &c;
  TING_CHECK_MSG(false, "unknown city " << name);
}

}  // namespace

std::vector<dir::Fingerprint> Testbed::all_fingerprints() const {
  std::vector<dir::Fingerprint> out;
  out.reserve(relays_.size());
  for (const auto& r : relays_) out.push_back(r->fingerprint());
  return out;
}

simnet::HostId Testbed::host_of(const dir::Fingerprint& fp) const {
  auto it = host_by_fp_.find(fp);
  TING_CHECK_MSG(it != host_by_fp_.end(), "unknown relay fingerprint");
  return it->second;
}

double Testbed::true_rtt_ms(const dir::Fingerprint& a,
                            const dir::Fingerprint& b) const {
  return net_->latency()
      .rtt(host_of(a), host_of(b), simnet::Protocol::kTcp)
      .ms();
}

double Testbed::ping_rtt_ms(const dir::Fingerprint& a,
                            const dir::Fingerprint& b) const {
  return net_->latency()
      .rtt(host_of(a), host_of(b), simnet::Protocol::kIcmp)
      .ms();
}

std::vector<meas::MeasurementHost*> Testbed::measurement_pool(
    std::size_t count) {
  TING_CHECK(count >= 1);
  while (pool_extras_.size() + 1 < count) {
    const std::size_t n = pool_extras_.size() + 1;
    // Same campus as the primary host; each pool member is nonetheless its
    // own network endpoint with its own relays, ports, and sessions.
    const IpAddr ip = ipalloc_->allocate("US", geo::HostKind::kDatacenter);
    const simnet::HostId host = net_->add_host(ip, {38.99, -76.94});
    meas::MeasurementHostConfig config;
    config.label = std::to_string(n);
    pool_extras_.push_back(std::make_unique<meas::MeasurementHost>(
        *net_, host, consensus_, config, seed_ + 2000 + 13 * n));
    pool_extras_.back()->start_blocking();
  }
  std::vector<meas::MeasurementHost*> pool;
  pool.push_back(ting_host_.get());
  for (std::size_t i = 0; i + 1 < count; ++i)
    pool.push_back(pool_extras_[i].get());
  return pool;
}

std::optional<dir::RelayDescriptor> Testbed::directory_remove(
    const dir::Fingerprint& fp) {
  const dir::RelayDescriptor* found = consensus_.find(fp);
  if (found == nullptr) return std::nullopt;
  dir::RelayDescriptor copy = *found;
  consensus_.remove(fp);
  if (ting_host_) ting_host_->op().remove_descriptor(fp);
  for (auto& extra : pool_extras_) extra->op().remove_descriptor(fp);
  return copy;
}

void Testbed::directory_restore(const dir::RelayDescriptor& desc) {
  consensus_.add(desc);
}

void Testbed::reseed_stochastics(std::uint64_t seed) {
  net_->reseed(mix64(seed ^ 0x6e6574));  // "net"
  for (std::size_t i = 0; i < relays_.size(); ++i)
    relays_[i]->reseed(mix64(seed + 1000 + i));
  if (ting_host_) ting_host_->reseed(mix64(seed ^ 0x74696e67));  // "ting"
  for (std::size_t n = 0; n < pool_extras_.size(); ++n)
    pool_extras_[n]->reseed(mix64(seed + 5000 + 13 * n));
}

Testbed build_testbed(const std::vector<RelaySpec>& specs,
                      const TestbedOptions& options) {
  Testbed tb;
  tb.loop_ = std::make_unique<simnet::EventLoop>();
  tb.net_ = std::make_unique<simnet::Network>(*tb.loop_, options.latency,
                                              options.seed);
  tb.seed_ = options.seed;
  Rng rng(mix64(options.seed ^ 0xbedbed));
  tb.ipalloc_ = std::make_unique<geo::IpAllocator>(options.seed + 17);
  geo::IpAllocator& ipalloc = *tb.ipalloc_;

  // The measurement host: a well-connected host on a university network
  // (the paper ran from College Park, MD).
  const IpAddr meas_ip = ipalloc.allocate("US", geo::HostKind::kDatacenter);
  tb.measurement_host_ = tb.net_->add_host(meas_ip, {38.99, -76.94});

  std::uint64_t relay_seed = options.seed * 1000 + 5;
  for (const auto& spec : specs) {
    TING_CHECK(spec.city != nullptr);
    const geo::GeoPoint where =
        geo::jitter_location({spec.city->lat, spec.city->lon}, 15.0, rng);
    const IpAddr ip = ipalloc.allocate(spec.city->country_code, spec.kind);
    simnet::NetworkPolicy policy;
    if (rng.chance(options.differential_fraction))
      policy = anomalous_policy(rng);
    // Group tag = country, so cross-border inflation (when enabled) is
    // meaningful.
    const std::uint32_t country_tag = static_cast<std::uint32_t>(
        mix64(static_cast<std::uint64_t>(spec.city->country_code[0]) << 8 |
              static_cast<std::uint64_t>(spec.city->country_code[1])));
    const simnet::HostId host =
        tb.net_->add_host(ip, where, policy, country_tag);
    tb.geolocation_.register_host(ip, where);

    tor::RelayConfig rc;
    rc.nickname = "relay" + std::to_string(tb.relays_.size());
    rc.or_port = 9001;
    rc.bandwidth = spec.bandwidth;
    rc.flags = spec.flags;
    // Restrictive exit policy: exit only to addresses we control (§4.1) —
    // enough for the strawman baseline; Ting itself never exits through
    // measured relays.
    rc.exit_policy = dir::ExitPolicy::accept_only({meas_ip});
    rc.country_code = spec.city->country_code;
    rc.reverse_dns =
        make_rdns(ip, spec.host_class, spec.city->country_code, rng);
    // Forwarding-delay model: a per-relay base (0.05–1.5 ms; the paper's
    // observed minima sit in a 0–3 ms band) and a queueing tail that grows
    // with how busy (high-bandwidth) the relay is.
    rc.base_forward_ms = rng.uniform(0.05, 1.5);
    rc.queue_mean_ms = options.forward_queue_scale *
                       (rng.uniform(0.4, 1.2) +
                        2.0 * static_cast<double>(spec.bandwidth) / 20000.0);

    tb.relays_.push_back(
        std::make_unique<tor::Relay>(*tb.net_, host, rc, relay_seed++));
    tb.consensus_.add(tb.relays_.back()->descriptor());
    tb.host_by_fp_[tb.relays_.back()->fingerprint()] = host;
  }

  tb.ting_host_ = std::make_unique<meas::MeasurementHost>(
      *tb.net_, tb.measurement_host_, tb.consensus_,
      meas::MeasurementHostConfig{}, options.seed + 999);
  if (options.start_measurement_host) tb.ting_host_->start_blocking();
  return tb;
}

Testbed planetlab31(const TestbedOptions& options) {
  // §4.1's geography: 6 European countries, 9 US states, and at least one
  // relay in Asia, South America, Australia, and the Middle East — with the
  // US/EU concentration of the real Tor network. PlanetLab hosts are
  // universities/labs: datacenter-like addresses, no residential rDNS.
  static const char* kSites[31] = {
      // 9 distinct US states.
      "New York", "San Francisco", "Seattle", "Chicago", "Houston", "Miami",
      "Boston", "Denver", "Atlanta",
      // 6 European countries.
      "London", "Paris", "Frankfurt", "Amsterdam", "Stockholm", "Zurich",
      // Required regions.
      "Tokyo", "Sao Paulo", "Sydney", "Tel Aviv",
      // Remaining: the US/EU concentration.
      "Los Angeles", "Washington", "Philadelphia", "Portland", "Austin",
      "Berlin", "Munich", "Rotterdam", "Manchester", "Marseille", "Vienna",
      "Pittsburgh"};

  Rng rng(options.seed + 31);
  std::vector<RelaySpec> specs;
  for (const char* site : kSites) {
    RelaySpec s;
    s.city = city(site);
    s.kind = geo::HostKind::kDatacenter;
    s.bandwidth = static_cast<std::uint32_t>(rng.uniform_int(400, 5000));
    s.flags = dir::kFlagRunning | dir::kFlagValid | dir::kFlagFast |
              dir::kFlagGuard;
    s.host_class = HostClass::kDatacenter;
    specs.push_back(s);
  }
  return build_testbed(specs, options);
}

Testbed live_tor(std::size_t n, const TestbedOptions& options) {
  Rng rng(options.seed + 7);
  std::vector<RelaySpec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    RelaySpec s;
    s.city = &geo::sample_city_tor_weighted(rng);
    // §5.3: ~61% of named relays are residential; ~17% have no rDNS at all;
    // the rest are in datacenters.
    const double u = rng.uniform();
    if (u < 0.17) {
      s.host_class = HostClass::kNoRdns;
      s.kind = rng.chance(0.5) ? geo::HostKind::kResidential
                               : geo::HostKind::kDatacenter;
    } else if (u < 0.17 + 0.51) {
      s.host_class = HostClass::kResidential;
      s.kind = geo::HostKind::kResidential;
    } else {
      s.host_class = HostClass::kDatacenter;
      s.kind = geo::HostKind::kDatacenter;
    }
    // Tor's long-tailed bandwidth distribution.
    s.bandwidth = static_cast<std::uint32_t>(
        std::min(50000.0, 20.0 + rng.lognormal(6.0, 1.4)));
    s.flags = dir::kFlagRunning | dir::kFlagValid;
    if (s.bandwidth > 300) s.flags |= dir::kFlagFast;
    if (s.bandwidth > 1200 && rng.chance(0.6))
      s.flags |= dir::kFlagGuard | dir::kFlagStable;
    specs.push_back(s);
  }
  return build_testbed(specs, options);
}

}  // namespace ting::scenario
