// Fault-spec grammar for `ting scan --faults` and the examples: a compact
// text form describing a FaultPlan, so CLI runs can inject the failure
// modes a live scan sees without writing code.
//
// Grammar (clauses separated by ';', fields by ':'):
//
//   loss:<target>:<prob>[:<start_s>:<dur_s>]
//       Packet loss with probability <prob> on the target's access link.
//       Without a window it applies immediately and permanently.
//   degrade:<target>:<extra_ms>:<jitter_ms>[:<start_s>:<dur_s>]
//       Link degradation: fixed extra one-way latency plus exponential
//       jitter with the given mean.
//   crash:<target>:<start_s>:<dur_s>
//       Host down for the window (dur_s 0 = never recovers).
//   churn:<events>:<start_s>:<period_s>:<down_s>
//       <events> scripted consensus leave/rejoin cycles over the scan
//       nodes, starting at <start_s>, one every <period_s>, each relay
//       rejoining <down_s> after it leaves.
//   die:<target>[:<start_s>]
//       Permanent consensus removal — the relay leaves and never rejoins.
//       With start 0 (the default) it is removed before the scan's
//       consensus snapshot, so its failures classify as permanent (the
//       scenario that trips the relay quarantine breaker); with a later
//       start it vanishes mid-scan like unrecovered churn.
//
//   <target> is a scan-node index, or '*' for every scan node.
//
// Example: "loss:*:0.05;crash:3:30:60;churn:2:10:45:90;die:5"
#pragma once

#include <string>
#include <vector>

#include "dir/fingerprint.h"
#include "simnet/fault_plan.h"
#include "util/time.h"

namespace ting::scenario {

class Testbed;

struct FaultClause {
  enum class Kind { kLoss, kDegrade, kCrash, kChurn, kDie };
  Kind kind = Kind::kLoss;
  int target = -1;  ///< scan-node index; -1 = '*' (all scan nodes)
  double prob = 0;                      ///< loss
  double extra_ms = 0, jitter_ms = 0;   ///< degrade
  double start_s = 0, duration_s = 0;   ///< window (duration 0 = forever)
  int events = 0;                       ///< churn: leave/rejoin cycles
  double period_s = 0, down_s = 0;      ///< churn cadence and downtime
};

struct FaultSpec {
  std::vector<FaultClause> clauses;

  /// Parse the grammar above; throws CheckError on malformed input.
  static FaultSpec parse(const std::string& text);
};

/// Instantiate a parsed spec against a testbed: loss/degrade/crash clauses
/// resolve their targets to the scan nodes' hosts and are scheduled on the
/// plan; churn clauses become directory_remove/directory_restore events
/// (schedule drawn from make_scan_churn with `seed`). The testbed must
/// outlive the plan's scheduled events.
void apply_fault_spec(const FaultSpec& spec, Testbed& tb,
                      const std::vector<dir::Fingerprint>& scan_nodes,
                      simnet::FaultPlan& plan, std::uint64_t seed = 7);

}  // namespace ting::scenario
