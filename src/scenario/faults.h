// Fault-spec grammar for `ting scan --faults`, scenario files, and the
// examples: a compact text form describing a FaultPlan, so CLI runs can
// inject the failure modes a live scan sees without writing code.
//
// Grammar (clauses separated by ';', fields by ':'):
//
//   loss:<target>:<prob>[:<start_s>:<dur_s>]
//       Packet loss with probability <prob> on the target's access link.
//       Without a window it applies immediately and permanently.
//   degrade:<target>:<extra_ms>:<jitter_ms>[:<start_s>:<dur_s>]
//       Link degradation: fixed extra one-way latency plus exponential
//       jitter with the given mean.
//   crash:<target>:<start_s>:<dur_s>
//       Host down for the window (dur_s 0 = never recovers).
//   churn:<events>:<start_s>:<period_s>:<down_s>
//       <events> scripted consensus leave/rejoin cycles over the scan
//       nodes, starting at <start_s>, one every <period_s>, each relay
//       rejoining <down_s> after it leaves.
//   die:<target>[:<start_s>]
//       Permanent consensus removal — the relay leaves and never rejoins.
//       With start 0 (the default) it is removed before the scan's
//       consensus snapshot, so its failures classify as permanent (the
//       scenario that trips the relay quarantine breaker); with a later
//       start it vanishes mid-scan like unrecovered churn.
//
// Timeline-driven clauses (compiled down to sequences of the windows
// above — the scenario DSL's dynamics layer):
//
//   diurnal:<target>:<peak_ms>:<period_s>[:<steps>:<periods>]
//       A diurnal load curve: extra one-way latency following a raised
//       cosine (0 at phase 0, <peak_ms> at half period), approximated by
//       <steps> consecutive degrade windows per period [8], repeated for
//       <periods> periods [4], starting at time 0.
//   flash:<target>:<start_s>:<dur_s>:<extra_ms>:<loss_prob>
//       A flash crowd: a sudden load spike on the target's link for the
//       window — degraded latency (<extra_ms> one-way, jitter a quarter of
//       it) plus packet loss with probability <loss_prob>.
//
//   <target> is a scan-node index, or '*' for every scan node.
//
// Example: "loss:*:0.05;crash:3:30:60;churn:2:10:45:90;die:5"
//
// FaultSpec::to_string() emits the canonical form of a parsed spec —
// parse(to_string(s)) reproduces s exactly (doubles are printed with the
// shortest representation that round-trips), so scenario files and the CLI
// can echo the compiled fault plan.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dir/fingerprint.h"
#include "simnet/fault_plan.h"
#include "util/time.h"

namespace ting::scenario {

class Testbed;

struct FaultClause {
  enum class Kind { kLoss, kDegrade, kCrash, kChurn, kDie, kDiurnal, kFlash };
  Kind kind = Kind::kLoss;
  int target = -1;  ///< scan-node index; -1 = '*' (all scan nodes)
  double prob = 0;                      ///< loss / flash loss probability
  double extra_ms = 0, jitter_ms = 0;   ///< degrade; diurnal/flash peak
  double start_s = 0, duration_s = 0;   ///< window (duration 0 = forever)
  int events = 0;                       ///< churn: leave/rejoin cycles
  double period_s = 0, down_s = 0;      ///< churn cadence and downtime
  int steps = 0;    ///< diurnal: degrade windows per period (0 = default 8)
  int periods = 0;  ///< diurnal: periods scheduled (0 = default 4)

  bool operator==(const FaultClause&) const = default;

  /// Canonical single-clause text (the grammar above, minimal arity).
  std::string to_string() const;
};

struct FaultSpec {
  std::vector<FaultClause> clauses;

  bool operator==(const FaultSpec&) const = default;

  /// Parse the grammar above; throws CheckError on malformed input. Errors
  /// name the offending clause (1-based index and text) and field.
  static FaultSpec parse(const std::string& text);

  /// Canonical ';'-joined text; parse(to_string()) round-trips exactly.
  std::string to_string() const;

  /// Check every clause's target index against the scan-node count,
  /// throwing CheckError (with the clause index) on the first out-of-range
  /// target. apply_fault_spec runs this before touching the plan, so a bad
  /// spec never half-applies; callers that compile specs ahead of time
  /// (scenario files) call it directly for early diagnostics.
  void validate_targets(std::size_t node_count) const;
};

/// Instantiate a parsed spec against a testbed: loss/degrade/crash clauses
/// resolve their targets to the scan nodes' hosts and are scheduled on the
/// plan; diurnal/flash clauses expand into sequences of such windows; churn
/// clauses become directory_remove/directory_restore events (schedule drawn
/// from make_scan_churn with `seed`). Validates every clause target against
/// `scan_nodes` up front, so a bad spec throws CheckError before any fault
/// is scheduled. The testbed must outlive the plan's scheduled events.
void apply_fault_spec(const FaultSpec& spec, Testbed& tb,
                      const std::vector<dir::Fingerprint>& scan_nodes,
                      simnet::FaultPlan& plan, std::uint64_t seed = 7);

}  // namespace ting::scenario
