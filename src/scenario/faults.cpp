#include "scenario/faults.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "scenario/testbed.h"
#include "scenario/timeline.h"
#include "util/assert.h"
#include "util/bytes.h"

namespace ting::scenario {

namespace {

/// Context for parse errors: which clause (1-based) and which field failed.
struct ClauseContext {
  std::size_t index = 0;     ///< 1-based position in the spec
  std::string text;          ///< the raw clause
  std::string where() const {
    std::ostringstream os;
    os << "fault clause #" << index << " (`" << text << "`)";
    return os.str();
  }
};

double parse_number(const std::string& field, const char* field_name,
                    const ClauseContext& ctx) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(field, &pos);
    TING_CHECK_MSG(pos == field.size() && std::isfinite(v),
                   ctx.where() << ": field <" << field_name << "> is not a "
                               << "finite number: '" << field << "'");
    return v;
  } catch (const std::invalid_argument&) {
  } catch (const std::out_of_range&) {
  }
  TING_CHECK_MSG(false, ctx.where() << ": field <" << field_name
                                    << "> is not a finite number: '" << field
                                    << "'");
}

int parse_count(const std::string& field, const char* field_name,
                const ClauseContext& ctx) {
  const double v = parse_number(field, field_name, ctx);
  const int n = static_cast<int>(v);
  TING_CHECK_MSG(n >= 0 && static_cast<double>(n) == v,
                 ctx.where() << ": field <" << field_name
                             << "> must be a non-negative integer: '" << field
                             << "'");
  return n;
}

int parse_target(const std::string& field, const ClauseContext& ctx) {
  if (field == "*") return -1;
  return parse_count(field, "target", ctx);
}

FaultClause parse_clause(const ClauseContext& ctx) {
  const auto fields = split(ctx.text, ':');
  TING_CHECK_MSG(!fields.empty(), ctx.where() << ": empty fault clause");
  const std::string& kind = fields[0];
  FaultClause c;
  if (kind == "loss") {
    TING_CHECK_MSG(fields.size() == 3 || fields.size() == 5,
                   ctx.where()
                       << ": loss:<target>:<prob>[:<start_s>:<dur_s>]");
    c.kind = FaultClause::Kind::kLoss;
    c.target = parse_target(fields[1], ctx);
    c.prob = parse_number(fields[2], "prob", ctx);
    TING_CHECK_MSG(c.prob >= 0 && c.prob <= 1,
                   ctx.where() << ": field <prob> out of [0, 1]");
    if (fields.size() == 5) {
      c.start_s = parse_number(fields[3], "start_s", ctx);
      c.duration_s = parse_number(fields[4], "dur_s", ctx);
    }
  } else if (kind == "degrade") {
    TING_CHECK_MSG(
        fields.size() == 4 || fields.size() == 6,
        ctx.where()
            << ": degrade:<target>:<extra_ms>:<jitter_ms>[:<start_s>:<dur_s>]");
    c.kind = FaultClause::Kind::kDegrade;
    c.target = parse_target(fields[1], ctx);
    c.extra_ms = parse_number(fields[2], "extra_ms", ctx);
    c.jitter_ms = parse_number(fields[3], "jitter_ms", ctx);
    TING_CHECK_MSG(c.extra_ms >= 0 && c.jitter_ms >= 0,
                   ctx.where() << ": negative <extra_ms>/<jitter_ms>");
    if (fields.size() == 6) {
      c.start_s = parse_number(fields[4], "start_s", ctx);
      c.duration_s = parse_number(fields[5], "dur_s", ctx);
    }
  } else if (kind == "crash") {
    TING_CHECK_MSG(fields.size() == 4,
                   ctx.where() << ": crash:<target>:<start_s>:<dur_s>");
    c.kind = FaultClause::Kind::kCrash;
    c.target = parse_target(fields[1], ctx);
    c.start_s = parse_number(fields[2], "start_s", ctx);
    c.duration_s = parse_number(fields[3], "dur_s", ctx);
  } else if (kind == "churn") {
    TING_CHECK_MSG(fields.size() == 5,
                   ctx.where()
                       << ": churn:<events>:<start_s>:<period_s>:<down_s>");
    c.kind = FaultClause::Kind::kChurn;
    c.events = parse_count(fields[1], "events", ctx);
    c.start_s = parse_number(fields[2], "start_s", ctx);
    c.period_s = parse_number(fields[3], "period_s", ctx);
    c.down_s = parse_number(fields[4], "down_s", ctx);
    TING_CHECK_MSG(c.events >= 1 && c.period_s > 0 && c.down_s > 0,
                   ctx.where()
                       << ": churn needs events >= 1, period > 0, down > 0");
  } else if (kind == "die") {
    TING_CHECK_MSG(fields.size() == 2 || fields.size() == 3,
                   ctx.where() << ": die:<target>[:<start_s>]");
    c.kind = FaultClause::Kind::kDie;
    c.target = parse_target(fields[1], ctx);
    if (fields.size() == 3) c.start_s = parse_number(fields[2], "start_s", ctx);
  } else if (kind == "diurnal") {
    TING_CHECK_MSG(
        fields.size() == 4 || fields.size() == 6,
        ctx.where()
            << ": diurnal:<target>:<peak_ms>:<period_s>[:<steps>:<periods>]");
    c.kind = FaultClause::Kind::kDiurnal;
    c.target = parse_target(fields[1], ctx);
    c.extra_ms = parse_number(fields[2], "peak_ms", ctx);
    c.period_s = parse_number(fields[3], "period_s", ctx);
    TING_CHECK_MSG(c.extra_ms >= 0 && c.period_s > 0,
                   ctx.where() << ": diurnal needs peak >= 0, period > 0");
    if (fields.size() == 6) {
      c.steps = parse_count(fields[4], "steps", ctx);
      c.periods = parse_count(fields[5], "periods", ctx);
      TING_CHECK_MSG(c.steps >= 2 && c.periods >= 1,
                     ctx.where()
                         << ": diurnal needs steps >= 2, periods >= 1");
    }
  } else if (kind == "flash") {
    TING_CHECK_MSG(
        fields.size() == 6,
        ctx.where()
            << ": flash:<target>:<start_s>:<dur_s>:<extra_ms>:<loss_prob>");
    c.kind = FaultClause::Kind::kFlash;
    c.target = parse_target(fields[1], ctx);
    c.start_s = parse_number(fields[2], "start_s", ctx);
    c.duration_s = parse_number(fields[3], "dur_s", ctx);
    c.extra_ms = parse_number(fields[4], "extra_ms", ctx);
    c.prob = parse_number(fields[5], "loss_prob", ctx);
    TING_CHECK_MSG(c.duration_s > 0,
                   ctx.where() << ": flash needs dur_s > 0");
    TING_CHECK_MSG(c.extra_ms >= 0, ctx.where() << ": negative <extra_ms>");
    TING_CHECK_MSG(c.prob >= 0 && c.prob <= 1,
                   ctx.where() << ": field <loss_prob> out of [0, 1]");
  } else {
    TING_CHECK_MSG(false,
                   ctx.where() << ": unknown fault kind '" << kind << "'");
  }
  TING_CHECK_MSG(c.start_s >= 0 && c.duration_s >= 0,
                 ctx.where() << ": negative fault window");
  return c;
}

/// Shortest decimal representation that parses back to exactly `v`;
/// integral values print as plain integers ("30", not "3e+01").
std::string fmt_num(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15)
    return std::to_string(static_cast<long long>(v));
  char buf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::stod(buf) == v) return buf;
  }
  return buf;  // unreachable: 17 significant digits round-trip any double
}

std::string fmt_target(int target) {
  return target < 0 ? "*" : std::to_string(target);
}

}  // namespace

std::string FaultClause::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kLoss:
      os << "loss:" << fmt_target(target) << ':' << fmt_num(prob);
      if (start_s != 0 || duration_s != 0)
        os << ':' << fmt_num(start_s) << ':' << fmt_num(duration_s);
      break;
    case Kind::kDegrade:
      os << "degrade:" << fmt_target(target) << ':' << fmt_num(extra_ms)
         << ':' << fmt_num(jitter_ms);
      if (start_s != 0 || duration_s != 0)
        os << ':' << fmt_num(start_s) << ':' << fmt_num(duration_s);
      break;
    case Kind::kCrash:
      os << "crash:" << fmt_target(target) << ':' << fmt_num(start_s) << ':'
         << fmt_num(duration_s);
      break;
    case Kind::kChurn:
      os << "churn:" << events << ':' << fmt_num(start_s) << ':'
         << fmt_num(period_s) << ':' << fmt_num(down_s);
      break;
    case Kind::kDie:
      os << "die:" << fmt_target(target);
      if (start_s != 0) os << ':' << fmt_num(start_s);
      break;
    case Kind::kDiurnal:
      os << "diurnal:" << fmt_target(target) << ':' << fmt_num(extra_ms)
         << ':' << fmt_num(period_s);
      if (steps != 0 || periods != 0) os << ':' << steps << ':' << periods;
      break;
    case Kind::kFlash:
      os << "flash:" << fmt_target(target) << ':' << fmt_num(start_s) << ':'
         << fmt_num(duration_s) << ':' << fmt_num(extra_ms) << ':'
         << fmt_num(prob);
      break;
  }
  return os.str();
}

FaultSpec FaultSpec::parse(const std::string& text) {
  FaultSpec spec;
  std::size_t index = 0;
  for (const std::string& raw : split(text, ';')) {
    const std::string clause = trim(raw);
    ++index;
    if (clause.empty()) continue;
    spec.clauses.push_back(parse_clause(ClauseContext{index, clause}));
  }
  TING_CHECK_MSG(!spec.clauses.empty(), "empty fault spec");
  return spec;
}

std::string FaultSpec::to_string() const {
  std::string out;
  for (const FaultClause& c : clauses) {
    if (!out.empty()) out += ';';
    out += c.to_string();
  }
  return out;
}

void FaultSpec::validate_targets(std::size_t node_count) const {
  for (std::size_t i = 0; i < clauses.size(); ++i) {
    const FaultClause& c = clauses[i];
    if (c.kind == FaultClause::Kind::kChurn) continue;  // no target field
    if (c.target < 0) continue;                         // '*'
    TING_CHECK_MSG(static_cast<std::size_t>(c.target) < node_count,
                   "fault clause #" << (i + 1) << " (`" << c.to_string()
                                    << "`): target " << c.target
                                    << " out of range (scan has " << node_count
                                    << " nodes)");
  }
}

void apply_fault_spec(const FaultSpec& spec, Testbed& tb,
                      const std::vector<dir::Fingerprint>& scan_nodes,
                      simnet::FaultPlan& plan, std::uint64_t seed) {
  // All-or-nothing: reject any out-of-range target before the first clause
  // schedules anything, so a bad spec can't leave a half-applied plan.
  spec.validate_targets(scan_nodes.size());

  const auto targets_of = [&](const FaultClause& c) {
    std::vector<simnet::HostId> hosts;
    if (c.target < 0) {
      for (const dir::Fingerprint& fp : scan_nodes)
        hosts.push_back(tb.host_of(fp));
    } else {
      hosts.push_back(tb.host_of(scan_nodes[static_cast<std::size_t>(c.target)]));
    }
    return hosts;
  };

  for (const FaultClause& c : spec.clauses) {
    switch (c.kind) {
      case FaultClause::Kind::kLoss:
        for (const simnet::HostId h : targets_of(c))
          plan.loss_window(h, Duration::from_ms(c.start_s * 1000.0),
                           Duration::from_ms(c.duration_s * 1000.0), c.prob);
        break;
      case FaultClause::Kind::kDegrade:
        for (const simnet::HostId h : targets_of(c))
          plan.degrade_window(h, Duration::from_ms(c.start_s * 1000.0),
                              Duration::from_ms(c.duration_s * 1000.0),
                              Duration::from_ms(c.extra_ms),
                              Duration::from_ms(c.jitter_ms));
        break;
      case FaultClause::Kind::kCrash:
        for (const simnet::HostId h : targets_of(c))
          plan.crash_window(h, Duration::from_ms(c.start_s * 1000.0),
                            Duration::from_ms(c.duration_s * 1000.0));
        break;
      case FaultClause::Kind::kDiurnal: {
        // A raised-cosine load curve approximated by stepwise degrade
        // windows: step s of period p covers
        //   [p*period + s*step_s, ... + step_s)
        // at the curve's midpoint amplitude. Windows are shortened by 1 ms
        // so a step's clear event never races the next step's apply.
        const int steps = c.steps > 0 ? c.steps : 8;
        const int periods = c.periods > 0 ? c.periods : 4;
        const double step_s = c.period_s / steps;
        const double window_ms = std::max(1.0, step_s * 1000.0 - 1.0);
        for (int p = 0; p < periods; ++p) {
          for (int s = 0; s < steps; ++s) {
            const double phase = (s + 0.5) / steps;
            const double extra =
                c.extra_ms * 0.5 * (1.0 - std::cos(2.0 * M_PI * phase));
            if (extra < 0.01) continue;  // curve trough: no measurable load
            const double start_ms =
                c.start_s * 1000.0 + (p * steps + s) * step_s * 1000.0;
            for (const simnet::HostId h : targets_of(c))
              plan.degrade_window(h, Duration::from_ms(start_ms),
                                  Duration::from_ms(window_ms),
                                  Duration::from_ms(extra),
                                  Duration::from_ms(extra / 4.0));
          }
        }
        break;
      }
      case FaultClause::Kind::kFlash:
        for (const simnet::HostId h : targets_of(c)) {
          plan.degrade_window(h, Duration::from_ms(c.start_s * 1000.0),
                              Duration::from_ms(c.duration_s * 1000.0),
                              Duration::from_ms(c.extra_ms),
                              Duration::from_ms(c.extra_ms / 4.0));
          if (c.prob > 0)
            plan.loss_window(h, Duration::from_ms(c.start_s * 1000.0),
                             Duration::from_ms(c.duration_s * 1000.0), c.prob);
        }
        break;
      case FaultClause::Kind::kDie: {
        std::vector<dir::Fingerprint> fps;
        if (c.target < 0) {
          fps = scan_nodes;
        } else {
          fps.push_back(scan_nodes[static_cast<std::size_t>(c.target)]);
        }
        for (const dir::Fingerprint& fp : fps) {
          if (c.start_s <= 0) {
            // Immediate removal, before the scan takes its consensus
            // snapshot: the relay is never-known, so its failures classify
            // permanent (the quarantine-breaker scenario).
            tb.directory_remove(fp);
          } else {
            plan.at(Duration::from_ms(c.start_s * 1000.0),
                    "consensus: x" + fp.short_name(),
                    [&tb, fp]() { tb.directory_remove(fp); });
          }
        }
        break;
      }
      case FaultClause::Kind::kChurn: {
        ScanChurnOptions churn;
        churn.seed = seed;
        churn.start = Duration::from_ms(c.start_s * 1000.0);
        churn.period = Duration::from_ms(c.period_s * 1000.0);
        churn.events = static_cast<std::size_t>(c.events);
        churn.down_for = Duration::from_ms(c.down_s * 1000.0);
        // The removed descriptor is stashed per node so the paired rejoin
        // event can restore exactly what left.
        std::map<dir::Fingerprint,
                 std::shared_ptr<std::optional<dir::RelayDescriptor>>>
            stashes;
        for (const ChurnEvent& e : make_scan_churn(scan_nodes.size(), churn)) {
          const dir::Fingerprint fp = scan_nodes.at(e.node_index);
          if (e.leave) {
            auto stash =
                std::make_shared<std::optional<dir::RelayDescriptor>>();
            plan.at(e.at, "consensus: -" + fp.short_name(),
                    [&tb, fp, stash]() { *stash = tb.directory_remove(fp); });
            stashes[fp] = stash;
          } else {
            auto it = stashes.find(fp);
            TING_CHECK(it != stashes.end());
            auto stash = it->second;
            plan.at(e.at, "consensus: +" + fp.short_name(), [&tb, stash]() {
              if (stash->has_value()) tb.directory_restore(**stash);
            });
          }
        }
        break;
      }
    }
  }
}

}  // namespace ting::scenario
