#include "scenario/faults.h"

#include <map>
#include <memory>
#include <stdexcept>

#include "scenario/testbed.h"
#include "scenario/timeline.h"
#include "util/assert.h"
#include "util/bytes.h"

namespace ting::scenario {

namespace {

double parse_number(const std::string& field, const std::string& clause) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(field, &pos);
    TING_CHECK_MSG(pos == field.size(),
                   "bad number '" << field << "' in fault clause: " << clause);
    return v;
  } catch (const std::invalid_argument&) {
  } catch (const std::out_of_range&) {
  }
  TING_CHECK_MSG(false,
                 "bad number '" << field << "' in fault clause: " << clause);
}

int parse_target(const std::string& field, const std::string& clause) {
  if (field == "*") return -1;
  const double v = parse_number(field, clause);
  const int idx = static_cast<int>(v);
  TING_CHECK_MSG(idx >= 0 && static_cast<double>(idx) == v,
                 "bad target '" << field << "' in fault clause: " << clause);
  return idx;
}

FaultClause parse_clause(const std::string& text) {
  const auto fields = split(text, ':');
  TING_CHECK_MSG(!fields.empty(), "empty fault clause");
  const std::string& kind = fields[0];
  FaultClause c;
  if (kind == "loss") {
    TING_CHECK_MSG(fields.size() == 3 || fields.size() == 5,
                   "loss:<target>:<prob>[:<start_s>:<dur_s>] — got: " << text);
    c.kind = FaultClause::Kind::kLoss;
    c.target = parse_target(fields[1], text);
    c.prob = parse_number(fields[2], text);
    TING_CHECK_MSG(c.prob >= 0 && c.prob <= 1,
                   "loss probability out of [0, 1]: " << text);
    if (fields.size() == 5) {
      c.start_s = parse_number(fields[3], text);
      c.duration_s = parse_number(fields[4], text);
    }
  } else if (kind == "degrade") {
    TING_CHECK_MSG(
        fields.size() == 4 || fields.size() == 6,
        "degrade:<target>:<extra_ms>:<jitter_ms>[:<start_s>:<dur_s>] — got: "
            << text);
    c.kind = FaultClause::Kind::kDegrade;
    c.target = parse_target(fields[1], text);
    c.extra_ms = parse_number(fields[2], text);
    c.jitter_ms = parse_number(fields[3], text);
    if (fields.size() == 6) {
      c.start_s = parse_number(fields[4], text);
      c.duration_s = parse_number(fields[5], text);
    }
  } else if (kind == "crash") {
    TING_CHECK_MSG(fields.size() == 4,
                   "crash:<target>:<start_s>:<dur_s> — got: " << text);
    c.kind = FaultClause::Kind::kCrash;
    c.target = parse_target(fields[1], text);
    c.start_s = parse_number(fields[2], text);
    c.duration_s = parse_number(fields[3], text);
  } else if (kind == "churn") {
    TING_CHECK_MSG(fields.size() == 5,
                   "churn:<events>:<start_s>:<period_s>:<down_s> — got: "
                       << text);
    c.kind = FaultClause::Kind::kChurn;
    c.events = static_cast<int>(parse_number(fields[1], text));
    c.start_s = parse_number(fields[2], text);
    c.period_s = parse_number(fields[3], text);
    c.down_s = parse_number(fields[4], text);
    TING_CHECK_MSG(c.events >= 1 && c.period_s > 0 && c.down_s > 0,
                   "churn needs events >= 1, period > 0, down > 0: " << text);
  } else if (kind == "die") {
    TING_CHECK_MSG(fields.size() == 2 || fields.size() == 3,
                   "die:<target>[:<start_s>] — got: " << text);
    c.kind = FaultClause::Kind::kDie;
    c.target = parse_target(fields[1], text);
    if (fields.size() == 3) c.start_s = parse_number(fields[2], text);
  } else {
    TING_CHECK_MSG(false, "unknown fault kind '" << kind << "' in: " << text);
  }
  TING_CHECK_MSG(c.start_s >= 0 && c.duration_s >= 0,
                 "negative fault window in: " << text);
  return c;
}

}  // namespace

FaultSpec FaultSpec::parse(const std::string& text) {
  FaultSpec spec;
  for (const std::string& raw : split(text, ';')) {
    const std::string clause = trim(raw);
    if (clause.empty()) continue;
    spec.clauses.push_back(parse_clause(clause));
  }
  TING_CHECK_MSG(!spec.clauses.empty(), "empty fault spec");
  return spec;
}

void apply_fault_spec(const FaultSpec& spec, Testbed& tb,
                      const std::vector<dir::Fingerprint>& scan_nodes,
                      simnet::FaultPlan& plan, std::uint64_t seed) {
  const auto targets_of = [&](const FaultClause& c) {
    std::vector<simnet::HostId> hosts;
    if (c.target < 0) {
      for (const dir::Fingerprint& fp : scan_nodes)
        hosts.push_back(tb.host_of(fp));
    } else {
      TING_CHECK_MSG(static_cast<std::size_t>(c.target) < scan_nodes.size(),
                     "fault target " << c.target << " out of range (scan has "
                                     << scan_nodes.size() << " nodes)");
      hosts.push_back(tb.host_of(scan_nodes[static_cast<std::size_t>(c.target)]));
    }
    return hosts;
  };

  for (const FaultClause& c : spec.clauses) {
    switch (c.kind) {
      case FaultClause::Kind::kLoss:
        for (const simnet::HostId h : targets_of(c))
          plan.loss_window(h, Duration::from_ms(c.start_s * 1000.0),
                           Duration::from_ms(c.duration_s * 1000.0), c.prob);
        break;
      case FaultClause::Kind::kDegrade:
        for (const simnet::HostId h : targets_of(c))
          plan.degrade_window(h, Duration::from_ms(c.start_s * 1000.0),
                              Duration::from_ms(c.duration_s * 1000.0),
                              Duration::from_ms(c.extra_ms),
                              Duration::from_ms(c.jitter_ms));
        break;
      case FaultClause::Kind::kCrash:
        for (const simnet::HostId h : targets_of(c))
          plan.crash_window(h, Duration::from_ms(c.start_s * 1000.0),
                            Duration::from_ms(c.duration_s * 1000.0));
        break;
      case FaultClause::Kind::kDie: {
        std::vector<dir::Fingerprint> fps;
        if (c.target < 0) {
          fps = scan_nodes;
        } else {
          TING_CHECK_MSG(
              static_cast<std::size_t>(c.target) < scan_nodes.size(),
              "fault target " << c.target << " out of range (scan has "
                              << scan_nodes.size() << " nodes)");
          fps.push_back(scan_nodes[static_cast<std::size_t>(c.target)]);
        }
        for (const dir::Fingerprint& fp : fps) {
          if (c.start_s <= 0) {
            // Immediate removal, before the scan takes its consensus
            // snapshot: the relay is never-known, so its failures classify
            // permanent (the quarantine-breaker scenario).
            tb.directory_remove(fp);
          } else {
            plan.at(Duration::from_ms(c.start_s * 1000.0),
                    "consensus: x" + fp.short_name(),
                    [&tb, fp]() { tb.directory_remove(fp); });
          }
        }
        break;
      }
      case FaultClause::Kind::kChurn: {
        ScanChurnOptions churn;
        churn.seed = seed;
        churn.start = Duration::from_ms(c.start_s * 1000.0);
        churn.period = Duration::from_ms(c.period_s * 1000.0);
        churn.events = static_cast<std::size_t>(c.events);
        churn.down_for = Duration::from_ms(c.down_s * 1000.0);
        // The removed descriptor is stashed per node so the paired rejoin
        // event can restore exactly what left.
        std::map<dir::Fingerprint,
                 std::shared_ptr<std::optional<dir::RelayDescriptor>>>
            stashes;
        for (const ChurnEvent& e : make_scan_churn(scan_nodes.size(), churn)) {
          const dir::Fingerprint fp = scan_nodes.at(e.node_index);
          if (e.leave) {
            auto stash =
                std::make_shared<std::optional<dir::RelayDescriptor>>();
            plan.at(e.at, "consensus: -" + fp.short_name(),
                    [&tb, fp, stash]() { *stash = tb.directory_remove(fp); });
            stashes[fp] = stash;
          } else {
            auto it = stashes.find(fp);
            TING_CHECK(it != stashes.end());
            auto stash = it->second;
            plan.at(e.at, "consensus: +" + fp.short_name(), [&tb, stash]() {
              if (stash->has_value()) tb.directory_restore(**stash);
            });
          }
        }
        break;
      }
    }
  }
}

}  // namespace ting::scenario
