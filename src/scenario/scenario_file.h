// ScenarioFile — the declarative hostile-network description format.
//
// The `--faults` clause string grew one failure mode at a time; a scenario
// file promotes it to a versioned, self-describing document (à la
// Shadow/tornettools) covering all three layers a hostile-network
// experiment needs:
//
//   topology    — world sizing and composition (relay count, scan-node
//                 count, seed, protocol-differential fraction), sampled
//                 from the same consensus-like distributions live_tor()
//                 draws from;
//   dynamics    — what the network does over time: fault clauses in the
//                 faults.h grammar (including the timeline-driven diurnal
//                 and flash clauses) plus the daemon's epoch-boundary churn
//                 process (ChurnFeedOptions);
//   adversaries — active attackers: targeted takedowns and dead clusters
//                 (die:/crash: clauses) and a Murdoch–Danezis congestion
//                 attacker whose probes drive analysis/congestion.
//
// Format: line-oriented, '#' comments, a magic+version first line, INI-like
// sections with `key = value` entries. No external dependencies.
//
//   ting-scenario v1
//
//   [scenario]
//   name = lossy-internet
//   summary = sustained loss and degraded links across the mesh
//
//   [topology]
//   relays = 18          # live_tor() consensus size
//   nodes = 10           # scan subset for `ting scan` (daemon scans all)
//   seed = 1
//   differential = 0.35  # optional; protocol-differential network fraction
//
//   [dynamics]
//   fault = loss:*:0.05              # repeated key; faults.h grammar
//   fault = diurnal:*:6:120
//   churn-rate = 0.05                # daemon epoch churn process
//   rejoin-rate = 0.5
//   initially-absent = 0
//
//   [adversary]
//   fault = die:3                    # takedowns, dead clusters
//   congestion-rounds = 4            # > 0 arms the congestion attacker
//   congestion-victim = 2:5:8        # victim circuit (entry:middle:exit)
//   congestion-off-path = 20         # control candidate for the probe
//
// Determinism contract: everything a scenario compiles to — the FaultSpec,
// the ChurnFeedOptions, the topology options — is a pure function of the
// file text, and every stochastic draw downstream is seeded, so two runs of
// the same scenario (same CLI flags) produce byte-identical artifacts. The
// scenario-matrix CI job pins this per library scenario.
#pragma once

#include <cstdint>
#include <string>

#include "scenario/churn_feed.h"
#include "scenario/faults.h"

namespace ting::scenario {

/// The Murdoch–Danezis attacker a scenario can arm: the CLI builds the
/// probe-calibrated §4.1 testbed, sets up a victim circuit through the
/// given relays, and runs real congestion probes against an on-path and an
/// off-path candidate (analysis/congestion.h), reporting the effect sizes.
struct CongestionAdversary {
  bool enabled = false;
  int rounds = 4;                      ///< ON/OFF probe rounds
  int entry = -1, middle = -1, exit = -1;  ///< victim circuit relay indices
  int off_path = -1;                   ///< control candidate (not on circuit)
};

struct ScenarioFile {
  int version = 1;
  std::string name;     ///< [a-z0-9-]+, the `--scenario <name>` handle
  std::string summary;  ///< one-line description for `ting scenario list`
  std::string origin;   ///< where the text came from (path or "<embedded>")

  // [topology]
  std::size_t relays = 20;
  std::size_t nodes = 12;
  std::uint64_t seed = 1;
  /// Protocol-differential network fraction; < 0 = keep the builder default.
  double differential = -1;

  // [dynamics] + [adversary] fault clauses, in file order.
  FaultSpec faults;
  /// Daemon epoch-boundary churn process ([dynamics] churn-rate etc.).
  double churn_rate = 0;
  double rejoin_rate = 0.5;
  double initially_absent = 0;

  // [adversary]
  CongestionAdversary congestion;

  /// Parse and validate a scenario document; throws CheckError with the
  /// offending line number on malformed input. `origin` labels errors
  /// (file path, or "<embedded:name>").
  static ScenarioFile parse(const std::string& text, const std::string& origin);
  /// Read + parse a file; throws CheckError if unreadable.
  static ScenarioFile load_file(const std::string& path);

  /// The compiled fault plan in canonical faults.h grammar ("" if none) —
  /// what `ting scan --faults` would have been handed.
  std::string fault_spec_string() const;
  /// The daemon churn process this scenario describes.
  ChurnFeedOptions churn_options(std::uint64_t seed_override) const;
  /// True if any clause needs a live fault plan (everything except a spec
  /// that is empty).
  bool has_faults() const { return !faults.clauses.empty(); }

  /// Cross-field validation (also run by parse): name shape, sizing sanity,
  /// fault targets within the scan-node count, victim indices within range
  /// and distinct. Throws CheckError.
  void validate() const;
};

}  // namespace ting::scenario
