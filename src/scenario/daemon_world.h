// TestbedDaemonEnvironment — the simulated-deployment backend for the scan
// daemon (ting/daemon.h): persistent shard worlds plus a deterministic
// churn feed, wired to the DaemonEnvironment interface.
//
// The environment owns `shards` identical TestbedShardWorld instances that
// live across epochs (unlike a batch sharded scan, which builds worlds per
// invocation — the daemon's whole point is that state persists). Each epoch
// boundary the ChurnFeed's events are projected onto *every* world so their
// directory views stay in lockstep, then the epoch worklist runs through
// ShardedScanner::scan_pairs (or a plain ParallelScanner when shards == 1)
// in deterministic mode.
//
// Fault plans (--faults, including die:) are applied per world at
// construction and fire at each world's own virtual times, so with faults
// the worlds' consensus views can transiently disagree mid-epoch — the same
// caveat batch sharded scans carry. The churn feed itself is epoch-aligned
// and identical everywhere.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "scenario/churn_feed.h"
#include "scenario/shard_world.h"
#include "ting/daemon.h"

namespace ting::scenario {

struct DaemonWorldOptions {
  /// Testbed size; the daemon scans ALL relays (the consensus IS the scan
  /// set — that is what distinguishes a daemon from a targeted scan).
  std::size_t relays = 20;
  TestbedOptions testbed;
  meas::TingConfig ting;
  ChurnFeedOptions churn;
  /// Optional fault spec (scenario/faults.h grammar) applied to each world.
  std::string fault_spec;
  /// Worker threads = persistent shard worlds.
  std::size_t shards = 1;
  /// Measurement hosts per world (deterministic mode drives only the
  /// first; extras matter for non-deterministic experiments).
  std::size_t pool = 1;
  /// Build the immutable topology once and share it across the persistent
  /// shard worlds (default); false re-derives it per world (the historical
  /// clone path, kept as the parity baseline).
  bool share_topology = true;
};

class TestbedDaemonEnvironment : public meas::DaemonEnvironment {
 public:
  explicit TestbedDaemonEnvironment(const DaemonWorldOptions& options);

  void advance_epoch(std::size_t epoch) override;
  std::vector<dir::Fingerprint> nodes() override;
  meas::ScanReport scan_pairs(const std::vector<dir::Fingerprint>& nodes,
                              const meas::ParallelScanner::PairList& pairs,
                              meas::RttMatrix& epoch_matrix,
                              const meas::ScanOptions& options,
                              const meas::ScanProgress& progress) override;

  /// The reference world (index 0) — tests use it for ground truth.
  Testbed& world() { return worlds_[0]->world(); }

  /// Wall-clock milliseconds spent building the persistent shard worlds
  /// (topology + per-world instantiation), for the daemon's setup-cost
  /// reporting; epoch scans borrow these worlds, so per-epoch
  /// world_construct_ms is ~0.
  double world_construct_ms() const { return world_construct_ms_; }

 private:
  DaemonWorldOptions options_;
  double world_construct_ms_ = 0;
  std::vector<std::unique_ptr<TestbedShardWorld>> worlds_;
  std::vector<std::unique_ptr<ChurnApplier>> appliers_;
  std::unique_ptr<ChurnFeed> feed_;
};

}  // namespace ting::scenario
