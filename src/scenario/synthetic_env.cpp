#include "scenario/synthetic_env.h"

#include <algorithm>
#include <chrono>

#include "ting/scan_journal.h"
#include "util/assert.h"
#include "util/rng.h"

namespace ting::scenario {

SyntheticDaemonEnvironment::SyntheticDaemonEnvironment(
    const SyntheticEnvOptions& options)
    : options_(options) {
  TING_CHECK(options_.relays >= 2);
  const auto construct_start = std::chrono::steady_clock::now();
  topology_ = SharedTopology::live_tor(options_.relays, options_.testbed);
  world_construct_ms_ = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - construct_start)
                            .count();
  const std::vector<dir::Fingerprint> fps = topology_->all_fingerprints();
  host_of_.reserve(fps.size() * 2);
  for (std::size_t i = 0; i < fps.size(); ++i) host_of_.emplace(fps[i], i + 1);
  feed_ = std::make_unique<ChurnFeed>(fps, options_.churn);
}

void SyntheticDaemonEnvironment::advance_epoch(std::size_t epoch) {
  // Membership is all that exists here — no directories to project the
  // events onto.
  feed_->advance(epoch);
}

std::vector<dir::Fingerprint> SyntheticDaemonEnvironment::nodes() {
  // ChurnFeed::members() is construction order filtered by membership — the
  // same stable relative order the testbed environment reports, which the
  // planner's index pairs (and the incremental planner's backlog) rely on.
  return feed_->members();
}

double SyntheticDaemonEnvironment::base_rtt_ms(
    const dir::Fingerprint& x, const dir::Fingerprint& y) const {
  auto ix = host_of_.find(x);
  auto iy = host_of_.find(y);
  TING_CHECK_MSG(ix != host_of_.end() && iy != host_of_.end(),
                 "synthetic env: unknown relay fingerprint");
  return topology_->base_rtt_table()->at(ix->second, iy->second);
}

meas::ScanReport SyntheticDaemonEnvironment::scan_pairs(
    const std::vector<dir::Fingerprint>& nodes,
    const meas::ParallelScanner::PairList& pairs,
    meas::RttMatrix& epoch_matrix, const meas::ScanOptions& options,
    const meas::ScanProgress& progress) {
  meas::ScanReport report;
  report.pairs_total = pairs.size();
  std::size_t done = 0;
  for (const auto& [i, j] : pairs) {
    if (options.stop != nullptr &&
        options.stop->load(std::memory_order_relaxed)) {
      report.interrupted = true;
      break;
    }
    TING_CHECK(i < nodes.size() && j < nodes.size());
    const dir::Fingerprint& x = nodes[i];
    const dir::Fingerprint& y = nodes[j];

    meas::PairResult r;
    r.x = x;
    r.y = y;

    // Journal-recovered pairs (a resumed epoch pre-seeds epoch_matrix) are
    // served from the cache, mirroring the engines' is_fresh skip.
    if (epoch_matrix.is_fresh(x, y, TimePoint{}, options.max_age)) {
      const meas::RttMatrix::Entry* e = epoch_matrix.entry(x, y);
      r.ok = true;
      r.from_cache = true;
      r.rtt_ms = e->rtt_ms;
      r.cxy.ok = true;
      r.cxy.samples_taken = e->samples;
      ++report.from_cache;
      ++done;
      if (progress) progress(done, report.pairs_total, r);
      continue;
    }

    // Pure per-pair draw: the same (pair_seed, x, y) mixing the
    // deterministic engines reseed with, so outcomes are independent of
    // plan order, epoch re-entry, and process boundaries.
    Rng rng(meas::pair_reseed(options.pair_seed, x, y));
    if (options_.failure_rate > 0 && rng.chance(options_.failure_rate)) {
      r.ok = false;
      r.error = "synthetic fault";
      r.error_class = meas::ErrorClass::kTransient;
      ++report.failed;
      ++report.failed_transient;
      report.failed_pairs.push_back(
          meas::FailedPair{x, y, r.error_class, r.error});
      report.retries +=
          static_cast<std::size_t>(std::max(0, options.attempts_per_pair - 1));
      if (options.journal != nullptr) {
        meas::ScanJournal::PairRecord rec;
        rec.a = x;
        rec.b = y;
        rec.ok = false;
        rec.attempts = options.attempts_per_pair;
        rec.error_class = r.error_class;
        rec.error = r.error;
        options.journal->record_pair(rec);
      }
    } else {
      const double est = base_rtt_ms(x, y) + rng.uniform(0.0, options_.noise_ms);
      r.ok = true;
      r.rtt_ms = est;
      r.cxy.ok = true;
      r.cxy.min_rtt_ms = est;
      r.cxy.samples_taken = options_.samples;
      // Zero timestamp, like the deterministic engines: the daemon stamps
      // results with its epoch clock at absorb time.
      epoch_matrix.set(x, y, est, TimePoint{}, options_.samples);
      ++report.measured;
      if (options.journal != nullptr) {
        meas::ScanJournal::PairRecord rec;
        rec.a = x;
        rec.b = y;
        rec.ok = true;
        rec.attempts = 1;
        rec.rtt_ms = est;
        rec.measured_at = TimePoint{};
        rec.samples = options_.samples;
        options.journal->record_pair(rec);
      }
    }
    ++done;
    if (progress) progress(done, report.pairs_total, r);
  }
  report.interrupted_pairs = report.pairs_total - done;
  report.interrupted = report.interrupted || report.interrupted_pairs > 0;
  return report;
}

}  // namespace ting::scenario
