// The shared immutable topology layer.
//
// A scan sharded across W worker threads used to build W complete worlds,
// each re-deriving everything from the seed: geography draws, IP allocation,
// network policies, rDNS names, and — dominating the cost — one X25519
// keypair per relay plus a trig + hash base-RTT evaluation per delivered
// packet. All of that state is immutable after construction and identical
// across shards, so it belongs in one place built once.
//
// SharedTopology freezes the seed-derived world description: per-relay
// blueprints (location, IP, policy, relay config, identity keys,
// fingerprint), the measurement host's address, the post-build IP-allocator
// state (so on-demand measurement-pool extras keep drawing the same
// addresses in every world), the registered geolocation service, and a dense
// base-RTT table over the host mesh. It is held by `shared_ptr<const>` and
// read concurrently by every shard; per-shard worlds (Testbed) keep only the
// mutable half — event loop, connections, relay/session state, RNG streams.
//
// Determinism contract: SharedTopology::build consumes the seed's RNG
// streams in exactly the order build_testbed() historically did, and
// per-relay identity generation leaves each blueprint's `rng_after_keygen`
// positioned where a fresh relay's rng would be after keygen. A Testbed
// instantiated from a topology is therefore bit-identical — fingerprints,
// descriptors, stochastic draw sequences — to one built from scratch.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "crypto/handshake.h"
#include "dir/fingerprint.h"
#include "geo/cities.h"
#include "geo/geolocation.h"
#include "geo/ipalloc.h"
#include "scenario/rdns.h"
#include "simnet/latency_model.h"
#include "tor/relay.h"
#include "util/ip.h"
#include "util/rng.h"

namespace ting::scenario {

struct TestbedOptions {
  std::uint64_t seed = 1;
  /// Fraction of relay networks with protocol-differential treatment
  /// (Fig 5 finds ~35% anomalous on PlanetLab).
  double differential_fraction = 0.35;
  /// Latency/jitter configuration of the underlying network.
  simnet::LatencyConfig latency;
  /// Scales every relay's random queueing-delay mean (base forwarding cost
  /// is untouched). Tests that compare estimates across scan engines set
  /// this low: min-of-N sampling then converges well inside 1 ms, so any
  /// residual disagreement is an engine bug rather than sampling noise.
  double forward_queue_scale = 1.0;
  /// Start the measurement host's controller session (blocking).
  bool start_measurement_host = true;
};

/// One relay to instantiate.
struct RelaySpec {
  const geo::City* city = nullptr;
  geo::HostKind kind = geo::HostKind::kDatacenter;
  std::uint32_t bandwidth = 1000;
  std::uint32_t flags = 0;
  HostClass host_class = HostClass::kDatacenter;
};

/// Everything immutable about one relay: where it sits, how its network
/// treats traffic, its full config, and its identity (keys generated once,
/// at topology build). `rng_after_keygen` is the relay's rng state after
/// identity generation, so a world instantiating the blueprint continues
/// the relay's stochastic stream exactly where a from-scratch build would.
struct RelayBlueprint {
  geo::GeoPoint location{};
  IpAddr ip;
  simnet::NetworkPolicy policy;
  std::uint32_t group_tag = 0;
  tor::RelayConfig config;
  crypto::IdentityKeys identity;
  dir::Fingerprint fingerprint;
  Rng rng_after_keygen{0};
};

class SharedTopology {
 public:
  /// Build the frozen topology for `specs`. Consumes the seed's RNG streams
  /// in the exact order the historical monolithic world build did.
  static std::shared_ptr<const SharedTopology> build(
      const std::vector<RelaySpec>& specs, const TestbedOptions& options);

  /// Like live_tor()/planetlab31() but stopping at the frozen topology.
  static std::shared_ptr<const SharedTopology> live_tor(
      std::size_t n, const TestbedOptions& options = {});
  static std::shared_ptr<const SharedTopology> planetlab31(
      const TestbedOptions& options = {});

  const TestbedOptions& options() const { return options_; }
  const std::vector<RelayBlueprint>& relays() const { return relays_; }
  IpAddr measurement_ip() const { return measurement_ip_; }
  const geo::GeoPoint& measurement_location() const {
    return measurement_location_;
  }
  /// IP-allocator state after all build-time allocations; copied into each
  /// world so later on-demand allocations (measurement-pool extras) draw
  /// the same addresses everywhere.
  const geo::IpAllocator& ipalloc_after_build() const { return ipalloc_; }
  /// Geolocation service with every relay already registered.
  const geo::GeolocationService& geolocation() const { return geolocation_; }
  /// Frozen base-RTT table over [measurement host, relays...] in host-id
  /// order; attached to each world's latency model.
  const std::shared_ptr<const simnet::BaseRttTable>& base_rtt_table() const {
    return base_rtt_table_;
  }

  std::vector<dir::Fingerprint> all_fingerprints() const;

 private:
  SharedTopology() = default;

  TestbedOptions options_;
  IpAddr measurement_ip_;
  geo::GeoPoint measurement_location_{};
  std::vector<RelayBlueprint> relays_;
  geo::IpAllocator ipalloc_{0};
  geo::GeolocationService geolocation_;
  std::shared_ptr<const simnet::BaseRttTable> base_rtt_table_;
};

using TopologyPtr = std::shared_ptr<const SharedTopology>;

}  // namespace ting::scenario
