#include "scenario/daemon_world.h"

#include <algorithm>
#include <chrono>

#include "ting/sharded_scan.h"
#include "util/assert.h"

namespace ting::scenario {

namespace {

/// Non-owning ShardWorld view over a persistent TestbedShardWorld: the
/// sharded scanner expects to own the worlds it builds, but the daemon's
/// worlds must outlive every epoch, so the factory hands out borrows.
class BorrowedShardWorld : public meas::ShardWorld {
 public:
  explicit BorrowedShardWorld(TestbedShardWorld& w) : w_(w) {}
  std::vector<meas::TingMeasurer*> measurers() override {
    return w_.measurers();
  }
  void reseed(std::uint64_t seed) override { w_.reseed(seed); }
  const dir::Consensus* live_consensus() override {
    return w_.live_consensus();
  }
  const simnet::FaultPlan* fault_plan() override { return w_.fault_plan(); }

 private:
  TestbedShardWorld& w_;
};

std::vector<meas::MeasurementHost*> pool_hosts(TestbedShardWorld& w) {
  std::vector<meas::MeasurementHost*> hosts;
  for (meas::TingMeasurer* m : w.measurers()) hosts.push_back(&m->host());
  return hosts;
}

}  // namespace

TestbedDaemonEnvironment::TestbedDaemonEnvironment(
    const DaemonWorldOptions& options)
    : options_(options) {
  TING_CHECK(options_.shards >= 1);
  ShardWorldOptions swo;
  swo.relays = options_.relays;
  swo.scan_nodes = options_.relays;  // the consensus is the scan set
  swo.testbed = options_.testbed;
  swo.ting = options_.ting;
  swo.pool = options_.pool;
  swo.fault_spec = options_.fault_spec;
  swo.share_topology = options_.share_topology;
  const auto construct_start = std::chrono::steady_clock::now();
  TopologyPtr topology =
      options_.share_topology ? shard_topology(swo) : nullptr;
  for (std::size_t s = 0; s < options_.shards; ++s) {
    worlds_.push_back(topology != nullptr
                          ? std::make_unique<TestbedShardWorld>(swo, topology)
                          : std::make_unique<TestbedShardWorld>(swo));
    appliers_.push_back(std::make_unique<ChurnApplier>(worlds_[s]->world()));
  }
  world_construct_ms_ = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - construct_start)
                            .count();
  feed_ = std::make_unique<ChurnFeed>(worlds_[0]->world().all_fingerprints(),
                                      options_.churn);
}

void TestbedDaemonEnvironment::advance_epoch(std::size_t epoch) {
  const std::vector<ChurnFeed::Event> events = feed_->advance(epoch);
  for (std::size_t s = 0; s < worlds_.size(); ++s)
    appliers_[s]->apply(events, pool_hosts(*worlds_[s]));
}

std::vector<dir::Fingerprint> TestbedDaemonEnvironment::nodes() {
  // Construction order filtered by consensus membership: deterministic
  // across processes, which the planner's index pairs rely on.
  Testbed& tb = worlds_[0]->world();
  std::vector<dir::Fingerprint> out;
  out.reserve(tb.relay_count());
  for (std::size_t i = 0; i < tb.relay_count(); ++i)
    if (tb.consensus().find(tb.fp(i)) != nullptr) out.push_back(tb.fp(i));
  return out;
}

meas::ScanReport TestbedDaemonEnvironment::scan_pairs(
    const std::vector<dir::Fingerprint>& nodes,
    const meas::ParallelScanner::PairList& pairs,
    meas::RttMatrix& epoch_matrix, const meas::ScanOptions& options,
    const meas::ScanProgress& progress) {
  if (worlds_.size() == 1) {
    TestbedShardWorld& w = *worlds_[0];
    meas::ParallelScanner scanner(w.measurers(), epoch_matrix);
    meas::ParallelScanOptions popt;
    static_cast<meas::ScanOptions&>(popt) = options;
    popt.reseed_world = [&w](std::uint64_t seed) { w.reseed(seed); };
    if (popt.live_consensus == nullptr) popt.live_consensus = w.live_consensus();
    if (popt.fault_plan == nullptr) popt.fault_plan = w.fault_plan();
    return scanner.scan_pairs(nodes, pairs, popt, progress);
  }
  meas::ShardedScanner scanner(
      [this](std::size_t shard) -> std::unique_ptr<meas::ShardWorld> {
        return std::make_unique<BorrowedShardWorld>(
            *worlds_[shard % worlds_.size()]);
      });
  meas::ShardedScanOptions sopt;
  static_cast<meas::ScanOptions&>(sopt) = options;
  sopt.shards = worlds_.size();
  sopt.deterministic = true;
  return scanner.scan_pairs(nodes, pairs, epoch_matrix, sopt, progress);
}

}  // namespace ting::scenario
