// Testbed builders: assemble a complete simulated world — network, relays,
// measurement host — for the paper's two experimental settings:
//
//  - planetlab31(): the §4.1 ground-truth testbed. 31 relays spanning 6
//    European countries, 9 US states, and at least one relay each in Asia,
//    South America, Australia, and the Middle East, with restrictive exit
//    policies; a configurable fraction of their networks treat
//    ICMP/TCP/Tor traffic differently (the §4.3 anomaly).
//
//  - live_tor(n): an approximation of the live network (§4.5): n relays
//    placed with Tor's US/EU concentration, bandwidth-weighted flags,
//    residential/datacenter membership and rDNS names (§5.3).
//
//  - build_testbed(): the general entry point taking explicit RelaySpecs.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "dir/consensus.h"
#include "geo/cities.h"
#include "geo/geolocation.h"
#include "geo/ipalloc.h"
#include "scenario/rdns.h"
#include "scenario/topology.h"
#include "simnet/network.h"
#include "ting/measurement_host.h"
#include "tor/relay.h"

namespace ting::scenario {

// TestbedOptions and RelaySpec live in scenario/topology.h (the frozen
// topology is built from them); re-exported here for existing includers.

class Testbed {
 public:
  simnet::EventLoop& loop() { return *loop_; }
  simnet::Network& net() { return *net_; }
  meas::MeasurementHost& ting() { return *ting_host_; }
  geo::GeolocationService& geolocation() { return geolocation_; }
  const dir::Consensus& consensus() const { return consensus_; }

  std::size_t relay_count() const { return relays_.size(); }
  tor::Relay& relay(std::size_t i) { return *relays_.at(i); }
  const dir::Fingerprint& fp(std::size_t i) const {
    return relays_.at(i)->fingerprint();
  }
  std::vector<dir::Fingerprint> all_fingerprints() const;

  /// Host id of a relay, for ground-truth queries against the latency model.
  simnet::HostId host_of(const dir::Fingerprint& fp) const;
  /// Ground-truth RTT between two relays (what Ting should estimate),
  /// measured at the neutral TCP class (no jitter, no forwarding delay).
  double true_rtt_ms(const dir::Fingerprint& a, const dir::Fingerprint& b) const;
  /// Ground-truth RTT as ICMP ping sees it (the paper's "real" baseline).
  double ping_rtt_ms(const dir::Fingerprint& a, const dir::Fingerprint& b) const;

  simnet::HostId measurement_host() const { return measurement_host_; }

  /// A pool of `count` measurement hosts for parallel scanning: the primary
  /// host plus count-1 extras created (and started) on demand, each a full
  /// apparatus — own simnet host, w/z relays, echo pair, onion proxy, and
  /// controller session — placed alongside the primary (a rack of
  /// measurement machines). Extras persist across calls; asking for a
  /// smaller count returns a prefix of a previous pool.
  std::vector<meas::MeasurementHost*> measurement_pool(std::size_t count);

  /// Directory churn: remove a relay from the consensus AND from every
  /// measurement host's onion-proxy view (what the next consensus fetch
  /// would do). Returns the removed descriptor so a churn script can
  /// restore it later; nullopt if the relay was not in the consensus.
  std::optional<dir::RelayDescriptor> directory_remove(
      const dir::Fingerprint& fp);
  /// Re-add a previously removed relay to the directory consensus only.
  /// Measurement hosts re-learn it through scanner re-resolution (their
  /// own "consensus fetch").
  void directory_restore(const dir::RelayDescriptor& desc);

  /// Reset every stochastic component of the world — network jitter rng,
  /// all relay queue rngs (plus their load watermarks), and each
  /// measurement host's apparatus — to a deterministic function of `seed`.
  /// Topology, fingerprints, and established sessions are untouched. This
  /// is the sharded scanner's per-pair world reseed (ScanOptions::
  /// reseed_world): two same-seed testbeds given the same reseed produce
  /// identical subsequent stochastic behaviour.
  void reseed_stochastics(std::uint64_t seed);

  /// The frozen immutable layer this world was instantiated from. Shard
  /// engines reuse it to build sibling worlds without re-deriving the
  /// topology (never null: every construction path goes through one).
  const TopologyPtr& topology() const { return topology_; }

 private:
  friend Testbed testbed_from_topology(TopologyPtr topology);

  TopologyPtr topology_;
  std::unique_ptr<simnet::EventLoop> loop_;
  std::unique_ptr<simnet::Network> net_;
  std::vector<std::unique_ptr<tor::Relay>> relays_;
  std::map<dir::Fingerprint, simnet::HostId> host_by_fp_;
  dir::Consensus consensus_;
  geo::GeolocationService geolocation_;
  std::unique_ptr<geo::IpAllocator> ipalloc_;
  std::uint64_t seed_ = 1;
  std::unique_ptr<meas::MeasurementHost> ting_host_;
  std::vector<std::unique_ptr<meas::MeasurementHost>> pool_extras_;
  simnet::HostId measurement_host_ = 0;
};

/// Instantiate the mutable half of a world — event loop, network,
/// connections, relays, measurement host — over a frozen shared topology.
/// Bit-identical to a from-scratch build of the same specs/options; cheap
/// enough to call once per shard (no keygen, no geometry, no RTT trig).
Testbed testbed_from_topology(TopologyPtr topology);

/// Instantiate a world from explicit specs (builds a private topology).
Testbed build_testbed(const std::vector<RelaySpec>& specs,
                      const TestbedOptions& options);

/// The §4.1 PlanetLab-style ground-truth testbed (31 relays).
Testbed planetlab31(const TestbedOptions& options = {});

/// A live-Tor-like network with `n` relays.
Testbed live_tor(std::size_t n, const TestbedOptions& options = {});

}  // namespace ting::scenario
