// ChurnFeed — a deterministic epoch-boundary consensus churn generator for
// the scan daemon's simulated deployments.
//
// The live network loses and gains relays continuously (the paper's
// deanonymization discussion assumes ~5% hourly churn); the daemon's delta
// planner exists to chase exactly that. The feed models it as a discrete
// process: at every epoch boundary each present relay leaves with
// probability `churn_rate` and each absent relay rejoins with probability
// `rejoin_rate`. Everything is a pure function of (seed, epoch), so a
// daemon resumed after a crash replays the identical churn history — the
// property the byte-for-byte resume guarantee rests on. (Contrast
// timeline.h's make_scan_churn, which scripts mid-scan events at virtual
// times; the feed churns only *between* epochs, where the consensus is
// observable at a well-defined instant.)
//
// ChurnApplier projects feed events onto one Testbed: leaves go through
// directory_remove (descriptor stashed for the comeback), rejoins through
// directory_restore plus re-injection into the measurement hosts' onion
// proxy views (their "next consensus fetch"). A relay a fault plan killed
// (die:) is never resurrected: the applier only restores descriptors it
// stashed itself, and a remove that finds the relay already gone stashes
// nothing.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "dir/consensus.h"
#include "dir/fingerprint.h"
#include "scenario/testbed.h"

namespace ting::scenario {

struct ChurnFeedOptions {
  std::uint64_t seed = 7;
  /// Per-epoch leave probability for each present relay (~hourly churn).
  double churn_rate = 0.05;
  /// Per-epoch rejoin probability for each absent relay.
  double rejoin_rate = 0.5;
  /// Fraction of relays held out of the consensus before epoch 0 — lets a
  /// run exercise "new relay joined" deltas from the start.
  double initially_absent = 0.0;
};

class ChurnFeed {
 public:
  struct Event {
    dir::Fingerprint relay;
    bool leave = false;  ///< false = (re)join
  };

  ChurnFeed(std::vector<dir::Fingerprint> relays, ChurnFeedOptions options);

  /// The churn events at the boundary into `epoch`. Must be called with
  /// epoch = 0, 1, 2, ... in order (the membership state is sequential);
  /// each epoch's draw is seeded from (seed, epoch) alone. Epoch 0 first
  /// applies the initial holdout as leave events.
  std::vector<Event> advance(std::size_t epoch);

  /// Relays currently in the consensus, in construction order.
  std::vector<dir::Fingerprint> members() const;
  std::size_t member_count() const;

 private:
  std::vector<dir::Fingerprint> relays_;
  std::vector<bool> present_;
  ChurnFeedOptions options_;
  std::size_t next_epoch_ = 0;
};

/// Applies feed events to one Testbed (one per shard world — every world
/// needs the same directory history).
class ChurnApplier {
 public:
  explicit ChurnApplier(Testbed& tb) : tb_(tb) {}

  /// Project `events` onto the testbed's directory. Rejoining relays are
  /// also re-injected into every measurement-pool onion proxy in `pool` (the
  /// hosts' next consensus fetch), so the epoch's scan can build circuits
  /// through them immediately.
  void apply(const std::vector<ChurnFeed::Event>& events,
             const std::vector<meas::MeasurementHost*>& pool);

 private:
  Testbed& tb_;
  std::map<dir::Fingerprint, dir::RelayDescriptor> stash_;
};

}  // namespace ting::scenario
