#include "scenario/topology.h"

#include <algorithm>

#include "util/assert.h"

namespace ting::scenario {

namespace {

/// Protocol-differential policy for an "anomalous" network (§3.2/§4.3):
/// ICMP and TCP each get their own bias, sometimes opposite in sign, and a
/// minority of networks additionally shape Tor itself.
simnet::NetworkPolicy anomalous_policy(Rng& rng) {
  simnet::NetworkPolicy p;
  // Magnitudes are a few milliseconds: glaring at forwarding-delay scale
  // (F is 0–3 ms, so Fig 5's estimates go visibly negative) yet only a few
  // percent of a typical end-to-end RTT (Fig 3 stays accurate, with the
  // <50 ms pairs providing the outlier tail the paper observes).
  const int kind = static_cast<int>(rng.next_below(4));
  switch (kind) {
    case 0:  // ICMP deprioritised (classic slow-path ping)
      p.icmp_extra_ms = rng.uniform(1.0, 4.0);
      p.tcp_extra_ms = rng.uniform(0.0, 0.5);
      break;
    case 1:  // Tor shaped: ping looks faster than Tor
      p.tor_extra_ms = rng.uniform(0.8, 3.0);
      break;
    case 2:  // TCP vs ICMP disparity both present
      p.icmp_extra_ms = rng.uniform(0.8, 3.5);
      p.tcp_extra_ms = rng.uniform(0.5, 2.5);
      break;
    default:  // mild mixed treatment
      p.icmp_extra_ms = rng.uniform(0.3, 1.5);
      p.tcp_extra_ms = rng.uniform(0.2, 1.0);
      p.tor_extra_ms = rng.uniform(0.0, 0.8);
      break;
  }
  return p;
}

const geo::City* city(const std::string& name) {
  for (const geo::City& c : geo::all_cities())
    if (name == c.name) return &c;
  TING_CHECK_MSG(false, "unknown city " << name);
}

}  // namespace

std::vector<dir::Fingerprint> SharedTopology::all_fingerprints() const {
  std::vector<dir::Fingerprint> out;
  out.reserve(relays_.size());
  for (const RelayBlueprint& bp : relays_) out.push_back(bp.fingerprint);
  return out;
}

std::shared_ptr<const SharedTopology> SharedTopology::build(
    const std::vector<RelaySpec>& specs, const TestbedOptions& options) {
  // Private ctor, so no make_shared.
  std::shared_ptr<SharedTopology> topo(new SharedTopology);
  topo->options_ = options;

  // RNG discipline: this function consumes the seed's streams in exactly
  // the order the monolithic world build historically did — location
  // jitter, policy draws, rDNS, and forwarding-delay parameters all come
  // from one `rng`; identities from per-relay seeded generators. Any
  // reordering changes every fingerprint and stochastic draw downstream.
  Rng rng(mix64(options.seed ^ 0xbedbed));
  topo->ipalloc_ = geo::IpAllocator(options.seed + 17);
  geo::IpAllocator& ipalloc = topo->ipalloc_;

  // The measurement host: a well-connected host on a university network
  // (the paper ran from College Park, MD).
  topo->measurement_ip_ = ipalloc.allocate("US", geo::HostKind::kDatacenter);
  topo->measurement_location_ = {38.99, -76.94};

  // Hosts in id order, for the base-RTT table: measurement host first,
  // then relays — the order every world registers them in.
  simnet::LatencyModel model(options.latency);
  model.add_host(topo->measurement_location_);

  std::uint64_t relay_seed = options.seed * 1000 + 5;
  topo->relays_.reserve(specs.size());
  for (const RelaySpec& spec : specs) {
    TING_CHECK(spec.city != nullptr);
    RelayBlueprint bp;
    bp.location =
        geo::jitter_location({spec.city->lat, spec.city->lon}, 15.0, rng);
    bp.ip = ipalloc.allocate(spec.city->country_code, spec.kind);
    if (rng.chance(options.differential_fraction))
      bp.policy = anomalous_policy(rng);
    // Group tag = country, so cross-border inflation (when enabled) is
    // meaningful.
    bp.group_tag = static_cast<std::uint32_t>(
        mix64(static_cast<std::uint64_t>(spec.city->country_code[0]) << 8 |
              static_cast<std::uint64_t>(spec.city->country_code[1])));
    model.add_host(bp.location, bp.policy, bp.group_tag);
    topo->geolocation_.register_host(bp.ip, bp.location);

    tor::RelayConfig& rc = bp.config;
    rc.nickname = "relay" + std::to_string(topo->relays_.size());
    rc.or_port = 9001;
    rc.bandwidth = spec.bandwidth;
    rc.flags = spec.flags;
    // Restrictive exit policy: exit only to addresses we control (§4.1) —
    // enough for the strawman baseline; Ting itself never exits through
    // measured relays.
    rc.exit_policy = dir::ExitPolicy::accept_only({topo->measurement_ip_});
    rc.country_code = spec.city->country_code;
    rc.reverse_dns =
        make_rdns(bp.ip, spec.host_class, spec.city->country_code, rng);
    // Forwarding-delay model: a per-relay base (0.05–1.5 ms; the paper's
    // observed minima sit in a 0–3 ms band) and a queueing tail that grows
    // with how busy (high-bandwidth) the relay is.
    rc.base_forward_ms = rng.uniform(0.05, 1.5);
    rc.queue_mean_ms = options.forward_queue_scale *
                       (rng.uniform(0.4, 1.2) +
                        2.0 * static_cast<double>(spec.bandwidth) / 20000.0);

    // Identity keygen is the expensive per-relay step; do it once here and
    // hand every world the post-keygen rng so relays resume the stream
    // exactly where a from-scratch construction would.
    Rng relay_rng(relay_seed++);
    bp.identity = crypto::IdentityKeys::generate(relay_rng);
    bp.rng_after_keygen = relay_rng;
    bp.fingerprint = dir::Fingerprint::of_identity(bp.identity.public_key);

    topo->relays_.push_back(std::move(bp));
  }

  topo->base_rtt_table_ = model.build_base_table();
  return topo;
}

std::shared_ptr<const SharedTopology> SharedTopology::planetlab31(
    const TestbedOptions& options) {
  // §4.1's geography: 6 European countries, 9 US states, and at least one
  // relay in Asia, South America, Australia, and the Middle East — with the
  // US/EU concentration of the real Tor network. PlanetLab hosts are
  // universities/labs: datacenter-like addresses, no residential rDNS.
  static const char* kSites[31] = {
      // 9 distinct US states.
      "New York", "San Francisco", "Seattle", "Chicago", "Houston", "Miami",
      "Boston", "Denver", "Atlanta",
      // 6 European countries.
      "London", "Paris", "Frankfurt", "Amsterdam", "Stockholm", "Zurich",
      // Required regions.
      "Tokyo", "Sao Paulo", "Sydney", "Tel Aviv",
      // Remaining: the US/EU concentration.
      "Los Angeles", "Washington", "Philadelphia", "Portland", "Austin",
      "Berlin", "Munich", "Rotterdam", "Manchester", "Marseille", "Vienna",
      "Pittsburgh"};

  Rng rng(options.seed + 31);
  std::vector<RelaySpec> specs;
  for (const char* site : kSites) {
    RelaySpec s;
    s.city = city(site);
    s.kind = geo::HostKind::kDatacenter;
    s.bandwidth = static_cast<std::uint32_t>(rng.uniform_int(400, 5000));
    s.flags = dir::kFlagRunning | dir::kFlagValid | dir::kFlagFast |
              dir::kFlagGuard;
    s.host_class = HostClass::kDatacenter;
    specs.push_back(s);
  }
  return build(specs, options);
}

std::shared_ptr<const SharedTopology> SharedTopology::live_tor(
    std::size_t n, const TestbedOptions& options) {
  Rng rng(options.seed + 7);
  std::vector<RelaySpec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    RelaySpec s;
    s.city = &geo::sample_city_tor_weighted(rng);
    // §5.3: ~61% of named relays are residential; ~17% have no rDNS at all;
    // the rest are in datacenters.
    const double u = rng.uniform();
    if (u < 0.17) {
      s.host_class = HostClass::kNoRdns;
      s.kind = rng.chance(0.5) ? geo::HostKind::kResidential
                               : geo::HostKind::kDatacenter;
    } else if (u < 0.17 + 0.51) {
      s.host_class = HostClass::kResidential;
      s.kind = geo::HostKind::kResidential;
    } else {
      s.host_class = HostClass::kDatacenter;
      s.kind = geo::HostKind::kDatacenter;
    }
    // Tor's long-tailed bandwidth distribution.
    s.bandwidth = static_cast<std::uint32_t>(
        std::min(50000.0, 20.0 + rng.lognormal(6.0, 1.4)));
    s.flags = dir::kFlagRunning | dir::kFlagValid;
    if (s.bandwidth > 300) s.flags |= dir::kFlagFast;
    if (s.bandwidth > 1200 && rng.chance(0.6))
      s.flags |= dir::kFlagGuard | dir::kFlagStable;
    specs.push_back(s);
  }
  return build(specs, options);
}

}  // namespace ting::scenario
