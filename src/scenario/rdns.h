// Reverse-DNS name synthesis for simulated relays, matching the structure
// the §5.3 residential-classification technique (Schulman & Spring) keys on:
// residential names embed the IP octets/hex and an access-network suffix;
// datacenter names name the hosting provider; some hosts have no rDNS.
#pragma once

#include <string>

#include "util/ip.h"
#include "util/rng.h"

namespace ting::scenario {

enum class HostClass { kResidential, kDatacenter, kNoRdns };

/// Generate a plausible rDNS name for `ip` of the given class in `country`.
/// Returns "" for kNoRdns.
std::string make_rdns(IpAddr ip, HostClass cls, const std::string& country,
                      Rng& rng);

}  // namespace ting::scenario
