#include "scenario/timeline.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "geo/cities.h"
#include "geo/ipalloc.h"
#include "scenario/rdns.h"
#include "util/rng.h"

namespace ting::scenario {

namespace {

/// Dates for Fig 18's window starting 2015-02-28.
std::string date_label(int day) {
  static const int month_days[] = {31, 28, 31, 30, 31, 30,
                                   31, 31, 30, 31, 30, 31};
  int month = 1, dom = 28 + day;  // day 0 = Feb 28 (month index 1)
  while (dom > month_days[month]) {
    dom -= month_days[month];
    month = (month + 1) % 12;
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "2015-%02d-%02d", month + 1, dom);
  return buf;
}

dir::RelayDescriptor make_relay(Rng& rng, geo::IpAllocator& ipalloc,
                                std::size_t ordinal) {
  const geo::City& city = geo::sample_city_tor_weighted(rng);
  HostClass cls;
  geo::HostKind kind;
  const double u = rng.uniform();
  if (u < 0.17) {
    cls = HostClass::kNoRdns;
    kind = rng.chance(0.5) ? geo::HostKind::kResidential
                           : geo::HostKind::kDatacenter;
  } else if (u < 0.17 + 0.51) {
    cls = HostClass::kResidential;
    kind = geo::HostKind::kResidential;
  } else {
    cls = HostClass::kDatacenter;
    kind = geo::HostKind::kDatacenter;
  }
  dir::RelayDescriptor d;
  d.nickname = "r" + std::to_string(ordinal);
  crypto::X25519Key key;
  for (std::size_t i = 0; i < key.size(); i += 8) {
    const std::uint64_t r = rng.next_u64();
    for (std::size_t j = 0; j < 8; ++j)
      key[i + j] = static_cast<std::uint8_t>(r >> (8 * j));
  }
  d.onion_key = key;
  d.fingerprint = dir::Fingerprint::of_identity(key);
  d.address = ipalloc.allocate(city.country_code, kind);
  d.or_port = 9001;
  d.bandwidth = static_cast<std::uint32_t>(
      std::min(50000.0, 20.0 + rng.lognormal(6.0, 1.4)));
  d.country_code = city.country_code;
  d.reverse_dns = make_rdns(d.address, cls, city.country_code, rng);
  return d;
}

}  // namespace

ConsensusTimeline make_timeline(const TimelineOptions& options) {
  Rng rng(options.seed);
  geo::IpAllocator ipalloc(options.seed + 3);
  ConsensusTimeline out;

  dir::Consensus consensus;
  std::size_t ordinal = 0;
  for (std::size_t i = 0; i < options.initial_relays; ++i)
    consensus.add(make_relay(rng, ipalloc, ordinal++));

  for (int day = 0; day < options.days; ++day) {
    if (day > 0) {
      // Churn: some relays leave, slightly more join (the paper notes ~30%
      // year-over-year growth).
      const std::size_t n = consensus.size();
      const auto leave =
          static_cast<std::size_t>(static_cast<double>(n) * options.daily_leave_rate);
      std::vector<dir::Fingerprint> fps;
      fps.reserve(n);
      for (const auto& r : consensus.relays()) fps.push_back(r.fingerprint);
      for (const std::size_t idx : rng.sample_indices(fps.size(), leave))
        consensus.remove(fps[idx]);
      const auto join =
          static_cast<std::size_t>(static_cast<double>(n) * options.daily_join_rate);
      for (std::size_t i = 0; i < join; ++i)
        consensus.add(make_relay(rng, ipalloc, ordinal++));
    }
    std::set<std::uint32_t> nets;
    for (const auto& r : consensus.relays()) nets.insert(r.address.slash24());
    out.days.push_back(DailySnapshot{day, date_label(day), consensus.size(),
                                     nets.size()});
  }
  out.final_consensus = std::move(consensus);
  return out;
}

std::vector<ChurnEvent> make_scan_churn(std::size_t candidates,
                                        const ScanChurnOptions& options) {
  TING_CHECK(candidates >= 1);
  TING_CHECK(options.period > Duration() && options.down_for > Duration());
  Rng rng(options.seed);
  std::vector<ChurnEvent> out;
  std::map<std::size_t, Duration> down_until;  ///< node -> rejoin offset
  Duration when = options.start;
  for (std::size_t k = 0; k < options.events; ++k, when += options.period) {
    // Only nodes that are up at this instant may leave.
    std::vector<std::size_t> up;
    for (std::size_t n = 0; n < candidates; ++n) {
      auto it = down_until.find(n);
      if (it == down_until.end() || it->second <= when) up.push_back(n);
    }
    if (up.empty()) continue;  // the whole population is already down
    const std::size_t pick = up[rng.next_below(up.size())];
    down_until[pick] = when + options.down_for;
    out.push_back(ChurnEvent{when, pick, true});
    out.push_back(ChurnEvent{when + options.down_for, pick, false});
  }
  std::sort(out.begin(), out.end(), [](const ChurnEvent& a, const ChurnEvent& b) {
    return a.at < b.at;
  });
  return out;
}

}  // namespace ting::scenario
