#include "scenario/scenario_file.h"

#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/assert.h"
#include "util/bytes.h"

namespace ting::scenario {

namespace {

constexpr const char* kMagic = "ting-scenario";

struct LineContext {
  const std::string* origin = nullptr;
  std::size_t line = 0;
  std::string where() const {
    std::ostringstream os;
    os << *origin << ":" << line;
    return os.str();
  }
};

double parse_real(const std::string& value, const std::string& key,
                  const LineContext& ctx) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    TING_CHECK_MSG(pos == value.size() && std::isfinite(v),
                   ctx.where() << ": '" << key << "' is not a finite number: '"
                               << value << "'");
    return v;
  } catch (const std::invalid_argument&) {
  } catch (const std::out_of_range&) {
  }
  TING_CHECK_MSG(false, ctx.where() << ": '" << key
                                    << "' is not a finite number: '" << value
                                    << "'");
}

long parse_int(const std::string& value, const std::string& key,
               const LineContext& ctx) {
  const double v = parse_real(value, key, ctx);
  const long n = static_cast<long>(v);
  TING_CHECK_MSG(static_cast<double>(n) == v,
                 ctx.where() << ": '" << key << "' must be an integer: '"
                             << value << "'");
  return n;
}

/// "a:b:c" relay-index triple (the congestion victim circuit).
void parse_triple(const std::string& value, const std::string& key,
                  const LineContext& ctx, int* a, int* b, int* c) {
  const auto parts = split(value, ':');
  TING_CHECK_MSG(parts.size() == 3,
                 ctx.where() << ": '" << key
                             << "' wants <entry>:<middle>:<exit> indices");
  *a = static_cast<int>(parse_int(trim(parts[0]), key, ctx));
  *b = static_cast<int>(parse_int(trim(parts[1]), key, ctx));
  *c = static_cast<int>(parse_int(trim(parts[2]), key, ctx));
}

bool valid_name(const std::string& name) {
  if (name.empty()) return false;
  for (const char ch : name)
    if (!(std::islower(static_cast<unsigned char>(ch)) ||
          std::isdigit(static_cast<unsigned char>(ch)) || ch == '-'))
      return false;
  return true;
}

}  // namespace

ScenarioFile ScenarioFile::parse(const std::string& text,
                                 const std::string& origin) {
  ScenarioFile s;
  s.origin = origin;
  LineContext ctx;
  ctx.origin = &s.origin;

  enum class Section { kNone, kScenario, kTopology, kDynamics, kAdversary };
  Section section = Section::kNone;
  bool saw_magic = false;

  std::istringstream in(text);
  std::string raw;
  while (std::getline(in, raw)) {
    ++ctx.line;
    // Strip comments (a '#' anywhere starts one) and whitespace.
    const std::size_t hash = raw.find('#');
    const std::string line = trim(hash == std::string::npos
                                      ? raw
                                      : raw.substr(0, hash));
    if (line.empty()) continue;

    if (!saw_magic) {
      // First significant line: "ting-scenario v<N>".
      const auto parts = split(line, ' ');
      TING_CHECK_MSG(parts.size() == 2 && parts[0] == kMagic &&
                         parts[1].size() >= 2 && parts[1][0] == 'v',
                     ctx.where()
                         << ": expected header 'ting-scenario v1', got '"
                         << line << "'");
      s.version = static_cast<int>(
          parse_int(parts[1].substr(1), "version", ctx));
      TING_CHECK_MSG(s.version == 1, ctx.where()
                                         << ": unsupported scenario version v"
                                         << s.version << " (this build reads v1)");
      saw_magic = true;
      continue;
    }

    if (line.front() == '[') {
      TING_CHECK_MSG(line.back() == ']',
                     ctx.where() << ": unterminated section header: " << line);
      const std::string name = trim(line.substr(1, line.size() - 2));
      if (name == "scenario") section = Section::kScenario;
      else if (name == "topology") section = Section::kTopology;
      else if (name == "dynamics") section = Section::kDynamics;
      else if (name == "adversary") section = Section::kAdversary;
      else
        TING_CHECK_MSG(false, ctx.where() << ": unknown section [" << name
                                          << "] (expected scenario, topology, "
                                          << "dynamics, or adversary)");
      continue;
    }

    const std::size_t eq = line.find('=');
    TING_CHECK_MSG(eq != std::string::npos,
                   ctx.where() << ": expected 'key = value', got '" << line
                               << "'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    TING_CHECK_MSG(!key.empty() && !value.empty(),
                   ctx.where() << ": empty key or value in '" << line << "'");

    switch (section) {
      case Section::kNone:
        TING_CHECK_MSG(false, ctx.where() << ": '" << key
                                          << "' appears before any section");
        break;
      case Section::kScenario:
        if (key == "name") s.name = value;
        else if (key == "summary") s.summary = value;
        else
          TING_CHECK_MSG(false, ctx.where() << ": unknown [scenario] key '"
                                            << key << "'");
        break;
      case Section::kTopology:
        if (key == "relays") {
          s.relays = static_cast<std::size_t>(parse_int(value, key, ctx));
        } else if (key == "nodes") {
          s.nodes = static_cast<std::size_t>(parse_int(value, key, ctx));
        } else if (key == "seed") {
          s.seed = static_cast<std::uint64_t>(parse_int(value, key, ctx));
        } else if (key == "differential") {
          s.differential = parse_real(value, key, ctx);
          TING_CHECK_MSG(s.differential >= 0 && s.differential <= 1,
                         ctx.where() << ": 'differential' out of [0, 1]");
        } else {
          TING_CHECK_MSG(false, ctx.where() << ": unknown [topology] key '"
                                            << key << "'");
        }
        break;
      case Section::kDynamics:
      case Section::kAdversary:
        if (key == "fault") {
          // The value is one or more clauses in the faults.h grammar;
          // FaultSpec::parse reports the offending clause on error.
          try {
            const FaultSpec parsed = FaultSpec::parse(value);
            s.faults.clauses.insert(s.faults.clauses.end(),
                                    parsed.clauses.begin(),
                                    parsed.clauses.end());
          } catch (const CheckError& e) {
            TING_CHECK_MSG(false, ctx.where() << ": " << e.what());
          }
        } else if (section == Section::kDynamics && key == "churn-rate") {
          s.churn_rate = parse_real(value, key, ctx);
          TING_CHECK_MSG(s.churn_rate >= 0 && s.churn_rate <= 1,
                         ctx.where() << ": 'churn-rate' out of [0, 1]");
        } else if (section == Section::kDynamics && key == "rejoin-rate") {
          s.rejoin_rate = parse_real(value, key, ctx);
          TING_CHECK_MSG(s.rejoin_rate >= 0 && s.rejoin_rate <= 1,
                         ctx.where() << ": 'rejoin-rate' out of [0, 1]");
        } else if (section == Section::kDynamics &&
                   key == "initially-absent") {
          s.initially_absent = parse_real(value, key, ctx);
          TING_CHECK_MSG(s.initially_absent >= 0 && s.initially_absent < 1,
                         ctx.where() << ": 'initially-absent' out of [0, 1)");
        } else if (section == Section::kAdversary &&
                   key == "congestion-rounds") {
          s.congestion.rounds = static_cast<int>(parse_int(value, key, ctx));
          TING_CHECK_MSG(s.congestion.rounds >= 1,
                         ctx.where() << ": 'congestion-rounds' must be >= 1");
          s.congestion.enabled = true;
        } else if (section == Section::kAdversary &&
                   key == "congestion-victim") {
          parse_triple(value, key, ctx, &s.congestion.entry,
                       &s.congestion.middle, &s.congestion.exit);
          s.congestion.enabled = true;
        } else if (section == Section::kAdversary &&
                   key == "congestion-off-path") {
          s.congestion.off_path = static_cast<int>(parse_int(value, key, ctx));
          TING_CHECK_MSG(s.congestion.off_path >= 0,
                         ctx.where() << ": 'congestion-off-path' must be >= 0");
        } else {
          TING_CHECK_MSG(false, ctx.where()
                                    << ": unknown ["
                                    << (section == Section::kDynamics
                                            ? "dynamics"
                                            : "adversary")
                                    << "] key '" << key << "'");
        }
        break;
    }
  }

  TING_CHECK_MSG(saw_magic,
                 origin << ": not a scenario file (missing 'ting-scenario v1' "
                        << "header)");
  s.validate();
  return s;
}

ScenarioFile ScenarioFile::load_file(const std::string& path) {
  std::ifstream f(path);
  TING_CHECK_MSG(f.good(), "cannot open scenario file: " << path);
  std::stringstream buf;
  buf << f.rdbuf();
  return parse(buf.str(), path);
}

std::string ScenarioFile::fault_spec_string() const {
  return faults.clauses.empty() ? "" : faults.to_string();
}

ChurnFeedOptions ScenarioFile::churn_options(
    std::uint64_t seed_override) const {
  ChurnFeedOptions o;
  o.seed = seed_override;
  o.churn_rate = churn_rate;
  o.rejoin_rate = rejoin_rate;
  o.initially_absent = initially_absent;
  return o;
}

void ScenarioFile::validate() const {
  TING_CHECK_MSG(valid_name(name),
                 origin << ": [scenario] name must be non-empty [a-z0-9-]+ "
                        << "(got '" << name << "')");
  TING_CHECK_MSG(!summary.empty(), origin << ": [scenario] summary is required");
  TING_CHECK_MSG(nodes >= 2, origin << ": [topology] nodes must be >= 2");
  TING_CHECK_MSG(relays >= nodes,
                 origin << ": [topology] relays (" << relays
                        << ") must be >= nodes (" << nodes << ")");
  // Fault targets index the scan subset; the daemon scans all relays, so
  // nodes is the binding (smaller) bound.
  faults.validate_targets(nodes);
  if (congestion.enabled) {
    TING_CHECK_MSG(congestion.entry >= 0 && congestion.middle >= 0 &&
                       congestion.exit >= 0,
                   origin << ": [adversary] congestion-victim is required "
                          << "when the congestion attacker is armed");
    TING_CHECK_MSG(congestion.entry != congestion.middle &&
                       congestion.middle != congestion.exit &&
                       congestion.entry != congestion.exit,
                   origin << ": congestion-victim relays must be distinct");
    // The attacker runs on the §4.1 31-relay probe testbed (see
    // scenario_library.h); victim and control candidates index into it.
    for (const int idx : {congestion.entry, congestion.middle,
                          congestion.exit, congestion.off_path})
      TING_CHECK_MSG(idx < 31,
                     origin << ": congestion candidate index " << idx
                            << " out of range for the 31-relay probe testbed");
    TING_CHECK_MSG(congestion.off_path != congestion.entry &&
                       congestion.off_path != congestion.middle &&
                       congestion.off_path != congestion.exit,
                   origin << ": congestion-off-path must not be on the "
                          << "victim circuit");
  }
}

}  // namespace ting::scenario
