// The named scenario library: hostile-network scenario documents baked
// into the binary so `ting scan --scenario lossy-internet` works with no
// files on disk. Each entry's text is byte-identical to the matching
// `examples/scenarios/<name>.ting` (the scenario-matrix CI lint diffs
// them), so the on-disk copies double as editable starting points.
#pragma once

#include <string>
#include <vector>

#include "scenario/scenario_file.h"

namespace ting::scenario {

struct LibraryScenario {
  std::string name;  ///< the `--scenario <name>` handle
  std::string text;  ///< full scenario document (scenario_file.h format)
};

/// The embedded scenarios, in curriculum order (calm first, massacre last).
const std::vector<LibraryScenario>& scenario_library();

/// Look up an embedded scenario by name; nullptr if unknown.
const LibraryScenario* find_scenario(const std::string& name);

/// Resolve a `--scenario <name|path>` argument: a library name wins, then
/// a readable file path; otherwise throws CheckError listing the known
/// scenario names.
ScenarioFile load_scenario(const std::string& name_or_path);

}  // namespace ting::scenario
