// Generated-by-hand from examples/scenarios/*.ting — keep byte-identical
// (the scenario-matrix CI lint runs `ting scenario show --raw <name>` and
// diffs it against the file).
#include "scenario/scenario_library.h"

#include <fstream>
#include <sstream>

#include "util/assert.h"

namespace ting::scenario {

namespace {

constexpr const char* kCalm = R"ting(ting-scenario v1

# A healthy network: no faults, no churn, no adversary. The control run
# the hostile scenarios are compared against.

[scenario]
name = calm
summary = healthy network, no faults - the control baseline

[topology]
relays = 20
nodes = 12
seed = 1
)ting";

constexpr const char* kLossyInternet = R"ting(ting-scenario v1

# Sustained packet loss and degraded links across the whole mesh - the
# ambient badness of measuring over the real internet.

[scenario]
name = lossy-internet
summary = sustained loss and degraded links across the mesh

[topology]
relays = 18
nodes = 10
seed = 7

[dynamics]
fault = loss:*:0.03
fault = degrade:*:4:1.5
churn-rate = 0.02
rejoin-rate = 0.5
)ting";

constexpr const char* kFlashCrowd = R"ting(ting-scenario v1

# A sudden audience: load spikes slam individual relays' links mid-scan,
# then subside. Windows overlap so the scan never sees a quiet mesh.

[scenario]
name = flash-crowd
summary = sudden load spikes slam relay links mid-scan, then subside

[topology]
relays = 20
nodes = 12
seed = 3

[dynamics]
fault = flash:2:15:40:35:0.04
fault = flash:7:45:30:50:0.06
fault = flash:*:90:20:15:0.01
)ting";

constexpr const char* kDiurnal = R"ting(ting-scenario v1

# Daily load curves: every relay's link latency follows a raised cosine
# (quiet at midnight, peak at noon), compressed to two-minute days so a
# scan crosses several of them.

[scenario]
name = diurnal
summary = raised-cosine daily load curves on every link

[topology]
relays = 20
nodes = 12
seed = 5

[dynamics]
fault = diurnal:*:8:120
churn-rate = 0.03
)ting";

constexpr const char* kCongestionAttack = R"ting(ting-scenario v1

# A Murdoch-Danezis congestion adversary: while the scan maps the mesh, an
# attacker floods candidate relays through one-hop circuits and watches a
# victim stream's latency to decide which relays carry it (CCS'05; the
# attack Ting's latency maps sharpen). The probe runs on the calibrated
# 31-relay testbed; indices below address its relays.

[scenario]
name = congestion-attack
summary = Murdoch-Danezis congestion probes against a victim circuit

[topology]
relays = 31
nodes = 10
seed = 901
differential = 0

[adversary]
congestion-rounds = 4
congestion-victim = 2:5:8
congestion-off-path = 20
)ting";

constexpr const char* kMassacre = R"ting(ting-scenario v1

# The worst night of the network's life: a dead cluster never comes up,
# and a crash takes another relay down mid-scan. The quarantine breaker
# must trip on the permanently failing relays and the scan must account
# for every deferred pair.

[scenario]
name = massacre
summary = dead clusters and takedowns; quarantine trips, pairs defer

[topology]
relays = 20
nodes = 12
seed = 11

[adversary]
fault = die:3
fault = die:7
fault = die:9
fault = crash:1:30:60
)ting";

}  // namespace

const std::vector<LibraryScenario>& scenario_library() {
  static const std::vector<LibraryScenario> kLibrary = {
      {"calm", kCalm},
      {"lossy-internet", kLossyInternet},
      {"flash-crowd", kFlashCrowd},
      {"diurnal", kDiurnal},
      {"congestion-attack", kCongestionAttack},
      {"massacre", kMassacre},
  };
  return kLibrary;
}

const LibraryScenario* find_scenario(const std::string& name) {
  for (const auto& entry : scenario_library())
    if (entry.name == name) return &entry;
  return nullptr;
}

ScenarioFile load_scenario(const std::string& name_or_path) {
  if (const LibraryScenario* entry = find_scenario(name_or_path)) {
    ScenarioFile s =
        ScenarioFile::parse(entry->text, "<embedded:" + entry->name + ">");
    TING_CHECK_MSG(s.name == entry->name,
                   "embedded scenario '" << entry->name
                                         << "' declares mismatched name '"
                                         << s.name << "'");
    return s;
  }
  if (std::ifstream probe(name_or_path); probe.good())
    return ScenarioFile::load_file(name_or_path);
  std::ostringstream known;
  for (const auto& entry : scenario_library()) known << " " << entry.name;
  TING_CHECK_MSG(false, "unknown scenario '"
                            << name_or_path
                            << "': not a library name (known:" << known.str()
                            << ") and not a readable file");
}

}  // namespace ting::scenario
