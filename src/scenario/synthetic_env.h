// SyntheticDaemonEnvironment — the paper-scale backend for the scan daemon.
//
// The testbed environment simulates every cell of every circuit, which is
// the right fidelity for engine work but caps daemon runs at a few hundred
// relays. The paper's regime is the full consensus — ~6,000 relays, ~18M
// unordered pairs (§5.3) — where what needs exercising is the *daemon*:
// delta planning against churn, TTL expiry, budget cuts, crash-resume, the
// store's memory behavior, and the serving layer downstream. This
// environment answers scan_pairs directly from the SharedTopology's frozen
// base-RTT table plus a deterministic per-pair jitter/fault draw — no event
// loop, no circuits — so a 6,000-relay epoch costs microseconds per pair.
//
// Determinism contract: every pair's outcome (estimate or synthetic fault)
// is a pure function of (engine pair_seed, x, y) via the same pair_reseed()
// mixing the deterministic engines use, and recorded with a zero timestamp
// exactly like the deterministic engines (the daemon owns the epoch clock).
// Seeded runs are therefore byte-deterministic, and a journal-resumed epoch
// reproduces the interrupted run's artifacts bit-for-bit — the same
// guarantees the testbed environment provides, pinned at small n by a
// sanity test comparing the two (plan structure identical; estimates agree
// to within the jitter and forwarding-delay tolerance).
//
// Fidelity note: estimates are base_rtt + uniform jitter in [0, noise_ms).
// The testbed's min-of-N sampling also lands just above base RTT (relay
// forwarding cost + residual queueing), so the synthetic matrix is
// realistic enough for the serving layer; what it deliberately lacks is
// per-cell dynamics (congestion, fault windows, quarantine interplay).
#pragma once

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <vector>

#include "scenario/churn_feed.h"
#include "scenario/topology.h"
#include "ting/daemon.h"

namespace ting::scenario {

struct SyntheticEnvOptions {
  /// Consensus size (the paper's live network is ~6,000 relays).
  std::size_t relays = 6000;
  /// Topology seed and knobs (geography, bandwidth, base-RTT model).
  TestbedOptions testbed;
  ChurnFeedOptions churn;
  /// Uniform jitter added on top of the base RTT, per pair, in [0, this).
  double noise_ms = 0.5;
  /// Probability a pair resolves as a synthetic measurement failure
  /// (deterministic per (pair_seed, x, y) — re-measuring fails again, which
  /// is exactly how the deterministic testbed engines behave).
  double failure_rate = 0.0;
  /// Recorded sample count per estimate (bookkeeping only).
  int samples = 8;
};

class SyntheticDaemonEnvironment : public meas::DaemonEnvironment {
 public:
  explicit SyntheticDaemonEnvironment(const SyntheticEnvOptions& options);

  void advance_epoch(std::size_t epoch) override;
  std::vector<dir::Fingerprint> nodes() override;
  meas::ScanReport scan_pairs(const std::vector<dir::Fingerprint>& nodes,
                              const meas::ParallelScanner::PairList& pairs,
                              meas::RttMatrix& epoch_matrix,
                              const meas::ScanOptions& options,
                              const meas::ScanProgress& progress) override;

  const SharedTopology& topology() const { return *topology_; }
  /// Ground-truth base RTT between two relays, in ms.
  double base_rtt_ms(const dir::Fingerprint& x,
                     const dir::Fingerprint& y) const;
  /// Wall-clock milliseconds spent building the shared topology (the only
  /// construction this environment pays).
  double world_construct_ms() const { return world_construct_ms_; }

 private:
  SyntheticEnvOptions options_;
  TopologyPtr topology_;
  double world_construct_ms_ = 0;
  /// fp -> host id in the base-RTT table (relay i is host i+1; host 0 is
  /// the measurement vantage).
  std::unordered_map<dir::Fingerprint, std::size_t> host_of_;
  std::unique_ptr<ChurnFeed> feed_;
};

}  // namespace ting::scenario
