// Testbed-backed shard worlds for the sharded scan engine: every shard gets
// a complete, independent live_tor() clone built from the same
// ShardWorldOptions — same seed, therefore the same relay fingerprints,
// geography, and latency model in every world — so per-shard measurements
// land on the same logical pairs and merge cleanly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "scenario/testbed.h"
#include "simnet/fault_plan.h"
#include "ting/sharded_scan.h"

namespace ting::scenario {

struct ShardWorldOptions {
  /// Testbed size (live_tor relays) and which prefix of them is scanned.
  std::size_t relays = 25;
  std::size_t scan_nodes = 12;
  /// World construction parameters — identical across shards by design.
  TestbedOptions testbed;
  meas::TingConfig ting;
  /// Measurement hosts per shard world (ParallelScanner concurrency K
  /// inside the shard; deterministic mode only drives the first).
  std::size_t pool = 1;
  /// Optional fault spec (scenario/faults.h grammar), applied to each
  /// world's scan nodes. Faults fire at per-shard virtual times, so
  /// bit-identity across shard counts no longer holds.
  std::string fault_spec;
};

/// One shard's world: a Testbed plus its measurers and (optional) fault
/// plan, owned together so the factory result is self-contained.
class TestbedShardWorld : public meas::ShardWorld {
 public:
  explicit TestbedShardWorld(const ShardWorldOptions& options);

  std::vector<meas::TingMeasurer*> measurers() override { return pool_; }
  void reseed(std::uint64_t seed) override {
    world_.reseed_stochastics(seed);
  }
  const dir::Consensus* live_consensus() override {
    return &world_.consensus();
  }
  const simnet::FaultPlan* fault_plan() override {
    return has_faults_ ? plan_.get() : nullptr;
  }

  Testbed& world() { return world_; }

 private:
  Testbed world_;
  std::unique_ptr<simnet::FaultPlan> plan_;
  std::vector<std::unique_ptr<meas::TingMeasurer>> measurers_;
  std::vector<meas::TingMeasurer*> pool_;
  bool has_faults_ = false;
};

/// A factory building identical TestbedShardWorlds (one per worker thread).
meas::ShardWorldFactory make_testbed_shard_factory(ShardWorldOptions options);

/// The scan-node fingerprints such worlds will carry — deterministic from
/// the options alone, so callers can pick nodes without keeping a shard
/// world around (builds a throwaway world without starting its controller).
std::vector<dir::Fingerprint> shard_scan_nodes(
    const ShardWorldOptions& options);

}  // namespace ting::scenario
