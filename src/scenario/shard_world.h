// Testbed-backed shard worlds for the sharded scan engine: every shard gets
// a complete, independent live_tor() clone built from the same
// ShardWorldOptions — same seed, therefore the same relay fingerprints,
// geography, and latency model in every world — so per-shard measurements
// land on the same logical pairs and merge cleanly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "scenario/testbed.h"
#include "simnet/fault_plan.h"
#include "ting/sharded_scan.h"

namespace ting::scenario {

struct ShardWorldOptions {
  /// Testbed size (live_tor relays) and which prefix of them is scanned.
  std::size_t relays = 25;
  std::size_t scan_nodes = 12;
  /// World construction parameters — identical across shards by design.
  TestbedOptions testbed;
  meas::TingConfig ting;
  /// Measurement hosts per shard world (ParallelScanner concurrency K
  /// inside the shard; deterministic mode only drives the first).
  std::size_t pool = 1;
  /// Optional fault spec (scenario/faults.h grammar), applied to each
  /// world's scan nodes. Faults fire at per-shard virtual times, so
  /// bit-identity across shard counts no longer holds.
  std::string fault_spec;
  /// Build the immutable topology (geography, identities, base-RTT table)
  /// once and share it read-only across all shard worlds. When false, every
  /// shard re-derives the full topology from the seed — the historical
  /// clone-per-shard behaviour, kept as the parity baseline; output is
  /// bit-identical either way.
  bool share_topology = true;
};

/// One shard's world: a Testbed plus its measurers and (optional) fault
/// plan, owned together so the factory result is self-contained.
class TestbedShardWorld : public meas::ShardWorld {
 public:
  /// Builds a private topology (honouring options.share_topology only in
  /// the factory, which passes one in).
  explicit TestbedShardWorld(const ShardWorldOptions& options);
  /// Instantiates the mutable world half over a pre-built shared topology.
  TestbedShardWorld(const ShardWorldOptions& options, TopologyPtr topology);

  std::vector<meas::TingMeasurer*> measurers() override { return pool_; }
  void reseed(std::uint64_t seed) override {
    world_.reseed_stochastics(seed);
  }
  const dir::Consensus* live_consensus() override {
    return &world_.consensus();
  }
  const simnet::FaultPlan* fault_plan() override {
    return has_faults_ ? plan_.get() : nullptr;
  }

  Testbed& world() { return world_; }

 private:
  Testbed world_;
  std::unique_ptr<simnet::FaultPlan> plan_;
  std::vector<std::unique_ptr<meas::TingMeasurer>> measurers_;
  std::vector<meas::TingMeasurer*> pool_;
  bool has_faults_ = false;
};

/// A factory building identical TestbedShardWorlds (one per worker thread).
/// With options.share_topology (the default) the immutable topology is
/// built once, eagerly, on the calling thread, and every worker world is
/// instantiated over it; otherwise each worker re-derives everything.
meas::ShardWorldFactory make_testbed_shard_factory(ShardWorldOptions options);

/// Same, over a topology the caller already built (e.g. to also derive the
/// scan-node list without a second topology build).
meas::ShardWorldFactory make_testbed_shard_factory(ShardWorldOptions options,
                                                   TopologyPtr topology);

/// The topology such worlds share: live_tor(options.relays) frozen at the
/// immutable layer.
TopologyPtr shard_topology(const ShardWorldOptions& options);

/// The scan-node fingerprints such worlds will carry — deterministic from
/// the options alone; reads them off the frozen topology without building
/// any world.
std::vector<dir::Fingerprint> shard_scan_nodes(
    const ShardWorldOptions& options);
std::vector<dir::Fingerprint> shard_scan_nodes(
    const ShardWorldOptions& options, const TopologyPtr& topology);

}  // namespace ting::scenario
