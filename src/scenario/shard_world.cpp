#include "scenario/shard_world.h"

#include <algorithm>

#include "scenario/faults.h"
#include "util/assert.h"

namespace ting::scenario {

TestbedShardWorld::TestbedShardWorld(const ShardWorldOptions& options)
    : TestbedShardWorld(options, shard_topology(options)) {}

TestbedShardWorld::TestbedShardWorld(const ShardWorldOptions& options,
                                     TopologyPtr topology)
    : world_(testbed_from_topology(std::move(topology))) {
  std::vector<dir::Fingerprint> nodes;
  const std::size_t n = std::min(options.scan_nodes, world_.relay_count());
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) nodes.push_back(world_.fp(i));

  plan_ = std::make_unique<simnet::FaultPlan>(world_.net());
  if (!options.fault_spec.empty()) {
    const FaultSpec spec = FaultSpec::parse(options.fault_spec);
    apply_fault_spec(spec, world_, nodes, *plan_, options.testbed.seed);
    has_faults_ = true;
  }

  for (meas::MeasurementHost* host :
       world_.measurement_pool(std::max<std::size_t>(1, options.pool))) {
    measurers_.push_back(
        std::make_unique<meas::TingMeasurer>(*host, options.ting));
    pool_.push_back(measurers_.back().get());
  }
}

meas::ShardWorldFactory make_testbed_shard_factory(ShardWorldOptions options) {
  if (options.share_topology)
    return make_testbed_shard_factory(options, shard_topology(options));
  // Legacy clone path: every worker re-derives the topology from the seed.
  return [options](std::size_t) -> std::unique_ptr<meas::ShardWorld> {
    return std::make_unique<TestbedShardWorld>(options,
                                               shard_topology(options));
  };
}

meas::ShardWorldFactory make_testbed_shard_factory(ShardWorldOptions options,
                                                   TopologyPtr topology) {
  TING_CHECK(topology != nullptr);
  return [options,
          topology = std::move(topology)](std::size_t)
             -> std::unique_ptr<meas::ShardWorld> {
    return std::make_unique<TestbedShardWorld>(options, topology);
  };
}

TopologyPtr shard_topology(const ShardWorldOptions& options) {
  return SharedTopology::live_tor(options.relays, options.testbed);
}

std::vector<dir::Fingerprint> shard_scan_nodes(
    const ShardWorldOptions& options) {
  return shard_scan_nodes(options, shard_topology(options));
}

std::vector<dir::Fingerprint> shard_scan_nodes(
    const ShardWorldOptions& options, const TopologyPtr& topology) {
  std::vector<dir::Fingerprint> nodes;
  const std::size_t n =
      std::min(options.scan_nodes, topology->relays().size());
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    nodes.push_back(topology->relays()[i].fingerprint);
  return nodes;
}

}  // namespace ting::scenario
