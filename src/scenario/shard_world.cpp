#include "scenario/shard_world.h"

#include <algorithm>

#include "scenario/faults.h"
#include "util/assert.h"

namespace ting::scenario {

TestbedShardWorld::TestbedShardWorld(const ShardWorldOptions& options)
    : world_(live_tor(options.relays, options.testbed)) {
  std::vector<dir::Fingerprint> nodes;
  const std::size_t n = std::min(options.scan_nodes, world_.relay_count());
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) nodes.push_back(world_.fp(i));

  plan_ = std::make_unique<simnet::FaultPlan>(world_.net());
  if (!options.fault_spec.empty()) {
    const FaultSpec spec = FaultSpec::parse(options.fault_spec);
    apply_fault_spec(spec, world_, nodes, *plan_, options.testbed.seed);
    has_faults_ = true;
  }

  for (meas::MeasurementHost* host :
       world_.measurement_pool(std::max<std::size_t>(1, options.pool))) {
    measurers_.push_back(
        std::make_unique<meas::TingMeasurer>(*host, options.ting));
    pool_.push_back(measurers_.back().get());
  }
}

meas::ShardWorldFactory make_testbed_shard_factory(ShardWorldOptions options) {
  return [options](std::size_t) -> std::unique_ptr<meas::ShardWorld> {
    return std::make_unique<TestbedShardWorld>(options);
  };
}

std::vector<dir::Fingerprint> shard_scan_nodes(
    const ShardWorldOptions& options) {
  TestbedOptions to = options.testbed;
  to.start_measurement_host = false;
  Testbed tb = live_tor(options.relays, to);
  std::vector<dir::Fingerprint> nodes;
  const std::size_t n = std::min(options.scan_nodes, tb.relay_count());
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) nodes.push_back(tb.fp(i));
  return nodes;
}

}  // namespace ting::scenario
