// A synthetic two-month consensus history standing in for the Tor Metrics
// archives of Feb 28 – Apr 28 2015 (§5.3, Fig 18): daily snapshots of a
// churning, slowly growing relay population with realistic address
// allocation (residential vs datacenter /24 packing) and rDNS names.
#pragma once

#include <string>
#include <vector>

#include "dir/consensus.h"
#include "util/time.h"

namespace ting::scenario {

struct TimelineOptions {
  std::uint64_t seed = 2015;
  int days = 60;
  /// Initial population, tuned to the paper's Feb 2015 figures (~6500
  /// running relays, 5426–6044 unique /24s).
  std::size_t initial_relays = 6400;
  double daily_leave_rate = 0.020;   ///< fraction of relays lost per day
  /// Slightly above the leave rate: ~+0.08%/day ≈ the paper's ~30%/year.
  double daily_join_rate = 0.0208;
};

struct DailySnapshot {
  int day = 0;                ///< days since the timeline start
  std::string date;           ///< "2015-02-28" style label
  std::size_t total_relays = 0;
  std::size_t unique_slash24 = 0;
};

struct ConsensusTimeline {
  std::vector<DailySnapshot> days;
  /// The final day's full consensus (descriptors with rDNS and addresses),
  /// used by the §5.3 residential/datacenter classification.
  dir::Consensus final_consensus;
};

ConsensusTimeline make_timeline(const TimelineOptions& options = {});

// ---- mid-scan churn ---------------------------------------------------------
//
// The daily timeline above models slow population drift; a running scan
// instead sees churn at consensus-interval granularity: a relay drops out of
// one consensus and (often) reappears a few intervals later. make_scan_churn
// produces that schedule — a deterministic list of leave/rejoin events over a
// scan's candidate nodes — which a FaultPlan turns into directory updates.

struct ScanChurnOptions {
  std::uint64_t seed = 7;
  Duration start = Duration::seconds(30);    ///< offset of the first leave
  Duration period = Duration::seconds(60);   ///< gap between leave events
  std::size_t events = 3;                    ///< number of leave events
  Duration down_for = Duration::seconds(120); ///< leave-to-rejoin gap
};

struct ChurnEvent {
  Duration at;             ///< offset from the schedule's start
  std::size_t node_index;  ///< index into the scan's candidate list
  bool leave = true;       ///< false: the relay rejoins the consensus
};

/// Build a leave/rejoin schedule over `candidates` scan nodes (distinct
/// nodes are picked while any remain up; a node is never re-picked while
/// down). Events are sorted by time.
std::vector<ChurnEvent> make_scan_churn(std::size_t candidates,
                                        const ScanChurnOptions& options = {});

}  // namespace ting::scenario
