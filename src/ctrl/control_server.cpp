#include "ctrl/control_server.h"

#include <sstream>

#include "util/bytes.h"
#include "util/log.h"

namespace ting::ctrl {

namespace {
Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

const char* circuit_state_name(tor::CircuitState s) {
  switch (s) {
    case tor::CircuitState::kBuilding: return "LAUNCHED";
    case tor::CircuitState::kBuilt: return "BUILT";
    case tor::CircuitState::kFailed: return "FAILED";
    case tor::CircuitState::kClosed: return "CLOSED";
  }
  return "?";
}
}  // namespace

ControlServer::ControlServer(tor::OnionProxy& op, std::uint16_t port,
                             std::string password)
    : op_(op), port_(port), password_(std::move(password)) {
  simnet::Listener* listener = op_.net().listen(op_.host(), port_);
  listener->set_on_accept([this](simnet::ConnPtr conn) {
    auto session = std::make_shared<Session>();
    session->conn = conn;
    sessions_[conn.get()] = session;
    conn->set_on_close([this, raw = conn.get()]() { sessions_.erase(raw); });
    conn->set_on_message([this, session](Bytes msg) {
      handle_command(session, std::string(msg.begin(), msg.end()));
    });
  });
  op_.set_event_sink([this](std::string event) { broadcast_event(event); });
}

Endpoint ControlServer::endpoint() const {
  return Endpoint{op_.net().ip_of(op_.host()), port_};
}

void ControlServer::broadcast_event(const std::string& event) {
  const bool is_circ = starts_with(event, "CIRC");
  const bool is_stream = starts_with(event, "STREAM");
  for (auto& [raw, session] : sessions_) {
    if (!session->authenticated) continue;
    if ((is_circ && session->events_circ) ||
        (is_stream && session->events_stream))
      session->conn->send(bytes_of("650 " + event));
  }
}

void ControlServer::handle_command(const std::shared_ptr<Session>& session,
                                   const std::string& raw_line) {
  const std::string line = trim(raw_line);
  const std::size_t space = line.find(' ');
  const std::string verb = to_upper(line.substr(0, space));
  const std::string args =
      space == std::string::npos ? "" : trim(line.substr(space + 1));
  auto reply = [&](const std::string& text) {
    session->conn->send(bytes_of(text));
  };

  if (verb == "PROTOCOLINFO") {
    reply("250-PROTOCOLINFO 1\n250-AUTH METHODS=" +
          std::string(password_.empty() ? "NULL" : "HASHEDPASSWORD") +
          "\n250-VERSION Tor=\"0.2.4.22-ting-sim\"\n250 OK");
    return;
  }
  if (verb == "AUTHENTICATE") {
    std::string given = args;
    if (given.size() >= 2 && given.front() == '"' && given.back() == '"')
      given = given.substr(1, given.size() - 2);
    if (given == password_) {
      session->authenticated = true;
      reply("250 OK");
    } else {
      reply("515 Authentication failed");
    }
    return;
  }
  if (verb == "QUIT") {
    reply("250 closing connection");
    session->conn->close();
    return;
  }
  if (!session->authenticated) {
    reply("514 Authentication required");
    return;
  }

  if (verb == "SETEVENTS") {
    session->events_circ = false;
    session->events_stream = false;
    bool ok = true;
    for (const std::string& ev : split(args, ' ')) {
      const std::string e = to_upper(trim(ev));
      if (e == "CIRC") session->events_circ = true;
      else if (e == "STREAM") session->events_stream = true;
      else if (!e.empty()) ok = false;
    }
    reply(ok ? "250 OK" : "552 Unrecognized event");
    return;
  }
  if (verb == "SETCONF") {
    reply(cmd_setconf(args));
    return;
  }
  if (verb == "GETINFO") {
    reply(cmd_getinfo(args));
    return;
  }
  if (verb == "EXTENDCIRCUIT") {
    reply(cmd_extendcircuit(session, args));
    return;
  }
  if (verb == "ATTACHSTREAM") {
    reply(cmd_attachstream(args));
    return;
  }
  if (verb == "SIGNAL") {
    if (to_upper(args) == "NEWNYM") {
      op_.new_identity();
      reply("250 OK");
    } else {
      reply("552 Unrecognized signal");
    }
    return;
  }
  if (verb == "CLOSECIRCUIT") {
    try {
      const auto handle =
          static_cast<tor::CircuitHandle>(std::stoul(args));
      op_.close_circuit(handle);
      reply("250 OK");
    } catch (const std::exception&) {
      reply("552 Unknown circuit");
    }
    return;
  }
  reply("510 Unrecognized command \"" + verb + "\"");
}

std::string ControlServer::cmd_setconf(const std::string& args) {
  for (const std::string& kv : split(args, ' ')) {
    const auto parts = split(trim(kv), '=');
    if (parts.size() != 2) continue;
    if (parts[0] == "__LeaveStreamsUnattached") {
      op_.set_leave_streams_unattached(parts[1] == "1");
      return "250 OK";
    }
  }
  return "552 Unrecognized option";
}

std::string ControlServer::cmd_getinfo(const std::string& arg) {
  if (arg == "version")
    return "250-version=0.2.4.22-ting-sim\n250 OK";
  if (arg == "circuit-status") {
    std::ostringstream os;
    os << "250+circuit-status=\n";
    for (const tor::CircuitHandle h : op_.circuit_handles()) {
      os << h << " " << circuit_state_name(op_.circuit_state(h));
      const auto path = op_.circuit_path(h);
      for (std::size_t i = 0; i < path.size(); ++i)
        os << (i == 0 ? " $" : ",$") << path[i].hex();
      os << "\n";
    }
    os << ".\n250 OK";
    return os.str();
  }
  if (arg == "stream-status") {
    std::ostringstream os;
    os << "250+stream-status=\n";
    for (const auto& s : op_.unattached_streams())
      os << s->id() << " NEW 0 " << s->target().str() << "\n";
    os << ".\n250 OK";
    return os.str();
  }
  if (arg == "entry-guards") {
    std::ostringstream os;
    os << "250+entry-guards=\n";
    for (const auto& fp : op_.guard_set()) os << "$" << fp.hex() << " up\n";
    os << ".\n250 OK";
    return os.str();
  }
  if (arg == "ns/all") {
    std::ostringstream os;
    os << "250+ns/all=\n";
    for (const auto& r : op_.consensus().relays())
      os << "r " << r.nickname << " $" << r.fingerprint.hex() << " "
         << r.address.str() << " " << r.or_port << " " << r.bandwidth << "\n";
    os << ".\n250 OK";
    return os.str();
  }
  return "552 Unrecognized key \"" + arg + "\"";
}

std::string ControlServer::cmd_extendcircuit(
    const std::shared_ptr<Session>& session, const std::string& args) {
  // Grammar: "0 fp1,fp2,..." — 0 means "new circuit" (extending existing
  // circuits mid-flight is not needed by Ting and not supported).
  const auto parts = split(args, ' ');
  if (parts.size() != 2 || parts[0] != "0")
    return "512 syntax: EXTENDCIRCUIT 0 fp,fp,...";
  std::vector<dir::Fingerprint> path;
  try {
    for (const std::string& fp : split(parts[1], ','))
      path.push_back(dir::Fingerprint::from_hex(trim(fp)));
  } catch (const CheckError&) {
    return "552 malformed fingerprint";
  }
  // Failure surfaces asynchronously as a 650 CIRC ... FAILED event, exactly
  // like tor; the synchronous reply only confirms launch.
  const tor::CircuitHandle h = op_.build_circuit(path, {}, {});
  (void)session;
  return "250 EXTENDED " + std::to_string(h);
}

std::string ControlServer::cmd_attachstream(const std::string& args) {
  const auto parts = split(args, ' ');
  if (parts.size() != 2) return "512 syntax: ATTACHSTREAM <stream> <circuit>";
  try {
    const auto sid = static_cast<std::uint16_t>(std::stoul(parts[0]));
    const auto circ = static_cast<tor::CircuitHandle>(std::stoul(parts[1]));
    if (op_.attach_stream(sid, circ)) return "250 OK";
    return "552 Unknown stream or circuit not built";
  } catch (const std::exception&) {
    return "552 malformed ATTACHSTREAM";
  }
}

}  // namespace ting::ctrl
