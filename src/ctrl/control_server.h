// The Tor control port, server side.
//
// Ting drives measurement entirely through this interface (the original
// implementation uses the Stem library against tor's control port), so the
// protocol surface it needs is implemented faithfully:
//
//   PROTOCOLINFO                      -> 250-PROTOCOLINFO ... 250 OK
//   AUTHENTICATE [pw]                 -> 250 OK (gates everything else)
//   SETEVENTS [CIRC] [STREAM]         -> choose which 650 events arrive
//   SETCONF __LeaveStreamsUnattached=1-> toggle manual stream attachment
//   EXTENDCIRCUIT 0 fp1,fp2,...      -> 250 EXTENDED <id>, then 650 CIRC
//   ATTACHSTREAM <stream> <circuit>   -> 250 OK
//   CLOSECIRCUIT <circuit>            -> 250 OK
//   GETINFO circuit-status|stream-status|ns/all|version
//   QUIT                              -> 250 closing connection
//
// Transport framing: one control command per message, one (possibly
// multi-line) reply per message; asynchronous events are separate messages
// beginning with "650 " (a documented simplification of CRLF line framing —
// the command grammar and status codes follow the control spec).
#pragma once

#include <map>
#include <string>

#include "simnet/network.h"
#include "tor/onion_proxy.h"

namespace ting::ctrl {

inline constexpr std::uint16_t kControlPort = 9051;

class ControlServer {
 public:
  /// Binds the control port on the OP's host and hooks the OP's event sink.
  ControlServer(tor::OnionProxy& op, std::uint16_t port = kControlPort,
                std::string password = "");

  std::uint16_t port() const { return port_; }
  Endpoint endpoint() const;

 private:
  struct Session {
    simnet::ConnPtr conn;
    bool authenticated = false;
    bool events_circ = false;
    bool events_stream = false;
  };

  void handle_command(const std::shared_ptr<Session>& session,
                      const std::string& line);
  std::string cmd_getinfo(const std::string& arg);
  std::string cmd_extendcircuit(const std::shared_ptr<Session>& session,
                                const std::string& args);
  std::string cmd_attachstream(const std::string& args);
  std::string cmd_setconf(const std::string& args);
  void broadcast_event(const std::string& event);

  tor::OnionProxy& op_;
  std::uint16_t port_;
  std::string password_;
  std::map<simnet::Connection*, std::shared_ptr<Session>> sessions_;
};

}  // namespace ting::ctrl
