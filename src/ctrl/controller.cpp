#include "ctrl/controller.h"

#include "util/bytes.h"
#include "util/log.h"

namespace ting::ctrl {

namespace {
Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }
}  // namespace

void Controller::create(simnet::Network& net, simnet::HostId from,
                        Endpoint control_endpoint, const std::string& password,
                        std::function<void(Ptr)> on_ready,
                        std::function<void(std::string)> on_fail) {
  net.connect(
      from, control_endpoint, simnet::Protocol::kTcp,
      [password, on_ready = std::move(on_ready),
       on_fail](simnet::ConnPtr conn) {
        auto ctl = Ptr(new Controller());
        ctl->wire(std::move(conn));
        // Handshake: AUTHENTICATE, then subscribe to CIRC/STREAM events.
        ctl->raw_command(
            "AUTHENTICATE \"" + password + "\"",
            [ctl, on_ready, on_fail](std::string reply) {
              if (!starts_with(reply, "250")) {
                if (on_fail) on_fail("authentication failed: " + reply);
                ctl->conn_->close();
                return;
              }
              ctl->raw_command("SETEVENTS CIRC STREAM",
                               [ctl, on_ready](std::string) { on_ready(ctl); });
            });
      },
      on_fail);
}

void Controller::wire(simnet::ConnPtr conn) {
  conn_ = std::move(conn);
  auto self = shared_from_this();
  conn_->set_on_message([self](Bytes msg) {
    self->on_message(std::string(msg.begin(), msg.end()));
  });
}

void Controller::on_message(const std::string& text) {
  if (starts_with(text, "650 ")) {
    handle_event(text.substr(4));
    return;
  }
  if (pending_replies_.empty()) {
    TING_WARN("controller: unsolicited reply: " << text);
    return;
  }
  auto handler = std::move(pending_replies_.front());
  pending_replies_.pop_front();
  if (handler) handler(text);
}

void Controller::raw_command(const std::string& command,
                             std::function<void(std::string)> on_reply) {
  TING_CHECK_MSG(conn_ && conn_->is_open(), "controller connection closed");
  pending_replies_.push_back(std::move(on_reply));
  conn_->send(bytes_of(command));
}

void Controller::handle_event(const std::string& event) {
  if (on_event_) {
    // Invoke a copy: the handler may replace itself mid-call.
    auto fn = on_event_;
    fn(event);
  }
  const auto parts = split(event, ' ');
  if (parts.size() >= 3 && parts[0] == "CIRC") {
    const auto handle =
        static_cast<tor::CircuitHandle>(std::stoul(parts[1]));
    auto it = build_watches_.find(handle);
    if (it != build_watches_.end()) {
      if (parts[2] == "BUILT") {
        auto watch = std::move(it->second);
        build_watches_.erase(it);
        if (watch.on_built) watch.on_built(handle);
      } else if (parts[2] == "FAILED" || parts[2] == "CLOSED") {
        auto watch = std::move(it->second);
        build_watches_.erase(it);
        if (watch.on_fail) watch.on_fail(event);
      }
    }
    return;
  }
  // "STREAM <id> NEW 0 <ip:port>"
  if (parts.size() >= 5 && parts[0] == "STREAM" && parts[2] == "NEW") {
    const auto stream_id = static_cast<std::uint16_t>(std::stoul(parts[1]));
    if (!stream_waiters_.empty()) {
      auto waiter = std::move(stream_waiters_.front());
      stream_waiters_.pop_front();
      waiter.fn(stream_id, parts[4]);
      return;
    }
    if (on_stream_new_) {
      auto fn = on_stream_new_;
      fn(stream_id, parts[4]);
    }
  }
}

Controller::StreamWaitId Controller::expect_stream_new(
    std::function<void(std::uint16_t, std::string)> fn) {
  const StreamWaitId id = next_stream_wait_id_++;
  stream_waiters_.push_back(StreamWaiter{id, std::move(fn)});
  return id;
}

void Controller::cancel_stream_wait(StreamWaitId id) {
  for (auto it = stream_waiters_.begin(); it != stream_waiters_.end(); ++it) {
    if (it->id == id) {
      stream_waiters_.erase(it);
      return;
    }
  }
}

void Controller::extend_circuit(
    const std::vector<dir::Fingerprint>& path,
    std::function<void(tor::CircuitHandle)> on_built,
    std::function<void(std::string)> on_fail) {
  std::string fps;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i) fps += ",";
    fps += path[i].hex();
  }
  auto self = shared_from_this();
  raw_command(
      "EXTENDCIRCUIT 0 " + fps,
      [self, on_built = std::move(on_built),
       on_fail = std::move(on_fail)](std::string reply) mutable {
        if (!starts_with(reply, "250 EXTENDED ")) {
          if (on_fail) on_fail(reply);
          return;
        }
        const auto handle = static_cast<tor::CircuitHandle>(
            std::stoul(reply.substr(std::string("250 EXTENDED ").size())));
        self->build_watches_[handle] =
            BuildWatch{std::move(on_built), std::move(on_fail)};
      });
}

void Controller::attach_stream(std::uint16_t stream_id,
                               tor::CircuitHandle circuit,
                               std::function<void(bool)> on_done) {
  raw_command("ATTACHSTREAM " + std::to_string(stream_id) + " " +
                  std::to_string(circuit),
              [on_done = std::move(on_done)](std::string reply) {
                if (on_done) on_done(starts_with(reply, "250"));
              });
}

void Controller::close_circuit(tor::CircuitHandle circuit,
                               std::function<void()> on_done) {
  raw_command("CLOSECIRCUIT " + std::to_string(circuit),
              [on_done = std::move(on_done)](std::string) {
                if (on_done) on_done();
              });
}

void Controller::set_leave_streams_unattached(bool value,
                                              std::function<void()> on_done) {
  raw_command(std::string("SETCONF __LeaveStreamsUnattached=") +
                  (value ? "1" : "0"),
              [on_done = std::move(on_done)](std::string) {
                if (on_done) on_done();
              });
}

void Controller::get_info(const std::string& key,
                          std::function<void(std::string)> on_reply) {
  raw_command("GETINFO " + key, std::move(on_reply));
}

void Controller::quit() {
  if (conn_ && conn_->is_open()) {
    raw_command("QUIT", {});
    conn_->close();
  }
}

}  // namespace ting::ctrl
