// Controller: the client side of the control protocol — the role the Stem
// library plays for the original Ting implementation (§3.1). Wraps the raw
// command/reply exchange in a typed, callback-based API:
//
//   Controller::create(...)            connect + AUTHENTICATE + SETEVENTS
//   extend_circuit(path, ...)          EXTENDCIRCUIT 0 fp,... then wait for
//                                      the 650 CIRC <id> BUILT/FAILED event
//   attach_stream(stream, circuit, ..) ATTACHSTREAM
//   close_circuit(circuit)             CLOSECIRCUIT
//   set_leave_streams_unattached(b)    SETCONF __LeaveStreamsUnattached
//   get_info(key, ...)                 GETINFO
//
// Stream-NEW notifications (650 STREAM <id> NEW ...) arrive through
// set_on_stream_new, which is how Ting learns the stream id it must attach.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dir/fingerprint.h"
#include "simnet/network.h"
#include "tor/onion_proxy.h"

namespace ting::ctrl {

class Controller : public std::enable_shared_from_this<Controller> {
 public:
  using Ptr = std::shared_ptr<Controller>;

  /// Connect to a control port and authenticate. `on_ready` receives the
  /// live controller; `on_fail` fires on connect/auth errors.
  static void create(simnet::Network& net, simnet::HostId from,
                     Endpoint control_endpoint, const std::string& password,
                     std::function<void(Ptr)> on_ready,
                     std::function<void(std::string)> on_fail = {});

  /// Launch a new circuit through `path`; resolves when BUILT (or fails).
  void extend_circuit(const std::vector<dir::Fingerprint>& path,
                      std::function<void(tor::CircuitHandle)> on_built,
                      std::function<void(std::string)> on_fail);

  void attach_stream(std::uint16_t stream_id, tor::CircuitHandle circuit,
                     std::function<void(bool)> on_done);

  void close_circuit(tor::CircuitHandle circuit,
                     std::function<void()> on_done = {});

  void set_leave_streams_unattached(bool value,
                                    std::function<void()> on_done = {});

  void get_info(const std::string& key,
                std::function<void(std::string)> on_reply);

  /// Raw command escape hatch: `on_reply` gets the whole reply text.
  void raw_command(const std::string& command,
                   std::function<void(std::string)> on_reply);

  /// Called with (stream_id, target) when an unattached stream appears.
  void set_on_stream_new(
      std::function<void(std::uint16_t, std::string)> fn) {
    on_stream_new_ = std::move(fn);
  }

  /// One-shot claim on the next unclaimed STREAM NEW event. Claims are
  /// satisfied FIFO and each fires at most once, so independent probes can
  /// share one control session without clobbering a global callback. The
  /// returned id cancels the claim (e.g. when the owning measurement aborts
  /// before its stream appears). set_on_stream_new only sees events no
  /// claim was waiting for.
  using StreamWaitId = std::uint64_t;
  StreamWaitId expect_stream_new(
      std::function<void(std::uint16_t, std::string)> fn);
  void cancel_stream_wait(StreamWaitId id);
  /// All 650 events, verbatim minus the "650 " prefix.
  void set_on_event(std::function<void(std::string)> fn) {
    on_event_ = std::move(fn);
  }

  void quit();
  bool is_open() const { return conn_ && conn_->is_open(); }

 private:
  Controller() = default;
  void wire(simnet::ConnPtr conn);
  void on_message(const std::string& text);
  void handle_event(const std::string& event);

  simnet::ConnPtr conn_;
  std::deque<std::function<void(std::string)>> pending_replies_;
  struct BuildWatch {
    std::function<void(tor::CircuitHandle)> on_built;
    std::function<void(std::string)> on_fail;
  };
  std::map<tor::CircuitHandle, BuildWatch> build_watches_;
  struct StreamWaiter {
    StreamWaitId id;
    std::function<void(std::uint16_t, std::string)> fn;
  };
  std::deque<StreamWaiter> stream_waiters_;
  StreamWaitId next_stream_wait_id_ = 1;
  std::function<void(std::uint16_t, std::string)> on_stream_new_;
  std::function<void(std::string)> on_event_;
};

}  // namespace ting::ctrl
