#include "tor/onion_proxy.h"

#include <algorithm>
#include <array>
#include <set>
#include <span>
#include <sstream>

#include "util/log.h"

namespace ting::tor {

using cells::Cell;
using cells::CellCommand;
using cells::RelayCommand;
using cells::RelayPayload;

namespace {
std::string path_str(const std::vector<dir::RelayDescriptor>& path,
                     std::size_t n) {
  std::ostringstream os;
  for (std::size_t i = 0; i < n && i < path.size(); ++i) {
    if (i) os << ",";
    os << "$" << path[i].fingerprint.hex();
  }
  return os.str();
}
}  // namespace

OnionProxy::OnionProxy(simnet::Network& net, simnet::HostId host,
                       OnionProxyConfig config, std::uint64_t seed)
    : net_(net), host_(host), config_(config), rng_(seed) {
  simnet::Listener* socks = net_.listen(host_, config_.socks_port);
  socks->set_on_accept(
      [this](simnet::ConnPtr conn) { handle_socks_connection(std::move(conn)); });
}

OnionProxy::~OnionProxy() {
  for (auto& [handle, circ] : circuits_) {
    if (circ->link) circ->link->set_on_cell({});
    if (circ->conn) circ->conn->set_on_close({});
  }
  for (auto& [id, stream] : streams_) {
    stream->on_message_ = {};
    stream->on_close_ = {};
    stream->on_connected_ = {};
    stream->on_fail_ = {};
  }
}

void OnionProxy::emit(const std::string& event) {
  if (event_sink_) event_sink_(event);
}

void OnionProxy::fetch_consensus(Endpoint authority,
                                 std::function<void()> on_done) {
  dir::Authority::fetch_consensus(
      net_, host_, authority,
      [this, on_done = std::move(on_done)](dir::Consensus c) {
        consensus_ = std::move(c);
        if (on_done) on_done();
      });
}

// ---- circuit construction --------------------------------------------------

CircuitHandle OnionProxy::build_circuit(
    const std::vector<dir::Fingerprint>& path,
    std::function<void(CircuitHandle)> on_built,
    std::function<void(std::string)> on_fail) {
  auto circ = std::make_shared<Circuit>();
  circ->handle = next_handle_++;
  circ->wire_id = next_wire_id_++;
  circ->on_built = std::move(on_built);
  circ->on_fail = std::move(on_fail);
  circuits_[circ->handle] = circ;

  // Client policies (§3.1): one-hop circuits are disallowed, and a relay
  // cannot appear more than once on a circuit. Failures surface
  // asynchronously (like tor's) so the FAILED event never precedes the
  // control port's EXTENDED reply.
  auto fail_async = [this, circ](std::string reason) {
    net_.loop().schedule(Duration::nanos(1),
                         [this, circ, reason = std::move(reason)]() {
                           fail_circuit(circ, reason);
                         });
  };
  if (path.size() < 2) {
    fail_async("one-hop circuits are not allowed");
    return circ->handle;
  }
  std::set<dir::Fingerprint> uniq(path.begin(), path.end());
  if (uniq.size() != path.size()) {
    fail_async("a relay may appear on a circuit only once");
    return circ->handle;
  }
  for (const auto& fp : path) {
    const dir::RelayDescriptor* desc = consensus_.find(fp);
    if (desc == nullptr) {
      fail_async("unknown relay $" + fp.hex());
      return circ->handle;
    }
    circ->planned.push_back(*desc);
  }
  emit("CIRC " + std::to_string(circ->handle) + " LAUNCHED");
  start_build(circ);
  return circ->handle;
}

void OnionProxy::start_build(const CircuitPtr& circ) {
  const dir::RelayDescriptor& entry = circ->planned.front();
  net_.connect(
      host_, Endpoint{entry.address, entry.or_port}, simnet::Protocol::kTor,
      [this, circ](simnet::ConnPtr conn) {
        if (circ->state != CircuitState::kBuilding) return;
        circ->conn = conn;
        conn->set_on_close([this, circ]() {
          if (circ->state == CircuitState::kBuilding ||
              circ->state == CircuitState::kBuilt)
            fail_circuit(circ, "entry connection closed");
        });
        // Link handshake first; the CREATE queues until the link opens.
        circ->link = OrLink::initiate(net_, conn);
        circ->link->set_on_cell(
            [this, circ](Bytes wire) { on_cell(circ, std::move(wire)); });
        circ->pending_handshake = crypto::ClientHandshake::start(rng_);
        Bytes create(circ->pending_handshake->ephemeral_public.begin(),
                     circ->pending_handshake->ephemeral_public.end());
        circ->link->send_cell(Cell::make(circ->wire_id, CellCommand::kCreate,
                                         std::move(create))
                                  .encode());
      },
      [this, circ](const std::string& err) {
        fail_circuit(circ, "entry connect failed: " + err);
      });
}

bool OnionProxy::install_hop(const CircuitPtr& circ,
                             const dir::RelayDescriptor& desc,
                             const crypto::X25519Key& relay_public,
                             const crypto::Digest& auth) {
  auto keys =
      circ->pending_handshake->finish(desc.onion_key, relay_public, auth);
  circ->pending_handshake.reset();
  if (!keys.has_value()) return false;
  Hop hop;
  hop.desc = desc;
  hop.crypto = std::make_unique<HopCrypto>(*keys);
  circ->hops.push_back(std::move(hop));
  return true;
}

void OnionProxy::continue_build(const CircuitPtr& circ) {
  if (circ->hops.size() == circ->planned.size()) {
    circ->state = CircuitState::kBuilt;
    emit("CIRC " + std::to_string(circ->handle) + " BUILT " +
         path_str(circ->planned, circ->planned.size()));
    if (circ->on_built) {
      auto fn = std::move(circ->on_built);
      circ->on_built = {};
      fn(circ->handle);
    }
    return;
  }
  emit("CIRC " + std::to_string(circ->handle) + " EXTENDED " +
       path_str(circ->planned, circ->hops.size()));
  // EXTEND to the next hop, addressed to the current last hop.
  const dir::RelayDescriptor& next = circ->planned[circ->hops.size()];
  circ->pending_handshake = crypto::ClientHandshake::start(rng_);
  cells::ExtendRequest req;
  req.address = next.address;
  req.or_port = next.or_port;
  req.fingerprint = next.fingerprint.bytes();
  req.client_public = circ->pending_handshake->ephemeral_public;
  RelayPayload p;
  p.command = RelayCommand::kExtend;
  p.stream_id = 0;
  p.data = req.encode();
  send_relay(circ, circ->hops.size() - 1, p);
}

void OnionProxy::send_relay(const CircuitPtr& circ, std::size_t hop_index,
                            const RelayPayload& payload) {
  TING_CHECK(hop_index < circ->hops.size());
  Hop& target = circ->hops[hop_index];
  Bytes wire_payload =
      cells::encode_relay(payload, target.crypto->forward_digest());
  // Onion layering: one keystream XOR per hop out to the target. The layers
  // commute, so they are applied batched — all hops per cache-hot chunk —
  // rather than sweeping the whole payload once per hop.
  std::array<crypto::ChaChaCipher*, 8> layers;
  if (hop_index + 1 <= layers.size()) {
    for (std::size_t i = 0; i <= hop_index; ++i)
      layers[i] = &circ->hops[i].crypto->forward_cipher();
    crypto::ChaChaCipher::apply_layers(
        std::span<crypto::ChaChaCipher* const>(layers.data(), hop_index + 1),
        std::span<std::uint8_t>(wire_payload.data(), wire_payload.size()));
  } else {
    // Paths longer than the stack buffer (not built today): layer by layer,
    // innermost first.
    for (std::size_t i = hop_index + 1; i-- > 0;)
      circ->hops[i].crypto->apply_forward(wire_payload);
  }
  if (circ->conn && circ->conn->is_open()) {
    Cell cell =
        Cell::make(circ->wire_id, CellCommand::kRelay, std::move(wire_payload));
    circ->conn->send(cell.encode());
    pool::recycle(std::move(cell.payload));
  }
}

void OnionProxy::on_cell(const CircuitPtr& circ, Bytes wire) {
  if (circ->state == CircuitState::kClosed ||
      circ->state == CircuitState::kFailed)
    return;
  Cell cell =
      Cell::decode(std::span<const std::uint8_t>(wire.data(), wire.size()));
  pool::recycle(std::move(wire));
  if (cell.circ_id != circ->wire_id) {
    TING_DEBUG("op: cell for unknown wire circuit " << cell.circ_id);
    return;
  }
  switch (cell.command) {
    case CellCommand::kCreated:
      handle_created(circ, cell);
      return;
    case CellCommand::kRelay:
      handle_backward_relay(circ, std::move(cell));
      return;
    case CellCommand::kDestroy:
      fail_circuit(circ, "received DESTROY");
      return;
    default:
      TING_DEBUG("op: unexpected cell " << command_name(cell.command));
  }
}

void OnionProxy::handle_created(const CircuitPtr& circ,
                                const cells::Cell& cell) {
  if (!circ->pending_handshake.has_value() || !circ->hops.empty()) {
    fail_circuit(circ, "unexpected CREATED");
    return;
  }
  crypto::X25519Key relay_public;
  crypto::Digest auth;
  std::copy_n(cell.payload.begin(), 32, relay_public.begin());
  std::copy_n(cell.payload.begin() + 32, 32, auth.begin());
  if (!install_hop(circ, circ->planned.front(), relay_public, auth)) {
    fail_circuit(circ, "entry handshake authentication failed");
    return;
  }
  continue_build(circ);
}

void OnionProxy::handle_backward_relay(const CircuitPtr& circ,
                                       cells::Cell cell) {
  // Strip onion layers from the entry inward until some hop recognizes the
  // payload; hops beyond the originator must not consume keystream.
  for (std::size_t i = 0; i < circ->hops.size(); ++i) {
    circ->hops[i].crypto->apply_backward(cell.payload);
    auto recognized = cells::try_parse_relay(
        std::span<const std::uint8_t>(cell.payload.data(), cell.payload.size()),
        circ->hops[i].crypto->backward_digest());
    if (recognized.has_value()) {
      pool::recycle(std::move(cell.payload));
      handle_recognized(circ, i, std::move(*recognized));
      return;
    }
  }
  fail_circuit(circ, "unrecognized backward relay cell");
}

void OnionProxy::handle_recognized(const CircuitPtr& circ,
                                   std::size_t hop_index,
                                   RelayPayload payload) {
  switch (payload.command) {
    case RelayCommand::kExtended: {
      if (!circ->pending_handshake.has_value() ||
          hop_index + 1 != circ->hops.size() ||
          circ->hops.size() >= circ->planned.size()) {
        fail_circuit(circ, "unexpected EXTENDED");
        return;
      }
      const auto reply = cells::ExtendedReply::decode(std::span<const std::uint8_t>(
          payload.data.data(), payload.data.size()));
      crypto::X25519Key relay_public;
      crypto::Digest auth;
      std::copy(reply.relay_public.begin(), reply.relay_public.end(),
                relay_public.begin());
      std::copy(reply.auth.begin(), reply.auth.end(), auth.begin());
      if (!install_hop(circ, circ->planned[circ->hops.size()], relay_public,
                       auth)) {
        fail_circuit(circ, "extend handshake authentication failed");
        return;
      }
      continue_build(circ);
      return;
    }
    case RelayCommand::kConnected: {
      auto it = circ->streams.find(payload.stream_id);
      if (it == circ->streams.end()) return;
      const StreamPtr& stream = it->second;
      stream->state_ = StreamState::kConnected;
      emit("STREAM " + std::to_string(stream->id_) + " SUCCEEDED " +
           std::to_string(circ->handle) + " " + stream->target_.str());
      if (stream->on_connected_) {
        auto fn = std::move(stream->on_connected_);
        stream->on_connected_ = {};
        fn();
      }
      return;
    }
    case RelayCommand::kData: {
      auto it = circ->streams.find(payload.stream_id);
      if (it == circ->streams.end()) return;
      const StreamPtr stream = it->second;
      // Stream-level flow control: acknowledge every 50th DATA cell so the
      // exit's package window refills (Tor's SENDME scheme).
      if (++stream->unacked_data_cells_ >= 50 &&
          circ->state == CircuitState::kBuilt) {
        stream->unacked_data_cells_ = 0;
        RelayPayload sendme;
        sendme.command = RelayCommand::kSendme;
        sendme.stream_id = stream->id_;
        send_relay(circ, circ->hops.size() - 1, sendme);
      }
      if (stream->on_message_) {
        // Copy before invoking: the handler may replace itself.
        auto fn = stream->on_message_;
        fn(std::move(payload.data));
      }
      return;
    }
    case RelayCommand::kEnd: {
      auto it = circ->streams.find(payload.stream_id);
      if (it == circ->streams.end()) return;
      StreamPtr stream = it->second;
      circ->streams.erase(it);
      stream->state_ = StreamState::kClosed;
      emit("STREAM " + std::to_string(stream->id_) + " CLOSED " +
           std::to_string(circ->handle));
      if (stream->on_fail_) {
        auto fn = std::move(stream->on_fail_);
        stream->on_fail_ = {};
        fn("stream ended by exit");
      }
      if (stream->on_close_) {
        auto fn = std::move(stream->on_close_);
        stream->on_close_ = {};
        fn();
      }
      return;
    }
    case RelayCommand::kDrop:
    case RelayCommand::kSendme:
      return;
    default:
      TING_DEBUG("op: unexpected relay command "
                 << relay_command_name(payload.command));
  }
}

void OnionProxy::fail_circuit(const CircuitPtr& circ,
                              const std::string& reason) {
  if (circ->state == CircuitState::kFailed ||
      circ->state == CircuitState::kClosed)
    return;
  const bool was_building = circ->state == CircuitState::kBuilding;
  circ->state = CircuitState::kFailed;
  emit("CIRC " + std::to_string(circ->handle) + " FAILED REASON=" + reason);
  // Detach before notifying: handlers may call Stream::close(), which
  // erases from circ->streams.
  auto streams = std::move(circ->streams);
  circ->streams.clear();
  for (auto& [id, stream] : streams) {
    stream->state_ = StreamState::kClosed;
    if (stream->on_fail_) stream->on_fail_("circuit failed: " + reason);
    if (stream->on_close_) stream->on_close_();
  }
  if (circ->conn) circ->conn->close();
  if (was_building && circ->on_fail) {
    auto fn = std::move(circ->on_fail);
    circ->on_fail = {};
    fn(reason);
  }
}

void OnionProxy::close_circuit(CircuitHandle handle) {
  auto it = circuits_.find(handle);
  if (it == circuits_.end()) return;
  CircuitPtr circ = it->second;
  if (circ->state == CircuitState::kBuilt ||
      circ->state == CircuitState::kBuilding) {
    // Tell the entry relay to tear down the whole circuit.
    if (circ->conn && circ->conn->is_open()) {
      circ->conn->send(
          Cell::make(circ->wire_id, CellCommand::kDestroy,
                     {static_cast<std::uint8_t>(
                         cells::DestroyReason::kRequested)})
              .encode());
      circ->conn->close();
    }
  }
  circ->state = CircuitState::kClosed;
  auto streams = std::move(circ->streams);
  circ->streams.clear();
  for (auto& [id, stream] : streams) {
    stream->state_ = StreamState::kClosed;
    if (stream->on_close_) stream->on_close_();
  }
  emit("CIRC " + std::to_string(handle) + " CLOSED");
}

void OnionProxy::new_identity() {
  std::vector<CircuitHandle> open;
  for (const auto& [h, circ] : circuits_)
    if (circ->state == CircuitState::kBuilt ||
        circ->state == CircuitState::kBuilding)
      open.push_back(h);
  for (const CircuitHandle h : open) close_circuit(h);
}

CircuitState OnionProxy::circuit_state(CircuitHandle handle) const {
  auto it = circuits_.find(handle);
  TING_CHECK_MSG(it != circuits_.end(), "unknown circuit " << handle);
  return it->second->state;
}

std::vector<dir::Fingerprint> OnionProxy::circuit_path(
    CircuitHandle handle) const {
  auto it = circuits_.find(handle);
  TING_CHECK_MSG(it != circuits_.end(), "unknown circuit " << handle);
  std::vector<dir::Fingerprint> out;
  for (const auto& d : it->second->planned) out.push_back(d.fingerprint);
  return out;
}

std::vector<CircuitHandle> OnionProxy::circuit_handles() const {
  std::vector<CircuitHandle> out;
  for (const auto& [h, c] : circuits_) out.push_back(h);
  return out;
}

const std::vector<dir::Fingerprint>& OnionProxy::guard_set() {
  // Drop guards that have left the consensus or lost the Guard flag.
  std::erase_if(guards_, [this](const dir::Fingerprint& fp) {
    const dir::RelayDescriptor* d = consensus_.find(fp);
    return d == nullptr || !d->has_flag(dir::kFlagGuard);
  });
  // Refill, bandwidth-weighted among Guard relays.
  for (int attempt = 0; guards_.size() < kGuardSetSize && attempt < 200;
       ++attempt) {
    const dir::RelayDescriptor* g =
        consensus_.sample_weighted(rng_, dir::kFlagRunning | dir::kFlagGuard);
    if (g == nullptr) break;
    bool duplicate = false;
    for (const auto& fp : guards_) duplicate |= (fp == g->fingerprint);
    if (!duplicate) guards_.push_back(g->fingerprint);
  }
  return guards_;
}

std::optional<std::vector<dir::Fingerprint>> OnionProxy::pick_default_path(
    const Endpoint& target, std::size_t len) {
  TING_CHECK(len >= 2);
  const std::vector<dir::Fingerprint> guards = guard_set();
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::vector<const dir::RelayDescriptor*> picked;
    std::set<dir::Fingerprint> used_fp;
    std::set<std::uint32_t> used_slash16;
    auto admit = [&](const dir::RelayDescriptor* r) {
      picked.push_back(r);
      used_fp.insert(r->fingerprint);
      used_slash16.insert(r->address.slash16());
    };
    auto try_pick = [&](std::uint32_t required_flags, bool need_exit) {
      for (int inner = 0; inner < 50; ++inner) {
        const dir::RelayDescriptor* r =
            consensus_.sample_weighted(rng_, required_flags);
        if (r == nullptr) return false;
        if (used_fp.contains(r->fingerprint)) continue;
        if (used_slash16.contains(r->address.slash16())) continue;
        if (need_exit && !r->exit_policy.allows(target.ip, target.port))
          continue;
        admit(r);
        return true;
      }
      return false;
    };
    // Exit first (most constrained), then the entry from the guard set,
    // then middles.
    if (!try_pick(dir::kFlagRunning, /*need_exit=*/true)) continue;
    {
      bool got_guard = false;
      for (int inner = 0; inner < 20 && !got_guard && !guards.empty();
           ++inner) {
        const dir::Fingerprint& fp =
            guards[rng_.next_below(guards.size())];
        const dir::RelayDescriptor* g = consensus_.find(fp);
        if (g == nullptr || used_fp.contains(fp) ||
            used_slash16.contains(g->address.slash16()))
          continue;
        admit(g);
        got_guard = true;
      }
      if (!got_guard) continue;
    }
    bool ok = true;
    for (std::size_t i = 2; i < len && ok; ++i)
      ok = try_pick(dir::kFlagRunning, false);
    if (!ok) continue;
    // Order: entry (guard), middles, exit.
    std::vector<dir::Fingerprint> path;
    path.push_back(picked[1]->fingerprint);
    for (std::size_t i = 2; i < picked.size(); ++i)
      path.push_back(picked[i]->fingerprint);
    path.push_back(picked[0]->fingerprint);
    return path;
  }
  return std::nullopt;
}

// ---- streams ----------------------------------------------------------------

void OnionProxy::Stream::send(Bytes data) {
  if (op_ == nullptr || state_ != StreamState::kConnected) return;
  auto it = op_->circuits_.find(circuit_);
  if (it == op_->circuits_.end()) return;
  const CircuitPtr& circ = it->second;
  if (circ->state != CircuitState::kBuilt) return;
  std::size_t off = 0;
  do {
    const std::size_t take = std::min(data.size() - off, cells::kRelayDataMax);
    RelayPayload p;
    p.command = RelayCommand::kData;
    p.stream_id = id_;
    p.data.assign(data.begin() + static_cast<std::ptrdiff_t>(off),
                  data.begin() + static_cast<std::ptrdiff_t>(off + take));
    op_->send_relay(circ, circ->hops.size() - 1, p);
    off += take;
  } while (off < data.size());
}

void OnionProxy::Stream::close() {
  if (op_ == nullptr || state_ == StreamState::kClosed) return;
  auto it = op_->circuits_.find(circuit_);
  if (it != op_->circuits_.end()) {
    const CircuitPtr& circ = it->second;
    if (circ->state == CircuitState::kBuilt &&
        state_ == StreamState::kConnected) {
      RelayPayload p;
      p.command = RelayCommand::kEnd;
      p.stream_id = id_;
      p.data = {0};
      op_->send_relay(circ, circ->hops.size() - 1, p);
    }
    circ->streams.erase(id_);
  }
  state_ = StreamState::kClosed;
  if (on_close_) {
    auto fn = std::move(on_close_);
    on_close_ = {};
    fn();
  }
}

OnionProxy::StreamPtr OnionProxy::open_stream(
    CircuitHandle circuit, const Endpoint& target,
    std::function<void()> on_connected,
    std::function<void(std::string)> on_fail) {
  auto stream = std::make_shared<Stream>();
  stream->op_ = this;
  stream->id_ = next_stream_id_++;
  stream->target_ = target;
  stream->on_connected_ = std::move(on_connected);
  stream->on_fail_ = std::move(on_fail);
  streams_[stream->id_] = stream;

  auto it = circuits_.find(circuit);
  if (it == circuits_.end() || it->second->state != CircuitState::kBuilt) {
    stream->state_ = StreamState::kClosed;
    if (stream->on_fail_) stream->on_fail_("circuit not built");
    return stream;
  }
  begin_stream_on_circuit(stream, it->second);
  return stream;
}

void OnionProxy::begin_stream_on_circuit(const StreamPtr& stream,
                                         const CircuitPtr& circ) {
  stream->circuit_ = circ->handle;
  stream->state_ = StreamState::kAttaching;
  circ->streams[stream->id_] = stream;
  RelayPayload p;
  p.command = RelayCommand::kBegin;
  p.stream_id = stream->id_;
  p.data = cells::encode_begin(stream->target_);
  send_relay(circ, circ->hops.size() - 1, p);
}

bool OnionProxy::attach_stream(std::uint16_t stream_id,
                               CircuitHandle circuit) {
  auto sit = streams_.find(stream_id);
  if (sit == streams_.end() || sit->second->state_ != StreamState::kNew)
    return false;
  auto cit = circuits_.find(circuit);
  if (cit == circuits_.end() || cit->second->state != CircuitState::kBuilt)
    return false;
  begin_stream_on_circuit(sit->second, cit->second);
  return true;
}

std::vector<OnionProxy::StreamPtr> OnionProxy::unattached_streams() const {
  std::vector<StreamPtr> out;
  for (const auto& [id, s] : streams_)
    if (s->state_ == StreamState::kNew) out.push_back(s);
  return out;
}

OnionProxy::StreamPtr OnionProxy::find_stream(std::uint16_t stream_id) const {
  auto it = streams_.find(stream_id);
  if (it == streams_.end()) return nullptr;
  return it->second;
}

// ---- SOCKS-style application port -------------------------------------------

void OnionProxy::handle_socks_connection(simnet::ConnPtr conn) {
  // First message: "CONNECT <ip>:<port>". (A documented simplification of
  // the SOCKS handshake; the control-plane flow around it is faithful.)
  conn->set_on_message([this, conn](Bytes msg) {
    const std::string line(msg.begin(), msg.end());
    if (!starts_with(line, "CONNECT ")) {
      conn->send(Bytes{'E', 'R', 'R'});
      conn->close();
      return;
    }
    const std::size_t colon = line.rfind(':');
    const auto ip = IpAddr::parse(line.substr(8, colon - 8));
    if (colon == std::string::npos || !ip.has_value()) {
      conn->send(Bytes{'E', 'R', 'R'});
      conn->close();
      return;
    }
    const Endpoint target{*ip, static_cast<std::uint16_t>(
                                   std::stoi(line.substr(colon + 1)))};

    auto stream = std::make_shared<Stream>();
    stream->op_ = this;
    stream->id_ = next_stream_id_++;
    stream->target_ = target;
    stream->socks_conn_ = conn;
    streams_[stream->id_] = stream;

    // Wire the app connection <-> stream plumbing.
    stream->on_connected_ = [this, stream]() {
      if (stream->socks_conn_ && stream->socks_conn_->is_open())
        stream->socks_conn_->send(Bytes{'O', 'K'});
    };
    stream->on_fail_ = [stream](const std::string&) {
      if (stream->socks_conn_ && stream->socks_conn_->is_open()) {
        stream->socks_conn_->send(Bytes{'E', 'R', 'R'});
        stream->socks_conn_->close();
      }
    };
    stream->set_on_message([stream](Bytes data) {
      if (stream->socks_conn_ && stream->socks_conn_->is_open())
        stream->socks_conn_->send(std::move(data));
    });
    stream->set_on_close([stream]() {
      if (stream->socks_conn_ && stream->socks_conn_->is_open())
        stream->socks_conn_->close();
    });
    conn->set_on_message([stream](Bytes data) { stream->send(std::move(data)); });
    conn->set_on_close([stream]() { stream->close(); });

    if (config_.leave_streams_unattached) {
      emit("STREAM " + std::to_string(stream->id_) + " NEW 0 " + target.str());
      return;
    }
    // Auto-attach: build a fresh default circuit for this stream.
    const auto path = pick_default_path(target, config_.default_path_len);
    if (!path.has_value()) {
      stream->on_fail_("no viable default path");
      return;
    }
    build_circuit(
        *path,
        [this, stream](CircuitHandle h) {
          auto it = circuits_.find(h);
          if (it != circuits_.end() && stream->state_ == StreamState::kNew)
            begin_stream_on_circuit(stream, it->second);
        },
        [stream](const std::string& err) {
          if (stream->on_fail_) stream->on_fail_(err);
        });
  });
}

}  // namespace ting::tor
