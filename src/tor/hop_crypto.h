// Per-hop circuit crypto state shared (in mirrored form) by the client and
// one relay: two stream ciphers (one per direction) and two rolling digests.
// The cipher streams advance across cells, so both sides must process every
// relay cell for this hop exactly once and in order — guaranteed by the
// transport's FIFO delivery.
#pragma once

#include "cells/relay_payload.h"
#include "crypto/chacha.h"
#include "crypto/handshake.h"

namespace ting::tor {

class HopCrypto {
 public:
  explicit HopCrypto(const crypto::HopKeys& keys)
      : forward_(keys.forward_key, zero_nonce()),
        backward_(keys.backward_key, zero_nonce()),
        forward_digest_(keys.forward_digest_seed),
        backward_digest_(keys.backward_digest_seed) {}

  /// Apply one layer of the forward-direction keystream (encrypts at the
  /// client, decrypts at the relay — same XOR).
  void apply_forward(Bytes& payload) {
    forward_.apply(std::span<std::uint8_t>(payload.data(), payload.size()));
  }
  /// Apply one layer of the backward-direction keystream.
  void apply_backward(Bytes& payload) {
    backward_.apply(std::span<std::uint8_t>(payload.data(), payload.size()));
  }

  /// The forward-direction cipher, for batching several hops' layers into
  /// one cache-blocked pass (crypto::ChaChaCipher::apply_layers).
  crypto::ChaChaCipher& forward_cipher() { return forward_; }

  cells::RollingDigest& forward_digest() { return forward_digest_; }
  cells::RollingDigest& backward_digest() { return backward_digest_; }

 private:
  static crypto::Nonce zero_nonce() {
    crypto::Nonce n{};
    return n;
  }
  crypto::ChaChaCipher forward_;
  crypto::ChaChaCipher backward_;
  cells::RollingDigest forward_digest_;
  cells::RollingDigest backward_digest_;
};

}  // namespace ting::tor
