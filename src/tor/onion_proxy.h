// The onion proxy (OP): Tor's client side.
//
// Responsibilities mirror a real tor client:
//  - keep a consensus of relay descriptors (fetched from an authority or
//    injected locally, like hard-coding descriptors with
//    "PublishDescriptors 0" as §4.1 describes);
//  - build circuits: CREATE to the entry, then EXTEND hop by hop, doing the
//    ntor handshake and layering crypto per hop;
//  - enforce the client policies Ting must design around (§3.1): no one-hop
//    circuits, and no relay may appear on a circuit more than once;
//  - attach application streams to circuits (BEGIN/CONNECTED/DATA/END),
//    either programmatically or through the SOCKS-style port with
//    __LeaveStreamsUnattached + ATTACHSTREAM, as the Stem-driven Ting
//    client does;
//  - default bandwidth-weighted 3-hop path selection with distinct-/16
//    constraints, for ordinary (non-measurement) usage;
//  - emit CIRC/STREAM events consumed by the control protocol.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cells/cell.h"
#include "cells/relay_payload.h"
#include "crypto/handshake.h"
#include "dir/authority.h"
#include "dir/consensus.h"
#include "simnet/network.h"
#include "tor/hop_crypto.h"
#include "tor/or_link.h"

namespace ting::tor {

using CircuitHandle = std::uint32_t;

enum class CircuitState { kBuilding, kBuilt, kFailed, kClosed };
enum class StreamState { kNew, kAttaching, kConnected, kClosed };

struct OnionProxyConfig {
  std::uint16_t socks_port = 9050;
  /// __LeaveStreamsUnattached: SOCKS streams wait for ATTACHSTREAM instead
  /// of being auto-attached to a fresh default circuit.
  bool leave_streams_unattached = false;
  /// Default path length for auto-attached streams.
  std::size_t default_path_len = 3;
};

class OnionProxy {
 public:
  OnionProxy(simnet::Network& net, simnet::HostId host,
             OnionProxyConfig config, std::uint64_t seed);
  /// Each circuit's link/connection callbacks capture the CircuitPtr; break
  /// those cycles so circuits don't outlive the proxy.
  ~OnionProxy();
  OnionProxy(const OnionProxy&) = delete;
  OnionProxy& operator=(const OnionProxy&) = delete;

  // ---- directory ---------------------------------------------------------
  void set_consensus(dir::Consensus consensus) { consensus_ = std::move(consensus); }
  /// Inject a single descriptor (e.g. unpublished local relays).
  void add_descriptor(dir::RelayDescriptor desc) { consensus_.add(std::move(desc)); }
  /// Drop a relay from this client's consensus view (directory churn: the
  /// relay fell out of the consensus we would fetch next). Existing circuits
  /// through it keep running; new paths can no longer include it.
  bool remove_descriptor(const dir::Fingerprint& fp) { return consensus_.remove(fp); }
  const dir::Consensus& consensus() const { return consensus_; }
  void fetch_consensus(Endpoint authority, std::function<void()> on_done);

  // ---- circuits ----------------------------------------------------------
  /// Build a circuit through the given relays (by fingerprint; all must be
  /// in the consensus). Enforces length >= 2 and distinct relays; policy
  /// violations report through on_fail. Returns the handle immediately.
  CircuitHandle build_circuit(const std::vector<dir::Fingerprint>& path,
                              std::function<void(CircuitHandle)> on_built,
                              std::function<void(std::string)> on_fail);
  void close_circuit(CircuitHandle handle);
  /// SIGNAL NEWNYM: tear down every open circuit (new streams get fresh
  /// ones). Guards are kept, as in Tor.
  void new_identity();
  CircuitState circuit_state(CircuitHandle handle) const;
  std::vector<dir::Fingerprint> circuit_path(CircuitHandle handle) const;
  std::vector<CircuitHandle> circuit_handles() const;

  /// Tor's default selection: bandwidth-weighted, distinct relays and /16s,
  /// entry taken from the client's persistent guard set, exit whose policy
  /// allows the target. nullopt if the consensus cannot satisfy the
  /// constraints.
  std::optional<std::vector<dir::Fingerprint>> pick_default_path(
      const Endpoint& target, std::size_t len = 3);

  /// The client's persistent entry guards (Tor picks a small set once and
  /// reuses it so a local observer can't eventually enumerate the client's
  /// entries). Chosen lazily, bandwidth-weighted among Guard-flagged
  /// relays; pruned and refilled if guards leave the consensus.
  static constexpr std::size_t kGuardSetSize = 3;
  const std::vector<dir::Fingerprint>& guard_set();

  // ---- streams -----------------------------------------------------------
  class Stream {
   public:
    std::uint16_t id() const { return id_; }
    StreamState state() const { return state_; }
    const Endpoint& target() const { return target_; }
    CircuitHandle circuit() const { return circuit_; }

    void send(Bytes data);
    void set_on_message(std::function<void(Bytes)> fn) { on_message_ = std::move(fn); }
    void set_on_close(std::function<void()> fn) { on_close_ = std::move(fn); }
    void close();

   private:
    friend class OnionProxy;
    OnionProxy* op_ = nullptr;
    std::uint16_t id_ = 0;
    Endpoint target_;
    CircuitHandle circuit_ = 0;
    StreamState state_ = StreamState::kNew;
    std::function<void(Bytes)> on_message_;
    std::function<void()> on_close_;
    std::function<void()> on_connected_;
    std::function<void(std::string)> on_fail_;
    simnet::ConnPtr socks_conn_;  ///< set for SOCKS-originated streams
    int unacked_data_cells_ = 0;  ///< DATA cells since the last SENDME
  };
  using StreamPtr = std::shared_ptr<Stream>;

  /// Open a stream through a built circuit (programmatic path, no SOCKS).
  StreamPtr open_stream(CircuitHandle circuit, const Endpoint& target,
                        std::function<void()> on_connected,
                        std::function<void(std::string)> on_fail);

  /// Attach a SOCKS-originated stream awaiting attachment (leave-unattached
  /// mode). Returns false if the stream or circuit is not attachable.
  bool attach_stream(std::uint16_t stream_id, CircuitHandle circuit);
  std::vector<StreamPtr> unattached_streams() const;
  StreamPtr find_stream(std::uint16_t stream_id) const;

  // ---- events (consumed by the control protocol) --------------------------
  /// Sink receives lines like "CIRC 3 BUILT fp1,fp2,fp3".
  void set_event_sink(std::function<void(std::string)> sink) { event_sink_ = std::move(sink); }

  simnet::HostId host() const { return host_; }
  simnet::Network& net() { return net_; }
  const OnionProxyConfig& config() const { return config_; }
  /// Reset the client's rng (guard/default-path draws) deterministically —
  /// part of the sharded scanner's per-pair world reseed. Ting's explicit
  /// EXTENDCIRCUIT paths never draw from it, but a reseeded world should
  /// have no stochastic state left over from earlier pairs anywhere.
  void reseed(std::uint64_t seed) { rng_ = Rng(seed); }
  /// SETCONF __LeaveStreamsUnattached toggles this at runtime.
  void set_leave_streams_unattached(bool v) { config_.leave_streams_unattached = v; }

 private:
  struct Hop {
    dir::RelayDescriptor desc;
    std::unique_ptr<HopCrypto> crypto;
  };
  struct Circuit {
    CircuitHandle handle = 0;
    cells::CircuitId wire_id = 0;
    simnet::ConnPtr conn;  ///< to the entry OR
    OrLink::Ptr link;      ///< VERSIONS/NETINFO state for that connection
    std::vector<dir::RelayDescriptor> planned;  ///< full requested path
    std::vector<Hop> hops;                      ///< established prefix
    CircuitState state = CircuitState::kBuilding;
    std::optional<crypto::ClientHandshake> pending_handshake;
    std::function<void(CircuitHandle)> on_built;
    std::function<void(std::string)> on_fail;
    std::map<std::uint16_t, StreamPtr> streams;
  };
  using CircuitPtr = std::shared_ptr<Circuit>;

  void start_build(const CircuitPtr& circ);
  void continue_build(const CircuitPtr& circ);
  void on_cell(const CircuitPtr& circ, Bytes wire);
  void handle_created(const CircuitPtr& circ, const cells::Cell& cell);
  void handle_backward_relay(const CircuitPtr& circ, cells::Cell cell);
  void handle_recognized(const CircuitPtr& circ, std::size_t hop_index,
                         cells::RelayPayload payload);
  void fail_circuit(const CircuitPtr& circ, const std::string& reason);
  void send_relay(const CircuitPtr& circ, std::size_t hop_index,
                  const cells::RelayPayload& payload);
  bool install_hop(const CircuitPtr& circ, const dir::RelayDescriptor& desc,
                   const crypto::X25519Key& relay_public,
                   const crypto::Digest& auth);
  void begin_stream_on_circuit(const StreamPtr& stream,
                               const CircuitPtr& circ);
  void handle_socks_connection(simnet::ConnPtr conn);
  void emit(const std::string& event);

  simnet::Network& net_;
  simnet::HostId host_;
  OnionProxyConfig config_;
  Rng rng_;
  dir::Consensus consensus_;
  std::map<CircuitHandle, CircuitPtr> circuits_;
  std::map<std::uint16_t, StreamPtr> streams_;  ///< all streams by id
  CircuitHandle next_handle_ = 1;
  cells::CircuitId next_wire_id_ = 0x80000001;  ///< high bit: client-initiated
  std::uint16_t next_stream_id_ = 1;
  std::vector<dir::Fingerprint> guards_;
  std::function<void(std::string)> event_sink_;
};

}  // namespace ting::tor
