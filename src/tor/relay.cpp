#include "tor/relay.h"

#include <cmath>
#include <set>

#include "util/log.h"

namespace ting::tor {

using cells::Cell;
using cells::CellCommand;
using cells::CircuitId;
using cells::DestroyReason;
using cells::RelayCommand;
using cells::RelayPayload;

Relay::Relay(simnet::Network& net, simnet::HostId host, RelayConfig config,
             std::uint64_t seed)
    : net_(net), host_(host), config_(std::move(config)), rng_(seed) {
  identity_ = crypto::IdentityKeys::generate(rng_);
  init_descriptor_and_listen();
}

Relay::Relay(simnet::Network& net, simnet::HostId host, RelayConfig config,
             crypto::IdentityKeys identity, Rng rng)
    : net_(net),
      host_(host),
      config_(std::move(config)),
      rng_(rng),
      identity_(identity) {
  init_descriptor_and_listen();
}

void Relay::init_descriptor_and_listen() {
  descriptor_.nickname = config_.nickname;
  descriptor_.fingerprint = dir::Fingerprint::of_identity(identity_.public_key);
  descriptor_.onion_key = identity_.public_key;
  descriptor_.address = net_.ip_of(host_);
  descriptor_.or_port = config_.or_port;
  descriptor_.bandwidth = config_.bandwidth;
  descriptor_.flags = config_.flags;
  if (config_.exit_policy.allows_anything())
    descriptor_.flags |= dir::kFlagExit;
  descriptor_.exit_policy = config_.exit_policy;
  descriptor_.country_code = config_.country_code;
  descriptor_.reverse_dns = config_.reverse_dns;

  simnet::Listener* listener = net_.listen(host_, config_.or_port);
  listener->set_on_accept(
      [this](simnet::ConnPtr conn) { on_or_connection(std::move(conn)); });
}

std::size_t Relay::open_circuits() const {
  std::set<const CircuitEntry*> uniq;
  for (const auto& [key, entry] : circuits_) uniq.insert(entry.get());
  return uniq.size();
}

void Relay::publish_to(Endpoint authority) {
  dir::Authority::publish(net_, host_, authority, descriptor_);
}

void Relay::publish_periodically(Endpoint authority, Duration interval) {
  publish_to(authority);
  net_.loop().schedule(interval, [this, authority, interval]() {
    publish_periodically(authority, interval);
  });
}

void Relay::on_or_connection(simnet::ConnPtr conn) {
  // Every OR connection performs the VERSIONS/NETINFO link handshake
  // before circuit cells flow; we are the responder for inbound links.
  simnet::Connection* raw = conn.get();
  conn->set_on_close([this, raw]() { links_.erase(raw); });
  OrLink::Ptr link = OrLink::accept(net_, std::move(conn));
  links_[raw] = link;
  link->set_on_cell([this, raw](Bytes wire) {
    on_cell(raw->shared_from_this(), std::move(wire));
  });
}

void Relay::reseed(std::uint64_t seed) {
  rng_ = Rng(seed);
  load_ = 0;
  // With load_ == 0 the decay term vanishes, so the watermark values only
  // need to be "not in the future"; now() keeps them world-local.
  last_load_update_ = net_.loop().now();
  last_dequeue_ = TimePoint{};
}

Duration Relay::forwarding_delay() {
  // Decay the load counter for the time elapsed, then count this cell.
  const TimePoint now = net_.loop().now();
  if (config_.load_tau_ms > 0) {
    const double elapsed_ms = (now - last_load_update_).ms();
    load_ *= std::exp(-elapsed_ms / config_.load_tau_ms);
  }
  last_load_update_ = now;
  load_ += 1.0;

  const double queue_mean =
      config_.queue_mean_ms * (1.0 + config_.load_factor * load_);
  const double ms = config_.base_forward_ms + rng_.exponential(queue_mean);
  return Duration::from_ms(ms);
}

void Relay::on_cell(const simnet::ConnPtr& conn, Bytes wire) {
  Cell cell = Cell::decode(std::span<const std::uint8_t>(wire.data(), wire.size()));
  pool::recycle(std::move(wire));
  // Pay the forwarding delay, then process. A relay is a single service
  // queue: processing order follows arrival order even when sampled delays
  // would invert it (otherwise per-hop cipher streams would desync).
  const Duration delay = forwarding_delay();
  TimePoint at = net_.loop().now() + delay;
  if (at <= last_dequeue_) at = last_dequeue_ + Duration::nanos(1);
  last_dequeue_ = at;
  net_.loop().schedule_at(at, [this, conn, cell = std::move(cell)]() mutable {
    process_cell(conn, std::move(cell));
  });
}

void Relay::process_cell(const simnet::ConnPtr& conn, Cell cell) {
  ++cells_processed_;
  switch (cell.command) {
    case CellCommand::kCreate:
      handle_create(conn, cell);
      return;
    case CellCommand::kCreated:
      handle_created(conn, cell);
      return;
    case CellCommand::kDestroy:
      handle_destroy(conn, cell);
      return;
    case CellCommand::kRelay: {
      auto it = circuits_.find({conn.get(), cell.circ_id});
      if (it == circuits_.end()) {
        TING_DEBUG("relay " << config_.nickname
                            << ": RELAY cell for unknown circuit "
                            << cell.circ_id);
        return;
      }
      EntryPtr entry = it->second;
      const bool from_prev = (entry->prev_conn.get() == conn.get() &&
                              entry->prev_id == cell.circ_id);
      if (from_prev) {
        handle_relay_forward(entry, std::move(cell));
      } else {
        handle_relay_backward(entry, std::move(cell));
      }
      return;
    }
    case CellCommand::kPadding:
      return;
    case CellCommand::kVersions:
    case CellCommand::kNetinfo:
      TING_DEBUG("relay " << config_.nickname
                          << ": stray link-handshake cell after link open");
      return;
  }
}

void Relay::handle_create(const simnet::ConnPtr& conn, const Cell& cell) {
  if (circuits_.contains({conn.get(), cell.circ_id})) {
    TING_WARN("relay " << config_.nickname << ": duplicate CREATE for circuit "
                       << cell.circ_id);
    return;
  }
  crypto::X25519Key client_public;
  std::copy_n(cell.payload.begin(), client_public.size(),
              client_public.begin());
  const crypto::RelayHandshakeResult hs =
      crypto::relay_handshake(identity_, client_public, rng_);

  auto entry = std::make_shared<CircuitEntry>();
  entry->prev_conn = conn;
  entry->prev_id = cell.circ_id;
  entry->crypto = std::make_unique<HopCrypto>(hs.keys);
  circuits_[{conn.get(), cell.circ_id}] = entry;

  ByteWriter reply;
  reply.raw(std::span<const std::uint8_t>(hs.ephemeral_public.data(), 32));
  reply.raw(std::span<const std::uint8_t>(hs.keys.auth.data(), 32));
  conn->send(Cell::make(cell.circ_id, CellCommand::kCreated, reply.take())
                 .encode());
}

void Relay::handle_created(const simnet::ConnPtr& conn, const Cell& cell) {
  auto it = pending_extends_.find({conn.get(), cell.circ_id});
  if (it == pending_extends_.end()) {
    TING_DEBUG("relay " << config_.nickname << ": stray CREATED");
    return;
  }
  EntryPtr entry = it->second;
  pending_extends_.erase(it);
  entry->next_conn = conn;
  entry->next_id = cell.circ_id;
  entry->extending = false;
  circuits_[{conn.get(), cell.circ_id}] = entry;

  // Relay the handshake material back to the client as EXTENDED.
  cells::ExtendedReply reply;
  std::copy_n(cell.payload.begin(), 32, reply.relay_public.begin());
  std::copy_n(cell.payload.begin() + 32, 32, reply.auth.begin());
  send_to_client(entry, RelayCommand::kExtended, 0, reply.encode());
}

void Relay::handle_relay_forward(const EntryPtr& entry, Cell cell) {
  entry->crypto->apply_forward(cell.payload);
  auto recognized = cells::try_parse_relay(
      std::span<const std::uint8_t>(cell.payload.data(), cell.payload.size()),
      entry->crypto->forward_digest());
  if (recognized.has_value()) {
    pool::recycle(std::move(cell.payload));
    handle_recognized(entry, std::move(*recognized));
    return;
  }
  if (!entry->next_conn || !entry->next_conn->is_open()) {
    TING_DEBUG("relay " << config_.nickname
                        << ": unrecognized relay cell at terminal hop");
    teardown(entry, DestroyReason::kProtocol, /*notify_prev=*/true,
             /*notify_next=*/false);
    return;
  }
  cell.circ_id = entry->next_id;
  entry->next_conn->send(cell.encode());
  pool::recycle(std::move(cell.payload));
}

void Relay::handle_relay_backward(const EntryPtr& entry, Cell cell) {
  // Add our onion layer and pass toward the client.
  entry->crypto->apply_backward(cell.payload);
  cell.circ_id = entry->prev_id;
  if (entry->prev_conn && entry->prev_conn->is_open())
    entry->prev_conn->send(cell.encode());
  pool::recycle(std::move(cell.payload));
}

void Relay::send_to_client(const EntryPtr& entry, RelayCommand cmd,
                           std::uint16_t stream_id, Bytes data) {
  RelayPayload p;
  p.command = cmd;
  p.stream_id = stream_id;
  p.data = std::move(data);
  Bytes payload = cells::encode_relay(p, entry->crypto->backward_digest());
  entry->crypto->apply_backward(payload);
  if (entry->prev_conn && entry->prev_conn->is_open())
    entry->prev_conn->send(
        Cell::make(entry->prev_id, CellCommand::kRelay, std::move(payload))
            .encode());
}

void Relay::originate_delayed(const EntryPtr& entry, RelayCommand cmd,
                              std::uint16_t stream_id, Bytes data) {
  TimePoint at = net_.loop().now() + forwarding_delay();
  if (at <= last_dequeue_) at = last_dequeue_ + Duration::nanos(1);
  last_dequeue_ = at;
  net_.loop().schedule_at(
      at, [this, entry, cmd, stream_id, data = std::move(data)]() mutable {
        send_to_client(entry, cmd, stream_id, std::move(data));
      });
}

void Relay::handle_recognized(const EntryPtr& entry, RelayPayload payload) {
  switch (payload.command) {
    case RelayCommand::kExtend: {
      if (entry->next_conn || entry->extending) {
        TING_WARN("relay " << config_.nickname << ": EXTEND on extended circuit");
        return;
      }
      const auto req = cells::ExtendRequest::decode(
          std::span<const std::uint8_t>(payload.data.data(), payload.data.size()));
      entry->extending = true;
      const CircuitId out_id = next_outbound_id();
      net_.connect(
          host_, Endpoint{req.address, req.or_port}, simnet::Protocol::kTor,
          [this, entry, out_id, req](simnet::ConnPtr conn) {
            simnet::Connection* raw = conn.get();
            conn->set_on_close([this, raw]() { links_.erase(raw); });
            // Initiate the link handshake; the CREATE queues until open.
            OrLink::Ptr link = OrLink::initiate(net_, std::move(conn));
            links_[raw] = link;
            link->set_on_cell([this, raw](Bytes wire) {
              on_cell(raw->shared_from_this(), std::move(wire));
            });
            pending_extends_[{raw, out_id}] = entry;
            Bytes create(req.client_public.begin(), req.client_public.end());
            link->send_cell(
                Cell::make(out_id, CellCommand::kCreate, std::move(create))
                    .encode());
          },
          [this, entry](const std::string&) {
            teardown(entry, DestroyReason::kProtocol, /*notify_prev=*/true,
                     /*notify_next=*/false);
          });
      return;
    }
    case RelayCommand::kBegin:
      begin_stream(entry, payload.stream_id, payload.data);
      return;
    case RelayCommand::kData: {
      auto it = entry->streams.find(payload.stream_id);
      if (it == entry->streams.end()) {
        send_to_client(entry, RelayCommand::kEnd, payload.stream_id, {1});
        return;
      }
      it->second.conn->send(std::move(payload.data));
      return;
    }
    case RelayCommand::kEnd: {
      auto it = entry->streams.find(payload.stream_id);
      if (it != entry->streams.end()) {
        // Remove before closing: close() fires on_close, which also erases
        // by id — erasing after would use an invalidated iterator.
        simnet::ConnPtr stream = std::move(it->second.conn);
        entry->streams.erase(it);
        stream->close();
      }
      return;
    }
    case RelayCommand::kSendme: {
      // Stream-level flow control: the client consumed kSendmeIncrement
      // DATA cells; widen the window and flush anything buffered.
      ++sendmes_received_;
      auto it = entry->streams.find(payload.stream_id);
      if (it == entry->streams.end()) return;
      it->second.package_window += kSendmeIncrement;
      pump_stream(entry, payload.stream_id);
      return;
    }
    case RelayCommand::kDrop:
      return;  // long-range padding: accepted and discarded
    case RelayCommand::kExtended:
    case RelayCommand::kConnected:
      TING_WARN("relay " << config_.nickname
                         << ": client-only relay command received");
      return;
  }
}

void Relay::begin_stream(const EntryPtr& entry, std::uint16_t stream_id,
                         const Bytes& data) {
  const auto target = cells::decode_begin(
      std::span<const std::uint8_t>(data.data(), data.size()));
  if (!target.has_value()) {
    send_to_client(entry, RelayCommand::kEnd, stream_id, {1});
    return;
  }
  if (!config_.exit_policy.allows(target->ip, target->port)) {
    TING_DEBUG("relay " << config_.nickname << ": exit policy rejects "
                        << target->str());
    send_to_client(entry, RelayCommand::kEnd, stream_id, {2});
    return;
  }
  net_.connect(
      host_, *target, simnet::Protocol::kTcp,
      [this, entry, stream_id](simnet::ConnPtr conn) {
        entry->streams[stream_id] = ExitStream{conn, kStreamWindow, {}};
        conn->set_on_message([this, entry, stream_id](Bytes data) {
          auto it = entry->streams.find(stream_id);
          if (it == entry->streams.end()) return;
          // Chunk into relay cells; the window gate is in pump_stream.
          std::size_t off = 0;
          do {
            const std::size_t take =
                std::min(data.size() - off, cells::kRelayDataMax);
            it->second.buffered.emplace_back(
                data.begin() + static_cast<std::ptrdiff_t>(off),
                data.begin() + static_cast<std::ptrdiff_t>(off + take));
            off += take;
          } while (off < data.size());
          pump_stream(entry, stream_id);
        });
        conn->set_on_close([this, entry, stream_id]() {
          if (entry->streams.erase(stream_id) > 0)
            originate_delayed(entry, RelayCommand::kEnd, stream_id, {0});
        });
        originate_delayed(entry, RelayCommand::kConnected, stream_id, {});
      },
      [this, entry, stream_id](const std::string&) {
        send_to_client(entry, RelayCommand::kEnd, stream_id, {3});
      });
}

void Relay::pump_stream(const EntryPtr& entry, std::uint16_t stream_id) {
  auto it = entry->streams.find(stream_id);
  if (it == entry->streams.end()) return;
  ExitStream& stream = it->second;
  std::size_t sent = 0;
  while (sent < stream.buffered.size() && stream.package_window > 0) {
    originate_delayed(entry, RelayCommand::kData, stream_id,
                      std::move(stream.buffered[sent]));
    --stream.package_window;
    ++sent;
  }
  stream.buffered.erase(stream.buffered.begin(),
                        stream.buffered.begin() +
                            static_cast<std::ptrdiff_t>(sent));
}

void Relay::handle_destroy(const simnet::ConnPtr& conn, const Cell& cell) {
  auto it = circuits_.find({conn.get(), cell.circ_id});
  if (it == circuits_.end()) return;
  EntryPtr entry = it->second;
  const bool from_prev = (entry->prev_conn.get() == conn.get() &&
                          entry->prev_id == cell.circ_id);
  teardown(entry, DestroyReason::kDestroyed, /*notify_prev=*/!from_prev,
           /*notify_next=*/from_prev);
}

void Relay::teardown(const EntryPtr& entry, DestroyReason reason,
                     bool notify_prev, bool notify_next) {
  circuits_.erase({entry->prev_conn.get(), entry->prev_id});
  if (entry->next_conn)
    circuits_.erase({entry->next_conn.get(), entry->next_id});
  // Detach the stream map before closing: each close() re-enters via the
  // stream's on_close handler, which erases from entry->streams.
  auto streams = std::move(entry->streams);
  entry->streams.clear();
  for (auto& [id, stream] : streams) stream.conn->close();
  const Bytes payload{static_cast<std::uint8_t>(reason)};
  if (notify_prev && entry->prev_conn && entry->prev_conn->is_open())
    entry->prev_conn->send(
        Cell::make(entry->prev_id, CellCommand::kDestroy, payload).encode());
  if (notify_next && entry->next_conn && entry->next_conn->is_open())
    entry->next_conn->send(
        Cell::make(entry->next_id, CellCommand::kDestroy, payload).encode());
}

}  // namespace ting::tor
