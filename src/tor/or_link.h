// OR-connection link handshake: VERSIONS / NETINFO.
//
// Real Tor negotiates a link protocol version and exchanges NETINFO
// (timestamps + observed addresses) on every OR connection before any
// circuit cell may flow. OrLink wraps a simnet connection with that state
// machine:
//
//   initiator                         responder
//   --------- VERSIONS -->
//                            <-- VERSIONS ---------
//                            <-- NETINFO ----------
//   --------- NETINFO -->
//   (link open; queued CREATE/... cells flush)     (link open on NETINFO)
//
// Cells submitted before the link opens are queued in order; the FIFO
// transport guarantees the peer never sees a circuit cell before NETINFO.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cells/cell.h"
#include "simnet/network.h"

namespace ting::tor {

/// Link protocol versions this implementation speaks (Tor's 3–5 era).
inline constexpr std::uint16_t kSupportedLinkVersions[] = {3, 4, 5};

/// VERSIONS payload: u8 count, then count u16 versions.
Bytes encode_versions_payload();
std::vector<std::uint16_t> decode_versions_payload(
    std::span<const std::uint8_t> payload);
/// Highest version present in both lists; 0 if none.
std::uint16_t negotiate_version(const std::vector<std::uint16_t>& theirs);

/// NETINFO payload: u64 timestamp_ns, u32 peer address, u32 own address.
Bytes encode_netinfo_payload(TimePoint now, IpAddr peer, IpAddr self);

class OrLink : public std::enable_shared_from_this<OrLink> {
 public:
  using Ptr = std::shared_ptr<OrLink>;
  using CellHandler = std::function<void(Bytes)>;

  /// Client side: sends VERSIONS immediately.
  static Ptr initiate(simnet::Network& net, simnet::ConnPtr conn);
  /// Server side: waits for the peer's VERSIONS.
  static Ptr accept(simnet::Network& net, simnet::ConnPtr conn);

  /// Handler for post-handshake cells (raw wire bytes).
  void set_on_cell(CellHandler fn) { on_cell_ = std::move(fn); }
  /// Fires once when the link opens (immediately if already open).
  void set_on_open(std::function<void()> fn);
  /// Send a wire cell; queued in order until the link opens.
  void send_cell(Bytes wire);

  bool is_open() const { return open_; }
  std::uint16_t version() const { return version_; }
  const simnet::ConnPtr& conn() const { return conn_; }

 private:
  OrLink(simnet::Network& net, simnet::ConnPtr conn, bool initiator);
  void wire_handler();
  void on_message(Bytes wire);
  void open_link();
  void fail(const std::string& why);

  simnet::Network& net_;
  simnet::ConnPtr conn_;
  bool initiator_;
  bool open_ = false;
  bool sent_versions_ = false;
  std::uint16_t version_ = 0;
  std::vector<Bytes> queued_;
  CellHandler on_cell_;
  std::function<void()> on_open_;
};

}  // namespace ting::tor
