#include "tor/or_link.h"

#include <algorithm>

#include "util/bytes.h"
#include "util/log.h"

namespace ting::tor {

using cells::Cell;
using cells::CellCommand;

Bytes encode_versions_payload() {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(std::size(kSupportedLinkVersions)));
  for (std::uint16_t v : kSupportedLinkVersions) w.u16(v);
  return w.take();
}

std::vector<std::uint16_t> decode_versions_payload(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  const std::uint8_t count = r.u8();
  std::vector<std::uint16_t> out;
  for (std::uint8_t i = 0; i < count; ++i) out.push_back(r.u16());
  return out;
}

std::uint16_t negotiate_version(const std::vector<std::uint16_t>& theirs) {
  std::uint16_t best = 0;
  for (std::uint16_t mine : kSupportedLinkVersions)
    for (std::uint16_t v : theirs)
      if (v == mine) best = std::max(best, v);
  return best;
}

Bytes encode_netinfo_payload(TimePoint now, IpAddr peer, IpAddr self) {
  ByteWriter w;
  w.u64(static_cast<std::uint64_t>(now.ns()));
  w.u32(peer.value());
  w.u32(self.value());
  return w.take();
}

OrLink::OrLink(simnet::Network& net, simnet::ConnPtr conn, bool initiator)
    : net_(net), conn_(std::move(conn)), initiator_(initiator) {}

OrLink::Ptr OrLink::initiate(simnet::Network& net, simnet::ConnPtr conn) {
  Ptr link(new OrLink(net, std::move(conn), /*initiator=*/true));
  link->wire_handler();
  link->conn_->send(
      Cell::make(0, CellCommand::kVersions, encode_versions_payload())
          .encode());
  link->sent_versions_ = true;
  return link;
}

OrLink::Ptr OrLink::accept(simnet::Network& net, simnet::ConnPtr conn) {
  Ptr link(new OrLink(net, std::move(conn), /*initiator=*/false));
  link->wire_handler();
  return link;
}

void OrLink::wire_handler() {
  auto self = shared_from_this();
  conn_->set_on_message(
      [self](Bytes wire) { self->on_message(std::move(wire)); });
}

void OrLink::set_on_open(std::function<void()> fn) {
  if (open_) {
    if (fn) fn();
    return;
  }
  on_open_ = std::move(fn);
}

void OrLink::send_cell(Bytes wire) {
  if (open_) {
    conn_->send(std::move(wire));
    return;
  }
  queued_.push_back(std::move(wire));
}

void OrLink::fail(const std::string& why) {
  TING_DEBUG("or-link handshake failed: " << why);
  conn_->close();
}

void OrLink::open_link() {
  open_ = true;
  for (Bytes& cell : queued_) conn_->send(std::move(cell));
  queued_.clear();
  if (on_open_) {
    auto fn = std::move(on_open_);
    on_open_ = {};
    fn();
  }
}

void OrLink::on_message(Bytes wire) {
  if (open_) {
    if (on_cell_) {
      auto fn = on_cell_;  // copy: the handler may replace itself
      fn(std::move(wire));
    }
    return;
  }
  Cell cell;
  try {
    cell = Cell::decode(std::span<const std::uint8_t>(wire.data(), wire.size()));
  } catch (const CheckError& e) {
    fail(e.what());
    return;
  }

  const IpAddr self_ip = net_.ip_of(conn_->local_host());
  const IpAddr peer_ip = net_.ip_of(conn_->remote_host());
  switch (cell.command) {
    case CellCommand::kVersions: {
      std::vector<std::uint16_t> theirs;
      try {
        theirs = decode_versions_payload(std::span<const std::uint8_t>(
            cell.payload.data(), cell.payload.size()));
      } catch (const CheckError&) {
        fail("malformed VERSIONS");
        return;
      }
      version_ = negotiate_version(theirs);
      if (version_ == 0) {
        fail("no common link version");
        return;
      }
      if (!initiator_) {
        // Respond with our VERSIONS, then NETINFO.
        conn_->send(
            Cell::make(0, CellCommand::kVersions, encode_versions_payload())
                .encode());
        sent_versions_ = true;
        conn_->send(Cell::make(0, CellCommand::kNetinfo,
                               encode_netinfo_payload(net_.loop().now(),
                                                      peer_ip, self_ip))
                        .encode());
      }
      return;
    }
    case CellCommand::kNetinfo: {
      if (version_ == 0) {
        fail("NETINFO before VERSIONS");
        return;
      }
      if (initiator_) {
        // Complete the handshake: our NETINFO, then any queued cells.
        conn_->send(Cell::make(0, CellCommand::kNetinfo,
                               encode_netinfo_payload(net_.loop().now(),
                                                      peer_ip, self_ip))
                        .encode());
      }
      open_link();
      return;
    }
    default:
      fail("circuit cell before link handshake completed");
  }
}

}  // namespace ting::tor
