// A Tor relay (onion router).
//
// Listens on its ORPort for cells, maintains a circuit table, performs the
// ntor handshake on CREATE, strips/adds one onion layer per relay cell,
// extends circuits on EXTEND, and — when it is the terminal hop — services
// exit streams subject to its exit policy.
//
// Every cell pays a forwarding delay before being processed, modelling what
// §3.2/§4.3 calls F_i: a per-relay base processing cost (user-space swap +
// symmetric crypto) plus load-dependent queueing drawn fresh per cell. The
// minimum over many probes converges to the base cost (the paper's observed
// 0–3 ms); busy relays have heavier queueing tails.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "cells/cell.h"
#include "cells/relay_payload.h"
#include "crypto/handshake.h"
#include "dir/authority.h"
#include "dir/descriptor.h"
#include "simnet/network.h"
#include "tor/hop_crypto.h"
#include "tor/or_link.h"

namespace ting::tor {

struct RelayConfig {
  std::string nickname = "relay";
  std::uint16_t or_port = 9001;
  std::uint32_t bandwidth = 1000;  ///< consensus weight
  std::uint32_t flags = dir::kFlagRunning | dir::kFlagValid | dir::kFlagFast;
  dir::ExitPolicy exit_policy = dir::ExitPolicy::reject_all();
  std::string country_code;
  std::string reverse_dns;

  // Forwarding-delay model (per cell, per direction).
  double base_forward_ms = 0.5;  ///< processing floor: crypto + dequeue
  double queue_mean_ms = 1.0;    ///< exponential load-dependent queueing

  // Congestion sensitivity: the effective queueing mean grows with the
  // relay's recent cell rate (exponentially-decayed counter with time
  // constant load_tau_ms). This is the physical mechanism Murdoch–Danezis
  // congestion probing exploits (§5.1 assumes such a probe exists; see
  // analysis/congestion.h for the implementation).
  double load_factor = 0.02;   ///< queue-mean multiplier per unit load
  double load_tau_ms = 50.0;   ///< decay time constant of the load counter
};

class Relay {
 public:
  Relay(simnet::Network& net, simnet::HostId host, RelayConfig config,
        std::uint64_t seed);
  /// Construct from a precomputed identity (a shared-topology blueprint):
  /// skips keygen. `rng` must be the post-keygen state of Rng(seed), so the
  /// relay's stochastic stream continues exactly as the seeded ctor's would.
  Relay(simnet::Network& net, simnet::HostId host, RelayConfig config,
        crypto::IdentityKeys identity, Rng rng);

  Relay(const Relay&) = delete;
  Relay& operator=(const Relay&) = delete;

  const dir::RelayDescriptor& descriptor() const { return descriptor_; }
  const dir::Fingerprint& fingerprint() const { return descriptor_.fingerprint; }
  simnet::HostId host() const { return host_; }

  /// Publish our descriptor to a directory authority over the network.
  void publish_to(Endpoint authority);
  /// Publish now and re-publish every `interval` (descriptor refresh, so an
  /// authority with a descriptor TTL keeps listing us). NOTE: schedules an
  /// unbounded event chain — drive the loop with run_until/-waiting_for.
  void publish_periodically(Endpoint authority, Duration interval);

  // Introspection for tests and load accounting.
  std::uint64_t cells_processed() const { return cells_processed_; }
  std::uint64_t sendmes_received() const { return sendmes_received_; }
  /// Decayed recent-cell-rate counter (the congestion the probe senses).
  double current_load() const { return load_; }
  /// Reset the relay's stochastic state — rng, load counter, and queue
  /// watermark — to a deterministic function of `seed`. The sharded scan
  /// engine calls this on every relay before each pair so forwarding-delay
  /// draws are identical no matter which shard world measures the pair.
  /// Identity keys (and hence the fingerprint) are untouched.
  void reseed(std::uint64_t seed);
  /// Number of distinct circuits through this relay (an extended circuit is
  /// indexed from both its previous- and next-hop connections).
  std::size_t open_circuits() const;
  const RelayConfig& config() const { return config_; }

 private:
  /// Stream-level flow control (Tor's SENDME scheme): the exit may have at
  /// most `kStreamWindow` unacknowledged DATA cells toward the client; the
  /// client acknowledges every `kSendmeIncrement` cells it consumes.
  static constexpr int kStreamWindow = 500;
  static constexpr int kSendmeIncrement = 50;

  struct ExitStream {
    simnet::ConnPtr conn;
    int package_window = kStreamWindow;  ///< DATA cells we may still send
    std::vector<Bytes> buffered;         ///< chunks awaiting window
  };
  struct CircuitEntry {
    simnet::ConnPtr prev_conn;
    cells::CircuitId prev_id = 0;
    simnet::ConnPtr next_conn;  ///< null while we are the last hop
    cells::CircuitId next_id = 0;
    std::unique_ptr<HopCrypto> crypto;
    bool extending = false;  ///< EXTEND sent, CREATED not yet received
    std::map<std::uint16_t, ExitStream> streams;  ///< exit streams
  };
  using EntryPtr = std::shared_ptr<CircuitEntry>;

  /// Shared ctor tail: assemble the descriptor from config + identity and
  /// bind the ORPort listener.
  void init_descriptor_and_listen();

  void on_or_connection(simnet::ConnPtr conn);
  void on_cell(const simnet::ConnPtr& conn, Bytes wire);
  void process_cell(const simnet::ConnPtr& conn, cells::Cell cell);
  void handle_create(const simnet::ConnPtr& conn, const cells::Cell& cell);
  void handle_created(const simnet::ConnPtr& conn, const cells::Cell& cell);
  void handle_relay_forward(const EntryPtr& entry, cells::Cell cell);
  void handle_relay_backward(const EntryPtr& entry, cells::Cell cell);
  void handle_recognized(const EntryPtr& entry, cells::RelayPayload payload);
  void handle_destroy(const simnet::ConnPtr& conn, const cells::Cell& cell);

  void begin_stream(const EntryPtr& entry, std::uint16_t stream_id,
                    const Bytes& data);
  /// Send buffered/new exit-stream data within the package window.
  void pump_stream(const EntryPtr& entry, std::uint16_t stream_id);
  void send_to_client(const EntryPtr& entry, cells::RelayCommand cmd,
                      std::uint16_t stream_id, Bytes data);
  /// Like send_to_client, but pays a forwarding delay first — used for
  /// cells this relay originates in response to non-cell input (exit-stream
  /// data, CONNECTED), so relay-originated traffic is charged F_i like
  /// forwarded traffic (Eq. (1) counts 2F_i per relay per round trip).
  void originate_delayed(const EntryPtr& entry, cells::RelayCommand cmd,
                         std::uint16_t stream_id, Bytes data);
  void teardown(const EntryPtr& entry, cells::DestroyReason reason,
                bool notify_prev, bool notify_next);

  Duration forwarding_delay();
  cells::CircuitId next_outbound_id() { return next_circ_id_++; }

  simnet::Network& net_;
  simnet::HostId host_;
  RelayConfig config_;
  Rng rng_;
  crypto::IdentityKeys identity_;
  dir::RelayDescriptor descriptor_;

  /// OR links (VERSIONS/NETINFO state) per connection.
  std::map<simnet::Connection*, OrLink::Ptr> links_;
  /// Circuits keyed by (connection, circuit id) for both directions.
  std::map<std::pair<simnet::Connection*, cells::CircuitId>, EntryPtr>
      circuits_;
  /// Entries waiting for a CREATED on their next-hop connection.
  std::map<std::pair<simnet::Connection*, cells::CircuitId>, EntryPtr>
      pending_extends_;
  cells::CircuitId next_circ_id_ = 1;
  std::uint64_t cells_processed_ = 0;
  std::uint64_t sendmes_received_ = 0;
  TimePoint last_dequeue_;  ///< single-service-queue ordering watermark
  double load_ = 0;         ///< decayed cell-rate counter
  TimePoint last_load_update_;
};

}  // namespace ting::tor
