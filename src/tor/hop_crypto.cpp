#include "tor/hop_crypto.h"

// Header-only today; this TU anchors the library target.
