#include "crypto/hash.h"

#include <cstring>

#include "crypto/chacha.h"

#include "util/assert.h"

namespace ting::crypto {

namespace {
inline std::uint32_t load32_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}
inline void store32_le(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}
}  // namespace

Hasher::Hasher() {
  // Initial state: the ASCII tag "TingHash sponge v1, 32-byte rate" — 32
  // bytes of distinct constants in the capacity+rate words.
  static const char tag[65] = "TingHash sponge v1 32B rate.....TingHash sponge v1 32B capacity";
  for (int i = 0; i < 16; ++i)
    state_[i] = load32_le(reinterpret_cast<const std::uint8_t*>(tag) + 4 * i);
}

void Hasher::absorb_block(const std::uint8_t* block) {
  // Overwrite-mode sponge: XOR the 32-byte block into the rate half, then
  // permute with the ChaCha block function.
  for (int i = 0; i < 8; ++i) state_[i] ^= load32_le(block + 4 * i);
  std::uint32_t out[16];
  chacha_block(state_, out);
  std::memcpy(state_, out, sizeof(state_));
}

void Hasher::update(std::span<const std::uint8_t> data) {
  TING_CHECK(!finalized_);
  total_len_ += data.size();
  std::size_t off = 0;
  // Top up a partially filled staging buffer first.
  if (buf_len_ > 0) {
    const std::size_t take = std::min(data.size(), 32 - buf_len_);
    std::memcpy(buf_ + buf_len_, data.data(), take);
    buf_len_ += take;
    off += take;
    if (buf_len_ == 32) {
      absorb_block(buf_);
      buf_len_ = 0;
    }
  }
  // Aligned to a block boundary: absorb straight from the input, skipping
  // the staging memcpy. Relay-cell digests hash 500+ bytes per call, so this
  // is the common path.
  while (data.size() - off >= 32) {
    absorb_block(data.data() + off);
    off += 32;
  }
  if (off < data.size()) {
    std::memcpy(buf_, data.data() + off, data.size() - off);
    buf_len_ = data.size() - off;
  }
}

void Hasher::update(const std::string& s) {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

Digest Hasher::finalize() {
  TING_CHECK(!finalized_);
  finalized_ = true;
  // Pad: 0x80, zeros, then the 64-bit length in the final block.
  if (buf_len_ > 32 - 1 - 8) {
    // No room for the length; emit the 0x80 block first.
    std::uint8_t first[32] = {0};
    std::memcpy(first, buf_, buf_len_);
    first[buf_len_] = 0x80;
    absorb_block(first);
    std::uint8_t second[32] = {0};
    for (int i = 0; i < 8; ++i)
      second[24 + i] = static_cast<std::uint8_t>(total_len_ >> (56 - 8 * i));
    absorb_block(second);
  } else {
    std::uint8_t block[32] = {0};
    std::memcpy(block, buf_, buf_len_);
    block[buf_len_] = 0x80;
    for (int i = 0; i < 8; ++i)
      block[24 + i] = static_cast<std::uint8_t>(total_len_ >> (56 - 8 * i));
    absorb_block(block);
  }
  // Squeeze 32 bytes from the rate half.
  Digest out;
  for (int i = 0; i < 8; ++i) store32_le(out.data() + 4 * i, state_[i]);
  return out;
}

Digest hash(std::span<const std::uint8_t> data) {
  Hasher h;
  h.update(data);
  return h.finalize();
}

Digest hash(const std::string& s) {
  Hasher h;
  h.update(s);
  return h.finalize();
}

Digest hmac(std::span<const std::uint8_t> key,
            std::span<const std::uint8_t> msg) {
  // Block size = 32 bytes (the sponge rate).
  std::uint8_t k[32] = {0};
  if (key.size() > 32) {
    Digest kd = hash(key);
    std::memcpy(k, kd.data(), 32);
  } else {
    std::memcpy(k, key.data(), key.size());
  }
  std::uint8_t ipad[32], opad[32];
  for (int i = 0; i < 32; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  Hasher inner;
  inner.update(std::span<const std::uint8_t>(ipad, 32));
  inner.update(msg);
  Digest inner_digest = inner.finalize();
  Hasher outer;
  outer.update(std::span<const std::uint8_t>(opad, 32));
  outer.update(std::span<const std::uint8_t>(inner_digest.data(), 32));
  return outer.finalize();
}

Bytes hkdf(std::span<const std::uint8_t> ikm, std::span<const std::uint8_t> salt,
           const std::string& info, std::size_t out_len) {
  // Extract.
  Digest prk = hmac(salt, ikm);
  // Expand.
  Bytes out;
  out.reserve(out_len);
  Bytes t;  // T(0) = empty
  std::uint8_t counter = 1;
  while (out.size() < out_len) {
    Bytes block = t;
    block.insert(block.end(), info.begin(), info.end());
    block.push_back(counter++);
    Digest d = hmac(std::span<const std::uint8_t>(prk.data(), prk.size()),
                    std::span<const std::uint8_t>(block.data(), block.size()));
    t.assign(d.begin(), d.end());
    const std::size_t take = std::min(t.size(), out_len - out.size());
    out.insert(out.end(), t.begin(), t.begin() + take);
  }
  return out;
}

}  // namespace ting::crypto
