// ntor-style circuit handshake.
//
// Mirrors Tor's ntor: the client sends an ephemeral X25519 public key in the
// CREATE cell; the relay replies with its own ephemeral public key plus an
// authentication tag. Both sides derive the shared secret from the two DH
// results (client-ephemeral × relay-ephemeral and client-ephemeral ×
// relay-identity) through HKDF, yielding the forward/backward cipher keys
// and the rolling digest seeds for that hop.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "crypto/chacha.h"
#include "crypto/hash.h"
#include "crypto/x25519.h"
#include "util/rng.h"

namespace ting::crypto {

/// Key material for one circuit hop, shared by client and relay.
struct HopKeys {
  Key forward_key;    ///< client→exit direction cipher key
  Key backward_key;   ///< exit→client direction cipher key
  Digest forward_digest_seed;
  Digest backward_digest_seed;
  Digest auth;        ///< handshake authentication tag
};

/// A relay's long-lived identity keypair.
struct IdentityKeys {
  X25519Key secret;
  X25519Key public_key;

  static IdentityKeys generate(Rng& rng);
};

/// Client side, phase 1: ephemeral keypair + the onionskin to send.
struct ClientHandshake {
  X25519Key ephemeral_secret;
  X25519Key ephemeral_public;  ///< goes into the CREATE/EXTEND cell

  static ClientHandshake start(Rng& rng);

  /// Phase 2: process the relay's reply. Returns std::nullopt if the auth
  /// tag does not verify (e.g. wrong identity key — a MITM in real Tor).
  std::optional<HopKeys> finish(const X25519Key& relay_identity_public,
                                const X25519Key& relay_ephemeral_public,
                                const Digest& auth) const;
};

/// Relay side: consume a client's onionskin, produce the reply and keys.
struct RelayHandshakeResult {
  X25519Key ephemeral_public;  ///< goes into the CREATED/EXTENDED cell
  HopKeys keys;
};
RelayHandshakeResult relay_handshake(const IdentityKeys& identity,
                                     const X25519Key& client_public,
                                     Rng& rng);

}  // namespace ting::crypto
