// TingHash — a 256-bit sponge hash over the ChaCha permutation — plus HMAC
// and HKDF built on it.
//
// SUBSTITUTION NOTE (see DESIGN.md §2): Tor uses SHA-1/SHA-256; no certified
// implementation is available offline, so the cell digests, fingerprints,
// and key derivation in this reproduction use TingHash instead. The
// construction is a classic overwrite-mode sponge: 64-byte state, 32-byte
// rate, ChaCha block function as the permutation, simple 0x80...len padding.
// All structural uses of the hash (collision-freeness in practice,
// determinism, avalanche) are what the protocol machinery relies on, and are
// property-tested.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "util/bytes.h"

namespace ting::crypto {

inline constexpr std::size_t kDigestLen = 32;
using Digest = std::array<std::uint8_t, kDigestLen>;

/// Incremental hash. Absorb with update(), squeeze with finalize().
class Hasher {
 public:
  Hasher();
  void update(std::span<const std::uint8_t> data);
  void update(const std::string& s);
  /// Finalize; the Hasher must not be reused afterwards.
  Digest finalize();

 private:
  void absorb_block(const std::uint8_t* block);  // 32-byte rate block
  std::uint32_t state_[16];
  std::uint8_t buf_[32];
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finalized_ = false;
};

/// One-shot hash.
Digest hash(std::span<const std::uint8_t> data);
Digest hash(const std::string& s);

/// HMAC(key, msg) with the standard ipad/opad construction over TingHash.
Digest hmac(std::span<const std::uint8_t> key,
            std::span<const std::uint8_t> msg);

/// HKDF extract-and-expand producing `out_len` bytes.
Bytes hkdf(std::span<const std::uint8_t> ikm, std::span<const std::uint8_t> salt,
           const std::string& info, std::size_t out_len);

}  // namespace ting::crypto
