#include "crypto/handshake.h"

#include <cstring>

namespace ting::crypto {

namespace {

X25519Key random_scalar(Rng& rng) {
  X25519Key k;
  for (std::size_t i = 0; i < k.size(); i += 8) {
    const std::uint64_t r = rng.next_u64();
    for (std::size_t j = 0; j < 8; ++j)
      k[i + j] = static_cast<std::uint8_t>(r >> (8 * j));
  }
  return k;
}

constexpr const char* kProtoId = "ting-ntor-chacha-v1";

/// Derive hop keys from the two DH shared secrets and the transcript.
HopKeys derive_keys(const X25519Key& dh_ephemeral, const X25519Key& dh_identity,
                    const X25519Key& client_public,
                    const X25519Key& relay_ephemeral_public,
                    const X25519Key& relay_identity_public) {
  ByteWriter ikm;
  ikm.raw(std::span<const std::uint8_t>(dh_ephemeral.data(), 32));
  ikm.raw(std::span<const std::uint8_t>(dh_identity.data(), 32));
  ikm.raw(std::span<const std::uint8_t>(client_public.data(), 32));
  ikm.raw(std::span<const std::uint8_t>(relay_ephemeral_public.data(), 32));
  ikm.raw(std::span<const std::uint8_t>(relay_identity_public.data(), 32));

  static const std::uint8_t salt[] = {'t', 'i', 'n', 'g', '-', 's', 'a', 'l', 't'};
  const Bytes okm = hkdf(std::span<const std::uint8_t>(ikm.bytes().data(),
                                                       ikm.bytes().size()),
                         std::span<const std::uint8_t>(salt, sizeof(salt)),
                         kProtoId, 2 * kKeyLen + 3 * kDigestLen);

  HopKeys keys;
  std::size_t off = 0;
  std::memcpy(keys.forward_key.data(), okm.data() + off, kKeyLen);
  off += kKeyLen;
  std::memcpy(keys.backward_key.data(), okm.data() + off, kKeyLen);
  off += kKeyLen;
  std::memcpy(keys.forward_digest_seed.data(), okm.data() + off, kDigestLen);
  off += kDigestLen;
  std::memcpy(keys.backward_digest_seed.data(), okm.data() + off, kDigestLen);
  off += kDigestLen;
  std::memcpy(keys.auth.data(), okm.data() + off, kDigestLen);
  return keys;
}

}  // namespace

IdentityKeys IdentityKeys::generate(Rng& rng) {
  IdentityKeys id;
  id.secret = random_scalar(rng);
  id.public_key = x25519_base(id.secret);
  return id;
}

ClientHandshake ClientHandshake::start(Rng& rng) {
  ClientHandshake hs;
  hs.ephemeral_secret = random_scalar(rng);
  hs.ephemeral_public = x25519_base(hs.ephemeral_secret);
  return hs;
}

std::optional<HopKeys> ClientHandshake::finish(
    const X25519Key& relay_identity_public,
    const X25519Key& relay_ephemeral_public, const Digest& auth) const {
  const X25519Key dh_eph = x25519(ephemeral_secret, relay_ephemeral_public);
  const X25519Key dh_id = x25519(ephemeral_secret, relay_identity_public);
  HopKeys keys = derive_keys(dh_eph, dh_id, ephemeral_public,
                             relay_ephemeral_public, relay_identity_public);
  if (keys.auth != auth) return std::nullopt;
  return keys;
}

RelayHandshakeResult relay_handshake(const IdentityKeys& identity,
                                     const X25519Key& client_public,
                                     Rng& rng) {
  RelayHandshakeResult out;
  const X25519Key eph_secret = random_scalar(rng);
  out.ephemeral_public = x25519_base(eph_secret);
  const X25519Key dh_eph = x25519(eph_secret, client_public);
  const X25519Key dh_id = x25519(identity.secret, client_public);
  out.keys = derive_keys(dh_eph, dh_id, client_public, out.ephemeral_public,
                         identity.public_key);
  return out;
}

}  // namespace ting::crypto
