// ChaCha-style stream cipher.
//
// This is the ChaCha20 construction (16-word state, 20 rounds of
// quarter-rounds, counter mode) implemented from scratch. It is used for the
// per-hop onion layers, so every relayed cell really is encrypted and
// decrypted once per hop — the relay "crypto cost" in the forwarding-delay
// model corresponds to real work. We make no interoperability claim against
// RFC 7539 test vectors (none are available offline); all properties the
// library relies on (determinism, involution of encrypt/decrypt, key
// sensitivity) are property-tested.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/bytes.h"

namespace ting::crypto {

inline constexpr std::size_t kKeyLen = 32;
inline constexpr std::size_t kNonceLen = 12;

using Key = std::array<std::uint8_t, kKeyLen>;
using Nonce = std::array<std::uint8_t, kNonceLen>;

/// The ChaCha permutation applied to a 16-word state (20 rounds, with the
/// feed-forward addition). Exposed for the sponge hash.
void chacha_block(const std::uint32_t in[16], std::uint32_t out[16]);

/// Stateful keystream cipher. Encrypting twice with the same starting
/// position is the identity (XOR stream), which is how onion layers peel.
class ChaChaCipher {
 public:
  ChaChaCipher(const Key& key, const Nonce& nonce, std::uint32_t counter = 0);

  /// XOR the keystream into `data` in place, advancing the stream position.
  void apply(std::span<std::uint8_t> data);

  /// XOR several independent keystreams into `data` in one cache-blocked
  /// pass: the payload is walked chunk-by-chunk with every cipher applied
  /// to the chunk while it is hot in L1, instead of one full sweep per
  /// cipher. XOR layers commute and each cipher consumes exactly
  /// data.size() keystream bytes, so the result — output bytes and every
  /// cipher's stream position — is bit-identical to calling apply() on
  /// each cipher in sequence. This is the client-side onion-layering path:
  /// every forward cell XORs one layer per hop.
  static void apply_layers(std::span<ChaChaCipher* const> ciphers,
                           std::span<std::uint8_t> data);

  /// Convenience: returns the transformed copy.
  Bytes transform(std::span<const std::uint8_t> data);

 private:
  void refill();
  std::uint32_t state_[16];
  std::uint8_t block_[64];
  std::size_t block_pos_ = 64;  // exhausted; refill on first use
};

}  // namespace ting::crypto
