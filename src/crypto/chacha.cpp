#include "crypto/chacha.h"

#include <algorithm>
#include <cstring>

namespace ting::crypto {

namespace {

inline std::uint32_t rotl32(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl32(d, 16);
  c += d; b ^= c; b = rotl32(b, 12);
  a += b; d ^= a; d = rotl32(d, 8);
  c += d; b ^= c; b = rotl32(b, 7);
}

inline std::uint32_t load32_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

inline void store32_le(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

void chacha_block(const std::uint32_t in[16], std::uint32_t out[16]) {
  std::uint32_t x[16];
  std::memcpy(x, in, sizeof(x));
  for (int round = 0; round < 10; ++round) {
    // Column rounds.
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    // Diagonal rounds.
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) out[i] = x[i] + in[i];
}

ChaChaCipher::ChaChaCipher(const Key& key, const Nonce& nonce,
                           std::uint32_t counter) {
  // "expand 32-byte k" sigma constants.
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = load32_le(key.data() + 4 * i);
  state_[12] = counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = load32_le(nonce.data() + 4 * i);
}

void ChaChaCipher::refill() {
  std::uint32_t out[16];
  chacha_block(state_, out);
  for (int i = 0; i < 16; ++i) store32_le(block_ + 4 * i, out[i]);
  ++state_[12];  // block counter
  block_pos_ = 0;
}

void ChaChaCipher::apply(std::span<std::uint8_t> data) {
  std::size_t i = 0;
  const std::size_t n = data.size();
  // Consume any partial block left from a previous call.
  while (i < n && block_pos_ < 64) data[i++] ^= block_[block_pos_++];
  // Whole blocks: XOR the keystream word-wise instead of per byte — this
  // runs once per onion layer per relayed cell, the simulator's single
  // hottest crypto loop. memcpy keeps it alignment-safe; the keystream
  // bytes are identical to the scalar path's.
  while (n - i >= 64) {
    refill();
    std::uint8_t* p = data.data() + i;
    for (int w = 0; w < 8; ++w) {
      std::uint64_t v, k;
      std::memcpy(&v, p + 8 * w, 8);
      std::memcpy(&k, block_ + 8 * w, 8);
      v ^= k;
      std::memcpy(p + 8 * w, &v, 8);
    }
    block_pos_ = 64;
    i += 64;
  }
  // Tail shorter than a block.
  while (i < n) {
    if (block_pos_ == 64) refill();
    data[i++] ^= block_[block_pos_++];
  }
}

void ChaChaCipher::apply_layers(std::span<ChaChaCipher* const> ciphers,
                                std::span<std::uint8_t> data) {
  // Four keystream blocks per chunk: big enough to amortize the loop
  // overhead, small enough that chunk + keystream stay in L1.
  constexpr std::size_t kChunk = 256;
  for (std::size_t off = 0; off < data.size(); off += kChunk) {
    const std::size_t len = std::min(kChunk, data.size() - off);
    for (ChaChaCipher* c : ciphers) c->apply(data.subspan(off, len));
  }
}

Bytes ChaChaCipher::transform(std::span<const std::uint8_t> data) {
  Bytes out(data.begin(), data.end());
  apply(out);
  return out;
}

}  // namespace ting::crypto
