#include "crypto/x25519.h"

#include <cstring>

namespace ting::crypto {

namespace {

// Field element mod p = 2^255 - 19, radix 2^51, 5 limbs.
struct Fe {
  std::uint64_t v[5];
};

constexpr std::uint64_t kMask51 = (1ULL << 51) - 1;

Fe fe_zero() { return Fe{{0, 0, 0, 0, 0}}; }
Fe fe_one() { return Fe{{1, 0, 0, 0, 0}}; }

Fe fe_add(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}

// a - b with a bias of 2p added to keep limbs non-negative. Inputs must be
// reduced (limbs < 2^52); output limbs stay < 2^54.
Fe fe_sub(const Fe& a, const Fe& b) {
  // 2p = (2^255 - 19) * 2, distributed per limb as (2^52 - 38, 2^52 - 2, ...).
  static const std::uint64_t two_p[5] = {
      0xfffffffffffdaULL, 0xffffffffffffeULL, 0xffffffffffffeULL,
      0xffffffffffffeULL, 0xffffffffffffeULL};
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + two_p[i] - b.v[i];
  return r;
}

// Carry-propagate so all limbs < 2^51 (plus a small excess folded via *19).
Fe fe_carry(const Fe& a) {
  Fe r = a;
  std::uint64_t c;
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 4; ++i) {
      c = r.v[i] >> 51;
      r.v[i] &= kMask51;
      r.v[i + 1] += c;
    }
    c = r.v[4] >> 51;
    r.v[4] &= kMask51;
    r.v[0] += c * 19;
  }
  return r;
}

Fe fe_mul(const Fe& a, const Fe& b) {
  using u128 = unsigned __int128;
  const std::uint64_t a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3],
                      a4 = a.v[4];
  const std::uint64_t b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3],
                      b4 = b.v[4];
  const std::uint64_t b1_19 = b1 * 19, b2_19 = b2 * 19, b3_19 = b3 * 19,
                      b4_19 = b4 * 19;

  u128 t0 = (u128)a0 * b0 + (u128)a1 * b4_19 + (u128)a2 * b3_19 +
            (u128)a3 * b2_19 + (u128)a4 * b1_19;
  u128 t1 = (u128)a0 * b1 + (u128)a1 * b0 + (u128)a2 * b4_19 +
            (u128)a3 * b3_19 + (u128)a4 * b2_19;
  u128 t2 = (u128)a0 * b2 + (u128)a1 * b1 + (u128)a2 * b0 +
            (u128)a3 * b4_19 + (u128)a4 * b3_19;
  u128 t3 = (u128)a0 * b3 + (u128)a1 * b2 + (u128)a2 * b1 + (u128)a3 * b0 +
            (u128)a4 * b4_19;
  u128 t4 = (u128)a0 * b4 + (u128)a1 * b3 + (u128)a2 * b2 + (u128)a3 * b1 +
            (u128)a4 * b0;

  Fe r;
  std::uint64_t c;
  r.v[0] = (std::uint64_t)t0 & kMask51; c = (std::uint64_t)(t0 >> 51);
  t1 += c;
  r.v[1] = (std::uint64_t)t1 & kMask51; c = (std::uint64_t)(t1 >> 51);
  t2 += c;
  r.v[2] = (std::uint64_t)t2 & kMask51; c = (std::uint64_t)(t2 >> 51);
  t3 += c;
  r.v[3] = (std::uint64_t)t3 & kMask51; c = (std::uint64_t)(t3 >> 51);
  t4 += c;
  r.v[4] = (std::uint64_t)t4 & kMask51; c = (std::uint64_t)(t4 >> 51);
  r.v[0] += c * 19;
  c = r.v[0] >> 51; r.v[0] &= kMask51; r.v[1] += c;
  return r;
}

Fe fe_sq(const Fe& a) { return fe_mul(a, a); }

Fe fe_mul_small(const Fe& a, std::uint64_t k) {
  using u128 = unsigned __int128;
  Fe r;
  u128 c = 0;
  for (int i = 0; i < 5; ++i) {
    u128 t = (u128)a.v[i] * k + c;
    r.v[i] = (std::uint64_t)t & kMask51;
    c = t >> 51;
  }
  r.v[0] += (std::uint64_t)c * 19;
  std::uint64_t carry = r.v[0] >> 51;
  r.v[0] &= kMask51;
  r.v[1] += carry;
  return r;
}

// Inversion via Fermat: a^(p-2), using the standard 25519 addition chain.
Fe fe_invert(const Fe& z) {
  Fe z2 = fe_sq(z);                       // 2
  Fe z8 = fe_sq(fe_sq(z2));               // 8
  Fe z9 = fe_mul(z8, z);                  // 9
  Fe z11 = fe_mul(z9, z2);                // 11
  Fe z22 = fe_sq(z11);                    // 22
  Fe z_5_0 = fe_mul(z22, z9);             // 2^5 - 2^0
  Fe t = z_5_0;
  for (int i = 0; i < 5; ++i) t = fe_sq(t);
  Fe z_10_0 = fe_mul(t, z_5_0);           // 2^10 - 2^0
  t = z_10_0;
  for (int i = 0; i < 10; ++i) t = fe_sq(t);
  Fe z_20_0 = fe_mul(t, z_10_0);          // 2^20 - 2^0
  t = z_20_0;
  for (int i = 0; i < 20; ++i) t = fe_sq(t);
  Fe z_40_0 = fe_mul(t, z_20_0);          // 2^40 - 2^0
  t = z_40_0;
  for (int i = 0; i < 10; ++i) t = fe_sq(t);
  Fe z_50_0 = fe_mul(t, z_10_0);          // 2^50 - 2^0
  t = z_50_0;
  for (int i = 0; i < 50; ++i) t = fe_sq(t);
  Fe z_100_0 = fe_mul(t, z_50_0);         // 2^100 - 2^0
  t = z_100_0;
  for (int i = 0; i < 100; ++i) t = fe_sq(t);
  Fe z_200_0 = fe_mul(t, z_100_0);        // 2^200 - 2^0
  t = z_200_0;
  for (int i = 0; i < 50; ++i) t = fe_sq(t);
  Fe z_250_0 = fe_mul(t, z_50_0);         // 2^250 - 2^0
  t = z_250_0;
  for (int i = 0; i < 5; ++i) t = fe_sq(t);
  return fe_mul(t, z11);                  // 2^255 - 21 = p - 2
}

Fe fe_from_bytes(const std::uint8_t in[32]) {
  auto load64 = [&](int off) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | in[off + i];
    return v;
  };
  auto load_partial = [&](int off, int n) {
    std::uint64_t v = 0;
    for (int i = n - 1; i >= 0; --i) v = (v << 8) | in[off + i];
    return v;
  };
  Fe r;
  r.v[0] = load64(0) & kMask51;
  r.v[1] = (load64(6) >> 3) & kMask51;
  r.v[2] = (load64(12) >> 6) & kMask51;
  r.v[3] = (load64(19) >> 1) & kMask51;
  r.v[4] = (load_partial(24, 8) >> 12) & kMask51;
  return r;
}

void fe_to_bytes(std::uint8_t out[32], const Fe& a) {
  // Fully reduce mod p.
  Fe r = fe_carry(a);
  // r < 2^255 + small; subtract p if needed (constant-time not required).
  auto geq_p = [](const Fe& x) {
    return x.v[0] >= 0x7ffffffffffedULL && x.v[1] == kMask51 &&
           x.v[2] == kMask51 && x.v[3] == kMask51 && x.v[4] == kMask51;
  };
  // Add 19 then mask to fold values in [p, 2^255) down; simpler: loop.
  for (int iter = 0; iter < 2 && geq_p(r); ++iter) {
    r.v[0] -= 0x7ffffffffffedULL;
    r.v[1] = 0;
    r.v[2] = 0;
    r.v[3] = 0;
    r.v[4] = 0;
  }
  std::uint64_t packed[4];
  packed[0] = r.v[0] | (r.v[1] << 51);
  packed[1] = (r.v[1] >> 13) | (r.v[2] << 38);
  packed[2] = (r.v[2] >> 26) | (r.v[3] << 25);
  packed[3] = (r.v[3] >> 39) | (r.v[4] << 12);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 8; ++j)
      out[8 * i + j] = static_cast<std::uint8_t>(packed[i] >> (8 * j));
}

void cswap(std::uint64_t swap, Fe& a, Fe& b) {
  const std::uint64_t mask = 0 - swap;  // 0 or all-ones
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t x = mask & (a.v[i] ^ b.v[i]);
    a.v[i] ^= x;
    b.v[i] ^= x;
  }
}

}  // namespace

X25519Key x25519(const X25519Key& scalar, const X25519Key& point) {
  std::uint8_t e[32];
  std::memcpy(e, scalar.data(), 32);
  e[0] &= 248;
  e[31] &= 127;
  e[31] |= 64;

  std::uint8_t pt[32];
  std::memcpy(pt, point.data(), 32);
  pt[31] &= 127;  // mask the high bit per RFC 7748

  const Fe x1 = fe_from_bytes(pt);
  Fe x2 = fe_one(), z2 = fe_zero();
  Fe x3 = x1, z3 = fe_one();
  std::uint64_t swap = 0;

  for (int t = 254; t >= 0; --t) {
    const std::uint64_t k_t = (e[t >> 3] >> (t & 7)) & 1;
    swap ^= k_t;
    cswap(swap, x2, x3);
    cswap(swap, z2, z3);
    swap = k_t;

    const Fe a = fe_carry(fe_add(x2, z2));
    const Fe aa = fe_sq(a);
    const Fe b = fe_carry(fe_sub(x2, z2));
    const Fe bb = fe_sq(b);
    const Fe e_ = fe_carry(fe_sub(aa, bb));
    const Fe c = fe_carry(fe_add(x3, z3));
    const Fe d = fe_carry(fe_sub(x3, z3));
    const Fe da = fe_mul(d, a);
    const Fe cb = fe_mul(c, b);
    x3 = fe_sq(fe_carry(fe_add(da, cb)));
    z3 = fe_mul(x1, fe_sq(fe_carry(fe_sub(da, cb))));
    x2 = fe_mul(aa, bb);
    const Fe a24e = fe_mul_small(e_, 121665);
    z2 = fe_mul(e_, fe_carry(fe_add(aa, a24e)));
  }
  cswap(swap, x2, x3);
  cswap(swap, z2, z3);

  const Fe out = fe_mul(x2, fe_invert(z2));
  X25519Key result;
  fe_to_bytes(result.data(), out);
  return result;
}

X25519Key x25519_base(const X25519Key& scalar) {
  X25519Key base{};
  base[0] = 9;
  return x25519(scalar, base);
}

}  // namespace ting::crypto
