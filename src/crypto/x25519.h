// X25519 Diffie–Hellman scalar multiplication over Curve25519, implemented
// from scratch (5×51-bit limbs, Montgomery ladder), used by the ntor-style
// circuit handshake. The properties the handshake depends on — ladder
// determinism and DH commutativity — are property-tested in
// tests/crypto_test.cpp over many random keypairs.
#pragma once

#include <array>
#include <cstdint>

namespace ting::crypto {

using X25519Key = std::array<std::uint8_t, 32>;

/// Scalar multiplication: out = scalar * point (u-coordinate only).
/// The scalar is clamped per the X25519 convention.
X25519Key x25519(const X25519Key& scalar, const X25519Key& point);

/// Scalar multiplication by the base point u = 9 (public key derivation).
X25519Key x25519_base(const X25519Key& scalar);

}  // namespace ting::crypto
