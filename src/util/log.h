// Minimal leveled logger. Quiet by default so benches produce clean series;
// tests and examples can raise the level for debugging.
#pragma once

#include <sstream>
#include <string>

namespace ting {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

}  // namespace ting

#define TING_LOG(level, expr)                                     \
  do {                                                            \
    if (static_cast<int>(level) >= static_cast<int>(::ting::log_level())) { \
      std::ostringstream ting_log_os_;                            \
      ting_log_os_ << expr;                                       \
      ::ting::detail::log_emit(level, ting_log_os_.str());        \
    }                                                             \
  } while (0)

#define TING_DEBUG(expr) TING_LOG(::ting::LogLevel::kDebug, expr)
#define TING_INFO(expr) TING_LOG(::ting::LogLevel::kInfo, expr)
#define TING_WARN(expr) TING_LOG(::ting::LogLevel::kWarn, expr)
#define TING_ERROR(expr) TING_LOG(::ting::LogLevel::kError, expr)
