// Virtual time used by the discrete-event simulator.
//
// All latencies in the library are carried as Duration (integer nanoseconds)
// so that event ordering is exact and runs are reproducible; helpers convert
// to/from floating-point milliseconds, the unit the paper reports in.
#pragma once

#include <compare>
#include <cstdint>
#include <cstdio>
#include <string>

namespace ting {

/// A span of virtual time. Integer nanoseconds; never wraps in practice
/// (2^63 ns ≈ 292 years).
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration nanos(std::int64_t n) { return Duration(n); }
  static constexpr Duration micros(std::int64_t u) { return Duration(u * 1000); }
  static constexpr Duration millis(std::int64_t m) { return Duration(m * 1'000'000); }
  static constexpr Duration seconds(std::int64_t s) { return Duration(s * 1'000'000'000); }
  /// From floating-point milliseconds (rounded to the nearest nanosecond).
  static constexpr Duration from_ms(double ms) {
    return Duration(static_cast<std::int64_t>(ms * 1e6 + (ms >= 0 ? 0.5 : -0.5)));
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const Duration&) const = default;
  constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  constexpr Duration operator*(std::int64_t k) const { return Duration(ns_ * k); }
  constexpr Duration operator/(std::int64_t k) const { return Duration(ns_ / k); }
  constexpr Duration operator-() const { return Duration(-ns_); }

  std::string str() const;  ///< e.g. "12.345ms"

 private:
  explicit constexpr Duration(std::int64_t n) : ns_(n) {}
  std::int64_t ns_ = 0;
};

/// An instant of virtual time (nanoseconds since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint from_ns(std::int64_t n) { return TimePoint(n); }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const TimePoint&) const = default;
  constexpr TimePoint operator+(Duration d) const { return TimePoint(ns_ + d.ns()); }
  constexpr TimePoint operator-(Duration d) const { return TimePoint(ns_ - d.ns()); }
  constexpr Duration operator-(TimePoint o) const { return Duration::nanos(ns_ - o.ns_); }
  constexpr TimePoint& operator+=(Duration d) { ns_ += d.ns(); return *this; }

 private:
  explicit constexpr TimePoint(std::int64_t n) : ns_(n) {}
  std::int64_t ns_ = 0;
};

inline std::string Duration::str() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms", ms());
  return buf;
}

}  // namespace ting
