// Lightweight contract checking used across the library.
//
// TING_CHECK is always on (it guards protocol and API invariants whose
// violation would otherwise corrupt a simulation silently); TING_DCHECK
// compiles out in NDEBUG builds and is used on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ting {

/// Thrown when a TING_CHECK contract fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace ting

#define TING_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr)) ::ting::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define TING_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream ting_check_os_;                              \
      ting_check_os_ << msg;                                          \
      ::ting::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                   ting_check_os_.str());             \
    }                                                                 \
  } while (0)

#ifdef NDEBUG
#define TING_DCHECK(expr) ((void)0)
#else
#define TING_DCHECK(expr) TING_CHECK(expr)
#endif
