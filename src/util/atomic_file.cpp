#include "util/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/assert.h"

namespace ting {

namespace {

std::string dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// write(2) the whole buffer, retrying short writes and EINTR.
bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void atomic_write_file(const std::string& path, const std::string& content) {
  std::string tmp = path + ".tmp.XXXXXX";
  const int fd = ::mkstemp(tmp.data());
  TING_CHECK_MSG(fd >= 0, "atomic write: cannot create temp file for "
                              << path << ": " << std::strerror(errno));

  // From here on, any failure must unlink the temp file before throwing.
  const auto fail = [&](const char* stage) {
    const int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    TING_CHECK_MSG(false, "atomic write: " << stage << " failed for " << path
                                           << ": " << std::strerror(saved));
  };

  if (!write_all(fd, content.data(), content.size())) fail("write");
  if (::fsync(fd) != 0) fail("fsync");
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    TING_CHECK_MSG(false, "atomic write: close failed for " << path << ": "
                                                            << std::strerror(errno));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    TING_CHECK_MSG(false, "atomic write: rename to " << path << " failed: "
                                                     << std::strerror(saved));
  }

  // Make the rename itself durable: fsync the directory entry. Some
  // filesystems refuse O_RDONLY fsync on directories; treat open failure as
  // non-fatal (the data file itself is already synced) but surface fsync
  // errors, which indicate real I/O trouble.
  const int dfd = ::open(dir_of(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    const bool ok = ::fsync(dfd) == 0;
    const int saved = errno;
    ::close(dfd);
    TING_CHECK_MSG(ok || saved == EINVAL || saved == EBADF,
                   "atomic write: directory fsync failed for "
                       << path << ": " << std::strerror(saved));
  }
}

}  // namespace ting
