#include "util/ip.h"

#include <cstdio>

#include "util/bytes.h"

namespace ting {

std::string IpAddr::str() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (v_ >> 24) & 0xff,
                (v_ >> 16) & 0xff, (v_ >> 8) & 0xff, v_ & 0xff);
  return buf;
}

std::optional<IpAddr> IpAddr::parse(const std::string& s) {
  const auto parts = split(s, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t v = 0;
  for (const auto& p : parts) {
    if (p.empty() || p.size() > 3) return std::nullopt;
    int octet = 0;
    for (char c : p) {
      if (c < '0' || c > '9') return std::nullopt;
      octet = octet * 10 + (c - '0');
    }
    if (octet > 255) return std::nullopt;
    v = (v << 8) | static_cast<std::uint32_t>(octet);
  }
  return IpAddr(v);
}

std::string Endpoint::str() const {
  return ip.str() + ":" + std::to_string(port);
}

}  // namespace ting
