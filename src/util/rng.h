// Deterministic random number generation.
//
// Every stochastic component in the library draws from an explicitly seeded
// Rng so that simulations, tests, and benches reproduce bit-for-bit. The
// generator is xoshiro256** seeded through splitmix64, which is fast, has a
// 256-bit state, and passes BigCrush.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.h"

namespace ting {

/// Splitmix64 step; used for seeding and for cheap stateless hashing of ids
/// into per-entity seeds.
std::uint64_t splitmix64(std::uint64_t& state);

/// Hash a 64-bit value to a well-mixed 64-bit value (stateless).
std::uint64_t mix64(std::uint64_t x);

/// xoshiro256** pseudo-random generator with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xfeedface);

  /// Derive an independent generator; `stream` distinguishes siblings.
  Rng fork(std::uint64_t stream) const;

  std::uint64_t next_u64();
  /// Uniform in [0, n). Requires n > 0.
  std::uint64_t next_below(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Uniform real in [0, 1).
  double uniform();
  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);
  /// Bernoulli trial.
  bool chance(double p);
  /// Exponential with the given mean (> 0).
  double exponential(double mean);
  /// Standard normal via Box–Muller (no caching; cheap enough).
  double normal(double mean = 0.0, double stddev = 1.0);
  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed delays).
  double pareto(double xm, double alpha);
  /// Log-normal parameterised by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Pick an index according to non-negative weights summing to > 0.
  std::size_t weighted_index(const std::vector<double>& weights);

 private:
  std::uint64_t s_[4];
};

}  // namespace ting
