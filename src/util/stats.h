// Descriptive statistics used throughout the evaluation: quantiles, CDFs,
// rank correlation, least-squares fits — the exact quantities the paper's
// figures report.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ting {

/// Five-number-plus summary of a sample.
struct Summary {
  std::size_t n = 0;
  double min = 0, max = 0;
  double mean = 0, stddev = 0;
  double p25 = 0, median = 0, p75 = 0;

  /// Coefficient of variation (stddev / mean); the paper's Fig 9 metric.
  /// Returns 0 for an all-zero sample.
  double cv() const;
  std::string str() const;
};

/// Compute a Summary. Returns a default (zeroed) Summary for empty input.
Summary summarize(const std::vector<double>& xs);

/// Quantile with linear interpolation between closest ranks; q in [0, 1].
/// Requires non-empty input.
double quantile(std::vector<double> xs, double q);
/// Quantile of already-sorted data (no copy).
double quantile_sorted(const std::vector<double>& sorted, double q);

double mean_of(const std::vector<double>& xs);
double stddev_of(const std::vector<double>& xs);  ///< population stddev
double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);

/// An empirical CDF: sorted values with evaluation and printing helpers.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> values);

  std::size_t size() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }
  /// Fraction of samples <= x.
  double fraction_at_or_below(double x) const;
  /// Value at cumulative fraction q (inverse CDF with interpolation).
  double value_at(double q) const;
  const std::vector<double>& sorted() const { return sorted_; }

  /// Rows "value<TAB>cum_fraction" at each distinct sample point — the
  /// series a plotting tool would consume to redraw the paper's CDF figures.
  std::string gnuplot_rows() const;
  /// Same, downsampled to at most `max_rows` evenly spaced points.
  std::string gnuplot_rows(std::size_t max_rows) const;

 private:
  std::vector<double> sorted_;
};

/// Pearson product-moment correlation. Requires xs.size()==ys.size() >= 2.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/// Spearman rank-order correlation (average ranks for ties) — the paper
/// reports 0.997 between Ting and ground truth.
double spearman(const std::vector<double>& xs, const std::vector<double>& ys);

/// y = slope*x + intercept least-squares fit.
struct LinearFit {
  double slope = 0;
  double intercept = 0;
  double r2 = 0;
  double at(double x) const { return slope * x + intercept; }
};
LinearFit linear_fit(const std::vector<double>& xs,
                     const std::vector<double>& ys);

/// Fixed-width histogram over [0, bin_width * nbins); values past the top
/// clamp into the last bin, negative values land in a separate underflow
/// bin rather than silently padding bin 0. Used for Fig 16/17's 50 ms RTT
/// bins.
class Histogram {
 public:
  Histogram(double bin_width, std::size_t nbins);
  void add(double x, double weight = 1.0);
  std::size_t nbins() const { return counts_.size(); }
  double bin_width() const { return bin_width_; }
  double bin_center(std::size_t i) const { return (i + 0.5) * bin_width_; }
  double count(std::size_t i) const { return counts_.at(i); }
  double underflow() const { return underflow_; }
  /// Sum over all bins, underflow included.
  double total() const;

 private:
  double bin_width_;
  double underflow_ = 0;
  std::vector<double> counts_;
};

/// Average ranks (1-based) with ties sharing the mean rank.
std::vector<double> ranks_of(const std::vector<double>& xs);

/// Kolmogorov–Smirnov distance between two empirical CDFs: the maximum
/// absolute gap between them over all sample points of both.
double ks_distance(const Cdf& a, const Cdf& b);

}  // namespace ting
