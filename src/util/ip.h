// IPv4 addresses and prefixes. Used by the simulator's host addressing, the
// directory's descriptors/exit policies, and the coverage analysis (§5.3
// counts unique /24s).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>

namespace ting {

/// An IPv4 address (host byte order internally).
class IpAddr {
 public:
  constexpr IpAddr() = default;
  explicit constexpr IpAddr(std::uint32_t v) : v_(v) {}
  constexpr IpAddr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                   std::uint8_t d)
      : v_(static_cast<std::uint32_t>(a) << 24 |
           static_cast<std::uint32_t>(b) << 16 |
           static_cast<std::uint32_t>(c) << 8 | d) {}

  constexpr std::uint32_t value() const { return v_; }
  constexpr auto operator<=>(const IpAddr&) const = default;

  /// The enclosing /24 prefix value (upper 24 bits).
  constexpr std::uint32_t slash24() const { return v_ >> 8; }
  /// The enclosing /16 prefix value (upper 16 bits).
  constexpr std::uint32_t slash16() const { return v_ >> 16; }
  /// Upper n bits, for arbitrary prefix comparisons (0 < n <= 32).
  constexpr std::uint32_t prefix_bits(int n) const { return v_ >> (32 - n); }

  std::string str() const;
  /// Parse dotted-quad; std::nullopt on malformed input.
  static std::optional<IpAddr> parse(const std::string& s);

 private:
  std::uint32_t v_ = 0;
};

/// host:port endpoint for the simulated transport.
struct Endpoint {
  IpAddr ip;
  std::uint16_t port = 0;
  auto operator<=>(const Endpoint&) const = default;
  std::string str() const;
};

}  // namespace ting

// Hash support so the simulator's hot-path tables (host lookup, listener
// and connection maps) can be unordered containers.
template <>
struct std::hash<ting::IpAddr> {
  std::size_t operator()(const ting::IpAddr& ip) const noexcept {
    // Fibonacci scramble: consecutive allocator-assigned addresses would
    // otherwise collide into neighbouring buckets.
    return static_cast<std::size_t>(ip.value()) * 0x9e3779b97f4a7c15ULL;
  }
};

template <>
struct std::hash<ting::Endpoint> {
  std::size_t operator()(const ting::Endpoint& ep) const noexcept {
    const std::uint64_t v =
        (static_cast<std::uint64_t>(ep.ip.value()) << 16) | ep.port;
    return static_cast<std::size_t>(v * 0x9e3779b97f4a7c15ULL);
  }
};
