// Crash-safe file replacement: write-temp + fsync + rename, so a reader
// (or a process resuming after a crash) only ever sees either the old
// complete file or the new complete file — never a torn write.
//
// Every persistence path in the repo (RTT matrices, half-circuit caches,
// scan checkpoints) goes through atomic_write_file; a plain ofstream write
// can be truncated by disk-full or process death and silently lose the
// dataset it took a multi-day scan to build.
#pragma once

#include <string>

namespace ting {

/// Atomically replace `path` with `content`:
///
///   1. write `content` to a unique temp file in the same directory,
///   2. fsync the temp file (data durable before the name flips),
///   3. rename(2) it over `path` (atomic on POSIX),
///   4. fsync the containing directory (the rename itself durable).
///
/// Throws CheckError (with errno detail) on any failure; the temp file is
/// unlinked on the error path so failed writes leave no debris.
void atomic_write_file(const std::string& path, const std::string& content);

}  // namespace ting
