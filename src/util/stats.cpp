#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "util/assert.h"

namespace ting {

double Summary::cv() const {
  if (mean == 0) return 0;
  return stddev / mean;
}

std::string Summary::str() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%zu min=%.3f p25=%.3f med=%.3f p75=%.3f max=%.3f "
                "mean=%.3f sd=%.3f",
                n, min, p25, median, p75, max, mean, stddev);
  return buf;
}

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  if (xs.empty()) return s;
  std::vector<double> v = xs;
  std::sort(v.begin(), v.end());
  s.n = v.size();
  s.min = v.front();
  s.max = v.back();
  s.mean = mean_of(v);
  s.stddev = stddev_of(v);
  s.p25 = quantile_sorted(v, 0.25);
  s.median = quantile_sorted(v, 0.5);
  s.p75 = quantile_sorted(v, 0.75);
  return s;
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  TING_CHECK(!sorted.empty());
  TING_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  return quantile_sorted(xs, q);
}

double mean_of(const std::vector<double>& xs) {
  TING_CHECK(!xs.empty());
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stddev_of(const std::vector<double>& xs) {
  TING_CHECK(!xs.empty());
  const double m = mean_of(xs);
  double acc = 0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double min_of(const std::vector<double>& xs) {
  TING_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  TING_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

Cdf::Cdf(std::vector<double> values) : sorted_(std::move(values)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::fraction_at_or_below(double x) const {
  if (sorted_.empty()) return 0;
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Cdf::value_at(double q) const {
  TING_CHECK(!sorted_.empty());
  return quantile_sorted(sorted_, q);
}

std::string Cdf::gnuplot_rows() const { return gnuplot_rows(sorted_.size()); }

std::string Cdf::gnuplot_rows(std::size_t max_rows) const {
  std::ostringstream os;
  if (sorted_.empty() || max_rows == 0) return os.str();
  const std::size_t n = sorted_.size();
  const std::size_t rows = std::min(max_rows, n);
  for (std::size_t r = 0; r < rows; ++r) {
    // Pick evenly spaced sample indices, always including the last.
    const std::size_t i = (rows == 1) ? n - 1 : r * (n - 1) / (rows - 1);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g\t%.6f\n", sorted_[i],
                  static_cast<double>(i + 1) / static_cast<double>(n));
    os << buf;
  }
  return os.str();
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  TING_CHECK(xs.size() == ys.size());
  TING_CHECK(xs.size() >= 2);
  const double mx = mean_of(xs), my = mean_of(ys);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  TING_CHECK(sxx > 0 && syy > 0);
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks_of(const std::vector<double>& xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

double spearman(const std::vector<double>& xs, const std::vector<double>& ys) {
  return pearson(ranks_of(xs), ranks_of(ys));
}

LinearFit linear_fit(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  TING_CHECK(xs.size() == ys.size());
  TING_CHECK(xs.size() >= 2);
  const double mx = mean_of(xs), my = mean_of(ys);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  TING_CHECK(sxx > 0);
  LinearFit f;
  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;
  f.r2 = (syy > 0) ? (sxy * sxy) / (sxx * syy) : 1.0;
  return f;
}

double ks_distance(const Cdf& a, const Cdf& b) {
  TING_CHECK(!a.empty() && !b.empty());
  double max_gap = 0;
  for (const double x : a.sorted())
    max_gap = std::max(max_gap, std::abs(a.fraction_at_or_below(x) -
                                         b.fraction_at_or_below(x)));
  for (const double x : b.sorted())
    max_gap = std::max(max_gap, std::abs(a.fraction_at_or_below(x) -
                                         b.fraction_at_or_below(x)));
  return max_gap;
}

Histogram::Histogram(double bin_width, std::size_t nbins)
    : bin_width_(bin_width), counts_(nbins, 0.0) {
  TING_CHECK(bin_width > 0 && nbins > 0);
}

void Histogram::add(double x, double weight) {
  if (x < 0) {
    underflow_ += weight;
    return;
  }
  std::size_t i = static_cast<std::size_t>(x / bin_width_);
  if (i >= counts_.size()) i = counts_.size() - 1;
  counts_[i] += weight;
}

double Histogram::total() const {
  return underflow_ +
         std::accumulate(counts_.begin(), counts_.end(), 0.0);
}

}  // namespace ting
