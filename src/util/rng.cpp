#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace ting {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::fork(std::uint64_t stream) const {
  // Combine current state with the stream id; the copy does not advance us.
  std::uint64_t seed = s_[0] ^ mix64(stream + 0x1234567);
  return Rng(seed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  TING_CHECK(n > 0);
  // Lemire's nearly-divisionless bounded sampling with rejection.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    std::uint64_t t = -n % n;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  TING_CHECK(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  next_below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

bool Rng::chance(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  TING_CHECK(mean > 0);
  double u;
  do { u = uniform(); } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do { u1 = uniform(); } while (u1 <= 0.0);
  const double u2 = uniform();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

double Rng::pareto(double xm, double alpha) {
  TING_CHECK(xm > 0 && alpha > 0);
  double u;
  do { u = uniform(); } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  TING_CHECK(k <= n);
  // Partial Fisher–Yates over an index vector; O(n) setup, fine at our scale.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(next_below(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    TING_CHECK(w >= 0);
    total += w;
  }
  TING_CHECK(total > 0);
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (r < weights[i]) return i;
    r -= weights[i];
  }
  return weights.size() - 1;  // numeric edge: land on the last positive weight
}

}  // namespace ting
