#include "util/bytes.h"

#include <algorithm>
#include <cctype>

#include "util/assert.h"

namespace ting {

namespace pool {

namespace {

// Only cell-sized buffers are worth parking; anything much larger would
// pin memory, anything smaller predates the cell codec and is cheap anyway.
constexpr std::size_t kMinPooledCapacity = 256;
constexpr std::size_t kMaxPooledCapacity = 4096;
constexpr std::size_t kMaxFreeBuffers = 256;

bool g_enabled = true;  // flipped only by benches, before any threads spawn

thread_local std::vector<Bytes> t_free;

}  // namespace

Bytes acquire(std::size_t size) {
  if (g_enabled && !t_free.empty() && size <= kMaxPooledCapacity) {
    Bytes b = std::move(t_free.back());
    t_free.pop_back();
    b.resize(size);
    return b;
  }
  return Bytes(size);
}

void recycle(Bytes&& b) {
  if (!g_enabled || b.capacity() < kMinPooledCapacity ||
      b.capacity() > kMaxPooledCapacity || t_free.size() >= kMaxFreeBuffers) {
    Bytes drop = std::move(b);  // free here
    return;
  }
  t_free.push_back(std::move(b));
}

void set_enabled(bool enabled) {
  g_enabled = enabled;
  if (!enabled) t_free.clear();
}

bool enabled() { return g_enabled; }

std::size_t free_count() { return t_free.size(); }

}  // namespace pool

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8)
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8)
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void ByteWriter::raw(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::raw(const std::string& s) {
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::pad_to(std::size_t size) {
  TING_CHECK(buf_.size() <= size);
  buf_.resize(size, 0);
}

void ByteReader::need(std::size_t n) const {
  TING_CHECK_MSG(remaining() >= n, "ByteReader: short read, need "
                                       << n << " have " << remaining());
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 8;
  return v;
}

Bytes ByteReader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

std::string ByteReader::str(std::size_t n) {
  need(n);
  std::string out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

void ByteReader::skip(std::size_t n) {
  need(n);
  pos_ += n;
}

std::string to_hex(std::span<const std::uint8_t> data) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

namespace {
int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Bytes from_hex(const std::string& hex) {
  TING_CHECK_MSG(hex.size() % 2 == 0, "odd-length hex string");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_val(hex[i]), lo = hex_val(hex[i + 1]);
    TING_CHECK_MSG(hi >= 0 && lo >= 0, "invalid hex character");
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(delim, start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         std::equal(prefix.begin(), prefix.end(), s.begin());
}

std::string to_upper(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

std::string to_lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace ting
