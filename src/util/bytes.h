// Byte-buffer serialization used by the cell codec, descriptors, and the
// control protocol. Network byte order (big-endian) throughout, matching
// Tor's wire formats.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ting {

using Bytes = std::vector<std::uint8_t>;

// ---- cell-buffer pool -------------------------------------------------------
//
// The simulated data plane allocates one ~512-byte Bytes per cell per hop
// (encode on send, decode on receive). A per-thread free list recycles those
// buffers so a long scan's inner loop stops hitting the allocator. The pool
// is thread_local, so sharded scan workers each get their own — no locking,
// no cross-thread traffic.
namespace pool {

/// A buffer of exactly `size` bytes (contents unspecified), drawn from the
/// calling thread's free list when one is available.
Bytes acquire(std::size_t size);

/// Return a buffer to the calling thread's free list. The caller must not
/// touch `b` afterwards. Tiny or oversized buffers and overflow beyond the
/// pool cap are simply freed.
void recycle(Bytes&& b);

/// Toggle pooling (default on). When disabled, acquire allocates fresh and
/// recycle frees — the baseline arm of the pooled-vs-unpooled benchmark.
void set_enabled(bool enabled);
bool enabled();

/// Buffers currently parked in this thread's free list (introspection).
std::size_t free_count();

}  // namespace pool

/// Append-only big-endian writer.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void raw(std::span<const std::uint8_t> data);
  void raw(const std::string& s);
  /// Pad with zero bytes up to `size`; requires current size <= size.
  void pad_to(std::size_t size);

  std::size_t size() const { return buf_.size(); }
  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Bounds-checked big-endian reader. Throws CheckError past the end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  Bytes raw(std::size_t n);
  std::string str(std::size_t n);
  void skip(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool empty() const { return remaining() == 0; }
  std::size_t pos() const { return pos_; }

 private:
  void need(std::size_t n) const;
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Lowercase hex encoding of arbitrary bytes.
std::string to_hex(std::span<const std::uint8_t> data);
/// Decode hex (either case). Throws CheckError on bad input.
Bytes from_hex(const std::string& hex);

/// UTF-8-agnostic helpers used by the text protocols.
std::vector<std::string> split(const std::string& s, char delim);
std::string trim(const std::string& s);
bool starts_with(const std::string& s, const std::string& prefix);
std::string to_upper(const std::string& s);
std::string to_lower(const std::string& s);

}  // namespace ting
