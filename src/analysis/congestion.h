// Murdoch–Danezis congestion probing.
//
// §5.1 *assumes* "the existence of a technique such as that described by
// Murdoch and Danezis to brute-force probe whether a given Tor node is on a
// circuit"; this module implements that technique against the simulated
// network, closing the loop: the attacker builds its own circuit through a
// candidate relay, alternates burst (ON) and idle (OFF) phases, and watches
// whether the victim stream's latency rises during ON phases. Relays'
// queueing delay grows with their recent cell rate (RelayConfig::
// load_factor), which is the physical side channel the probe exploits.
//
// This is expensive by design — the paper's §5.1 point is precisely that
// each such probe is costly, which is why Ting's RTT-based candidate
// pruning (Algorithm 1) matters.
#pragma once

#include <vector>

#include "ting/measurement_host.h"
#include "tor/onion_proxy.h"

namespace ting::analysis {

struct CongestionProbeConfig {
  int rounds = 8;               ///< ON/OFF pairs
  Duration phase = Duration::millis(800);
  Duration burst_spacing = Duration::millis(4);  ///< flood pace during ON
  int victim_samples_per_phase = 6;
  /// Decision threshold on the normalized latency shift (Cohen's d).
  double effect_threshold = 1.0;
};

struct CongestionVerdict {
  bool ok = false;         ///< probe infrastructure worked
  std::string error;
  bool on_path = false;    ///< decision
  double effect_size = 0;  ///< (mean_on − mean_off) / pooled stddev
  double mean_on_ms = 0, mean_off_ms = 0;
  std::size_t flood_cells = 0;  ///< attack cost, in cells sent
};

/// Probe whether `candidate` is on the victim's circuit. The victim is an
/// already-connected echo stream (its RTT can be sampled); the attacker
/// uses its own measurement host to build a (w, candidate, z) circuit and
/// flood it. Blocking: pumps the shared event loop.
CongestionVerdict congestion_probe(
    meas::MeasurementHost& attacker,
    const tor::OnionProxy::StreamPtr& victim_stream,
    const dir::Fingerprint& candidate,
    const CongestionProbeConfig& config = {});

}  // namespace ting::analysis
