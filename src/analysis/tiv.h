// Triangle-inequality violations in the Tor latency graph (§5.2.1): pairs
// (s, d) where some relay r gives R(s,r) + R(r,d) < R(s,d). The paper finds
// a TIV for 69% of pairs in the 50-node dataset, with a median best saving
// of 7.5% and a top-decile saving of 28%+.
#pragma once

#include <optional>
#include <vector>

#include "dir/fingerprint.h"
#include "ting/rtt_matrix.h"

namespace ting::analysis {

struct TivFinding {
  dir::Fingerprint a, b;      ///< the endpoint pair
  dir::Fingerprint detour;    ///< best (lowest-detour-RTT) relay r
  double direct_ms = 0;       ///< R(a, b)
  double detour_ms = 0;       ///< R(a, r) + R(r, b)
  /// Fractional saving, (direct − detour) / direct, in (0, 1).
  double savings() const { return (direct_ms - detour_ms) / direct_ms; }
};

/// The best TIV for (a, b) over all candidate relays in the matrix, or
/// nullopt if no relay beats the direct path. One O(n) scan — fine for a
/// single pair; anything iterating pairs should go through tiv_summary
/// (or serve::DetourIndex directly) instead.
std::optional<TivFinding> best_tiv(const meas::RttMatrix& matrix,
                                   const dir::Fingerprint& a,
                                   const dir::Fingerprint& b);

/// Everything the §5.2.1 analysis wants from one O(n³) pass (via
/// serve::DetourIndex): the per-pair findings and the aggregate fraction.
/// Historically find_all_tivs and fraction_pairs_with_tiv each re-ran the
/// full scan; now both are views of this.
struct TivSummary {
  /// Best TIV per pair that has one, ordered by (a, b) fingerprint.
  std::vector<TivFinding> findings;
  /// Pairs with a measured direct RTT (the denominator — on a sparse
  /// matrix this is less than C(n, 2)).
  std::size_t measured_pairs = 0;
  /// findings.size() / measured_pairs (0 when nothing is measured).
  double fraction = 0;
};
TivSummary tiv_summary(const meas::RttMatrix& matrix);

/// Best TIVs for every pair that has one (tiv_summary's findings).
std::vector<TivFinding> find_all_tivs(const meas::RttMatrix& matrix);

/// Fraction of measured pairs with at least one TIV (the paper's 69%
/// statistic; tiv_summary's fraction).
double fraction_pairs_with_tiv(const meas::RttMatrix& matrix);

}  // namespace ting::analysis
