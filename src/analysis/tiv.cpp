#include "analysis/tiv.h"

namespace ting::analysis {

std::optional<TivFinding> best_tiv(const meas::RttMatrix& matrix,
                                   const dir::Fingerprint& a,
                                   const dir::Fingerprint& b) {
  const auto direct = matrix.rtt(a, b);
  if (!direct.has_value()) return std::nullopt;
  std::optional<TivFinding> best;
  for (const dir::Fingerprint& r : matrix.nodes()) {
    if (r == a || r == b) continue;
    const auto leg1 = matrix.rtt(a, r);
    const auto leg2 = matrix.rtt(r, b);
    if (!leg1.has_value() || !leg2.has_value()) continue;
    const double detour = *leg1 + *leg2;
    if (detour >= *direct) continue;
    if (!best.has_value() || detour < best->detour_ms) {
      TivFinding f;
      f.a = a;
      f.b = b;
      f.detour = r;
      f.direct_ms = *direct;
      f.detour_ms = detour;
      best = f;
    }
  }
  return best;
}

std::vector<TivFinding> find_all_tivs(const meas::RttMatrix& matrix) {
  std::vector<TivFinding> out;
  const auto nodes = matrix.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (auto f = best_tiv(matrix, nodes[i], nodes[j]); f.has_value())
        out.push_back(*f);
    }
  }
  return out;
}

double fraction_pairs_with_tiv(const meas::RttMatrix& matrix) {
  const auto nodes = matrix.nodes();
  std::size_t pairs = 0, with_tiv = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (!matrix.contains(nodes[i], nodes[j])) continue;
      ++pairs;
      if (best_tiv(matrix, nodes[i], nodes[j]).has_value()) ++with_tiv;
    }
  }
  if (pairs == 0) return 0;
  return static_cast<double>(with_tiv) / static_cast<double>(pairs);
}

}  // namespace ting::analysis
