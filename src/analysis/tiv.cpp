#include "analysis/tiv.h"

#include "serve/detour_index.h"
#include "serve/snapshot.h"

namespace ting::analysis {

std::optional<TivFinding> best_tiv(const meas::RttMatrix& matrix,
                                   const dir::Fingerprint& a,
                                   const dir::Fingerprint& b) {
  const auto direct = matrix.rtt(a, b);
  if (!direct.has_value()) return std::nullopt;
  std::optional<TivFinding> best;
  for (const dir::Fingerprint& r : matrix.nodes()) {
    if (r == a || r == b) continue;
    const auto leg1 = matrix.rtt(a, r);
    const auto leg2 = matrix.rtt(r, b);
    if (!leg1.has_value() || !leg2.has_value()) continue;
    const double detour = *leg1 + *leg2;
    if (detour >= *direct) continue;
    if (!best.has_value() || detour < best->detour_ms) {
      TivFinding f;
      f.a = a;
      f.b = b;
      f.detour = r;
      f.direct_ms = *direct;
      f.detour_ms = detour;
      best = f;
    }
  }
  return best;
}

TivSummary tiv_summary(const meas::RttMatrix& matrix) {
  // One snapshot build (O(n²)) + one DetourIndex build (O(n³)) replaces the
  // historical per-pair best_tiv scans — and the fraction comes from the
  // same pass as the findings instead of a second full scan. Node order is
  // identical (both sides sort fingerprints) and the index breaks detour
  // ties toward the lowest relay index, matching best_tiv's first-wins
  // iteration, so the findings are bit-for-bit what the old loop produced.
  TivSummary out;
  const auto snapshot = serve::MatrixSnapshot::build(matrix);
  const auto detours = serve::DetourIndex::build(snapshot);
  const std::size_t n = snapshot.node_count();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const auto& d = detours.at(i, j);
      if (!d.tiv) continue;
      TivFinding f;
      f.a = snapshot.node(i);
      f.b = snapshot.node(j);
      f.detour = snapshot.node(static_cast<std::size_t>(d.via));
      f.direct_ms = snapshot.rtt_raw(i, j);
      f.detour_ms = d.detour_ms;
      out.findings.push_back(std::move(f));
    }
  }
  out.measured_pairs = detours.measured_pairs();
  out.fraction = detours.tiv_fraction();
  return out;
}

std::vector<TivFinding> find_all_tivs(const meas::RttMatrix& matrix) {
  return tiv_summary(matrix).findings;
}

double fraction_pairs_with_tiv(const meas::RttMatrix& matrix) {
  return tiv_summary(matrix).fraction;
}

}  // namespace ting::analysis
