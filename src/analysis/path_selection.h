// Latency-aware path selection (§5.2's constructive application, and the
// future-work direction §6 sketches): given an all-pairs RTT dataset, find
// circuits that are fast, or that sit in an "entropic" RTT band where many
// alternative circuits exist (so an attacker who learns the end-to-end RTT
// and length still faces a large candidate set — Fig 17's defence).
#pragma once

#include <optional>
#include <vector>

#include "analysis/circuits.h"
#include "dir/fingerprint.h"
#include "ting/rtt_matrix.h"
#include "util/rng.h"

namespace ting::analysis {

struct BandQuery {
  std::size_t length = 3;
  double rtt_lo_ms = 0;
  double rtt_hi_ms = 1e18;
  std::size_t want = 10;           ///< stop after this many hits
  std::size_t max_iterations = 20000;
};

/// Rejection-sample circuits whose end-to-end RTT lands in the band.
/// Returns up to `want` distinct circuits (may be fewer if the band is
/// sparse within the iteration budget).
std::vector<CircuitSample> find_circuits_in_band(
    const meas::RttMatrix& matrix, const std::vector<dir::Fingerprint>& nodes,
    const BandQuery& query, Rng& rng);

/// Local-search optimizer: start from random circuits of `length` and
/// improve by single-node swaps until no swap lowers the RTT; keep the best
/// across `restarts`. Finds circuits far faster than random selection would
/// (exploiting TIVs where they help). On a matrix too sparse for any
/// complete circuit the returned sample has an empty path.
CircuitSample optimize_low_rtt_circuit(const meas::RttMatrix& matrix,
                                       const std::vector<dir::Fingerprint>& nodes,
                                       std::size_t length, Rng& rng,
                                       int restarts = 8);

/// Estimated number of distinct circuits of `length` in the band, scaled to
/// the full C(n, length) population (the anonymity-set size of Fig 16/17).
/// Scaled by the number of *valid* samples drawn (incomplete paths on a
/// sparse matrix are skipped); nullopt when no valid sample could be drawn,
/// so there is no estimate to report.
std::optional<double> circuit_options_in_band(
    const meas::RttMatrix& matrix, const std::vector<dir::Fingerprint>& nodes,
    std::size_t length, double rtt_lo_ms, double rtt_hi_ms,
    std::size_t sample_count, Rng& rng);

/// The §5.2.2 defence: among lengths [3, max_length], pick the length whose
/// anonymity set within the band is largest. Returns nullopt if no length
/// has any circuit in the band.
struct BandRecommendation {
  std::size_t length = 0;
  double options = 0;  ///< scaled circuit count in the band
};
std::optional<BandRecommendation> recommend_length_for_band(
    const meas::RttMatrix& matrix, const std::vector<dir::Fingerprint>& nodes,
    double rtt_lo_ms, double rtt_hi_ms, std::size_t max_length,
    std::size_t sample_count, Rng& rng);

}  // namespace ting::analysis
