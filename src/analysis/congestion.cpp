#include "analysis/congestion.h"

#include <cmath>

#include "echo/echo.h"
#include "util/stats.h"

namespace ting::analysis {

namespace {

/// One blocking victim RTT sample (pumps the shared loop, so the attacker's
/// scheduled flood keeps running concurrently).
std::optional<double> sample_victim(simnet::EventLoop& loop,
                                    const tor::OnionProxy::StreamPtr& stream) {
  std::optional<std::optional<Duration>> rtt;
  echo::measure_stream_rtt(loop, stream,
                           [&rtt](std::optional<Duration> r) { rtt = r; },
                           Duration::seconds(10));
  loop.run_while_waiting_for([&rtt] { return rtt.has_value(); },
                             Duration::seconds(30));
  if (!rtt.has_value() || !rtt->has_value()) return std::nullopt;
  return (*rtt)->ms();
}

}  // namespace

CongestionVerdict congestion_probe(
    meas::MeasurementHost& attacker,
    const tor::OnionProxy::StreamPtr& victim_stream,
    const dir::Fingerprint& candidate, const CongestionProbeConfig& config) {
  CongestionVerdict verdict;
  simnet::EventLoop& loop = attacker.loop();

  // 1. The attacker's own circuit through the candidate: (w, candidate, z),
  //    with an echo stream it can flood.
  bool built = false, failed = false;
  tor::CircuitHandle circuit = 0;
  attacker.op().build_circuit(
      {attacker.w_fp(), candidate, attacker.z_fp()},
      [&](tor::CircuitHandle h) {
        built = true;
        circuit = h;
      },
      [&](const std::string&) { failed = true; });
  loop.run_while_waiting_for([&] { return built || failed; },
                             Duration::seconds(120));
  if (!built) {
    verdict.error = "attacker circuit through candidate failed";
    return verdict;
  }
  bool attack_connected = false, attack_failed = false;
  auto attack_stream = attacker.op().open_stream(
      circuit, attacker.echo_endpoint(), [&] { attack_connected = true; },
      [&](const std::string&) { attack_failed = true; });
  loop.run_while_waiting_for(
      [&] { return attack_connected || attack_failed; },
      Duration::seconds(120));
  if (!attack_connected) {
    verdict.error = "attacker stream failed";
    return verdict;
  }
  attack_stream->set_on_message([](Bytes) {});  // discard flood echoes

  // 2. Flood machinery: a self-rescheduling tick, gated by a flag.
  auto flooding = std::make_shared<bool>(false);
  auto alive = std::make_shared<bool>(true);
  auto flood_cells = std::make_shared<std::size_t>(0);
  auto tick = std::make_shared<std::function<void()>>();
  const Bytes payload(400, 0xfb);
  *tick = [&loop, flooding, alive, flood_cells, tick, attack_stream, payload,
           spacing = config.burst_spacing]() {
    if (!*alive) {
      *tick = {};
      return;
    }
    if (*flooding) {
      attack_stream->send(payload);
      ++*flood_cells;
    }
    loop.schedule(spacing, [tick]() {
      if (*tick) (*tick)();
    });
  };
  (*tick)();

  // 3. Alternate ON/OFF phases, sampling the victim in each.
  std::vector<double> on_samples, off_samples;
  for (int round = 0; round < config.rounds; ++round) {
    for (const bool on : {true, false}) {
      *flooding = on;
      // Let the phase's congestion (or decay) establish itself.
      loop.run_until(loop.now() + config.phase / 4);
      const TimePoint phase_end = loop.now() + config.phase;
      int taken = 0;
      while (taken < config.victim_samples_per_phase &&
             loop.now() < phase_end) {
        const auto ms = sample_victim(loop, victim_stream);
        if (ms.has_value()) {
          (on ? on_samples : off_samples).push_back(*ms);
          ++taken;
        }
      }
      loop.run_until(phase_end);
    }
  }
  *alive = false;
  *flooding = false;
  // Break the tick's self-reference now: the loop may never run again, in
  // which case the pending reschedule would never fire to clear it.
  *tick = {};
  attack_stream->close();
  attacker.op().close_circuit(circuit);

  if (on_samples.size() < 4 || off_samples.size() < 4) {
    verdict.error = "not enough victim samples";
    return verdict;
  }

  // 4. Decision: normalized latency shift (Cohen's d).
  const double mean_on = mean_of(on_samples);
  const double mean_off = mean_of(off_samples);
  const double sd_on = stddev_of(on_samples), sd_off = stddev_of(off_samples);
  const double pooled =
      std::sqrt((sd_on * sd_on + sd_off * sd_off) / 2.0) + 1e-9;
  verdict.ok = true;
  verdict.mean_on_ms = mean_on;
  verdict.mean_off_ms = mean_off;
  verdict.effect_size = (mean_on - mean_off) / pooled;
  verdict.on_path = verdict.effect_size > config.effect_threshold;
  verdict.flood_cells = *flood_cells;
  return verdict;
}

}  // namespace ting::analysis
