#include "analysis/coordinates.h"

#include <cmath>

#include "util/assert.h"

namespace ting::analysis {

namespace {

double norm(const std::vector<double>& v) {
  double acc = 0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

std::vector<double> diff(const std::vector<double>& a,
                         const std::vector<double>& b) {
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

}  // namespace

VivaldiSystem::VivaldiSystem(VivaldiConfig config) : config_(config) {
  TING_CHECK(config_.dimensions >= 2);
  TING_CHECK(config_.rounds >= 1);
}

void VivaldiSystem::fit(const meas::RttMatrix& observations,
                        const std::vector<dir::Fingerprint>& nodes, Rng& rng,
                        double sample_fraction) {
  TING_CHECK(sample_fraction > 0 && sample_fraction <= 1.0);
  coords_.clear();
  for (const auto& n : nodes) {
    NodeState s;
    s.position.resize(static_cast<std::size_t>(config_.dimensions));
    for (double& x : s.position) x = rng.normal(0, 1.0);
    coords_[n] = s;
  }

  // Training set: a random subset of the observed pairs.
  std::vector<std::tuple<dir::Fingerprint, dir::Fingerprint, double>> obs;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      const auto rtt = observations.rtt(nodes[i], nodes[j]);
      if (!rtt.has_value()) continue;
      if (sample_fraction < 1.0 && !rng.chance(sample_fraction)) continue;
      obs.emplace_back(nodes[i], nodes[j], *rtt);
    }
  }
  TING_CHECK_MSG(!obs.empty(), "no observations to fit on");

  for (int round = 0; round < config_.rounds; ++round) {
    rng.shuffle(obs);
    for (const auto& [a, b, rtt] : obs) {
      NodeState& sa = coords_[a];
      NodeState& sb = coords_[b];
      std::vector<double> d = diff(sa.position, sb.position);
      double dist = norm(d);
      if (dist < 1e-9) {
        // Coincident points: pick a random separation direction.
        for (double& x : d) x = rng.normal(0, 1e-3);
        dist = norm(d);
      }
      // Vivaldi update (both endpoints, symmetric observation).
      const double w = sa.error / (sa.error + sb.error);
      const double es = std::abs(dist - rtt) / rtt;
      sa.error = es * config_.ce * w + sa.error * (1 - config_.ce * w);
      const double delta = config_.cc * w;
      const double force = delta * (rtt - dist);
      for (std::size_t k = 0; k < d.size(); ++k)
        sa.position[k] += force * (d[k] / dist);
      // Mirror update for b (observation is symmetric).
      const double wb = sb.error / (sa.error + sb.error);
      sb.error = es * config_.ce * wb + sb.error * (1 - config_.ce * wb);
      const double force_b = config_.cc * wb * (rtt - dist);
      for (std::size_t k = 0; k < d.size(); ++k) {
        const double unit = -d[k] / dist;
        sb.position[k] += force_b * unit;
      }
    }
  }
}

double VivaldiSystem::estimate_ms(const dir::Fingerprint& a,
                                  const dir::Fingerprint& b) const {
  auto ia = coords_.find(a);
  auto ib = coords_.find(b);
  TING_CHECK_MSG(ia != coords_.end() && ib != coords_.end(),
                 "node not fitted");
  return norm(diff(ia->second.position, ib->second.position));
}

std::vector<double> VivaldiSystem::relative_errors(
    const meas::RttMatrix& truth) const {
  std::vector<double> errs;
  const auto nodes = truth.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (!coords_.contains(nodes[i]) || !coords_.contains(nodes[j])) continue;
      const auto rtt = truth.rtt(nodes[i], nodes[j]);
      if (!rtt.has_value() || *rtt <= 0) continue;
      errs.push_back(std::abs(estimate_ms(nodes[i], nodes[j]) - *rtt) / *rtt);
    }
  }
  return errs;
}

}  // namespace ting::analysis
