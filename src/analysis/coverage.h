// Coverage analysis (§5.3): how much of the Internet can Ting reach?
// Counts unique /24 prefixes across a consensus and classifies relays as
// residential or datacenter from their reverse-DNS names — an extension of
// Schulman & Spring's classifier (numbers/hex in the label + an access-
// network suffix) to European ISPs, as the paper describes.
#pragma once

#include <string>
#include <vector>

#include "dir/consensus.h"
#include "ting/sparse_matrix.h"

namespace ting::analysis {

/// Schulman-&-Spring-style residential test on an rDNS name: the leading
/// label embeds the address (dotted octets or hex) and the suffix names a
/// consumer access network (US or European).
bool is_residential_rdns(const std::string& rdns);

/// Does the rDNS name a known hosting provider?
bool is_datacenter_rdns(const std::string& rdns);

struct CoverageStats {
  std::size_t total_relays = 0;
  std::size_t with_rdns = 0;
  std::size_t residential = 0;        ///< classified residential (of named)
  std::size_t datacenter_named = 0;   ///< classified hosting (of named)
  std::size_t unclassified_named = 0;
  std::size_t unique_slash24 = 0;
  std::size_t unique_slash16 = 0;
  std::size_t countries = 0;

  double residential_fraction_of_named() const {
    return with_rdns == 0 ? 0
                          : static_cast<double>(residential) /
                                static_cast<double>(with_rdns);
  }
};

CoverageStats coverage_stats(const dir::Consensus& consensus);

/// Pair-coverage census for a continuous scan: what fraction of the current
/// consensus's unordered pairs does `matrix` hold fresh (within `ttl` of
/// `now`)? The daemon's convergence criterion and the analysis-side view of
/// a daemon store's health.
meas::SparseRttMatrix::CoverageCount pair_coverage(
    const meas::SparseRttMatrix& matrix,
    const std::vector<dir::Fingerprint>& nodes, TimePoint now, Duration ttl);

}  // namespace ting::analysis
