#include "analysis/path_selection.h"

#include <algorithm>
#include <set>

#include "util/assert.h"

namespace ting::analysis {

std::vector<CircuitSample> find_circuits_in_band(
    const meas::RttMatrix& matrix, const std::vector<dir::Fingerprint>& nodes,
    const BandQuery& query, Rng& rng) {
  TING_CHECK(query.length >= 2 && query.length <= nodes.size());
  std::vector<CircuitSample> hits;
  std::set<std::vector<std::size_t>> seen;
  for (std::size_t iter = 0;
       iter < query.max_iterations && hits.size() < query.want; ++iter) {
    CircuitSample s;
    s.path = rng.sample_indices(nodes.size(), query.length);
    // An incomplete path (unmeasured hop) spends an iteration but is never
    // a hit — sparse matrices narrow the search, they don't abort it.
    const auto rtt = try_circuit_rtt_ms(matrix, nodes, s.path);
    if (!rtt.has_value()) continue;
    s.rtt_ms = *rtt;
    if (s.rtt_ms < query.rtt_lo_ms || s.rtt_ms > query.rtt_hi_ms) continue;
    if (!seen.insert(s.path).second) continue;
    hits.push_back(std::move(s));
  }
  return hits;
}

CircuitSample optimize_low_rtt_circuit(const meas::RttMatrix& matrix,
                                       const std::vector<dir::Fingerprint>& nodes,
                                       std::size_t length, Rng& rng,
                                       int restarts) {
  TING_CHECK(length >= 2 && length <= nodes.size());
  TING_CHECK(restarts >= 1);
  CircuitSample best;
  best.rtt_ms = 1e18;
  for (int r = 0; r < restarts; ++r) {
    CircuitSample current;
    current.path = rng.sample_indices(nodes.size(), length);
    const auto start = try_circuit_rtt_ms(matrix, nodes, current.path);
    // A start over an unmeasured hop burns the restart; local search needs
    // a measurable incumbent to improve on.
    if (!start.has_value()) continue;
    current.rtt_ms = *start;
    bool improved = true;
    while (improved) {
      improved = false;
      // Try replacing each position with each unused node.
      for (std::size_t pos = 0; pos < length && !improved; ++pos) {
        const std::set<std::size_t> used(current.path.begin(),
                                         current.path.end());
        for (std::size_t candidate = 0; candidate < nodes.size();
             ++candidate) {
          if (used.contains(candidate)) continue;
          std::vector<std::size_t> trial = current.path;
          trial[pos] = candidate;
          const auto rtt = try_circuit_rtt_ms(matrix, nodes, trial);
          if (!rtt.has_value()) continue;  // swap crosses an unmeasured pair
          if (*rtt < current.rtt_ms - 1e-12) {
            current.path = std::move(trial);
            current.rtt_ms = *rtt;
            improved = true;
            break;
          }
        }
      }
    }
    if (current.rtt_ms < best.rtt_ms) best = std::move(current);
  }
  // On a matrix too sparse for any complete circuit the result has an empty
  // path (and the sentinel RTT) — callers check rather than crash.
  return best;
}

std::optional<double> circuit_options_in_band(
    const meas::RttMatrix& matrix, const std::vector<dir::Fingerprint>& nodes,
    std::size_t length, double rtt_lo_ms, double rtt_hi_ms,
    std::size_t sample_count, Rng& rng) {
  const auto samples = sample_circuits(matrix, nodes, length, sample_count, rng);
  // The scaling divisor must be the number of circuits actually *judged*
  // (valid draws), not the number requested: on a sparse matrix skipped
  // draws would otherwise deflate the estimate, and with zero valid draws
  // there is no estimate at all.
  if (samples.empty()) return std::nullopt;
  std::size_t in_band = 0;
  for (const auto& s : samples)
    if (s.rtt_ms >= rtt_lo_ms && s.rtt_ms <= rtt_hi_ms) ++in_band;
  return static_cast<double>(in_band) / static_cast<double>(samples.size()) *
         n_choose_k(nodes.size(), length);
}

std::optional<BandRecommendation> recommend_length_for_band(
    const meas::RttMatrix& matrix, const std::vector<dir::Fingerprint>& nodes,
    double rtt_lo_ms, double rtt_hi_ms, std::size_t max_length,
    std::size_t sample_count, Rng& rng) {
  TING_CHECK(max_length >= 3);
  std::optional<BandRecommendation> best;
  for (std::size_t len = 3; len <= std::min(max_length, nodes.size()); ++len) {
    const auto options = circuit_options_in_band(
        matrix, nodes, len, rtt_lo_ms, rtt_hi_ms, sample_count, rng);
    if (!options.has_value() || *options <= 0) continue;
    if (!best.has_value() || *options > best->options)
      best = BandRecommendation{len, *options};
  }
  return best;
}

}  // namespace ting::analysis
