#include "analysis/circuits.h"

#include <algorithm>

#include "util/assert.h"

namespace ting::analysis {

std::optional<double> try_circuit_rtt_ms(
    const meas::RttMatrix& matrix, const std::vector<dir::Fingerprint>& nodes,
    const std::vector<std::size_t>& path) {
  TING_CHECK(path.size() >= 2);
  double total = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto r = matrix.rtt(nodes.at(path[i]), nodes.at(path[i + 1]));
    if (!r.has_value()) return std::nullopt;
    total += *r;
  }
  return total;
}

double circuit_rtt_ms(const meas::RttMatrix& matrix,
                      const std::vector<dir::Fingerprint>& nodes,
                      const std::vector<std::size_t>& path) {
  const auto r = try_circuit_rtt_ms(matrix, nodes, path);
  TING_CHECK_MSG(r.has_value(), "missing RTT along circuit");
  return *r;
}

std::vector<CircuitSample> sample_circuits(
    const meas::RttMatrix& matrix, const std::vector<dir::Fingerprint>& nodes,
    std::size_t len, std::size_t count, Rng& rng) {
  TING_CHECK(len >= 2 && len <= nodes.size());
  std::vector<CircuitSample> out;
  out.reserve(count);
  // Incomplete draws (a hop over an unmeasured pair) are skipped rather
  // than aborted on. The attempt budget bounds the loop on very sparse
  // matrices; on a complete matrix every draw is valid and the RNG stream
  // matches the historical one draw per sample.
  const std::size_t max_attempts = count * 10 + 100;
  for (std::size_t attempt = 0; attempt < max_attempts && out.size() < count;
       ++attempt) {
    CircuitSample s;
    s.path = rng.sample_indices(nodes.size(), len);
    const auto rtt = try_circuit_rtt_ms(matrix, nodes, s.path);
    if (!rtt.has_value()) continue;
    s.rtt_ms = *rtt;
    out.push_back(std::move(s));
  }
  return out;
}

double n_choose_k(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  double result = 1;
  for (std::size_t i = 0; i < k; ++i)
    result *= static_cast<double>(n - i) / static_cast<double>(i + 1);
  return result;
}

CircuitRttHistogram circuit_rtt_histogram(
    const meas::RttMatrix& matrix, const std::vector<dir::Fingerprint>& nodes,
    std::size_t len, std::size_t sample_count, double bin_ms,
    std::size_t nbins, Rng& rng) {
  CircuitRttHistogram out;
  out.length = len;
  out.bin_ms = bin_ms;
  out.scaled_counts.assign(nbins, 0.0);
  out.median_node_probability.assign(nbins, 0.0);

  const auto samples = sample_circuits(matrix, nodes, len, sample_count, rng);
  if (samples.empty()) return out;  // sparse matrix: no complete circuit found

  // Raw counts per bin, plus per-bin per-node membership counts.
  std::vector<double> raw(nbins, 0.0);
  std::vector<std::vector<double>> node_in_bin(
      nbins, std::vector<double>(nodes.size(), 0.0));
  for (const auto& s : samples) {
    // A negative RTT (bad matrix data) must not wrap through the size_t
    // cast into a huge bin index.
    std::size_t bin = s.rtt_ms <= 0
                          ? 0
                          : static_cast<std::size_t>(s.rtt_ms / bin_ms);
    if (bin >= nbins) bin = nbins - 1;
    raw[bin] += 1;
    for (std::size_t node : s.path) node_in_bin[bin][node] += 1;
  }

  // Scale sampled counts to the full population C(n, len) (the paper's
  // procedure for Fig 16). The divisor is the number of *valid* samples
  // drawn, which is sample_count on a complete matrix but smaller on a
  // sparse one — dividing by the request would bias every bin low.
  const double scale = n_choose_k(nodes.size(), len) /
                       static_cast<double>(samples.size());
  for (std::size_t b = 0; b < nbins; ++b)
    out.scaled_counts[b] = raw[b] * scale;

  // Fig 17: for each bin, P(node on a circuit with RTT in the bin) over the
  // whole circuit sample, median across nodes. Peaks at intermediate RTTs
  // (many circuits and broad node participation); tiny at the extremes,
  // where the few feasible circuits reuse few nodes.
  for (std::size_t b = 0; b < nbins; ++b) {
    if (raw[b] == 0) continue;
    std::vector<double> probs;
    probs.reserve(nodes.size());
    for (std::size_t node = 0; node < nodes.size(); ++node)
      probs.push_back(node_in_bin[b][node] /
                      static_cast<double>(samples.size()));
    out.median_node_probability[b] = quantile(std::move(probs), 0.5);
  }
  return out;
}

}  // namespace ting::analysis
