// Long-circuit analysis (§5.2.2): sample random circuits of lengths 3–10
// from an all-pairs RTT dataset, bin their end-to-end RTTs, scale counts to
// the full combinatorial population C(n, ℓ), and measure the "entropy" of
// low-latency circuits — the median probability that a given node sits on a
// circuit in each RTT bin (Figs 16 and 17).
#pragma once

#include <vector>

#include "dir/fingerprint.h"
#include "ting/rtt_matrix.h"
#include "util/rng.h"
#include "util/stats.h"

namespace ting::analysis {

struct CircuitSample {
  std::vector<std::size_t> path;  ///< node indices, length ℓ
  double rtt_ms = 0;              ///< sum of inter-relay RTTs along the path
};

/// Sum of consecutive-hop RTTs for a path of node indices, or nullopt when
/// any hop's pair is missing from the matrix — the form every sampler uses,
/// so partially-converged daemon stores are analyzable without aborting.
std::optional<double> try_circuit_rtt_ms(const meas::RttMatrix& matrix,
                                         const std::vector<dir::Fingerprint>& nodes,
                                         const std::vector<std::size_t>& path);

/// Sum of consecutive-hop RTTs for a path of node indices. Aborts
/// (TING_CHECK) on a missing pair: callers that can see incomplete
/// matrices should use try_circuit_rtt_ms.
double circuit_rtt_ms(const meas::RttMatrix& matrix,
                      const std::vector<dir::Fingerprint>& nodes,
                      const std::vector<std::size_t>& path);

/// Draw `count` random simple circuits (distinct relays) of length `len`.
/// Circuits crossing an unmeasured pair are skipped, not aborted on; on a
/// sparse matrix fewer than `count` samples may come back (the draw budget
/// is a fixed multiple of `count`). On a complete matrix this returns
/// exactly `count` samples from the same RNG stream as always.
std::vector<CircuitSample> sample_circuits(
    const meas::RttMatrix& matrix, const std::vector<dir::Fingerprint>& nodes,
    std::size_t len, std::size_t count, Rng& rng);

/// C(n, l) as a double (overflows are fine at double precision — Fig 16's
/// y-axis is logarithmic).
double n_choose_k(std::size_t n, std::size_t k);

struct CircuitRttHistogram {
  std::size_t length = 0;
  double bin_ms = 50.0;
  /// Estimated number of circuits per RTT bin, scaled from the sample to
  /// the full population C(n, length).
  std::vector<double> scaled_counts;
  /// Per-bin median (over nodes) probability that a node is on a circuit
  /// whose RTT falls in the bin — Fig 17's metric.
  std::vector<double> median_node_probability;
};

/// Build the Fig 16/17 statistics for one circuit length.
CircuitRttHistogram circuit_rtt_histogram(
    const meas::RttMatrix& matrix, const std::vector<dir::Fingerprint>& nodes,
    std::size_t len, std::size_t sample_count, double bin_ms,
    std::size_t nbins, Rng& rng);

}  // namespace ting::analysis
