#include "analysis/coverage.h"

#include <cctype>
#include <set>

#include "util/bytes.h"

namespace ting::analysis {

namespace {

// Consumer access-network markers (US + European extension).
const char* kResidentialMarkers[] = {
    "comcast", "spectrum", "sbcglobal", "frontier",  "verizon", "fios",
    "rcn",     "hsd",      "dsl",       "cable",     "dip",     "dyn",
    "pool",    "cust",     "client",    "broadband", "res.",    "kabel",
    "wanadoo", "telefonica", "bredband", "ziggo",    "t-ipconnect",
    "plus.com",
};

// Hosting providers the paper tallies (plus Digital Ocean).
const char* kDatacenterMarkers[] = {
    "linode", "amazonaws", "ovh",      "cloudatcost",
    "your-server", "leaseweb", "digitalocean", "hetzner", "server-",
};

/// Count groups of digits (or >=4-char hex runs) in the leading label —
/// residential names embed the host address.
int numeric_groups(const std::string& name) {
  const std::string label = split(name, '.').front();
  int groups = 0;
  std::size_t i = 0;
  while (i < label.size()) {
    if (std::isdigit(static_cast<unsigned char>(label[i]))) {
      ++groups;
      while (i < label.size() &&
             std::isxdigit(static_cast<unsigned char>(label[i])))
        ++i;
    } else if (std::isxdigit(static_cast<unsigned char>(label[i])) &&
               label.size() >= 8) {
      // Hex-coded addresses ("p5483A1B2...") count once if long enough.
      std::size_t run = 0;
      while (i + run < label.size() &&
             std::isxdigit(static_cast<unsigned char>(label[i + run])))
        ++run;
      if (run >= 8) ++groups;
      i += run == 0 ? 1 : run;
    } else {
      ++i;
    }
  }
  return groups;
}

bool contains_marker(const std::string& name, const char* const* markers,
                     std::size_t count) {
  const std::string lower = to_lower(name);
  for (std::size_t i = 0; i < count; ++i)
    if (lower.find(markers[i]) != std::string::npos) return true;
  return false;
}

}  // namespace

bool is_datacenter_rdns(const std::string& rdns) {
  if (rdns.empty()) return false;
  return contains_marker(rdns, kDatacenterMarkers,
                         std::size(kDatacenterMarkers));
}

bool is_residential_rdns(const std::string& rdns) {
  if (rdns.empty()) return false;
  if (is_datacenter_rdns(rdns)) return false;
  // Address-derived numbers in the label + a consumer-ISP suffix.
  return numeric_groups(rdns) >= 1 &&
         contains_marker(rdns, kResidentialMarkers,
                         std::size(kResidentialMarkers));
}

CoverageStats coverage_stats(const dir::Consensus& consensus) {
  CoverageStats stats;
  std::set<std::uint32_t> s24, s16;
  std::set<std::string> countries;
  for (const auto& r : consensus.relays()) {
    ++stats.total_relays;
    s24.insert(r.address.slash24());
    s16.insert(r.address.slash16());
    if (!r.country_code.empty()) countries.insert(r.country_code);
    if (r.reverse_dns.empty()) continue;
    ++stats.with_rdns;
    if (is_residential_rdns(r.reverse_dns)) {
      ++stats.residential;
    } else if (is_datacenter_rdns(r.reverse_dns)) {
      ++stats.datacenter_named;
    } else {
      ++stats.unclassified_named;
    }
  }
  stats.unique_slash24 = s24.size();
  stats.unique_slash16 = s16.size();
  stats.countries = countries.size();
  return stats;
}

meas::SparseRttMatrix::CoverageCount pair_coverage(
    const meas::SparseRttMatrix& matrix,
    const std::vector<dir::Fingerprint>& nodes, TimePoint now, Duration ttl) {
  return matrix.coverage(nodes, now, ttl);
}

}  // namespace ting::analysis
