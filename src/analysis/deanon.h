// Deanonymization with all-pairs RTT knowledge (§5.1).
//
// Threat model: the attacker is the destination. It knows the exit node x,
// its own RTT r to x, and the end-to-end circuit RTT Re2e. It can issue
// Murdoch–Danezis-style congestion probes that reveal whether a given relay
// is on the victim circuit, and wants to identify the entry and middle with
// as few probes as possible.
//
// Three strategies are implemented:
//  - kRttUnaware: brute force in random order (the baseline);
//  - kIgnoreTooLarge: prune every candidate that cannot appear in any
//    feasible (entry, middle) pair under
//        R(e,m) + R(m,x) + r <= Re2e
//    (the paper's conservative inequalities, which ignore R(source,entry));
//  - kInformed: additionally rank candidates by Algorithm 1's score
//        score(i) = min over feasible circuits c containing i of
//                   |Re2e − (R(c) + r + µ)|
//    where µ is the mean RTT of the all-pairs dataset, and probe the
//    lowest-scoring candidate first.
//
// The weighted variants model Tor's bandwidth-weighted relay selection: the
// victim circuit is drawn weighted, the baseline probes in decreasing
// weight order, and Algorithm 1 divides each score by the node's weight.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <vector>

#include "dir/fingerprint.h"
#include "ting/rtt_matrix.h"
#include "util/rng.h"

namespace ting::analysis {

/// The attacker's world: nodes, the Ting-produced all-pairs matrix, and
/// optional bandwidth weights (empty = uniform selection).
struct DeanonWorld {
  std::vector<dir::Fingerprint> nodes;
  const meas::RttMatrix* matrix = nullptr;
  std::vector<double> weights;

  /// RTT between two node indices; aborts (TING_CHECK) when the pair is
  /// missing. Attack logic that can see a partially-converged matrix goes
  /// through try_rtt instead.
  double rtt(std::size_t a, std::size_t b) const;
  /// RTT between two node indices, or nullopt when the pair is unmeasured.
  std::optional<double> try_rtt(std::size_t a, std::size_t b) const;
  double weight(std::size_t i) const;
  double mean_rtt() const { return matrix->mean_rtt(); }
};

/// A victim circuit: source → entry → middle → exit → destination(attacker).
struct CircuitInstance {
  std::size_t source = 0, entry = 0, middle = 0, exit = 0;
  double exit_to_dst_ms = 0;  ///< r: known to the attacker
  double e2e_ms = 0;          ///< Re2e: known to the attacker
};

/// Draw a victim circuit (source uniform; relays uniform or
/// bandwidth-weighted when the world carries weights), all four distinct.
/// Aborts (TING_CHECK) if a leg of the drawn circuit is unmeasured; use
/// try_sample_circuit against sparse matrices.
CircuitInstance sample_circuit(const DeanonWorld& world, Rng& rng,
                               bool weighted);

/// Like sample_circuit, but redraws (up to `max_attempts`) until every leg
/// of the circuit is measured, and returns nullopt instead of aborting when
/// the matrix is too sparse to yield one. On a complete matrix the first
/// draw succeeds and the RNG stream matches sample_circuit exactly.
std::optional<CircuitInstance> try_sample_circuit(const DeanonWorld& world,
                                                  Rng& rng, bool weighted,
                                                  std::size_t max_attempts = 100);

enum class Strategy : std::uint8_t {
  kRttUnaware,
  kIgnoreTooLarge,
  kInformed,
  /// Weighted baseline: probe in decreasing bandwidth-weight order.
  kWeightOrdered,
};

struct DeanonResult {
  bool success = false;
  int probes = 0;                ///< brute-force probes actually issued
  std::size_t candidates = 0;    ///< initial candidate count (N − 1)
  double fraction_probed = 0;    ///< probes / candidates
  /// Fraction of candidates excluded before any probe purely by the
  /// too-large-RTT rules (Fig 13's quantity). Zero for kRttUnaware.
  double fraction_ruled_out_initially = 0;
  /// The {entry, middle} set the attacker concluded (when success).
  std::set<std::size_t> identified;
};

/// What the attacker-destination knows up front (§5.1.1): the exit, its own
/// RTT to the exit, and the end-to-end circuit RTT.
struct AttackerView {
  std::size_t exit = 0;
  double exit_to_dst_ms = 0;
  double e2e_ms = 0;

  static AttackerView of(const CircuitInstance& c) {
    return AttackerView{c.exit, c.exit_to_dst_ms, c.e2e_ms};
  }
};

/// Probe function: does `node_index` lie on the victim circuit? In
/// simulation this is an oracle; against the full stack it is a
/// Murdoch–Danezis congestion probe (analysis/congestion.h).
using ProbeFn = std::function<bool(std::size_t)>;

/// Run one deanonymization episode with an explicit probe implementation.
DeanonResult deanonymize_with_probe(const DeanonWorld& world,
                                    const AttackerView& view,
                                    Strategy strategy, Rng& rng,
                                    const ProbeFn& probe);

/// Oracle-probe convenience used by the Fig 12/13 simulations.
DeanonResult deanonymize(const DeanonWorld& world,
                         const CircuitInstance& circuit, Strategy strategy,
                         Rng& rng);

}  // namespace ting::analysis
