#include "analysis/deanon.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "util/assert.h"

namespace ting::analysis {

double DeanonWorld::rtt(std::size_t a, std::size_t b) const {
  const auto r = try_rtt(a, b);
  TING_CHECK_MSG(r.has_value(), "missing RTT for node pair");
  return *r;
}

std::optional<double> DeanonWorld::try_rtt(std::size_t a, std::size_t b) const {
  TING_CHECK(matrix != nullptr);
  return matrix->rtt(nodes.at(a), nodes.at(b));
}

double DeanonWorld::weight(std::size_t i) const {
  if (weights.empty()) return 1.0;
  return weights.at(i);
}

namespace {

/// One circuit draw, e2e left unset; the callers decide what a circuit with
/// an unmeasured leg means (abort vs. redraw).
CircuitInstance draw_circuit(const DeanonWorld& world, Rng& rng,
                             bool weighted) {
  const std::size_t n = world.nodes.size();
  TING_CHECK(n >= 4);
  CircuitInstance c;
  c.source = rng.next_below(n);  // victims are uniform regardless of weights
  auto pick_relay = [&]() {
    if (!weighted || world.weights.empty()) return static_cast<std::size_t>(rng.next_below(n));
    return rng.weighted_index(world.weights);
  };
  do { c.entry = pick_relay(); } while (c.entry == c.source);
  do { c.middle = pick_relay(); } while (c.middle == c.source || c.middle == c.entry);
  do { c.exit = pick_relay(); } while (c.exit == c.source || c.exit == c.entry ||
                                       c.exit == c.middle);
  // The attacker-destination sits at a plausible server RTT from the exit.
  c.exit_to_dst_ms = rng.uniform(5.0, 80.0);
  return c;
}

}  // namespace

CircuitInstance sample_circuit(const DeanonWorld& world, Rng& rng,
                               bool weighted) {
  CircuitInstance c = draw_circuit(world, rng, weighted);
  c.e2e_ms = world.rtt(c.source, c.entry) + world.rtt(c.entry, c.middle) +
             world.rtt(c.middle, c.exit) + c.exit_to_dst_ms;
  return c;
}

std::optional<CircuitInstance> try_sample_circuit(const DeanonWorld& world,
                                                  Rng& rng, bool weighted,
                                                  std::size_t max_attempts) {
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    CircuitInstance c = draw_circuit(world, rng, weighted);
    const auto se = world.try_rtt(c.source, c.entry);
    const auto em = world.try_rtt(c.entry, c.middle);
    const auto mx = world.try_rtt(c.middle, c.exit);
    if (!se || !em || !mx) continue;  // unmeasured leg: redraw
    c.e2e_ms = *se + *em + *mx + c.exit_to_dst_ms;
    return c;
  }
  return std::nullopt;
}

namespace {

/// Attacker-side episode state.
struct Episode {
  const DeanonWorld& world;
  const AttackerView& view;
  const bool use_constraints;
  std::vector<std::size_t> candidates;      ///< all nodes except the exit
  std::set<std::size_t> positives;          ///< probed, on the circuit
  std::set<std::size_t> negatives;          ///< probed, not on the circuit
  std::set<std::size_t> alive;              ///< still possibly on the circuit

  Episode(const DeanonWorld& w, const AttackerView& v, bool constraints)
      : world(w), view(v), use_constraints(constraints) {
    for (std::size_t i = 0; i < w.nodes.size(); ++i) {
      if (i == v.exit) continue;
      candidates.push_back(i);
      alive.insert(i);
    }
  }

  /// Is the ordered pair (e, m) consistent with everything we know?
  bool pair_feasible(std::size_t e, std::size_t m) const {
    if (e == m) return false;
    if (negatives.contains(e) || negatives.contains(m)) return false;
    for (std::size_t p : positives)
      if (p != e && p != m) return false;
    if (use_constraints) {
      // The paper's conservative inequality (drops R(source, entry) >= 0).
      // An unmeasured leg means the bound cannot be evaluated, and a pair
      // the attacker cannot bound is a pair it cannot rule out.
      const auto em = world.try_rtt(e, m);
      const auto mx = world.try_rtt(m, view.exit);
      if (!em.has_value() || !mx.has_value()) return true;
      const double lower_bound = *em + *mx + view.exit_to_dst_ms;
      if (lower_bound > view.e2e_ms + 1e-9) return false;
    }
    return true;
  }

  /// Enumerate feasible ordered pairs over alive candidates.
  std::vector<std::pair<std::size_t, std::size_t>> feasible_pairs() const {
    std::vector<std::pair<std::size_t, std::size_t>> out;
    for (std::size_t e : alive)
      for (std::size_t m : alive)
        if (pair_feasible(e, m)) out.emplace_back(e, m);
    return out;
  }

  /// Drop alive candidates appearing in no feasible pair ("ruled out
  /// implicitly" — never probed). Returns the number removed.
  std::size_t prune() {
    if (!use_constraints) return 0;
    const auto pairs = feasible_pairs();
    std::set<std::size_t> still;
    for (const auto& [e, m] : pairs) {
      still.insert(e);
      still.insert(m);
    }
    std::size_t removed = 0;
    for (auto it = alive.begin(); it != alive.end();) {
      if (!still.contains(*it)) {
        it = alive.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }

  /// Done when every feasible pair names the same {entry, middle} set.
  bool solved() const {
    const auto pairs = feasible_pairs();
    if (pairs.empty()) return false;
    std::set<std::size_t> first{pairs[0].first, pairs[0].second};
    for (const auto& [e, m] : pairs) {
      if (!(std::set<std::size_t>{e, m} == first)) return false;
    }
    return true;
  }

  /// Algorithm 1's score for candidate i (smaller = probe sooner).
  double score(std::size_t i) const {
    double best = std::numeric_limits<double>::infinity();
    const double mu = world.mean_rtt();
    for (std::size_t other : alive) {
      if (other == i) continue;
      for (const auto& [e, m] : {std::pair<std::size_t, std::size_t>{i, other},
                                 std::pair<std::size_t, std::size_t>{other, i}}) {
        if (!pair_feasible(e, m)) continue;
        // Feasible-but-unmeasured pairs contribute no residual: nothing to
        // rank by, but they stay probe-able through the baseline order.
        const auto em = world.try_rtt(e, m);
        const auto mx = world.try_rtt(m, view.exit);
        if (!em.has_value() || !mx.has_value()) continue;
        const double circuit_rtt = *em + *mx;
        best = std::min(
            best, std::abs(view.e2e_ms -
                           (circuit_rtt + view.exit_to_dst_ms + mu)));
      }
    }
    // Weighted variant (§5.1.1): divide the score by the node's weight. A
    // small floor keeps coincidental near-zero residuals from erasing the
    // bandwidth prior among otherwise-tied candidates.
    return (best + 5.0) / world.weight(i);
  }
};

}  // namespace

DeanonResult deanonymize_with_probe(const DeanonWorld& world,
                                    const AttackerView& view,
                                    Strategy strategy, Rng& rng,
                                    const ProbeFn& probe) {
  const bool constraints = strategy == Strategy::kIgnoreTooLarge ||
                           strategy == Strategy::kInformed;
  Episode ep(world, view, constraints);

  DeanonResult result;
  result.candidates = ep.candidates.size();
  const std::size_t ruled_out_first = ep.prune();
  result.fraction_ruled_out_initially =
      static_cast<double>(ruled_out_first) /
      static_cast<double>(result.candidates);

  // Pre-shuffled order for the unordered strategies.
  std::vector<std::size_t> order = ep.candidates;
  if (strategy == Strategy::kWeightOrdered) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return world.weight(a) > world.weight(b);
    });
  } else {
    rng.shuffle(order);
  }

  std::set<std::size_t> probed;
  auto next_target = [&]() -> std::optional<std::size_t> {
    if (strategy == Strategy::kInformed) {
      double best_score = std::numeric_limits<double>::infinity();
      std::optional<std::size_t> best;
      std::optional<std::size_t> fallback;  // unscoreable but still alive
      for (std::size_t i : ep.alive) {
        if (probed.contains(i)) continue;
        if (!fallback.has_value()) fallback = i;
        const double s = ep.score(i);
        if (s < best_score) {
          best_score = s;
          best = i;
        }
      }
      // On a sparse matrix every candidate can score infinity (no measured
      // feasible pair to rank by); probe in candidate order rather than
      // stalling with probe-able candidates left.
      return best.has_value() ? best : fallback;
    }
    for (std::size_t i : order) {
      if (probed.contains(i)) continue;
      if (constraints && !ep.alive.contains(i)) continue;
      return i;
    }
    return std::nullopt;
  };

  while (!ep.solved()) {
    const auto target = next_target();
    if (!target.has_value()) break;  // nothing left to probe
    probed.insert(*target);
    ++result.probes;
    const bool on_circuit = probe(*target);
    if (on_circuit) {
      ep.positives.insert(*target);
    } else {
      ep.negatives.insert(*target);
      ep.alive.erase(*target);
    }
    ep.prune();
  }

  result.success = ep.solved();
  if (result.success) {
    const auto pairs = ep.feasible_pairs();
    result.identified = {pairs[0].first, pairs[0].second};
  }
  result.fraction_probed = static_cast<double>(result.probes) /
                           static_cast<double>(result.candidates);
  return result;
}

DeanonResult deanonymize(const DeanonWorld& world,
                         const CircuitInstance& circuit, Strategy strategy,
                         Rng& rng) {
  return deanonymize_with_probe(
      world, AttackerView::of(circuit), strategy, rng,
      [&circuit](std::size_t node) {
        return node == circuit.entry || node == circuit.middle;
      });
}

}  // namespace ting::analysis
