// Vivaldi-style network coordinates — the landmark/embedding alternative
// to direct measurement that §2 discusses (Vivaldi [6], GNP [18],
// Octant [33]): "such estimation systems offer considerably greater
// coverage than Ting ... but suffer from the fact that Internet latencies
// are inherently difficult to estimate accurately, e.g., due to triangle
// inequality violations."
//
// This implements the classic decentralized spring-relaxation algorithm
// over d-dimensional Euclidean coordinates, fit from (a subset of) pairwise
// observations. Because the embedding is a metric space, it provably cannot
// represent a TIV — the structural argument for Ting's direct measurement,
// demonstrated quantitatively in bench/ablation_coordinates.
#pragma once

#include <map>
#include <vector>

#include "dir/fingerprint.h"
#include "ting/rtt_matrix.h"
#include "util/rng.h"

namespace ting::analysis {

struct VivaldiConfig {
  int dimensions = 5;
  double ce = 0.25;  ///< adaptive error gain
  double cc = 0.25;  ///< coordinate update gain
  int rounds = 200;  ///< passes over the observation set
};

class VivaldiSystem {
 public:
  explicit VivaldiSystem(VivaldiConfig config = {});

  /// Fit coordinates from observations. `sample_fraction` in (0, 1] selects
  /// a random subset of pairs to train on (coordinate systems' selling
  /// point is needing far fewer than all-pairs measurements).
  void fit(const meas::RttMatrix& observations,
           const std::vector<dir::Fingerprint>& nodes, Rng& rng,
           double sample_fraction = 1.0);

  /// Predicted RTT between two fitted nodes (Euclidean distance).
  double estimate_ms(const dir::Fingerprint& a,
                     const dir::Fingerprint& b) const;

  bool has(const dir::Fingerprint& node) const {
    return coords_.contains(node);
  }
  const VivaldiConfig& config() const { return config_; }

  /// Relative error |est − true| / true over all pairs of `truth`.
  std::vector<double> relative_errors(const meas::RttMatrix& truth) const;

 private:
  struct NodeState {
    std::vector<double> position;
    double error = 1.0;  ///< confidence weight, shrinks as the fit improves
  };
  VivaldiConfig config_;
  std::map<dir::Fingerprint, NodeState> coords_;
};

}  // namespace ting::analysis
