#include "echo/echo.h"

namespace ting::echo {

EchoServer::EchoServer(simnet::Network& net, simnet::HostId host,
                       std::uint16_t port) {
  endpoint_ = Endpoint{net.ip_of(host), port};
  simnet::Listener* listener = net.listen(host, port);
  listener->set_on_accept([this](simnet::ConnPtr conn) {
    conn->set_on_message([this, conn](Bytes msg) {
      ++echoes_;
      conn->send(std::move(msg));
    });
  });
}

void measure_stream_rtt(simnet::EventLoop& loop,
                        const tor::OnionProxy::StreamPtr& stream,
                        std::function<void(std::optional<Duration>)> on_done,
                        Duration timeout) {
  const TimePoint sent_at = loop.now();
  auto done = std::make_shared<bool>(false);
  const simnet::EventId timer =
      loop.schedule(timeout, [done, stream, on_done]() {
        if (*done) return;
        *done = true;
        stream->set_on_message({});
        on_done(std::nullopt);
      });
  stream->set_on_message([&loop, sent_at, done, timer, stream,
                          on_done](Bytes) {
    if (*done) return;
    *done = true;
    loop.cancel(timer);
    stream->set_on_message({});
    on_done(loop.now() - sent_at);
  });
  stream->send(Bytes{'p', 'i', 'n', 'g'});
}

void measure_direct_rtt(simnet::Network& net, simnet::HostId from,
                        Endpoint echo_server,
                        std::function<void(std::optional<Duration>)> on_done,
                        Duration timeout) {
  auto done = std::make_shared<bool>(false);
  const simnet::EventId timer =
      net.loop().schedule(timeout, [done, on_done]() {
        if (*done) return;
        *done = true;
        on_done(std::nullopt);
      });
  net.connect(
      from, echo_server, simnet::Protocol::kTcp,
      [&net, done, timer, on_done](simnet::ConnPtr conn) {
        const TimePoint sent_at = net.loop().now();
        conn->set_on_message([&net, sent_at, done, timer, conn,
                              on_done](Bytes) {
          if (*done) return;
          *done = true;
          net.loop().cancel(timer);
          const Duration rtt = net.loop().now() - sent_at;
          conn->close();
          on_done(rtt);
        });
        conn->send(Bytes{'p', 'i', 'n', 'g'});
      },
      [done, &net, timer, on_reply = on_done](const std::string&) {
        if (*done) return;
        *done = true;
        net.loop().cancel(timer);
        on_reply(std::nullopt);
      });
}

}  // namespace ting::echo
