// The echo pair (§3.1): a minimal TCP echo server (d) and a measuring echo
// client (s). The client can probe either directly over the simulated
// network or through a Tor circuit via an OnionProxy stream; Ting always
// uses the latter.
#pragma once

#include <functional>
#include <optional>

#include "simnet/network.h"
#include "tor/onion_proxy.h"

namespace ting::echo {

inline constexpr std::uint16_t kEchoPort = 4242;

/// A TCP echo server: every message is sent straight back.
class EchoServer {
 public:
  EchoServer(simnet::Network& net, simnet::HostId host,
             std::uint16_t port = kEchoPort);
  Endpoint endpoint() const { return endpoint_; }
  std::uint64_t echoes() const { return echoes_; }

 private:
  Endpoint endpoint_;
  std::uint64_t echoes_ = 0;
};

/// Measure one echo RTT over an established OnionProxy stream: send a small
/// payload, time until the echoed copy returns. The stream must be connected.
void measure_stream_rtt(simnet::EventLoop& loop,
                        const tor::OnionProxy::StreamPtr& stream,
                        std::function<void(std::optional<Duration>)> on_done,
                        Duration timeout = Duration::seconds(30));

/// Measure one echo RTT over a raw TCP connection (used for ground truth and
/// the §3.2 strawman, never by Ting itself).
void measure_direct_rtt(simnet::Network& net, simnet::HostId from,
                        Endpoint echo_server,
                        std::function<void(std::optional<Duration>)> on_done,
                        Duration timeout = Duration::seconds(30));

}  // namespace ting::echo
