// Little-endian fixed-width field codec shared by the binary persistence
// formats (sparse RTT matrix, half-circuit cache checkpoint).
//
// Deliberately not ByteWriter/ByteReader from util/bytes.h: those are
// big-endian to match Tor's wire formats, while the on-disk artifacts are
// little-endian (host order on every platform we run) and are compared
// byte-for-byte by the daemon's crash-resume check, so the codec must be
// explicit about layout rather than inherit whatever the wire needs.
#pragma once

#include <cstdint>
#include <string>

#include "dir/fingerprint.h"

namespace ting::meas::binfmt {

inline void put_u64le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void put_u32le(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline std::uint64_t get_u64le(const std::string& s, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) |
        static_cast<std::uint8_t>(s[off + static_cast<std::size_t>(i)]);
  return v;
}

inline std::uint32_t get_u32le(const std::string& s, std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) |
        static_cast<std::uint8_t>(s[off + static_cast<std::size_t>(i)]);
  return v;
}

inline void put_fp(std::string& out, const dir::Fingerprint& fp) {
  const auto& b = fp.bytes();
  out.append(reinterpret_cast<const char*>(b.data()), b.size());
}

inline dir::Fingerprint get_fp(const std::string& s, std::size_t off) {
  static const char* hexdig = "0123456789abcdef";
  std::string hex;
  hex.reserve(2 * dir::Fingerprint::kLen);
  for (std::size_t i = 0; i < dir::Fingerprint::kLen; ++i) {
    const auto byte = static_cast<std::uint8_t>(s[off + i]);
    hex.push_back(hexdig[byte >> 4]);
    hex.push_back(hexdig[byte & 0xf]);
  }
  return dir::Fingerprint::from_hex(hex);
}

}  // namespace ting::meas::binfmt
