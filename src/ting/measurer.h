// TingMeasurer — the paper's core technique (§3.3).
//
// To measure R(x, y):
//  1. build circuit C_xy = (w, x, y, z) via EXTENDCIRCUIT, attach an echo
//     stream (SOCKS CONNECT + 650 STREAM NEW + ATTACHSTREAM), sample the
//     end-to-end RTT N times, keep the minimum;
//  2. likewise for C_x = (w, x, z) and C_y = (w, y, z);
//  3. estimate R(x, y) = R_Cxy − ½·R_Cx − ½·R_Cy, which cancels the
//     measurement host's legs and leaves only R(x,y) + F_x + F_y (Eq. (4)).
//
// The strawman of §3.2 (mixing a Tor circuit with ICMP pings) is also
// implemented, as the baseline whose failure motivates Ting.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ting/measurement_host.h"
#include "util/stats.h"

namespace ting::meas {

struct TingConfig {
  int samples = 200;  ///< per circuit; §4.4 studies this knob
  Duration sample_timeout = Duration::seconds(20);
  Duration build_timeout = Duration::seconds(120);
  /// A failed circuit measurement (build failure, stream error, deadline)
  /// is retried from scratch up to this many total attempts.
  int max_build_attempts = 2;
  /// Retain every raw sample in the result (needed by the sample-size and
  /// stability analyses, Figs 6/7/9/10).
  bool keep_raw_samples = false;

  // ---- adaptive early-stop (§4.4) ------------------------------------------
  /// Stop sampling a circuit once the running minimum has not improved by
  /// more than `epsilon_ms` for `plateau_samples` consecutive echoes, after
  /// at least `min_samples`. `samples` stays the hard upper bound and
  /// `samples_taken` records the actual count. Off by default so library
  /// callers keep full-sampling semantics; the CLI turns it on.
  ///
  /// The defaults are deliberately conservative. §4.4 observes the minimum
  /// converging in ~10 samples on real circuits, but under the simulator's
  /// per-hop exponential queueing jitter the minimum of an h-hop circuit
  /// improves like n^(-1/h) — it keeps crawling down through all 200
  /// samples, and a plateau rule that stops after only ~10 quiet echoes
  /// leaves a multi-millisecond one-sided bias on unlucky streams. A
  /// 120-echo plateau with a 0.01 ms improvement threshold keeps the
  /// worst-case bias under 1 ms on the faulted bench worlds while still
  /// shedding the tail of the budget; lower `plateau_samples` trades
  /// accuracy for speed.
  bool adaptive_samples = false;
  int min_samples = 50;
  int plateau_samples = 120;
  double epsilon_ms = 0.01;
};

/// How a failure should be handled by whoever drives the measurement —
/// the error taxonomy the scan engines react to per class.
enum class ErrorClass {
  kNone = 0,      ///< no failure (ok result)
  /// Worth retrying as-is: build timeouts, SOCKS/ATTACHSTREAM errors,
  /// streams closed mid-sampling, measurement deadlines.
  kTransient,
  /// Retrying cannot help: invalid pair, or a relay the directory has
  /// never vouched for.
  kPermanent,
  /// A target relay is missing from the current consensus (directory
  /// churn); re-resolve against a live consensus before retrying.
  kRelayChurned,
};

const char* to_string(ErrorClass c);

/// Result of measuring one circuit: minimum RTT plus optional raw samples.
struct CircuitMeasurement {
  bool ok = false;
  std::string error;
  ErrorClass error_class = ErrorClass::kNone;
  double min_rtt_ms = 0;
  int samples_taken = 0;
  /// Satisfied from a HalfCircuitCache: no circuit was built or sampled,
  /// min_rtt_ms/samples_taken carry the memoized measurement's values.
  bool memoized = false;
  /// Circuits actually constructed for this measurement (one per attempt;
  /// zero when memoized). A prebuilt circuit adopted from the pipeline
  /// still counts — pipelining hides build latency, it does not skip builds.
  int circuits_built = 0;
  /// Echo samples the adaptive early-stop avoided (target − taken on a
  /// successful early-stopped probe; zero otherwise).
  int samples_saved = 0;
  Duration build_time;   ///< circuit construction + stream attach phase
  Duration sample_time;  ///< echo sampling phase (zero if never built)
  std::vector<double> raw_samples_ms;  ///< only if keep_raw_samples
};

/// Result of a full Ting pair measurement.
struct PairResult {
  dir::Fingerprint x, y;
  bool ok = false;
  std::string error;
  ErrorClass error_class = ErrorClass::kNone;
  bool from_cache = false;  ///< satisfied from the scan cache, not measured
  /// Never probed: a quarantined-terminal relay touches this pair, so the
  /// scan engine deferred it (see quarantine.h). ok stays false but the
  /// pair is not counted as failed either.
  bool deferred = false;
  double rtt_ms = 0;  ///< the Ting estimate of R(x, y)
  CircuitMeasurement cxy, cx, cy;
  Duration wall_time;  ///< virtual time the measurement took

  /// Virtual time spent building circuits / sampling, summed over the
  /// three probes — the per-phase split the scan engine aggregates.
  Duration build_time() const {
    return cxy.build_time + cx.build_time + cy.build_time;
  }
  Duration sample_time() const {
    return cxy.sample_time + cx.sample_time + cy.sample_time;
  }

  /// Optimization observability, summed over the three probes (the scan
  /// engines aggregate these into ScanReport).
  int circuits_built() const {
    return cxy.circuits_built + cx.circuits_built + cy.circuits_built;
  }
  int half_cache_hits() const {
    return (cx.memoized ? 1 : 0) + (cy.memoized ? 1 : 0);
  }
  int samples_saved() const {
    return cxy.samples_saved + cx.samples_saved + cy.samples_saved;
  }

  /// Recompute the estimate using only the first k samples of each circuit
  /// (prefix minima) — the convergence analysis of Fig 6. Requires raw
  /// samples on every probe that was actually sampled (a memoized half falls
  /// back to its cached minimum). k is clamped to each probe's available
  /// count, so early-stopped probes holding fewer than k samples are safe.
  double estimate_with_prefix(std::size_t k) const;
};

class HalfCircuitCache;

class TingMeasurer {
 public:
  TingMeasurer(MeasurementHost& host, TingConfig config = {});
  ~TingMeasurer();  ///< out of line: prebuilts_ holds an incomplete type

  /// Continuation-style measurement of R(x, y): schedules the three circuit
  /// probes on the event loop and invokes `on_done` when the estimate (or an
  /// error) is ready, without ever pumping the loop itself — so a scan
  /// engine can keep many measurers in flight on one loop. One measurement
  /// per measurer at a time (each pair needs the host's full w/z apparatus);
  /// `busy()` reports whether one is outstanding.
  void measure_async(const dir::Fingerprint& x, const dir::Fingerprint& y,
                     std::function<void(PairResult)> on_done);
  /// Back-compat alias for measure_async.
  void measure(const dir::Fingerprint& x, const dir::Fingerprint& y,
               std::function<void(PairResult)> on_done) {
    measure_async(x, y, std::move(on_done));
  }
  bool busy() const { return busy_; }

  /// Blocking convenience: pumps the event loop to completion.
  PairResult measure_blocking(const dir::Fingerprint& x,
                              const dir::Fingerprint& y);

  /// Measure a single circuit (w, relays..., z) and return the min RTT —
  /// exposed for the forwarding-delay estimator and tests. `adaptive`
  /// overrides TingConfig::adaptive_samples for this probe: half-circuit
  /// measurements destined for the cache sample fully, because an
  /// early-stopped minimum would be reused across every pair sharing the
  /// relay, compounding its bias (a one-shot probe amortizes nothing).
  void measure_circuit(const std::vector<dir::Fingerprint>& middle_relays,
                       int samples,
                       std::function<void(CircuitMeasurement)> on_done,
                       std::optional<bool> adaptive = std::nullopt);
  CircuitMeasurement measure_circuit_blocking(
      const std::vector<dir::Fingerprint>& middle_relays, int samples,
      std::optional<bool> adaptive = std::nullopt);

  /// §3.2 strawman baseline: end-to-end circuit (x, y) with x as entry and
  /// y as exit, minus ICMP ping RTTs to x and y. Subject to protocol-
  /// differential error and unaccounted forwarding delays by design.
  void strawman_measure(const dir::Fingerprint& x, const dir::Fingerprint& y,
                        int samples, std::function<void(PairResult)> on_done);
  PairResult strawman_measure_blocking(const dir::Fingerprint& x,
                                       const dir::Fingerprint& y, int samples);

  const TingConfig& config() const { return config_; }
  MeasurementHost& host() { return host_; }

  /// Attach (nullptr to detach) a half-circuit cache. When set,
  /// measure_async consults it before the C_x/C_y probes — a fresh hit
  /// skips the probe and is flagged `memoized` — and stores successful
  /// misses. Entries are keyed under this host's w fingerprint: half-circuit
  /// minima are apparatus-specific (see half_circuit_cache.h). The cache
  /// must outlive every measurement started while attached.
  void set_half_cache(HalfCircuitCache* cache) { half_cache_ = cache; }
  HalfCircuitCache* half_cache() const { return half_cache_; }

  /// Pipelining: start building the C_xy circuit for (x, y) now so a later
  /// measure of that pair adopts the finished circuit instead of
  /// serialising the EXTENDCIRCUIT round trips behind the previous pair's
  /// sampling. Advisory — invalid pairs are ignored and a failed prebuild
  /// falls back to a normal build. At most a couple of prebuilt circuits
  /// are held (the scan engines stay one pair ahead); the oldest is
  /// discarded when the ring is full.
  void prebuild(const dir::Fingerprint& x, const dir::Fingerprint& y);
  /// Close and drop every held prebuilt circuit (scan-end cleanup).
  void discard_prebuilts();
  std::size_t prebuilt_count() const { return prebuilts_.size(); }

  /// Classify a pair-measurement failure: a target missing from the OP's
  /// consensus is kRelayChurned (it vanished under us, or was never there —
  /// the scan engine disambiguates against the scan-start snapshot);
  /// otherwise the circuit-level class stands. Public because the
  /// deterministic scan path decomposes a pair into its three circuit
  /// probes and classifies each probe's failure itself.
  ErrorClass classify_failure(const dir::Fingerprint& x,
                              const dir::Fingerprint& y,
                              ErrorClass circuit_class);

 private:
  struct CircuitProbe;
  struct Prebuilt;
  void run_probe(const std::shared_ptr<CircuitProbe>& probe);
  void start_build(const std::shared_ptr<CircuitProbe>& probe);
  void attach_and_sample(const std::shared_ptr<CircuitProbe>& probe);
  void adopt_prebuilt(const std::shared_ptr<CircuitProbe>& probe,
                      std::uint64_t generation);
  Prebuilt* find_prebuilt(std::uint64_t generation);
  void erase_prebuilt(std::uint64_t generation, bool close_circuit);
  /// One half probe (C_x or C_y): memoized from the cache when fresh,
  /// measured (and stored) otherwise.
  void half_probe(const dir::Fingerprint& fp,
                  std::function<void(CircuitMeasurement)> on_done);
  void measure_circuit_attempt(std::vector<dir::Fingerprint> full_path,
                               int samples, int attempt, bool adaptive,
                               std::function<void(CircuitMeasurement)> on_done);
  void ping_min(IpAddr target, int count,
                std::function<void(std::optional<double>)> on_done);

  MeasurementHost& host_;
  TingConfig config_;
  bool busy_ = false;
  HalfCircuitCache* half_cache_ = nullptr;
  std::vector<std::unique_ptr<Prebuilt>> prebuilts_;
  std::uint64_t prebuilt_generation_ = 0;
};

}  // namespace ting::meas
