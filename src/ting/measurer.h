// TingMeasurer — the paper's core technique (§3.3).
//
// To measure R(x, y):
//  1. build circuit C_xy = (w, x, y, z) via EXTENDCIRCUIT, attach an echo
//     stream (SOCKS CONNECT + 650 STREAM NEW + ATTACHSTREAM), sample the
//     end-to-end RTT N times, keep the minimum;
//  2. likewise for C_x = (w, x, z) and C_y = (w, y, z);
//  3. estimate R(x, y) = R_Cxy − ½·R_Cx − ½·R_Cy, which cancels the
//     measurement host's legs and leaves only R(x,y) + F_x + F_y (Eq. (4)).
//
// The strawman of §3.2 (mixing a Tor circuit with ICMP pings) is also
// implemented, as the baseline whose failure motivates Ting.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ting/measurement_host.h"
#include "util/stats.h"

namespace ting::meas {

struct TingConfig {
  int samples = 200;  ///< per circuit; §4.4 studies this knob
  Duration sample_timeout = Duration::seconds(20);
  Duration build_timeout = Duration::seconds(120);
  /// A failed circuit measurement (build failure, stream error, deadline)
  /// is retried from scratch up to this many total attempts.
  int max_build_attempts = 2;
  /// Retain every raw sample in the result (needed by the sample-size and
  /// stability analyses, Figs 6/7/9/10).
  bool keep_raw_samples = false;
};

/// How a failure should be handled by whoever drives the measurement —
/// the error taxonomy the scan engines react to per class.
enum class ErrorClass {
  kNone = 0,      ///< no failure (ok result)
  /// Worth retrying as-is: build timeouts, SOCKS/ATTACHSTREAM errors,
  /// streams closed mid-sampling, measurement deadlines.
  kTransient,
  /// Retrying cannot help: invalid pair, or a relay the directory has
  /// never vouched for.
  kPermanent,
  /// A target relay is missing from the current consensus (directory
  /// churn); re-resolve against a live consensus before retrying.
  kRelayChurned,
};

const char* to_string(ErrorClass c);

/// Result of measuring one circuit: minimum RTT plus optional raw samples.
struct CircuitMeasurement {
  bool ok = false;
  std::string error;
  ErrorClass error_class = ErrorClass::kNone;
  double min_rtt_ms = 0;
  int samples_taken = 0;
  Duration build_time;   ///< circuit construction + stream attach phase
  Duration sample_time;  ///< echo sampling phase (zero if never built)
  std::vector<double> raw_samples_ms;  ///< only if keep_raw_samples
};

/// Result of a full Ting pair measurement.
struct PairResult {
  dir::Fingerprint x, y;
  bool ok = false;
  std::string error;
  ErrorClass error_class = ErrorClass::kNone;
  bool from_cache = false;  ///< satisfied from the scan cache, not measured
  double rtt_ms = 0;  ///< the Ting estimate of R(x, y)
  CircuitMeasurement cxy, cx, cy;
  Duration wall_time;  ///< virtual time the measurement took

  /// Virtual time spent building circuits / sampling, summed over the
  /// three probes — the per-phase split the scan engine aggregates.
  Duration build_time() const {
    return cxy.build_time + cx.build_time + cy.build_time;
  }
  Duration sample_time() const {
    return cxy.sample_time + cx.sample_time + cy.sample_time;
  }

  /// Recompute the estimate using only the first k samples of each circuit
  /// (prefix minima) — the convergence analysis of Fig 6. Requires raw
  /// samples. k is clamped to the available count.
  double estimate_with_prefix(std::size_t k) const;
};

class TingMeasurer {
 public:
  TingMeasurer(MeasurementHost& host, TingConfig config = {});

  /// Continuation-style measurement of R(x, y): schedules the three circuit
  /// probes on the event loop and invokes `on_done` when the estimate (or an
  /// error) is ready, without ever pumping the loop itself — so a scan
  /// engine can keep many measurers in flight on one loop. One measurement
  /// per measurer at a time (each pair needs the host's full w/z apparatus);
  /// `busy()` reports whether one is outstanding.
  void measure_async(const dir::Fingerprint& x, const dir::Fingerprint& y,
                     std::function<void(PairResult)> on_done);
  /// Back-compat alias for measure_async.
  void measure(const dir::Fingerprint& x, const dir::Fingerprint& y,
               std::function<void(PairResult)> on_done) {
    measure_async(x, y, std::move(on_done));
  }
  bool busy() const { return busy_; }

  /// Blocking convenience: pumps the event loop to completion.
  PairResult measure_blocking(const dir::Fingerprint& x,
                              const dir::Fingerprint& y);

  /// Measure a single circuit (w, relays..., z) and return the min RTT —
  /// exposed for the forwarding-delay estimator and tests.
  void measure_circuit(const std::vector<dir::Fingerprint>& middle_relays,
                       int samples,
                       std::function<void(CircuitMeasurement)> on_done);
  CircuitMeasurement measure_circuit_blocking(
      const std::vector<dir::Fingerprint>& middle_relays, int samples);

  /// §3.2 strawman baseline: end-to-end circuit (x, y) with x as entry and
  /// y as exit, minus ICMP ping RTTs to x and y. Subject to protocol-
  /// differential error and unaccounted forwarding delays by design.
  void strawman_measure(const dir::Fingerprint& x, const dir::Fingerprint& y,
                        int samples, std::function<void(PairResult)> on_done);
  PairResult strawman_measure_blocking(const dir::Fingerprint& x,
                                       const dir::Fingerprint& y, int samples);

  const TingConfig& config() const { return config_; }
  MeasurementHost& host() { return host_; }

 private:
  struct CircuitProbe;
  /// Classify a pair-measurement failure: a target missing from the OP's
  /// consensus is kRelayChurned (it vanished under us, or was never there —
  /// the scan engine disambiguates against the scan-start snapshot);
  /// otherwise the circuit-level class stands.
  ErrorClass classify_failure(const dir::Fingerprint& x,
                              const dir::Fingerprint& y,
                              ErrorClass circuit_class);
  void run_probe(const std::shared_ptr<CircuitProbe>& probe);
  void measure_circuit_attempt(std::vector<dir::Fingerprint> full_path,
                               int samples, int attempt,
                               std::function<void(CircuitMeasurement)> on_done);
  void ping_min(IpAddr target, int count,
                std::function<void(std::optional<double>)> on_done);

  MeasurementHost& host_;
  TingConfig config_;
  bool busy_ = false;
};

}  // namespace ting::meas
