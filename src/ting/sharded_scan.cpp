#include "ting/sharded_scan.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <tuple>

#include "ting/half_circuit_cache.h"
#include "util/assert.h"

namespace ting::meas {

namespace {

/// Merge shard `r` into `merged`. Counters sum; concurrency high-water
/// marks sum across shards (the machines really do run at once) except the
/// per-relay mark, which is a per-world invariant and takes the max;
/// virtual_time is the max because shard clocks advance independently.
void merge_report(ScanReport& merged, const ScanReport& r) {
  merged.measured += r.measured;
  merged.from_cache += r.from_cache;
  merged.failed += r.failed;
  merged.failed_transient += r.failed_transient;
  merged.failed_permanent += r.failed_permanent;
  merged.failed_churned += r.failed_churned;
  merged.churn_reresolved += r.churn_reresolved;
  merged.retries += r.retries;
  merged.circuits_built += r.circuits_built;
  merged.half_cache_hits += r.half_cache_hits;
  merged.samples_saved += r.samples_saved;
  merged.time_building += r.time_building;
  merged.time_sampling += r.time_sampling;
  merged.world_construct_ms += r.world_construct_ms;
  merged.reseeds += r.reseeds;
  merged.max_in_flight += r.max_in_flight;
  merged.max_per_relay_in_flight =
      std::max(merged.max_per_relay_in_flight, r.max_per_relay_in_flight);
  merged.virtual_time = std::max(merged.virtual_time, r.virtual_time);
  merged.deferred += r.deferred;
  merged.probation_probes += r.probation_probes;
  merged.interrupted_pairs += r.interrupted_pairs;
  merged.interrupted = merged.interrupted || r.interrupted;
  if (merged.retry_histogram.size() < r.retry_histogram.size())
    merged.retry_histogram.resize(r.retry_histogram.size(), 0);
  for (std::size_t k = 0; k < r.retry_histogram.size(); ++k)
    merged.retry_histogram[k] += r.retry_histogram[k];
  merged.failed_pairs.insert(merged.failed_pairs.end(), r.failed_pairs.begin(),
                             r.failed_pairs.end());
  merged.deferred_pairs.insert(merged.deferred_pairs.end(),
                               r.deferred_pairs.begin(),
                               r.deferred_pairs.end());
  merged.quarantine_events.insert(merged.quarantine_events.end(),
                                  r.quarantine_events.begin(),
                                  r.quarantine_events.end());
  merged.fault_events.insert(merged.fault_events.end(), r.fault_events.begin(),
                             r.fault_events.end());
}

}  // namespace

ShardedScanner::ShardedScanner(ShardWorldFactory factory)
    : factory_(std::move(factory)) {
  TING_CHECK_MSG(factory_ != nullptr, "sharded scan needs a world factory");
}

ScanReport ShardedScanner::scan(const std::vector<dir::Fingerprint>& nodes,
                                RttMatrix& out,
                                const ShardedScanOptions& options,
                                const ScanProgress& progress) {
  // Canonical all-pairs worklist; scan_pairs does the real work.
  ParallelScanner::PairList all;
  if (!nodes.empty()) all.reserve(nodes.size() * (nodes.size() - 1) / 2);
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j)
      all.emplace_back(i, j);
  return scan_pairs(nodes, all, out, options, progress);
}

ScanReport ShardedScanner::scan_pairs(const std::vector<dir::Fingerprint>& nodes,
                                      const ParallelScanner::PairList& all,
                                      RttMatrix& out,
                                      const ShardedScanOptions& options,
                                      const ScanProgress& progress) {
  TING_CHECK(options.shards >= 1);
  const std::size_t shards = options.shards;

  // Partition round-robin so every shard gets a representative mix of
  // relays (block partitioning would hand one shard all the pairs of the
  // hottest relays).
  std::vector<ParallelScanner::PairList> slices(shards);
  for (std::size_t p = 0; p < all.size(); ++p)
    slices[p % shards].push_back(all[p]);

  struct ShardResult {
    ScanReport report;
    RttMatrix matrix;
    HalfCircuitCache half_cache;  ///< shard-private copy of the caller's cache
    std::exception_ptr error;
  };
  std::vector<ShardResult> results(shards);
  const std::size_t total = all.size();
  std::atomic<std::size_t> global_done{0};
  std::mutex progress_mu;

  auto run_shard = [&](std::size_t s) {
    try {
      const auto construct_start = std::chrono::steady_clock::now();
      std::unique_ptr<ShardWorld> world = factory_(s);
      TING_CHECK_MSG(world != nullptr, "shard factory returned null");
      const double construct_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - construct_start)
              .count();
      // Seed the shard-private matrix with the caller's entries so a
      // resumed scan (matrix preloaded from the journal) skips completed
      // pairs in every shard, not just in the merged output.
      results[s].matrix = out;
      ParallelScanner scanner(world->measurers(), results[s].matrix);
      ParallelScanOptions opt = options;  // slice off the shard fields
      if (options.half_cache != nullptr) {
        // Each worker measures against a private copy — threads never share
        // the cache — and the freshest entries are merged back after join.
        results[s].half_cache = *options.half_cache;
        opt.half_cache = &results[s].half_cache;
      }
      if (options.deterministic)
        opt.reseed_world = [&world](std::uint64_t seed) {
          world->reseed(seed);
        };
      if (opt.live_consensus == nullptr)
        opt.live_consensus = world->live_consensus();
      if (opt.fault_plan == nullptr) opt.fault_plan = world->fault_plan();
      ScanProgress shard_progress;
      if (progress)
        shard_progress = [&](std::size_t, std::size_t, const PairResult& r) {
          const std::size_t d = global_done.fetch_add(1) + 1;
          const std::lock_guard<std::mutex> lock(progress_mu);
          progress(d, total, r);
        };
      results[s].report =
          scanner.scan_pairs(nodes, slices[s], opt, shard_progress);
      results[s].report.world_construct_ms += construct_ms;
    } catch (...) {
      results[s].error = std::current_exception();
    }
  };

  if (shards == 1) {
    run_shard(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) workers.emplace_back(run_shard, s);
    for (std::thread& t : workers) t.join();
  }

  for (const ShardResult& r : results)
    if (r.error) std::rethrow_exception(r.error);

  ScanReport merged;
  merged.pairs_total = total;
  for (const ShardResult& r : results) merge_report(merged, r.report);
  // Shard-count-independent ordering for the concatenated lists.
  std::sort(merged.failed_pairs.begin(), merged.failed_pairs.end(),
            [](const FailedPair& a, const FailedPair& b) {
              return std::tie(a.a, a.b) < std::tie(b.a, b.b);
            });
  std::sort(merged.deferred_pairs.begin(), merged.deferred_pairs.end(),
            [](const DeferredPair& a, const DeferredPair& b) {
              return std::tie(a.a, a.b) < std::tie(b.a, b.b);
            });
  std::stable_sort(merged.quarantine_events.begin(),
                   merged.quarantine_events.end(),
                   [](const QuarantineEvent& a, const QuarantineEvent& b) {
                     return std::tie(a.at, a.relay) < std::tie(b.at, b.relay);
                   });
  std::stable_sort(merged.fault_events.begin(), merged.fault_events.end(),
                   [](const simnet::FaultPlan::Event& a,
                      const simnet::FaultPlan::Event& b) { return a.at < b.at; });
  for (const ShardResult& r : results) out.merge(r.matrix);
  if (options.half_cache != nullptr)
    for (const ShardResult& r : results)
      options.half_cache->merge_freshest(r.half_cache);
  return merged;
}

}  // namespace ting::meas
