#include "ting/forwarding_delay.h"

#include <cmath>
#include <limits>

#include "util/assert.h"

namespace ting::meas {

ForwardingDelayEstimator::ForwardingDelayEstimator(TingMeasurer& measurer,
                                                   int probes)
    : measurer_(measurer), probes_(probes) {
  TING_CHECK(probes_ > 0);
}

void ForwardingDelayEstimator::tcp_connect_min(
    Endpoint target, int count,
    std::function<void(std::optional<double>)> on_done) {
  MeasurementHost& host = measurer_.host();
  auto best = std::make_shared<double>(std::numeric_limits<double>::infinity());
  auto remaining = std::make_shared<int>(count);
  auto step = std::make_shared<std::function<void()>>();
  *step = [&host, target, best, remaining, step, on_done]() {
    const TimePoint t0 = host.loop().now();
    host.net().connect(
        host.host(), target, simnet::Protocol::kTcp,
        [&host, t0, best, remaining, step, on_done](simnet::ConnPtr conn) {
          *best = std::min(*best, (host.loop().now() - t0).ms());
          conn->close();
          if (--*remaining > 0) {
            (*step)();
            return;
          }
          on_done(std::isfinite(*best) ? std::optional<double>(*best)
                                       : std::nullopt);
          *step = {};
        },
        [remaining, step, on_done](const std::string&) {
          if (--*remaining > 0) {
            (*step)();
            return;
          }
          on_done(std::nullopt);
          *step = {};
        });
  };
  (*step)();
}

void ForwardingDelayEstimator::measure(
    const dir::Fingerprint& x,
    std::function<void(ForwardingDelayResult)> on_done) {
  auto result = std::make_shared<ForwardingDelayResult>();
  result->relay = x;
  MeasurementHost& host = measurer_.host();

  const dir::RelayDescriptor* dx = host.op().consensus().find(x);
  if (dx == nullptr) {
    result->error = "unknown relay";
    on_done(std::move(*result));
    return;
  }
  const IpAddr x_ip = dx->address;
  const Endpoint x_or{dx->address, dx->or_port};
  const double loopback_ms =
      host.net().latency().base_rtt(host.host(), host.host()).ms();

  // Step 1: C1 = (w, z).
  measurer_.measure_circuit({}, probes_, [this, result, x_ip, x_or,
                                          loopback_ms,
                                          on_done = std::move(on_done)](
                                             CircuitMeasurement c1) mutable {
    if (!c1.ok) {
      result->error = "C1: " + c1.error;
      on_done(std::move(*result));
      return;
    }
    // The (w,z) echo round trip crosses three loopback links (s-w, w-z,
    // z-d) once each; what remains is 2F_w + 2F_z (each relay forwards the
    // probe once per direction).
    const double f_local_sum = std::max(0.0, c1.min_rtt_ms - 3 * loopback_ms);
    result->f_local_ms = f_local_sum / 4;  // per relay, per direction

    // Step 2: C2 = (w, x, z).
    measurer_.measure_circuit(
        {result->relay}, probes_,
        [this, result, x_ip, x_or, loopback_ms, f_local_sum,
         on_done = std::move(on_done)](CircuitMeasurement c2) mutable {
          if (!c2.ok) {
            result->error = "C2: " + c2.error;
            on_done(std::move(*result));
            return;
          }
          // R_C2 = 2·lb + 2·R(h,x) + 2F_w + 2F_x + 2F_z  (links s-w and z-d
          // are loopbacks; w-x and x-z both span h<->x), so
          //   2F_x = R_C2 − 2·lb − (2F_w + 2F_z) − 2·R̃(h,x).
          const double base =
              c2.min_rtt_ms - f_local_sum - 2 * loopback_ms;

          // Step 3: the non-Tor probes. The continuation lives in shared
          // state because the ping loop re-enters its own closure.
          MeasurementHost& host = measurer_.host();
          auto after_icmp =
              std::make_shared<std::function<void(std::optional<double>)>>(
                  [this, result, base, x_or, on_done = std::move(on_done)](
                      std::optional<double> icmp_min) mutable {
                    if (!icmp_min.has_value()) {
                      result->error = "ping failed";
                      on_done(std::move(*result));
                      return;
                    }
                    const double icmp_rtt = *icmp_min;
                    tcp_connect_min(
                        x_or, probes_,
                        [result, base, icmp_rtt, on_done = std::move(on_done)](
                            std::optional<double> tcp_min) mutable {
                          if (!tcp_min.has_value()) {
                            result->error = "tcp probe failed";
                            on_done(std::move(*result));
                            return;
                          }
                          result->icmp_based_ms = (base - 2 * icmp_rtt) / 2;
                          result->tcp_based_ms = (base - 2 * *tcp_min) / 2;
                          result->ok = true;
                          on_done(std::move(*result));
                        });
                  });
          auto icmp_best = std::make_shared<double>(
              std::numeric_limits<double>::infinity());
          auto icmp_remaining = std::make_shared<int>(probes_);
          auto icmp_step = std::make_shared<std::function<void()>>();
          *icmp_step = [&host, x_ip, icmp_best, icmp_remaining, icmp_step,
                        after_icmp]() {
            host.net().ping(
                host.host(), x_ip,
                [icmp_best, icmp_remaining, icmp_step,
                 after_icmp](std::optional<Duration> rtt) {
                  if (rtt.has_value())
                    *icmp_best = std::min(*icmp_best, rtt->ms());
                  if (--*icmp_remaining > 0) {
                    (*icmp_step)();
                    return;
                  }
                  (*after_icmp)(std::isfinite(*icmp_best)
                                    ? std::optional<double>(*icmp_best)
                                    : std::nullopt);
                  *icmp_step = {};  // break the self-reference cycle
                });
          };
          (*icmp_step)();
        });
  });
}

ForwardingDelayResult ForwardingDelayEstimator::measure_blocking(
    const dir::Fingerprint& x) {
  std::optional<ForwardingDelayResult> out;
  measure(x, [&out](ForwardingDelayResult r) { out = std::move(r); });
  measurer_.host().loop().run_while_waiting_for(
      [&out]() { return out.has_value(); }, Duration::seconds(36000));
  TING_CHECK_MSG(out.has_value(), "forwarding delay measurement stalled");
  return std::move(*out);
}

}  // namespace ting::meas
