// HalfCircuitCache — memoized half-circuit measurements (the R_Cx / R_Cy
// terms of Eq. (4)).
//
// A Ting pair measurement builds three circuits, but C_x = (w, x, z) and
// C_y = (w, y, z) depend on a single target relay plus the fixed
// measurement apparatus — so an n-node all-pairs scan re-measures every
// half circuit ~n−1 times. Memoizing R_Cx per relay lets the measurer skip
// the C_x/C_y probes on a fresh hit and cuts per-pair cost from three full
// circuit measurements toward one, without touching Eq. (4)'s cancellation:
// the cached value estimates exactly the same quantity (2·R(h,x) + F_w +
// 2·F_x + F_z + local legs) the skipped probe would have.
//
// Entries are keyed by the measuring host's w fingerprint AND the target
// relay: path latency is drawn per host pair, so a half-circuit minimum
// observed from one measurement host is not valid for another even when
// both sit in the same rack. Staleness mirrors RttMatrix::is_fresh
// (virtual-time timestamps, max-age TTL), persistence uses the same strict
// CSV idiom, and a churned relay's entries are dropped when the scan
// engines re-resolve it — a relay that left and rejoined the consensus may
// have moved.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "dir/fingerprint.h"
#include "util/time.h"

namespace ting::meas {

class HalfCircuitCache {
 public:
  struct Entry {
    double rtt_ms = 0;
    TimePoint measured_at;
    int samples = 0;
  };

  explicit HalfCircuitCache(
      Duration max_age = Duration::seconds(7 * 24 * 3600))
      : max_age_(max_age) {}

  Duration max_age() const { return max_age_; }
  void set_max_age(Duration d) { max_age_ = d; }

  /// Record a half-circuit minimum measured by apparatus `host_w` (its w
  /// relay's fingerprint) through `relay`. Overwrites older entries.
  void store(const dir::Fingerprint& host_w, const dir::Fingerprint& relay,
             double rtt_ms, TimePoint measured_at, int samples);

  const Entry* lookup(const dir::Fingerprint& host_w,
                      const dir::Fingerprint& relay) const;
  /// The entry for (host_w, relay) if it exists and was measured within
  /// max_age of `now`; nullptr otherwise.
  const Entry* fresh(const dir::Fingerprint& host_w,
                     const dir::Fingerprint& relay, TimePoint now) const;

  /// Drop one apparatus's entry. Returns whether one existed.
  bool erase(const dir::Fingerprint& host_w, const dir::Fingerprint& relay);
  /// Churn invalidation: drop `relay`'s entries under every apparatus (its
  /// descriptor changed; all memoized minima are suspect). Returns the
  /// number of entries dropped.
  std::size_t erase_relay(const dir::Fingerprint& relay);

  /// Copy every entry of `other` into this cache, keeping whichever side's
  /// entry is fresher (larger measured_at; ties keep the existing entry).
  /// This is the sharded scanner's post-join merge: deterministic shards
  /// store identical values with zero timestamps, so the merge is
  /// order-independent there by construction.
  void merge_freshest(const HalfCircuitCache& other);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  /// Observer invoked after every store() — the scan journal's hook for
  /// recording half-circuit measurements as they land. Deliberately NOT
  /// fired by from_csv / merge_freshest / copy construction: those move
  /// already-recorded entries around, and re-observing them would duplicate
  /// journal records. The observer is copied along with the cache, so the
  /// sharded engine's per-shard copies keep journaling (the journal itself
  /// is thread-safe).
  using StoreObserver =
      std::function<void(const dir::Fingerprint& host_w,
                         const dir::Fingerprint& relay, const Entry& entry)>;
  void set_store_observer(StoreObserver observer) {
    store_observer_ = std::move(observer);
  }

  /// CSV with header "host_fp,relay_fp,rtt_ms,measured_at_ns,samples";
  /// ordered-map iteration keeps the output independent of insertion order.
  std::string to_csv() const;
  static HalfCircuitCache from_csv(const std::string& csv);
  void save_csv(const std::string& path) const;
  static HalfCircuitCache load_csv(const std::string& path);

  /// Compact exact-bits binary image (magic "TINGHCX1", u64 count, fixed
  /// 60-byte little-endian records in key order). CSV prints 6 significant
  /// digits, which perturbs resumed values; the daemon checkpoints halves in
  /// this format so a resumed run memoizes bit-identical R_Cx values and its
  /// final matrix matches an uninterrupted run byte-for-byte. Loading does
  /// not fire the store observer (same rationale as from_csv). max_age is
  /// not serialized — it is the consumer's policy, not the data's.
  std::string to_bin() const;
  static HalfCircuitCache from_bin(const std::string& bin);
  void save_bin(const std::string& path) const;
  static HalfCircuitCache load_bin(const std::string& path);

  static constexpr char kBinMagic[] = "TINGHCX1";

 private:
  using Key = std::pair<dir::Fingerprint, dir::Fingerprint>;  // (host_w, relay)
  std::map<Key, Entry> entries_;
  Duration max_age_;
  StoreObserver store_observer_;
};

}  // namespace ting::meas
