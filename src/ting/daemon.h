// ScanDaemon — the continuous scan service: "a scan that never finishes".
//
// The batch engines answer "measure these pairs once"; the daemon runs them
// forever in *epochs* against a churning consensus. Each epoch it
//
//   1. advances the consensus (the environment applies whatever churn the
//      epoch brings and reports the current relay set),
//   2. plans a delta worklist (delta_scan.h): never-measured pairs first,
//      then TTL-expired ones oldest-first, cut to the per-epoch budget,
//   3. runs the worklist through ShardedScanner/ParallelScanner in
//      deterministic mode with a per-epoch pair seed, journaling every
//      result as it lands (scan_journal.h),
//   4. folds the epoch's results into the persistent SparseRttMatrix,
//      stamped with the epoch clock, and atomically checkpoints the matrix,
//      the half-circuit cache, and the daemon state file.
//
// Crash safety: SIGTERM or kill -9 at *any* point resumes into the same
// epoch. The state file records the next epoch to run; the journal replays
// the interrupted epoch's completed pairs; the half-cache checkpoint
// restores memoized half circuits from earlier epochs bit-exactly. Because
// the engine is deterministic (every estimate a pure function of world
// seed, epoch pair seed, and the pair), the resumed run re-measures only
// the missing pairs and produces a final matrix byte-identical to one from
// an uninterrupted run.
//
// Epoch clock: the deterministic engine records zero timestamps (shard
// clocks are unrelated), so the daemon keeps its own virtual clock — epoch
// e completes at (e+1) * epoch_interval — and stamps absorbed results with
// it. TTL decisions therefore depend only on epoch numbers, never on which
// process measured a pair or when it restarted.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dir/fingerprint.h"
#include "ting/delta_scan.h"
#include "ting/half_circuit_cache.h"
#include "ting/scheduler.h"
#include "ting/sparse_matrix.h"
#include "util/time.h"

namespace ting::meas {

/// The daemon's window onto a (simulated or real) Tor network: consensus
/// churn plus the measurement engine. scenario/ provides testbed-backed
/// implementations; keeping the interface here keeps ting_core free of
/// scenario dependencies.
class DaemonEnvironment {
 public:
  virtual ~DaemonEnvironment() = default;

  /// Advance the consensus to epoch `e` (apply the churn that epoch
  /// brings). Called exactly once per epoch in increasing order; on resume
  /// the daemon replays epochs 0..E-1 through this before re-entering epoch
  /// E, so implementations must derive churn deterministically from the
  /// epoch number.
  virtual void advance_epoch(std::size_t epoch) = 0;

  /// The current consensus relay set, in a deterministic order.
  virtual std::vector<dir::Fingerprint> nodes() = 0;

  /// Run one epoch's worklist. `options` carries the daemon's journal,
  /// stop flag, half cache, and per-epoch pair seed; the environment adds
  /// its world hooks (reseed, live consensus, shard fan-out) and returns
  /// the engine report. Results land in `epoch_matrix` (pre-seeded with
  /// journal-recovered pairs on resume).
  virtual ScanReport scan_pairs(const std::vector<dir::Fingerprint>& nodes,
                                const ParallelScanner::PairList& pairs,
                                RttMatrix& epoch_matrix,
                                const ScanOptions& options,
                                const ScanProgress& progress) = 0;
};

/// Post-checkpoint hook: invoked after an epoch's artifacts are durable on
/// disk (matrix + halves saved, journal removed, state bumped) with the
/// persistent matrix, the epoch's consensus, the relays that gained or
/// refreshed at least one pair this epoch, and the epoch stats. The serving
/// layer (serve::PathServer) publishes snapshots from here; keeping it a
/// std::function keeps ting_core free of serving dependencies.
struct EpochStats;
using CheckpointHook = std::function<void(
    const SparseRttMatrix& matrix, const std::vector<dir::Fingerprint>& nodes,
    const std::vector<dir::Fingerprint>& changed, const EpochStats& stats)>;

struct DaemonOptions {
  /// Epochs to run before returning (a real deployment would pass a large
  /// number and rely on SIGTERM + --resume; tests pass a handful).
  std::size_t epochs = 24;
  /// Virtual wall time per epoch — the daemon clock's tick.
  Duration epoch_interval = Duration::seconds(3600);
  /// Refresh TTL for delta planning (see DeltaPlanOptions::ttl).
  Duration ttl = Duration::seconds(7 * 24 * 3600);
  /// Per-epoch measurement budget (pairs; 0 = unlimited).
  std::size_t budget = 0;
  /// Coverage the run is judged against (fresh pairs / current pairs).
  double coverage_target = 0.99;

  /// Persistent sparse matrix path (binary format; required). The state
  /// file lives at out + ".state", the journal at out + ".journal", the
  /// half-cache checkpoint at out + ".halves".
  std::string out;
  /// Resume from the state file + journal instead of starting fresh.
  bool resume = false;
  /// Identifies the world/config this store belongs to; recorded in the
  /// state file and verified on resume so a store is never resumed against
  /// a different testbed or flag set.
  std::string config_tag;

  /// Master seed; epoch e scans with pair_seed = epoch_pair_seed(seed, e).
  std::uint64_t seed = 1;
  /// Memoize half circuits across pairs and epochs (checkpointed).
  bool half_cache = true;
  /// Plan epochs with the IncrementalDeltaPlanner (O(churn + expired +
  /// budget) per steady-state epoch) instead of re-running plan_delta's full
  /// C(n,2) census. The two produce identical plans (pinned by tests); this
  /// knob exists so parity can keep being checked and regressions bisected.
  bool incremental_planner = true;
  /// Write the per-pair fsync'd journal. Disabling it trades pair-granular
  /// crash resume for epoch-granular resume (the state file and matrix
  /// checkpoint still make kill -9 safe at epoch boundaries) — at 6,000
  /// relays the per-record fsync dominates an epoch's wall time.
  bool journal = true;
  /// Graceful-shutdown flag (from a signal handler). Checked between pairs
  /// (via the engine) and between epochs.
  const std::atomic<bool>* stop = nullptr;
  /// Engine template for each epoch's scan: attempts, ordering, quarantine,
  /// etc. The daemon overrides journal/stop/half_cache/pair_seed/max_age
  /// per epoch.
  ScanOptions engine;
  /// Invoked after each completed epoch's checkpoint is durable; see
  /// CheckpointHook. Empty = no serving layer attached.
  CheckpointHook on_checkpoint;
};

struct EpochStats {
  std::size_t epoch = 0;
  std::size_t nodes = 0;
  std::size_t joined = 0;  ///< relays that entered the consensus this epoch
  std::size_t left = 0;    ///< relays that departed
  DeltaPlan plan;
  ScanReport scan;
  /// Pairs recovered from the journal when this epoch resumed a crash.
  std::size_t journal_recovered = 0;
  /// Post-epoch freshness census over the current consensus.
  SparseRttMatrix::CoverageCount coverage;
  /// Persistent store size after this epoch's absorb (pairs + estimated
  /// heap bytes) — the per-epoch memory trajectory at 18M-entry scale.
  std::size_t matrix_pairs = 0;
  std::size_t matrix_bytes = 0;
};

struct DaemonReport {
  std::vector<EpochStats> epochs;  ///< epochs run by *this* process
  std::size_t epochs_completed = 0;  ///< lifetime total, including prior runs
  bool interrupted = false;        ///< the stop flag fired mid-run
  double final_coverage = 0;
  bool converged = false;          ///< final_coverage >= coverage_target
  std::size_t matrix_pairs = 0;
  std::size_t matrix_bytes = 0;    ///< estimated store heap footprint
};

/// Per-epoch progress callback (invoked after each completed epoch).
using EpochCallback = std::function<void(const EpochStats&)>;

class ScanDaemon {
 public:
  ScanDaemon(DaemonEnvironment& env, DaemonOptions options);

  /// Run epochs until the configured count is reached or the stop flag
  /// fires. Blocking; returns the report either way. Throws CheckError on
  /// unusable state (missing state file with --resume, config mismatch,
  /// corrupt matrix).
  DaemonReport run(const EpochCallback& on_epoch = {},
                   const ScanProgress& progress = {});

  const SparseRttMatrix& matrix() const { return matrix_; }

  /// The per-epoch engine pair seed: a well-mixed function of the master
  /// seed and the epoch number, so every epoch's estimates are independent
  /// and a resumed epoch reseeds identically.
  static std::uint64_t epoch_pair_seed(std::uint64_t seed, std::size_t epoch);

  /// The daemon clock at the end of epoch `e` — what absorbed results are
  /// stamped with and TTL planning measures against.
  static TimePoint epoch_clock(Duration interval, std::size_t epoch) {
    return TimePoint{} + interval * static_cast<std::int64_t>(epoch + 1);
  }

  static std::string state_path(const std::string& out) { return out + ".state"; }
  static std::string journal_path(const std::string& out) {
    return out + ".journal";
  }
  static std::string halves_path(const std::string& out) {
    return out + ".halves";
  }

 private:
  struct State {
    std::uint64_t seed = 0;
    std::int64_t epoch_interval_ns = 0;
    std::int64_t ttl_ns = 0;
    std::uint64_t budget = 0;
    std::string config_tag;
    std::size_t next_epoch = 0;
  };
  void write_state(std::size_t next_epoch) const;
  State load_state() const;

  DaemonEnvironment& env_;
  DaemonOptions options_;
  SparseRttMatrix matrix_;
  HalfCircuitCache half_cache_;
  /// Carries the missing-pair backlog across epochs; unprimed at process
  /// start, so the first epoch (fresh or resumed) runs one full census.
  IncrementalDeltaPlanner planner_;
};

}  // namespace ting::meas
