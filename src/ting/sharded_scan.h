// ShardedScanner — the multi-threaded scan engine. The all-pairs worklist
// is partitioned round-robin across W worker threads; each worker owns a
// complete, independent simulation world (its own event loop, network,
// testbed clone, and measurement pool) built by a ShardWorldFactory, runs a
// ParallelScanner over its slice, and the per-shard ScanReports and
// RttMatrix fragments are merged after the threads join.
//
// Threads never share mutable state: every world lives entirely on the
// thread that built it, and merging happens after join. That is what makes
// the engine trivially clean under TSan — the only cross-thread traffic is
// the (mutex-guarded) progress callback and the per-shard result slots,
// which each have exactly one writer.
//
// Determinism: with ShardedScanOptions::deterministic (the default), every
// pair's estimate is a pure function of (world construction seed,
// pair_seed, x, y) — see ScanOptions::reseed_world — so the merged matrix
// is bit-identical for any shard count W, given worlds built from the same
// master seed. With deterministic=false, each shard runs its measurement
// pool concurrently (faster when the factory provisions K > 1 measurers per
// world) but output is only stable for a fixed (W, K).
//
// Caveat: fault plans fire at per-shard virtual times, so bit-identity
// across shard counts is only guaranteed for fault-free scans.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "ting/scheduler.h"

namespace ting::meas {

/// One shard's private simulation world. The factory constructs it on the
/// worker thread, the scanner drives it there, and it is destroyed there;
/// implementations need no synchronisation.
class ShardWorld {
 public:
  virtual ~ShardWorld() = default;

  /// The world's measurement pool (>= 1 measurer, all sharing the world's
  /// event loop, already started). Pointers stay valid for the world's
  /// lifetime.
  virtual std::vector<TingMeasurer*> measurers() = 0;

  /// Reset every stochastic component of the world (network jitter rng,
  /// relay queue rngs, measurement-apparatus rngs) to a deterministic
  /// function of `seed`. Fingerprints, sessions, and topology are untouched.
  virtual void reseed(std::uint64_t seed) = 0;

  /// Optional live consensus for churn re-resolution (see ScanOptions).
  virtual const dir::Consensus* live_consensus() { return nullptr; }
  /// Optional fault plan active in this world (annotation + scheduling
  /// already installed by the factory).
  virtual const simnet::FaultPlan* fault_plan() { return nullptr; }
};

/// Builds shard `shard`'s world. Invoked on the worker thread itself, so W
/// worlds construct in parallel and every world is born on the thread that
/// will drive it.
using ShardWorldFactory =
    std::function<std::unique_ptr<ShardWorld>(std::size_t shard)>;

struct ShardedScanOptions : ParallelScanOptions {
  /// Worker threads = independent shard worlds.
  std::size_t shards = 1;
  /// Per-pair world reseeding for bit-identical output across shard counts
  /// (strictly serial within each shard). When false, each shard's pool
  /// runs concurrently and only (shards, pool size)-stability holds.
  bool deterministic = true;
};

class ShardedScanner {
 public:
  explicit ShardedScanner(ShardWorldFactory factory);

  /// Measure all unordered pairs of `nodes`, fanned out across
  /// options.shards worker threads, and merge the results into `out`.
  /// Blocks until every shard joins; a shard's exception is rethrown after
  /// all threads have been joined. `progress` (if set) is invoked under a
  /// mutex with globally-aggregated counts, in completion order.
  ScanReport scan(const std::vector<dir::Fingerprint>& nodes, RttMatrix& out,
                  const ShardedScanOptions& options = {},
                  const ScanProgress& progress = {});

  /// Measure an explicit worklist of index pairs into `nodes` — the scan
  /// daemon's entry point (each epoch hands over the delta planner's
  /// worklist rather than all pairs). Same partitioning, merge, and
  /// determinism rules as scan(), which is this method over the full
  /// all-pairs list.
  ScanReport scan_pairs(const std::vector<dir::Fingerprint>& nodes,
                        const ParallelScanner::PairList& pairs, RttMatrix& out,
                        const ShardedScanOptions& options = {},
                        const ScanProgress& progress = {});

 private:
  ShardWorldFactory factory_;
};

}  // namespace ting::meas
