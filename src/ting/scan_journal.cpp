#include "ting/scan_journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "util/assert.h"
#include "util/atomic_file.h"
#include "util/bytes.h"

namespace ting::meas {

namespace {

/// FNV-1a 64 — the per-record checksum. Not cryptographic; it only needs to
/// catch torn writes and bit rot in the tail of a crashed journal.
std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Exact-bits serialization of a double: the CSV artifacts print 6
/// significant digits, so decimal round-tripping would perturb resumed
/// estimates; the journal stores the IEEE-754 bit pattern.
std::string rtt_bits(double v) {
  return hex64(std::bit_cast<std::uint64_t>(v));
}

/// Strict parsers: return false on any malformation (the caller treats the
/// whole record as corrupt).
bool parse_u64_hex(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s.size() > 16) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else return false;
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  out = v;
  return true;
}

bool parse_i64(const std::string& s, std::int64_t& out) {
  if (s.empty()) return false;
  try {
    std::size_t pos = 0;
    out = std::stoll(s, &pos);
    return pos == s.size();
  } catch (const std::invalid_argument&) {
  } catch (const std::out_of_range&) {
  }
  return false;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s[0] == '-') return false;
  try {
    std::size_t pos = 0;
    out = std::stoull(s, &pos);
    return pos == s.size();
  } catch (const std::invalid_argument&) {
  } catch (const std::out_of_range&) {
  }
  return false;
}

bool parse_int(const std::string& s, int& out) {
  std::int64_t v = 0;
  if (!parse_i64(s, v) || v < INT_MIN || v > INT_MAX) return false;
  out = static_cast<int>(v);
  return true;
}

bool parse_fp(const std::string& s, dir::Fingerprint& out) {
  try {
    out = dir::Fingerprint::from_hex(s);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

/// Keep a failure message one CSV field: commas and newlines become spaces.
std::string sanitize(std::string s) {
  for (char& c : s)
    if (c == ',' || c == '\n' || c == '\r') c = ' ';
  return s;
}

bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

ScanJournal::ScanJournal(std::string path, Mode mode, Meta meta)
    : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  TING_CHECK_MSG(fd_ >= 0, "scan journal: cannot open " << path_ << ": "
                                                        << std::strerror(errno));
  if (mode == Mode::kFresh) {
    TING_CHECK_MSG(::ftruncate(fd_, 0) == 0,
                   "scan journal: cannot truncate " << path_ << ": "
                                                    << std::strerror(errno));
  } else {
    replay_existing();
  }
  if (saw_meta_) {
    TING_CHECK_MSG(
        meta_.version == meta.version && meta_.pair_seed == meta.pair_seed &&
            meta_.nodes == meta.nodes,
        "scan journal " << path_ << " belongs to a different scan (journal: "
                        << "v" << meta_.version << " seed " << meta_.pair_seed
                        << " nodes " << meta_.nodes << "; this scan: v"
                        << meta.version << " seed " << meta.pair_seed
                        << " nodes " << meta.nodes << ")");
  } else {
    meta_ = meta;
    const std::lock_guard<std::mutex> lock(mu_);
    append_line_locked("J," + std::to_string(meta_.version) + "," +
                       std::to_string(meta_.pair_seed) + "," +
                       std::to_string(meta_.nodes));
    saw_meta_ = true;
  }
}

ScanJournal::~ScanJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void ScanJournal::replay_existing() {
  std::string content;
  {
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        TING_CHECK_MSG(false, "scan journal: cannot read " << path_ << ": "
                                                           << std::strerror(errno));
      }
      if (n == 0) break;
      content.append(buf, static_cast<std::size_t>(n));
    }
  }

  // Replay line by line; the first incomplete (no trailing '\n') or corrupt
  // record invalidates everything after it — an append-only log has no way
  // to resynchronise past damage, and dropping the tail only costs
  // re-measuring the pairs whose records were lost.
  std::size_t valid_end = 0;
  std::size_t pos = 0;
  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) break;  // torn final record
    if (!apply_line(content.substr(pos, nl - pos))) break;
    ++records_recovered_;
    pos = nl + 1;
    valid_end = pos;
  }
  torn_bytes_ = content.size() - valid_end;
  if (torn_bytes_ > 0) {
    TING_CHECK_MSG(::ftruncate(fd_, static_cast<off_t>(valid_end)) == 0,
                   "scan journal: cannot truncate torn tail of "
                       << path_ << ": " << std::strerror(errno));
  }
  TING_CHECK_MSG(::lseek(fd_, 0, SEEK_END) >= 0,
                 "scan journal: seek failed on " << path_ << ": "
                                                 << std::strerror(errno));
}

bool ScanJournal::apply_line(const std::string& line) {
  const std::size_t last_comma = line.find_last_of(',');
  if (last_comma == std::string::npos) return false;
  const std::string body = line.substr(0, last_comma);
  std::uint64_t crc = 0;
  if (!parse_u64_hex(line.substr(last_comma + 1), crc)) return false;
  if (crc != fnv1a64(body)) return false;

  const auto fields = split(body, ',');
  if (fields.empty()) return false;
  const std::string& type = fields[0];

  if (type == "J") {
    if (saw_meta_ || fields.size() != 4) return false;
    std::uint64_t seed = 0, nodes = 0;
    int version = 0;
    if (!parse_int(fields[1], version) || !parse_u64(fields[2], seed) ||
        !parse_u64(fields[3], nodes))
      return false;
    meta_ = Meta{version, seed, static_cast<std::size_t>(nodes)};
    saw_meta_ = true;
    return true;
  }
  if (!saw_meta_) return false;  // meta must come first

  if (type == "P") {
    if (fields.size() != 10) return false;
    PairRecord r;
    std::uint64_t bits = 0;
    std::int64_t at_ns = 0;
    int ok01 = 0, cls = 0;
    if (!parse_fp(fields[1], r.a) || !parse_fp(fields[2], r.b) ||
        !parse_int(fields[3], ok01) || !parse_int(fields[4], r.attempts) ||
        !parse_int(fields[5], cls) || !parse_u64_hex(fields[6], bits) ||
        !parse_i64(fields[7], at_ns) || !parse_int(fields[8], r.samples))
      return false;
    if ((ok01 != 0 && ok01 != 1) || cls < 0 || cls > 3 || r.a == r.b)
      return false;
    r.ok = ok01 == 1;
    r.error_class = static_cast<ErrorClass>(cls);
    r.rtt_ms = std::bit_cast<double>(bits);
    r.measured_at = TimePoint::from_ns(at_ns);
    r.error = fields[9];
    pairs_[key(r.a, r.b)] = r;
    if (r.ok) mirror_matrix_.set(r.a, r.b, r.rtt_ms, r.measured_at, r.samples);
    return true;
  }

  if (type == "H") {
    if (fields.size() != 6) return false;
    HalfRecord r;
    std::uint64_t bits = 0;
    std::int64_t at_ns = 0;
    if (!parse_fp(fields[1], r.host_w) || !parse_fp(fields[2], r.relay) ||
        !parse_u64_hex(fields[3], bits) || !parse_i64(fields[4], at_ns) ||
        !parse_int(fields[5], r.samples))
      return false;
    if (r.host_w == r.relay) return false;
    r.rtt_ms = std::bit_cast<double>(bits);
    r.measured_at = TimePoint::from_ns(at_ns);
    mirror_halves_.store(r.host_w, r.relay, r.rtt_ms, r.measured_at, r.samples);
    return true;
  }

  if (type == "Q") {
    if (fields.size() != 6) return false;
    QuarantineRecord r;
    std::int64_t at_ns = 0, until_ns = 0;
    int terminal01 = 0;
    if (!parse_fp(fields[1], r.relay) || !parse_i64(fields[2], at_ns) ||
        !parse_i64(fields[3], until_ns) || !parse_int(fields[4], r.failures) ||
        !parse_int(fields[5], terminal01))
      return false;
    if (terminal01 != 0 && terminal01 != 1) return false;
    r.at = TimePoint::from_ns(at_ns);
    r.until = TimePoint::from_ns(until_ns);
    r.terminal = terminal01 == 1;
    quarantine_records_.push_back(r);
    return true;
  }

  return false;  // unknown record type
}

std::size_t ScanJournal::ok_pairs() const {
  std::size_t n = 0;
  for (const auto& [k, r] : pairs_)
    if (r.ok) ++n;
  return n;
}

void ScanJournal::restore(RttMatrix& matrix, HalfCircuitCache* halves) const {
  const std::lock_guard<std::mutex> lock(mu_);
  matrix.merge(mirror_matrix_);
  if (halves != nullptr) halves->merge_freshest(mirror_halves_);
}

void ScanJournal::append_line_locked(const std::string& body) {
  TING_CHECK_MSG(fd_ >= 0, "scan journal: appending after remove_file()");
  const std::string line = body + "," + hex64(fnv1a64(body)) + "\n";
  TING_CHECK_MSG(write_all(fd_, line.data(), line.size()),
                 "scan journal: write to " << path_ << " failed: "
                                           << std::strerror(errno));
  TING_CHECK_MSG(::fsync(fd_) == 0, "scan journal: fsync of "
                                        << path_ << " failed: "
                                        << std::strerror(errno));
  ++fsyncs_;
}

void ScanJournal::record_pair(const PairRecord& r) {
  const std::lock_guard<std::mutex> lock(mu_);
  append_line_locked("P," + r.a.hex() + "," + r.b.hex() + "," +
                     (r.ok ? "1" : "0") + "," + std::to_string(r.attempts) +
                     "," + std::to_string(static_cast<int>(r.error_class)) +
                     "," + rtt_bits(r.rtt_ms) + "," +
                     std::to_string(r.measured_at.ns()) + "," +
                     std::to_string(r.samples) + "," + sanitize(r.error));
  pairs_[key(r.a, r.b)] = r;
  if (r.ok) mirror_matrix_.set(r.a, r.b, r.rtt_ms, r.measured_at, r.samples);
  ++pair_records_since_checkpoint_;
  maybe_checkpoint_locked();
}

void ScanJournal::record_half(const HalfRecord& r) {
  const std::lock_guard<std::mutex> lock(mu_);
  append_line_locked("H," + r.host_w.hex() + "," + r.relay.hex() + "," +
                     rtt_bits(r.rtt_ms) + "," +
                     std::to_string(r.measured_at.ns()) + "," +
                     std::to_string(r.samples));
  mirror_halves_.store(r.host_w, r.relay, r.rtt_ms, r.measured_at, r.samples);
}

void ScanJournal::record_quarantine(const QuarantineRecord& r) {
  const std::lock_guard<std::mutex> lock(mu_);
  append_line_locked("Q," + r.relay.hex() + "," + std::to_string(r.at.ns()) +
                     "," + std::to_string(r.until.ns()) + "," +
                     std::to_string(r.failures) + "," +
                     (r.terminal ? "1" : "0"));
  quarantine_records_.push_back(r);
}

void ScanJournal::enable_checkpoints(std::string matrix_path,
                                     std::string halves_path,
                                     std::size_t every_pairs) {
  const std::lock_guard<std::mutex> lock(mu_);
  checkpoint_matrix_path_ = std::move(matrix_path);
  checkpoint_halves_path_ = std::move(halves_path);
  checkpoint_every_ = every_pairs;
  pair_records_since_checkpoint_ = 0;
}

void ScanJournal::maybe_checkpoint_locked() {
  if (checkpoint_every_ == 0 ||
      pair_records_since_checkpoint_ < checkpoint_every_)
    return;
  checkpoint_locked();
}

void ScanJournal::checkpoint_locked() {
  if (checkpoint_matrix_path_.empty()) return;
  atomic_write_file(checkpoint_matrix_path_, mirror_matrix_.to_csv());
  if (!checkpoint_halves_path_.empty())
    atomic_write_file(checkpoint_halves_path_, mirror_halves_.to_csv());
  pair_records_since_checkpoint_ = 0;
  ++checkpoints_written_;
}

void ScanJournal::checkpoint_now() {
  const std::lock_guard<std::mutex> lock(mu_);
  checkpoint_locked();
}

std::size_t ScanJournal::checkpoints_written() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return checkpoints_written_;
}

std::size_t ScanJournal::fsyncs() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return fsyncs_;
}

void ScanJournal::remove_file() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  ::unlink(path_.c_str());
}

}  // namespace ting::meas
