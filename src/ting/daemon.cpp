#include "ting/daemon.h"

#include <fstream>
#include <memory>
#include <sstream>

#include "ting/scan_journal.h"
#include "util/assert.h"
#include "util/atomic_file.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace ting::meas {

namespace {

/// Engine-level freshness horizon. The daemon's planner owns TTL policy;
/// inside one epoch nothing may go stale (deterministic results carry zero
/// timestamps), so the engines and half cache run with an effectively
/// infinite max age. 100 years stays far below the int64 nanosecond range.
constexpr Duration kForever = Duration::seconds(100LL * 365 * 24 * 3600);

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

constexpr char kStateHeader[] = "ting-daemon-state,v1";

}  // namespace

ScanDaemon::ScanDaemon(DaemonEnvironment& env, DaemonOptions options)
    : env_(env), options_(std::move(options)) {
  TING_CHECK_MSG(!options_.out.empty(), "daemon needs an --out matrix path");
  TING_CHECK_MSG(options_.epoch_interval > Duration{},
                 "daemon epoch interval must be positive");
  TING_CHECK_MSG(options_.ttl > Duration{}, "daemon TTL must be positive");
}

std::uint64_t ScanDaemon::epoch_pair_seed(std::uint64_t seed,
                                          std::size_t epoch) {
  return mix64(seed ^ mix64(static_cast<std::uint64_t>(epoch) + 1));
}

void ScanDaemon::write_state(std::size_t next_epoch) const {
  std::ostringstream os;
  os << kStateHeader << "\n"
     << "seed=" << options_.seed << "\n"
     << "epoch_interval_ns=" << options_.epoch_interval.ns() << "\n"
     << "ttl_ns=" << options_.ttl.ns() << "\n"
     << "budget=" << options_.budget << "\n"
     << "config_tag=" << options_.config_tag << "\n"
     << "next_epoch=" << next_epoch << "\n";
  atomic_write_file(state_path(options_.out), os.str());
}

ScanDaemon::State ScanDaemon::load_state() const {
  const std::string path = state_path(options_.out);
  std::ifstream f(path);
  TING_CHECK_MSG(f.good(), "daemon --resume: cannot open state file "
                               << path
                               << " (was this store created without one?)");
  std::stringstream buf;
  buf << f.rdbuf();
  State st;
  bool first = true;
  bool saw_next = false;
  for (const std::string& line : split(buf.str(), '\n')) {
    if (first) {
      TING_CHECK_MSG(line == kStateHeader,
                     "daemon state file " << path << " has unknown header: "
                                          << line);
      first = false;
      continue;
    }
    if (trim(line).empty()) continue;
    const std::size_t eq = line.find('=');
    TING_CHECK_MSG(eq != std::string::npos,
                   "daemon state file " << path << ": bad line: " << line);
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    try {
      if (key == "seed") {
        st.seed = std::stoull(value);
      } else if (key == "epoch_interval_ns") {
        st.epoch_interval_ns = std::stoll(value);
      } else if (key == "ttl_ns") {
        st.ttl_ns = std::stoll(value);
      } else if (key == "budget") {
        st.budget = std::stoull(value);
      } else if (key == "config_tag") {
        st.config_tag = value;
      } else if (key == "next_epoch") {
        st.next_epoch = std::stoull(value);
        saw_next = true;
      }
      // Unknown keys are ignored: a newer daemon may add fields.
    } catch (const std::exception&) {
      TING_CHECK_MSG(false,
                     "daemon state file " << path << ": bad value: " << line);
    }
  }
  TING_CHECK_MSG(saw_next,
                 "daemon state file " << path << " is missing next_epoch");
  return st;
}

DaemonReport ScanDaemon::run(const EpochCallback& on_epoch,
                             const ScanProgress& progress) {
  const auto stopped = [this] {
    return options_.stop != nullptr &&
           options_.stop->load(std::memory_order_relaxed);
  };

  std::size_t start_epoch = 0;
  if (options_.resume) {
    const State st = load_state();
    TING_CHECK_MSG(
        st.seed == options_.seed &&
            st.epoch_interval_ns == options_.epoch_interval.ns() &&
            st.ttl_ns == options_.ttl.ns() && st.budget == options_.budget &&
            st.config_tag == options_.config_tag,
        "daemon --resume: store " << options_.out
                                  << " was produced by a different "
                                     "configuration (state file disagrees)");
    start_epoch = st.next_epoch;
    if (file_exists(options_.out))
      matrix_ = SparseRttMatrix::load_bin(options_.out);
    if (options_.half_cache && file_exists(halves_path(options_.out)))
      half_cache_ = HalfCircuitCache::load_bin(halves_path(options_.out));
  } else {
    // Fresh store: truncate any artifacts a previous run left at this path,
    // then persist the zero state so a crash inside epoch 0 can resume.
    matrix_ = {};
    matrix_.save_bin(options_.out);
    if (options_.half_cache) half_cache_.save_bin(halves_path(options_.out));
    write_state(0);
  }
  half_cache_.set_max_age(kForever);

  DaemonReport report;
  report.epochs_completed = start_epoch;

  // Replay consensus churn up to the resume point: epoch state is derived,
  // never persisted — the environment derives churn from epoch numbers.
  ConsensusDeltaTracker tracker;
  for (std::size_t e = 0; e < start_epoch; ++e) env_.advance_epoch(e);
  if (start_epoch > 0) tracker.observe(env_.nodes());

  for (std::size_t e = start_epoch; e < options_.epochs; ++e) {
    if (stopped()) {
      report.interrupted = true;
      break;
    }
    env_.advance_epoch(e);
    EpochStats stats;
    stats.epoch = e;
    const std::vector<dir::Fingerprint> nodes = env_.nodes();
    stats.nodes = nodes.size();
    const ConsensusDeltaTracker::Delta delta = tracker.observe(nodes);
    stats.joined = delta.joined.size();
    stats.left = delta.left.size();

    const TimePoint now = epoch_clock(options_.epoch_interval, e);
    const DeltaPlanOptions plan_opts{options_.ttl, options_.budget};
    stats.plan = options_.incremental_planner
                     ? planner_.plan_delta_incremental(matrix_, nodes,
                                                       delta.joined, now,
                                                       plan_opts)
                     : plan_delta(matrix_, nodes, now, plan_opts);

    ScanOptions opt = options_.engine;
    opt.pair_seed = epoch_pair_seed(options_.seed, e);
    opt.stop = options_.stop;
    opt.max_age = kForever;
    opt.half_cache = options_.half_cache ? &half_cache_ : nullptr;
    // The planner's order is load-bearing (new pairs before expired ones,
    // so an interrupted epoch keeps its highest-priority results); don't
    // let the engine shuffle it.
    opt.randomize_order = false;

    // Per-epoch journal. meta.nodes is deliberately 0: under fault plans the
    // consensus at epoch re-entry can differ from the crashed process's
    // (fault timers fire at world-virtual times), and the epoch-specific
    // pair_seed already identifies which epoch a journal belongs to.
    RttMatrix epoch_matrix;
    const ScanJournal::Meta meta{1, opt.pair_seed, 0};
    const std::string jpath = journal_path(options_.out);
    std::unique_ptr<ScanJournal> journal;
    if (options_.journal) {
      const bool try_resume = options_.resume && e == start_epoch;
      try {
        journal = std::make_unique<ScanJournal>(
            jpath, try_resume ? ScanJournal::Mode::kResume
                              : ScanJournal::Mode::kFresh,
            meta);
      } catch (const CheckError&) {
        // The journal on disk belongs to a *different* epoch: the previous
        // process crashed after checkpointing its artifacts but before
        // deleting the journal. Those pairs are already in the matrix —
        // start this epoch's journal fresh.
        journal = std::make_unique<ScanJournal>(jpath,
                                                ScanJournal::Mode::kFresh,
                                                meta);
      }
      if (journal->records_recovered() > 0) {
        journal->restore(epoch_matrix, opt.half_cache);
        stats.journal_recovered = journal->pairs().size();
      }
    }
    opt.journal = journal.get();
    if (opt.half_cache != nullptr && journal != nullptr) {
      ScanJournal* j = journal.get();
      opt.half_cache->set_store_observer(
          [j](const dir::Fingerprint& host_w, const dir::Fingerprint& relay,
              const HalfCircuitCache::Entry& entry) {
            j->record_half(ScanJournal::HalfRecord{
                host_w, relay, entry.rtt_ms, entry.measured_at, entry.samples});
          });
    }

    stats.scan =
        env_.scan_pairs(nodes, stats.plan.pairs, epoch_matrix, opt, progress);
    if (opt.half_cache != nullptr) opt.half_cache->set_store_observer({});

    if (stats.scan.interrupted || stopped()) {
      // Mid-epoch shutdown: keep the journal and state exactly as they are;
      // the next --resume re-enters this epoch and replays the journal.
      report.interrupted = true;
      stats.coverage = matrix_.coverage(nodes, now, options_.ttl);
      stats.matrix_pairs = matrix_.size();
      stats.matrix_bytes = matrix_.memory_bytes();
      report.epochs.push_back(stats);
      break;
    }

    // Epoch complete. Checkpoint order matters for crash windows: artifacts
    // first (matrix + halves), then the journal deletion, then the state
    // bump — a crash between any two steps resumes into this same epoch and
    // re-derives an already-satisfied (hence near-empty) plan.
    matrix_.absorb(epoch_matrix, now);
    matrix_.save_bin(options_.out);
    if (options_.half_cache) half_cache_.save_bin(halves_path(options_.out));
    if (journal != nullptr) {
      journal->remove_file();
      journal.reset();
    }
    write_state(e + 1);

    stats.coverage = matrix_.coverage(nodes, now, options_.ttl);
    stats.matrix_pairs = matrix_.size();
    stats.matrix_bytes = matrix_.memory_bytes();
    report.epochs.push_back(stats);
    report.epochs_completed = e + 1;
    if (options_.on_checkpoint) {
      // Relays with at least one new or refreshed pair this epoch — exactly
      // the incremental-update worklist a detour index wants.
      options_.on_checkpoint(matrix_, nodes, epoch_matrix.nodes(), stats);
    }
    if (on_epoch) on_epoch(stats);
  }

  if (!report.epochs.empty()) {
    report.final_coverage = report.epochs.back().coverage.coverage();
  } else {
    // Nothing ran this invocation (resumed a finished store, or stopped
    // before the first epoch): census the store against the current
    // consensus at the last completed epoch's clock.
    const std::size_t last = start_epoch > 0 ? start_epoch - 1 : 0;
    report.final_coverage =
        matrix_
            .coverage(env_.nodes(), epoch_clock(options_.epoch_interval, last),
                      options_.ttl)
            .coverage();
  }
  report.converged =
      !report.interrupted && report.final_coverage >= options_.coverage_target;
  report.matrix_pairs = matrix_.size();
  report.matrix_bytes = matrix_.memory_bytes();
  return report;
}

}  // namespace ting::meas
