// ScanJournal — the append-only write-ahead log that makes an all-pairs
// scan crash-safe and resumable.
//
// A full Ting scan of the Tor network takes days to weeks of wall-clock
// time (§5); losing it to a process crash is not acceptable. The journal
// records one fsync'd line per terminally-resolved pair (succeeded or
// exhausted its attempts) and per half-circuit measurement, so after a
// crash `ting scan --resume` replays the journal, rebuilds the matrix and
// half-circuit cache exactly as they were, and re-measures only the pairs
// that never completed. In deterministic sharded mode every pair's estimate
// is a pure function of (world seed, pair_seed, x, y), so the resumed scan
// produces a matrix bit-identical to an uninterrupted run.
//
// Record format (one CSV line per record, trailing FNV-1a-64 checksum):
//
//   J,<version>,<pair_seed>,<nodes>,<crc>            scan metadata (first line)
//   P,<fp_a>,<fp_b>,<ok>,<attempts>,<class>,<rtt_bits>,<at_ns>,<samples>,<err>,<crc>
//   H,<host_fp>,<relay_fp>,<rtt_bits>,<at_ns>,<samples>,<crc>
//   Q,<relay_fp>,<at_ns>,<until_ns>,<failures>,<terminal>,<crc>
//
// <rtt_bits> is the IEEE-754 bit pattern of the double, as 16 hex digits:
// the CSV artifacts print RTTs at the default 6-significant-digit
// precision, so round-tripping estimates through decimal would break the
// bit-identity guarantee; the journal preserves exact bits. <err> is the
// failure message with ','/'\n' replaced (the line stays one CSV row).
//
// Recovery tolerates a torn tail — the expected crash artifact of an
// append-only log. On open-for-resume, everything from the first
// incomplete or checksum-corrupt record to EOF is dropped and the file is
// truncated back to the last valid prefix; the scan re-measures the pairs
// whose records were lost.
//
// The journal also owns the periodic checkpointing of the matrix and
// half-circuit cache: it keeps an internal mirror of both, fed by the
// records as they are appended, and every `every_pairs` pair records it
// atomically rewrites the artifact files (util/atomic_file), so even a
// reader that ignores the journal sees a recent consistent snapshot.
//
// Thread-safe: the sharded engine's worker threads append through one
// shared journal; a mutex serialises appends, mirror updates, and
// checkpoint writes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "dir/fingerprint.h"
#include "ting/half_circuit_cache.h"
#include "ting/measurer.h"
#include "ting/rtt_matrix.h"
#include "util/time.h"

namespace ting::meas {

class ScanJournal {
 public:
  struct Meta {
    int version = 1;
    std::uint64_t pair_seed = 0;
    std::size_t nodes = 0;  ///< scan-node count, a cheap same-scan check
  };

  /// One terminally-resolved pair (measured, or failed for good this run).
  struct PairRecord {
    dir::Fingerprint a, b;
    bool ok = false;
    int attempts = 1;  ///< attempts consumed (1 = first try resolved it)
    ErrorClass error_class = ErrorClass::kNone;
    double rtt_ms = 0;       ///< estimate (ok records only)
    TimePoint measured_at;   ///< matrix timestamp (zero in deterministic mode)
    int samples = 0;
    std::string error;  ///< final failure message (sanitized on write)
  };

  /// One stored half-circuit minimum (mirrors HalfCircuitCache::store).
  struct HalfRecord {
    dir::Fingerprint host_w, relay;
    double rtt_ms = 0;
    TimePoint measured_at;
    int samples = 0;
  };

  /// One quarantine transition (annotation; not replayed into engine state —
  /// a resumed scan re-probes and a still-sick relay re-trips immediately).
  struct QuarantineRecord {
    dir::Fingerprint relay;
    TimePoint at, until;
    int failures = 0;
    bool terminal = false;
  };

  enum class Mode {
    kFresh,   ///< truncate any existing journal and start over
    kResume,  ///< replay existing records (recovering a torn tail) and append
  };

  /// Opens (creating if needed) the journal at `path`. In kResume mode the
  /// existing records are replayed first and `meta` is validated against the
  /// journal's own metadata line — resuming against a journal written by a
  /// different scan (seed or node-count mismatch) throws. Throws CheckError
  /// on I/O errors.
  ScanJournal(std::string path, Mode mode, Meta meta);
  ~ScanJournal();
  ScanJournal(const ScanJournal&) = delete;
  ScanJournal& operator=(const ScanJournal&) = delete;

  const std::string& path() const { return path_; }
  const Meta& meta() const { return meta_; }

  // ---- recovered state (populated by kResume; empty after kFresh) ----------
  using PairKey = std::pair<dir::Fingerprint, dir::Fingerprint>;
  const std::map<PairKey, PairRecord>& pairs() const { return pairs_; }
  const std::vector<QuarantineRecord>& quarantine_records() const {
    return quarantine_records_;
  }
  std::size_t ok_pairs() const;
  /// Bytes dropped from the tail at open (0 = the journal was clean).
  std::size_t torn_bytes() const { return torn_bytes_; }
  std::size_t records_recovered() const { return records_recovered_; }

  /// Seed `matrix` (and `halves`, if non-null) from the recovered records —
  /// the resume path's way of rebuilding scan state with exact bit patterns.
  void restore(RttMatrix& matrix, HalfCircuitCache* halves) const;

  // ---- appends (thread-safe; one fsync per record) -------------------------
  void record_pair(const PairRecord& r);
  void record_half(const HalfRecord& r);
  void record_quarantine(const QuarantineRecord& r);

  // ---- periodic atomic checkpoints -----------------------------------------
  /// Every `every_pairs` pair records, atomically rewrite the matrix (and,
  /// if `halves_path` is non-empty, the half-circuit cache) from the
  /// journal's mirrors. Pass every_pairs = 0 to disable cadence-based
  /// checkpoints (checkpoint_now still works).
  void enable_checkpoints(std::string matrix_path, std::string halves_path,
                          std::size_t every_pairs);
  /// Write a checkpoint immediately (graceful-shutdown flush).
  void checkpoint_now();
  std::size_t checkpoints_written() const;

  /// Observability: fsync(2) calls issued so far (for the overhead bench).
  std::size_t fsyncs() const;

  /// Close and delete the journal file — the scan completed cleanly, so the
  /// artifacts alone carry the state. Further appends are invalid.
  void remove_file();

 private:
  static PairKey key(const dir::Fingerprint& a, const dir::Fingerprint& b) {
    return a < b ? PairKey{a, b} : PairKey{b, a};
  }
  void replay_existing();
  /// Parse one checksummed line into the mirrors; false = corrupt.
  bool apply_line(const std::string& line);
  void append_line_locked(const std::string& body);
  void maybe_checkpoint_locked();
  void checkpoint_locked();

  std::string path_;
  int fd_ = -1;
  Meta meta_;
  bool saw_meta_ = false;

  mutable std::mutex mu_;
  std::map<PairKey, PairRecord> pairs_;
  std::vector<QuarantineRecord> quarantine_records_;
  RttMatrix mirror_matrix_;
  HalfCircuitCache mirror_halves_;
  std::size_t torn_bytes_ = 0;
  std::size_t records_recovered_ = 0;
  std::size_t fsyncs_ = 0;

  std::string checkpoint_matrix_path_;
  std::string checkpoint_halves_path_;
  std::size_t checkpoint_every_ = 0;
  std::size_t pair_records_since_checkpoint_ = 0;
  std::size_t checkpoints_written_ = 0;
};

}  // namespace ting::meas
