// RelayQuarantine — the per-relay circuit breaker the scan engines consult
// before probing a pair.
//
// Ting's operational reality (§4.5, and the project's own published scans)
// is that a minority of relays fail chronically: dead forever, firewalled,
// or long gone from the consensus. PR 2's ErrorClass taxonomy already stops
// retrying a *pair* after a permanent failure, but a sick relay still costs
// one wasted attempt per pair touching it — O(n) wasted circuit builds per
// sick relay in an n-node scan. The breaker extends the taxonomy to the
// relay level: after `threshold` consecutive permanent failures a relay is
// quarantined for a cooldown window; while quarantined, its pending pairs
// are held (not probed, not failed). When the window expires the relay is
// on probation — one probe is let through; success clears the breaker,
// another permanent failure re-opens it. After `max_windows` windows the
// relay is terminal and every remaining pair touching it is deferred and
// reported in ScanReport::deferred_pairs (a deferred pair is retried by a
// future scan or --resume; it is deliberately NOT a failure — the pair was
// never attempted).
//
// State is engine-local and scan-scoped: each shard world quarantines
// independently (mirroring how per-shard fault plans already localise
// failures), and a resumed scan starts with a clear breaker — a still-sick
// relay re-trips within `threshold` probes.
#pragma once

#include <map>
#include <vector>

#include "dir/fingerprint.h"
#include "util/time.h"

namespace ting::meas {

struct QuarantineOptions {
  /// Master switch. Off by default so library callers keep the established
  /// per-pair failure semantics (mirroring TingConfig::adaptive_samples);
  /// the CLI turns the breaker on for real scans.
  bool enabled = false;
  /// Consecutive permanent failures that open the breaker.
  int threshold = 3;
  /// How long a quarantine window lasts (virtual time).
  Duration cooldown = Duration::seconds(600);
  /// Windows before the relay is written off for this scan: after the
  /// max_windows-th window's probation probe also fails permanently, the
  /// relay goes terminal and its remaining pairs are deferred.
  int max_windows = 2;
};

/// One breaker transition, reported in ScanReport::quarantine_events.
struct QuarantineEvent {
  dir::Fingerprint relay;
  TimePoint at;     ///< when the transition fired (shard-local virtual time)
  TimePoint until;  ///< window end (equal to `at` for terminal transitions)
  int failures = 0; ///< consecutive permanent failures at that point
  bool terminal = false;
};

class RelayQuarantine {
 public:
  explicit RelayQuarantine(QuarantineOptions options = {})
      : options_(options) {}

  enum class State {
    kClear,        ///< no open breaker; probe freely
    kQuarantined,  ///< inside a cooldown window; hold the relay's pairs
    kProbation,    ///< window expired; let one probe through
    kTerminal,     ///< written off for this scan; defer remaining pairs
  };

  State state(const dir::Fingerprint& relay, TimePoint now) const;
  /// When the relay's current window expires (meaningful for kQuarantined).
  TimePoint release_at(const dir::Fingerprint& relay) const;

  /// Record a permanent failure charged to `relay`. Returns true when the
  /// breaker transitioned (a window opened, re-opened, or went terminal) —
  /// the caller's cue to log/journal the event (the newest entry of
  /// events()) and schedule a wake-up at its window end.
  bool on_permanent_failure(const dir::Fingerprint& relay, TimePoint now);
  /// A successful measurement touching `relay` clears its breaker.
  void on_success(const dir::Fingerprint& relay);

  const std::vector<QuarantineEvent>& events() const { return events_; }
  const QuarantineOptions& options() const { return options_; }

 private:
  struct Cell {
    int consecutive = 0;  ///< consecutive permanent failures
    int windows = 0;      ///< quarantine windows opened so far
    TimePoint until;      ///< current window's end
    bool terminal = false;
  };
  std::map<dir::Fingerprint, Cell> cells_;
  QuarantineOptions options_;
  std::vector<QuarantineEvent> events_;
};

}  // namespace ting::meas
