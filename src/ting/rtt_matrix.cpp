#include "ting/rtt_matrix.h"

#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/assert.h"
#include "util/atomic_file.h"
#include "util/bytes.h"

namespace ting::meas {

RttMatrix::Key RttMatrix::key(const dir::Fingerprint& a,
                              const dir::Fingerprint& b) {
  return a < b ? Key{a, b} : Key{b, a};
}

void RttMatrix::set(const dir::Fingerprint& a, const dir::Fingerprint& b,
                    double rtt_ms, TimePoint measured_at, int samples) {
  TING_CHECK_MSG(!(a == b), "RttMatrix: self-pairs are not meaningful");
  entries_[key(a, b)] = Entry{rtt_ms, measured_at, samples};
}

const RttMatrix::Entry* RttMatrix::entry(const dir::Fingerprint& a,
                                         const dir::Fingerprint& b) const {
  auto it = entries_.find(key(a, b));
  if (it == entries_.end()) return nullptr;
  return &it->second;
}

std::optional<double> RttMatrix::rtt(const dir::Fingerprint& a,
                                     const dir::Fingerprint& b) const {
  const Entry* e = entry(a, b);
  if (e == nullptr) return std::nullopt;
  return e->rtt_ms;
}

bool RttMatrix::contains(const dir::Fingerprint& a,
                         const dir::Fingerprint& b) const {
  return entry(a, b) != nullptr;
}

bool RttMatrix::is_fresh(const dir::Fingerprint& a, const dir::Fingerprint& b,
                         TimePoint now, Duration max_age) const {
  const Entry* e = entry(a, b);
  return e != nullptr && now - e->measured_at <= max_age;
}

void RttMatrix::merge(const RttMatrix& other) {
  for (const auto& [k, v] : other.entries_) entries_[k] = v;
}

std::vector<dir::Fingerprint> RttMatrix::nodes() const {
  std::set<dir::Fingerprint> uniq;
  for (const auto& [k, v] : entries_) {
    uniq.insert(k.first);
    uniq.insert(k.second);
  }
  return {uniq.begin(), uniq.end()};
}

std::vector<double> RttMatrix::values() const {
  std::vector<double> out;
  out.reserve(entries_.size());
  for (const auto& [k, v] : entries_) out.push_back(v.rtt_ms);
  return out;
}

double RttMatrix::mean_rtt() const {
  TING_CHECK_MSG(!entries_.empty(), "empty RTT matrix");
  double total = 0;
  for (const auto& [k, v] : entries_) total += v.rtt_ms;
  return total / static_cast<double>(entries_.size());
}

std::string RttMatrix::to_csv() const {
  std::ostringstream os;
  os << "fp_a,fp_b,rtt_ms,measured_at_ns,samples\n";
  for (const auto& [k, v] : entries_) {
    os << k.first.hex() << "," << k.second.hex() << "," << v.rtt_ms << ","
       << v.measured_at.ns() << "," << v.samples << "\n";
  }
  return os.str();
}

RttMatrix RttMatrix::from_csv(const std::string& csv) {
  RttMatrix m;
  bool first = true;
  for (const std::string& line : split(csv, '\n')) {
    if (first) {
      first = false;
      continue;  // header
    }
    if (trim(line).empty()) continue;
    const auto cols = split(line, ',');
    TING_CHECK_MSG(cols.size() == 5, "bad RTT matrix row: " << line);
    // stod/stoll/stoi throw bare std::invalid_argument / std::out_of_range
    // on garbage; re-raise them as CheckError naming the offending line, and
    // reject trailing junk ("1.5x") they would silently accept.
    double rtt_ms = 0;
    long long at_ns = 0;
    int samples = 0;
    bool ok = false;
    try {
      std::size_t pos = 0;
      rtt_ms = std::stod(cols[2], &pos);
      if (pos == cols[2].size()) {
        at_ns = std::stoll(cols[3], &pos);
        if (pos == cols[3].size()) {
          samples = std::stoi(cols[4], &pos);
          ok = pos == cols[4].size();
        }
      }
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }
    TING_CHECK_MSG(ok, "bad RTT matrix row: " << line);
    m.set(dir::Fingerprint::from_hex(cols[0]),
          dir::Fingerprint::from_hex(cols[1]), rtt_ms,
          TimePoint::from_ns(at_ns), samples);
  }
  return m;
}

void RttMatrix::save_csv(const std::string& path) const {
  // Crash-safe replacement: a reader never observes a torn matrix, and a
  // failed write (disk full, bad path) throws instead of silently losing
  // the dataset.
  atomic_write_file(path, to_csv());
}

RttMatrix RttMatrix::load_csv(const std::string& path) {
  std::ifstream f(path);
  TING_CHECK_MSG(f.good(), "cannot open " << path);
  std::stringstream buf;
  buf << f.rdbuf();
  return from_csv(buf.str());
}

}  // namespace ting::meas
