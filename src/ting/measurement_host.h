// The Ting measurement apparatus (§3.3): one host h running
//   s — the echo client (driven through the OP's SOCKS port),
//   d — the echo server,
//   w — our entry-side Tor relay,
//   z — our exit-side Tor relay (exit policy allows only d),
// plus the onion proxy, its control port, and a Controller session — the
// exact four-processes-on-one-machine deployment the paper describes.
#pragma once

#include <functional>
#include <memory>

#include "ctrl/control_server.h"
#include "ctrl/controller.h"
#include "dir/consensus.h"
#include "echo/echo.h"
#include "simnet/network.h"
#include "tor/onion_proxy.h"
#include "tor/relay.h"

namespace ting::meas {

struct MeasurementHostConfig {
  /// Suffix for the w/z relay nicknames ("tingW" + label), so the members
  /// of a scan pool are distinguishable in logs and control replies.
  std::string label;
  std::uint16_t socks_port = 9050;
  std::uint16_t control_port = 9051;
  std::uint16_t echo_port = 4242;
  std::uint16_t w_or_port = 9001;
  std::uint16_t z_or_port = 9002;
  /// Our relays are dedicated and idle, so their forwarding delays are
  /// small and stable; they cancel in Eq. (4) regardless.
  double local_relay_base_ms = 0.2;
  double local_relay_queue_ms = 0.1;
};

class MeasurementHost {
 public:
  /// Installs everything on `host`. The OP starts with `consensus` plus the
  /// injected descriptors of w and z (the "PublishDescriptors 0" route).
  MeasurementHost(simnet::Network& net, simnet::HostId host,
                  dir::Consensus consensus,
                  MeasurementHostConfig config = {}, std::uint64_t seed = 7100);

  /// Open the controller session (AUTHENTICATE + SETEVENTS + SETCONF
  /// __LeaveStreamsUnattached=1). Must complete before measuring.
  void start(std::function<void()> on_ready);
  /// Blocking convenience: pumps the event loop until ready.
  void start_blocking();

  bool ready() const { return controller_ != nullptr; }

  /// Reseed the apparatus's stochastic state (w/z relay rngs, the OP rng)
  /// deterministically — part of the sharded scanner's per-pair world
  /// reseed. Fingerprints and established sessions are untouched.
  void reseed(std::uint64_t seed);

  simnet::Network& net() { return net_; }
  simnet::EventLoop& loop() { return net_.loop(); }
  simnet::HostId host() const { return host_; }
  tor::OnionProxy& op() { return *op_; }
  ctrl::Controller& controller() { return *controller_; }
  tor::Relay& w() { return *w_; }
  tor::Relay& z() { return *z_; }
  const dir::Fingerprint& w_fp() const { return w_->fingerprint(); }
  const dir::Fingerprint& z_fp() const { return z_->fingerprint(); }
  Endpoint echo_endpoint() const { return echo_->endpoint(); }
  Endpoint socks_endpoint() const;

 private:
  simnet::Network& net_;
  simnet::HostId host_;
  MeasurementHostConfig config_;
  std::unique_ptr<tor::Relay> w_;
  std::unique_ptr<tor::Relay> z_;
  std::unique_ptr<tor::OnionProxy> op_;
  std::unique_ptr<ctrl::ControlServer> control_server_;
  std::unique_ptr<echo::EchoServer> echo_;
  ctrl::Controller::Ptr controller_;
};

}  // namespace ting::meas
