#include "ting/measurer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ting/half_circuit_cache.h"
#include "util/assert.h"
#include "util/log.h"

namespace ting::meas {

const char* to_string(ErrorClass c) {
  switch (c) {
    case ErrorClass::kNone: return "none";
    case ErrorClass::kTransient: return "transient";
    case ErrorClass::kPermanent: return "permanent";
    case ErrorClass::kRelayChurned: return "relay-churned";
  }
  return "?";
}

double PairResult::estimate_with_prefix(std::size_t k) const {
  // Per-probe clamp: under adaptive early-stop the three probes hold
  // different sample counts, and a memoized half holds none at all — it
  // contributes its cached minimum instead.
  const auto prefix_min = [k](const CircuitMeasurement& m) {
    if (m.memoized && m.raw_samples_ms.empty()) return m.min_rtt_ms;
    TING_CHECK_MSG(!m.raw_samples_ms.empty(),
                   "estimate_with_prefix requires keep_raw_samples");
    const std::size_t n =
        std::min(std::max<std::size_t>(k, 1), m.raw_samples_ms.size());
    return *std::min_element(
        m.raw_samples_ms.begin(),
        m.raw_samples_ms.begin() + static_cast<std::ptrdiff_t>(n));
  };
  return prefix_min(cxy) - 0.5 * prefix_min(cx) - 0.5 * prefix_min(cy);
}

TingMeasurer::TingMeasurer(MeasurementHost& host, TingConfig config)
    : host_(host), config_(config) {
  TING_CHECK(config_.samples > 0);
  TING_CHECK(config_.min_samples >= 1);
  TING_CHECK(config_.plateau_samples >= 1);
}

TingMeasurer::~TingMeasurer() = default;

// ---- single-circuit probe ---------------------------------------------------

struct TingMeasurer::CircuitProbe
    : public std::enable_shared_from_this<CircuitProbe> {
  TingMeasurer* self = nullptr;
  std::vector<dir::Fingerprint> path;  ///< full path including w and z
  int samples_target = 0;
  bool keep_raw = false;
  /// Adaptive early-stop (TingConfig): stop once the running minimum has
  /// not improved by > epsilon_ms for plateau_samples consecutive echoes,
  /// after at least min_samples.
  bool adaptive = false;
  int min_samples = 0;
  int plateau_samples = 0;
  double epsilon_ms = 0;
  int plateau_run = 0;  ///< consecutive echoes without material improvement
  std::function<void(CircuitMeasurement)> on_done;

  tor::CircuitHandle handle = 0;
  simnet::ConnPtr app_conn;
  CircuitMeasurement result;
  TimePoint probe_start;
  TimePoint sampling_start;
  TimePoint sample_start;
  bool sampling = false;
  bool finished = false;
  double min_ms = std::numeric_limits<double>::infinity();
  simnet::EventId deadline_event = 0;
  ctrl::Controller::StreamWaitId stream_wait = 0;

  void finish(bool ok, const std::string& error = "",
              ErrorClass error_class = ErrorClass::kTransient) {
    if (finished) return;
    finished = true;
    self->host_.loop().cancel(deadline_event);
    if (stream_wait != 0)
      self->host_.controller().cancel_stream_wait(stream_wait);
    if (app_conn && app_conn->is_open()) app_conn->close();
    if (handle != 0) self->host_.controller().close_circuit(handle);
    result.ok = ok;
    result.error = error;
    result.error_class = ok ? ErrorClass::kNone : error_class;
    if (ok) result.min_rtt_ms = min_ms;
    if (sampling)
      result.sample_time = self->host_.loop().now() - sampling_start;
    else
      result.build_time = self->host_.loop().now() - probe_start;
    if (on_done) {
      auto fn = std::move(on_done);
      on_done = {};
      fn(std::move(result));
    }
  }

  void begin_sampling() {
    sampling = true;
    sampling_start = self->host_.loop().now();
    result.build_time = sampling_start - probe_start;
    take_sample();
  }

  void take_sample() {
    sample_start = self->host_.loop().now();
    app_conn->send(Bytes{'t', 'i', 'n', 'g'});
  }

  void on_echo() {
    const double rtt_ms = (self->host_.loop().now() - sample_start).ms();
    if (min_ms - rtt_ms > epsilon_ms)
      plateau_run = 0;  // the minimum materially improved
    else
      ++plateau_run;
    min_ms = std::min(min_ms, rtt_ms);
    if (keep_raw) result.raw_samples_ms.push_back(rtt_ms);
    ++result.samples_taken;
    if (result.samples_taken >= samples_target) {
      finish(true);
      return;
    }
    if (adaptive && result.samples_taken >= min_samples &&
        plateau_run >= plateau_samples) {
      // §4.4: the per-circuit minimum converges in ~10 samples; once it has
      // plateaued, further echoes only spend time.
      result.samples_saved = samples_target - result.samples_taken;
      finish(true);
      return;
    }
    take_sample();
  }
};

void TingMeasurer::measure_circuit(
    const std::vector<dir::Fingerprint>& middle_relays, int samples,
    std::function<void(CircuitMeasurement)> on_done,
    std::optional<bool> adaptive) {
  std::vector<dir::Fingerprint> full_path;
  full_path.push_back(host_.w_fp());
  for (const auto& fp : middle_relays) full_path.push_back(fp);
  full_path.push_back(host_.z_fp());
  measure_circuit_attempt(std::move(full_path), samples, 1,
                          adaptive.value_or(config_.adaptive_samples),
                          std::move(on_done));
}

void TingMeasurer::measure_circuit_attempt(
    std::vector<dir::Fingerprint> full_path, int samples, int attempt,
    bool adaptive, std::function<void(CircuitMeasurement)> on_done) {
  auto probe = std::make_shared<CircuitProbe>();
  probe->self = this;
  probe->path = full_path;
  probe->samples_target = samples;
  probe->keep_raw = config_.keep_raw_samples;
  probe->adaptive = adaptive;
  probe->min_samples = config_.min_samples;
  probe->plateau_samples = config_.plateau_samples;
  probe->epsilon_ms = config_.epsilon_ms;
  probe->on_done = [this, full_path = std::move(full_path), samples, attempt,
                    adaptive,
                    on_done = std::move(on_done)](CircuitMeasurement m) mutable {
    if (!m.ok && attempt < config_.max_build_attempts) {
      TING_DEBUG("circuit attempt " << attempt << " failed (" << m.error
                                    << "), retrying");
      // The final measurement reports circuits built across every attempt.
      const int built_so_far = m.circuits_built;
      measure_circuit_attempt(
          std::move(full_path), samples, attempt + 1, adaptive,
          [built_so_far, on_done = std::move(on_done)](
              CircuitMeasurement retried) mutable {
            retried.circuits_built += built_so_far;
            on_done(std::move(retried));
          });
      return;
    }
    on_done(std::move(m));
  };
  run_probe(probe);
}

// ---- pipelined circuit builds ----------------------------------------------

struct TingMeasurer::Prebuilt {
  std::uint64_t generation = 0;
  std::vector<dir::Fingerprint> path;  ///< full path including w and z
  tor::CircuitHandle handle = 0;       ///< 0 while the build is in flight
  bool building = true;
  /// A probe waiting on an in-flight build; fired with built-ok once the
  /// EXTENDCIRCUIT resolves either way.
  std::function<void(bool)> on_settled;
};

/// Prebuilt circuits held per measurer: the scan engines stay one pair
/// ahead, so two covers a hint plus one stale leftover.
constexpr std::size_t kMaxPrebuilts = 2;

void TingMeasurer::run_probe(const std::shared_ptr<CircuitProbe>& probe) {
  // Overall deadline: build + all samples.
  const Duration total_budget =
      config_.build_timeout +
      config_.sample_timeout * probe->samples_target;
  probe->probe_start = host_.loop().now();
  probe->deadline_event = host_.loop().schedule(total_budget, [probe]() {
    probe->finish(false, "measurement deadline exceeded");
  });

  // Pipelining: adopt a prebuilt circuit for this exact path if one is held
  // (or still building) instead of serialising a fresh EXTENDCIRCUIT.
  for (const auto& pb : prebuilts_) {
    if (pb->path == probe->path) {
      adopt_prebuilt(probe, pb->generation);
      return;
    }
  }
  start_build(probe);
}

void TingMeasurer::start_build(const std::shared_ptr<CircuitProbe>& probe) {
  ++probe->result.circuits_built;
  host_.controller().extend_circuit(
      probe->path,
      [this, probe](tor::CircuitHandle h) {
        if (probe->finished) return;
        probe->handle = h;
        attach_and_sample(probe);
      },
      [probe](const std::string& err) {
        probe->finish(false, "circuit build failed: " + err);
      });
}

void TingMeasurer::attach_and_sample(const std::shared_ptr<CircuitProbe>& probe) {
  // The stream must be attached manually: claim the next STREAM NEW
  // notification and route it to ATTACHSTREAM on our fresh circuit.
  probe->stream_wait = host_.controller().expect_stream_new(
      [this, probe](std::uint16_t stream_id, std::string) {
        probe->stream_wait = 0;
        if (probe->finished) return;
        host_.controller().attach_stream(
            stream_id, probe->handle, [probe](bool ok) {
              if (!ok) probe->finish(false, "ATTACHSTREAM failed");
            });
      });
  // Echo client s: open the app connection through the SOCKS port.
  host_.net().connect(
      host_.host(), host_.socks_endpoint(), simnet::Protocol::kTcp,
      [this, probe](simnet::ConnPtr conn) {
        if (probe->finished) {
          conn->close();
          return;
        }
        probe->app_conn = conn;
        conn->set_on_message([probe](Bytes msg) {
          if (probe->finished) return;
          if (!probe->sampling) {
            const std::string s(msg.begin(), msg.end());
            if (s == "OK") {
              probe->begin_sampling();
            } else {
              probe->finish(false, "SOCKS error: " + s);
            }
            return;
          }
          probe->on_echo();
        });
        conn->set_on_close([probe]() {
          probe->finish(false, "echo stream closed early");
        });
        const std::string req =
            "CONNECT " + host_.echo_endpoint().str();
        conn->send(Bytes(req.begin(), req.end()));
      },
      [probe](const std::string& err) {
        probe->finish(false, "SOCKS connect failed: " + err);
      });
}

TingMeasurer::Prebuilt* TingMeasurer::find_prebuilt(std::uint64_t generation) {
  for (const auto& pb : prebuilts_)
    if (pb->generation == generation) return pb.get();
  return nullptr;
}

void TingMeasurer::erase_prebuilt(std::uint64_t generation,
                                  bool close_circuit) {
  for (auto it = prebuilts_.begin(); it != prebuilts_.end(); ++it) {
    if ((*it)->generation != generation) continue;
    if (close_circuit && (*it)->handle != 0)
      host_.controller().close_circuit((*it)->handle);
    prebuilts_.erase(it);
    return;
  }
}

void TingMeasurer::prebuild(const dir::Fingerprint& x,
                            const dir::Fingerprint& y) {
  if (x == y || x == host_.w_fp() || y == host_.w_fp() ||
      x == host_.z_fp() || y == host_.z_fp())
    return;
  if (host_.op().consensus().find(x) == nullptr ||
      host_.op().consensus().find(y) == nullptr)
    return;
  std::vector<dir::Fingerprint> path{host_.w_fp(), x, y, host_.z_fp()};
  for (const auto& pb : prebuilts_)
    if (pb->path == path) return;  // already held or building
  while (prebuilts_.size() >= kMaxPrebuilts)
    erase_prebuilt(prebuilts_.front()->generation, /*close_circuit=*/true);

  auto pb = std::make_unique<Prebuilt>();
  pb->generation = ++prebuilt_generation_;
  pb->path = path;
  const std::uint64_t gen = pb->generation;
  prebuilts_.push_back(std::move(pb));
  host_.controller().extend_circuit(
      path,
      [this, gen](tor::CircuitHandle h) {
        Prebuilt* held = find_prebuilt(gen);
        if (held == nullptr) {
          // Evicted while building; nobody wants the circuit anymore.
          host_.controller().close_circuit(h);
          return;
        }
        held->handle = h;
        held->building = false;
        if (held->on_settled) {
          auto fn = std::move(held->on_settled);
          held->on_settled = {};
          fn(true);
        }
      },
      [this, gen](const std::string&) {
        Prebuilt* held = find_prebuilt(gen);
        if (held == nullptr) return;
        auto fn = std::move(held->on_settled);
        erase_prebuilt(gen, /*close_circuit=*/false);
        if (fn) fn(false);
      });
}

void TingMeasurer::discard_prebuilts() {
  while (!prebuilts_.empty())
    erase_prebuilt(prebuilts_.front()->generation, /*close_circuit=*/true);
}

void TingMeasurer::adopt_prebuilt(const std::shared_ptr<CircuitProbe>& probe,
                                  std::uint64_t generation) {
  Prebuilt* pb = find_prebuilt(generation);
  if (pb == nullptr) {  // raced with eviction or a failed build
    start_build(probe);
    return;
  }
  if (!pb->building) {
    probe->handle = pb->handle;
    // The prebuild's EXTENDCIRCUIT counts against this measurement:
    // pipelining hides build latency, it does not skip builds.
    ++probe->result.circuits_built;
    erase_prebuilt(generation, /*close_circuit=*/false);
    attach_and_sample(probe);
    return;
  }
  // Build still in flight: wait for it to settle, then adopt or fall back.
  pb->on_settled = [this, probe, generation](bool ok) {
    if (probe->finished) {
      erase_prebuilt(generation, /*close_circuit=*/ok);
      return;
    }
    if (!ok) {
      start_build(probe);
      return;
    }
    adopt_prebuilt(probe, generation);
  };
}

CircuitMeasurement TingMeasurer::measure_circuit_blocking(
    const std::vector<dir::Fingerprint>& middle_relays, int samples,
    std::optional<bool> adaptive) {
  std::optional<CircuitMeasurement> out;
  measure_circuit(middle_relays, samples,
                  [&out](CircuitMeasurement m) { out = std::move(m); },
                  adaptive);
  host_.loop().run_while_waiting_for([&out]() { return out.has_value(); },
                                     Duration::seconds(3600));
  TING_CHECK_MSG(out.has_value(), "circuit measurement never completed");
  return std::move(*out);
}

// ---- half-circuit memoization -----------------------------------------------

void TingMeasurer::half_probe(const dir::Fingerprint& fp,
                              std::function<void(CircuitMeasurement)> on_done) {
  if (half_cache_ != nullptr) {
    const HalfCircuitCache::Entry* e =
        half_cache_->fresh(host_.w_fp(), fp, host_.loop().now());
    if (e != nullptr) {
      CircuitMeasurement m;
      m.ok = true;
      m.memoized = true;
      m.min_rtt_ms = e->rtt_ms;
      m.samples_taken = e->samples;
      on_done(std::move(m));
      return;
    }
  }
  // A miss that will be stored samples fully even under adaptive_samples:
  // the cached minimum is reused by every pair sharing this relay, so an
  // early-stop bias would compound where a one-shot probe's would not.
  const std::optional<bool> adaptive =
      half_cache_ != nullptr ? std::optional<bool>(false) : std::nullopt;
  measure_circuit(
      {fp}, config_.samples,
      [this, fp, on_done = std::move(on_done)](CircuitMeasurement m) mutable {
        if (m.ok && half_cache_ != nullptr)
          half_cache_->store(host_.w_fp(), fp, m.min_rtt_ms,
                             host_.loop().now(), m.samples_taken);
        on_done(std::move(m));
      },
      adaptive);
}

// ---- full Ting pair measurement ---------------------------------------------

ErrorClass TingMeasurer::classify_failure(const dir::Fingerprint& x,
                                          const dir::Fingerprint& y,
                                          ErrorClass circuit_class) {
  const dir::Consensus& consensus = host_.op().consensus();
  if (consensus.find(x) == nullptr || consensus.find(y) == nullptr)
    return ErrorClass::kRelayChurned;
  return circuit_class == ErrorClass::kNone ? ErrorClass::kTransient
                                            : circuit_class;
}

void TingMeasurer::measure_async(const dir::Fingerprint& x,
                                 const dir::Fingerprint& y,
                                 std::function<void(PairResult)> on_done) {
  auto result = std::make_shared<PairResult>();
  result->x = x;
  result->y = y;
  const TimePoint started = host_.loop().now();

  if (x == y || x == host_.w_fp() || y == host_.w_fp() || x == host_.z_fp() ||
      y == host_.z_fp()) {
    result->error = "invalid pair (x, y must be distinct remote relays)";
    result->error_class = ErrorClass::kPermanent;
    on_done(std::move(*result));
    return;
  }
  // Note: synchronous failure, like the invalid-pair case above. Callers
  // that must not be re-entered (the scan engines) defer their completion
  // handling through the event loop.
  for (const dir::Fingerprint* fp : {&x, &y}) {
    if (host_.op().consensus().find(*fp) == nullptr) {
      result->error = "relay " + fp->short_name() + " not in consensus";
      result->error_class = ErrorClass::kRelayChurned;
      on_done(std::move(*result));
      return;
    }
  }
  TING_CHECK_MSG(!busy_, "measurer already has a pair measurement in flight");
  busy_ = true;
  on_done = [this, inner = std::move(on_done)](PairResult r) {
    busy_ = false;  // cleared first: the continuation may start the next pair
    inner(std::move(r));
  };

  // Three sequential circuit probes: C_xy, C_x, C_y.
  measure_circuit({x, y}, config_.samples, [this, x, y, result, started,
                                            on_done = std::move(on_done)](
                                               CircuitMeasurement cxy) mutable {
    result->cxy = std::move(cxy);
    if (!result->cxy.ok) {
      result->error = "C_xy: " + result->cxy.error;
      result->error_class = classify_failure(x, y, result->cxy.error_class);
      result->wall_time = host_.loop().now() - started;
      on_done(std::move(*result));
      return;
    }
    half_probe(x, [this, y, result, started,
                   on_done = std::move(on_done)](
                      CircuitMeasurement cx) mutable {
      result->cx = std::move(cx);
      if (!result->cx.ok) {
        result->error = "C_x: " + result->cx.error;
        result->error_class =
            classify_failure(result->x, result->y, result->cx.error_class);
        result->wall_time = host_.loop().now() - started;
        on_done(std::move(*result));
        return;
      }
      half_probe(y, [this, result, started,
                     on_done = std::move(on_done)](
                        CircuitMeasurement cy) mutable {
        result->cy = std::move(cy);
        result->wall_time = host_.loop().now() - started;
        if (!result->cy.ok) {
          result->error = "C_y: " + result->cy.error;
          result->error_class =
              classify_failure(result->x, result->y, result->cy.error_class);
          on_done(std::move(*result));
          return;
        }
        // Eq. (4): R(x,y) + F_x + F_y.
        result->rtt_ms = result->cxy.min_rtt_ms - 0.5 * result->cx.min_rtt_ms -
                         0.5 * result->cy.min_rtt_ms;
        result->ok = true;
        on_done(std::move(*result));
      });
    });
  });
}

PairResult TingMeasurer::measure_blocking(const dir::Fingerprint& x,
                                          const dir::Fingerprint& y) {
  std::optional<PairResult> out;
  measure(x, y, [&out](PairResult r) { out = std::move(r); });
  host_.loop().run_while_waiting_for([&out]() { return out.has_value(); },
                                     Duration::seconds(36000));
  TING_CHECK_MSG(out.has_value(), "pair measurement never completed");
  return std::move(*out);
}

// ---- strawman baseline (§3.2) -----------------------------------------------

void TingMeasurer::ping_min(IpAddr target, int count,
                            std::function<void(std::optional<double>)> on_done) {
  auto best = std::make_shared<double>(std::numeric_limits<double>::infinity());
  auto remaining = std::make_shared<int>(count);
  auto step = std::make_shared<std::function<void()>>();
  *step = [this, target, best, remaining, step, on_done]() {
    host_.net().ping(host_.host(), target,
                     [best, remaining, step, on_done](std::optional<Duration> rtt) {
                       if (rtt.has_value())
                         *best = std::min(*best, rtt->ms());
                       if (--*remaining > 0) {
                         (*step)();
                         return;
                       }
                       if (std::isfinite(*best)) on_done(*best);
                       else on_done(std::nullopt);
                       *step = {};  // break the self-reference cycle
                     });
  };
  (*step)();
}

void TingMeasurer::strawman_measure(const dir::Fingerprint& x,
                                    const dir::Fingerprint& y, int samples,
                                    std::function<void(PairResult)> on_done) {
  auto result = std::make_shared<PairResult>();
  result->x = x;
  result->y = y;
  const TimePoint started = host_.loop().now();

  const dir::RelayDescriptor* dx = host_.op().consensus().find(x);
  const dir::RelayDescriptor* dy = host_.op().consensus().find(y);
  if (dx == nullptr || dy == nullptr) {
    result->error = "unknown relay";
    result->error_class = ErrorClass::kPermanent;
    on_done(std::move(*result));
    return;
  }
  const IpAddr x_ip = dx->address, y_ip = dy->address;

  // End-to-end circuit (x, y): y must allow exiting to our echo server —
  // already a practical limitation of the strawman that Ting avoids.
  auto probe = std::make_shared<CircuitProbe>();
  probe->self = this;
  probe->path = {x, y};
  probe->samples_target = samples;
  probe->keep_raw = config_.keep_raw_samples;
  probe->on_done = [this, x_ip, y_ip, samples, result, started,
                    on_done = std::move(on_done)](CircuitMeasurement m) mutable {
    result->cxy = std::move(m);
    result->wall_time = host_.loop().now() - started;
    if (!result->cxy.ok) {
      result->error = "strawman circuit: " + result->cxy.error;
      result->error_class = result->cxy.error_class;
      on_done(std::move(*result));
      return;
    }
    const int pings = std::max(1, samples / 10);
    ping_min(x_ip, pings, [this, y_ip, pings, result,
                           on_done = std::move(on_done)](
                              std::optional<double> px) mutable {
      if (!px.has_value()) {
        result->error = "ping to x failed";
        result->error_class = ErrorClass::kTransient;
        on_done(std::move(*result));
        return;
      }
      const double ping_x = *px;
      ping_min(y_ip, pings, [result, ping_x, on_done = std::move(on_done)](
                                std::optional<double> py) mutable {
        if (!py.has_value()) {
          result->error = "ping to y failed";
          result->error_class = ErrorClass::kTransient;
          on_done(std::move(*result));
          return;
        }
        result->rtt_ms = result->cxy.min_rtt_ms - ping_x - *py;
        result->ok = true;
        on_done(std::move(*result));
      });
    });
  };
  run_probe(probe);
}

PairResult TingMeasurer::strawman_measure_blocking(const dir::Fingerprint& x,
                                                   const dir::Fingerprint& y,
                                                   int samples) {
  std::optional<PairResult> out;
  strawman_measure(x, y, samples, [&out](PairResult r) { out = std::move(r); });
  host_.loop().run_while_waiting_for([&out]() { return out.has_value(); },
                                     Duration::seconds(36000));
  TING_CHECK_MSG(out.has_value(), "strawman measurement never completed");
  return std::move(*out);
}

}  // namespace ting::meas
