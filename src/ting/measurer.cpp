#include "ting/measurer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.h"
#include "util/log.h"

namespace ting::meas {

const char* to_string(ErrorClass c) {
  switch (c) {
    case ErrorClass::kNone: return "none";
    case ErrorClass::kTransient: return "transient";
    case ErrorClass::kPermanent: return "permanent";
    case ErrorClass::kRelayChurned: return "relay-churned";
  }
  return "?";
}

double PairResult::estimate_with_prefix(std::size_t k) const {
  TING_CHECK_MSG(!cxy.raw_samples_ms.empty() && !cx.raw_samples_ms.empty() &&
                     !cy.raw_samples_ms.empty(),
                 "estimate_with_prefix requires keep_raw_samples");
  auto prefix_min = [](const std::vector<double>& v, std::size_t n) {
    n = std::min(std::max<std::size_t>(n, 1), v.size());
    return *std::min_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(n));
  };
  return prefix_min(cxy.raw_samples_ms, k) - 0.5 * prefix_min(cx.raw_samples_ms, k) -
         0.5 * prefix_min(cy.raw_samples_ms, k);
}

TingMeasurer::TingMeasurer(MeasurementHost& host, TingConfig config)
    : host_(host), config_(config) {
  TING_CHECK(config_.samples > 0);
}

// ---- single-circuit probe ---------------------------------------------------

struct TingMeasurer::CircuitProbe
    : public std::enable_shared_from_this<CircuitProbe> {
  TingMeasurer* self = nullptr;
  std::vector<dir::Fingerprint> path;  ///< full path including w and z
  int samples_target = 0;
  bool keep_raw = false;
  std::function<void(CircuitMeasurement)> on_done;

  tor::CircuitHandle handle = 0;
  simnet::ConnPtr app_conn;
  CircuitMeasurement result;
  TimePoint probe_start;
  TimePoint sampling_start;
  TimePoint sample_start;
  bool sampling = false;
  bool finished = false;
  double min_ms = std::numeric_limits<double>::infinity();
  simnet::EventId deadline_event = 0;
  ctrl::Controller::StreamWaitId stream_wait = 0;

  void finish(bool ok, const std::string& error = "",
              ErrorClass error_class = ErrorClass::kTransient) {
    if (finished) return;
    finished = true;
    self->host_.loop().cancel(deadline_event);
    if (stream_wait != 0)
      self->host_.controller().cancel_stream_wait(stream_wait);
    if (app_conn && app_conn->is_open()) app_conn->close();
    if (handle != 0) self->host_.controller().close_circuit(handle);
    result.ok = ok;
    result.error = error;
    result.error_class = ok ? ErrorClass::kNone : error_class;
    if (ok) result.min_rtt_ms = min_ms;
    if (sampling)
      result.sample_time = self->host_.loop().now() - sampling_start;
    else
      result.build_time = self->host_.loop().now() - probe_start;
    if (on_done) {
      auto fn = std::move(on_done);
      on_done = {};
      fn(std::move(result));
    }
  }

  void begin_sampling() {
    sampling = true;
    sampling_start = self->host_.loop().now();
    result.build_time = sampling_start - probe_start;
    take_sample();
  }

  void take_sample() {
    sample_start = self->host_.loop().now();
    app_conn->send(Bytes{'t', 'i', 'n', 'g'});
  }

  void on_echo() {
    const double rtt_ms = (self->host_.loop().now() - sample_start).ms();
    min_ms = std::min(min_ms, rtt_ms);
    if (keep_raw) result.raw_samples_ms.push_back(rtt_ms);
    ++result.samples_taken;
    if (result.samples_taken >= samples_target) {
      finish(true);
      return;
    }
    take_sample();
  }
};

void TingMeasurer::measure_circuit(
    const std::vector<dir::Fingerprint>& middle_relays, int samples,
    std::function<void(CircuitMeasurement)> on_done) {
  std::vector<dir::Fingerprint> full_path;
  full_path.push_back(host_.w_fp());
  for (const auto& fp : middle_relays) full_path.push_back(fp);
  full_path.push_back(host_.z_fp());
  measure_circuit_attempt(std::move(full_path), samples, 1, std::move(on_done));
}

void TingMeasurer::measure_circuit_attempt(
    std::vector<dir::Fingerprint> full_path, int samples, int attempt,
    std::function<void(CircuitMeasurement)> on_done) {
  auto probe = std::make_shared<CircuitProbe>();
  probe->self = this;
  probe->path = full_path;
  probe->samples_target = samples;
  probe->keep_raw = config_.keep_raw_samples;
  probe->on_done = [this, full_path = std::move(full_path), samples, attempt,
                    on_done = std::move(on_done)](CircuitMeasurement m) mutable {
    if (!m.ok && attempt < config_.max_build_attempts) {
      TING_DEBUG("circuit attempt " << attempt << " failed (" << m.error
                                    << "), retrying");
      measure_circuit_attempt(std::move(full_path), samples, attempt + 1,
                              std::move(on_done));
      return;
    }
    on_done(std::move(m));
  };
  run_probe(probe);
}

void TingMeasurer::run_probe(const std::shared_ptr<CircuitProbe>& probe) {
  // Overall deadline: build + all samples.
  const Duration total_budget =
      config_.build_timeout +
      config_.sample_timeout * probe->samples_target;
  probe->probe_start = host_.loop().now();
  probe->deadline_event = host_.loop().schedule(total_budget, [probe]() {
    probe->finish(false, "measurement deadline exceeded");
  });

  host_.controller().extend_circuit(
      probe->path,
      [this, probe](tor::CircuitHandle h) {
        if (probe->finished) return;
        probe->handle = h;
        // The stream must be attached manually: claim the next STREAM NEW
        // notification and route it to ATTACHSTREAM on our fresh circuit.
        probe->stream_wait = host_.controller().expect_stream_new(
            [this, probe](std::uint16_t stream_id, std::string) {
              probe->stream_wait = 0;
              if (probe->finished) return;
              host_.controller().attach_stream(
                  stream_id, probe->handle, [probe](bool ok) {
                    if (!ok) probe->finish(false, "ATTACHSTREAM failed");
                  });
            });
        // Echo client s: open the app connection through the SOCKS port.
        host_.net().connect(
            host_.host(), host_.socks_endpoint(), simnet::Protocol::kTcp,
            [this, probe](simnet::ConnPtr conn) {
              if (probe->finished) {
                conn->close();
                return;
              }
              probe->app_conn = conn;
              conn->set_on_message([probe](Bytes msg) {
                if (probe->finished) return;
                if (!probe->sampling) {
                  const std::string s(msg.begin(), msg.end());
                  if (s == "OK") {
                    probe->begin_sampling();
                  } else {
                    probe->finish(false, "SOCKS error: " + s);
                  }
                  return;
                }
                probe->on_echo();
              });
              conn->set_on_close([probe]() {
                probe->finish(false, "echo stream closed early");
              });
              const std::string req =
                  "CONNECT " + host_.echo_endpoint().str();
              conn->send(Bytes(req.begin(), req.end()));
            },
            [probe](const std::string& err) {
              probe->finish(false, "SOCKS connect failed: " + err);
            });
      },
      [probe](const std::string& err) {
        probe->finish(false, "circuit build failed: " + err);
      });
}

CircuitMeasurement TingMeasurer::measure_circuit_blocking(
    const std::vector<dir::Fingerprint>& middle_relays, int samples) {
  std::optional<CircuitMeasurement> out;
  measure_circuit(middle_relays, samples,
                  [&out](CircuitMeasurement m) { out = std::move(m); });
  host_.loop().run_while_waiting_for([&out]() { return out.has_value(); },
                                     Duration::seconds(3600));
  TING_CHECK_MSG(out.has_value(), "circuit measurement never completed");
  return std::move(*out);
}

// ---- full Ting pair measurement ---------------------------------------------

ErrorClass TingMeasurer::classify_failure(const dir::Fingerprint& x,
                                          const dir::Fingerprint& y,
                                          ErrorClass circuit_class) {
  const dir::Consensus& consensus = host_.op().consensus();
  if (consensus.find(x) == nullptr || consensus.find(y) == nullptr)
    return ErrorClass::kRelayChurned;
  return circuit_class == ErrorClass::kNone ? ErrorClass::kTransient
                                            : circuit_class;
}

void TingMeasurer::measure_async(const dir::Fingerprint& x,
                                 const dir::Fingerprint& y,
                                 std::function<void(PairResult)> on_done) {
  auto result = std::make_shared<PairResult>();
  result->x = x;
  result->y = y;
  const TimePoint started = host_.loop().now();

  if (x == y || x == host_.w_fp() || y == host_.w_fp() || x == host_.z_fp() ||
      y == host_.z_fp()) {
    result->error = "invalid pair (x, y must be distinct remote relays)";
    result->error_class = ErrorClass::kPermanent;
    on_done(std::move(*result));
    return;
  }
  // Note: synchronous failure, like the invalid-pair case above. Callers
  // that must not be re-entered (the scan engines) defer their completion
  // handling through the event loop.
  for (const dir::Fingerprint* fp : {&x, &y}) {
    if (host_.op().consensus().find(*fp) == nullptr) {
      result->error = "relay " + fp->short_name() + " not in consensus";
      result->error_class = ErrorClass::kRelayChurned;
      on_done(std::move(*result));
      return;
    }
  }
  TING_CHECK_MSG(!busy_, "measurer already has a pair measurement in flight");
  busy_ = true;
  on_done = [this, inner = std::move(on_done)](PairResult r) {
    busy_ = false;  // cleared first: the continuation may start the next pair
    inner(std::move(r));
  };

  // Three sequential circuit probes: C_xy, C_x, C_y.
  measure_circuit({x, y}, config_.samples, [this, x, y, result, started,
                                            on_done = std::move(on_done)](
                                               CircuitMeasurement cxy) mutable {
    result->cxy = std::move(cxy);
    if (!result->cxy.ok) {
      result->error = "C_xy: " + result->cxy.error;
      result->error_class = classify_failure(x, y, result->cxy.error_class);
      result->wall_time = host_.loop().now() - started;
      on_done(std::move(*result));
      return;
    }
    measure_circuit({x}, config_.samples, [this, y, result, started,
                                           on_done = std::move(on_done)](
                                              CircuitMeasurement cx) mutable {
      result->cx = std::move(cx);
      if (!result->cx.ok) {
        result->error = "C_x: " + result->cx.error;
        result->error_class =
            classify_failure(result->x, result->y, result->cx.error_class);
        result->wall_time = host_.loop().now() - started;
        on_done(std::move(*result));
        return;
      }
      measure_circuit({y}, config_.samples, [this, result, started,
                                             on_done = std::move(on_done)](
                                                CircuitMeasurement cy) mutable {
        result->cy = std::move(cy);
        result->wall_time = host_.loop().now() - started;
        if (!result->cy.ok) {
          result->error = "C_y: " + result->cy.error;
          result->error_class =
              classify_failure(result->x, result->y, result->cy.error_class);
          on_done(std::move(*result));
          return;
        }
        // Eq. (4): R(x,y) + F_x + F_y.
        result->rtt_ms = result->cxy.min_rtt_ms - 0.5 * result->cx.min_rtt_ms -
                         0.5 * result->cy.min_rtt_ms;
        result->ok = true;
        on_done(std::move(*result));
      });
    });
  });
}

PairResult TingMeasurer::measure_blocking(const dir::Fingerprint& x,
                                          const dir::Fingerprint& y) {
  std::optional<PairResult> out;
  measure(x, y, [&out](PairResult r) { out = std::move(r); });
  host_.loop().run_while_waiting_for([&out]() { return out.has_value(); },
                                     Duration::seconds(36000));
  TING_CHECK_MSG(out.has_value(), "pair measurement never completed");
  return std::move(*out);
}

// ---- strawman baseline (§3.2) -----------------------------------------------

void TingMeasurer::ping_min(IpAddr target, int count,
                            std::function<void(std::optional<double>)> on_done) {
  auto best = std::make_shared<double>(std::numeric_limits<double>::infinity());
  auto remaining = std::make_shared<int>(count);
  auto step = std::make_shared<std::function<void()>>();
  *step = [this, target, best, remaining, step, on_done]() {
    host_.net().ping(host_.host(), target,
                     [best, remaining, step, on_done](std::optional<Duration> rtt) {
                       if (rtt.has_value())
                         *best = std::min(*best, rtt->ms());
                       if (--*remaining > 0) {
                         (*step)();
                         return;
                       }
                       if (std::isfinite(*best)) on_done(*best);
                       else on_done(std::nullopt);
                       *step = {};  // break the self-reference cycle
                     });
  };
  (*step)();
}

void TingMeasurer::strawman_measure(const dir::Fingerprint& x,
                                    const dir::Fingerprint& y, int samples,
                                    std::function<void(PairResult)> on_done) {
  auto result = std::make_shared<PairResult>();
  result->x = x;
  result->y = y;
  const TimePoint started = host_.loop().now();

  const dir::RelayDescriptor* dx = host_.op().consensus().find(x);
  const dir::RelayDescriptor* dy = host_.op().consensus().find(y);
  if (dx == nullptr || dy == nullptr) {
    result->error = "unknown relay";
    result->error_class = ErrorClass::kPermanent;
    on_done(std::move(*result));
    return;
  }
  const IpAddr x_ip = dx->address, y_ip = dy->address;

  // End-to-end circuit (x, y): y must allow exiting to our echo server —
  // already a practical limitation of the strawman that Ting avoids.
  auto probe = std::make_shared<CircuitProbe>();
  probe->self = this;
  probe->path = {x, y};
  probe->samples_target = samples;
  probe->keep_raw = config_.keep_raw_samples;
  probe->on_done = [this, x_ip, y_ip, samples, result, started,
                    on_done = std::move(on_done)](CircuitMeasurement m) mutable {
    result->cxy = std::move(m);
    result->wall_time = host_.loop().now() - started;
    if (!result->cxy.ok) {
      result->error = "strawman circuit: " + result->cxy.error;
      result->error_class = result->cxy.error_class;
      on_done(std::move(*result));
      return;
    }
    const int pings = std::max(1, samples / 10);
    ping_min(x_ip, pings, [this, y_ip, pings, result,
                           on_done = std::move(on_done)](
                              std::optional<double> px) mutable {
      if (!px.has_value()) {
        result->error = "ping to x failed";
        result->error_class = ErrorClass::kTransient;
        on_done(std::move(*result));
        return;
      }
      const double ping_x = *px;
      ping_min(y_ip, pings, [result, ping_x, on_done = std::move(on_done)](
                                std::optional<double> py) mutable {
        if (!py.has_value()) {
          result->error = "ping to y failed";
          result->error_class = ErrorClass::kTransient;
          on_done(std::move(*result));
          return;
        }
        result->rtt_ms = result->cxy.min_rtt_ms - ping_x - *py;
        result->ok = true;
        on_done(std::move(*result));
      });
    });
  };
  run_probe(probe);
}

PairResult TingMeasurer::strawman_measure_blocking(const dir::Fingerprint& x,
                                                   const dir::Fingerprint& y,
                                                   int samples) {
  std::optional<PairResult> out;
  strawman_measure(x, y, samples, [&out](PairResult r) { out = std::move(r); });
  host_.loop().run_while_waiting_for([&out]() { return out.has_value(); },
                                     Duration::seconds(36000));
  TING_CHECK_MSG(out.has_value(), "strawman measurement never completed");
  return std::move(*out);
}

}  // namespace ting::meas
