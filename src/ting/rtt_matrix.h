// RttMatrix — the all-pairs latency dataset Ting produces, with the cache
// semantics §4.6 argues for (measurements are stable over a week, so
// "taking measurements with Ting infrequently and caching them is
// sufficient"). Persisted as CSV so datasets can be shared like the
// original project's published data.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dir/fingerprint.h"
#include "util/time.h"

namespace ting::meas {

class RttMatrix {
 public:
  struct Entry {
    double rtt_ms = 0;
    TimePoint measured_at;
    int samples = 0;
  };

  /// Record a measurement (unordered pair; overwrites older entries).
  void set(const dir::Fingerprint& a, const dir::Fingerprint& b, double rtt_ms,
           TimePoint measured_at = {}, int samples = 0);

  std::optional<double> rtt(const dir::Fingerprint& a,
                            const dir::Fingerprint& b) const;
  const Entry* entry(const dir::Fingerprint& a,
                     const dir::Fingerprint& b) const;
  bool contains(const dir::Fingerprint& a, const dir::Fingerprint& b) const;

  /// A cached value is fresh if measured within `max_age` of `now`.
  bool is_fresh(const dir::Fingerprint& a, const dir::Fingerprint& b,
                TimePoint now, Duration max_age) const;

  /// Copy every entry of `other` into this matrix (overwriting duplicates).
  /// Shard matrices cover disjoint pair sets, so merging them is pure
  /// union; the ordered underlying map keeps to_csv() output independent of
  /// merge order.
  void merge(const RttMatrix& other);

  std::size_t size() const { return entries_.size(); }
  /// All distinct relays appearing in the matrix.
  std::vector<dir::Fingerprint> nodes() const;
  /// All recorded RTT values (one per unordered pair).
  std::vector<double> values() const;
  /// Mean RTT over all pairs — the µ of deanonymization Algorithm 1.
  double mean_rtt() const;

  /// CSV with header "fp_a,fp_b,rtt_ms,measured_at_ns,samples".
  std::string to_csv() const;
  static RttMatrix from_csv(const std::string& csv);
  void save_csv(const std::string& path) const;
  static RttMatrix load_csv(const std::string& path);

 private:
  using Key = std::pair<dir::Fingerprint, dir::Fingerprint>;
  static Key key(const dir::Fingerprint& a, const dir::Fingerprint& b);
  std::map<Key, Entry> entries_;
};

}  // namespace ting::meas
