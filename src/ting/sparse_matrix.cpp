#include "ting/sparse_matrix.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <unordered_set>

#include "ting/bin_codec.h"
#include "util/assert.h"
#include "util/atomic_file.h"

namespace ting::meas {

using binfmt::get_fp;
using binfmt::get_u32le;
using binfmt::get_u64le;
using binfmt::put_fp;
using binfmt::put_u32le;
using binfmt::put_u64le;

SparseRttMatrix::Key SparseRttMatrix::key(const dir::Fingerprint& a,
                                          const dir::Fingerprint& b) {
  return a < b ? Key{a, b} : Key{b, a};
}

bool SparseRttMatrix::fresher(const Entry& l, const Entry& r) {
  if (l.measured_at != r.measured_at) return l.measured_at > r.measured_at;
  const std::uint64_t lb = std::bit_cast<std::uint64_t>(l.rtt_ms);
  const std::uint64_t rb = std::bit_cast<std::uint64_t>(r.rtt_ms);
  if (lb != rb) return lb > rb;
  return l.samples > r.samples;
}

void SparseRttMatrix::wheel_insert(const Key& k, TimePoint at) {
  wheel_[at.ns()].push_back(k);
}

void SparseRttMatrix::wheel_maybe_compact() {
  if (wheel_garbage_ <= entries_.size() + 64) return;
  wheel_.clear();
  wheel_garbage_ = 0;
  for (const auto& [k, v] : entries_) wheel_insert(k, v.measured_at);
}

void SparseRttMatrix::set(const dir::Fingerprint& a, const dir::Fingerprint& b,
                          double rtt_ms, TimePoint measured_at, int samples) {
  TING_CHECK_MSG(!(a == b), "SparseRttMatrix: self-pairs are not meaningful");
  const Key k = key(a, b);
  auto [it, inserted] =
      entries_.try_emplace(k, Entry{rtt_ms, measured_at, samples});
  if (!inserted) {
    const bool restamped = it->second.measured_at != measured_at;
    it->second = Entry{rtt_ms, measured_at, samples};
    // Same stamp: the existing wheel record still points at the live bucket.
    if (!restamped) return;
    ++wheel_garbage_;
  }
  wheel_insert(k, measured_at);
  wheel_maybe_compact();
}

const SparseRttMatrix::Entry* SparseRttMatrix::entry(
    const dir::Fingerprint& a, const dir::Fingerprint& b) const {
  auto it = entries_.find(key(a, b));
  if (it == entries_.end()) return nullptr;
  return &it->second;
}

std::optional<double> SparseRttMatrix::rtt(const dir::Fingerprint& a,
                                           const dir::Fingerprint& b) const {
  const Entry* e = entry(a, b);
  if (e == nullptr) return std::nullopt;
  return e->rtt_ms;
}

bool SparseRttMatrix::contains(const dir::Fingerprint& a,
                               const dir::Fingerprint& b) const {
  return entry(a, b) != nullptr;
}

bool SparseRttMatrix::is_fresh(const dir::Fingerprint& a,
                               const dir::Fingerprint& b, TimePoint now,
                               Duration max_age) const {
  const Entry* e = entry(a, b);
  return e != nullptr && now - e->measured_at <= max_age;
}

void SparseRttMatrix::merge(const SparseRttMatrix& other) {
  reserve_pairs(entries_.size() + other.entries_.size());
  for (const auto& [k, v] : other.entries_) {
    auto [it, inserted] = entries_.try_emplace(k, v);
    if (inserted) {
      wheel_insert(k, v.measured_at);
      continue;
    }
    if (!fresher(v, it->second)) continue;
    const bool restamped = it->second.measured_at != v.measured_at;
    it->second = v;
    if (!restamped) continue;
    ++wheel_garbage_;
    wheel_insert(k, v.measured_at);
  }
  wheel_maybe_compact();
}

void SparseRttMatrix::absorb(const RttMatrix& results, TimePoint stamp) {
  // Walk the dense matrix through its CSV-visible accessors: RttMatrix
  // exposes no iterator, but its node list plus entry() reaches every pair.
  const std::vector<dir::Fingerprint> nodes = results.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      const Entry* e = results.entry(nodes[i], nodes[j]);
      if (e != nullptr) set(nodes[i], nodes[j], e->rtt_ms, stamp, e->samples);
    }
  }
}

std::size_t SparseRttMatrix::erase_relay(const dir::Fingerprint& relay) {
  std::size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.a == relay || it->first.b == relay) {
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  wheel_garbage_ += dropped;  // the wheel records go stale, not away
  wheel_maybe_compact();
  return dropped;
}

void SparseRttMatrix::reserve_pairs(std::size_t pairs) {
  entries_.max_load_factor(kMaxLoadFactor);
  entries_.reserve(pairs);
}

std::size_t SparseRttMatrix::memory_bytes() const {
  // libstdc++ hash nodes carry a next pointer plus a cached hash alongside
  // the payload; the bucket array is one pointer per bucket.
  constexpr std::size_t kHashNodeOverhead = 2 * sizeof(void*);
  std::size_t bytes =
      entries_.size() * (sizeof(std::pair<const Key, Entry>) + kHashNodeOverhead) +
      entries_.bucket_count() * sizeof(void*);
  // Wheel: a red-black tree node per distinct stamp plus the key vectors.
  constexpr std::size_t kTreeNodeOverhead = 4 * sizeof(void*);
  for (const auto& [at, keys] : wheel_) {
    bytes += kTreeNodeOverhead + sizeof(std::int64_t) + sizeof(keys) +
             keys.capacity() * sizeof(Key);
  }
  return bytes;
}

std::vector<std::pair<SparseRttMatrix::Key, SparseRttMatrix::Entry>>
SparseRttMatrix::sorted_items() const {
  std::vector<std::pair<Key, Entry>> items(entries_.begin(), entries_.end());
  std::sort(items.begin(), items.end(),
            [](const auto& l, const auto& r) {
              if (l.first.a != r.first.a) return l.first.a < r.first.a;
              return l.first.b < r.first.b;
            });
  return items;
}

std::vector<dir::Fingerprint> SparseRttMatrix::nodes() const {
  std::set<dir::Fingerprint> uniq;
  for (const auto& [k, v] : entries_) {
    uniq.insert(k.a);
    uniq.insert(k.b);
  }
  return {uniq.begin(), uniq.end()};
}

std::vector<double> SparseRttMatrix::values() const {
  std::vector<double> out;
  out.reserve(entries_.size());
  for (const auto& [k, v] : sorted_items()) out.push_back(v.rtt_ms);
  return out;
}

double SparseRttMatrix::mean_rtt() const {
  TING_CHECK_MSG(!entries_.empty(), "empty RTT matrix");
  double total = 0;
  for (const auto& [k, v] : sorted_items()) total += v.rtt_ms;
  return total / static_cast<double>(entries_.size());
}

std::vector<SparseRttMatrix::PairAge> SparseRttMatrix::expired_pairs(
    TimePoint now, Duration max_age) const {
  // Walk wheel buckets oldest-first and stop at the TTL horizon; validate
  // each record against the live entry (overwrites leave stale records
  // behind). A pair re-stamped back to an earlier value can leave two valid
  // records in one bucket, so dedupe after the sort.
  std::vector<PairAge> out;
  for (const auto& [at_ns, keys] : wheel_) {
    if (now.ns() - at_ns <= max_age.ns()) break;
    for (const Key& k : keys) {
      auto it = entries_.find(k);
      if (it == entries_.end() || it->second.measured_at.ns() != at_ns)
        continue;
      out.push_back(PairAge{k.a, k.b, it->second.measured_at});
    }
  }
  std::sort(out.begin(), out.end(), [](const PairAge& l, const PairAge& r) {
    if (l.measured_at != r.measured_at) return l.measured_at < r.measured_at;
    if (l.a != r.a) return l.a < r.a;
    return l.b < r.b;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const PairAge& l, const PairAge& r) {
                          return l.a == r.a && l.b == r.b &&
                                 l.measured_at == r.measured_at;
                        }),
            out.end());
  return out;
}

SparseRttMatrix::CoverageCount SparseRttMatrix::coverage(
    const std::vector<dir::Fingerprint>& nodes, TimePoint now,
    Duration max_age) const {
  // Count over stored entries instead of probing all C(n,2) pairs: at 6,000
  // relays the all-pairs probe is 18M hash lookups per epoch, while the
  // store typically holds only what the budget has measured so far.
  CoverageCount c;
  c.total = nodes.size() * (nodes.size() - 1) / 2;
  const std::unordered_set<dir::Fingerprint> members(nodes.begin(),
                                                     nodes.end());
  for (const auto& [k, v] : entries_) {
    if (!members.contains(k.a) || !members.contains(k.b)) continue;
    if (now - v.measured_at <= max_age) {
      ++c.fresh;
    } else {
      ++c.stale;
    }
  }
  c.missing = c.total - c.fresh - c.stale;
  return c;
}

RttMatrix SparseRttMatrix::to_rtt_matrix() const {
  RttMatrix dense;
  for (const auto& [k, v] : entries_)
    dense.set(k.a, k.b, v.rtt_ms, v.measured_at, v.samples);
  return dense;
}

SparseRttMatrix SparseRttMatrix::from_rtt_matrix(const RttMatrix& dense) {
  SparseRttMatrix sparse;
  const std::vector<dir::Fingerprint> nodes = dense.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      const Entry* e = dense.entry(nodes[i], nodes[j]);
      if (e != nullptr)
        sparse.set(nodes[i], nodes[j], e->rtt_ms, e->measured_at, e->samples);
    }
  }
  return sparse;
}

std::string SparseRttMatrix::to_csv() const {
  std::ostringstream os;
  os << "fp_a,fp_b,rtt_ms,measured_at_ns,samples\n";
  for (const auto& [k, v] : sorted_items()) {
    os << k.a.hex() << "," << k.b.hex() << "," << v.rtt_ms << ","
       << v.measured_at.ns() << "," << v.samples << "\n";
  }
  return os.str();
}

SparseRttMatrix SparseRttMatrix::from_csv(const std::string& csv) {
  // Reuse the dense parser — identical schema, identical strictness.
  return from_rtt_matrix(RttMatrix::from_csv(csv));
}

void SparseRttMatrix::save_csv(const std::string& path) const {
  atomic_write_file(path, to_csv());
}

SparseRttMatrix SparseRttMatrix::load_csv(const std::string& path) {
  return from_rtt_matrix(RttMatrix::load_csv(path));
}

std::string SparseRttMatrix::to_bin() const {
  std::string out;
  out.reserve(16 + entries_.size() * kBinRecordSize);
  out.append(kBinMagic, 8);
  put_u64le(out, entries_.size());
  for (const auto& [k, v] : sorted_items()) {
    put_fp(out, k.a);
    put_fp(out, k.b);
    put_u64le(out, std::bit_cast<std::uint64_t>(v.rtt_ms));
    put_u64le(out, static_cast<std::uint64_t>(v.measured_at.ns()));
    put_u32le(out, static_cast<std::uint32_t>(v.samples));
  }
  return out;
}

SparseRttMatrix SparseRttMatrix::from_bin(const std::string& bin) {
  TING_CHECK_MSG(bin.size() >= 16 && std::memcmp(bin.data(), kBinMagic, 8) == 0,
                 "sparse matrix: missing TINGSMX1 magic");
  const std::uint64_t count = get_u64le(bin, 8);
  TING_CHECK_MSG(bin.size() == 16 + count * kBinRecordSize,
                 "sparse matrix: truncated binary image ("
                     << bin.size() << " bytes for " << count << " records)");
  SparseRttMatrix m;
  m.reserve_pairs(count);
  for (std::uint64_t r = 0; r < count; ++r) {
    const std::size_t off = 16 + r * kBinRecordSize;
    const dir::Fingerprint a = get_fp(bin, off);
    const dir::Fingerprint b = get_fp(bin, off + 20);
    const double rtt_ms = std::bit_cast<double>(get_u64le(bin, off + 40));
    const auto at_ns = static_cast<std::int64_t>(get_u64le(bin, off + 48));
    const auto samples = static_cast<std::int32_t>(get_u32le(bin, off + 56));
    m.set(a, b, rtt_ms, TimePoint::from_ns(at_ns), samples);
  }
  return m;
}

void SparseRttMatrix::save_bin(const std::string& path) const {
  atomic_write_file(path, to_bin());
}

SparseRttMatrix SparseRttMatrix::load_bin(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  TING_CHECK_MSG(f.good(), "cannot open " << path);
  std::stringstream buf;
  buf << f.rdbuf();
  return from_bin(buf.str());
}

RttMatrix load_matrix_any(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  TING_CHECK_MSG(f.good(), "cannot open " << path);
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string content = buf.str();
  if (content.size() >= 8 &&
      std::memcmp(content.data(), SparseRttMatrix::kBinMagic, 8) == 0)
    return SparseRttMatrix::from_bin(content).to_rtt_matrix();
  return RttMatrix::from_csv(content);
}

}  // namespace ting::meas
