#include "ting/sparse_matrix.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>

#include "ting/bin_codec.h"
#include "util/assert.h"
#include "util/atomic_file.h"

namespace ting::meas {

using binfmt::get_fp;
using binfmt::get_u32le;
using binfmt::get_u64le;
using binfmt::put_fp;
using binfmt::put_u32le;
using binfmt::put_u64le;

SparseRttMatrix::Key SparseRttMatrix::key(const dir::Fingerprint& a,
                                          const dir::Fingerprint& b) {
  return a < b ? Key{a, b} : Key{b, a};
}

bool SparseRttMatrix::fresher(const Entry& l, const Entry& r) {
  if (l.measured_at != r.measured_at) return l.measured_at > r.measured_at;
  const std::uint64_t lb = std::bit_cast<std::uint64_t>(l.rtt_ms);
  const std::uint64_t rb = std::bit_cast<std::uint64_t>(r.rtt_ms);
  if (lb != rb) return lb > rb;
  return l.samples > r.samples;
}

void SparseRttMatrix::set(const dir::Fingerprint& a, const dir::Fingerprint& b,
                          double rtt_ms, TimePoint measured_at, int samples) {
  TING_CHECK_MSG(!(a == b), "SparseRttMatrix: self-pairs are not meaningful");
  entries_[key(a, b)] = Entry{rtt_ms, measured_at, samples};
}

const SparseRttMatrix::Entry* SparseRttMatrix::entry(
    const dir::Fingerprint& a, const dir::Fingerprint& b) const {
  auto it = entries_.find(key(a, b));
  if (it == entries_.end()) return nullptr;
  return &it->second;
}

std::optional<double> SparseRttMatrix::rtt(const dir::Fingerprint& a,
                                           const dir::Fingerprint& b) const {
  const Entry* e = entry(a, b);
  if (e == nullptr) return std::nullopt;
  return e->rtt_ms;
}

bool SparseRttMatrix::contains(const dir::Fingerprint& a,
                               const dir::Fingerprint& b) const {
  return entry(a, b) != nullptr;
}

bool SparseRttMatrix::is_fresh(const dir::Fingerprint& a,
                               const dir::Fingerprint& b, TimePoint now,
                               Duration max_age) const {
  const Entry* e = entry(a, b);
  return e != nullptr && now - e->measured_at <= max_age;
}

void SparseRttMatrix::merge(const SparseRttMatrix& other) {
  for (const auto& [k, v] : other.entries_) {
    auto [it, inserted] = entries_.try_emplace(k, v);
    if (!inserted && fresher(v, it->second)) it->second = v;
  }
}

void SparseRttMatrix::absorb(const RttMatrix& results, TimePoint stamp) {
  // Walk the dense matrix through its CSV-visible accessors: RttMatrix
  // exposes no iterator, but its node list plus entry() reaches every pair.
  const std::vector<dir::Fingerprint> nodes = results.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      const Entry* e = results.entry(nodes[i], nodes[j]);
      if (e != nullptr) set(nodes[i], nodes[j], e->rtt_ms, stamp, e->samples);
    }
  }
}

std::size_t SparseRttMatrix::erase_relay(const dir::Fingerprint& relay) {
  std::size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.a == relay || it->first.b == relay) {
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

std::vector<std::pair<SparseRttMatrix::Key, SparseRttMatrix::Entry>>
SparseRttMatrix::sorted_items() const {
  std::vector<std::pair<Key, Entry>> items(entries_.begin(), entries_.end());
  std::sort(items.begin(), items.end(),
            [](const auto& l, const auto& r) {
              if (l.first.a != r.first.a) return l.first.a < r.first.a;
              return l.first.b < r.first.b;
            });
  return items;
}

std::vector<dir::Fingerprint> SparseRttMatrix::nodes() const {
  std::set<dir::Fingerprint> uniq;
  for (const auto& [k, v] : entries_) {
    uniq.insert(k.a);
    uniq.insert(k.b);
  }
  return {uniq.begin(), uniq.end()};
}

std::vector<double> SparseRttMatrix::values() const {
  std::vector<double> out;
  out.reserve(entries_.size());
  for (const auto& [k, v] : sorted_items()) out.push_back(v.rtt_ms);
  return out;
}

double SparseRttMatrix::mean_rtt() const {
  TING_CHECK_MSG(!entries_.empty(), "empty RTT matrix");
  double total = 0;
  for (const auto& [k, v] : sorted_items()) total += v.rtt_ms;
  return total / static_cast<double>(entries_.size());
}

std::vector<SparseRttMatrix::PairAge> SparseRttMatrix::expired_pairs(
    TimePoint now, Duration max_age) const {
  std::vector<PairAge> out;
  for (const auto& [k, v] : entries_)
    if (now - v.measured_at > max_age)
      out.push_back(PairAge{k.a, k.b, v.measured_at});
  std::sort(out.begin(), out.end(), [](const PairAge& l, const PairAge& r) {
    if (l.measured_at != r.measured_at) return l.measured_at < r.measured_at;
    if (l.a != r.a) return l.a < r.a;
    return l.b < r.b;
  });
  return out;
}

SparseRttMatrix::CoverageCount SparseRttMatrix::coverage(
    const std::vector<dir::Fingerprint>& nodes, TimePoint now,
    Duration max_age) const {
  CoverageCount c;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      ++c.total;
      const Entry* e = entry(nodes[i], nodes[j]);
      if (e == nullptr) {
        ++c.missing;
      } else if (now - e->measured_at <= max_age) {
        ++c.fresh;
      } else {
        ++c.stale;
      }
    }
  }
  return c;
}

RttMatrix SparseRttMatrix::to_rtt_matrix() const {
  RttMatrix dense;
  for (const auto& [k, v] : entries_)
    dense.set(k.a, k.b, v.rtt_ms, v.measured_at, v.samples);
  return dense;
}

SparseRttMatrix SparseRttMatrix::from_rtt_matrix(const RttMatrix& dense) {
  SparseRttMatrix sparse;
  const std::vector<dir::Fingerprint> nodes = dense.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      const Entry* e = dense.entry(nodes[i], nodes[j]);
      if (e != nullptr)
        sparse.set(nodes[i], nodes[j], e->rtt_ms, e->measured_at, e->samples);
    }
  }
  return sparse;
}

std::string SparseRttMatrix::to_csv() const {
  std::ostringstream os;
  os << "fp_a,fp_b,rtt_ms,measured_at_ns,samples\n";
  for (const auto& [k, v] : sorted_items()) {
    os << k.a.hex() << "," << k.b.hex() << "," << v.rtt_ms << ","
       << v.measured_at.ns() << "," << v.samples << "\n";
  }
  return os.str();
}

SparseRttMatrix SparseRttMatrix::from_csv(const std::string& csv) {
  // Reuse the dense parser — identical schema, identical strictness.
  return from_rtt_matrix(RttMatrix::from_csv(csv));
}

void SparseRttMatrix::save_csv(const std::string& path) const {
  atomic_write_file(path, to_csv());
}

SparseRttMatrix SparseRttMatrix::load_csv(const std::string& path) {
  return from_rtt_matrix(RttMatrix::load_csv(path));
}

std::string SparseRttMatrix::to_bin() const {
  std::string out;
  out.reserve(16 + entries_.size() * kBinRecordSize);
  out.append(kBinMagic, 8);
  put_u64le(out, entries_.size());
  for (const auto& [k, v] : sorted_items()) {
    put_fp(out, k.a);
    put_fp(out, k.b);
    put_u64le(out, std::bit_cast<std::uint64_t>(v.rtt_ms));
    put_u64le(out, static_cast<std::uint64_t>(v.measured_at.ns()));
    put_u32le(out, static_cast<std::uint32_t>(v.samples));
  }
  return out;
}

SparseRttMatrix SparseRttMatrix::from_bin(const std::string& bin) {
  TING_CHECK_MSG(bin.size() >= 16 && std::memcmp(bin.data(), kBinMagic, 8) == 0,
                 "sparse matrix: missing TINGSMX1 magic");
  const std::uint64_t count = get_u64le(bin, 8);
  TING_CHECK_MSG(bin.size() == 16 + count * kBinRecordSize,
                 "sparse matrix: truncated binary image ("
                     << bin.size() << " bytes for " << count << " records)");
  SparseRttMatrix m;
  m.entries_.reserve(count);
  for (std::uint64_t r = 0; r < count; ++r) {
    const std::size_t off = 16 + r * kBinRecordSize;
    const dir::Fingerprint a = get_fp(bin, off);
    const dir::Fingerprint b = get_fp(bin, off + 20);
    const double rtt_ms = std::bit_cast<double>(get_u64le(bin, off + 40));
    const auto at_ns = static_cast<std::int64_t>(get_u64le(bin, off + 48));
    const auto samples = static_cast<std::int32_t>(get_u32le(bin, off + 56));
    m.set(a, b, rtt_ms, TimePoint::from_ns(at_ns), samples);
  }
  return m;
}

void SparseRttMatrix::save_bin(const std::string& path) const {
  atomic_write_file(path, to_bin());
}

SparseRttMatrix SparseRttMatrix::load_bin(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  TING_CHECK_MSG(f.good(), "cannot open " << path);
  std::stringstream buf;
  buf << f.rdbuf();
  return from_bin(buf.str());
}

RttMatrix load_matrix_any(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  TING_CHECK_MSG(f.good(), "cannot open " << path);
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string content = buf.str();
  if (content.size() >= 8 &&
      std::memcmp(content.data(), SparseRttMatrix::kBinMagic, 8) == 0)
    return SparseRttMatrix::from_bin(content).to_rtt_matrix();
  return RttMatrix::from_csv(content);
}

}  // namespace ting::meas
