#include "ting/half_circuit_cache.h"

#include <bit>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "ting/bin_codec.h"
#include "util/assert.h"
#include "util/atomic_file.h"
#include "util/bytes.h"

namespace ting::meas {

void HalfCircuitCache::store(const dir::Fingerprint& host_w,
                             const dir::Fingerprint& relay, double rtt_ms,
                             TimePoint measured_at, int samples) {
  TING_CHECK_MSG(!(host_w == relay),
                 "half-circuit cache: apparatus cannot be its own target");
  const Entry entry{rtt_ms, measured_at, samples};
  entries_[Key{host_w, relay}] = entry;
  if (store_observer_) store_observer_(host_w, relay, entry);
}

const HalfCircuitCache::Entry* HalfCircuitCache::lookup(
    const dir::Fingerprint& host_w, const dir::Fingerprint& relay) const {
  const auto it = entries_.find(Key{host_w, relay});
  if (it == entries_.end()) return nullptr;
  return &it->second;
}

const HalfCircuitCache::Entry* HalfCircuitCache::fresh(
    const dir::Fingerprint& host_w, const dir::Fingerprint& relay,
    TimePoint now) const {
  const Entry* e = lookup(host_w, relay);
  if (e == nullptr || now - e->measured_at > max_age_) return nullptr;
  return e;
}

bool HalfCircuitCache::erase(const dir::Fingerprint& host_w,
                             const dir::Fingerprint& relay) {
  return entries_.erase(Key{host_w, relay}) > 0;
}

std::size_t HalfCircuitCache::erase_relay(const dir::Fingerprint& relay) {
  std::size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.second == relay) {
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

void HalfCircuitCache::merge_freshest(const HalfCircuitCache& other) {
  for (const auto& [k, v] : other.entries_) {
    const auto it = entries_.find(k);
    if (it == entries_.end() || v.measured_at > it->second.measured_at)
      entries_[k] = v;
  }
}

std::string HalfCircuitCache::to_csv() const {
  std::ostringstream os;
  os << "host_fp,relay_fp,rtt_ms,measured_at_ns,samples\n";
  for (const auto& [k, v] : entries_) {
    os << k.first.hex() << "," << k.second.hex() << "," << v.rtt_ms << ","
       << v.measured_at.ns() << "," << v.samples << "\n";
  }
  return os.str();
}

HalfCircuitCache HalfCircuitCache::from_csv(const std::string& csv) {
  HalfCircuitCache c;
  bool first = true;
  for (const std::string& line : split(csv, '\n')) {
    if (first) {
      first = false;
      continue;  // header
    }
    if (trim(line).empty()) continue;
    const auto cols = split(line, ',');
    TING_CHECK_MSG(cols.size() == 5, "bad half-circuit cache row: " << line);
    // Same strict parsing as RttMatrix::from_csv: re-raise stod/stoll/stoi
    // failures as CheckError naming the line, and reject trailing junk.
    double rtt_ms = 0;
    long long at_ns = 0;
    int samples = 0;
    bool ok = false;
    try {
      std::size_t pos = 0;
      rtt_ms = std::stod(cols[2], &pos);
      if (pos == cols[2].size()) {
        at_ns = std::stoll(cols[3], &pos);
        if (pos == cols[3].size()) {
          samples = std::stoi(cols[4], &pos);
          ok = pos == cols[4].size();
        }
      }
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }
    TING_CHECK_MSG(ok, "bad half-circuit cache row: " << line);
    c.store(dir::Fingerprint::from_hex(cols[0]),
            dir::Fingerprint::from_hex(cols[1]), rtt_ms,
            TimePoint::from_ns(at_ns), samples);
  }
  return c;
}

void HalfCircuitCache::save_csv(const std::string& path) const {
  // Crash-safe replacement, same rationale as RttMatrix::save_csv.
  atomic_write_file(path, to_csv());
}

HalfCircuitCache HalfCircuitCache::load_csv(const std::string& path) {
  std::ifstream f(path);
  TING_CHECK_MSG(f.good(), "cannot open " << path);
  std::stringstream buf;
  buf << f.rdbuf();
  return from_csv(buf.str());
}

std::string HalfCircuitCache::to_bin() const {
  // Same fixed 60-byte record layout as the sparse matrix: (host_w, relay)
  // in place of the pair, then rtt bits / timestamp / samples. The ordered
  // map iterates in key order, so equal caches serialize to equal bytes.
  std::string out;
  out.reserve(16 + entries_.size() * 60);
  out.append(kBinMagic, 8);
  binfmt::put_u64le(out, entries_.size());
  for (const auto& [k, v] : entries_) {
    binfmt::put_fp(out, k.first);
    binfmt::put_fp(out, k.second);
    binfmt::put_u64le(out, std::bit_cast<std::uint64_t>(v.rtt_ms));
    binfmt::put_u64le(out, static_cast<std::uint64_t>(v.measured_at.ns()));
    binfmt::put_u32le(out, static_cast<std::uint32_t>(v.samples));
  }
  return out;
}

HalfCircuitCache HalfCircuitCache::from_bin(const std::string& bin) {
  TING_CHECK_MSG(bin.size() >= 16 && std::memcmp(bin.data(), kBinMagic, 8) == 0,
                 "half-circuit cache: missing TINGHCX1 magic");
  const std::uint64_t count = binfmt::get_u64le(bin, 8);
  TING_CHECK_MSG(bin.size() == 16 + count * 60,
                 "half-circuit cache: truncated binary image ("
                     << bin.size() << " bytes for " << count << " records)");
  HalfCircuitCache c;
  for (std::uint64_t r = 0; r < count; ++r) {
    const std::size_t off = 16 + r * 60;
    const dir::Fingerprint host_w = binfmt::get_fp(bin, off);
    const dir::Fingerprint relay = binfmt::get_fp(bin, off + 20);
    const double rtt_ms = std::bit_cast<double>(binfmt::get_u64le(bin, off + 40));
    const auto at_ns = static_cast<std::int64_t>(binfmt::get_u64le(bin, off + 48));
    const auto samples = static_cast<std::int32_t>(binfmt::get_u32le(bin, off + 56));
    // Direct insertion: loading moves already-recorded entries around, so
    // the store observer must not re-fire (see the header's observer note).
    c.entries_[Key{host_w, relay}] = Entry{rtt_ms, TimePoint::from_ns(at_ns),
                                           static_cast<int>(samples)};
  }
  return c;
}

void HalfCircuitCache::save_bin(const std::string& path) const {
  atomic_write_file(path, to_bin());
}

HalfCircuitCache HalfCircuitCache::load_bin(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  TING_CHECK_MSG(f.good(), "cannot open " << path);
  std::stringstream buf;
  buf << f.rdbuf();
  return from_bin(buf.str());
}

}  // namespace ting::meas
