#include "ting/delta_scan.h"

#include <algorithm>
#include <queue>
#include <tuple>

#include "util/assert.h"

namespace ting::meas {

namespace {

struct ExpiredCandidate {
  std::size_t i, j;
  TimePoint measured_at;
};

/// Priority among expired candidates: older beats newer, ties broken by
/// index pair so the plan is deterministic.
bool older(const ExpiredCandidate& l, const ExpiredCandidate& r) {
  return std::tie(l.measured_at, l.i, l.j) < std::tie(r.measured_at, r.i, r.j);
}

}  // namespace

DeltaPlan plan_delta(const SparseRttMatrix& matrix,
                     const std::vector<dir::Fingerprint>& nodes, TimePoint now,
                     const DeltaPlanOptions& options) {
  DeltaPlan plan;
  std::vector<ExpiredCandidate> expired;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      const SparseRttMatrix::Entry* e = matrix.entry(nodes[i], nodes[j]);
      if (e == nullptr) {
        ++plan.new_pairs;
        if (options.budget == 0 || plan.pairs.size() < options.budget)
          plan.pairs.emplace_back(i, j);
        else
          ++plan.dropped_over_budget;
      } else if (now - e->measured_at <= options.ttl) {
        ++plan.fresh_pairs;
      } else {
        expired.push_back(ExpiredCandidate{i, j, e->measured_at});
      }
    }
  }
  plan.expired_pairs = expired.size();

  // Budget remaining after the never-measured pairs (which always win: a
  // missing pair costs coverage, a stale one only accuracy).
  std::size_t room = expired.size();
  if (options.budget != 0)
    room = options.budget - std::min(options.budget, plan.pairs.size());

  if (room >= expired.size()) {
    // Everything fits — just order oldest-first.
    std::sort(expired.begin(), expired.end(), older);
  } else {
    // Freshness heap: keep the `room` oldest candidates in a bounded
    // max-heap (top = freshest of the kept), O(n log room) instead of
    // sorting every stale pair of a large consensus.
    auto fresher = [](const ExpiredCandidate& l, const ExpiredCandidate& r) {
      return older(l, r);  // max-heap on "older" puts the freshest kept on top
    };
    std::priority_queue<ExpiredCandidate, std::vector<ExpiredCandidate>,
                        decltype(fresher)>
        keep(fresher);
    for (const ExpiredCandidate& c : expired) {
      if (keep.size() < room) {
        keep.push(c);
      } else if (room > 0 && older(c, keep.top())) {
        keep.pop();
        keep.push(c);
      }
    }
    plan.dropped_over_budget += expired.size() - keep.size();
    expired.clear();
    while (!keep.empty()) {
      expired.push_back(keep.top());
      keep.pop();
    }
    std::reverse(expired.begin(), expired.end());  // heap drains freshest-first
  }
  for (const ExpiredCandidate& c : expired) plan.pairs.emplace_back(c.i, c.j);
  return plan;
}

ConsensusDeltaTracker::Delta ConsensusDeltaTracker::observe(
    const std::vector<dir::Fingerprint>& nodes) {
  const std::set<dir::Fingerprint> next(nodes.begin(), nodes.end());
  Delta d;
  for (const dir::Fingerprint& fp : next)
    if (!current_.contains(fp)) d.joined.push_back(fp);
  for (const dir::Fingerprint& fp : current_)
    if (!next.contains(fp)) d.left.push_back(fp);
  current_ = next;
  return d;
}

}  // namespace ting::meas
