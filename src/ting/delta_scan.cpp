#include "ting/delta_scan.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <tuple>

#include "util/assert.h"

namespace ting::meas {

bool expired_before(const ExpiredCandidate& l, const ExpiredCandidate& r) {
  return std::tie(l.measured_at, l.i, l.j) < std::tie(r.measured_at, r.i, r.j);
}

namespace {

/// Append the expired candidates to plan.pairs under whatever budget room is
/// left after the new pairs, oldest first per expired_before; the overflow
/// is counted into dropped_over_budget. Shared by plan_delta and the
/// incremental planner so the cut is defined in exactly one place.
void emit_expired(DeltaPlan& plan, std::vector<ExpiredCandidate> expired,
                  std::size_t budget) {
  plan.expired_pairs += expired.size();

  // Budget remaining after the never-measured pairs (which always win: a
  // missing pair costs coverage, a stale one only accuracy).
  std::size_t room = expired.size();
  if (budget != 0) room = budget - std::min(budget, plan.pairs.size());

  if (room >= expired.size()) {
    // Everything fits — just order oldest-first.
    std::sort(expired.begin(), expired.end(), expired_before);
  } else {
    // Freshness heap: keep the `room` oldest candidates in a bounded
    // max-heap (top = freshest of the kept), O(n log room) instead of
    // sorting every stale pair of a large consensus.
    auto fresher = [](const ExpiredCandidate& l, const ExpiredCandidate& r) {
      // max-heap on "older" puts the freshest kept on top
      return expired_before(l, r);
    };
    std::priority_queue<ExpiredCandidate, std::vector<ExpiredCandidate>,
                        decltype(fresher)>
        keep(fresher);
    for (const ExpiredCandidate& c : expired) {
      if (keep.size() < room) {
        keep.push(c);
      } else if (room > 0 && expired_before(c, keep.top())) {
        keep.pop();
        keep.push(c);
      }
    }
    plan.dropped_over_budget += expired.size() - keep.size();
    expired.clear();
    while (!keep.empty()) {
      expired.push_back(keep.top());
      keep.pop();
    }
    std::reverse(expired.begin(), expired.end());  // heap drains freshest-first
  }
  for (const ExpiredCandidate& c : expired) plan.pairs.emplace_back(c.i, c.j);
}

}  // namespace

DeltaPlan plan_delta(const SparseRttMatrix& matrix,
                     const std::vector<dir::Fingerprint>& nodes, TimePoint now,
                     const DeltaPlanOptions& options) {
  DeltaPlan plan;
  std::vector<ExpiredCandidate> expired;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      const SparseRttMatrix::Entry* e = matrix.entry(nodes[i], nodes[j]);
      if (e == nullptr) {
        ++plan.new_pairs;
        if (options.budget == 0 || plan.pairs.size() < options.budget)
          plan.pairs.emplace_back(i, j);
        else
          ++plan.dropped_over_budget;
      } else if (now - e->measured_at <= options.ttl) {
        ++plan.fresh_pairs;
      } else {
        expired.push_back(ExpiredCandidate{i, j, e->measured_at});
      }
    }
  }
  emit_expired(plan, std::move(expired), options.budget);
  return plan;
}

std::uint32_t IncrementalDeltaPlanner::intern(const dir::Fingerprint& fp) {
  auto [it, inserted] =
      id_of_.try_emplace(fp, static_cast<std::uint32_t>(fp_by_id_.size()));
  if (inserted) fp_by_id_.push_back(fp);
  return it->second;
}

void IncrementalDeltaPlanner::reset() {
  primed_ = false;
  missing_.clear();
  // The intern table survives: ids stay valid and relays recur.
}

DeltaPlan IncrementalDeltaPlanner::plan_delta_incremental(
    const SparseRttMatrix& matrix, const std::vector<dir::Fingerprint>& nodes,
    const std::vector<dir::Fingerprint>& joined, TimePoint now,
    const DeltaPlanOptions& options) {
  constexpr std::uint32_t kAbsent = std::numeric_limits<std::uint32_t>::max();
  const std::size_t n = nodes.size();
  const std::size_t total = n * (n - 1) / 2;

  DeltaPlan plan;
  // Missing pairs of this epoch, node-index pairs in lexicographic order —
  // exactly the set and order plan_delta's census loop would discover.
  std::vector<std::pair<std::size_t, std::size_t>> miss_idx;
  std::vector<ExpiredCandidate> expired;

  if (!primed_) {
    // Prime: the same full O(n²) census as plan_delta, recording the
    // complete missing backlog along the way. Every later epoch pays only
    // for the delta.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const SparseRttMatrix::Entry* e = matrix.entry(nodes[i], nodes[j]);
        if (e == nullptr) {
          miss_idx.emplace_back(i, j);
        } else if (now - e->measured_at <= options.ttl) {
          ++plan.fresh_pairs;
        } else {
          expired.push_back(ExpiredCandidate{i, j, e->measured_at});
        }
      }
    }
  } else {
    std::unordered_map<dir::Fingerprint, std::size_t> index_of;
    index_of.reserve(n * 2);
    for (std::size_t k = 0; k < n; ++k) index_of.emplace(nodes[k], k);

    // Interned id -> index in this epoch's node vector (kAbsent if gone).
    std::vector<std::uint32_t> idx_of_id(fp_by_id_.size(), kAbsent);
    for (std::size_t k = 0; k < n; ++k) {
      auto it = id_of_.find(nodes[k]);
      if (it != id_of_.end())
        idx_of_id[it->second] = static_cast<std::uint32_t>(k);
    }

    std::vector<char> is_joined(n, 0);
    for (const dir::Fingerprint& g : joined) {
      auto it = index_of.find(g);
      TING_CHECK_MSG(it != index_of.end(),
                     "plan_delta_incremental: joined relay not in nodes");
      is_joined[it->second] = 1;
    }

    // Churn-in candidates: every pair touching a joined relay that the
    // matrix has never measured. Rejoining relays often return with their
    // old estimates intact — those pairs are fresh or expired by stamp, not
    // new. A pair of two joined relays is emitted once, from the lower
    // index.
    std::vector<std::pair<std::size_t, std::size_t>> churn_new;
    for (const dir::Fingerprint& g : joined) {
      const std::size_t kg = index_of.find(g)->second;
      for (std::size_t k = 0; k < n; ++k) {
        if (k == kg) continue;
        if (is_joined[k] && k < kg) continue;
        const std::size_t i = std::min(k, kg);
        const std::size_t j = std::max(k, kg);
        if (matrix.contains(nodes[i], nodes[j])) continue;
        churn_new.emplace_back(i, j);
      }
    }
    std::sort(churn_new.begin(), churn_new.end());

    // Backlog survivors: drop pairs measured since the last epoch and pairs
    // touching a relay that left (a rejoin regenerates them as churn-in).
    // The surviving entries keep their relative order under the monotone
    // old-index -> new-index mapping, so no re-sort is needed.
    std::vector<std::pair<std::size_t, std::size_t>> backlog;
    backlog.reserve(missing_.size());
    for (const auto& [a, b] : missing_) {
      const std::uint32_t ia = idx_of_id[a];
      const std::uint32_t ib = idx_of_id[b];
      if (ia == kAbsent || ib == kAbsent) continue;
      if (matrix.contains(fp_by_id_[a], fp_by_id_[b])) continue;
      backlog.emplace_back(std::min<std::size_t>(ia, ib),
                           std::max<std::size_t>(ia, ib));
    }

    // The two lists are disjoint (churn-in pairs touch a relay that was not
    // a member when the backlog was recorded), so a linear merge yields the
    // full missing census in lexicographic order.
    miss_idx.reserve(backlog.size() + churn_new.size());
    std::merge(backlog.begin(), backlog.end(), churn_new.begin(),
               churn_new.end(), std::back_inserter(miss_idx));

    // Expired pairs straight off the freshness wheel (O(expired), already
    // TTL-cut), filtered to current members and mapped to node indices.
    for (const SparseRttMatrix::PairAge& pa :
         matrix.expired_pairs(now, options.ttl)) {
      auto ita = index_of.find(pa.a);
      if (ita == index_of.end()) continue;
      auto itb = index_of.find(pa.b);
      if (itb == index_of.end()) continue;
      const std::size_t i = std::min(ita->second, itb->second);
      const std::size_t j = std::max(ita->second, itb->second);
      expired.push_back(ExpiredCandidate{i, j, pa.measured_at});
    }

    // Every current pair is exactly one of missing / expired / fresh, so
    // the fresh census needs no enumeration.
    plan.fresh_pairs = total - miss_idx.size() - expired.size();
  }

  plan.new_pairs = miss_idx.size();
  const std::size_t emit = options.budget == 0
                               ? miss_idx.size()
                               : std::min(miss_idx.size(), options.budget);
  plan.pairs.reserve(emit);
  for (std::size_t k = 0; k < emit; ++k)
    plan.pairs.emplace_back(miss_idx[k].first, miss_idx[k].second);
  plan.dropped_over_budget += miss_idx.size() - emit;

  emit_expired(plan, std::move(expired), options.budget);

  // Re-intern the census as the next epoch's backlog, in this epoch's
  // index order.
  missing_.clear();
  missing_.reserve(miss_idx.size());
  for (const auto& [i, j] : miss_idx)
    missing_.emplace_back(intern(nodes[i]), intern(nodes[j]));
  primed_ = true;
  return plan;
}

ConsensusDeltaTracker::Delta ConsensusDeltaTracker::observe(
    const std::vector<dir::Fingerprint>& nodes) {
  const std::set<dir::Fingerprint> next(nodes.begin(), nodes.end());
  Delta d;
  for (const dir::Fingerprint& fp : next)
    if (!current_.contains(fp)) d.joined.push_back(fp);
  for (const dir::Fingerprint& fp : current_)
    if (!next.contains(fp)) d.left.push_back(fp);
  current_ = next;
  return d;
}

}  // namespace ting::meas
