#include "ting/quarantine.h"

namespace ting::meas {

RelayQuarantine::State RelayQuarantine::state(const dir::Fingerprint& relay,
                                              TimePoint now) const {
  const auto it = cells_.find(relay);
  if (it == cells_.end()) return State::kClear;
  const Cell& c = it->second;
  if (c.terminal) return State::kTerminal;
  if (c.windows == 0) return State::kClear;  // failures below threshold
  return now < c.until ? State::kQuarantined : State::kProbation;
}

TimePoint RelayQuarantine::release_at(const dir::Fingerprint& relay) const {
  const auto it = cells_.find(relay);
  return it == cells_.end() ? TimePoint{} : it->second.until;
}

bool RelayQuarantine::on_permanent_failure(const dir::Fingerprint& relay,
                                           TimePoint now) {
  if (!options_.enabled) return false;
  Cell& c = cells_[relay];
  if (c.terminal) return false;
  const bool in_window = c.windows > 0 && now < c.until;
  const bool probation = c.windows > 0 && now >= c.until;
  ++c.consecutive;
  if (in_window) {
    // A pair dispatched before the window opened finished inside it; count
    // the failure but don't extend or re-open the window.
    return false;
  }
  if (probation) {
    // The probation probe failed: re-open the window, or write the relay
    // off once the window budget is spent.
    if (c.windows >= options_.max_windows) {
      c.terminal = true;
      events_.push_back(QuarantineEvent{relay, now, now, c.consecutive, true});
      return true;
    }
    ++c.windows;
    c.until = now + options_.cooldown;
    events_.push_back(
        QuarantineEvent{relay, now, c.until, c.consecutive, false});
    return true;
  }
  if (c.consecutive >= options_.threshold) {
    c.windows = 1;
    c.until = now + options_.cooldown;
    events_.push_back(
        QuarantineEvent{relay, now, c.until, c.consecutive, false});
    return true;
  }
  return false;
}

void RelayQuarantine::on_success(const dir::Fingerprint& relay) {
  // Terminal is sticky for the scan: a success through a written-off relay
  // cannot happen (its pairs are deferred, never probed), so erasing
  // unconditionally is safe — but keep the invariant explicit.
  const auto it = cells_.find(relay);
  if (it != cells_.end() && !it->second.terminal) cells_.erase(it);
}

}  // namespace ting::meas
