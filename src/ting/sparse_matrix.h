// SparseRttMatrix — the daemon-scale successor to the dense RttMatrix.
//
// A real consensus is ~6,000 relays (§5.3), i.e. ~18M unordered pairs; a
// continuous scan daemon holds whatever subset it has measured so far, and
// the pair set churns as relays join and leave. The dense std::map CSV
// matrix is the right artifact for a finished 31-node testbed scan but the
// wrong store for that regime: this class keeps hash-indexed pair records
// (O(1) lookup, no dense allocation), persists to a compact fixed-record
// binary format *and* the existing CSV schema (both via util/atomic_file),
// and carries the TTL bookkeeping the delta planner needs — enumeration of
// expired pairs, freshness counting over a node set, and relay erasure on
// churn.
//
// Semantics match RttMatrix where they overlap (unordered canonical pair
// keys, is_fresh against a max-age TTL, identical CSV schema) so scan
// engines and analysis/* can consume either; load_matrix_any() sniffs a
// file's format and hands analysis code a dense matrix no matter which one
// a scan produced. The one deliberate difference: merge() is
// freshest-wins with a total-order tiebreak, making it commutative —
// daemon epochs and shard fragments can merge in any order and agree
// bit-for-bit, where RttMatrix::merge is last-writer-wins.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dir/fingerprint.h"
#include "ting/rtt_matrix.h"
#include "util/time.h"

namespace ting::meas {

class SparseRttMatrix {
 public:
  /// Same entry shape as the dense matrix, so conversions are lossless.
  using Entry = RttMatrix::Entry;

  /// Magic prefix of the binary format (8 bytes, no terminator on disk).
  static constexpr char kBinMagic[] = "TINGSMX1";
  /// Bytes per binary record: fp_a(20) fp_b(20) rtt_bits(8) at_ns(8)
  /// samples(4), little-endian fixed-width fields.
  static constexpr std::size_t kBinRecordSize = 60;

  /// Record a measurement (unordered pair; overwrites unconditionally, like
  /// RttMatrix::set — freshest-wins arbitration is merge()'s job).
  void set(const dir::Fingerprint& a, const dir::Fingerprint& b, double rtt_ms,
           TimePoint measured_at = {}, int samples = 0);

  std::optional<double> rtt(const dir::Fingerprint& a,
                            const dir::Fingerprint& b) const;
  const Entry* entry(const dir::Fingerprint& a,
                     const dir::Fingerprint& b) const;
  bool contains(const dir::Fingerprint& a, const dir::Fingerprint& b) const;
  /// A cached value is fresh if measured within `max_age` of `now`.
  bool is_fresh(const dir::Fingerprint& a, const dir::Fingerprint& b,
                TimePoint now, Duration max_age) const;

  /// Keep the fresher of the two entries for every pair. The winner is
  /// decided by a total order — (measured_at, rtt bit pattern, samples),
  /// larger wins — so merge is commutative and associative: daemon epochs,
  /// shard fragments, and replicated stores converge to the same matrix in
  /// any merge order.
  void merge(const SparseRttMatrix& other);

  /// Fold one scan epoch's dense results in, restamping every entry to
  /// `stamp`. The deterministic engine records zero timestamps (shard
  /// worlds have unrelated virtual clocks); the daemon owns the epoch
  /// clock, so it stamps results at absorption time and TTL decisions are
  /// identical whether an epoch ran uninterrupted or resumed after a crash.
  void absorb(const RttMatrix& results, TimePoint stamp);

  /// Drop every pair touching `relay` (it left the consensus for good, or
  /// its descriptor changed enough that old estimates are suspect).
  /// Returns the number of pairs dropped.
  std::size_t erase_relay(const dir::Fingerprint& relay);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  /// Current entry-table load factor (capped at kMaxLoadFactor once
  /// reserve_pairs has pinned the policy).
  float load_factor() const { return entries_.load_factor(); }
  /// All distinct relays appearing in the matrix, sorted.
  std::vector<dir::Fingerprint> nodes() const;
  /// All recorded RTT values, in canonical pair order.
  std::vector<double> values() const;
  /// Mean RTT over all pairs, summed in canonical order (deterministic).
  double mean_rtt() const;

  /// One stored pair with its age — what the delta planner prioritizes.
  struct PairAge {
    dir::Fingerprint a, b;  ///< canonical order (a < b)
    TimePoint measured_at;
  };
  /// Every stored pair whose entry is older than `max_age` at `now`,
  /// oldest first (ties broken by pair, so the order is deterministic).
  /// Served from the freshness wheel: O(expired + stale index records), not
  /// O(size) — the incremental delta planner calls this every epoch.
  std::vector<PairAge> expired_pairs(TimePoint now, Duration max_age) const;

  /// Freshness census over the all-pairs set of `nodes`.
  struct CoverageCount {
    std::size_t total = 0;    ///< unordered pairs of `nodes`
    std::size_t fresh = 0;    ///< measured within `max_age` of `now`
    std::size_t stale = 0;    ///< measured, but expired
    std::size_t missing = 0;  ///< never measured
    double coverage() const {
      return total == 0 ? 1.0
                        : static_cast<double>(fresh) / static_cast<double>(total);
    }
  };
  CoverageCount coverage(const std::vector<dir::Fingerprint>& nodes,
                         TimePoint now, Duration max_age) const;

  /// Estimated heap footprint in bytes: hash-node payload + chaining
  /// overhead per entry, the bucket pointer array, and the freshness wheel
  /// (one Key per live-or-stale index record plus a tree node per distinct
  /// stamp). An estimate — allocator rounding is not modeled — but it moves
  /// with the store, which is what the daemon status lines and the 18M-entry
  /// bench profile need.
  std::size_t memory_bytes() const;

  /// Bulk-load rehash policy: pin the load factor and size the bucket array
  /// once up front instead of paying log2(n) incremental rehash storms while
  /// millions of records stream in (from_bin and merge call this; callers
  /// that fill via set() in a loop should too).
  void reserve_pairs(std::size_t pairs);

  /// Target load factor for the entry table. Below libstdc++'s default 1.0
  /// to keep lookup chains short for the planner's per-epoch probes, but
  /// high enough that the bucket array stays a minor term next to the
  /// 18M-entry node storage.
  static constexpr float kMaxLoadFactor = 0.9f;

  // ---- interop with the dense matrix ---------------------------------------
  RttMatrix to_rtt_matrix() const;
  static SparseRttMatrix from_rtt_matrix(const RttMatrix& dense);

  // ---- persistence ----------------------------------------------------------
  /// CSV with the RttMatrix header "fp_a,fp_b,rtt_ms,measured_at_ns,samples"
  /// (canonical pair order) — interchangeable with dense CSV artifacts.
  /// Note CSV prints 6 significant digits; the binary format is the
  /// exact-bits one.
  std::string to_csv() const;
  static SparseRttMatrix from_csv(const std::string& csv);
  void save_csv(const std::string& path) const;
  static SparseRttMatrix load_csv(const std::string& path);

  /// Compact binary image: kBinMagic, u64 record count, then fixed 60-byte
  /// records in canonical pair order. Doubles are IEEE-754 bit patterns, so
  /// save/load round-trips exactly and equal matrices serialize to equal
  /// bytes — the property the daemon's crash-resume check compares.
  std::string to_bin() const;
  static SparseRttMatrix from_bin(const std::string& bin);
  void save_bin(const std::string& path) const;
  static SparseRttMatrix load_bin(const std::string& path);

 private:
  struct Key {
    dir::Fingerprint a, b;  ///< canonical: a < b
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      const std::size_t ha = std::hash<dir::Fingerprint>{}(k.a);
      const std::size_t hb = std::hash<dir::Fingerprint>{}(k.b);
      return ha ^ (hb + 0x9e3779b97f4a7c15ULL + (ha << 6) + (ha >> 2));
    }
  };
  static Key key(const dir::Fingerprint& a, const dir::Fingerprint& b);
  /// True when `l` beats `r` under the merge total order.
  static bool fresher(const Entry& l, const Entry& r);
  /// Entries in canonical pair order — the deterministic iteration that
  /// every serialization and aggregate goes through.
  std::vector<std::pair<Key, Entry>> sorted_items() const;

  /// Append an index record for `k` at stamp `at` to the freshness wheel.
  void wheel_insert(const Key& k, TimePoint at);
  /// Rebuild the wheel from entries_ once stale records outnumber live ones.
  void wheel_maybe_compact();

  std::unordered_map<Key, Entry, KeyHash> entries_;

  // Freshness wheel: measured_at (ns) -> pair keys recorded at that stamp,
  // bucket order ascending so expired_pairs() walks oldest-first and stops
  // at the TTL horizon. Maintained lazily: overwrites and erasures leave the
  // old record in place (counted in wheel_garbage_) and enumeration skips
  // records whose stamp no longer matches the live entry; a full rebuild
  // triggers when garbage outgrows the live set, so amortized maintenance is
  // O(1) per mutation and enumeration is O(expired + garbage), never
  // O(size). The daemon stamps whole epochs with one clock value, so bucket
  // counts stay tiny in practice.
  std::map<std::int64_t, std::vector<Key>> wheel_;
  std::size_t wheel_garbage_ = 0;
};

/// Load an RTT matrix of either format: sniffs the binary magic and falls
/// back to CSV. The analysis consumers (tiv / deanon / coords) call this so
/// daemon-produced sparse binaries and classic scan CSVs are
/// interchangeable inputs.
RttMatrix load_matrix_any(const std::string& path);

}  // namespace ting::meas
