#include "ting/measurement_host.h"

#include "util/assert.h"
#include "util/rng.h"

namespace ting::meas {

MeasurementHost::MeasurementHost(simnet::Network& net, simnet::HostId host,
                                 dir::Consensus consensus,
                                 MeasurementHostConfig config,
                                 std::uint64_t seed)
    : net_(net), host_(host), config_(config) {
  const IpAddr my_ip = net_.ip_of(host_);

  // w: our entry-side relay. Never exits; never needs Guard (we pick paths
  // explicitly through the control port).
  tor::RelayConfig wc;
  wc.nickname = "tingW" + config_.label;
  wc.or_port = config_.w_or_port;
  wc.exit_policy = dir::ExitPolicy::reject_all();
  wc.base_forward_ms = config_.local_relay_base_ms;
  wc.queue_mean_ms = config_.local_relay_queue_ms;
  w_ = std::make_unique<tor::Relay>(net_, host_, wc, seed + 1);

  // z: our exit. Restrictive policy — exits only to our own echo server
  // (the paper's "only allowed exiting to ... IP addresses under our
  // control").
  tor::RelayConfig zc;
  zc.nickname = "tingZ" + config_.label;
  zc.or_port = config_.z_or_port;
  zc.exit_policy = dir::ExitPolicy::accept_only({my_ip});
  zc.base_forward_ms = config_.local_relay_base_ms;
  zc.queue_mean_ms = config_.local_relay_queue_ms;
  z_ = std::make_unique<tor::Relay>(net_, host_, zc, seed + 2);

  tor::OnionProxyConfig opc;
  opc.socks_port = config_.socks_port;
  opc.leave_streams_unattached = false;  // SETCONF flips this at start()
  op_ = std::make_unique<tor::OnionProxy>(net_, host_, opc, seed + 3);
  // Hard-code our local relays' descriptors into the client's list rather
  // than publishing them (PublishDescriptors 0).
  consensus.add(w_->descriptor());
  consensus.add(z_->descriptor());
  op_->set_consensus(std::move(consensus));

  control_server_ =
      std::make_unique<ctrl::ControlServer>(*op_, config_.control_port);
  echo_ = std::make_unique<echo::EchoServer>(net_, host_, config_.echo_port);
}

void MeasurementHost::reseed(std::uint64_t seed) {
  w_->reseed(mix64(seed ^ 0x77));  // 'w'
  z_->reseed(mix64(seed ^ 0x7a));  // 'z'
  op_->reseed(mix64(seed ^ 0x6f70));  // "op"
}

Endpoint MeasurementHost::socks_endpoint() const {
  return Endpoint{net_.ip_of(host_), config_.socks_port};
}

void MeasurementHost::start(std::function<void()> on_ready) {
  ctrl::Controller::create(
      net_, host_, control_server_->endpoint(), /*password=*/"",
      [this, on_ready = std::move(on_ready)](ctrl::Controller::Ptr ctl) {
        controller_ = std::move(ctl);
        controller_->set_leave_streams_unattached(
            true, [on_ready]() {
              if (on_ready) on_ready();
            });
      },
      [](const std::string& err) {
        TING_CHECK_MSG(false, "controller connect failed: " << err);
      });
}

void MeasurementHost::start_blocking() {
  bool ready = false;
  start([&ready]() { ready = true; });
  const bool ok = net_.loop().run_while_waiting_for(
      [&ready]() { return ready; }, Duration::seconds(30));
  TING_CHECK_MSG(ok, "measurement host failed to start");
}

}  // namespace ting::meas
