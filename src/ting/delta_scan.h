// Consensus-delta scan planning — the daemon's answer to "which pairs does
// this epoch actually need to measure?".
//
// A continuous scan never re-runs all-pairs from scratch (DiProber's
// continuous-estimation framing; at live-network scale a full rescan is
// ~18M pairs). Instead each epoch plans a *delta* worklist against the
// sparse matrix:
//
//   - never-measured pairs (a relay joined the consensus, or a prior epoch
//     failed/deferred the pair) go first — every missing pair costs
//     coverage,
//   - then TTL-expired pairs, oldest first — refreshing the stalest
//     estimate buys the most accuracy per measurement,
//   - fresh pairs are skipped entirely.
//
// Under a per-epoch measurement budget the ordered candidate list is cut by
// a freshness heap (new pairs always beat expired ones; among expired,
// oldest-first), and the remainder waits for the next epoch. Planning is a
// pure function of (matrix, node set, clock, options), so an epoch resumed
// after a crash re-derives exactly the worklist the crashed process was
// running.
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dir/fingerprint.h"
#include "ting/scheduler.h"
#include "ting/sparse_matrix.h"
#include "util/time.h"

namespace ting::meas {

struct DeltaPlanOptions {
  /// Refresh TTL: a pair measured within `ttl` of the planning clock is
  /// fresh and not replanned. Sits on top of the engines' 7-day staleness
  /// (ScanOptions::max_age governs intra-scan cache skips; this governs
  /// which pairs enter the worklist at all).
  Duration ttl = Duration::seconds(7 * 24 * 3600);
  /// Per-epoch measurement budget: keep at most this many pairs (0 =
  /// unlimited). Truncation drops the lowest-priority candidates.
  std::size_t budget = 0;
};

struct DeltaPlan {
  /// The epoch worklist as index pairs into the planning node vector
  /// (ParallelScanner::scan_pairs / ShardedScanner::scan_pairs input),
  /// priority order: new pairs (by index), then expired pairs oldest-first.
  ParallelScanner::PairList pairs;
  std::size_t new_pairs = 0;      ///< never measured
  std::size_t expired_pairs = 0;  ///< measured, but older than ttl
  std::size_t fresh_pairs = 0;    ///< skipped: measured within ttl
  /// Candidates cut by the budget (they stay stale and re-plan next epoch).
  std::size_t dropped_over_budget = 0;
};

/// Plan one epoch's delta worklist over the all-pairs set of `nodes`.
DeltaPlan plan_delta(const SparseRttMatrix& matrix,
                     const std::vector<dir::Fingerprint>& nodes, TimePoint now,
                     const DeltaPlanOptions& options = {});

/// One TTL-expired worklist candidate: an index pair into the planning node
/// vector plus the stamp that expired.
struct ExpiredCandidate {
  std::size_t i = 0, j = 0;
  TimePoint measured_at;
};

/// Priority among expired candidates: older beats newer, and equal stamps
/// tie-break on the index pair. This is a strict total order, so
/// plan_delta's full sort, its bounded freshness heap, and the incremental
/// planner's wheel-fed path all cut the same candidates in the same order —
/// the property the bit-for-bit equivalence tests pin. (The daemon restamps
/// whole epochs with one clock value, so equal-stamp ties are the common
/// case, not a corner.)
bool expired_before(const ExpiredCandidate& l, const ExpiredCandidate& r);

/// Incremental equivalent of plan_delta() for the daemon's steady state:
/// instead of re-probing all C(n,2) pairs each epoch, it maintains the
/// missing-pair backlog across calls and pays only for the epoch's actual
/// work — O(joined·n) churn candidates, O(expired) records off the matrix's
/// freshness wheel, O(backlog) cleanup, and O(budget) emission. The first
/// call (and the first call after reset()) runs the same full census as
/// plan_delta and primes the backlog, which is exactly what a crash-resumed
/// process needs: resuming re-derives the crashed epoch's worklist from the
/// persisted matrix alone.
///
/// Equivalence contract (pinned by tests): the returned plan is identical —
/// pair order and all counters — to plan_delta over the same (matrix,
/// nodes, now, options), provided
///   (a) surviving relays keep their relative order across successive
///       `nodes` vectors (both daemon environments enumerate testbed
///       construction order filtered by membership, which guarantees this),
///   (b) `joined` is exactly the churn-in since the previous call
///       (ConsensusDeltaTracker::observe's output), and
///   (c) between calls the matrix only gains or refreshes entries
///       (set/merge/absorb) — after erase_relay(), call reset().
class IncrementalDeltaPlanner {
 public:
  DeltaPlan plan_delta_incremental(const SparseRttMatrix& matrix,
                                   const std::vector<dir::Fingerprint>& nodes,
                                   const std::vector<dir::Fingerprint>& joined,
                                   TimePoint now,
                                   const DeltaPlanOptions& options = {});

  /// Drop the backlog; the next call runs a full census again.
  void reset();
  bool primed() const { return primed_; }
  /// Missing pairs carried by the backlog (8 bytes each — the bootstrap
  /// backlog of an empty 6,000-relay matrix is ~18M pairs, ~144 MB).
  std::size_t backlog_pairs() const { return missing_.size(); }

 private:
  std::uint32_t intern(const dir::Fingerprint& fp);

  bool primed_ = false;
  /// Interned relay ids: fingerprints recur across epochs, so the backlog
  /// stores 4-byte ids instead of 20-byte fingerprints.
  std::vector<dir::Fingerprint> fp_by_id_;
  std::unordered_map<dir::Fingerprint, std::uint32_t> id_of_;
  /// Never-measured pairs among the last planned epoch's members, kept in
  /// that epoch's node-index order (stable for survivors per the contract).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> missing_;
};

/// Tracks consensus membership across epochs and reports the churn delta —
/// which relays joined and which left since the previous observation. The
/// daemon feeds each epoch's node set through this to log churn and to hand
/// the joined set to the incremental planner; the plan itself stays a pure
/// function of (matrix, nodes, clock, options) — plan_delta needs no
/// history, and the incremental planner's backlog is just a cache of what
/// the matrix already encodes.
class ConsensusDeltaTracker {
 public:
  struct Delta {
    std::vector<dir::Fingerprint> joined;  ///< sorted
    std::vector<dir::Fingerprint> left;    ///< sorted
  };

  /// Record `nodes` as the current consensus and return the delta against
  /// the previously observed set (first call: everything joined).
  Delta observe(const std::vector<dir::Fingerprint>& nodes);

  const std::set<dir::Fingerprint>& current() const { return current_; }

 private:
  std::set<dir::Fingerprint> current_;
};

}  // namespace ting::meas
