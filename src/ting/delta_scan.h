// Consensus-delta scan planning — the daemon's answer to "which pairs does
// this epoch actually need to measure?".
//
// A continuous scan never re-runs all-pairs from scratch (DiProber's
// continuous-estimation framing; at live-network scale a full rescan is
// ~18M pairs). Instead each epoch plans a *delta* worklist against the
// sparse matrix:
//
//   - never-measured pairs (a relay joined the consensus, or a prior epoch
//     failed/deferred the pair) go first — every missing pair costs
//     coverage,
//   - then TTL-expired pairs, oldest first — refreshing the stalest
//     estimate buys the most accuracy per measurement,
//   - fresh pairs are skipped entirely.
//
// Under a per-epoch measurement budget the ordered candidate list is cut by
// a freshness heap (new pairs always beat expired ones; among expired,
// oldest-first), and the remainder waits for the next epoch. Planning is a
// pure function of (matrix, node set, clock, options), so an epoch resumed
// after a crash re-derives exactly the worklist the crashed process was
// running.
#pragma once

#include <cstddef>
#include <set>
#include <vector>

#include "dir/fingerprint.h"
#include "ting/scheduler.h"
#include "ting/sparse_matrix.h"
#include "util/time.h"

namespace ting::meas {

struct DeltaPlanOptions {
  /// Refresh TTL: a pair measured within `ttl` of the planning clock is
  /// fresh and not replanned. Sits on top of the engines' 7-day staleness
  /// (ScanOptions::max_age governs intra-scan cache skips; this governs
  /// which pairs enter the worklist at all).
  Duration ttl = Duration::seconds(7 * 24 * 3600);
  /// Per-epoch measurement budget: keep at most this many pairs (0 =
  /// unlimited). Truncation drops the lowest-priority candidates.
  std::size_t budget = 0;
};

struct DeltaPlan {
  /// The epoch worklist as index pairs into the planning node vector
  /// (ParallelScanner::scan_pairs / ShardedScanner::scan_pairs input),
  /// priority order: new pairs (by index), then expired pairs oldest-first.
  ParallelScanner::PairList pairs;
  std::size_t new_pairs = 0;      ///< never measured
  std::size_t expired_pairs = 0;  ///< measured, but older than ttl
  std::size_t fresh_pairs = 0;    ///< skipped: measured within ttl
  /// Candidates cut by the budget (they stay stale and re-plan next epoch).
  std::size_t dropped_over_budget = 0;
};

/// Plan one epoch's delta worklist over the all-pairs set of `nodes`.
DeltaPlan plan_delta(const SparseRttMatrix& matrix,
                     const std::vector<dir::Fingerprint>& nodes, TimePoint now,
                     const DeltaPlanOptions& options = {});

/// Tracks consensus membership across epochs and reports the churn delta —
/// which relays joined and which left since the previous observation. The
/// daemon feeds each epoch's node set through this to log churn and to
/// decide nothing: planning needs no history (the matrix itself encodes
/// what is known), so the planner stays a pure function.
class ConsensusDeltaTracker {
 public:
  struct Delta {
    std::vector<dir::Fingerprint> joined;  ///< sorted
    std::vector<dir::Fingerprint> left;    ///< sorted
  };

  /// Record `nodes` as the current consensus and return the delta against
  /// the previously observed set (first call: everything joined).
  Delta observe(const std::vector<dir::Fingerprint>& nodes);

  const std::set<dir::Fingerprint>& current() const { return current_; }

 private:
  std::set<dir::Fingerprint> current_;
};

}  // namespace ting::meas
