#include "ting/scheduler.h"

#include <algorithm>
#include <set>

#include "ting/half_circuit_cache.h"
#include "ting/scan_journal.h"
#include "util/log.h"
#include "util/rng.h"

namespace ting::meas {

namespace {

/// Fold a fingerprint into a well-mixed 64-bit value (order-sensitive over
/// its bytes, so distinct fingerprints rarely collide).
std::uint64_t fp_mix(const dir::Fingerprint& fp) {
  std::uint64_t v = 0x243F6A8885A308D3ULL;
  for (std::uint8_t b : fp.bytes()) v = mix64(v ^ b);
  return v;
}

/// Let in-flight teardown traffic from the previous pair finish without
/// fast-forwarding to far-future scheduled work (fault windows): execute
/// events only while the next one lies within `horizon` of virtual now.
void drain_in_flight(simnet::EventLoop& loop, Duration horizon) {
  while (const auto next = loop.next_event_time()) {
    if (*next > loop.now() + horizon) break;
    loop.run_one();
  }
}

constexpr Duration kDrainHorizon = Duration::seconds(60);

/// Snapshot of which scan nodes the directory knows at scan start. A
/// churned-classified failure for a relay that was never known upgrades to
/// permanent: there is no consensus entry to wait for.
std::set<dir::Fingerprint> never_known_nodes(
    const std::vector<dir::Fingerprint>& nodes,
    const dir::Consensus& reference) {
  std::set<dir::Fingerprint> out;
  for (const dir::Fingerprint& fp : nodes)
    if (reference.find(fp) == nullptr) out.insert(fp);
  return out;
}

/// Re-resolve a churned pair against the live consensus: re-inject the
/// descriptors of x and y into every pool measurer that lost them, and drop
/// both relays' half-circuit cache entries — a relay that left and rejoined
/// may have moved, so its memoized minima are suspect. Returns true if both
/// relays are resolvable again (descriptor present or re-injected
/// everywhere).
bool reresolve_pair(const dir::Consensus* live,
                    const std::vector<TingMeasurer*>& measurers,
                    const dir::Fingerprint& x, const dir::Fingerprint& y,
                    HalfCircuitCache* half_cache) {
  if (half_cache != nullptr) {
    half_cache->erase_relay(x);
    half_cache->erase_relay(y);
  }
  if (live == nullptr) return false;
  bool both = true;
  for (const dir::Fingerprint* fp : {&x, &y}) {
    const dir::RelayDescriptor* desc = live->find(*fp);
    if (desc == nullptr) {
      both = false;
      continue;
    }
    for (TingMeasurer* m : measurers)
      if (m->host().op().consensus().find(*fp) == nullptr)
        m->host().op().add_descriptor(*desc);
  }
  return both;
}

/// Sum one attempted pair measurement's engine statistics into the report.
void accumulate_pair_stats(ScanReport& report, const PairResult& r) {
  report.time_building += r.build_time();
  report.time_sampling += r.sample_time();
  report.circuits_built += static_cast<std::size_t>(r.circuits_built());
  report.half_cache_hits += static_cast<std::size_t>(r.half_cache_hits());
  report.samples_saved += static_cast<std::size_t>(r.samples_saved());
}

/// Attach a half-circuit cache to every pool measurer for the scan's
/// duration; detaching (and dropping leftover prebuilt circuits) on the way
/// out keeps the measurers reusable outside the scan.
class MeasurerScanScope {
 public:
  MeasurerScanScope(const std::vector<TingMeasurer*>& measurers,
                    HalfCircuitCache* cache)
      : measurers_(measurers) {
    if (cache != nullptr)
      for (TingMeasurer* m : measurers_) m->set_half_cache(cache);
  }
  ~MeasurerScanScope() {
    for (TingMeasurer* m : measurers_) {
      m->set_half_cache(nullptr);
      m->discard_prebuilts();
    }
  }

 private:
  const std::vector<TingMeasurer*>& measurers_;
};

/// The result a progress callback sees for a cache hit: ok, flagged
/// from_cache, carrying the cached estimate.
PairResult cached_result(const RttMatrix& cache, const dir::Fingerprint& x,
                         const dir::Fingerprint& y) {
  PairResult r;
  r.x = x;
  r.y = y;
  r.ok = true;
  r.from_cache = true;
  if (const auto rtt = cache.rtt(x, y)) r.rtt_ms = *rtt;
  return r;
}

void count_failure(ScanReport& report, ErrorClass cls) {
  ++report.failed;
  switch (cls) {
    case ErrorClass::kPermanent: ++report.failed_permanent; break;
    case ErrorClass::kRelayChurned: ++report.failed_churned; break;
    default: ++report.failed_transient; break;
  }
}

void annotate_fault_events(ScanReport& report, const ScanOptions& options,
                           TimePoint started, TimePoint ended) {
  if (options.fault_plan == nullptr) return;
  for (const simnet::FaultPlan::Event& e : options.fault_plan->events())
    if (e.at >= started && e.at <= ended) report.fault_events.push_back(e);
}

// ---- crash safety & graceful degradation helpers ----------------------------

bool stop_requested(const ScanOptions& options) {
  return options.stop != nullptr &&
         options.stop->load(std::memory_order_relaxed);
}

/// Append one terminally-resolved pair to the write-ahead journal (no-op
/// without one). `measured_at` must equal the timestamp the engine stored in
/// the matrix, so a resume rebuilds identical entries.
void journal_pair(const ScanOptions& options, const dir::Fingerprint& x,
                  const dir::Fingerprint& y, const PairResult& r, int attempts,
                  ErrorClass cls, TimePoint measured_at) {
  if (options.journal == nullptr) return;
  ScanJournal::PairRecord rec;
  rec.a = x;
  rec.b = y;
  rec.ok = r.ok;
  rec.attempts = attempts;
  rec.error_class = r.ok ? ErrorClass::kNone : cls;
  rec.rtt_ms = r.ok ? r.rtt_ms : 0.0;
  rec.measured_at = measured_at;
  rec.samples = r.cxy.samples_taken;
  rec.error = r.error;
  options.journal->record_pair(rec);
}

/// What the quarantine breaker says about probing pair (x, y) right now.
struct QuarantineGate {
  enum class Verdict {
    kProceed,  ///< both relays probe-able
    kHold,     ///< a relay is inside a cooldown window; park the pair
    kDefer,    ///< a relay is terminal; resolve the pair as deferred
  };
  Verdict verdict = Verdict::kProceed;
  dir::Fingerprint culprit;  ///< the terminal relay (kDefer)
  bool probation = false;    ///< this probe tests an expired window
};

QuarantineGate quarantine_gate(const RelayQuarantine& q,
                               const ScanOptions& options,
                               const dir::Fingerprint& x,
                               const dir::Fingerprint& y, TimePoint now) {
  QuarantineGate g;
  if (!options.quarantine.enabled) return g;
  for (const dir::Fingerprint* fp : {&x, &y}) {
    switch (q.state(*fp, now)) {
      case RelayQuarantine::State::kTerminal:
        g.verdict = QuarantineGate::Verdict::kDefer;
        g.culprit = *fp;
        return g;
      case RelayQuarantine::State::kQuarantined:
        g.verdict = QuarantineGate::Verdict::kHold;
        break;
      case RelayQuarantine::State::kProbation:
        g.probation = true;
        break;
      case RelayQuarantine::State::kClear:
        break;
    }
  }
  return g;
}

/// Charge a pair's permanent failure to the relays the scan can actually
/// blame: endpoints the directory never knew are definite culprits;
/// otherwise both endpoints share the charge (successes reset the counter,
/// so a healthy relay paired with a sick one doesn't accumulate). New
/// breaker transitions are appended to the report (and journal) and
/// returned so the caller can schedule window-expiry wake-ups.
std::vector<QuarantineEvent> charge_permanent(
    RelayQuarantine& q, ScanReport& report, const ScanOptions& options,
    const dir::Fingerprint& x, const dir::Fingerprint& y,
    const std::set<dir::Fingerprint>& never_known, TimePoint now) {
  if (!options.quarantine.enabled) return {};
  const std::size_t before = q.events().size();
  bool charged = false;
  for (const dir::Fingerprint* fp : {&x, &y}) {
    if (never_known.contains(*fp)) {
      q.on_permanent_failure(*fp, now);
      charged = true;
    }
  }
  if (!charged) {
    q.on_permanent_failure(x, now);
    q.on_permanent_failure(y, now);
  }
  std::vector<QuarantineEvent> fresh(q.events().begin() + static_cast<long>(before),
                                     q.events().end());
  for (const QuarantineEvent& ev : fresh) {
    TING_WARN("scan: relay " << ev.relay.short_name()
                             << (ev.terminal
                                     ? " written off (quarantine budget spent)"
                                     : " quarantined")
                             << " after " << ev.failures
                             << " consecutive permanent failures");
    report.quarantine_events.push_back(ev);
    if (options.journal != nullptr)
      options.journal->record_quarantine(ScanJournal::QuarantineRecord{
          ev.relay, ev.at, ev.until, ev.failures, ev.terminal});
  }
  return fresh;
}

void clear_quarantine(RelayQuarantine& q, const ScanOptions& options,
                      const dir::Fingerprint& x, const dir::Fingerprint& y) {
  if (!options.quarantine.enabled) return;
  q.on_success(x);
  q.on_success(y);
}

/// The result a progress callback sees for a deferred pair.
PairResult deferred_result(const dir::Fingerprint& x, const dir::Fingerprint& y,
                           const dir::Fingerprint& culprit) {
  PairResult r;
  r.x = x;
  r.y = y;
  r.deferred = true;
  r.error = "deferred: relay " + culprit.short_name() + " quarantined";
  return r;
}

/// The serial scan driver shared by AllPairsScanner and the deterministic
/// sharded path: one pair at a time through the cache check, quarantine
/// gate, retry policy (per-class, like the parallel engine), journaling,
/// and graceful-stop handling. The two engines differ only in how a single
/// attempt is measured (`measure_attempt`) and in whether matrix/journal
/// timestamps are zeroed (deterministic mode: shard worlds run unrelated
/// virtual clocks).
///
/// Quarantine-held pairs are parked in a side list; when the live worklist
/// drains, the driver fast-forwards virtual time to the earliest window
/// expiry and requeues them — probation probes then decide between clearing
/// the breaker and walking it to terminal, at which point remaining pairs
/// resolve as deferred. Every round either resolves a pair or advances a
/// breaker window, so the loop terminates.
void serial_scan_pairs(
    TingMeasurer& m, const std::vector<TingMeasurer*>& pool, RttMatrix& cache,
    const std::vector<dir::Fingerprint>& nodes,
    std::deque<std::pair<std::size_t, std::size_t>> work,
    const ScanOptions& options, const ScanProgress& progress,
    ScanReport& report, simnet::EventLoop& loop,
    const std::set<dir::Fingerprint>& never_known,
    const std::function<PairResult(const dir::Fingerprint&,
                                   const dir::Fingerprint&)>& measure_attempt,
    bool zero_timestamps, bool pipeline) {
  RelayQuarantine quarantine(options.quarantine);
  std::vector<std::pair<std::size_t, std::size_t>> held;
  std::size_t done = 0;

  while (!work.empty()) {
    if (stop_requested(options)) break;
    const auto [i, j] = work.front();
    work.pop_front();
    const dir::Fingerprint& x = nodes[i];
    const dir::Fingerprint& y = nodes[j];

    if (cache.is_fresh(x, y, loop.now(), options.max_age)) {
      ++done;
      ++report.from_cache;
      if (progress)
        progress(done, report.pairs_total, cached_result(cache, x, y));
    } else if (const QuarantineGate gate =
                   quarantine_gate(quarantine, options, x, y, loop.now());
               gate.verdict == QuarantineGate::Verdict::kDefer) {
      ++done;
      ++report.deferred;
      report.deferred_pairs.push_back(DeferredPair{x, y, gate.culprit});
      if (progress)
        progress(done, report.pairs_total, deferred_result(x, y, gate.culprit));
    } else if (gate.verdict == QuarantineGate::Verdict::kHold) {
      held.emplace_back(i, j);
    } else {
      if (gate.probation) ++report.probation_probes;
      // Pipelining: launch the next pair's C_xy build now, so its
      // EXTENDCIRCUIT round trips overlap this pair's sampling phase.
      if (pipeline) {
        for (const auto& [qi, qj] : work) {
          if (cache.is_fresh(nodes[qi], nodes[qj], loop.now(),
                             options.max_age))
            continue;
          m.prebuild(nodes[qi], nodes[qj]);
          break;
        }
      }
      // One measurement actually in flight (cache-only scans report 0).
      report.max_in_flight = 1;
      report.max_per_relay_in_flight = 1;
      for (int attempt = 0;; ++attempt) {
        if (attempt > 0) {
          // A stop request between attempts abandons the pair (it counts as
          // interrupted and --resume retries it).
          if (stop_requested(options)) break;
          ++report.retries;
        }
        const PairResult r = measure_attempt(x, y);
        accumulate_pair_stats(report, r);
        const TimePoint stamp = zero_timestamps ? TimePoint{} : loop.now();
        if (r.ok) {
          cache.set(x, y, r.rtt_ms, stamp, r.cxy.samples_taken);
          ++report.measured;
          ++report.retry_histogram[static_cast<std::size_t>(attempt)];
          ++done;
          journal_pair(options, x, y, r, attempt + 1, ErrorClass::kNone, stamp);
          clear_quarantine(quarantine, options, x, y);
          if (progress) progress(done, report.pairs_total, r);
          break;
        }
        ErrorClass cls = r.error_class == ErrorClass::kNone
                             ? ErrorClass::kTransient
                             : r.error_class;
        if (cls == ErrorClass::kRelayChurned &&
            (never_known.contains(x) || never_known.contains(y)))
          cls = ErrorClass::kPermanent;
        // Permanents get no further attempts; everything else retries until
        // the budget is exhausted.
        if (cls == ErrorClass::kPermanent ||
            attempt + 1 >= options.attempts_per_pair) {
          TING_WARN("scan: pair " << x.short_name() << "," << y.short_name()
                                  << " failed (" << to_string(cls)
                                  << "): " << r.error);
          count_failure(report, cls);
          report.failed_pairs.push_back(FailedPair{x, y, cls, r.error});
          ++report.retry_histogram[static_cast<std::size_t>(attempt)];
          ++done;
          journal_pair(options, x, y, r, attempt + 1, cls, stamp);
          if (cls == ErrorClass::kPermanent)
            charge_permanent(quarantine, report, options, x, y, never_known,
                             loop.now());
          if (progress) progress(done, report.pairs_total, r);
          break;
        }
        if (cls == ErrorClass::kRelayChurned) {
          // Wait out a consensus interval, then pull the relay's descriptor
          // back in if it rejoined.
          loop.run_until(loop.now() + options.churn_requeue_delay);
          if (reresolve_pair(options.live_consensus, pool, x, y,
                             options.half_cache))
            ++report.churn_reresolved;
        } else {
          // Transient: exponential backoff before re-attempting — a crashed
          // relay gets time to come back.
          Duration delay = options.retry_backoff_base;
          for (int k = 0; k < attempt; ++k)
            delay = delay * options.retry_backoff_factor;
          loop.run_until(loop.now() + delay);
        }
      }
    }

    // The live worklist drained but quarantined pairs are parked: advance
    // virtual time to the earliest window expiry and requeue them, so
    // probation probes can run (or terminal relays defer their pairs).
    if (work.empty() && !held.empty() && !stop_requested(options)) {
      TimePoint wake;
      bool any_quarantined = false;
      for (const auto& [hi, hj] : held) {
        for (const dir::Fingerprint* fp : {&nodes[hi], &nodes[hj]}) {
          if (quarantine.state(*fp, loop.now()) ==
              RelayQuarantine::State::kQuarantined) {
            const TimePoint rel = quarantine.release_at(*fp);
            if (!any_quarantined || rel < wake) wake = rel;
            any_quarantined = true;
          }
        }
      }
      if (any_quarantined && wake > loop.now()) loop.run_until(wake);
      for (const auto& h : held) work.push_back(h);
      held.clear();
    }
  }

  // Anything not terminally resolved (stop mid-scan) is interrupted; a
  // --resume retries it.
  report.interrupted_pairs = report.pairs_total - done;
  report.interrupted = report.interrupted_pairs > 0;
}

}  // namespace

std::uint64_t pair_reseed(std::uint64_t pair_seed, const dir::Fingerprint& x,
                          const dir::Fingerprint& y) {
  // XOR of the per-fingerprint folds makes the value commutative in (x, y),
  // so both orderings of a pair reseed the world identically.
  return mix64(pair_seed ^ fp_mix(x) ^ fp_mix(y));
}

std::uint64_t half_reseed(std::uint64_t pair_seed, const dir::Fingerprint& x) {
  // Double-mixing the fold keeps the half-circuit domain disjoint from
  // pair_reseed (where raw folds XOR together), so C_x never shares a world
  // seed with any pair's C_xy.
  return mix64(pair_seed ^ mix64(fp_mix(x)));
}

ScanReport AllPairsScanner::scan(const std::vector<dir::Fingerprint>& nodes,
                                 const ScanOptions& options,
                                 const Progress& progress) {
  TING_CHECK(options.attempts_per_pair >= 1);
  ScanReport report;
  report.retry_histogram.assign(
      static_cast<std::size_t>(options.attempts_per_pair), 0);
  simnet::EventLoop& loop = measurer_.host().loop();
  const TimePoint started = loop.now();
  const std::vector<TingMeasurer*> pool{&measurer_};
  const MeasurerScanScope scope(pool, options.half_cache);
  const std::set<dir::Fingerprint> never_known = never_known_nodes(
      nodes, options.live_consensus != nullptr ? *options.live_consensus
                                               : measurer_.host().op().consensus());

  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j)
      pairs.emplace_back(i, j);
  report.pairs_total = pairs.size();

  if (options.randomize_order) {
    Rng rng(options.order_seed);
    rng.shuffle(pairs);
  }

  serial_scan_pairs(
      measurer_, pool, cache_, nodes,
      std::deque<std::pair<std::size_t, std::size_t>>(pairs.begin(),
                                                      pairs.end()),
      options, progress, report, loop, never_known,
      [&](const dir::Fingerprint& x, const dir::Fingerprint& y) {
        return measurer_.measure_blocking(x, y);
      },
      /*zero_timestamps=*/false, /*pipeline=*/options.pipeline_builds);

  report.virtual_time = loop.now() - started;
  annotate_fault_events(report, options, started, loop.now());
  return report;
}

// ---- ParallelScanner --------------------------------------------------------

struct ParallelScanner::ScanState {
  struct Task {
    std::size_t i = 0, j = 0;
    int attempt = 0;  ///< retries used so far
  };

  const std::vector<dir::Fingerprint>* nodes = nullptr;
  ParallelScanOptions options;
  Progress progress;
  ScanReport report;

  static constexpr std::size_t kNoHint = static_cast<std::size_t>(-1);

  std::vector<Task> tasks;
  std::deque<std::size_t> ready;  ///< task indices awaiting a host + admission
  std::map<dir::Fingerprint, int> relay_in_flight;
  std::vector<bool> host_busy;
  /// Pipelining: host_hint[h] is the task whose C_xy circuit host h
  /// prebuilt while running its current measurement (kNoHint if none); pump
  /// prefers routing that task back to h so the prebuilt circuit is adopted.
  std::vector<std::size_t> host_hint;
  std::set<dir::Fingerprint> never_known;  ///< scan-start consensus snapshot
  std::size_t in_flight = 0;
  std::size_t outstanding = 0;  ///< tasks not yet terminally resolved
  std::size_t done = 0;         ///< resolved pairs, for progress reporting
  /// Per-relay circuit breaker; quarantine-held tasks simply stay in `ready`
  /// (inadmissible) until a scheduled wake at their window's expiry.
  RelayQuarantine quarantine;
  /// Graceful shutdown: once the stop flag is seen, no new dispatches happen
  /// and queued retries/ready tasks resolve as interrupted.
  bool stopping = false;
  /// Wake events scheduled at quarantine-window expiries; cancelled at scan
  /// end so none can fire against a dead ScanState.
  std::vector<simnet::EventId> wakes;
};

ParallelScanner::ParallelScanner(std::vector<TingMeasurer*> measurers,
                                 RttMatrix& cache)
    : measurers_(std::move(measurers)), cache_(cache) {
  TING_CHECK_MSG(!measurers_.empty(), "pool needs at least one measurer");
  for (TingMeasurer* m : measurers_) {
    TING_CHECK(m != nullptr);
    TING_CHECK_MSG(&m->host().loop() == &measurers_[0]->host().loop(),
                   "all pool measurers must share one event loop");
  }
}

void ParallelScanner::pump(ScanState& st) {
  simnet::EventLoop& loop = measurers_[0]->host().loop();

  // Graceful shutdown: on the first stop sighting, everything still queued
  // resolves as interrupted (in-flight measurements drain via on_complete,
  // which also sees `stopping` and won't schedule retries).
  if (!st.stopping && stop_requested(st.options)) {
    st.stopping = true;
    st.report.interrupted_pairs += st.ready.size();
    st.outstanding -= st.ready.size();
    st.ready.clear();
  }
  if (st.stopping) return;

  // A terminal relay's tasks resolve as deferred the moment they surface.
  if (st.options.quarantine.enabled) {
    for (auto it = st.ready.begin(); it != st.ready.end();) {
      const ScanState::Task& task = st.tasks[*it];
      const QuarantineGate gate =
          quarantine_gate(st.quarantine, st.options, (*st.nodes)[task.i],
                          (*st.nodes)[task.j], loop.now());
      if (gate.verdict == QuarantineGate::Verdict::kDefer) {
        const std::size_t t = *it;
        it = st.ready.erase(it);
        resolve_deferred(st, t, gate.culprit);
      } else {
        ++it;
      }
    }
  }

  // Admission policy: a task may start only while both its target relays
  // are below the per-relay concurrency cap (and neither is inside a
  // quarantine window).
  const auto admissible = [&](std::size_t t) {
    const ScanState::Task& task = st.tasks[t];
    if (st.options.quarantine.enabled &&
        quarantine_gate(st.quarantine, st.options, (*st.nodes)[task.i],
                        (*st.nodes)[task.j], loop.now())
                .verdict != QuarantineGate::Verdict::kProceed)
      return false;
    const auto x_it = st.relay_in_flight.find((*st.nodes)[task.i]);
    const auto y_it = st.relay_in_flight.find((*st.nodes)[task.j]);
    return (x_it == st.relay_in_flight.end() ||
            x_it->second < st.options.per_relay_cap) &&
           (y_it == st.relay_in_flight.end() ||
            y_it->second < st.options.per_relay_cap);
  };
  for (std::size_t h = 0; h < measurers_.size(); ++h) {
    if (st.host_busy[h]) continue;
    // Prefer the task this host prebuilt a circuit for, so the pipeline's
    // EXTENDCIRCUIT work is adopted instead of wasted.
    auto it = st.ready.end();
    if (st.host_hint[h] != ScanState::kNoHint) {
      it = std::find(st.ready.begin(), st.ready.end(), st.host_hint[h]);
      if (it != st.ready.end() && !admissible(*it)) it = st.ready.end();
      st.host_hint[h] = ScanState::kNoHint;
    }
    if (it == st.ready.end())
      it = std::find_if(st.ready.begin(), st.ready.end(), admissible);
    if (it == st.ready.end()) return;  // nothing admissible for any host
    const std::size_t t = *it;
    st.ready.erase(it);
    dispatch(st, h, t);
  }
}

void ParallelScanner::resolve_deferred(ScanState& st, std::size_t t,
                                       const dir::Fingerprint& culprit) {
  const ScanState::Task& task = st.tasks[t];
  const dir::Fingerprint& x = (*st.nodes)[task.i];
  const dir::Fingerprint& y = (*st.nodes)[task.j];
  ++st.report.deferred;
  st.report.deferred_pairs.push_back(DeferredPair{x, y, culprit});
  ++st.done;
  --st.outstanding;
  if (st.progress)
    st.progress(st.done, st.report.pairs_total, deferred_result(x, y, culprit));
}

void ParallelScanner::dispatch(ScanState& st, std::size_t host,
                               std::size_t t) {
  const ScanState::Task& task = st.tasks[t];
  const dir::Fingerprint& x = (*st.nodes)[task.i];
  const dir::Fingerprint& y = (*st.nodes)[task.j];

  if (st.options.quarantine.enabled &&
      quarantine_gate(st.quarantine, st.options, x, y,
                      measurers_[host]->host().loop().now())
          .probation)
    ++st.report.probation_probes;

  st.host_busy[host] = true;
  ++st.in_flight;
  const int nx = ++st.relay_in_flight[x];
  const int ny = ++st.relay_in_flight[y];
  st.report.max_in_flight = std::max(st.report.max_in_flight, st.in_flight);
  st.report.max_per_relay_in_flight =
      std::max(st.report.max_per_relay_in_flight,
               static_cast<std::size_t>(std::max(nx, ny)));

  // &st stays valid for the callback's lifetime: scan() blocks until every
  // dispatched measurement and scheduled retry has resolved. Completion is
  // deferred through the loop because measure_async can fail synchronously
  // (invalid pair, relay missing from the consensus) — resolving inline
  // would re-enter pump() from inside dispatch(), recursing once per
  // failing task.
  measurers_[host]->measure_async(x, y, [this, &st, host, t](PairResult r) {
    measurers_[host]->host().loop().defer(
        [this, &st, host, t, r = std::move(r)]() mutable {
          on_complete(st, host, t, std::move(r));
        });
  });

  // Pipelining: while this measurement samples, prebuild the C_xy circuit
  // of a queued task on the same host, and hint pump to route that task
  // back here. Tasks already hinted to another host are skipped so two
  // hosts never prebuild the same pair.
  if (st.options.pipeline_builds) {
    for (const std::size_t t2 : st.ready) {
      if (std::find(st.host_hint.begin(), st.host_hint.end(), t2) !=
          st.host_hint.end())
        continue;
      const ScanState::Task& next = st.tasks[t2];
      measurers_[host]->prebuild((*st.nodes)[next.i], (*st.nodes)[next.j]);
      st.host_hint[host] = t2;
      break;
    }
  }
}

void ParallelScanner::on_complete(ScanState& st, std::size_t host,
                                  std::size_t t, PairResult r) {
  ScanState::Task& task = st.tasks[t];
  const dir::Fingerprint& x = (*st.nodes)[task.i];
  const dir::Fingerprint& y = (*st.nodes)[task.j];
  simnet::EventLoop& loop = measurers_[host]->host().loop();

  st.host_busy[host] = false;
  --st.in_flight;
  if (--st.relay_in_flight[x] == 0) st.relay_in_flight.erase(x);
  if (--st.relay_in_flight[y] == 0) st.relay_in_flight.erase(y);
  accumulate_pair_stats(st.report, r);

  ErrorClass cls = ErrorClass::kNone;
  if (!r.ok) {
    cls = r.error_class == ErrorClass::kNone ? ErrorClass::kTransient
                                             : r.error_class;
    if (cls == ErrorClass::kRelayChurned &&
        (st.never_known.contains(x) || st.never_known.contains(y)))
      cls = ErrorClass::kPermanent;
  }

  if (r.ok) {
    cache_.set(x, y, r.rtt_ms, loop.now(), r.cxy.samples_taken);
    ++st.report.measured;
    ++st.report.retry_histogram[static_cast<std::size_t>(task.attempt)];
    ++st.done;
    --st.outstanding;
    journal_pair(st.options, x, y, r, task.attempt + 1, ErrorClass::kNone,
                 loop.now());
    clear_quarantine(st.quarantine, st.options, x, y);
    if (st.progress) st.progress(st.done, st.report.pairs_total, r);
  } else if (st.stopping) {
    // Shutdown drain: the measurement finished after the stop flag fired;
    // don't retry or fail it — --resume re-attempts the pair.
    ++st.report.interrupted_pairs;
    --st.outstanding;
  } else if (cls != ErrorClass::kPermanent &&
             task.attempt + 1 < st.options.attempts_per_pair) {
    ++task.attempt;
    ++st.report.retries;
    Duration delay;
    if (cls == ErrorClass::kRelayChurned) {
      // A churned relay needs a fresh consensus, not backoff: wait one
      // requeue interval, re-resolve, and try again.
      delay = st.options.churn_requeue_delay;
    } else {
      // Exponential backoff before re-queueing: transient causes (circuit
      // build races, congested relays) deserve breathing room, and backoff
      // keeps a flapping relay from monopolising admission slots.
      delay = st.options.retry_backoff_base;
      for (int k = 1; k < task.attempt; ++k)
        delay = delay * st.options.retry_backoff_factor;
    }
    TING_DEBUG("scan: pair " << x.short_name() << "," << y.short_name()
                             << " failed (" << to_string(cls) << ": "
                             << r.error << "), retry " << task.attempt
                             << " in " << delay.str());
    const bool churned = cls == ErrorClass::kRelayChurned;
    loop.schedule(delay, [this, &st, t, churned]() {
      if (st.stopping) {
        // The pair was abandoned mid-retry; --resume re-attempts it.
        ++st.report.interrupted_pairs;
        --st.outstanding;
        return;
      }
      if (churned) {
        const ScanState::Task& task = st.tasks[t];
        if (reresolve_pair(st.options.live_consensus, measurers_,
                           (*st.nodes)[task.i], (*st.nodes)[task.j],
                           st.options.half_cache))
          ++st.report.churn_reresolved;
      }
      st.ready.push_back(t);
      pump(st);
    });
  } else {
    TING_WARN("scan: pair " << x.short_name() << "," << y.short_name()
                            << " failed (" << to_string(cls)
                            << "): " << r.error);
    count_failure(st.report, cls);
    st.report.failed_pairs.push_back(FailedPair{x, y, cls, r.error});
    ++st.report.retry_histogram[static_cast<std::size_t>(task.attempt)];
    ++st.done;
    --st.outstanding;
    journal_pair(st.options, x, y, r, task.attempt + 1, cls, loop.now());
    if (cls == ErrorClass::kPermanent) {
      // New quarantine windows get a wake at their expiry so held tasks in
      // `ready` are re-examined even when nothing else is scheduled.
      for (const QuarantineEvent& ev :
           charge_permanent(st.quarantine, st.report, st.options, x, y,
                            st.never_known, loop.now())) {
        if (!ev.terminal)
          st.wakes.push_back(
              loop.schedule_at(ev.until, [this, &st]() { pump(st); }));
      }
    }
    if (st.progress) st.progress(st.done, st.report.pairs_total, r);
  }
  pump(st);
}

ScanReport ParallelScanner::scan(const std::vector<dir::Fingerprint>& nodes,
                                 const ParallelScanOptions& options,
                                 const Progress& progress) {
  PairList pairs;
  if (!nodes.empty())
    pairs.reserve(nodes.size() * (nodes.size() - 1) / 2);
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j)
      pairs.emplace_back(i, j);
  return scan_pairs(nodes, pairs, options, progress);
}

ScanReport ParallelScanner::scan_pairs(
    const std::vector<dir::Fingerprint>& nodes, const PairList& pairs,
    const ParallelScanOptions& options, const Progress& progress) {
  TING_CHECK(options.attempts_per_pair >= 1);
  TING_CHECK(options.per_relay_cap >= 1);
  TING_CHECK(options.retry_backoff_factor >= 1);
  for (const auto& [i, j] : pairs) {
    TING_CHECK(i < nodes.size() && j < nodes.size());
    TING_CHECK_MSG(i != j, "self-pairs are not measurable");
  }

  if (options.reseed_world)
    return scan_deterministic(nodes, pairs, options, progress);

  simnet::EventLoop& loop = measurers_[0]->host().loop();
  const TimePoint started = loop.now();
  const MeasurerScanScope scope(measurers_, options.half_cache);

  ScanState st;
  st.nodes = &nodes;
  st.options = options;
  st.progress = progress;
  st.quarantine = RelayQuarantine(options.quarantine);
  st.report.retry_histogram.assign(
      static_cast<std::size_t>(options.attempts_per_pair), 0);
  st.host_busy.assign(measurers_.size(), false);
  st.host_hint.assign(measurers_.size(), ScanState::kNoHint);
  st.never_known = never_known_nodes(
      nodes, options.live_consensus != nullptr
                 ? *options.live_consensus
                 : measurers_[0]->host().op().consensus());
  st.report.pairs_total = pairs.size();

  for (const auto& [i, j] : pairs) {
    if (cache_.is_fresh(nodes[i], nodes[j], loop.now(), options.max_age)) {
      ++st.report.from_cache;
      ++st.done;
      if (progress)
        progress(st.done, st.report.pairs_total,
                 cached_result(cache_, nodes[i], nodes[j]));
      continue;
    }
    st.tasks.push_back(ScanState::Task{i, j, 0});
  }
  if (options.randomize_order) {
    Rng rng(options.order_seed);
    rng.shuffle(st.tasks);
  }
  for (std::size_t t = 0; t < st.tasks.size(); ++t) st.ready.push_back(t);
  st.outstanding = st.tasks.size();

  pump(st);
  if (st.outstanding > 0) {
    // Every dispatched measurement has an internal deadline, every retry a
    // bounded backoff, and every quarantine window a scheduled wake, so the
    // scan always terminates; the timeout here is a generous safety net
    // against engine bugs.
    const bool ok = loop.run_while_waiting_for(
        [&]() { return st.outstanding == 0; },
        Duration::seconds(365LL * 24 * 3600));
    if (!ok) {
      // Count how much of the backlog is quarantine-held — the most likely
      // stall cause worth distinguishing in the diagnostic.
      std::size_t held = 0;
      for (const std::size_t t : st.ready) {
        const ScanState::Task& task = st.tasks[t];
        if (quarantine_gate(st.quarantine, st.options, (*st.nodes)[task.i],
                            (*st.nodes)[task.j], loop.now())
                .verdict == QuarantineGate::Verdict::kHold)
          ++held;
      }
      TING_CHECK_MSG(ok, "parallel scan stalled (event queue drained or "
                         "safety timeout hit): "
                             << st.outstanding << " pairs outstanding, "
                             << st.in_flight << " in flight, "
                             << st.ready.size() << " ready (" << held
                             << " quarantine-held)");
    }
  }

  // Quarantine wakes still pending reference &st; cancel them before it
  // goes out of scope (an interrupted scan can return with wakes queued).
  for (const simnet::EventId id : st.wakes) loop.cancel(id);
  st.report.interrupted = st.report.interrupted_pairs > 0;

  st.report.virtual_time = loop.now() - started;
  annotate_fault_events(st.report, options, started, loop.now());
  return st.report;
}

namespace {

/// Deterministic-mode pair measurement with half-circuit memoization. The
/// pair is decomposed into its three circuit probes, each run under its own
/// world reseed: C_xy under pair_reseed(seed, x, y), C_x under
/// half_reseed(seed, x), C_y under half_reseed(seed, y). That makes R_Cx a
/// pure function of (world seed, pair_seed, x) — a memoized entry holds
/// exactly the value a fresh probe would measure, so cache hits cannot
/// perturb the merged CSV and bit-identity holds for any shard count.
PairResult measure_pair_memoized(TingMeasurer& m, const ScanOptions& options,
                                 const dir::Fingerprint& x,
                                 const dir::Fingerprint& y,
                                 simnet::EventLoop& loop, Duration horizon) {
  MeasurementHost& host = m.host();
  HalfCircuitCache& cache = *options.half_cache;
  PairResult r;
  r.x = x;
  r.y = y;
  const TimePoint started = loop.now();

  // Mirror measure_async's validity screens.
  if (x == y || x == host.w_fp() || y == host.w_fp() || x == host.z_fp() ||
      y == host.z_fp()) {
    r.error = "invalid pair (x, y must be distinct remote relays)";
    r.error_class = ErrorClass::kPermanent;
    return r;
  }
  for (const dir::Fingerprint* fp : {&x, &y}) {
    if (host.op().consensus().find(*fp) == nullptr) {
      r.error = "relay " + fp->short_name() + " not in consensus";
      r.error_class = ErrorClass::kRelayChurned;
      return r;
    }
  }

  options.reseed_world(pair_reseed(options.pair_seed, x, y));
  r.cxy = m.measure_circuit_blocking({x, y}, m.config().samples);
  if (!r.cxy.ok) {
    r.error = "C_xy: " + r.cxy.error;
    r.error_class = m.classify_failure(x, y, r.cxy.error_class);
    r.wall_time = loop.now() - started;
    return r;
  }

  const auto half = [&](const dir::Fingerprint& fp) {
    if (const HalfCircuitCache::Entry* e =
            cache.fresh(host.w_fp(), fp, loop.now())) {
      CircuitMeasurement out;
      out.ok = true;
      out.memoized = true;
      out.min_rtt_ms = e->rtt_ms;
      out.samples_taken = e->samples;
      return out;
    }
    drain_in_flight(loop, horizon);
    options.reseed_world(half_reseed(options.pair_seed, fp));
    // Full sampling for cache-bound halves (see TingMeasurer::half_probe):
    // the stored minimum is reused across every pair sharing this relay.
    CircuitMeasurement out = m.measure_circuit_blocking(
        {fp}, m.config().samples, /*adaptive=*/false);
    // Zero timestamp, like the matrix entries: shard worlds run unrelated
    // virtual clocks, and clock-free entries keep the merged cache CSV
    // independent of the shard count.
    if (out.ok)
      cache.store(host.w_fp(), fp, out.min_rtt_ms, TimePoint{},
                  out.samples_taken);
    return out;
  };

  r.cx = half(x);
  if (!r.cx.ok) {
    r.error = "C_x: " + r.cx.error;
    r.error_class = m.classify_failure(x, y, r.cx.error_class);
    r.wall_time = loop.now() - started;
    return r;
  }
  r.cy = half(y);
  r.wall_time = loop.now() - started;
  if (!r.cy.ok) {
    r.error = "C_y: " + r.cy.error;
    r.error_class = m.classify_failure(x, y, r.cy.error_class);
    return r;
  }
  // Eq. (4): R(x,y) + F_x + F_y — identical cancellation whether the half
  // minima were measured now or memoized.
  r.rtt_ms = r.cxy.min_rtt_ms - 0.5 * r.cx.min_rtt_ms - 0.5 * r.cy.min_rtt_ms;
  r.ok = true;
  return r;
}

}  // namespace

ScanReport ParallelScanner::scan_deterministic(
    const std::vector<dir::Fingerprint>& nodes, const PairList& pairs,
    const ParallelScanOptions& options, const Progress& progress) {
  // Strictly serial on the first measurer: the pool's extra hosts carry
  // world-specific fingerprints and seeds, so touching them would make the
  // result depend on pool size. Before every attempt the world's stochastic
  // state is reset to a pure function of (pair_seed, x, y), which makes each
  // pair's estimate independent of scan order and shard partitioning.
  TingMeasurer& m = *measurers_[0];
  simnet::EventLoop& loop = m.host().loop();
  const TimePoint started = loop.now();

  ScanReport report;
  report.retry_histogram.assign(
      static_cast<std::size_t>(options.attempts_per_pair), 0);
  report.pairs_total = pairs.size();
  const std::set<dir::Fingerprint> never_known = never_known_nodes(
      nodes, options.live_consensus != nullptr ? *options.live_consensus
                                               : m.host().op().consensus());

  PairList order = pairs;
  if (options.randomize_order) {
    Rng rng(options.order_seed);
    rng.shuffle(order);
  }

  // Count every world reseed (per pair + per non-memoized half probe) into
  // the report, without the reseed paths having to know about it.
  ParallelScanOptions det = options;
  det.reseed_world = [&report, reseed = options.reseed_world](
                         std::uint64_t seed) {
    ++report.reseeds;
    reseed(seed);
  };

  serial_scan_pairs(
      m, measurers_, cache_, nodes,
      std::deque<std::pair<std::size_t, std::size_t>>(order.begin(),
                                                      order.end()),
      det, progress, report, loop, never_known,
      [&](const dir::Fingerprint& x, const dir::Fingerprint& y) {
        // Teardown cells from the previous pair must not consume draws from
        // the freshly-seeded rngs, so quiesce the loop before reseeding.
        drain_in_flight(loop, kDrainHorizon);
        if (det.half_cache != nullptr)
          return measure_pair_memoized(m, det, x, y, loop, kDrainHorizon);
        det.reseed_world(pair_reseed(det.pair_seed, x, y));
        return m.measure_blocking(x, y);
      },
      // Zero timestamps: shard worlds run unrelated virtual clocks, and
      // clock-free entries keep merged CSVs bit-identical across shard
      // counts. Pipelining stays off — a circuit built under the previous
      // pair's world seed would break per-pair purity.
      /*zero_timestamps=*/true, /*pipeline=*/false);

  report.virtual_time = loop.now() - started;
  annotate_fault_events(report, options, started, loop.now());
  return report;
}

}  // namespace ting::meas
