#include "ting/scheduler.h"

#include <algorithm>

#include "util/log.h"

namespace ting::meas {

ScanReport AllPairsScanner::scan(const std::vector<dir::Fingerprint>& nodes,
                                 const ScanOptions& options,
                                 const Progress& progress) {
  TING_CHECK(options.attempts_per_pair >= 1);
  ScanReport report;
  report.retry_histogram.assign(
      static_cast<std::size_t>(options.attempts_per_pair), 0);
  const TimePoint started = measurer_.host().loop().now();

  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j)
      pairs.emplace_back(i, j);
  report.pairs_total = pairs.size();

  if (options.randomize_order) {
    Rng rng(options.order_seed);
    rng.shuffle(pairs);
  }

  std::size_t done = 0;
  for (const auto& [i, j] : pairs) {
    const dir::Fingerprint& x = nodes[i];
    const dir::Fingerprint& y = nodes[j];
    ++done;

    if (cache_.is_fresh(x, y, measurer_.host().loop().now(),
                        options.max_age)) {
      ++report.from_cache;
      continue;
    }

    report.max_in_flight = 1;
    report.max_per_relay_in_flight = 1;
    bool ok = false;
    for (int attempt = 0; attempt < options.attempts_per_pair && !ok;
         ++attempt) {
      const PairResult r = measurer_.measure_blocking(x, y);
      report.time_building += r.build_time();
      report.time_sampling += r.sample_time();
      if (attempt > 0) ++report.retries;
      if (r.ok) {
        cache_.set(x, y, r.rtt_ms, measurer_.host().loop().now(),
                   measurer_.config().samples);
        ++report.measured;
        ++report.retry_histogram[static_cast<std::size_t>(attempt)];
        ok = true;
        if (progress) progress(done, report.pairs_total, r);
      } else if (attempt + 1 == options.attempts_per_pair) {
        TING_WARN("scan: pair " << x.short_name() << "," << y.short_name()
                                << " failed: " << r.error);
        ++report.failed;
        report.failed_pairs.emplace_back(x, y);
        ++report.retry_histogram[static_cast<std::size_t>(attempt)];
        if (progress) progress(done, report.pairs_total, r);
      }
    }
  }

  report.virtual_time = measurer_.host().loop().now() - started;
  return report;
}

// ---- ParallelScanner --------------------------------------------------------

struct ParallelScanner::ScanState {
  struct Task {
    std::size_t i = 0, j = 0;
    int attempt = 0;  ///< retries used so far
  };

  const std::vector<dir::Fingerprint>* nodes = nullptr;
  ParallelScanOptions options;
  Progress progress;
  ScanReport report;

  std::vector<Task> tasks;
  std::deque<std::size_t> ready;  ///< task indices awaiting a host + admission
  std::map<dir::Fingerprint, int> relay_in_flight;
  std::vector<bool> host_busy;
  std::size_t in_flight = 0;
  std::size_t outstanding = 0;  ///< tasks not yet terminally resolved
  std::size_t done = 0;         ///< resolved pairs, for progress reporting
};

ParallelScanner::ParallelScanner(std::vector<TingMeasurer*> measurers,
                                 RttMatrix& cache)
    : measurers_(std::move(measurers)), cache_(cache) {
  TING_CHECK_MSG(!measurers_.empty(), "pool needs at least one measurer");
  for (TingMeasurer* m : measurers_) {
    TING_CHECK(m != nullptr);
    TING_CHECK_MSG(&m->host().loop() == &measurers_[0]->host().loop(),
                   "all pool measurers must share one event loop");
  }
}

void ParallelScanner::pump(ScanState& st) {
  for (std::size_t h = 0; h < measurers_.size(); ++h) {
    if (st.host_busy[h]) continue;
    // Admission policy: a task may start only while both its target relays
    // are below the per-relay concurrency cap.
    const auto it = std::find_if(
        st.ready.begin(), st.ready.end(), [&](std::size_t t) {
          const ScanState::Task& task = st.tasks[t];
          const auto x_it = st.relay_in_flight.find((*st.nodes)[task.i]);
          const auto y_it = st.relay_in_flight.find((*st.nodes)[task.j]);
          return (x_it == st.relay_in_flight.end() ||
                  x_it->second < st.options.per_relay_cap) &&
                 (y_it == st.relay_in_flight.end() ||
                  y_it->second < st.options.per_relay_cap);
        });
    if (it == st.ready.end()) return;  // nothing admissible for any host
    const std::size_t t = *it;
    st.ready.erase(it);
    dispatch(st, h, t);
  }
}

void ParallelScanner::dispatch(ScanState& st, std::size_t host,
                               std::size_t t) {
  const ScanState::Task& task = st.tasks[t];
  const dir::Fingerprint& x = (*st.nodes)[task.i];
  const dir::Fingerprint& y = (*st.nodes)[task.j];

  st.host_busy[host] = true;
  ++st.in_flight;
  const int nx = ++st.relay_in_flight[x];
  const int ny = ++st.relay_in_flight[y];
  st.report.max_in_flight = std::max(st.report.max_in_flight, st.in_flight);
  st.report.max_per_relay_in_flight =
      std::max(st.report.max_per_relay_in_flight,
               static_cast<std::size_t>(std::max(nx, ny)));

  // &st stays valid for the callback's lifetime: scan() blocks until every
  // dispatched measurement and scheduled retry has resolved.
  measurers_[host]->measure_async(x, y, [this, &st, host, t](PairResult r) {
    ScanState::Task& task = st.tasks[t];
    const dir::Fingerprint& x = (*st.nodes)[task.i];
    const dir::Fingerprint& y = (*st.nodes)[task.j];
    simnet::EventLoop& loop = measurers_[host]->host().loop();

    st.host_busy[host] = false;
    --st.in_flight;
    if (--st.relay_in_flight[x] == 0) st.relay_in_flight.erase(x);
    if (--st.relay_in_flight[y] == 0) st.relay_in_flight.erase(y);
    st.report.time_building += r.build_time();
    st.report.time_sampling += r.sample_time();

    if (r.ok) {
      cache_.set(x, y, r.rtt_ms, loop.now(),
                 measurers_[host]->config().samples);
      ++st.report.measured;
      ++st.report.retry_histogram[static_cast<std::size_t>(task.attempt)];
      ++st.done;
      --st.outstanding;
      if (st.progress) st.progress(st.done, st.report.pairs_total, r);
    } else if (task.attempt + 1 < st.options.attempts_per_pair) {
      // Exponential backoff before re-queueing: transient causes (circuit
      // build races, congested relays) deserve breathing room, and backoff
      // keeps a flapping relay from monopolising admission slots.
      ++task.attempt;
      ++st.report.retries;
      Duration delay = st.options.retry_backoff_base;
      for (int k = 1; k < task.attempt; ++k)
        delay = delay * st.options.retry_backoff_factor;
      TING_DEBUG("scan: pair " << x.short_name() << "," << y.short_name()
                               << " failed (" << r.error << "), retry "
                               << task.attempt << " in " << delay.str());
      loop.schedule(delay, [this, &st, t]() {
        st.ready.push_back(t);
        pump(st);
      });
    } else {
      TING_WARN("scan: pair " << x.short_name() << "," << y.short_name()
                              << " failed: " << r.error);
      ++st.report.failed;
      st.report.failed_pairs.emplace_back(x, y);
      ++st.report.retry_histogram[static_cast<std::size_t>(task.attempt)];
      ++st.done;
      --st.outstanding;
      if (st.progress) st.progress(st.done, st.report.pairs_total, r);
    }
    pump(st);
  });
}

ScanReport ParallelScanner::scan(const std::vector<dir::Fingerprint>& nodes,
                                 const ParallelScanOptions& options,
                                 const Progress& progress) {
  TING_CHECK(options.attempts_per_pair >= 1);
  TING_CHECK(options.per_relay_cap >= 1);
  TING_CHECK(options.retry_backoff_factor >= 1);

  simnet::EventLoop& loop = measurers_[0]->host().loop();
  const TimePoint started = loop.now();

  ScanState st;
  st.nodes = &nodes;
  st.options = options;
  st.progress = progress;
  st.report.retry_histogram.assign(
      static_cast<std::size_t>(options.attempts_per_pair), 0);
  st.host_busy.assign(measurers_.size(), false);

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      ++st.report.pairs_total;
      if (cache_.is_fresh(nodes[i], nodes[j], loop.now(), options.max_age)) {
        ++st.report.from_cache;
        ++st.done;
        continue;
      }
      st.tasks.push_back(ScanState::Task{i, j, 0});
    }
  }
  if (options.randomize_order) {
    Rng rng(options.order_seed);
    rng.shuffle(st.tasks);
  }
  for (std::size_t t = 0; t < st.tasks.size(); ++t) st.ready.push_back(t);
  st.outstanding = st.tasks.size();

  pump(st);
  if (st.outstanding > 0) {
    // Every dispatched measurement has an internal deadline and every retry
    // a bounded backoff, so the scan always terminates; the timeout here is
    // a generous safety net against engine bugs.
    const bool ok = loop.run_while_waiting_for(
        [&]() { return st.outstanding == 0; },
        Duration::seconds(365LL * 24 * 3600));
    TING_CHECK_MSG(ok, "parallel scan stalled (event queue drained or "
                       "safety timeout hit)");
  }

  st.report.virtual_time = loop.now() - started;
  return st.report;
}

}  // namespace ting::meas
