#include "ting/scheduler.h"

#include "util/log.h"

namespace ting::meas {

ScanReport AllPairsScanner::scan(const std::vector<dir::Fingerprint>& nodes,
                                 const ScanOptions& options,
                                 const Progress& progress) {
  TING_CHECK(options.attempts_per_pair >= 1);
  ScanReport report;
  const TimePoint started = measurer_.host().loop().now();

  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j)
      pairs.emplace_back(i, j);
  report.pairs_total = pairs.size();

  if (options.randomize_order) {
    Rng rng(options.order_seed);
    rng.shuffle(pairs);
  }

  std::size_t done = 0;
  for (const auto& [i, j] : pairs) {
    const dir::Fingerprint& x = nodes[i];
    const dir::Fingerprint& y = nodes[j];
    ++done;

    if (cache_.is_fresh(x, y, measurer_.host().loop().now(),
                        options.max_age)) {
      ++report.from_cache;
      continue;
    }

    bool ok = false;
    for (int attempt = 0; attempt < options.attempts_per_pair && !ok;
         ++attempt) {
      const PairResult r = measurer_.measure_blocking(x, y);
      if (r.ok) {
        cache_.set(x, y, r.rtt_ms, measurer_.host().loop().now(),
                   measurer_.config().samples);
        ++report.measured;
        ok = true;
        if (progress) progress(done, report.pairs_total, r);
      } else if (attempt + 1 == options.attempts_per_pair) {
        TING_WARN("scan: pair " << x.short_name() << "," << y.short_name()
                                << " failed: " << r.error);
        ++report.failed;
        report.failed_pairs.emplace_back(x, y);
        if (progress) progress(done, report.pairs_total, r);
      }
    }
  }

  report.virtual_time = measurer_.host().loop().now() - started;
  return report;
}

}  // namespace ting::meas
