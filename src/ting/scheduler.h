// AllPairsScanner — the driver that turns single-pair Ting measurements
// into the all-pairs RTT datasets the §5 applications consume.
//
// Implements the operational practices the paper describes: pairs are
// probed in randomized order (§4.2), results land in a cached RttMatrix,
// fresh cache entries are skipped on re-scan (§4.6: measurements are stable
// over a week, so "taking measurements with Ting infrequently and caching
// them is sufficient"), and failed pairs are retried a bounded number of
// times before being reported.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ting/measurer.h"
#include "ting/rtt_matrix.h"

namespace ting::meas {

struct ScanOptions {
  /// Skip pairs whose cached entry is younger than this (0 = remeasure all).
  Duration max_age = Duration::seconds(7 * 24 * 3600);
  int attempts_per_pair = 2;
  bool randomize_order = true;
  std::uint64_t order_seed = 1;
};

struct ScanReport {
  std::size_t pairs_total = 0;
  std::size_t measured = 0;      ///< freshly measured this scan
  std::size_t from_cache = 0;    ///< satisfied by a fresh cache entry
  std::size_t failed = 0;        ///< exhausted attempts
  std::vector<std::pair<dir::Fingerprint, dir::Fingerprint>> failed_pairs;
  Duration virtual_time;         ///< simulated time the scan took
};

class AllPairsScanner {
 public:
  AllPairsScanner(TingMeasurer& measurer, RttMatrix& cache)
      : measurer_(measurer), cache_(cache) {}

  /// Progress callback: (pairs done, pairs total, last pair's result).
  using Progress =
      std::function<void(std::size_t, std::size_t, const PairResult&)>;

  /// Measure all unordered pairs of `nodes` (blocking; pumps the event
  /// loop). Results are written into the cache matrix.
  ScanReport scan(const std::vector<dir::Fingerprint>& nodes,
                  const ScanOptions& options = {},
                  const Progress& progress = {});

  RttMatrix& cache() { return cache_; }

 private:
  TingMeasurer& measurer_;
  RttMatrix& cache_;
};

}  // namespace ting::meas
