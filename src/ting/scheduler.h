// Scan engines — the drivers that turn single-pair Ting measurements into
// the all-pairs RTT datasets the §5 applications consume.
//
// Both engines implement the operational practices the paper describes:
// pairs are probed in randomized order (§4.2), results land in a cached
// RttMatrix, fresh cache entries are skipped on re-scan (§4.6: measurements
// are stable over a week, so "taking measurements with Ting infrequently
// and caching them is sufficient"), and failed pairs are retried a bounded
// number of times before being reported.
//
//  - AllPairsScanner: one measurement host, one pair at a time. Simple and
//    exactly reproducible; what the paper's own scans did.
//  - ParallelScanner: a pool of measurement hosts keeps K pairs in flight
//    simultaneously on one simnet event loop — the "parallelizes trivially"
//    observation of §4.5 — under an admission policy that caps concurrent
//    circuits per target relay, so a hot relay is never probed by many
//    circuits at once (which would inflate its observed minimum, the
//    congestion concern of §4.3). Failed pairs are re-queued with
//    exponential backoff before being reported as failed.
//
// Failures are handled per ErrorClass (see measurer.h): transients retry
// with backoff, permanents fail immediately after their single attempt, and
// churned relays are re-resolved against the live consensus (descriptor
// re-injected into the pool's onion proxies) before the pair is requeued.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "dir/consensus.h"
#include "simnet/fault_plan.h"
#include "ting/measurer.h"
#include "ting/quarantine.h"
#include "ting/rtt_matrix.h"

namespace ting::meas {

class ScanJournal;

struct ScanOptions {
  /// Skip pairs whose cached entry is younger than this (0 = remeasure all).
  Duration max_age = Duration::seconds(7 * 24 * 3600);
  int attempts_per_pair = 2;
  bool randomize_order = true;
  std::uint64_t order_seed = 1;
  /// The directory's live view of the network, if the caller has one. When
  /// set, a churned-relay failure is re-resolved against it before the pair
  /// is requeued (the relay's descriptor, if it rejoined, is re-injected
  /// into the pool's onion proxies), and relays absent from it at scan
  /// start are treated as permanently unknown. When null, the engine falls
  /// back to its first measurer's consensus snapshot for the never-known
  /// distinction and churned pairs retry without re-resolution.
  const dir::Consensus* live_consensus = nullptr;
  /// Delay before a churned pair is requeued — time for a fresh consensus
  /// to arrive, used instead of the exponential transient backoff.
  Duration churn_requeue_delay = Duration::seconds(60);
  /// Backoff before the k-th retry of a transiently-failed pair:
  /// retry_backoff_base * retry_backoff_factor^(k-1).
  Duration retry_backoff_base = Duration::seconds(10);
  int retry_backoff_factor = 2;
  /// Optional fault plan whose scheduled events (those firing inside the
  /// scan window) are copied into ScanReport::fault_events.
  const simnet::FaultPlan* fault_plan = nullptr;

  // ---- measurement-plane optimizations -------------------------------------
  /// Half-circuit memoization: when set, fresh R_Cx/R_Cy entries satisfy the
  /// C_x/C_y probes without building a circuit, and successful misses are
  /// stored back. The engines attach the cache to their pool measurers for
  /// the scan's duration (entries are keyed per measurement apparatus — see
  /// half_circuit_cache.h); the deterministic path instead reseeds the world
  /// per half-circuit so memoized and fresh values are bit-identical. A
  /// relay's entries are dropped whenever churn forces a re-resolution.
  HalfCircuitCache* half_cache = nullptr;
  /// Pipelined circuit builds: while one pair samples, its measurer (or the
  /// predicted next pool host) prebuilds the next pair's C_xy circuit, so
  /// EXTENDCIRCUIT round trips overlap sampling instead of serialising
  /// behind it. Ignored in deterministic mode, where a circuit built under
  /// the previous pair's world seed would break per-pair purity.
  bool pipeline_builds = true;

  // ---- crash safety and graceful degradation -------------------------------
  /// Write-ahead journal: every terminally-resolved pair (and, via the
  /// half-circuit cache's store observer, every half measurement) is
  /// appended and fsync'd as it lands, so a crashed scan can resume from
  /// the journal. Shared across shard threads (the journal is thread-safe).
  ScanJournal* journal = nullptr;
  /// Graceful-shutdown flag (e.g. set from a SIGINT handler). When it goes
  /// true the engines stop claiming new pairs, let in-flight measurements
  /// drain, and report the unprobed remainder as interrupted_pairs.
  const std::atomic<bool>* stop = nullptr;
  /// Per-relay circuit breaker (see quarantine.h): consecutive permanent
  /// failures quarantine a relay, deferring its pending pairs instead of
  /// burning one doomed attempt per pair.
  QuarantineOptions quarantine;

  // ---- deterministic per-pair mode (sharded scanning) ----------------------
  /// When set, the parallel engine measures pairs strictly one at a time on
  /// its first measurer: before every attempt it drains in-flight traffic
  /// and calls reseed_world(pair_reseed(pair_seed, x, y)), making each
  /// pair's estimate a pure function of (world construction seed, pair_seed,
  /// x, y) — bit-identical no matter how pairs are partitioned across shard
  /// worlds. Cache entries are recorded with a zero timestamp because shard
  /// worlds have unrelated virtual clocks.
  std::function<void(std::uint64_t)> reseed_world;
  /// Master seed mixed into every per-pair reseed value.
  std::uint64_t pair_seed = 1;
};

/// The world-reseed value for a pair: a well-mixed function of the master
/// seed and both fingerprints, commutative in (x, y).
std::uint64_t pair_reseed(std::uint64_t pair_seed, const dir::Fingerprint& x,
                          const dir::Fingerprint& y);

/// The world-reseed value for a single half circuit C_x: a function of the
/// master seed and x alone (distinct domain from pair_reseed), so R_Cx is a
/// pure per-relay quantity the deterministic engine can memoize without
/// breaking bit-identity across shard counts.
std::uint64_t half_reseed(std::uint64_t pair_seed, const dir::Fingerprint& x);

/// A pair that exhausted its attempts (or failed permanently), with the
/// classification and message of its final failure.
struct FailedPair {
  dir::Fingerprint a, b;
  ErrorClass error_class = ErrorClass::kTransient;
  std::string error;
};

/// A pair held back because a quarantined-terminal relay touches it. Not a
/// failure — the pair was never probed this scan; a future scan (or
/// --resume) retries it.
struct DeferredPair {
  dir::Fingerprint a, b;
  dir::Fingerprint relay;  ///< the quarantined relay the deferral is due to
};

struct ScanReport {
  std::size_t pairs_total = 0;
  std::size_t measured = 0;      ///< freshly measured this scan
  std::size_t from_cache = 0;    ///< satisfied by a fresh cache entry
  std::size_t failed = 0;        ///< exhausted attempts
  std::vector<FailedPair> failed_pairs;
  // Per-class failure counters; they always sum to `failed`.
  std::size_t failed_transient = 0;
  std::size_t failed_permanent = 0;
  std::size_t failed_churned = 0;
  /// Churned pairs whose relays were found again in the live consensus and
  /// re-injected into the measurement hosts before requeueing.
  std::size_t churn_reresolved = 0;
  /// Pairs deferred because a relay's circuit breaker went terminal (see
  /// quarantine.h). measured + from_cache + failed + deferred +
  /// interrupted_pairs == pairs_total.
  std::size_t deferred = 0;
  std::vector<DeferredPair> deferred_pairs;
  /// Every breaker transition (window opened/re-opened, terminal).
  std::vector<QuarantineEvent> quarantine_events;
  /// Probation probes allowed through an expired quarantine window.
  std::size_t probation_probes = 0;
  /// Graceful shutdown: the stop flag fired mid-scan. interrupted_pairs
  /// counts the pairs never resolved (not probed, or abandoned mid-retry);
  /// they are retried by --resume.
  bool interrupted = false;
  std::size_t interrupted_pairs = 0;
  /// Fault-plan events that fired during the scan window (annotation only).
  std::vector<simnet::FaultPlan::Event> fault_events;
  Duration virtual_time;         ///< simulated time the scan took

  // ---- engine statistics ----------------------------------------------------
  /// Virtual time spent building circuits / echo-sampling, summed across all
  /// attempted pair measurements (so with K in flight these can exceed
  /// virtual_time).
  Duration time_building;
  Duration time_sampling;
  /// High-water mark of concurrently running pair measurements.
  std::size_t max_in_flight = 0;
  /// High-water mark of concurrent pair measurements touching any single
  /// target relay — the admission policy guarantees this never exceeds the
  /// configured per-relay cap.
  std::size_t max_per_relay_in_flight = 0;
  /// Total re-dispatches after a failed attempt.
  std::size_t retries = 0;
  /// retry_histogram[k] = pairs that finished (either way) after k retries;
  /// size is attempts_per_pair (index 0 = succeeded or failed first try).
  std::vector<std::size_t> retry_histogram;

  // ---- optimization observability ------------------------------------------
  /// EXTENDCIRCUIT launches across all attempts (a cold pair costs 3; a pair
  /// with both halves memoized costs 1). Summed across shards.
  std::size_t circuits_built = 0;
  /// C_x/C_y probes satisfied from the half-circuit cache.
  std::size_t half_cache_hits = 0;
  /// Echo samples the adaptive early-stop avoided, summed over all probes.
  std::size_t samples_saved = 0;

  // ---- setup-vs-measurement observability ----------------------------------
  /// Wall-clock milliseconds spent constructing shard worlds (summed across
  /// shards; 0 for engines that were handed pre-built worlds). Makes the
  /// setup-vs-measurement split visible per run: a sharded scan that burns
  /// its parallelism budget cloning worlds shows up here, not as throughput.
  double world_construct_ms = 0;
  /// World reseeds performed by the deterministic engine (one per pair plus
  /// one per non-memoized half probe). Summed across shards.
  std::size_t reseeds = 0;
};

/// Progress callback: (pairs done, pairs total, last pair's result).
using ScanProgress =
    std::function<void(std::size_t, std::size_t, const PairResult&)>;

class AllPairsScanner {
 public:
  using Progress = ScanProgress;

  AllPairsScanner(TingMeasurer& measurer, RttMatrix& cache)
      : measurer_(measurer), cache_(cache) {}

  /// Measure all unordered pairs of `nodes` (blocking; pumps the event
  /// loop). Results are written into the cache matrix.
  ScanReport scan(const std::vector<dir::Fingerprint>& nodes,
                  const ScanOptions& options = {},
                  const Progress& progress = {});

  RttMatrix& cache() { return cache_; }

 private:
  TingMeasurer& measurer_;
  RttMatrix& cache_;
};

struct ParallelScanOptions : ScanOptions {
  /// Max concurrent pair measurements touching one target relay. A pair
  /// (x, y) holds one slot on x and one on y for its whole measurement
  /// (its three circuits all traverse them).
  int per_relay_cap = 1;
};

class ParallelScanner {
 public:
  using Progress = ScanProgress;

  /// The engine drives one measurer (= one measurement host) per in-flight
  /// pair; all must share one event loop. Concurrency K = measurers.size().
  ParallelScanner(std::vector<TingMeasurer*> measurers, RttMatrix& cache);

  /// Index pairs into a `nodes` vector: (i, j) with i != j.
  using PairList = std::vector<std::pair<std::size_t, std::size_t>>;

  /// Measure all unordered pairs of `nodes` (blocking; pumps the shared
  /// event loop until every pair has succeeded, exhausted its attempts, or
  /// been served from cache). Results are written into the cache matrix.
  ScanReport scan(const std::vector<dir::Fingerprint>& nodes,
                  const ParallelScanOptions& options = {},
                  const Progress& progress = {});

  /// Measure an explicit pair worklist — the sharded scanner's entry point
  /// (each shard world gets a slice of the canonical all-pairs list). When
  /// options.reseed_world is set, pairs run strictly serially on the first
  /// measurer with a world reseed before every attempt (see ScanOptions);
  /// otherwise the normal concurrent engine runs over the list.
  ScanReport scan_pairs(const std::vector<dir::Fingerprint>& nodes,
                        const PairList& pairs,
                        const ParallelScanOptions& options = {},
                        const Progress& progress = {});

  RttMatrix& cache() { return cache_; }
  std::size_t pool_size() const { return measurers_.size(); }

 private:
  ScanReport scan_deterministic(const std::vector<dir::Fingerprint>& nodes,
                                const PairList& pairs,
                                const ParallelScanOptions& options,
                                const Progress& progress);

  struct ScanState;
  void pump(ScanState& st);
  void dispatch(ScanState& st, std::size_t host, std::size_t task);
  /// Terminal/retry resolution of one measurement. Always entered through a
  /// deferred event, never directly from dispatch(): measure_async can fail
  /// synchronously, and resolving inline would re-enter pump() once per
  /// failing task (deep recursion on large scans).
  void on_complete(ScanState& st, std::size_t host, std::size_t task,
                   PairResult r);
  /// Resolve a task as deferred (a quarantined-terminal relay touches it).
  void resolve_deferred(ScanState& st, std::size_t task,
                        const dir::Fingerprint& culprit);

  std::vector<TingMeasurer*> measurers_;
  RttMatrix& cache_;
};

}  // namespace ting::meas
