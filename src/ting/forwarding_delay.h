// Forwarding-delay estimation (§4.3).
//
// Measures relay x's per-cell forwarding delay F_x by combining Tor-circuit
// measurements with non-Tor probes, exactly the paper's procedure:
//   1. measure R_C1 over circuit (w, z):  R_C1 = loopbacks + F_w + F_z
//      ⇒ F_w = F_z = (R_C1 − loopbacks)/2 (w, z share a host);
//   2. measure R_C2 over circuit (w, x, z);
//   3. probe R̃(h, x) with ICMP ping and with a TCP connect
//      (tcptraceroute-style);
//   4. F_x = R_C2 − F_w − F_z − 2·R̃(h, x) − loopbacks.
// Networks that treat ICMP/TCP differently from Tor yield distorted — even
// negative — F_x, which is the diagnostic signal of Fig 5.
#pragma once

#include <functional>
#include <optional>

#include "ting/measurer.h"

namespace ting::meas {

struct ForwardingDelayResult {
  dir::Fingerprint relay;
  bool ok = false;
  std::string error;
  double icmp_based_ms = 0;  ///< F_x using ping for R̃(h, x)
  double tcp_based_ms = 0;   ///< F_x using TCP connect for R̃(h, x)
  double f_local_ms = 0;     ///< estimated F_w = F_z
};

class ForwardingDelayEstimator {
 public:
  /// `probes`: samples per circuit and per non-Tor probe type.
  ForwardingDelayEstimator(TingMeasurer& measurer, int probes = 50);

  void measure(const dir::Fingerprint& x,
               std::function<void(ForwardingDelayResult)> on_done);
  ForwardingDelayResult measure_blocking(const dir::Fingerprint& x);

 private:
  void tcp_connect_min(Endpoint target, int count,
                       std::function<void(std::optional<double>)> on_done);

  TingMeasurer& measurer_;
  int probes_;
};

}  // namespace ting::meas
