#include "dir/fingerprint.h"

#include <cstring>

#include "crypto/hash.h"
#include "util/assert.h"
#include "util/bytes.h"

namespace ting::dir {

Fingerprint Fingerprint::of_identity(const crypto::X25519Key& identity_public) {
  const crypto::Digest d = crypto::hash(
      std::span<const std::uint8_t>(identity_public.data(), identity_public.size()));
  Fingerprint f;
  std::memcpy(f.id_.data(), d.data(), kLen);
  return f;
}

Fingerprint Fingerprint::from_hex(const std::string& hex) {
  std::string h = hex;
  if (!h.empty() && h[0] == '$') h = h.substr(1);
  TING_CHECK_MSG(h.size() == 2 * kLen, "fingerprint must be 40 hex digits");
  const Bytes raw = ting::from_hex(h);
  Fingerprint f;
  std::memcpy(f.id_.data(), raw.data(), kLen);
  return f;
}

std::string Fingerprint::hex() const {
  return to_hex(std::span<const std::uint8_t>(id_.data(), id_.size()));
}

std::string Fingerprint::short_name() const { return hex().substr(0, 8); }

}  // namespace ting::dir
