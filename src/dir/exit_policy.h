// Tor exit policies: ordered accept/reject rules matched first-wins.
//
// The paper's ground-truth relays ran "a restrictive exit policy that only
// allowed exiting to two specific IP addresses under our control"; the
// measurement host's z relay must allow exiting to the echo server. The
// grammar here is the subset of Tor's policy language those setups need:
//   accept|reject <addr>[/prefixlen]|*:<port>|<lo>-<hi>|*
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/ip.h"

namespace ting::dir {

struct PolicyRule {
  bool accept = false;
  bool any_addr = true;
  IpAddr addr;
  int prefix_len = 32;
  std::uint16_t port_lo = 0;       ///< 0..0 with any_port=true means '*'
  std::uint16_t port_hi = 65535;

  /// Parse one line, e.g. "reject *:*", "accept 10.0.0.1:7",
  /// "accept 10.1.0.0/16:80-443". Throws CheckError on bad syntax.
  static PolicyRule parse(const std::string& line);
  std::string str() const;
  bool matches(IpAddr ip, std::uint16_t port) const;
};

class ExitPolicy {
 public:
  /// Default policy is reject-everything (a non-exit relay).
  ExitPolicy() = default;
  explicit ExitPolicy(std::vector<PolicyRule> rules) : rules_(std::move(rules)) {}

  static ExitPolicy reject_all();
  static ExitPolicy accept_all();
  /// The paper's testbed policy: exit only to the given addresses.
  static ExitPolicy accept_only(const std::vector<IpAddr>& addrs);
  /// Parse newline-separated rules.
  static ExitPolicy parse(const std::string& text);

  /// First matching rule decides; no match rejects (Tor's implicit default).
  bool allows(IpAddr ip, std::uint16_t port) const;
  /// True if some address/port is accepted (the relay can be an exit at all).
  bool allows_anything() const;

  const std::vector<PolicyRule>& rules() const { return rules_; }
  std::string str() const;  ///< newline-separated rules

 private:
  std::vector<PolicyRule> rules_;
};

}  // namespace ting::dir
