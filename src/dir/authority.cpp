#include "dir/authority.h"

#include "util/bytes.h"
#include "util/log.h"

namespace ting::dir {

namespace {
std::string text_of(const Bytes& b) { return std::string(b.begin(), b.end()); }
Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }
}  // namespace

Authority::Authority(simnet::Network& net, simnet::HostId host,
                     std::uint16_t port)
    : net_(net) {
  endpoint_ = Endpoint{net.ip_of(host), port};
  simnet::Listener* listener = net.listen(host, port);
  listener->set_on_accept([this](simnet::ConnPtr conn) {
    conn->set_on_message([this, conn](Bytes msg) {
      handle(conn, text_of(msg));
    });
  });
}

void Authority::inject(RelayDescriptor desc) {
  published_at_[desc.fingerprint] = net_.loop().now();
  consensus_.add(std::move(desc));
}

void Authority::expire_stale_descriptors() {
  if (descriptor_ttl_.ns() <= 0) return;
  const TimePoint now = net_.loop().now();
  std::vector<Fingerprint> stale;
  for (const auto& [fp, when] : published_at_)
    if (now - when > descriptor_ttl_) stale.push_back(fp);
  for (const auto& fp : stale) {
    consensus_.remove(fp);
    published_at_.erase(fp);
  }
}

void Authority::handle(const simnet::ConnPtr& conn,
                       const std::string& request) {
  if (starts_with(request, "PUBLISH\n")) {
    try {
      RelayDescriptor desc = RelayDescriptor::parse(request.substr(8));
      published_at_[desc.fingerprint] = net_.loop().now();
      consensus_.add(std::move(desc));
      conn->send(bytes_of("250 OK"));
    } catch (const CheckError& e) {
      conn->send(bytes_of(std::string("550 bad descriptor: ") + e.what()));
    }
    return;
  }
  if (trim(request) == "GET CONSENSUS") {
    expire_stale_descriptors();
    conn->send(bytes_of(consensus_.serialize()));
    return;
  }
  conn->send(bytes_of("510 unrecognized request"));
}

void Authority::fetch_consensus(simnet::Network& net, simnet::HostId from,
                                Endpoint authority,
                                std::function<void(Consensus)> on_done,
                                std::function<void(std::string)> on_fail) {
  net.connect(
      from, authority, simnet::Protocol::kTcp,
      [on_done = std::move(on_done)](simnet::ConnPtr conn) {
        conn->set_on_message([conn, on_done](Bytes msg) {
          Consensus c = Consensus::parse(text_of(msg));
          conn->close();
          on_done(std::move(c));
        });
        conn->send(bytes_of("GET CONSENSUS"));
      },
      std::move(on_fail));
}

void Authority::publish(simnet::Network& net, simnet::HostId from,
                        Endpoint authority, const RelayDescriptor& desc,
                        std::function<void()> on_done) {
  net.connect(from, authority, simnet::Protocol::kTcp,
              [desc, on_done = std::move(on_done)](simnet::ConnPtr conn) {
                conn->set_on_message([conn, on_done](Bytes msg) {
                  if (!starts_with(text_of(msg), "250"))
                    TING_WARN("descriptor publication rejected");
                  conn->close();
                  if (on_done) on_done();
                });
                conn->send(bytes_of("PUBLISH\n" + desc.serialize()));
              });
}

}  // namespace ting::dir
