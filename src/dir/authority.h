// A directory authority: a network application that accepts descriptor
// publications from relays and serves the consensus to clients.
//
// The request/response protocol is one message per request:
//   "PUBLISH\n<descriptor block>"  -> "250 OK"
//   "GET CONSENSUS"                -> the serialized consensus
// Relays may also be injected directly (inject()), mirroring the paper's
// note that one can run with "PublishDescriptors 0" and hard-code
// descriptors into the client.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "dir/consensus.h"
#include "simnet/network.h"

namespace ting::dir {

inline constexpr std::uint16_t kDirPort = 9030;

class Authority {
 public:
  /// Binds the directory port on `host`.
  Authority(simnet::Network& net, simnet::HostId host,
            std::uint16_t port = kDirPort);

  /// Directly install a descriptor (bypasses the network).
  void inject(RelayDescriptor desc);

  /// Descriptor freshness: relays must republish within this window or
  /// they are dropped from the consensus (real authorities age descriptors
  /// out the same way — it is what makes Fig 18's "running relays" a live
  /// quantity). Zero disables expiry.
  void set_descriptor_ttl(Duration ttl) { descriptor_ttl_ = ttl; }
  /// Drop descriptors older than the TTL. Called automatically on every
  /// consensus fetch; callable directly for tests/cron-style sweeps.
  void expire_stale_descriptors();

  const Consensus& consensus() const { return consensus_; }
  Consensus& consensus() { return consensus_; }
  Endpoint endpoint() const { return endpoint_; }

  /// Client helper: fetch and parse the consensus from an authority.
  static void fetch_consensus(simnet::Network& net, simnet::HostId from,
                              Endpoint authority,
                              std::function<void(Consensus)> on_done,
                              std::function<void(std::string)> on_fail = {});

  /// Client helper: publish a descriptor to an authority.
  static void publish(simnet::Network& net, simnet::HostId from,
                      Endpoint authority, const RelayDescriptor& desc,
                      std::function<void()> on_done = {});

 private:
  void handle(const simnet::ConnPtr& conn, const std::string& request);

  simnet::Network& net_;
  Consensus consensus_;
  Endpoint endpoint_;
  Duration descriptor_ttl_ = Duration::seconds(0);  // disabled by default
  std::map<Fingerprint, TimePoint> published_at_;
};

}  // namespace ting::dir
