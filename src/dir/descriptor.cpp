#include "dir/descriptor.h"

#include <cstring>
#include <sstream>

#include "util/assert.h"
#include "util/bytes.h"

namespace ting::dir {

std::string flags_str(std::uint32_t flags) {
  std::ostringstream os;
  bool first = true;
  auto emit = [&](std::uint32_t bit, const char* name) {
    if (flags & bit) {
      if (!first) os << " ";
      os << name;
      first = false;
    }
  };
  emit(kFlagRunning, "Running");
  emit(kFlagValid, "Valid");
  emit(kFlagGuard, "Guard");
  emit(kFlagExit, "Exit");
  emit(kFlagFast, "Fast");
  emit(kFlagStable, "Stable");
  return os.str();
}

std::uint32_t flags_from_str(const std::string& s) {
  std::uint32_t flags = 0;
  for (const std::string& word : split(s, ' ')) {
    const std::string w = trim(word);
    if (w == "Running") flags |= kFlagRunning;
    else if (w == "Valid") flags |= kFlagValid;
    else if (w == "Guard") flags |= kFlagGuard;
    else if (w == "Exit") flags |= kFlagExit;
    else if (w == "Fast") flags |= kFlagFast;
    else if (w == "Stable") flags |= kFlagStable;
    else if (!w.empty())
      TING_CHECK_MSG(false, "unknown relay flag: " << w);
  }
  return flags;
}

std::string RelayDescriptor::serialize() const {
  std::ostringstream os;
  os << "router " << nickname << " " << address.str() << " " << or_port << "\n";
  os << "fingerprint " << fingerprint.hex() << "\n";
  os << "ntor-onion-key "
     << to_hex(std::span<const std::uint8_t>(onion_key.data(), onion_key.size()))
     << "\n";
  os << "bandwidth " << bandwidth << "\n";
  os << "flags " << flags_str(flags) << "\n";
  if (!country_code.empty()) os << "country " << country_code << "\n";
  if (!reverse_dns.empty()) os << "rdns " << reverse_dns << "\n";
  for (const PolicyRule& r : exit_policy.rules()) os << r.str() << "\n";
  os << "router-end\n";
  return os.str();
}

RelayDescriptor RelayDescriptor::parse(const std::string& block) {
  RelayDescriptor d;
  d.exit_policy = ExitPolicy();  // rules appended below
  std::vector<PolicyRule> rules;
  bool saw_router = false, saw_end = false;
  for (const std::string& raw : split(block, '\n')) {
    const std::string line = trim(raw);
    if (line.empty()) continue;
    if (starts_with(line, "router ")) {
      const auto parts = split(line, ' ');
      TING_CHECK_MSG(parts.size() == 4, "bad router line: " << line);
      d.nickname = parts[1];
      const auto ip = IpAddr::parse(parts[2]);
      TING_CHECK_MSG(ip.has_value(), "bad router address: " << line);
      d.address = *ip;
      d.or_port = static_cast<std::uint16_t>(std::stoi(parts[3]));
      saw_router = true;
    } else if (starts_with(line, "fingerprint ")) {
      d.fingerprint = Fingerprint::from_hex(trim(line.substr(12)));
    } else if (starts_with(line, "ntor-onion-key ")) {
      const Bytes raw_key = from_hex(trim(line.substr(15)));
      TING_CHECK_MSG(raw_key.size() == d.onion_key.size(), "bad onion key");
      std::memcpy(d.onion_key.data(), raw_key.data(), raw_key.size());
    } else if (starts_with(line, "bandwidth ")) {
      d.bandwidth = static_cast<std::uint32_t>(std::stoul(line.substr(10)));
    } else if (starts_with(line, "flags ")) {
      d.flags = flags_from_str(line.substr(6));
    } else if (starts_with(line, "country ")) {
      d.country_code = trim(line.substr(8));
    } else if (starts_with(line, "rdns ")) {
      d.reverse_dns = trim(line.substr(5));
    } else if (starts_with(line, "accept ") || starts_with(line, "reject ")) {
      rules.push_back(PolicyRule::parse(line));
    } else if (line == "router-end") {
      saw_end = true;
      break;
    } else {
      TING_CHECK_MSG(false, "unknown descriptor line: " << line);
    }
  }
  TING_CHECK_MSG(saw_router && saw_end, "truncated descriptor");
  d.exit_policy = ExitPolicy(std::move(rules));
  return d;
}

}  // namespace ting::dir
