// The network consensus: the set of currently known relays plus bandwidth
// weighting, as clients use for path selection. Also the artifact the §5.3
// coverage analysis consumes (a timeline of consensus snapshots).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dir/descriptor.h"
#include "util/rng.h"

namespace ting::dir {

class Consensus {
 public:
  Consensus() = default;

  void add(RelayDescriptor desc);
  /// Remove by fingerprint; returns true if present.
  bool remove(const Fingerprint& fp);

  std::size_t size() const { return relays_.size(); }
  const std::vector<RelayDescriptor>& relays() const { return relays_; }
  const RelayDescriptor* find(const Fingerprint& fp) const;
  const RelayDescriptor* find_nickname(const std::string& nickname) const;

  /// Sum of bandwidth weights over all relays.
  double total_bandwidth() const;
  /// Bandwidth-weighted random relay (Tor's default selection), optionally
  /// requiring flags. Returns nullptr if no relay qualifies.
  const RelayDescriptor* sample_weighted(Rng& rng,
                                         std::uint32_t required_flags = 0) const;

  std::string serialize() const;
  static Consensus parse(const std::string& text);

 private:
  std::vector<RelayDescriptor> relays_;
  std::unordered_map<Fingerprint, std::size_t> index_;
  void reindex();
};

}  // namespace ting::dir
