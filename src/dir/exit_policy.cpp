#include "dir/exit_policy.h"

#include <sstream>

#include "util/assert.h"
#include "util/bytes.h"

namespace ting::dir {

namespace {

bool parse_u16(const std::string& s, std::uint16_t& out) {
  if (s.empty() || s.size() > 5) return false;
  std::uint32_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint32_t>(c - '0');
    if (v > 65535) return false;
  }
  out = static_cast<std::uint16_t>(v);
  return true;
}

}  // namespace

PolicyRule PolicyRule::parse(const std::string& line) {
  const std::string t = trim(line);
  PolicyRule rule;
  std::string rest;
  if (starts_with(t, "accept ")) {
    rule.accept = true;
    rest = trim(t.substr(7));
  } else if (starts_with(t, "reject ")) {
    rule.accept = false;
    rest = trim(t.substr(7));
  } else {
    TING_CHECK_MSG(false, "policy rule must start with accept/reject: " << line);
  }

  const std::size_t colon = rest.rfind(':');
  TING_CHECK_MSG(colon != std::string::npos, "policy rule needs ':' — " << line);
  const std::string addr_part = rest.substr(0, colon);
  const std::string port_part = rest.substr(colon + 1);

  if (addr_part == "*") {
    rule.any_addr = true;
  } else {
    rule.any_addr = false;
    std::string ip_str = addr_part;
    const std::size_t slash = addr_part.find('/');
    if (slash != std::string::npos) {
      ip_str = addr_part.substr(0, slash);
      const std::string len_str = addr_part.substr(slash + 1);
      std::uint16_t len = 0;
      TING_CHECK_MSG(parse_u16(len_str, len) && len >= 1 && len <= 32,
                     "bad prefix length: " << line);
      rule.prefix_len = len;
    }
    const auto ip = IpAddr::parse(ip_str);
    TING_CHECK_MSG(ip.has_value(), "bad address in policy rule: " << line);
    rule.addr = *ip;
  }

  if (port_part == "*") {
    rule.port_lo = 0;
    rule.port_hi = 65535;
  } else {
    const std::size_t dash = port_part.find('-');
    if (dash == std::string::npos) {
      TING_CHECK_MSG(parse_u16(port_part, rule.port_lo),
                     "bad port in policy rule: " << line);
      rule.port_hi = rule.port_lo;
    } else {
      TING_CHECK_MSG(parse_u16(port_part.substr(0, dash), rule.port_lo) &&
                         parse_u16(port_part.substr(dash + 1), rule.port_hi) &&
                         rule.port_lo <= rule.port_hi,
                     "bad port range in policy rule: " << line);
    }
  }
  return rule;
}

std::string PolicyRule::str() const {
  std::ostringstream os;
  os << (accept ? "accept " : "reject ");
  if (any_addr) {
    os << "*";
  } else {
    os << addr.str();
    if (prefix_len != 32) os << "/" << prefix_len;
  }
  os << ":";
  if (port_lo == 0 && port_hi == 65535) {
    os << "*";
  } else if (port_lo == port_hi) {
    os << port_lo;
  } else {
    os << port_lo << "-" << port_hi;
  }
  return os.str();
}

bool PolicyRule::matches(IpAddr ip, std::uint16_t port) const {
  if (port < port_lo || port > port_hi) return false;
  if (any_addr) return true;
  return ip.prefix_bits(prefix_len) == addr.prefix_bits(prefix_len);
}

ExitPolicy ExitPolicy::reject_all() {
  return ExitPolicy({PolicyRule::parse("reject *:*")});
}

ExitPolicy ExitPolicy::accept_all() {
  return ExitPolicy({PolicyRule::parse("accept *:*")});
}

ExitPolicy ExitPolicy::accept_only(const std::vector<IpAddr>& addrs) {
  std::vector<PolicyRule> rules;
  for (const IpAddr& a : addrs)
    rules.push_back(PolicyRule::parse("accept " + a.str() + ":*"));
  rules.push_back(PolicyRule::parse("reject *:*"));
  return ExitPolicy(std::move(rules));
}

ExitPolicy ExitPolicy::parse(const std::string& text) {
  std::vector<PolicyRule> rules;
  for (const std::string& line : split(text, '\n')) {
    if (trim(line).empty()) continue;
    rules.push_back(PolicyRule::parse(line));
  }
  return ExitPolicy(std::move(rules));
}

bool ExitPolicy::allows(IpAddr ip, std::uint16_t port) const {
  for (const PolicyRule& r : rules_)
    if (r.matches(ip, port)) return r.accept;
  return false;
}

bool ExitPolicy::allows_anything() const {
  for (const PolicyRule& r : rules_)
    if (r.accept) return true;
  return false;
}

std::string ExitPolicy::str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (i) os << "\n";
    os << rules_[i].str();
  }
  return os.str();
}

}  // namespace ting::dir
