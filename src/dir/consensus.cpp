#include "dir/consensus.h"

#include <sstream>

#include "util/assert.h"
#include "util/bytes.h"

namespace ting::dir {

void Consensus::add(RelayDescriptor desc) {
  auto it = index_.find(desc.fingerprint);
  if (it != index_.end()) {
    relays_[it->second] = std::move(desc);  // refresh existing entry
    return;
  }
  index_[desc.fingerprint] = relays_.size();
  relays_.push_back(std::move(desc));
}

bool Consensus::remove(const Fingerprint& fp) {
  auto it = index_.find(fp);
  if (it == index_.end()) return false;
  relays_.erase(relays_.begin() + static_cast<std::ptrdiff_t>(it->second));
  reindex();
  return true;
}

void Consensus::reindex() {
  index_.clear();
  for (std::size_t i = 0; i < relays_.size(); ++i)
    index_[relays_[i].fingerprint] = i;
}

const RelayDescriptor* Consensus::find(const Fingerprint& fp) const {
  auto it = index_.find(fp);
  if (it == index_.end()) return nullptr;
  return &relays_[it->second];
}

const RelayDescriptor* Consensus::find_nickname(
    const std::string& nickname) const {
  for (const auto& r : relays_)
    if (r.nickname == nickname) return &r;
  return nullptr;
}

double Consensus::total_bandwidth() const {
  double total = 0;
  for (const auto& r : relays_) total += r.bandwidth;
  return total;
}

const RelayDescriptor* Consensus::sample_weighted(
    Rng& rng, std::uint32_t required_flags) const {
  std::vector<double> weights;
  weights.reserve(relays_.size());
  double total = 0;
  for (const auto& r : relays_) {
    const double w =
        ((r.flags & required_flags) == required_flags) ? r.bandwidth : 0.0;
    weights.push_back(w);
    total += w;
  }
  if (total <= 0) return nullptr;
  return &relays_[rng.weighted_index(weights)];
}

std::string Consensus::serialize() const {
  std::ostringstream os;
  os << "network-status-version 3\n";
  os << "relay-count " << relays_.size() << "\n";
  for (const auto& r : relays_) os << r.serialize();
  return os.str();
}

Consensus Consensus::parse(const std::string& text) {
  Consensus c;
  std::size_t pos = 0;
  while (true) {
    const std::size_t start = text.find("router ", pos);
    if (start == std::string::npos) break;
    std::size_t end = text.find("router-end", start);
    TING_CHECK_MSG(end != std::string::npos, "truncated consensus");
    end += std::string("router-end").size();
    c.add(RelayDescriptor::parse(text.substr(start, end - start)));
    pos = end;
  }
  return c;
}

}  // namespace ting::dir
