// Relay fingerprints: the 20-byte identity digest used to reference relays
// in circuits, the control protocol (EXTENDCIRCUIT takes fingerprints), and
// the RTT matrix.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "crypto/x25519.h"

namespace ting::dir {

class Fingerprint {
 public:
  static constexpr std::size_t kLen = 20;

  Fingerprint() = default;

  /// Derive from a relay's identity public key (hash, truncated), the way
  /// Tor fingerprints hash the identity key.
  static Fingerprint of_identity(const crypto::X25519Key& identity_public);

  /// Parse 40 hex digits (optionally preceded by '$' as in the control
  /// protocol). Throws CheckError on malformed input.
  static Fingerprint from_hex(const std::string& hex);

  std::string hex() const;           ///< 40 lowercase hex digits
  std::string short_name() const;    ///< first 8 digits, for logs

  auto operator<=>(const Fingerprint&) const = default;

  const std::array<std::uint8_t, kLen>& bytes() const { return id_; }

 private:
  std::array<std::uint8_t, kLen> id_{};
};

}  // namespace ting::dir

template <>
struct std::hash<ting::dir::Fingerprint> {
  std::size_t operator()(const ting::dir::Fingerprint& f) const {
    std::size_t h = 0;
    for (auto b : f.bytes()) h = h * 131 + b;
    return h;
  }
};
