// Relay descriptors: what a relay publishes to the directory and what
// clients need to extend circuits to it (address, ORPort, ntor onion key,
// exit policy, consensus bandwidth).
#pragma once

#include <cstdint>
#include <string>

#include "crypto/x25519.h"
#include "dir/exit_policy.h"
#include "dir/fingerprint.h"
#include "util/ip.h"

namespace ting::dir {

/// Router status flags, a bitmask subset of Tor's.
enum RelayFlags : std::uint32_t {
  kFlagRunning = 1u << 0,
  kFlagValid = 1u << 1,
  kFlagGuard = 1u << 2,
  kFlagExit = 1u << 3,
  kFlagFast = 1u << 4,
  kFlagStable = 1u << 5,
};

std::string flags_str(std::uint32_t flags);
std::uint32_t flags_from_str(const std::string& s);

struct RelayDescriptor {
  std::string nickname;
  Fingerprint fingerprint;
  crypto::X25519Key onion_key{};   ///< ntor identity/onion public key
  IpAddr address;
  std::uint16_t or_port = 0;
  std::uint32_t bandwidth = 0;     ///< consensus weight (KB/s)
  std::uint32_t flags = kFlagRunning | kFlagValid;
  ExitPolicy exit_policy;          ///< default: reject all (non-exit)
  std::string country_code;        ///< convenience metadata for analysis
  std::string reverse_dns;         ///< rDNS name, "" if none (§5.3)

  /// Tor-ish text block, "router ... router-end".
  std::string serialize() const;
  /// Parse one block; throws CheckError on malformed input.
  static RelayDescriptor parse(const std::string& block);

  bool has_flag(RelayFlags f) const { return (flags & f) != 0; }
};

}  // namespace ting::dir
