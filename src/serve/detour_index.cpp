#include "serve/detour_index.h"

#include <cmath>

#include "util/assert.h"

namespace ting::serve {

void DetourIndex::recompute_pair(const MatrixSnapshot& snapshot, std::size_t i,
                                 std::size_t j) {
  Detour& slot = best_[tri(i, j)];
  measured_pairs_ -= slot.measured ? 1 : 0;
  tiv_pairs_ -= slot.tiv ? 1 : 0;

  Detour fresh;
  // NaN legs fail every comparison, so unmeasured vias fall out without a
  // branch; ties keep the lowest relay index (deterministic reports).
  for (std::size_t k = 0; k < n_; ++k) {
    if (k == i || k == j) continue;
    const double sum = snapshot.rtt_raw(i, k) + snapshot.rtt_raw(k, j);
    if (sum < fresh.detour_ms) {
      fresh.detour_ms = sum;
      fresh.via = static_cast<std::int32_t>(k);
    }
  }
  const double direct = snapshot.rtt_raw(i, j);
  fresh.measured = !std::isnan(direct);
  fresh.tiv = fresh.measured && fresh.detour_ms < direct;

  slot = fresh;
  measured_pairs_ += slot.measured ? 1 : 0;
  tiv_pairs_ += slot.tiv ? 1 : 0;
}

DetourIndex DetourIndex::build(const MatrixSnapshot& snapshot) {
  DetourIndex idx;
  idx.n_ = snapshot.node_count();
  idx.best_.assign(idx.n_ * (idx.n_ - 1) / 2, Detour{});
  for (std::size_t i = 0; i < idx.n_; ++i)
    for (std::size_t j = i + 1; j < idx.n_; ++j)
      idx.recompute_pair(snapshot, i, j);
  return idx;
}

void DetourIndex::update(const MatrixSnapshot& snapshot,
                         const std::vector<std::size_t>& changed) {
  TING_CHECK_MSG(snapshot.node_count() == n_,
                 "DetourIndex::update needs a snapshot with the node set the "
                 "index was built from");
  // Dedupe and recompute each incident pair exactly once: pairs between two
  // changed relays would otherwise be recomputed twice (harmless but
  // wasteful — recompute_pair is idempotent).
  std::vector<bool> is_changed(n_, false);
  for (std::size_t r : changed) {
    TING_CHECK(r < n_);
    is_changed[r] = true;
  }
  for (std::size_t r = 0; r < n_; ++r) {
    if (!is_changed[r]) continue;
    for (std::size_t x = 0; x < n_; ++x) {
      if (x == r) continue;
      if (is_changed[x] && x < r) continue;  // already done from x's side
      recompute_pair(snapshot, r, x);
    }
  }
}

}  // namespace ting::serve
