// DetourIndex — the precomputed "best via-relay per pair" table (ShorTor's
// central data structure, and the §5.2.1 TIV scan turned into an index).
//
// For every unordered pair (i, j) of snapshot nodes the index records the
// relay k ≠ i, j minimizing R(i,k) + R(k,j) over relays where both legs are
// measured, plus whether that detour beats the direct path (a triangle-
// inequality violation). Queries that used to be an O(n) scan per call
// (analysis::best_tiv) — or O(n³) re-runs per report (find_all_tivs then
// fraction_pairs_with_tiv again) — become one O(1) table read, and the
// aggregate TIV statistics fall out of counters maintained during the
// single build pass.
//
// Build is O(n³) once per snapshot. Delta epochs don't pay that again: a
// changed matrix entry (a, b) only appears in detour sums R(i,k) + R(k,j)
// where i or j is one of {a, b} (the entry is one leg, so one endpoint of
// the served pair names it), and only in direct terms where {i,j} = {a,b}.
// Every affected pair therefore touches a changed relay, and
// update(snapshot, changed) recomputes exactly the pairs incident to
// changed relays — O(|changed| · n²), the same shape as the daemon's delta
// worklist itself.
//
// Like the snapshot it belongs to, a built index is immutable in the
// serving path: PathServer bundles {snapshot, index} into one atomically
// swapped state, so readers never observe an index mid-update.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "serve/snapshot.h"

namespace ting::serve {

class DetourIndex {
 public:
  /// What the index knows about one unordered pair.
  struct Detour {
    /// Best via-relay (node index), or kNone when no relay has both legs
    /// measured.
    std::int32_t via = kNone;
    /// R(i, via) + R(via, j); +inf when via == kNone.
    double detour_ms = std::numeric_limits<double>::infinity();
    /// True iff the direct RTT is measured in the snapshot this entry was
    /// computed from (the TIV denominator tracks these).
    bool measured = false;
    /// True iff the direct RTT is measured and the detour beats it — the
    /// pair has a triangle-inequality violation.
    bool tiv = false;
  };
  static constexpr std::int32_t kNone = -1;

  DetourIndex() = default;

  /// Full O(n³) build over every pair of `snapshot` nodes.
  static DetourIndex build(const MatrixSnapshot& snapshot);

  /// Recompute only pairs incident to `changed` relays (node indices into
  /// `snapshot`, which must have the same node set this index was built
  /// from). Sound for any set of entry changes confined to those relays —
  /// see the header comment for the argument.
  void update(const MatrixSnapshot& snapshot,
              const std::vector<std::size_t>& changed);

  /// O(1) lookup, i != j, both < node_count().
  const Detour& at(std::size_t i, std::size_t j) const {
    return best_[tri(i, j)];
  }

  std::size_t node_count() const { return n_; }
  /// Pairs whose direct RTT is measured (the TIV denominator).
  std::size_t measured_pairs() const { return measured_pairs_; }
  /// Pairs with a TIV (the paper's 69% numerator).
  std::size_t tiv_pairs() const { return tiv_pairs_; }
  /// fraction_pairs_with_tiv, for free from the build pass.
  double tiv_fraction() const {
    return measured_pairs_ == 0
               ? 0.0
               : static_cast<double>(tiv_pairs_) /
                     static_cast<double>(measured_pairs_);
  }

 private:
  /// Triangular storage index for the unordered pair (i, j).
  std::size_t tri(std::size_t i, std::size_t j) const {
    if (i > j) std::swap(i, j);
    return i * n_ - i * (i + 1) / 2 + (j - i - 1);
  }
  /// Recompute one pair's entry from scratch, adjusting the counters.
  void recompute_pair(const MatrixSnapshot& snapshot, std::size_t i,
                      std::size_t j);

  std::size_t n_ = 0;
  std::vector<Detour> best_;  ///< n·(n−1)/2 entries, tri() order
  std::size_t measured_pairs_ = 0;
  std::size_t tiv_pairs_ = 0;
};

}  // namespace ting::serve
