// MatrixSnapshot — an immutable, read-optimized image of the all-pairs RTT
// matrix, built for the serving layer (§5's applications: low-RTT circuit
// selection, TIV detours) rather than for measurement bookkeeping.
//
// The measurement stores (RttMatrix's ordered map, SparseRttMatrix's hash
// map) are write-side structures: node-keyed, mutable, and growing while a
// scan runs. A query path serving "millions of clients picking circuits"
// wants the opposite: a dense fingerprint→index table fixed at build time
// plus a flat n×n RTT array, so every lookup is one hash probe (or none,
// for index-based callers) and one array read — no tree walk, no pair-key
// construction, no lock.
//
// Snapshots are built once (O(n²)) from either matrix type, then never
// mutated; PathServer publishes them through an atomic shared_ptr swap so
// readers always see a complete, internally consistent image. Missing pairs
// are quiet NaNs in the flat array — a partially-converged daemon store is
// a first-class input, and every accessor reports absence instead of
// aborting (the analysis layer's TING_CHECK-on-missing behaviour is
// deliberately not replicated here).
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dir/fingerprint.h"
#include "ting/rtt_matrix.h"
#include "ting/sparse_matrix.h"
#include "util/time.h"

namespace ting::serve {

/// Storage precision of the flat RTT array. kFloat32 halves the dense image
/// (288 MB → 144 MB at 6,000 relays) at ≤6e-8 relative rounding error —
/// orders of magnitude below measurement noise, and NaN-coding survives the
/// float↔double conversion. Opt-in (default float64) because the wide mode
/// round-trips the stores' doubles bit-exactly.
enum class SnapshotStorage : std::uint8_t { kFloat64, kFloat32 };

class MatrixSnapshot {
 public:
  MatrixSnapshot() = default;

  /// Build from a finished scan's dense matrix or a daemon's sparse store.
  /// `epoch`/`stamp` identify which checkpoint this image reflects (readers
  /// use them to reason about staleness; see PROTOCOL.md).
  static MatrixSnapshot build(const meas::RttMatrix& matrix,
                              std::uint64_t epoch = 0, TimePoint stamp = {},
                              SnapshotStorage storage = SnapshotStorage::kFloat64);
  static MatrixSnapshot build(const meas::SparseRttMatrix& matrix,
                              std::uint64_t epoch = 0, TimePoint stamp = {},
                              SnapshotStorage storage = SnapshotStorage::kFloat64);

  std::size_t node_count() const { return nodes_.size(); }
  /// All relays in the snapshot, sorted by fingerprint (index order).
  const std::vector<dir::Fingerprint>& nodes() const { return nodes_; }
  const dir::Fingerprint& node(std::size_t i) const { return nodes_[i]; }

  /// Dense index of a fingerprint, or nullopt if the relay is unknown.
  std::optional<std::size_t> index_of(const dir::Fingerprint& fp) const {
    const auto it = index_.find(fp);
    if (it == index_.end()) return std::nullopt;
    return static_cast<std::size_t>(it->second);
  }

  /// The query hot path: one array read, NaN when the pair is unmeasured
  /// (and on the diagonal — a relay has no RTT to itself worth serving).
  /// Float32 images widen on read (NaN propagates), so every consumer —
  /// DetourIndex, neighbor lists, band tables — is storage-agnostic.
  double rtt_raw(std::size_t i, std::size_t j) const {
    const std::size_t idx = i * nodes_.size() + j;
    return storage_ == SnapshotStorage::kFloat32
               ? static_cast<double>(rtt32_[idx])
               : rtt_[idx];
  }
  bool has(std::size_t i, std::size_t j) const {
    return !std::isnan(rtt_raw(i, j));
  }
  std::optional<double> rtt(std::size_t i, std::size_t j) const {
    const double r = rtt_raw(i, j);
    if (std::isnan(r)) return std::nullopt;
    return r;
  }
  std::optional<double> rtt(const dir::Fingerprint& a,
                            const dir::Fingerprint& b) const;

  /// Sum of consecutive-hop RTTs along a path of node indices; nullopt when
  /// any hop is unmeasured (never aborts — the serving layer's contract).
  std::optional<double> path_rtt_ms(const std::vector<std::size_t>& path) const;

  /// Unordered pairs with a measured RTT.
  std::size_t pair_count() const { return pair_count_; }
  /// Measured fraction of the all-pairs set (1.0 for a finished scan).
  double coverage() const;

  std::uint64_t epoch() const { return epoch_; }
  TimePoint stamp() const { return stamp_; }
  SnapshotStorage storage() const { return storage_; }
  /// Heap bytes of the flat RTT array plus the fingerprint index — the
  /// number the float32 mode halves (modulo the index).
  std::size_t memory_bytes() const;

 private:
  void index_nodes(std::vector<dir::Fingerprint> nodes);
  void set_pair(std::size_t i, std::size_t j, double rtt_ms);

  std::vector<dir::Fingerprint> nodes_;  ///< sorted; index order
  std::unordered_map<dir::Fingerprint, std::uint32_t> index_;
  SnapshotStorage storage_ = SnapshotStorage::kFloat64;
  std::vector<double> rtt_;   ///< n×n, symmetric, NaN = unmeasured (float64)
  std::vector<float> rtt32_;  ///< same image in float32 mode
  std::size_t pair_count_ = 0;
  std::uint64_t epoch_ = 0;
  TimePoint stamp_;
};

}  // namespace ting::serve
