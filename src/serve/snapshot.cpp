#include "serve/snapshot.h"

#include <limits>

namespace ting::serve {

void MatrixSnapshot::index_nodes(std::vector<dir::Fingerprint> nodes) {
  nodes_ = std::move(nodes);  // both matrix types return sorted node lists
  index_.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    index_.emplace(nodes_[i], static_cast<std::uint32_t>(i));
  // Exactly one flat array is ever populated; the other stays empty.
  if (storage_ == SnapshotStorage::kFloat32)
    rtt32_.assign(nodes_.size() * nodes_.size(),
                  std::numeric_limits<float>::quiet_NaN());
  else
    rtt_.assign(nodes_.size() * nodes_.size(),
                std::numeric_limits<double>::quiet_NaN());
}

void MatrixSnapshot::set_pair(std::size_t i, std::size_t j, double rtt_ms) {
  const std::size_t ij = i * nodes_.size() + j;
  const std::size_t ji = j * nodes_.size() + i;
  if (storage_ == SnapshotStorage::kFloat32) {
    const float narrow = static_cast<float>(rtt_ms);
    rtt32_[ij] = narrow;
    rtt32_[ji] = narrow;
  } else {
    rtt_[ij] = rtt_ms;
    rtt_[ji] = rtt_ms;
  }
  ++pair_count_;
}

MatrixSnapshot MatrixSnapshot::build(const meas::RttMatrix& matrix,
                                     std::uint64_t epoch, TimePoint stamp,
                                     SnapshotStorage storage) {
  MatrixSnapshot s;
  s.epoch_ = epoch;
  s.stamp_ = stamp;
  s.storage_ = storage;
  s.index_nodes(matrix.nodes());
  for (std::size_t i = 0; i < s.nodes_.size(); ++i)
    for (std::size_t j = i + 1; j < s.nodes_.size(); ++j)
      if (const auto r = matrix.rtt(s.nodes_[i], s.nodes_[j]); r.has_value())
        s.set_pair(i, j, *r);
  return s;
}

MatrixSnapshot MatrixSnapshot::build(const meas::SparseRttMatrix& matrix,
                                     std::uint64_t epoch, TimePoint stamp,
                                     SnapshotStorage storage) {
  MatrixSnapshot s;
  s.epoch_ = epoch;
  s.stamp_ = stamp;
  s.storage_ = storage;
  s.index_nodes(matrix.nodes());
  for (std::size_t i = 0; i < s.nodes_.size(); ++i)
    for (std::size_t j = i + 1; j < s.nodes_.size(); ++j)
      if (const auto r = matrix.rtt(s.nodes_[i], s.nodes_[j]); r.has_value())
        s.set_pair(i, j, *r);
  return s;
}

std::size_t MatrixSnapshot::memory_bytes() const {
  std::size_t bytes = rtt_.capacity() * sizeof(double) +
                      rtt32_.capacity() * sizeof(float) +
                      nodes_.capacity() * sizeof(dir::Fingerprint);
  // Hash-map estimate mirrors SparseRttMatrix::memory_bytes: per-node
  // payload + two list pointers, plus the bucket array.
  bytes += index_.size() *
           (sizeof(std::pair<const dir::Fingerprint, std::uint32_t>) +
            2 * sizeof(void*));
  bytes += index_.bucket_count() * sizeof(void*);
  return bytes;
}

std::optional<double> MatrixSnapshot::rtt(const dir::Fingerprint& a,
                                          const dir::Fingerprint& b) const {
  const auto i = index_of(a);
  const auto j = index_of(b);
  if (!i.has_value() || !j.has_value()) return std::nullopt;
  return rtt(*i, *j);
}

std::optional<double> MatrixSnapshot::path_rtt_ms(
    const std::vector<std::size_t>& path) const {
  if (path.size() < 2) return std::nullopt;
  double total = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const double r = rtt_raw(path[i], path[i + 1]);
    if (std::isnan(r)) return std::nullopt;
    total += r;
  }
  return total;
}

double MatrixSnapshot::coverage() const {
  const std::size_t n = nodes_.size();
  const std::size_t total = n * (n - 1) / 2;
  if (total == 0) return 1.0;
  return static_cast<double>(pair_count_) / static_cast<double>(total);
}

}  // namespace ting::serve
