// PathServer — the read side of the matrix: latency-aware path-selection
// queries served concurrently with a live scan updating the data.
//
// The paper's §5 applications all *read* the all-pairs matrix: pick the
// fastest 3-hop circuit through a relay you trust, find a TIV detour for a
// slow pair, choose a circuit length whose RTT band hides you among many
// alternatives (Fig 16/17). A deployment serves those queries to many
// clients while the scan daemon keeps measuring — so the serving state must
// be readable with zero coordination.
//
// Design: all derived read structures — the dense MatrixSnapshot, the
// DetourIndex, per-relay neighbor lists sorted by RTT, and per-length
// band-candidate tables (the circuit-selection literature's sampled
// candidate sets) — are bundled into one immutable ServingState. The writer
// (daemon checkpoint hook, or anyone calling publish()) builds the next
// state off to the side and installs it with a single atomic shared_ptr
// swap. Readers load the pointer once per query and run entirely against
// that state: no locks, no torn reads, and a reader holding an old state
// keeps it alive until it finishes (shared_ptr refcount), so publication
// never invalidates an in-flight query.
//
// Staleness bound: a query sees at worst the state published at the last
// completed daemon epoch, i.e. data at most one epoch interval plus one
// publish older than the matrix on disk (PROTOCOL.md "Serving the matrix").
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "dir/fingerprint.h"
#include "serve/detour_index.h"
#include "serve/snapshot.h"
#include "ting/rtt_matrix.h"
#include "ting/sparse_matrix.h"
#include "util/time.h"

namespace ting::serve {

struct ServeOptions {
  /// Candidate-table circuit lengths [min_length, max_length].
  std::size_t min_length = 3;
  std::size_t max_length = 6;
  /// Circuits sampled per length when building a table. Tables are samples,
  /// not enumerations — C(n, ℓ) is astronomically larger than any table.
  std::size_t candidates_per_length = 2000;
  /// Seed for the deterministic candidate sampling.
  std::uint64_t seed = 1;
  /// Patch the detour index incrementally only while the changed-relay set
  /// stays below this fraction of the snapshot; above it a full O(n³)
  /// rebuild is cheaper than |changed|·n² patching.
  double full_rebuild_fraction = 0.5;
  /// Build published snapshots in float32 storage, halving the dense RTT
  /// image (288 MB → 144 MB at 6,000 relays; see SnapshotStorage). Off by
  /// default: float64 round-trips the store bit-exactly.
  bool float32_snapshot = false;
};

/// One sampled circuit, as node indices into the owning snapshot.
struct ServedCircuit {
  std::vector<std::uint32_t> path;
  double rtt_ms = 0;
};

/// Sampled circuits of one length, sorted by RTT — band queries are a
/// binary search, and the in-band fraction scales to the C(n, ℓ) population
/// exactly like analysis::circuit_options_in_band.
struct CandidateTable {
  std::size_t length = 0;
  std::size_t sampled = 0;  ///< draws attempted (valid + incomplete)
  std::vector<ServedCircuit> circuits;  ///< complete circuits, RTT-ascending
};

/// Everything a query needs, immutable once published.
struct ServingState {
  MatrixSnapshot snapshot;
  DetourIndex detours;
  /// Per relay, every measured neighbor as (rtt_ms, node index), RTT-
  /// ascending — fastest-k enumeration walks these from the front.
  std::vector<std::vector<std::pair<double, std::uint32_t>>> neighbors;
  std::vector<CandidateTable> tables;  ///< index: length − min_length

  const CandidateTable* table_for(std::size_t length) const;
};

class PathServer {
 public:
  explicit PathServer(ServeOptions options = {});

  // ---- writer side ---------------------------------------------------------

  /// Build the derived structures for `snapshot` and atomically publish
  /// them. `changed` names relays whose matrix entries may differ from the
  /// previously published snapshot; when the node set is unchanged and the
  /// set is small, the detour index is patched in O(|changed|·n²) instead
  /// of rebuilt. Pass empty to force a full rebuild.
  void publish(MatrixSnapshot snapshot,
               const std::vector<dir::Fingerprint>& changed = {});
  void publish(const meas::SparseRttMatrix& matrix, std::uint64_t epoch = 0,
               TimePoint stamp = {},
               const std::vector<dir::Fingerprint>& changed = {});
  void publish(const meas::RttMatrix& matrix, std::uint64_t epoch = 0,
               TimePoint stamp = {});

  // ---- reader side (all lock-free: one atomic load, then plain reads) ------

  /// The current state, or nullptr before the first publish. Hold the
  /// returned pointer for the duration of a multi-step query so every step
  /// sees the same snapshot.
  std::shared_ptr<const ServingState> state() const {
    return state_.load(std::memory_order_acquire);
  }
  bool ready() const { return state() != nullptr; }

  /// A query answer with resolved fingerprints.
  struct Circuit {
    std::vector<dir::Fingerprint> relays;
    double rtt_ms = 0;
  };
  struct DetourRoute {
    dir::Fingerprint via;
    std::optional<double> direct_ms;  ///< nullopt: pair itself unmeasured
    double detour_ms = 0;
    bool tiv = false;  ///< detour beats a measured direct path
  };

  /// Direct RTT for a pair (nullopt: unknown relay or unmeasured pair).
  std::optional<double> rtt(const dir::Fingerprint& a,
                            const dir::Fingerprint& b) const;
  /// Best via-relay for a pair — O(1) against the detour index. Answers
  /// even when the direct pair is unmeasured (the detour then *is* the
  /// serving-layer estimate for the pair, ShorTor-style).
  std::optional<DetourRoute> best_detour(const dir::Fingerprint& a,
                                         const dir::Fingerprint& b) const;
  /// The k fastest 3-hop circuits with `relay` as the middle hop.
  std::vector<Circuit> fastest_through(const dir::Fingerprint& relay,
                                       std::size_t k) const;
  /// Up to `want` sampled circuits of `length` with RTT in [lo, hi].
  std::vector<Circuit> circuits_in_band(std::size_t length, double lo_ms,
                                        double hi_ms,
                                        std::size_t want) const;
  /// Estimated number of distinct circuits of `length` in the band, scaled
  /// from the candidate table to the full C(n, length) population.
  double options_in_band(std::size_t length, double lo_ms, double hi_ms) const;

  /// Lifetime publish count (writer-side metric).
  std::uint64_t publishes() const {
    return publishes_.load(std::memory_order_relaxed);
  }
  const ServeOptions& options() const { return options_; }

 private:
  ServeOptions options_;
  std::atomic<std::shared_ptr<const ServingState>> state_{nullptr};
  std::atomic<std::uint64_t> publishes_{0};
};

}  // namespace ting::serve
