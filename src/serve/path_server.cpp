#include "serve/path_server.h"

#include <algorithm>
#include <queue>
#include <set>

#include "util/rng.h"

namespace ting::serve {

namespace {

/// C(n, k) at double precision (a local copy: serve must not depend on
/// analysis, which itself builds on this library).
double choose(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  double result = 1;
  for (std::size_t i = 0; i < k; ++i)
    result *= static_cast<double>(n - i) / static_cast<double>(i + 1);
  return result;
}

std::vector<std::vector<std::pair<double, std::uint32_t>>> build_neighbors(
    const MatrixSnapshot& snapshot) {
  const std::size_t n = snapshot.node_count();
  std::vector<std::vector<std::pair<double, std::uint32_t>>> out(n);
  for (std::size_t r = 0; r < n; ++r) {
    auto& list = out[r];
    for (std::size_t x = 0; x < n; ++x) {
      if (x == r) continue;
      const double rtt = snapshot.rtt_raw(r, x);
      if (!std::isnan(rtt)) list.emplace_back(rtt, static_cast<std::uint32_t>(x));
    }
    std::sort(list.begin(), list.end());
  }
  return out;
}

std::vector<CandidateTable> build_tables(const MatrixSnapshot& snapshot,
                                         const ServeOptions& options) {
  std::vector<CandidateTable> tables;
  const std::size_t n = snapshot.node_count();
  for (std::size_t len = options.min_length; len <= options.max_length;
       ++len) {
    CandidateTable table;
    table.length = len;
    if (len >= 2 && len <= n) {
      // Deterministic per-length stream: rebuilding the same snapshot with
      // the same options yields byte-identical tables.
      Rng rng(mix64(options.seed ^ mix64(static_cast<std::uint64_t>(len))));
      table.sampled = options.candidates_per_length;
      for (std::size_t i = 0; i < table.sampled; ++i) {
        std::vector<std::size_t> path = rng.sample_indices(n, len);
        const auto rtt = snapshot.path_rtt_ms(path);
        if (!rtt.has_value()) continue;  // incomplete: unmeasured hop
        ServedCircuit c;
        c.rtt_ms = *rtt;
        c.path.reserve(len);
        for (std::size_t idx : path)
          c.path.push_back(static_cast<std::uint32_t>(idx));
        table.circuits.push_back(std::move(c));
      }
      std::sort(table.circuits.begin(), table.circuits.end(),
                [](const ServedCircuit& a, const ServedCircuit& b) {
                  return a.rtt_ms != b.rtt_ms ? a.rtt_ms < b.rtt_ms
                                              : a.path < b.path;
                });
      // Drop exact duplicate draws so band answers are distinct circuits.
      table.circuits.erase(
          std::unique(table.circuits.begin(), table.circuits.end(),
                      [](const ServedCircuit& a, const ServedCircuit& b) {
                        return a.path == b.path;
                      }),
          table.circuits.end());
    }
    tables.push_back(std::move(table));
  }
  return tables;
}

}  // namespace

const CandidateTable* ServingState::table_for(std::size_t length) const {
  for (const CandidateTable& t : tables)
    if (t.length == length) return &t;
  return nullptr;
}

PathServer::PathServer(ServeOptions options) : options_(options) {}

void PathServer::publish(MatrixSnapshot snapshot,
                         const std::vector<dir::Fingerprint>& changed) {
  auto next = std::make_shared<ServingState>();
  next->snapshot = std::move(snapshot);
  const std::shared_ptr<const ServingState> prev =
      state_.load(std::memory_order_acquire);

  // Patch the detour index incrementally when the node set is stable and
  // the change set is small; otherwise rebuild. Correctness never depends
  // on this choice — update() recomputes affected pairs from scratch.
  bool incremental = prev != nullptr && !changed.empty() &&
                     prev->snapshot.nodes() == next->snapshot.nodes();
  std::vector<std::size_t> changed_indices;
  if (incremental) {
    for (const dir::Fingerprint& fp : changed)
      if (const auto i = next->snapshot.index_of(fp); i.has_value())
        changed_indices.push_back(*i);
    incremental =
        static_cast<double>(changed_indices.size()) <
        options_.full_rebuild_fraction *
            static_cast<double>(next->snapshot.node_count());
  }
  if (incremental) {
    next->detours = prev->detours;
    next->detours.update(next->snapshot, changed_indices);
  } else {
    next->detours = DetourIndex::build(next->snapshot);
  }

  next->neighbors = build_neighbors(next->snapshot);
  next->tables = build_tables(next->snapshot, options_);

  // The swap: readers loading before this see the previous complete state,
  // readers loading after see this one; either way a fully built image.
  state_.store(std::move(next), std::memory_order_release);
  publishes_.fetch_add(1, std::memory_order_relaxed);
}

void PathServer::publish(const meas::SparseRttMatrix& matrix,
                         std::uint64_t epoch, TimePoint stamp,
                         const std::vector<dir::Fingerprint>& changed) {
  const SnapshotStorage storage = options_.float32_snapshot
                                      ? SnapshotStorage::kFloat32
                                      : SnapshotStorage::kFloat64;
  publish(MatrixSnapshot::build(matrix, epoch, stamp, storage), changed);
}

void PathServer::publish(const meas::RttMatrix& matrix, std::uint64_t epoch,
                         TimePoint stamp) {
  const SnapshotStorage storage = options_.float32_snapshot
                                      ? SnapshotStorage::kFloat32
                                      : SnapshotStorage::kFloat64;
  publish(MatrixSnapshot::build(matrix, epoch, stamp, storage));
}

std::optional<double> PathServer::rtt(const dir::Fingerprint& a,
                                      const dir::Fingerprint& b) const {
  const auto st = state();
  if (st == nullptr) return std::nullopt;
  return st->snapshot.rtt(a, b);
}

std::optional<PathServer::DetourRoute> PathServer::best_detour(
    const dir::Fingerprint& a, const dir::Fingerprint& b) const {
  const auto st = state();
  if (st == nullptr) return std::nullopt;
  const auto i = st->snapshot.index_of(a);
  const auto j = st->snapshot.index_of(b);
  if (!i.has_value() || !j.has_value() || *i == *j) return std::nullopt;
  const DetourIndex::Detour& d = st->detours.at(*i, *j);
  if (d.via == DetourIndex::kNone) return std::nullopt;
  DetourRoute route;
  route.via = st->snapshot.node(static_cast<std::size_t>(d.via));
  route.direct_ms = st->snapshot.rtt(*i, *j);
  route.detour_ms = d.detour_ms;
  route.tiv = d.tiv;
  return route;
}

std::vector<PathServer::Circuit> PathServer::fastest_through(
    const dir::Fingerprint& relay, std::size_t k) const {
  std::vector<Circuit> out;
  const auto st = state();
  if (st == nullptr || k == 0) return out;
  const auto r = st->snapshot.index_of(relay);
  if (!r.has_value()) return out;
  const auto& neigh = st->neighbors[*r];
  const std::size_t m = neigh.size();
  if (m < 2) return out;

  // k smallest sums over pairs (ia < ib) of the RTT-sorted neighbor list:
  // frontier heap seeded at (0, 1); successors (ia, ib+1) and (ia+1, ib).
  struct Node {
    double sum;
    std::size_t ia, ib;
    bool operator>(const Node& o) const { return sum > o.sum; }
  };
  std::priority_queue<Node, std::vector<Node>, std::greater<Node>> heap;
  std::set<std::pair<std::size_t, std::size_t>> seen;
  const auto push = [&](std::size_t ia, std::size_t ib) {
    if (ib >= m || ia >= ib) return;
    if (!seen.emplace(ia, ib).second) return;
    heap.push(Node{neigh[ia].first + neigh[ib].first, ia, ib});
  };
  push(0, 1);
  while (!heap.empty() && out.size() < k) {
    const Node top = heap.top();
    heap.pop();
    Circuit c;
    c.relays = {st->snapshot.node(neigh[top.ia].second), relay,
                st->snapshot.node(neigh[top.ib].second)};
    c.rtt_ms = top.sum;
    out.push_back(std::move(c));
    push(top.ia, top.ib + 1);
    push(top.ia + 1, top.ib);
  }
  return out;
}

std::vector<PathServer::Circuit> PathServer::circuits_in_band(
    std::size_t length, double lo_ms, double hi_ms, std::size_t want) const {
  std::vector<Circuit> out;
  const auto st = state();
  if (st == nullptr) return out;
  const CandidateTable* table = st->table_for(length);
  if (table == nullptr) return out;
  auto it = std::lower_bound(table->circuits.begin(), table->circuits.end(),
                             lo_ms, [](const ServedCircuit& c, double v) {
                               return c.rtt_ms < v;
                             });
  for (; it != table->circuits.end() && it->rtt_ms <= hi_ms &&
         out.size() < want;
       ++it) {
    Circuit c;
    c.rtt_ms = it->rtt_ms;
    c.relays.reserve(it->path.size());
    for (std::uint32_t idx : it->path)
      c.relays.push_back(st->snapshot.node(idx));
    out.push_back(std::move(c));
  }
  return out;
}

double PathServer::options_in_band(std::size_t length, double lo_ms,
                                   double hi_ms) const {
  const auto st = state();
  if (st == nullptr) return 0;
  const CandidateTable* table = st->table_for(length);
  if (table == nullptr || table->sampled == 0) return 0;
  const auto lo = std::lower_bound(
      table->circuits.begin(), table->circuits.end(), lo_ms,
      [](const ServedCircuit& c, double v) { return c.rtt_ms < v; });
  const auto hi = std::upper_bound(
      table->circuits.begin(), table->circuits.end(), hi_ms,
      [](double v, const ServedCircuit& c) { return v < c.rtt_ms; });
  const auto in_band = static_cast<double>(std::distance(lo, hi));
  return in_band / static_cast<double>(table->sampled) *
         choose(st->snapshot.node_count(), length);
}

}  // namespace ting::serve
