#include "cells/relay_payload.h"

#include <array>
#include <cstring>

#include "cells/cell.h"
#include "util/assert.h"

namespace ting::cells {

std::string relay_command_name(RelayCommand c) {
  switch (c) {
    case RelayCommand::kBegin: return "BEGIN";
    case RelayCommand::kData: return "DATA";
    case RelayCommand::kEnd: return "END";
    case RelayCommand::kConnected: return "CONNECTED";
    case RelayCommand::kSendme: return "SENDME";
    case RelayCommand::kExtend: return "EXTEND";
    case RelayCommand::kExtended: return "EXTENDED";
    case RelayCommand::kDrop: return "DROP";
  }
  return "UNKNOWN";
}

std::uint32_t RollingDigest::absorb(
    std::span<const std::uint8_t> payload_with_zero_digest) {
  crypto::Hasher h;
  h.update(std::span<const std::uint8_t>(state_.data(), state_.size()));
  h.update(payload_with_zero_digest);
  state_ = h.finalize();
  return static_cast<std::uint32_t>(state_[0]) << 24 |
         static_cast<std::uint32_t>(state_[1]) << 16 |
         static_cast<std::uint32_t>(state_[2]) << 8 |
         static_cast<std::uint32_t>(state_[3]);
}

Bytes encode_relay(const RelayPayload& p, RollingDigest& digest) {
  TING_CHECK_MSG(p.data.size() <= kRelayDataMax,
                 "relay data too large: " << p.data.size());
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(p.command));
  w.u16(0);  // recognized
  w.u16(p.stream_id);
  w.u32(0);  // digest placeholder
  w.u16(static_cast<std::uint16_t>(p.data.size()));
  w.raw(std::span<const std::uint8_t>(p.data.data(), p.data.size()));
  w.pad_to(kPayloadSize);
  Bytes out = w.take();
  const std::uint32_t d =
      digest.absorb(std::span<const std::uint8_t>(out.data(), out.size()));
  out[5] = static_cast<std::uint8_t>(d >> 24);
  out[6] = static_cast<std::uint8_t>(d >> 16);
  out[7] = static_cast<std::uint8_t>(d >> 8);
  out[8] = static_cast<std::uint8_t>(d);
  return out;
}

std::optional<RelayPayload> try_parse_relay(
    std::span<const std::uint8_t> payload, RollingDigest& digest) {
  if (payload.size() != kPayloadSize) return std::nullopt;
  // recognized must be zero.
  if (payload[1] != 0 || payload[2] != 0) return std::nullopt;
  const std::uint32_t claimed = static_cast<std::uint32_t>(payload[5]) << 24 |
                                static_cast<std::uint32_t>(payload[6]) << 16 |
                                static_cast<std::uint32_t>(payload[7]) << 8 |
                                static_cast<std::uint32_t>(payload[8]);
  // Recompute over the payload with the digest field zeroed. Trial-absorb on
  // a copy of the digest state: only commit on a match. The zeroed copy lives
  // on the stack — this runs once per hop per cell, so a heap allocation here
  // would be the codec's dominant cost.
  std::array<std::uint8_t, kPayloadSize> zeroed;
  std::memcpy(zeroed.data(), payload.data(), kPayloadSize);
  zeroed[5] = zeroed[6] = zeroed[7] = zeroed[8] = 0;
  RollingDigest trial = digest;
  const std::uint32_t computed =
      trial.absorb(std::span<const std::uint8_t>(zeroed.data(), zeroed.size()));
  if (computed != claimed) return std::nullopt;
  digest = trial;

  ByteReader r(std::span<const std::uint8_t>(zeroed.data(), zeroed.size()));
  RelayPayload p;
  p.command = static_cast<RelayCommand>(r.u8());
  r.u16();  // recognized
  p.stream_id = r.u16();
  r.u32();  // digest
  const std::uint16_t len = r.u16();
  if (len > kRelayDataMax) return std::nullopt;
  p.data = r.raw(len);
  return p;
}

Bytes ExtendRequest::encode() const {
  ByteWriter w;
  w.u32(address.value());
  w.u16(or_port);
  w.raw(std::span<const std::uint8_t>(fingerprint.data(), fingerprint.size()));
  w.raw(std::span<const std::uint8_t>(client_public.data(), client_public.size()));
  return w.take();
}

ExtendRequest ExtendRequest::decode(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  ExtendRequest req;
  req.address = IpAddr(r.u32());
  req.or_port = r.u16();
  const Bytes fp = r.raw(req.fingerprint.size());
  std::memcpy(req.fingerprint.data(), fp.data(), fp.size());
  const Bytes pk = r.raw(req.client_public.size());
  std::memcpy(req.client_public.data(), pk.data(), pk.size());
  return req;
}

Bytes ExtendedReply::encode() const {
  ByteWriter w;
  w.raw(std::span<const std::uint8_t>(relay_public.data(), relay_public.size()));
  w.raw(std::span<const std::uint8_t>(auth.data(), auth.size()));
  return w.take();
}

ExtendedReply ExtendedReply::decode(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  ExtendedReply rep;
  const Bytes pk = r.raw(rep.relay_public.size());
  std::memcpy(rep.relay_public.data(), pk.data(), pk.size());
  const Bytes auth = r.raw(rep.auth.size());
  std::memcpy(rep.auth.data(), auth.data(), auth.size());
  return rep;
}

Bytes encode_begin(const Endpoint& target) {
  const std::string s = target.str();
  return Bytes(s.begin(), s.end());
}

std::optional<Endpoint> decode_begin(std::span<const std::uint8_t> data) {
  const std::string s(data.begin(), data.end());
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos) return std::nullopt;
  const auto ip = IpAddr::parse(s.substr(0, colon));
  if (!ip.has_value()) return std::nullopt;
  int port = 0;
  for (char c : s.substr(colon + 1)) {
    if (c < '0' || c > '9') return std::nullopt;
    port = port * 10 + (c - '0');
    if (port > 65535) return std::nullopt;
  }
  return Endpoint{*ip, static_cast<std::uint16_t>(port)};
}

}  // namespace ting::cells
