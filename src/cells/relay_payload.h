// RELAY cell payload framing and the per-hop rolling digest.
//
// Plaintext layout inside the (onion-encrypted) 507-byte relay payload:
//   relay_command(1) recognized(2) stream_id(2) digest(4) length(2) data(...)
// "recognized" is zero in plaintext; a relay that strips its onion layer and
// sees recognized==0 AND a matching rolling digest knows the cell is
// addressed to it (otherwise it forwards the still-encrypted payload on).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "crypto/hash.h"
#include "util/bytes.h"
#include "util/ip.h"

namespace ting::cells {

inline constexpr std::size_t kRelayHeader = 1 + 2 + 2 + 4 + 2;  // 11
inline constexpr std::size_t kRelayDataMax = 507 - kRelayHeader;

enum class RelayCommand : std::uint8_t {
  kBegin = 1,      ///< open a TCP stream from the exit
  kData = 2,       ///< stream payload
  kEnd = 3,        ///< stream closed
  kConnected = 4,  ///< exit completed the BEGIN
  kSendme = 5,     ///< flow control (accepted, ignored by relays here)
  kExtend = 6,     ///< extend the circuit by one hop
  kExtended = 7,   ///< the new hop answered
  kDrop = 10,      ///< long-range padding, discarded at the endpoint
};

std::string relay_command_name(RelayCommand c);

struct RelayPayload {
  RelayCommand command = RelayCommand::kDrop;
  std::uint16_t stream_id = 0;
  Bytes data;
};

/// Rolling digest for one direction of one hop. Both endpoints feed it the
/// same plaintext payloads; 4 bytes of its state authenticate each cell.
class RollingDigest {
 public:
  RollingDigest() = default;
  explicit RollingDigest(const crypto::Digest& seed) : state_(seed) {}

  /// Absorb a full 507-byte plaintext payload whose digest field is zeroed,
  /// returning the 4 digest bytes to place into (or compare against) it.
  std::uint32_t absorb(std::span<const std::uint8_t> payload_with_zero_digest);

 private:
  crypto::Digest state_{};
};

/// Build the 507-byte plaintext payload for a relay cell. `digest` must
/// already reflect this payload (compute via RollingDigest on the payload
/// with a zeroed digest field — encode_relay does this dance internally).
Bytes encode_relay(const RelayPayload& p, RollingDigest& digest);

/// Attempt to parse a just-decrypted payload. Returns the payload if
/// recognized (recognized field zero and digest matching), nullopt if this
/// hop is not the destination. Advances `digest` only when recognized.
std::optional<RelayPayload> try_parse_relay(
    std::span<const std::uint8_t> payload, RollingDigest& digest);

// ---- typed EXTEND/EXTENDED bodies ----------------------------------------

struct ExtendRequest {
  IpAddr address;
  std::uint16_t or_port = 0;
  std::array<std::uint8_t, 20> fingerprint{};
  std::array<std::uint8_t, 32> client_public{};

  Bytes encode() const;
  static ExtendRequest decode(std::span<const std::uint8_t> data);
};

struct ExtendedReply {
  std::array<std::uint8_t, 32> relay_public{};
  std::array<std::uint8_t, 32> auth{};

  Bytes encode() const;
  static ExtendedReply decode(std::span<const std::uint8_t> data);
};

/// BEGIN body: "<ip>:<port>" ASCII, like Tor's address:port.
Bytes encode_begin(const Endpoint& target);
std::optional<Endpoint> decode_begin(std::span<const std::uint8_t> data);

}  // namespace ting::cells
