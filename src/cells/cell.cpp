#include "cells/cell.h"

#include "util/assert.h"

namespace ting::cells {

std::string command_name(CellCommand c) {
  switch (c) {
    case CellCommand::kPadding: return "PADDING";
    case CellCommand::kCreate: return "CREATE";
    case CellCommand::kCreated: return "CREATED";
    case CellCommand::kRelay: return "RELAY";
    case CellCommand::kDestroy: return "DESTROY";
    case CellCommand::kVersions: return "VERSIONS";
    case CellCommand::kNetinfo: return "NETINFO";
  }
  return "UNKNOWN";
}

void Cell::normalize() {
  TING_CHECK_MSG(payload.size() <= kPayloadSize,
                 "cell payload too large: " << payload.size());
  payload.resize(kPayloadSize, 0);
}

Bytes Cell::encode() const {
  TING_CHECK(payload.size() == kPayloadSize);
  ByteWriter w;
  w.u32(circ_id);
  w.u8(static_cast<std::uint8_t>(command));
  w.raw(std::span<const std::uint8_t>(payload.data(), payload.size()));
  return w.take();
}

Cell Cell::decode(std::span<const std::uint8_t> wire) {
  TING_CHECK_MSG(wire.size() == kCellSize,
                 "cell must be exactly " << kCellSize << " bytes, got "
                                         << wire.size());
  ByteReader r(wire);
  Cell c;
  c.circ_id = r.u32();
  c.command = static_cast<CellCommand>(r.u8());
  c.payload = r.raw(kPayloadSize);
  return c;
}

Cell Cell::make(CircuitId circ, CellCommand cmd, Bytes payload) {
  Cell c;
  c.circ_id = circ;
  c.command = cmd;
  c.payload = std::move(payload);
  c.normalize();
  return c;
}

}  // namespace ting::cells
