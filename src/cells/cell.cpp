#include "cells/cell.h"

#include <cstring>

#include "util/assert.h"

namespace ting::cells {

std::string command_name(CellCommand c) {
  switch (c) {
    case CellCommand::kPadding: return "PADDING";
    case CellCommand::kCreate: return "CREATE";
    case CellCommand::kCreated: return "CREATED";
    case CellCommand::kRelay: return "RELAY";
    case CellCommand::kDestroy: return "DESTROY";
    case CellCommand::kVersions: return "VERSIONS";
    case CellCommand::kNetinfo: return "NETINFO";
  }
  return "UNKNOWN";
}

void Cell::normalize() {
  TING_CHECK_MSG(payload.size() <= kPayloadSize,
                 "cell payload too large: " << payload.size());
  payload.resize(kPayloadSize, 0);
}

Bytes Cell::encode() const {
  TING_CHECK(payload.size() == kPayloadSize);
  // Direct header writes into a pooled buffer: encode runs once per hop per
  // cell, so this is the hottest serialization path in the simulator.
  Bytes out = pool::acquire(kCellSize);
  out[0] = static_cast<std::uint8_t>(circ_id >> 24);
  out[1] = static_cast<std::uint8_t>(circ_id >> 16);
  out[2] = static_cast<std::uint8_t>(circ_id >> 8);
  out[3] = static_cast<std::uint8_t>(circ_id);
  out[4] = static_cast<std::uint8_t>(command);
  std::memcpy(out.data() + kCellHeader, payload.data(), kPayloadSize);
  return out;
}

Cell Cell::decode(std::span<const std::uint8_t> wire) {
  TING_CHECK_MSG(wire.size() == kCellSize,
                 "cell must be exactly " << kCellSize << " bytes, got "
                                         << wire.size());
  Cell c;
  c.circ_id = static_cast<CircuitId>(wire[0]) << 24 |
              static_cast<CircuitId>(wire[1]) << 16 |
              static_cast<CircuitId>(wire[2]) << 8 |
              static_cast<CircuitId>(wire[3]);
  c.command = static_cast<CellCommand>(wire[4]);
  c.payload = pool::acquire(kPayloadSize);
  std::memcpy(c.payload.data(), wire.data() + kCellHeader, kPayloadSize);
  return c;
}

Cell Cell::make(CircuitId circ, CellCommand cmd, Bytes payload) {
  Cell c;
  c.circ_id = circ;
  c.command = cmd;
  c.payload = std::move(payload);
  c.normalize();
  return c;
}

}  // namespace ting::cells
