// Tor cells: the fixed-size (512-byte) link-layer unit of the onion-routing
// protocol. Layout mirrors Tor's: a 4-byte circuit id, a 1-byte command,
// and a fixed payload. CREATE/CREATED carry handshake material in the
// clear; RELAY payloads are onion-encrypted hop by hop.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "util/bytes.h"

namespace ting::cells {

inline constexpr std::size_t kCellSize = 512;
inline constexpr std::size_t kCellHeader = 5;  // circ_id(4) + command(1)
inline constexpr std::size_t kPayloadSize = kCellSize - kCellHeader;  // 507

using CircuitId = std::uint32_t;

enum class CellCommand : std::uint8_t {
  kPadding = 0,
  kCreate = 1,
  kCreated = 2,
  kRelay = 3,
  kDestroy = 4,
  kVersions = 7,  ///< link handshake: version negotiation
  kNetinfo = 8,   ///< link handshake: timestamps + observed addresses
};

std::string command_name(CellCommand c);

struct Cell {
  CircuitId circ_id = 0;
  CellCommand command = CellCommand::kPadding;
  Bytes payload;  ///< always kPayloadSize after normalize()/decode()

  /// Zero-pad or truncate payload to exactly kPayloadSize.
  void normalize();
  /// Wire encoding, exactly kCellSize bytes.
  Bytes encode() const;
  /// Parse a wire cell; throws CheckError unless exactly kCellSize bytes.
  static Cell decode(std::span<const std::uint8_t> wire);

  static Cell make(CircuitId circ, CellCommand cmd, Bytes payload = {});
};

/// CREATE payload: the client's ephemeral X25519 public key (32 bytes).
/// CREATED payload: relay ephemeral public key (32) + auth tag (32).
inline constexpr std::size_t kCreatePayloadLen = 32;
inline constexpr std::size_t kCreatedPayloadLen = 64;

/// DESTROY payload: single reason byte.
enum class DestroyReason : std::uint8_t {
  kNone = 0,
  kProtocol = 1,
  kRequested = 3,
  kDestroyed = 5,
  kNoSuchCircuit = 10,
};

}  // namespace ting::cells
