#include "simnet/latency_model.h"

#include <algorithm>

#include "util/assert.h"

namespace ting::simnet {

LatencyModel::LatencyModel(LatencyConfig config) : config_(config) {
  TING_CHECK(config_.inflation_min >= 1.0);
  TING_CHECK(config_.inflation_max >= config_.inflation_min);
}

HostId LatencyModel::add_host(const geo::GeoPoint& location,
                              NetworkPolicy policy, std::uint32_t group_tag) {
  hosts_.push_back(HostInfo{location, policy, group_tag});
  return static_cast<HostId>(hosts_.size() - 1);
}

std::uint32_t LatencyModel::group_tag(HostId h) const {
  TING_CHECK(h < hosts_.size());
  return hosts_[h].group_tag;
}

const geo::GeoPoint& LatencyModel::location(HostId h) const {
  TING_CHECK(h < hosts_.size());
  return hosts_[h].location;
}

const NetworkPolicy& LatencyModel::policy(HostId h) const {
  TING_CHECK(h < hosts_.size());
  return hosts_[h].policy;
}

void LatencyModel::set_policy(HostId h, NetworkPolicy policy) {
  TING_CHECK(h < hosts_.size());
  hosts_[h].policy = policy;
}

double LatencyModel::inflation(HostId a, HostId b) const {
  // Deterministic per unordered pair: hash (seed, min, max) to a uniform
  // draw in [inflation_min, inflation_max].
  const HostId lo = std::min(a, b), hi = std::max(a, b);
  const std::uint64_t h = mix64(config_.seed ^ mix64((std::uint64_t(lo) << 32) | hi));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return config_.inflation_min +
         u * (config_.inflation_max - config_.inflation_min);
}

double LatencyModel::base_rtt_ms_uncached(HostId a, HostId b) const {
  if (a == b) return config_.intra_host_rtt_ms;
  const double km =
      geo::great_circle_km(hosts_[a].location, hosts_[b].location);
  double ms = geo::min_rtt_ms_for_distance(km) * inflation(a, b);
  if (hosts_[a].group_tag != hosts_[b].group_tag &&
      config_.cross_group_extra_max > 0) {
    // Deterministic extra stretch for cross-border paths.
    const HostId lo = std::min(a, b), hi = std::max(a, b);
    const std::uint64_t h = mix64(config_.seed ^ 0xb0cde5 ^
                                  mix64((std::uint64_t(lo) << 32) | hi));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    ms *= 1.0 + config_.cross_group_extra_min +
          u * (config_.cross_group_extra_max - config_.cross_group_extra_min);
  }
  return std::max(ms, config_.min_rtt_ms);
}

Duration LatencyModel::base_rtt(HostId a, HostId b) const {
  TING_CHECK(a < hosts_.size() && b < hosts_.size());
  if (base_table_ && a < base_table_->n && b < base_table_->n)
    return Duration::from_ms(base_table_->at(a, b));
  return Duration::from_ms(base_rtt_ms_uncached(a, b));
}

std::shared_ptr<const BaseRttTable> LatencyModel::build_base_table() const {
  auto table = std::make_shared<BaseRttTable>();
  table->n = hosts_.size();
  table->ms.resize(table->n * table->n);
  for (HostId a = 0; a < table->n; ++a)
    for (HostId b = a; b < table->n; ++b) {
      const double ms = base_rtt_ms_uncached(a, b);
      table->ms[a * table->n + b] = ms;
      table->ms[b * table->n + a] = ms;  // base_rtt is symmetric
    }
  return table;
}

Duration LatencyModel::rtt(HostId a, HostId b, Protocol p) const {
  Duration base = base_rtt(a, b);
  if (a == b) return base;  // loopback never leaves the host's network
  const double extra =
      hosts_[a].policy.extra_ms(p) + hosts_[b].policy.extra_ms(p);
  // A negative total bias (a network that fast-paths a protocol) can at most
  // erase the path latency, never make it negative.
  return std::max(Duration::from_ms(0.01), base + Duration::from_ms(extra));
}

Duration LatencyModel::sample_one_way(HostId a, HostId b, Protocol p,
                                      Rng& rng) const {
  double jitter_ms = rng.exponential(config_.jitter_mean_ms);
  if (rng.chance(config_.jitter_spike_prob))
    jitter_ms += rng.exponential(config_.jitter_spike_ms);
  return rtt(a, b, p) / 2 + Duration::from_ms(jitter_ms);
}

}  // namespace ting::simnet
