// The ground-truth latency model.
//
// Pairwise RTTs are synthesized once, deterministically, from host geography:
//   base_rtt(a,b) = (2/3)c propagation over great-circle distance
//                   × a per-pair path-inflation factor.
// Independent per-pair inflation produces natural triangle-inequality
// violations, the phenomenon §5.2.1 studies. On top of the base RTT, each
// endpoint's network may treat ICMP, plain TCP, and Tor traffic differently
// (per-protocol additive one-way biases) — the effect that breaks the
// strawman of §3.2 and produces the "negative forwarding delays" of Fig 5.
// Individual packets additionally experience queueing jitter, so minima over
// many samples converge to the true RTT.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "geo/geo.h"
#include "util/rng.h"
#include "util/time.h"

namespace ting::simnet {

using HostId = std::uint32_t;

/// Traffic classes a network may treat differently. Tor traffic is TCP on
/// the wire, but some operators special-case it (by port or DPI), so it is
/// modelled as its own class.
enum class Protocol : std::uint8_t { kIcmp = 0, kTcp = 1, kTor = 2 };

/// Per-host, per-protocol one-way extra delay in milliseconds. Zero for
/// well-behaved networks; nonzero values model firewalls/shapers that delay
/// ICMP or Tor differently (observed in §3.2/§4.3).
struct NetworkPolicy {
  double icmp_extra_ms = 0;
  double tcp_extra_ms = 0;
  double tor_extra_ms = 0;

  double extra_ms(Protocol p) const {
    switch (p) {
      case Protocol::kIcmp: return icmp_extra_ms;
      case Protocol::kTcp: return tcp_extra_ms;
      case Protocol::kTor: return tor_extra_ms;
    }
    return 0;
  }
};

struct LatencyConfig {
  // Path stretch over the great-circle minimum. The defaults are tuned so
  // the TIV statistics of §5.2.1 reproduce on *Ting-measured* matrices
  // (which carry per-edge forwarding-delay inflation): a majority of
  // 50-node pairs have a violation, with a single-digit median saving.
  double inflation_min = 1.25;
  double inflation_max = 1.7;
  double intra_host_rtt_ms = 0.08;  ///< loopback RTT (processes on one host)
  double min_rtt_ms = 0.2;          ///< floor for distinct-host pairs
  double jitter_mean_ms = 0.15;     ///< exponential queueing jitter per one-way
  double jitter_spike_prob = 0.01;  ///< occasional congestion spike...
  double jitter_spike_ms = 8.0;     ///< ...of this mean size
  std::uint64_t seed = 4242;        ///< drives the per-pair inflation draw

  // Optional cross-group (international) inflation: pairs whose hosts carry
  // different group tags get an extra multiplicative stretch drawn from
  // [1 + cross_group_extra_min, 1 + cross_group_extra_max]. Disabled by
  // default; Fig 8's bench enables it to study the paper's speculation that
  // international links carry extra latency.
  double cross_group_extra_min = 0.0;
  double cross_group_extra_max = 0.0;
};

/// Dense precomputed base-RTT milliseconds over the first `n` hosts, frozen
/// at topology-build time and shared read-only across shard worlds. The
/// stored values are the exact doubles base_rtt() would compute (inflation
/// hash, cross-group stretch, and floor already applied), so a table lookup
/// is bit-identical to the on-the-fly path.
struct BaseRttTable {
  std::size_t n = 0;
  std::vector<double> ms;  ///< n*n, row-major

  double at(HostId a, HostId b) const { return ms[a * n + b]; }
};

class LatencyModel {
 public:
  explicit LatencyModel(LatencyConfig config = {});

  /// Register a host; ids are dense and assigned in order. `group_tag`
  /// identifies the host's routing domain (e.g. country) for the optional
  /// cross-group inflation; 0 is a fine default when unused.
  HostId add_host(const geo::GeoPoint& location, NetworkPolicy policy = {},
                  std::uint32_t group_tag = 0);
  std::uint32_t group_tag(HostId h) const;

  std::size_t host_count() const { return hosts_.size(); }
  const geo::GeoPoint& location(HostId h) const;
  const NetworkPolicy& policy(HostId h) const;
  void set_policy(HostId h, NetworkPolicy policy);

  /// Ground-truth RTT for neutral TCP traffic (no protocol bias, no jitter).
  /// Symmetric. This is what Ting estimates.
  Duration base_rtt(HostId a, HostId b) const;

  /// RTT including both endpoints' per-protocol biases (still no jitter):
  /// what an infinite-sample minimum of protocol `p` probes converges to.
  Duration rtt(HostId a, HostId b, Protocol p) const;

  /// One random one-way delay sample for a packet (rtt/2 + queueing jitter).
  Duration sample_one_way(HostId a, HostId b, Protocol p, Rng& rng) const;

  const LatencyConfig& config() const { return config_; }

  /// Precompute base_rtt for every pair of currently-registered hosts.
  /// Pure (does not attach); the result can be shared across models built
  /// from the same host sequence and config.
  std::shared_ptr<const BaseRttTable> build_base_table() const;

  /// Serve base_rtt() from a frozen table for host pairs it covers (ids
  /// < table->n); hosts added later fall back to the on-the-fly path. The
  /// table replaces a trig + hash evaluation on every packet delivery.
  void attach_base_table(std::shared_ptr<const BaseRttTable> table) {
    base_table_ = std::move(table);
  }

 private:
  double inflation(HostId a, HostId b) const;
  double base_rtt_ms_uncached(HostId a, HostId b) const;

  LatencyConfig config_;
  std::shared_ptr<const BaseRttTable> base_table_;
  struct HostInfo {
    geo::GeoPoint location;
    NetworkPolicy policy;
    std::uint32_t group_tag = 0;
  };
  std::vector<HostInfo> hosts_;
};

}  // namespace ting::simnet
