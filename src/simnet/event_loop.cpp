#include "simnet/event_loop.h"

#include <algorithm>

#include "util/assert.h"

namespace ting::simnet {

namespace {

// Compact once at least this many tombstones exist AND they outnumber the
// live events — amortized O(1) per cancel, and the heap never holds more
// than ~half garbage.
constexpr std::size_t kCompactionFloor = 64;

}  // namespace

EventLoop::EventLoop() {
  heap_.reserve(kCompactionFloor);
  // Slot arena sized for a busy measurement world up front; growing it
  // mid-scan is pure overhead on the per-cell path.
  slots_.reserve(1024);
}

EventId EventLoop::schedule(Duration delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

EventId EventLoop::schedule_at(TimePoint when, std::function<void()> fn) {
  TING_CHECK_MSG(when >= now_, "cannot schedule into the past");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.armed = true;
  ++live_;
  const EventId id = (static_cast<EventId>(s.generation) << 32) | slot;
  heap_.push_back(Event{when, next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return id;
}

void EventLoop::release(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = nullptr;
  s.armed = false;
  ++s.generation;
  free_slots_.push_back(slot);
  --live_;
}

void EventLoop::cancel(EventId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot >= slots_.size() || is_stale(id)) return;
  release(slot);
  ++tombstones_;  // the heap entry stays parked until popped or compacted
  if (tombstones_ >= kCompactionFloor && tombstones_ * 2 >= heap_.size())
    compact();
}

EventLoop::Event EventLoop::pop_top() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = heap_.back();
  heap_.pop_back();
  return ev;
}

void EventLoop::compact() {
  std::erase_if(heap_, [this](const Event& e) { return is_stale(e.id); });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  tombstones_ = 0;
}

bool EventLoop::run_one() {
  while (!heap_.empty()) {
    const Event ev = pop_top();
    if (is_stale(ev.id)) {  // was cancelled
      --tombstones_;
      continue;
    }
    std::function<void()> fn = std::move(slots_[slot_of(ev.id)].fn);
    release(slot_of(ev.id));
    now_ = ev.when;
    fn();
    return true;
  }
  return false;
}

void EventLoop::run() {
  while (run_one()) {
  }
}

void EventLoop::run_until(TimePoint deadline) {
  while (!heap_.empty()) {
    // Peek without firing cancelled entries.
    if (is_stale(heap_.front().id)) {
      pop_top();
      --tombstones_;
      continue;
    }
    if (heap_.front().when > deadline) break;
    run_one();
  }
  if (now_ < deadline) now_ = deadline;
}

bool EventLoop::run_while_waiting_for(const std::function<bool()>& pred,
                                      Duration timeout) {
  const TimePoint deadline = now_ + timeout;
  while (!pred()) {
    // Drop cancelled entries so a stale top can't trigger a spurious timeout.
    while (!heap_.empty() && is_stale(heap_.front().id)) {
      pop_top();
      --tombstones_;
    }
    if (heap_.empty()) return false;
    if (heap_.front().when > deadline) {
      now_ = deadline;
      return false;
    }
    run_one();
  }
  return true;
}

std::optional<TimePoint> EventLoop::next_event_time() {
  while (!heap_.empty() && is_stale(heap_.front().id)) {
    pop_top();
    --tombstones_;
  }
  if (heap_.empty()) return std::nullopt;
  return heap_.front().when;
}

}  // namespace ting::simnet
