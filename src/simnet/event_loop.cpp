#include "simnet/event_loop.h"

#include <algorithm>

#include "util/assert.h"

namespace ting::simnet {

namespace {

// Compact once at least this many tombstones exist AND they outnumber the
// live events — amortized O(1) per cancel, and the heap never holds more
// than ~half garbage.
constexpr std::size_t kCompactionFloor = 64;

}  // namespace

EventLoop::EventLoop() {
  heap_.reserve(kCompactionFloor);
  // Handler storage sized for a busy measurement world up front; rehashing
  // the map mid-scan is pure overhead on the per-cell path.
  handlers_.reserve(1024);
}

EventId EventLoop::schedule(Duration delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

EventId EventLoop::schedule_at(TimePoint when, std::function<void()> fn) {
  TING_CHECK_MSG(when >= now_, "cannot schedule into the past");
  const EventId id = next_id_++;
  heap_.push_back(Event{when, next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  handlers_.emplace(id, std::move(fn));
  return id;
}

void EventLoop::cancel(EventId id) {
  if (handlers_.erase(id) == 0) return;
  cancelled_.insert(id);
  if (cancelled_.size() >= kCompactionFloor &&
      cancelled_.size() * 2 >= heap_.size())
    compact();
}

EventLoop::Event EventLoop::pop_top() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = heap_.back();
  heap_.pop_back();
  return ev;
}

void EventLoop::compact() {
  std::erase_if(heap_,
                [this](const Event& e) { return cancelled_.contains(e.id); });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  cancelled_.clear();
}

bool EventLoop::run_one() {
  while (!heap_.empty()) {
    const Event ev = pop_top();
    if (cancelled_.erase(ev.id) > 0) continue;  // was cancelled
    auto it = handlers_.find(ev.id);
    if (it == handlers_.end()) continue;
    std::function<void()> fn = std::move(it->second);
    handlers_.erase(it);
    now_ = ev.when;
    fn();
    return true;
  }
  // Queue drained: any tombstones left are unreachable — sweep them.
  cancelled_.clear();
  return false;
}

void EventLoop::run() {
  while (run_one()) {
  }
}

void EventLoop::run_until(TimePoint deadline) {
  while (!heap_.empty()) {
    // Peek without firing cancelled entries.
    if (cancelled_.erase(heap_.front().id) > 0) {
      pop_top();
      continue;
    }
    if (heap_.front().when > deadline) break;
    run_one();
  }
  if (now_ < deadline) now_ = deadline;
}

bool EventLoop::run_while_waiting_for(const std::function<bool()>& pred,
                                      Duration timeout) {
  const TimePoint deadline = now_ + timeout;
  while (!pred()) {
    // Drop cancelled entries so a stale top can't trigger a spurious timeout.
    while (!heap_.empty() && cancelled_.erase(heap_.front().id) > 0) pop_top();
    if (heap_.empty()) return false;
    if (heap_.front().when > deadline) {
      now_ = deadline;
      return false;
    }
    run_one();
  }
  return true;
}

std::optional<TimePoint> EventLoop::next_event_time() {
  while (!heap_.empty() && cancelled_.erase(heap_.front().id) > 0) pop_top();
  if (heap_.empty()) return std::nullopt;
  return heap_.front().when;
}

}  // namespace ting::simnet
