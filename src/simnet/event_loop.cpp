#include "simnet/event_loop.h"

#include "util/assert.h"

namespace ting::simnet {

EventId EventLoop::schedule(Duration delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

EventId EventLoop::schedule_at(TimePoint when, std::function<void()> fn) {
  TING_CHECK_MSG(when >= now_, "cannot schedule into the past");
  const EventId id = next_id_++;
  heap_.push(Event{when, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

void EventLoop::cancel(EventId id) {
  if (handlers_.erase(id) > 0) cancelled_.insert(id);
}

bool EventLoop::run_one() {
  while (!heap_.empty()) {
    const Event ev = heap_.top();
    heap_.pop();
    if (cancelled_.erase(ev.id) > 0) continue;  // was cancelled
    auto it = handlers_.find(ev.id);
    if (it == handlers_.end()) continue;
    std::function<void()> fn = std::move(it->second);
    handlers_.erase(it);
    now_ = ev.when;
    fn();
    return true;
  }
  return false;
}

void EventLoop::run() {
  while (run_one()) {
  }
}

void EventLoop::run_until(TimePoint deadline) {
  while (!heap_.empty()) {
    // Peek without firing cancelled entries.
    const Event ev = heap_.top();
    if (cancelled_.erase(ev.id) > 0) {
      heap_.pop();
      continue;
    }
    if (ev.when > deadline) break;
    run_one();
  }
  if (now_ < deadline) now_ = deadline;
}

bool EventLoop::run_while_waiting_for(const std::function<bool()>& pred,
                                      Duration timeout) {
  const TimePoint deadline = now_ + timeout;
  while (!pred()) {
    // Drop cancelled entries so a stale top can't trigger a spurious timeout.
    while (!heap_.empty() && cancelled_.erase(heap_.top().id) > 0) heap_.pop();
    if (heap_.empty()) return false;
    if (heap_.top().when > deadline) {
      now_ = deadline;
      return false;
    }
    run_one();
  }
  return true;
}

}  // namespace ting::simnet
