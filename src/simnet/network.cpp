#include "simnet/network.h"

#include "util/assert.h"
#include "util/log.h"

namespace ting::simnet {

void Connection::send(Bytes msg) {
  if (!open_) return;
  ConnPtr peer = peer_.lock();
  if (!peer) return;
  net_->deliver(peer, std::move(msg));
}

void Connection::close() {
  if (!open_) return;
  open_ = false;
  on_message_ = {};
  if (ConnPtr peer = peer_.lock()) net_->deliver_close(peer);
  if (on_close_) {
    auto fn = std::move(on_close_);
    on_close_ = {};
    fn();
  }
  net_->gc_pair(this);
}

Network::Network(EventLoop& loop, LatencyConfig latency_config,
                 std::uint64_t seed)
    : loop_(loop), model_(latency_config), rng_(seed) {}

Network::~Network() {
  for (auto& [raw, conn] : conns_) {
    conn->on_message_ = {};
    conn->on_close_ = {};
  }
}

HostId Network::add_host(IpAddr ip, const geo::GeoPoint& location,
                         NetworkPolicy policy, std::uint32_t group_tag) {
  TING_CHECK_MSG(!by_ip_.contains(ip), "duplicate IP " << ip.str());
  const HostId id = model_.add_host(location, policy, group_tag);
  by_ip_[ip] = id;
  ips_.push_back(ip);
  next_ephemeral_port_.push_back(kEphemeralBase);
  return id;
}

void Network::set_next_ephemeral_port(HostId host, std::uint16_t port) {
  TING_CHECK(host < next_ephemeral_port_.size());
  TING_CHECK_MSG(port >= kEphemeralBase,
                 "ephemeral ports start at " << kEphemeralBase);
  next_ephemeral_port_[host] = port;
}

std::uint16_t Network::alloc_ephemeral_port(HostId from) {
  std::uint16_t& eph = next_ephemeral_port_[from];
  const IpAddr ip = ips_[from];
  // One full lap over the ephemeral range before giving up.
  constexpr int kRangeSize = 0x10000 - kEphemeralBase;
  for (int tries = 0; tries < kRangeSize; ++tries) {
    const std::uint16_t candidate = eph++;
    if (eph == 0) eph = kEphemeralBase;  // wrapped past 65535
    const Endpoint ep{ip, candidate};
    if (!listeners_.contains(ep) && !bound_ports_.contains(ep))
      return candidate;
  }
  TING_CHECK_MSG(false, "host " << ip.str() << ": ephemeral ports exhausted");
}

IpAddr Network::ip_of(HostId h) const {
  TING_CHECK(h < ips_.size());
  return ips_[h];
}

std::optional<HostId> Network::host_of(IpAddr ip) const {
  auto it = by_ip_.find(ip);
  if (it == by_ip_.end()) return std::nullopt;
  return it->second;
}

Listener* Network::listen(HostId host, std::uint16_t port) {
  const Endpoint ep{ip_of(host), port};
  TING_CHECK_MSG(!listeners_.contains(ep), "port in use: " << ep.str());
  auto listener = std::make_unique<Listener>();
  listener->host_ = host;
  listener->endpoint_ = ep;
  Listener* raw = listener.get();
  listeners_[ep] = std::move(listener);
  return raw;
}

TimePoint Network::fifo_arrival(Connection& to, Duration delay) {
  TimePoint arrival = loop_.now() + delay;
  const TimePoint min_arrival = to.last_arrival_ + Duration::nanos(1);
  if (arrival < min_arrival) arrival = min_arrival;
  to.last_arrival_ = arrival;
  return arrival;
}

void Network::set_host_down(HostId host, bool down) {
  if (down) {
    down_.insert(host);
  } else {
    down_.erase(host);
  }
}

void Network::set_packet_loss(HostId host, double loss_prob) {
  TING_CHECK_MSG(loss_prob >= 0.0 && loss_prob <= 1.0,
                 "loss probability out of [0, 1]: " << loss_prob);
  LinkFault& f = link_faults_[host];
  f.loss_prob = loss_prob;
  if (f.clear()) link_faults_.erase(host);
}

void Network::set_link_degradation(HostId host, Duration extra_one_way,
                                   Duration jitter_mean) {
  TING_CHECK(extra_one_way >= Duration() && jitter_mean >= Duration());
  LinkFault& f = link_faults_[host];
  f.extra_one_way = extra_one_way;
  f.jitter_mean = jitter_mean;
  if (f.clear()) link_faults_.erase(host);
}

double Network::packet_loss(HostId host) const {
  auto it = link_faults_.find(host);
  return it == link_faults_.end() ? 0.0 : it->second.loss_prob;
}

double Network::combined_loss(HostId a, HostId b) const {
  // Independent loss on each endpoint's access link.
  return 1.0 - (1.0 - packet_loss(a)) * (1.0 - packet_loss(b));
}

Duration Network::faulted_one_way(HostId from, HostId to, Protocol protocol) {
  Duration d = model_.sample_one_way(from, to, protocol, rng_);
  if (link_faults_.empty()) return d;
  for (const HostId h : {from, to}) {
    auto it = link_faults_.find(h);
    if (it == link_faults_.end()) continue;
    const LinkFault& f = it->second;
    d += f.extra_one_way;
    if (f.jitter_mean > Duration())
      d += Duration::nanos(static_cast<std::int64_t>(
          rng_.exponential(static_cast<double>(f.jitter_mean.ns()))));
  }
  if (protocol != Protocol::kIcmp) {
    // Reliable transport: each lost transmission costs one retransmission
    // timeout, but the segment always gets through eventually (bounded by
    // kMaxRetransmits so total-loss links cannot stall the simulation).
    const double loss = combined_loss(from, to);
    for (int tries = 0;
         loss > 0.0 && tries < kMaxRetransmits && rng_.chance(loss); ++tries)
      d += kRetransmitTimeout;
  }
  return d;
}

void Network::deliver(const ConnPtr& to, Bytes msg) {
  const Duration delay =
      faulted_one_way(to->remote_host_, to->local_host_, to->protocol_);
  const TimePoint arrival = fifo_arrival(*to, delay);
  loop_.schedule_at(arrival, [this, to, msg = std::move(msg)]() mutable {
    // Traffic to or from a crashed host is silently lost.
    if (down_.contains(to->local_host_) || down_.contains(to->remote_host_))
      return;
    if (!to->open_ || !to->on_message_) return;
    // Invoke a copy: the handler may close the connection or replace the
    // handler, destroying the std::function that is currently executing.
    auto fn = to->on_message_;
    fn(std::move(msg));
  });
}

void Network::deliver_close(const ConnPtr& to) {
  const Duration delay =
      faulted_one_way(to->remote_host_, to->local_host_, to->protocol_);
  const TimePoint arrival = fifo_arrival(*to, delay);
  loop_.schedule_at(arrival, [this, to]() {
    if (down_.contains(to->local_host_) || down_.contains(to->remote_host_))
      return;
    if (!to->open_) return;
    to->open_ = false;
    to->on_message_ = {};
    if (to->on_close_) {
      auto fn = std::move(to->on_close_);
      to->on_close_ = {};
      fn();
    }
    gc_pair(to.get());
  });
}

void Network::gc_pair(Connection* side) {
  // Release our owning refs once both halves are closed. Any in-flight
  // delivery closures still hold strong refs, so teardown stays safe.
  ConnPtr peer = side->peer_.lock();
  if (peer && peer->open_) return;
  if (side->open_) return;
  // Free the client side's ephemeral port (never a listener's endpoint;
  // only outbound local endpoints are ever in bound_ports_).
  bound_ports_.erase(side->local_);
  if (peer) bound_ports_.erase(peer->local_);
  conns_.erase(side);
  if (peer) conns_.erase(peer.get());
}

void Network::connect(HostId from, Endpoint to, Protocol protocol,
                      std::function<void(ConnPtr)> on_connected,
                      std::function<void(std::string)> on_fail) {
  TING_CHECK(from < ips_.size());
  auto lit = listeners_.find(to);
  const auto to_host_id = host_of(to.ip);
  if (lit == listeners_.end() || !to_host_id.has_value() ||
      down_.contains(from) || down_.contains(*to_host_id)) {
    // Nothing listening: fail after a connect-timeout-ish beat.
    loop_.schedule(Duration::millis(500), [to, on_fail]() {
      if (on_fail) on_fail("connection refused: " + to.str());
    });
    return;
  }
  Listener* listener = lit->second.get();
  const HostId to_host = listener->host_;

  const Endpoint local_ep{ip_of(from), alloc_ephemeral_port(from)};
  bound_ports_.insert(local_ep);

  auto client_side = std::make_shared<Connection>();
  auto server_side = std::make_shared<Connection>();
  client_side->net_ = server_side->net_ = this;
  client_side->local_host_ = from;
  client_side->remote_host_ = to_host;
  client_side->local_ = local_ep;
  client_side->remote_ = to;
  client_side->protocol_ = protocol;
  server_side->local_host_ = to_host;
  server_side->remote_host_ = from;
  server_side->local_ = to;
  server_side->remote_ = local_ep;
  server_side->protocol_ = protocol;
  client_side->peer_ = server_side;
  server_side->peer_ = client_side;
  conns_[client_side.get()] = client_side;
  conns_[server_side.get()] = server_side;

  // SYN: one-way to the server; accept fires there. SYN-ACK: one-way back;
  // the client is connected one full RTT after initiating.
  const Duration syn = faulted_one_way(from, to_host, protocol);
  const Duration synack = faulted_one_way(to_host, from, protocol);
  const TimePoint accept_at = loop_.now() + syn;
  const TimePoint connected_at = accept_at + synack;
  client_side->last_arrival_ = connected_at;
  server_side->last_arrival_ = accept_at;

  loop_.schedule_at(accept_at, [listener, server_side]() {
    if (listener->on_accept_) listener->on_accept_(server_side);
  });
  loop_.schedule_at(connected_at,
                    [client_side, on_connected = std::move(on_connected)]() {
                      if (on_connected) on_connected(client_side);
                    });
}

void Network::ping(HostId from, IpAddr to,
                   std::function<void(std::optional<Duration>)> on_reply,
                   Duration timeout) {
  auto target = host_of(to);
  if (!target.has_value() || down_.contains(*target) ||
      down_.contains(from)) {
    loop_.schedule(timeout, [on_reply]() { on_reply(std::nullopt); });
    return;
  }
  // ICMP is unreliable: a lost echo request or reply is simply never
  // answered, and the probe times out.
  const double loss = combined_loss(from, *target);
  if (loss > 0.0 && (rng_.chance(loss) || rng_.chance(loss))) {
    loop_.schedule(timeout, [on_reply]() { on_reply(std::nullopt); });
    return;
  }
  const Duration there = faulted_one_way(from, *target, Protocol::kIcmp);
  const Duration back = faulted_one_way(*target, from, Protocol::kIcmp);
  const Duration rtt = there + back;
  if (rtt > timeout) {
    loop_.schedule(timeout, [on_reply]() { on_reply(std::nullopt); });
    return;
  }
  loop_.schedule(rtt, [on_reply, rtt]() { on_reply(rtt); });
}

}  // namespace ting::simnet
