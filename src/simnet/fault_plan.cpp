#include "simnet/fault_plan.h"

#include <sstream>

#include "util/assert.h"

namespace ting::simnet {

namespace {

std::string host_label(const Network& net, HostId host) {
  return "host " + net.ip_of(host).str();
}

}  // namespace

void FaultPlan::note(TimePoint when, std::string what) {
  events_.push_back(Event{when, std::move(what)});
}

void FaultPlan::packet_loss(HostId host, double prob) {
  net_->set_packet_loss(host, prob);
  std::ostringstream os;
  os << host_label(*net_, host) << ": packet loss " << prob;
  note(net_->loop().now(), os.str());
}

void FaultPlan::degrade_link(HostId host, Duration extra_one_way,
                             Duration jitter_mean) {
  net_->set_link_degradation(host, extra_one_way, jitter_mean);
  std::ostringstream os;
  os << host_label(*net_, host) << ": link degraded +" << extra_one_way.str()
     << " jitter " << jitter_mean.str();
  note(net_->loop().now(), os.str());
}

void FaultPlan::crash(HostId host) {
  net_->set_host_down(host, true);
  note(net_->loop().now(), host_label(*net_, host) + ": crash");
}

void FaultPlan::recover(HostId host) {
  net_->set_host_down(host, false);
  note(net_->loop().now(), host_label(*net_, host) + ": recover");
}

void FaultPlan::loss_window(HostId host, Duration start, Duration duration,
                            double prob) {
  TING_CHECK(start >= Duration());
  Network* net = net_;
  note(net_->loop().now() + start,
       host_label(*net_, host) + ": packet loss " + std::to_string(prob));
  net_->loop().schedule(start,
                        [net, host, prob]() { net->set_packet_loss(host, prob); });
  if (duration > Duration()) {
    note(net_->loop().now() + start + duration,
         host_label(*net_, host) + ": packet loss cleared");
    net_->loop().schedule(start + duration, [net, host]() {
      net->set_packet_loss(host, 0.0);
    });
  }
}

void FaultPlan::degrade_window(HostId host, Duration start, Duration duration,
                               Duration extra_one_way, Duration jitter_mean) {
  TING_CHECK(start >= Duration());
  Network* net = net_;
  note(net_->loop().now() + start, host_label(*net_, host) +
                                       ": link degraded +" +
                                       extra_one_way.str() + " jitter " +
                                       jitter_mean.str());
  net_->loop().schedule(start, [net, host, extra_one_way, jitter_mean]() {
    net->set_link_degradation(host, extra_one_way, jitter_mean);
  });
  if (duration > Duration()) {
    note(net_->loop().now() + start + duration,
         host_label(*net_, host) + ": link degradation cleared");
    net_->loop().schedule(start + duration, [net, host]() {
      net->set_link_degradation(host, Duration(), Duration());
    });
  }
}

void FaultPlan::crash_window(HostId host, Duration start, Duration duration) {
  TING_CHECK(start >= Duration());
  Network* net = net_;
  note(net_->loop().now() + start, host_label(*net_, host) + ": crash");
  net_->loop().schedule(start, [net, host]() { net->set_host_down(host, true); });
  if (duration > Duration()) {
    note(net_->loop().now() + start + duration,
         host_label(*net_, host) + ": recover");
    net_->loop().schedule(start + duration,
                          [net, host]() { net->set_host_down(host, false); });
  }
}

void FaultPlan::at(Duration start, std::string what, std::function<void()> fn) {
  TING_CHECK(start >= Duration());
  note(net_->loop().now() + start, std::move(what));
  net_->loop().schedule(start, std::move(fn));
}

}  // namespace ting::simnet
