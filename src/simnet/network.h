// The simulated network: hosts, reliable byte-message connections ("sim
// TCP"), and ICMP echo. Applications (Tor relays, the onion proxy, the echo
// server, the control port) all talk through this interface.
//
// Semantics:
//  - connect() performs a SYN/SYN-ACK handshake costing one RTT before the
//    success callback fires; the measured connect time is what a
//    tcptraceroute-style TCP probe observes.
//  - send() delivers whole messages after a sampled one-way delay; delivery
//    order per connection is FIFO even when jitter would reorder packets
//    (TCP's in-order guarantee).
//  - ping() round-trips an ICMP echo, subject to ICMP-specific policy bias.
//  - Everything is deterministic given the Network's seed.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "simnet/event_loop.h"
#include "simnet/latency_model.h"
#include "util/bytes.h"
#include "util/ip.h"

namespace ting::simnet {

class Network;

/// One end of an established bidirectional connection.
class Connection : public std::enable_shared_from_this<Connection> {
 public:
  void set_on_message(std::function<void(Bytes)> fn) { on_message_ = std::move(fn); }
  void set_on_close(std::function<void()> fn) { on_close_ = std::move(fn); }

  /// Queue a message to the peer. Messages sent on a closed connection are
  /// silently dropped (like writing to a reset socket, minus the signal).
  void send(Bytes msg);
  /// Close both directions; the peer's on_close fires after in-flight
  /// messages drain.
  void close();
  bool is_open() const { return open_; }

  const Endpoint& local() const { return local_; }
  const Endpoint& remote() const { return remote_; }
  HostId local_host() const { return local_host_; }
  HostId remote_host() const { return remote_host_; }
  Protocol protocol() const { return protocol_; }

 private:
  friend class Network;
  Network* net_ = nullptr;
  HostId local_host_ = 0, remote_host_ = 0;
  Endpoint local_, remote_;
  Protocol protocol_ = Protocol::kTcp;
  std::weak_ptr<Connection> peer_;
  std::function<void(Bytes)> on_message_;
  std::function<void()> on_close_;
  TimePoint last_arrival_;  ///< FIFO watermark for deliveries to this side
  bool open_ = true;
};

using ConnPtr = std::shared_ptr<Connection>;

/// A passive listener bound to host:port.
class Listener {
 public:
  void set_on_accept(std::function<void(ConnPtr)> fn) { on_accept_ = std::move(fn); }

 private:
  friend class Network;
  HostId host_ = 0;
  Endpoint endpoint_;
  std::function<void(ConnPtr)> on_accept_;
};

class Network {
 public:
  Network(EventLoop& loop, LatencyConfig latency_config = {},
          std::uint64_t seed = 99);
  /// Applications routinely capture a ConnPtr in that connection's own (or
  /// its peer's) callbacks; clear them on teardown so still-open
  /// connections don't survive the network as reference cycles.
  ~Network();

  /// Register a host with its address, location, and network policy.
  /// `group_tag` feeds the latency model's optional cross-group inflation.
  HostId add_host(IpAddr ip, const geo::GeoPoint& location,
                  NetworkPolicy policy = {}, std::uint32_t group_tag = 0);

  IpAddr ip_of(HostId h) const;
  std::optional<HostId> host_of(IpAddr ip) const;
  std::size_t host_count() const { return model_.host_count(); }

  /// Bind a listener. Throws if the port is taken.
  Listener* listen(HostId host, std::uint16_t port);
  /// Open a connection. `on_fail` fires (after a timeout-ish delay) if
  /// nothing listens on the target endpoint.
  void connect(HostId from, Endpoint to, Protocol protocol,
               std::function<void(ConnPtr)> on_connected,
               std::function<void(std::string)> on_fail = {});

  /// ICMP echo. Callback receives the measured RTT, or nullopt after
  /// `timeout` if the destination does not exist.
  void ping(HostId from, IpAddr to,
            std::function<void(std::optional<Duration>)> on_reply,
            Duration timeout = Duration::seconds(1));

  EventLoop& loop() { return loop_; }
  LatencyModel& latency() { return model_; }
  const LatencyModel& latency() const { return model_; }
  Rng& rng() { return rng_; }

  /// Replace the stochastic state (jitter/loss draws) with a fresh
  /// deterministically-seeded generator. The sharded scan engine reseeds
  /// every world identically before each pair so the sampled delays match
  /// bit for bit regardless of which shard measures the pair.
  void reseed(std::uint64_t seed) { rng_ = Rng(seed); }

  /// Test seam: position a host's ephemeral-port counter (e.g. just below
  /// the wrap) to exercise the reuse-skip logic without 25k connects.
  void set_next_ephemeral_port(HostId host, std::uint16_t port);

  /// Number of connections the network is keeping alive (open pairs).
  std::size_t live_connections() const { return conns_.size(); }

  /// Failure injection: a down host drops all traffic silently — in-flight
  /// and future messages to or from it vanish, new connects to it fail, and
  /// pings time out (the remote peer just sees a stall, like a real crash).
  void set_host_down(HostId host, bool down = true);
  bool is_host_down(HostId host) const { return down_.contains(host); }

  /// Failure injection: per-host packet loss, applied to every packet that
  /// crosses the host's access link (either direction). For ICMP the lost
  /// echo simply never comes back; for the reliable transports (sim-TCP and
  /// Tor traffic riding it) each loss costs one retransmission timeout — the
  /// message still arrives, late, which is exactly how loss looks to a Ting
  /// sample: an inflated RTT that min-of-N filtering discards.
  void set_packet_loss(HostId host, double loss_prob);
  /// Failure injection: degrade a host's access link by a fixed extra
  /// one-way latency plus exponential jitter with the given mean (either
  /// can be zero).
  void set_link_degradation(HostId host, Duration extra_one_way,
                            Duration jitter_mean);
  double packet_loss(HostId host) const;

  /// Loss-induced retransmission timeout for the reliable transports, and
  /// the cap on consecutive retransmissions of one segment (so a 100%-loss
  /// link delays by at most kMaxRetransmits * kRetransmitTimeout instead of
  /// stalling the simulation).
  static constexpr Duration kRetransmitTimeout = Duration::millis(1000);
  static constexpr int kMaxRetransmits = 8;

 private:
  friend class Connection;
  struct LinkFault {
    double loss_prob = 0.0;
    Duration extra_one_way;
    Duration jitter_mean;
    bool clear() const {
      return loss_prob == 0.0 && extra_one_way == Duration() &&
             jitter_mean == Duration();
    }
  };

  void deliver(const ConnPtr& to, Bytes msg);
  void deliver_close(const ConnPtr& to);
  TimePoint fifo_arrival(Connection& to, Duration delay);
  /// Next free ephemeral port on `from`: skips ports still bound by a live
  /// Listener or Connection, wrapping within [kEphemeralBase, 65535].
  /// Throws CheckError if the host's whole ephemeral range is in use.
  std::uint16_t alloc_ephemeral_port(HostId from);
  /// One-way delay with both endpoints' link faults applied (degradation
  /// always; loss-as-retransmission only for reliable protocols).
  Duration faulted_one_way(HostId from, HostId to, Protocol protocol);
  /// Probability that one packet crossing both hosts' access links is lost.
  double combined_loss(HostId a, HostId b) const;
  /// Drop our owning refs once both sides of a pair have closed.
  void gc_pair(Connection* side);

  /// First ephemeral port a host hands out (and the wrap-around target).
  static constexpr std::uint16_t kEphemeralBase = 40000;

  EventLoop& loop_;
  LatencyModel model_;
  Rng rng_;
  // Hot-path tables are unordered: every delivery and connect hits them,
  // and nothing iterates them in an order-sensitive way.
  std::unordered_map<IpAddr, HostId> by_ip_;
  std::vector<IpAddr> ips_;
  std::unordered_map<Endpoint, std::unique_ptr<Listener>> listeners_;
  std::vector<std::uint16_t> next_ephemeral_port_;  ///< indexed by HostId
  // The network owns live connections (a socket exists independently of the
  // application's references); both-sides-closed pairs are released.
  std::unordered_map<Connection*, ConnPtr> conns_;
  /// Local endpoints of live outbound connections, so ephemeral allocation
  /// skips ports still in use after the counter wraps.
  std::unordered_set<Endpoint> bound_ports_;
  std::unordered_set<HostId> down_;
  std::unordered_map<HostId, LinkFault> link_faults_;
};

}  // namespace ting::simnet
