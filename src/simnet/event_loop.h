// The discrete-event engine that drives every simulation in the library.
//
// All network transmission, relay forwarding, and application behaviour is
// expressed as events on one EventLoop with virtual time, so an entire
// evaluation (e.g. 930 pairs × 1000 samples) runs in seconds of wall-clock
// and reproduces exactly.
//
// The heap is an explicit vector managed with the <algorithm> heap
// primitives rather than a std::priority_queue: cancellation leaves
// tombstones in the heap (erasing mid-heap would be O(n)), and owning the
// vector lets the loop rebuild it without the tombstones once they outgrow
// the live events — long scans with heavy deadline-cancel churn stay
// compact instead of accumulating an unbounded cancelled set.
//
// Handlers live in a slot arena (struct-of-arrays with a free list) instead
// of a hash map: an EventId encodes (generation << 32 | slot), so schedule,
// cancel, and dispatch are all O(1) array indexing with no hashing and no
// per-event node allocation — this is the hottest structure in the
// simulator (every cell delivery is one schedule + one dispatch).
// Generations distinguish a slot's reuse from stale heap entries pointing
// at its previous tenants.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "util/time.h"

namespace ting::simnet {

using EventId = std::uint64_t;

class EventLoop {
 public:
  EventLoop();

  TimePoint now() const { return now_; }

  /// Schedule `fn` to run `delay` from now. Returns an id for cancel().
  EventId schedule(Duration delay, std::function<void()> fn);
  EventId schedule_at(TimePoint when, std::function<void()> fn);

  /// Schedule `fn` at the current instant, after events already queued for
  /// it. Lets completion callbacks hand follow-up work (e.g. a scan engine
  /// dispatching the next measurement) a fresh stack frame instead of
  /// recursing, while keeping virtual time unchanged.
  EventId defer(std::function<void()> fn) {
    return schedule(Duration(), std::move(fn));
  }

  /// Cancel a pending event. No-op if already fired or cancelled.
  void cancel(EventId id);

  /// Run a single event; returns false when the queue is empty.
  bool run_one();

  /// Run until the queue is empty.
  void run();

  /// Run events with timestamp <= deadline; afterwards now() == deadline
  /// (even if the queue drained early).
  void run_until(TimePoint deadline);

  /// Pump events until `pred()` holds. Returns false if the queue drained
  /// or `timeout` elapsed first. This is what lets measurement code read as
  /// straight-line logic instead of a callback pyramid.
  bool run_while_waiting_for(const std::function<bool()>& pred,
                             Duration timeout);

  /// Timestamp of the next live (uncancelled) event, or nullopt when the
  /// queue is empty. Never advances now(). Lets a driver drain in-flight
  /// traffic without fast-forwarding to far-future scheduled work.
  std::optional<TimePoint> next_event_time();

  std::size_t pending() const { return live_; }
  /// Cancelled events still parked in the heap (bounded by compaction;
  /// exposed so tests can pin the bound down).
  std::size_t cancelled_tombstones() const { return tombstones_; }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    EventId id;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  /// One arena slot. `generation` starts at 1 (so EventId 0 is never
  /// issued — callers use 0 as a "no event" sentinel) and bumps on every
  /// release, invalidating ids that still reference the old tenant.
  struct Slot {
    std::function<void()> fn;
    std::uint32_t generation = 1;
    bool armed = false;
  };

  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
  static std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  /// True when a heap entry no longer references a live handler (its slot
  /// was cancelled, or fired and re-let to a new tenant).
  bool is_stale(EventId id) const {
    const Slot& s = slots_[slot_of(id)];
    return s.generation != generation_of(id) || !s.armed;
  }
  /// Disarm a slot and return it to the free list.
  void release(std::uint32_t slot);

  /// Pop the top heap entry (caller checked non-empty).
  Event pop_top();
  /// Rebuild the heap without tombstoned entries. Called when tombstones
  /// outnumber live events.
  void compact();

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::vector<Event> heap_;  ///< min-heap via push_heap/pop_heap with Later
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;        ///< armed slots (= schedulable heap entries)
  std::size_t tombstones_ = 0;  ///< heap entries whose slot was released
};

}  // namespace ting::simnet
