// The discrete-event engine that drives every simulation in the library.
//
// All network transmission, relay forwarding, and application behaviour is
// expressed as events on one EventLoop with virtual time, so an entire
// evaluation (e.g. 930 pairs × 1000 samples) runs in seconds of wall-clock
// and reproduces exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/time.h"

namespace ting::simnet {

using EventId = std::uint64_t;

class EventLoop {
 public:
  TimePoint now() const { return now_; }

  /// Schedule `fn` to run `delay` from now. Returns an id for cancel().
  EventId schedule(Duration delay, std::function<void()> fn);
  EventId schedule_at(TimePoint when, std::function<void()> fn);

  /// Schedule `fn` at the current instant, after events already queued for
  /// it. Lets completion callbacks hand follow-up work (e.g. a scan engine
  /// dispatching the next measurement) a fresh stack frame instead of
  /// recursing, while keeping virtual time unchanged.
  EventId defer(std::function<void()> fn) {
    return schedule(Duration(), std::move(fn));
  }

  /// Cancel a pending event. No-op if already fired or cancelled.
  void cancel(EventId id);

  /// Run a single event; returns false when the queue is empty.
  bool run_one();

  /// Run until the queue is empty.
  void run();

  /// Run events with timestamp <= deadline; afterwards now() == deadline
  /// (even if the queue drained early).
  void run_until(TimePoint deadline);

  /// Pump events until `pred()` holds. Returns false if the queue drained
  /// or `timeout` elapsed first. This is what lets measurement code read as
  /// straight-line logic instead of a callback pyramid.
  bool run_while_waiting_for(const std::function<bool()>& pred,
                             Duration timeout);

  std::size_t pending() const { return heap_.size() - cancelled_.size(); }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    EventId id;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace ting::simnet
