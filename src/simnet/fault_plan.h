// FaultPlan — a scripted schedule of network faults driven off the event
// loop, so a scan can be exercised against the failure modes a live Tor
// measurement sees (§4.5): lossy relay links, degraded paths, relays that
// crash and come back, and directory churn that removes descriptors
// mid-scan.
//
// The plan wraps a Network and schedules fault transitions as ordinary
// events; every transition is logged with its (virtual) fire time so a scan
// report can annotate which faults were active during the scan window.
// Directory-level faults (consensus churn) don't live in simnet — scenario
// code injects them through the generic at() hook.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "simnet/network.h"

namespace ting::simnet {

class FaultPlan {
 public:
  /// One scheduled fault transition, for report annotations.
  struct Event {
    TimePoint at;      ///< when the transition fires
    std::string what;  ///< human-readable description
  };

  explicit FaultPlan(Network& net) : net_(&net) {}

  // ---- immediate faults ----------------------------------------------------
  void packet_loss(HostId host, double prob);
  void degrade_link(HostId host, Duration extra_one_way, Duration jitter_mean);
  void crash(HostId host);
  void recover(HostId host);

  // ---- scheduled windows (offsets measured from now) -----------------------
  /// Apply the fault at now+start; clear it `duration` later. A zero (or
  /// negative) duration means the fault is applied and never cleared.
  void loss_window(HostId host, Duration start, Duration duration, double prob);
  void degrade_window(HostId host, Duration start, Duration duration,
                      Duration extra_one_way, Duration jitter_mean);
  void crash_window(HostId host, Duration start, Duration duration);

  /// Generic scheduled fault: run `fn` at now+start, logged as `what`. The
  /// hook scenario code uses for faults above simnet's level, e.g. removing
  /// a relay descriptor from the directory consensus mid-scan.
  void at(Duration start, std::string what, std::function<void()> fn);

  const std::vector<Event>& events() const { return events_; }
  Network& net() { return *net_; }

 private:
  void note(TimePoint when, std::string what);

  Network* net_;
  std::vector<Event> events_;
};

}  // namespace ting::simnet
