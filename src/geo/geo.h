// Geographic coordinates and great-circle geometry. Fig 8 compares Ting
// RTTs against great-circle distances and a (2/3)·c propagation bound; the
// latency model also derives base propagation from these distances.
#pragma once

#include <string>

namespace ting::geo {

/// A point on the globe in decimal degrees.
struct GeoPoint {
  double lat = 0;  ///< latitude, -90..90
  double lon = 0;  ///< longitude, -180..180
  std::string str() const;
};

/// Great-circle distance in kilometres (haversine, mean Earth radius).
double great_circle_km(const GeoPoint& a, const GeoPoint& b);

/// The generally accepted floor on Internet RTT over a distance: light in
/// fibre travels at roughly (2/3)·c, and an RTT covers the distance twice.
double min_rtt_ms_for_distance(double km);

/// Inverse of the above: the distance implied by an RTT at (2/3)·c.
double max_distance_km_for_rtt(double rtt_ms);

}  // namespace ting::geo
