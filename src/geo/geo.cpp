#include "geo/geo.h"

#include <cmath>
#include <cstdio>
#include <numbers>

namespace ting::geo {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
/// Speed of light in fibre, km per millisecond: (2/3) * 299792.458 km/s.
constexpr double kFibreKmPerMs = (2.0 / 3.0) * 299792.458 / 1000.0;

double deg2rad(double d) { return d * std::numbers::pi / 180.0; }
}  // namespace

std::string GeoPoint::str() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "(%.4f, %.4f)", lat, lon);
  return buf;
}

double great_circle_km(const GeoPoint& a, const GeoPoint& b) {
  const double phi1 = deg2rad(a.lat), phi2 = deg2rad(b.lat);
  const double dphi = deg2rad(b.lat - a.lat);
  const double dlambda = deg2rad(b.lon - a.lon);
  const double s = std::sin(dphi / 2) * std::sin(dphi / 2) +
                   std::cos(phi1) * std::cos(phi2) * std::sin(dlambda / 2) *
                       std::sin(dlambda / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(s)));
}

double min_rtt_ms_for_distance(double km) { return 2.0 * km / kFibreKmPerMs; }

double max_distance_km_for_rtt(double rtt_ms) {
  return rtt_ms * kFibreKmPerMs / 2.0;
}

}  // namespace ting::geo
