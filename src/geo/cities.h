// An embedded world-city table used to place simulated hosts. Substitutes
// for real host placement: the paper's PlanetLab testbed spans 6 EU
// countries, 9 US states, and at least one relay each in Asia, South
// America, Australia, and the Middle East; the live Tor network concentrates
// in the US and Europe. `tor_weight` encodes that concentration for
// region-weighted sampling.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "geo/geo.h"
#include "util/rng.h"

namespace ting::geo {

enum class Region : std::uint8_t {
  kUS,
  kEurope,
  kAsia,
  kSouthAmerica,
  kAustralia,
  kMiddleEast,
  kAfrica,
  kCanada,
};

std::string region_name(Region r);

struct City {
  const char* name;
  const char* country_code;   ///< ISO-3166 alpha-2
  const char* admin_region;   ///< US state, or "" elsewhere
  Region region;
  double lat;
  double lon;
  double tor_weight;  ///< relative probability of hosting a relay
};

/// The full embedded table.
std::span<const City> all_cities();

/// Cities filtered by region / country.
std::vector<const City*> cities_in_region(Region r);
std::vector<const City*> cities_in_country(const std::string& country_code);

/// Sample a city according to tor_weight (models Tor's US/EU concentration).
const City& sample_city_tor_weighted(Rng& rng);

/// Sample uniformly within a region.
const City& sample_city_in_region(Region r, Rng& rng);

/// Perturb a city's coordinates by up to `radius_km` to de-duplicate hosts
/// placed in the same city.
GeoPoint jitter_location(const GeoPoint& p, double radius_km, Rng& rng);

}  // namespace ting::geo
