#include "geo/cities.h"

#include <cmath>

#include "util/assert.h"

namespace ting::geo {

namespace {

// Coordinates are approximate city centroids; precision beyond ~10 km is
// irrelevant at Internet-latency scale. tor_weight reflects the paper-era
// concentration of relays: heavy in Germany/France/Netherlands/US, light
// elsewhere.
const City kCities[] = {
    // ---- United States (9+ states) -----------------------------------
    {"New York", "US", "NY", Region::kUS, 40.71, -74.01, 3.0},
    {"Buffalo", "US", "NY", Region::kUS, 42.89, -78.88, 0.6},
    {"Los Angeles", "US", "CA", Region::kUS, 34.05, -118.24, 2.5},
    {"San Francisco", "US", "CA", Region::kUS, 37.77, -122.42, 2.5},
    {"San Jose", "US", "CA", Region::kUS, 37.34, -121.89, 1.5},
    {"Seattle", "US", "WA", Region::kUS, 47.61, -122.33, 1.8},
    {"Chicago", "US", "IL", Region::kUS, 41.88, -87.63, 1.8},
    {"Houston", "US", "TX", Region::kUS, 29.76, -95.37, 1.0},
    {"Dallas", "US", "TX", Region::kUS, 32.78, -96.80, 1.4},
    {"Austin", "US", "TX", Region::kUS, 30.27, -97.74, 0.9},
    {"Miami", "US", "FL", Region::kUS, 25.76, -80.19, 0.9},
    {"Atlanta", "US", "GA", Region::kUS, 33.75, -84.39, 1.1},
    {"Boston", "US", "MA", Region::kUS, 42.36, -71.06, 1.2},
    {"Denver", "US", "CO", Region::kUS, 39.74, -104.99, 0.9},
    {"Phoenix", "US", "AZ", Region::kUS, 33.45, -112.07, 0.6},
    {"Portland", "US", "OR", Region::kUS, 45.52, -122.68, 0.8},
    {"Salt Lake City", "US", "UT", Region::kUS, 40.76, -111.89, 0.5},
    {"Minneapolis", "US", "MN", Region::kUS, 44.98, -93.27, 0.6},
    {"St. Louis", "US", "MO", Region::kUS, 38.63, -90.20, 0.5},
    {"Philadelphia", "US", "PA", Region::kUS, 39.95, -75.17, 0.8},
    {"Pittsburgh", "US", "PA", Region::kUS, 40.44, -79.99, 0.5},
    {"Washington", "US", "DC", Region::kUS, 38.91, -77.04, 1.2},
    {"Ashburn", "US", "VA", Region::kUS, 39.04, -77.49, 1.6},
    {"Raleigh", "US", "NC", Region::kUS, 35.78, -78.64, 0.5},
    {"Nashville", "US", "TN", Region::kUS, 36.16, -86.78, 0.4},
    {"Detroit", "US", "MI", Region::kUS, 42.33, -83.05, 0.5},
    {"Columbus", "US", "OH", Region::kUS, 39.96, -83.00, 0.5},
    {"Kansas City", "US", "KS", Region::kUS, 39.10, -94.58, 0.4},
    {"Las Vegas", "US", "NV", Region::kUS, 36.17, -115.14, 0.4},
    {"Albuquerque", "US", "NM", Region::kUS, 35.08, -106.65, 0.3},
    {"New Orleans", "US", "LA", Region::kUS, 29.95, -90.07, 0.3},
    {"Anchorage", "US", "AK", Region::kUS, 61.22, -149.90, 0.1},
    {"Honolulu", "US", "HI", Region::kUS, 21.31, -157.86, 0.1},
    // ---- Canada --------------------------------------------------------
    {"Toronto", "CA", "", Region::kCanada, 43.65, -79.38, 0.9},
    {"Montreal", "CA", "", Region::kCanada, 45.50, -73.57, 0.8},
    {"Vancouver", "CA", "", Region::kCanada, 49.28, -123.12, 0.5},
    // ---- Europe (many countries; 6+ for the testbed) -------------------
    {"London", "GB", "", Region::kEurope, 51.51, -0.13, 2.4},
    {"Manchester", "GB", "", Region::kEurope, 53.48, -2.24, 0.6},
    {"Paris", "FR", "", Region::kEurope, 48.86, 2.35, 2.6},
    {"Roubaix", "FR", "", Region::kEurope, 50.69, 3.17, 2.0},
    {"Marseille", "FR", "", Region::kEurope, 43.30, 5.37, 0.5},
    {"Berlin", "DE", "", Region::kEurope, 52.52, 13.40, 2.2},
    {"Frankfurt", "DE", "", Region::kEurope, 50.11, 8.68, 3.0},
    {"Munich", "DE", "", Region::kEurope, 48.14, 11.58, 1.2},
    {"Hamburg", "DE", "", Region::kEurope, 53.55, 9.99, 0.9},
    {"Nuremberg", "DE", "", Region::kEurope, 49.45, 11.08, 1.4},
    {"Amsterdam", "NL", "", Region::kEurope, 52.37, 4.90, 2.8},
    {"Rotterdam", "NL", "", Region::kEurope, 51.92, 4.48, 0.7},
    {"Brussels", "BE", "", Region::kEurope, 50.85, 4.35, 0.5},
    {"Zurich", "CH", "", Region::kEurope, 47.38, 8.54, 0.9},
    {"Geneva", "CH", "", Region::kEurope, 46.20, 6.14, 0.4},
    {"Vienna", "AT", "", Region::kEurope, 48.21, 16.37, 0.8},
    {"Stockholm", "SE", "", Region::kEurope, 59.33, 18.06, 1.0},
    {"Gothenburg", "SE", "", Region::kEurope, 57.71, 11.97, 0.3},
    {"Oslo", "NO", "", Region::kEurope, 59.91, 10.75, 0.4},
    {"Copenhagen", "DK", "", Region::kEurope, 55.68, 12.57, 0.5},
    {"Helsinki", "FI", "", Region::kEurope, 60.17, 24.94, 0.5},
    {"Madrid", "ES", "", Region::kEurope, 40.42, -3.70, 0.6},
    {"Barcelona", "ES", "", Region::kEurope, 41.39, 2.17, 0.4},
    {"Lisbon", "PT", "", Region::kEurope, 38.72, -9.14, 0.3},
    {"Rome", "IT", "", Region::kEurope, 41.90, 12.50, 0.6},
    {"Milan", "IT", "", Region::kEurope, 45.46, 9.19, 0.7},
    {"Warsaw", "PL", "", Region::kEurope, 52.23, 21.01, 0.5},
    {"Prague", "CZ", "", Region::kEurope, 50.08, 14.44, 0.6},
    {"Budapest", "HU", "", Region::kEurope, 47.50, 19.04, 0.4},
    {"Bucharest", "RO", "", Region::kEurope, 44.43, 26.10, 0.7},
    {"Athens", "GR", "", Region::kEurope, 37.98, 23.73, 0.2},
    {"Dublin", "IE", "", Region::kEurope, 53.35, -6.26, 0.4},
    {"Kyiv", "UA", "", Region::kEurope, 50.45, 30.52, 0.4},
    {"Moscow", "RU", "", Region::kEurope, 55.76, 37.62, 0.9},
    {"St. Petersburg", "RU", "", Region::kEurope, 59.93, 30.34, 0.4},
    {"Reykjavik", "IS", "", Region::kEurope, 64.15, -21.94, 0.2},
    {"Luxembourg", "LU", "", Region::kEurope, 49.61, 6.13, 0.3},
    {"Ljubljana", "SI", "", Region::kEurope, 46.06, 14.51, 0.2},
    {"Zagreb", "HR", "", Region::kEurope, 45.81, 15.98, 0.2},
    {"Sofia", "BG", "", Region::kEurope, 42.70, 23.32, 0.2},
    {"Vilnius", "LT", "", Region::kEurope, 54.69, 25.28, 0.2},
    {"Tallinn", "EE", "", Region::kEurope, 59.44, 24.75, 0.2},
    {"Riga", "LV", "", Region::kEurope, 56.95, 24.11, 0.2},
    // ---- Asia ----------------------------------------------------------
    {"Tokyo", "JP", "", Region::kAsia, 35.68, 139.69, 0.5},
    {"Osaka", "JP", "", Region::kAsia, 34.69, 135.50, 0.2},
    {"Seoul", "KR", "", Region::kAsia, 37.57, 126.98, 0.3},
    {"Hong Kong", "HK", "", Region::kAsia, 22.32, 114.17, 0.4},
    {"Singapore", "SG", "", Region::kAsia, 1.35, 103.82, 0.5},
    {"Taipei", "TW", "", Region::kAsia, 25.03, 121.57, 0.2},
    {"Bangkok", "TH", "", Region::kAsia, 13.76, 100.50, 0.1},
    {"Mumbai", "IN", "", Region::kAsia, 19.08, 72.88, 0.2},
    {"Bangalore", "IN", "", Region::kAsia, 12.97, 77.59, 0.1},
    {"Kuala Lumpur", "MY", "", Region::kAsia, 3.14, 101.69, 0.1},
    {"Jakarta", "ID", "", Region::kAsia, -6.21, 106.85, 0.1},
    {"Manila", "PH", "", Region::kAsia, 14.60, 120.98, 0.1},
    // ---- South America --------------------------------------------------
    {"Sao Paulo", "BR", "", Region::kSouthAmerica, -23.55, -46.63, 0.3},
    {"Rio de Janeiro", "BR", "", Region::kSouthAmerica, -22.91, -43.17, 0.2},
    {"Buenos Aires", "AR", "", Region::kSouthAmerica, -34.60, -58.38, 0.2},
    {"Santiago", "CL", "", Region::kSouthAmerica, -33.45, -70.67, 0.1},
    {"Bogota", "CO", "", Region::kSouthAmerica, 4.71, -74.07, 0.1},
    {"Lima", "PE", "", Region::kSouthAmerica, -12.05, -77.04, 0.1},
    // ---- Australia / Oceania --------------------------------------------
    {"Sydney", "AU", "", Region::kAustralia, -33.87, 151.21, 0.3},
    {"Melbourne", "AU", "", Region::kAustralia, -37.81, 144.96, 0.2},
    {"Perth", "AU", "", Region::kAustralia, -31.95, 115.86, 0.1},
    {"Auckland", "NZ", "", Region::kAustralia, -36.85, 174.76, 0.1},
    // ---- Middle East ----------------------------------------------------
    {"Tel Aviv", "IL", "", Region::kMiddleEast, 32.09, 34.78, 0.2},
    {"Istanbul", "TR", "", Region::kMiddleEast, 41.01, 28.98, 0.3},
    {"Dubai", "AE", "", Region::kMiddleEast, 25.20, 55.27, 0.1},
    {"Amman", "JO", "", Region::kMiddleEast, 31.96, 35.95, 0.05},
    // ---- Africa ---------------------------------------------------------
    {"Johannesburg", "ZA", "", Region::kAfrica, -26.20, 28.05, 0.1},
    {"Cape Town", "ZA", "", Region::kAfrica, -33.92, 18.42, 0.1},
    {"Cairo", "EG", "", Region::kAfrica, 30.04, 31.24, 0.05},
    {"Nairobi", "KE", "", Region::kAfrica, -1.29, 36.82, 0.05},
};

}  // namespace

std::string region_name(Region r) {
  switch (r) {
    case Region::kUS: return "US";
    case Region::kEurope: return "Europe";
    case Region::kAsia: return "Asia";
    case Region::kSouthAmerica: return "South America";
    case Region::kAustralia: return "Australia";
    case Region::kMiddleEast: return "Middle East";
    case Region::kAfrica: return "Africa";
    case Region::kCanada: return "Canada";
  }
  return "?";
}

std::span<const City> all_cities() {
  return std::span<const City>(kCities, std::size(kCities));
}

std::vector<const City*> cities_in_region(Region r) {
  std::vector<const City*> out;
  for (const City& c : kCities)
    if (c.region == r) out.push_back(&c);
  return out;
}

std::vector<const City*> cities_in_country(const std::string& country_code) {
  std::vector<const City*> out;
  for (const City& c : kCities)
    if (country_code == c.country_code) out.push_back(&c);
  return out;
}

const City& sample_city_tor_weighted(Rng& rng) {
  std::vector<double> weights;
  weights.reserve(std::size(kCities));
  for (const City& c : kCities) weights.push_back(c.tor_weight);
  return kCities[rng.weighted_index(weights)];
}

const City& sample_city_in_region(Region r, Rng& rng) {
  const auto pool = cities_in_region(r);
  TING_CHECK(!pool.empty());
  return *pool[rng.next_below(pool.size())];
}

GeoPoint jitter_location(const GeoPoint& p, double radius_km, Rng& rng) {
  // ~111 km per degree latitude; longitude scaled by cos(lat).
  const double dlat = rng.uniform(-radius_km, radius_km) / 111.0;
  const double coslat = std::max(0.1, std::cos(p.lat * 3.14159265358979 / 180.0));
  const double dlon = rng.uniform(-radius_km, radius_km) / (111.0 * coslat);
  GeoPoint out{p.lat + dlat, p.lon + dlon};
  out.lat = std::min(89.9, std::max(-89.9, out.lat));
  if (out.lon > 180) out.lon -= 360;
  if (out.lon < -180) out.lon += 360;
  return out;
}

}  // namespace ting::geo
