#include "geo/geolocation.h"

namespace ting::geo {

GeolocationService::GeolocationService(GeolocationConfig config)
    : config_(config) {}

void GeolocationService::register_host(IpAddr ip, const GeoPoint& truth) {
  truth_[ip] = truth;
  // Derive the reported location deterministically from the address so that
  // repeated lookups agree (as a real database would).
  Rng rng(mix64(config_.seed ^ ip.value()));
  if (rng.chance(config_.gross_error_rate)) {
    // Gross error: the database thinks this host is in some random city.
    const City& wrong = all_cities()[rng.next_below(all_cities().size())];
    reported_[ip] = GeoPoint{wrong.lat, wrong.lon};
    return;
  }
  GeoPoint p = truth;
  const double err_km = std::abs(rng.normal(0.0, config_.typical_error_km));
  reported_[ip] = jitter_location(p, err_km, rng);
}

std::optional<GeoPoint> GeolocationService::lookup(IpAddr ip) const {
  auto it = reported_.find(ip);
  if (it == reported_.end()) return std::nullopt;
  return it->second;
}

std::optional<GeoPoint> GeolocationService::ground_truth(IpAddr ip) const {
  auto it = truth_.find(ip);
  if (it == truth_.end()) return std::nullopt;
  return it->second;
}

}  // namespace ting::geo
