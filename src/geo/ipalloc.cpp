#include "geo/ipalloc.h"

#include "util/assert.h"

namespace ting::geo {

namespace {
constexpr std::uint32_t kNetsPerBlock = 4096;  // a /12 holds 4096 /24s
constexpr std::uint32_t kHostsPerDcNet = 64;
}  // namespace

IpAllocator::IpAllocator(std::uint64_t seed) : rng_(seed) {}

std::uint32_t IpAllocator::fresh_block() {
  // Pick an unused /12 in public-ish space (avoid 0/8, 10/8, 127/8, >=224/8).
  for (int attempt = 0; attempt < 100000; ++attempt) {
    const std::uint32_t first_octet =
        static_cast<std::uint32_t>(rng_.uniform_int(11, 223));
    if (first_octet == 127) continue;
    const std::uint32_t slash12 =
        (first_octet << 4) | static_cast<std::uint32_t>(rng_.uniform_int(0, 15));
    if (!used_blocks_.insert(slash12).second) continue;
    return slash12 << 20;  // a /12 has 20 host bits
  }
  TING_CHECK_MSG(false, "IPv4 /12 space exhausted");
}

IpAddr IpAllocator::allocate(const std::string& country_code, HostKind kind) {
  Pool& pool = pools_[country_code];
  SubPool& sub = (kind == HostKind::kResidential) ? pool.residential
                                                  : pool.datacenter;
  ++count_;
  if (kind == HostKind::kResidential) {
    // One host per /24, random low host byte.
    if (sub.base == 0 || sub.next_net >= kNetsPerBlock) {
      sub.base = fresh_block();
      sub.next_net = 0;
    }
    const std::uint32_t net = sub.next_net++;
    const std::uint32_t host =
        2 + static_cast<std::uint32_t>(rng_.uniform_int(0, 250));
    return IpAddr(sub.base + (net << 8) + host);
  }
  // Datacenter: most hosting-company relays sit alone in their /24; a
  // quarter land in big-provider ranges packed kHostsPerDcNet to a /24
  // (Digital Ocean / OVH style). Net effect matches the paper's observed
  // /24-to-relay ratio of ~0.85.
  if (sub.base == 0) {
    sub.base = fresh_block();
    sub.next_net = 0;
    sub.next_host = 0;
  }
  const bool packed = rng_.chance(0.25);
  if (!packed || sub.next_host >= kHostsPerDcNet) {
    sub.next_net++;
    sub.next_host = 0;
    if (sub.next_net >= kNetsPerBlock) {
      sub.base = fresh_block();
      sub.next_net = 0;
    }
  }
  const std::uint32_t host = 2 + sub.next_host++;
  return IpAddr(sub.base + (sub.next_net << 8) + host);
}

}  // namespace ting::geo
