// A simulated IP-geolocation service standing in for Neustar (§4.5, Fig 8).
//
// Real geolocation databases are mostly right to within tens of kilometres
// but contain a small fraction of grossly wrong entries; the paper observes
// that the handful of Fig 8 points below the (2/3)c line "are almost all
// likely errors in the underlying geolocation database". The error model
// here reproduces both behaviours.
#pragma once

#include <map>
#include <optional>

#include "geo/cities.h"
#include "geo/geo.h"
#include "util/ip.h"
#include "util/rng.h"

namespace ting::geo {

struct GeolocationConfig {
  double typical_error_km = 30.0;  ///< stddev of the usual placement error
  double gross_error_rate = 0.01;  ///< fraction of entries placed randomly
  std::uint64_t seed = 77;
};

class GeolocationService {
 public:
  explicit GeolocationService(GeolocationConfig config = {});

  /// Record the true location of an address (the simulator knows it).
  void register_host(IpAddr ip, const GeoPoint& true_location);

  /// The service's (noisy) answer. Deterministic per address. Returns
  /// std::nullopt for unregistered addresses.
  std::optional<GeoPoint> lookup(IpAddr ip) const;

  /// True coordinates, for evaluating the service itself.
  std::optional<GeoPoint> ground_truth(IpAddr ip) const;

 private:
  GeolocationConfig config_;
  std::map<IpAddr, GeoPoint> truth_;
  std::map<IpAddr, GeoPoint> reported_;
};

}  // namespace ting::geo
