// Deterministic IPv4 allocation for simulated hosts.
//
// Addresses are grouped into country-specific pools so that /16 and /24
// prefixes are geographically meaningful (Tor's path selection requires
// distinct /16s; the coverage analysis of §5.3 counts distinct /24s).
// Residential allocations scatter across many /24s (one host per /24, like
// home connections); datacenter allocations pack many hosts into few /24s.
// Pools grow by claiming additional /12 blocks as they fill.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "util/ip.h"
#include "util/rng.h"

namespace ting::geo {

enum class HostKind : std::uint8_t { kResidential, kDatacenter };

class IpAllocator {
 public:
  explicit IpAllocator(std::uint64_t seed = 1);

  /// Allocate a fresh address for a host in `country_code` of `kind`.
  /// Never returns the same address twice.
  IpAddr allocate(const std::string& country_code, HostKind kind);

  /// Number of addresses handed out so far.
  std::size_t allocated() const { return count_; }

 private:
  struct SubPool {
    std::uint32_t base = 0;       ///< /12-aligned block
    std::uint32_t next_net = 0;   ///< next /24 index within the block
    std::uint32_t next_host = 0;  ///< host index within the current /24
  };
  struct Pool {
    SubPool residential;
    SubPool datacenter;
  };
  std::uint32_t fresh_block();

  Rng rng_;
  std::map<std::string, Pool> pools_;
  std::set<std::uint32_t> used_blocks_;  ///< claimed /12 prefixes
  std::size_t count_ = 0;
};

}  // namespace ting::geo
