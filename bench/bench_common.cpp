#include "bench_common.h"

#include <fstream>
#include <optional>
#include <sstream>

#include "util/assert.h"
#include "util/bytes.h"

namespace ting::bench {

namespace {

/// Min of `count` pings from one testbed relay host to another's address —
/// the paper's "direct, all-pairs ping measurements" run on the testbed.
double ping_min_between(scenario::Testbed& tb, simnet::HostId from,
                        IpAddr to, int count) {
  double best = 1e18;
  int remaining = count;
  bool done = false;
  std::function<void()> step = [&]() {
    tb.net().ping(from, to, [&](std::optional<Duration> rtt) {
      if (rtt.has_value()) best = std::min(best, rtt->ms());
      if (--remaining > 0) {
        step();
      } else {
        done = true;
      }
    });
  };
  step();
  tb.loop().run_while_waiting_for([&] { return done; },
                                  Duration::seconds(3600));
  TING_CHECK(done);
  return best;
}

std::optional<std::vector<AccuracyRow>> load_accuracy_cache() {
  if (fresh_requested()) return std::nullopt;
  std::ifstream f(kAccuracyCachePath);
  if (!f.good()) return std::nullopt;
  std::vector<AccuracyRow> rows;
  std::string line;
  std::getline(f, line);  // header
  while (std::getline(f, line)) {
    if (trim(line).empty()) continue;
    const auto cols = split(line, ',');
    if (cols.size() != 6) return std::nullopt;
    AccuracyRow r;
    r.i = std::stoul(cols[0]);
    r.j = std::stoul(cols[1]);
    r.ting_1000_ms = std::stod(cols[2]);
    r.ting_200_ms = std::stod(cols[3]);
    r.ping_ms = std::stod(cols[4]);
    r.truth_ms = std::stod(cols[5]);
    rows.push_back(r);
  }
  if (rows.empty()) return std::nullopt;
  return rows;
}

}  // namespace

std::vector<AccuracyRow> planetlab_accuracy_dataset() {
  if (auto cached = load_accuracy_cache(); cached.has_value()) {
    std::fprintf(stderr, "[bench] reusing %s (%zu pairs)\n",
                 kAccuracyCachePath, cached->size());
    return *cached;
  }

  const int hi_samples = scaled(1000, 250);
  std::fprintf(stderr,
               "[bench] measuring 465 PlanetLab pairs at %d samples "
               "(cached afterwards)...\n",
               hi_samples);
  scenario::TestbedOptions options;
  options.seed = 403;
  scenario::Testbed tb = scenario::planetlab31(options);

  meas::TingConfig cfg;
  cfg.samples = hi_samples;
  cfg.keep_raw_samples = true;  // the 200-sample arm is a prefix (§4.4)
  meas::TingMeasurer measurer(tb.ting(), cfg);

  std::vector<AccuracyRow> rows;
  for (std::size_t i = 0; i < tb.relay_count(); ++i) {
    for (std::size_t j = i + 1; j < tb.relay_count(); ++j) {
      const auto x = tb.fp(i), y = tb.fp(j);
      const meas::PairResult r = measurer.measure_blocking(x, y);
      if (!r.ok) {
        std::fprintf(stderr, "[bench] pair (%zu,%zu) failed: %s\n", i, j,
                     r.error.c_str());
        continue;
      }
      AccuracyRow row;
      row.i = i;
      row.j = j;
      row.ting_1000_ms = r.rtt_ms;
      row.ting_200_ms = r.estimate_with_prefix(std::min(200, hi_samples));
      row.ping_ms = ping_min_between(tb, tb.host_of(x),
                                     tb.net().ip_of(tb.host_of(y)), 100);
      row.truth_ms = tb.net()
                         .latency()
                         .rtt(tb.host_of(x), tb.host_of(y),
                              simnet::Protocol::kTor)
                         .ms();
      rows.push_back(row);
    }
  }

  std::ofstream out(kAccuracyCachePath);
  out << "i,j,ting_1000_ms,ting_200_ms,ping_ms,truth_ms\n";
  for (const auto& r : rows)
    out << r.i << "," << r.j << "," << r.ting_1000_ms << "," << r.ting_200_ms
        << "," << r.ping_ms << "," << r.truth_ms << "\n";
  return rows;
}

FiftyNodeDataset fifty_node_dataset() {
  // The topology (and thus fingerprints/weights) regenerates cheaply and
  // deterministically; only the measurements are worth caching.
  scenario::TestbedOptions options;
  options.seed = 1150;
  options.start_measurement_host = false;
  scenario::Testbed tb = scenario::live_tor(50, options);

  FiftyNodeDataset ds;
  for (std::size_t i = 0; i < tb.relay_count(); ++i)
    ds.nodes.push_back(tb.fp(i));
  std::sort(ds.nodes.begin(), ds.nodes.end());
  for (const auto& fp : ds.nodes)
    ds.weights.push_back(tb.consensus().find(fp)->bandwidth);

  if (!fresh_requested()) {
    std::ifstream f(kFiftyNodeCachePath);
    if (f.good()) {
      std::stringstream buf;
      buf << f.rdbuf();
      meas::RttMatrix m = meas::RttMatrix::from_csv(buf.str());
      // Sanity: the cache must cover this topology.
      if (m.size() == 50 * 49 / 2 && m.contains(ds.nodes[0], ds.nodes[1])) {
        std::fprintf(stderr, "[bench] reusing %s (%zu pairs)\n",
                     kFiftyNodeCachePath, m.size());
        ds.matrix = std::move(m);
        return ds;
      }
    }
  }

  const int samples = scaled(200, 50);
  std::fprintf(stderr,
               "[bench] measuring 50-node all-pairs matrix at %d samples "
               "(cached afterwards)...\n",
               samples);
  tb.ting().start_blocking();
  meas::TingConfig cfg;
  cfg.samples = samples;
  meas::TingMeasurer measurer(tb.ting(), cfg);
  for (std::size_t i = 0; i < ds.nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < ds.nodes.size(); ++j) {
      const meas::PairResult r =
          measurer.measure_blocking(ds.nodes[i], ds.nodes[j]);
      TING_CHECK_MSG(r.ok, "50-node pair failed: " << r.error);
      ds.matrix.set(ds.nodes[i], ds.nodes[j], r.rtt_ms, tb.loop().now(),
                    samples);
    }
  }
  ds.matrix.save_csv(kFiftyNodeCachePath);
  return ds;
}

}  // namespace ting::bench
