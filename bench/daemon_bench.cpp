// Continuous scan daemon under consensus churn: coverage convergence and
// the cost profile of delta epochs vs the initial full-mesh epoch.
//
// A testbed consensus churns 5% per epoch while the daemon chases it with
// delta worklists. Prints the per-epoch series (churn, planned pairs,
// wall clock, coverage), the delta-vs-full work ratio, and the sparse-
// matrix lookup/merge microcosts; writes BENCH_daemon.json for CI to
// archive alongside BENCH_scan.json.
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "scenario/daemon_world.h"
#include "ting/daemon.h"
#include "ting/sparse_matrix.h"
#include "util/rng.h"

int main() {
  using namespace ting;
  using namespace ting::bench;
  header("Scan daemon", "delta epochs against a 5%-churn consensus");

  scenario::DaemonWorldOptions wo;
  wo.relays = static_cast<std::size_t>(scaled(60, 20));
  wo.testbed.seed = 430;
  wo.testbed.differential_fraction = 0;
  wo.ting.samples = scaled(50, 10);
  wo.churn.seed = 431;
  wo.churn.churn_rate = 0.05;
  wo.churn.rejoin_rate = 0.5;
  wo.churn.initially_absent = 0.1;  // some relays join mid-run
  scenario::TestbedDaemonEnvironment env(wo);

  meas::DaemonOptions d;
  d.epochs = static_cast<std::size_t>(scaled(6, 3));
  d.out = "BENCH_daemon.tingmx";
  d.seed = 430;
  d.config_tag = "daemon-bench";

  std::printf("# relays %zu, %.0f%% churn/epoch, samples/circuit %d, "
              "%zu epochs\n",
              wo.relays, wo.churn.churn_rate * 100, wo.ting.samples, d.epochs);
  std::printf("# epoch\tnodes\tjoin\tleave\tplanned\tnew\texpired\tfresh"
              "\twall_s\tcoverage\n");

  meas::ScanDaemon daemon(env, d);
  auto t0 = std::chrono::steady_clock::now();
  std::size_t first_epoch_pairs = 0, delta_pairs = 0, delta_epochs = 0;
  double first_epoch_wall = 0, delta_wall = 0;
  const meas::DaemonReport report = daemon.run([&](const meas::EpochStats& e) {
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    t0 = t1;
    std::printf("%zu\t%zu\t%zu\t%zu\t%zu\t%zu\t%zu\t%zu\t%.2f\t%.4f\n",
                e.epoch, e.nodes, e.joined, e.left, e.plan.pairs.size(),
                e.plan.new_pairs, e.plan.expired_pairs, e.plan.fresh_pairs,
                wall, e.coverage.coverage());
    if (e.epoch == 0) {
      first_epoch_pairs = e.plan.pairs.size();
      first_epoch_wall = wall;
    } else {
      delta_pairs += e.plan.pairs.size();
      delta_wall += wall;
      ++delta_epochs;
    }
  });

  const double mean_delta_pairs =
      delta_epochs > 0 ? static_cast<double>(delta_pairs) /
                             static_cast<double>(delta_epochs)
                       : 0;
  const double delta_work_ratio =
      first_epoch_pairs > 0 ? mean_delta_pairs /
                                  static_cast<double>(first_epoch_pairs)
                            : 0;
  std::printf("# converged %s, final coverage %.4f, %zu pairs stored\n",
              report.converged ? "yes" : "NO", report.final_coverage,
              report.matrix_pairs);
  std::printf("# delta epochs average %.1f pairs vs %zu full-mesh "
              "(x%.3f of the initial work)\n",
              mean_delta_pairs, first_epoch_pairs, delta_work_ratio);

  // ---- sparse matrix microcosts --------------------------------------------
  // Lookup + merge throughput on a daemon-scale pair set (the operations
  // the planner does once per pair per epoch).
  double lookup_ns = 0, merge_ms = 0;
  std::size_t micro_pairs = 0;
  {
    const std::size_t n = static_cast<std::size_t>(scaled(300, 100));
    std::vector<dir::Fingerprint> fps;
    Rng rng(99);
    for (std::size_t i = 0; i < n; ++i) {
      char hex[48];
      std::snprintf(hex, sizeof(hex), "%040zx",
                    static_cast<std::size_t>(rng.next_u64()));
      fps.push_back(dir::Fingerprint::from_hex(hex));
    }
    meas::SparseRttMatrix m;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        m.set(fps[i], fps[j], 1.0 + static_cast<double>(i + j),
              TimePoint::from_ns(static_cast<std::int64_t>(i * n + j)), 1);
    micro_pairs = m.size();

    const auto t_look = std::chrono::steady_clock::now();
    std::size_t hits = 0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        if (m.contains(fps[i], fps[j])) ++hits;
    lookup_ns = std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - t_look)
                    .count() /
                static_cast<double>(hits);

    meas::SparseRttMatrix other;
    for (std::size_t i = 0; i < n; ++i)
      other.set(fps[i], fps[(i + 1) % n], 2.0,
                TimePoint::from_ns(static_cast<std::int64_t>(i + 1)), 1);
    const auto t_merge = std::chrono::steady_clock::now();
    m.merge(other);
    merge_ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t_merge)
                   .count();
    std::printf("# sparse micro: %zu pairs, lookup %.0f ns/pair, "
                "merge(+%zu) %.2f ms\n",
                micro_pairs, lookup_ns, other.size(), merge_ms);
  }

  std::FILE* json = std::fopen("BENCH_daemon.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"benchmark\": \"scan_daemon\",\n"
                 "  \"relays\": %zu,\n"
                 "  \"churn_rate\": %.3f,\n"
                 "  \"epochs\": %zu,\n"
                 "  \"converged\": %s,\n"
                 "  \"final_coverage\": %.4f,\n"
                 "  \"matrix_pairs\": %zu,\n"
                 "  \"first_epoch_pairs\": %zu,\n"
                 "  \"first_epoch_wall_s\": %.3f,\n"
                 "  \"mean_delta_epoch_pairs\": %.1f,\n"
                 "  \"delta_work_ratio\": %.4f,\n"
                 "  \"sparse_lookup_ns_per_pair\": %.1f,\n"
                 "  \"sparse_merge_ms\": %.3f,\n"
                 "  \"sparse_micro_pairs\": %zu\n"
                 "}\n",
                 wo.relays, wo.churn.churn_rate, d.epochs,
                 report.converged ? "true" : "false", report.final_coverage,
                 report.matrix_pairs, first_epoch_pairs, first_epoch_wall,
                 mean_delta_pairs, delta_work_ratio, lookup_ns, merge_ms,
                 micro_pairs);
    std::fclose(json);
    std::printf("# wrote BENCH_daemon.json\n");
  }
  return report.converged ? 0 : 1;
}
