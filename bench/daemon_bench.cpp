// Continuous scan daemon under consensus churn: coverage convergence and
// the cost profile of delta epochs vs the initial full-mesh epoch.
//
// A testbed consensus churns 5% per epoch while the daemon chases it with
// delta worklists. Prints the per-epoch series (churn, planned pairs,
// wall clock, coverage), the delta-vs-full work ratio, and the sparse-
// matrix lookup/merge microcosts; writes BENCH_daemon.json for CI to
// archive alongside BENCH_scan.json.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "scenario/churn_feed.h"
#include "scenario/daemon_world.h"
#include "scenario/synthetic_env.h"
#include "ting/daemon.h"
#include "ting/delta_scan.h"
#include "ting/sparse_matrix.h"
#include "util/rng.h"

namespace {

/// Peak resident set in MB (ru_maxrss is KB on Linux).
double peak_rss_mb() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

/// TING_SCALE_RELAYS pins the paper-scale leg's consensus size (CI sets
/// 6000 regardless of TING_BENCH_SCALE); unset, it scales like the rest.
std::size_t scale_relays() {
  const char* s = std::getenv("TING_SCALE_RELAYS");
  if (s != nullptr && std::atol(s) >= 2)
    return static_cast<std::size_t>(std::atol(s));
  return static_cast<std::size_t>(ting::bench::scaled(6000, 400));
}

}  // namespace

int main() {
  using namespace ting;
  using namespace ting::bench;
  header("Scan daemon", "delta epochs against a 5%-churn consensus");

  scenario::DaemonWorldOptions wo;
  wo.relays = static_cast<std::size_t>(scaled(60, 20));
  wo.testbed.seed = 430;
  wo.testbed.differential_fraction = 0;
  wo.ting.samples = scaled(50, 10);
  wo.churn.seed = 431;
  wo.churn.churn_rate = 0.05;
  wo.churn.rejoin_rate = 0.5;
  wo.churn.initially_absent = 0.1;  // some relays join mid-run
  scenario::TestbedDaemonEnvironment env(wo);

  meas::DaemonOptions d;
  d.epochs = static_cast<std::size_t>(scaled(6, 3));
  d.out = "BENCH_daemon.tingmx";
  d.seed = 430;
  d.config_tag = "daemon-bench";

  std::printf("# relays %zu, %.0f%% churn/epoch, samples/circuit %d, "
              "%zu epochs\n",
              wo.relays, wo.churn.churn_rate * 100, wo.ting.samples, d.epochs);
  std::printf("# epoch\tnodes\tjoin\tleave\tplanned\tnew\texpired\tfresh"
              "\twall_s\tcoverage\n");

  meas::ScanDaemon daemon(env, d);
  auto t0 = std::chrono::steady_clock::now();
  std::size_t first_epoch_pairs = 0, delta_pairs = 0, delta_epochs = 0;
  double first_epoch_wall = 0, delta_wall = 0;
  const meas::DaemonReport report = daemon.run([&](const meas::EpochStats& e) {
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    t0 = t1;
    std::printf("%zu\t%zu\t%zu\t%zu\t%zu\t%zu\t%zu\t%zu\t%.2f\t%.4f\n",
                e.epoch, e.nodes, e.joined, e.left, e.plan.pairs.size(),
                e.plan.new_pairs, e.plan.expired_pairs, e.plan.fresh_pairs,
                wall, e.coverage.coverage());
    if (e.epoch == 0) {
      first_epoch_pairs = e.plan.pairs.size();
      first_epoch_wall = wall;
    } else {
      delta_pairs += e.plan.pairs.size();
      delta_wall += wall;
      ++delta_epochs;
    }
  });

  const double mean_delta_pairs =
      delta_epochs > 0 ? static_cast<double>(delta_pairs) /
                             static_cast<double>(delta_epochs)
                       : 0;
  const double delta_work_ratio =
      first_epoch_pairs > 0 ? mean_delta_pairs /
                                  static_cast<double>(first_epoch_pairs)
                            : 0;
  std::printf("# converged %s, final coverage %.4f, %zu pairs stored\n",
              report.converged ? "yes" : "NO", report.final_coverage,
              report.matrix_pairs);
  std::printf("# delta epochs average %.1f pairs vs %zu full-mesh "
              "(x%.3f of the initial work)\n",
              mean_delta_pairs, first_epoch_pairs, delta_work_ratio);

  // ---- sparse matrix microcosts --------------------------------------------
  // Lookup + merge throughput on a daemon-scale pair set (the operations
  // the planner does once per pair per epoch).
  double lookup_ns = 0, merge_ms = 0;
  std::size_t micro_pairs = 0;
  {
    const std::size_t n = static_cast<std::size_t>(scaled(300, 100));
    std::vector<dir::Fingerprint> fps;
    Rng rng(99);
    for (std::size_t i = 0; i < n; ++i) {
      char hex[48];
      std::snprintf(hex, sizeof(hex), "%040zx",
                    static_cast<std::size_t>(rng.next_u64()));
      fps.push_back(dir::Fingerprint::from_hex(hex));
    }
    meas::SparseRttMatrix m;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        m.set(fps[i], fps[j], 1.0 + static_cast<double>(i + j),
              TimePoint::from_ns(static_cast<std::int64_t>(i * n + j)), 1);
    micro_pairs = m.size();

    const auto t_look = std::chrono::steady_clock::now();
    std::size_t hits = 0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        if (m.contains(fps[i], fps[j])) ++hits;
    lookup_ns = std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - t_look)
                    .count() /
                static_cast<double>(hits);

    meas::SparseRttMatrix other;
    for (std::size_t i = 0; i < n; ++i)
      other.set(fps[i], fps[(i + 1) % n], 2.0,
                TimePoint::from_ns(static_cast<std::int64_t>(i + 1)), 1);
    const auto t_merge = std::chrono::steady_clock::now();
    m.merge(other);
    merge_ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t_merge)
                   .count();
    std::printf("# sparse micro: %zu pairs, lookup %.0f ns/pair, "
                "merge(+%zu) %.2f ms\n",
                micro_pairs, lookup_ns, other.size(), merge_ms);
  }

  // ---- paper-scale leg -----------------------------------------------------
  // The full-consensus regime (§5.3: ~6,000 relays, ~18M pairs) against the
  // synthetic environment: (1) two budgeted daemon epochs end to end,
  // (2) a full-mesh SparseRttMatrix fill profiling memory_bytes at 18M
  // entries, (3) plan_delta vs the primed incremental planner on identical
  // state — the speedup and plan-equality numbers gate-scale enforces.
  const std::size_t sr = scale_relays();
  const double rss_before_mb = peak_rss_mb();
  double scale_construct_ms = 0, scale_epoch_wall_s = 0, fill_wall_s = 0;
  double plan_full_ms = 0, plan_incr_ms = 0;
  std::size_t scale_planned = 0, fill_pairs = 0, scale_matrix_bytes = 0;
  std::size_t plan_pairs = 0;
  bool planner_identical = false;
  double daemon_rss_mb = 0;
  const std::size_t scale_budget = 200000;
  {
    scenario::SyntheticEnvOptions seo;
    seo.relays = sr;
    seo.testbed.seed = 440;
    seo.churn.seed = 441;
    seo.churn.churn_rate = 0.01;
    seo.churn.rejoin_rate = 0.5;
    seo.churn.initially_absent = 0.02;
    scenario::SyntheticDaemonEnvironment senv(seo);
    scale_construct_ms = senv.world_construct_ms();
    std::printf("# scale: %zu relays (%zu pairs), topology %.0f ms\n", sr,
                sr * (sr - 1) / 2, scale_construct_ms);

    // (1) Budgeted daemon epochs: journal off (epoch-granular resume; the
    // per-record fsync would dominate), half cache off (no circuits here).
    meas::DaemonOptions sd;
    sd.epochs = 2;
    sd.budget = scale_budget;
    sd.out = "BENCH_scale.tingmx";
    sd.seed = 440;
    sd.config_tag = "daemon-bench-scale";
    sd.half_cache = false;
    sd.journal = false;
    sd.coverage_target = 0;  // budgeted epochs can't converge; not the point
    meas::ScanDaemon sdaemon(senv, sd);
    const auto t_epochs = std::chrono::steady_clock::now();
    const meas::DaemonReport sreport = sdaemon.run();
    scale_epoch_wall_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t_epochs)
                             .count();
    for (const auto& e : sreport.epochs) scale_planned += e.plan.pairs.size();
    daemon_rss_mb = peak_rss_mb();
    std::printf("# scale daemon: %zu epochs, %zu planned, %zu stored, "
                "%.2f s, store %.1f MB, rss %.0f MB\n",
                sreport.epochs_completed, scale_planned, sreport.matrix_pairs,
                scale_epoch_wall_s,
                static_cast<double>(sreport.matrix_bytes) / 1e6,
                daemon_rss_mb);

    // (2) Full-mesh fill: the 18M-entry memory profile. One epoch stamp for
    // every entry, exactly like a converged daemon store.
    scenario::ChurnFeed feed(senv.topology().all_fingerprints(), seo.churn);
    feed.advance(0);
    const std::vector<dir::Fingerprint> nodes0 = feed.members();
    const TimePoint t1 = TimePoint::from_ns(1000);
    meas::SparseRttMatrix full;
    full.reserve_pairs(nodes0.size() * (nodes0.size() - 1) / 2);
    const auto t_fill = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < nodes0.size(); ++i)
      for (std::size_t j = i + 1; j < nodes0.size(); ++j)
        full.set(nodes0[i], nodes0[j], 1.0 + static_cast<double>(i + j), t1,
                 1);
    fill_wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t_fill)
                      .count();
    fill_pairs = full.size();
    scale_matrix_bytes = full.memory_bytes();
    std::printf("# scale fill: %zu entries in %.2f s, %.1f MB "
                "(%.0f bytes/pair)\n",
                fill_pairs, fill_wall_s,
                static_cast<double>(scale_matrix_bytes) / 1e6,
                static_cast<double>(scale_matrix_bytes) /
                    static_cast<double>(fill_pairs));

    // (3) Planner head-to-head on identical state: prime the incremental
    // planner on the full mesh, advance one churn epoch, then time both
    // planners over the same (matrix, nodes, clock) and require identical
    // plans. TTL keeps the mesh fresh, so the census's only yield is the
    // joined relays' new pairs — the planner's steady-state regime.
    const meas::DeltaPlanOptions popt{Duration::seconds(3600), 0};
    const TimePoint now = TimePoint::from_ns(t1.ns() + 1000);
    meas::IncrementalDeltaPlanner planner;
    planner.plan_delta_incremental(full, nodes0, {}, now, popt);  // primes
    meas::ConsensusDeltaTracker tracker;
    tracker.observe(nodes0);
    feed.advance(1);
    const std::vector<dir::Fingerprint> nodes1 = feed.members();
    const auto delta = tracker.observe(nodes1);

    const auto t_full = std::chrono::steady_clock::now();
    const meas::DeltaPlan p_full = meas::plan_delta(full, nodes1, now, popt);
    plan_full_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t_full)
                       .count();
    const auto t_incr = std::chrono::steady_clock::now();
    const meas::DeltaPlan p_incr =
        planner.plan_delta_incremental(full, nodes1, delta.joined, now, popt);
    plan_incr_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t_incr)
                       .count();
    planner_identical =
        p_full.pairs == p_incr.pairs && p_full.new_pairs == p_incr.new_pairs &&
        p_full.expired_pairs == p_incr.expired_pairs &&
        p_full.fresh_pairs == p_incr.fresh_pairs &&
        p_full.dropped_over_budget == p_incr.dropped_over_budget;
    plan_pairs = p_full.pairs.size();
    std::printf("# scale planner: %zu joined -> %zu pairs; full %.1f ms, "
                "incremental %.2f ms (x%.0f), plans %s\n",
                delta.joined.size(), plan_pairs, plan_full_ms, plan_incr_ms,
                plan_incr_ms > 0 ? plan_full_ms / plan_incr_ms : 0,
                planner_identical ? "identical" : "DIVERGED");
  }
  const double final_rss_mb = peak_rss_mb();
  const double planner_speedup =
      plan_incr_ms > 0 ? plan_full_ms / plan_incr_ms : 0;
  std::printf("# scale rss: before %.0f MB, after daemon %.0f MB, "
              "peak %.0f MB\n",
              rss_before_mb, daemon_rss_mb, final_rss_mb);

  std::FILE* json = std::fopen("BENCH_daemon.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"benchmark\": \"scan_daemon\",\n"
                 "  \"relays\": %zu,\n"
                 "  \"churn_rate\": %.3f,\n"
                 "  \"epochs\": %zu,\n"
                 "  \"converged\": %s,\n"
                 "  \"final_coverage\": %.4f,\n"
                 "  \"matrix_pairs\": %zu,\n"
                 "  \"first_epoch_pairs\": %zu,\n"
                 "  \"first_epoch_wall_s\": %.3f,\n"
                 "  \"mean_delta_epoch_pairs\": %.1f,\n"
                 "  \"delta_work_ratio\": %.4f,\n"
                 "  \"sparse_lookup_ns_per_pair\": %.1f,\n"
                 "  \"sparse_merge_ms\": %.3f,\n"
                 "  \"sparse_micro_pairs\": %zu,\n"
                 "  \"scale\": {\n"
                 "    \"relays\": %zu,\n"
                 "    \"construct_ms\": %.1f,\n"
                 "    \"daemon_epochs\": 2,\n"
                 "    \"daemon_budget\": %zu,\n"
                 "    \"daemon_planned_pairs\": %zu,\n"
                 "    \"daemon_wall_s\": %.3f,\n"
                 "    \"daemon_rss_mb\": %.1f,\n"
                 "    \"fill_pairs\": %zu,\n"
                 "    \"fill_wall_s\": %.3f,\n"
                 "    \"matrix_memory_mb\": %.1f,\n"
                 "    \"matrix_bytes_per_pair\": %.1f,\n"
                 "    \"plan_pairs\": %zu,\n"
                 "    \"plan_full_ms\": %.3f,\n"
                 "    \"plan_incremental_ms\": %.3f,\n"
                 "    \"planner_speedup\": %.1f,\n"
                 "    \"planner_identical\": %s,\n"
                 "    \"peak_rss_mb\": %.1f\n"
                 "  }\n"
                 "}\n",
                 wo.relays, wo.churn.churn_rate, d.epochs,
                 report.converged ? "true" : "false", report.final_coverage,
                 report.matrix_pairs, first_epoch_pairs, first_epoch_wall,
                 mean_delta_pairs, delta_work_ratio, lookup_ns, merge_ms,
                 micro_pairs, sr, scale_construct_ms, scale_budget,
                 scale_planned, scale_epoch_wall_s, daemon_rss_mb, fill_pairs,
                 fill_wall_s, static_cast<double>(scale_matrix_bytes) / 1e6,
                 static_cast<double>(scale_matrix_bytes) /
                     static_cast<double>(fill_pairs > 0 ? fill_pairs : 1),
                 plan_pairs, plan_full_ms, plan_incr_ms, planner_speedup,
                 planner_identical ? "true" : "false", final_rss_mb);
    std::fclose(json);
    std::printf("# wrote BENCH_daemon.json\n");
  }
  // Exit is keyed to the testbed leg's convergence plus the scale leg's
  // plan equality (a divergence is a correctness bug, not a perf miss).
  return report.converged && planner_identical ? 0 : 1;
}
