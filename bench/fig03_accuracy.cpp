// Figure 3: CDF of Ting's estimate / "real" (ping-measured) latency over
// all pairs of the 31-node PlanetLab-style testbed.
//
// Paper headline: 91% of pairs within 10% of truth, <2% with error >30%,
// no skew around 1.0; Spearman rank correlation vs ground truth 0.997.
#include "bench_common.h"

int main() {
  using namespace ting;
  using namespace ting::bench;
  header("Figure 3", "CDF of Ting estimate / ping ground truth (465 pairs)");

  const auto rows = planetlab_accuracy_dataset();
  std::vector<double> ratios, ting_vals, ping_vals;
  int within10 = 0, over30 = 0;
  for (const auto& r : rows) {
    const double ratio = r.ting_1000_ms / r.ping_ms;
    ratios.push_back(ratio);
    ting_vals.push_back(r.ting_1000_ms);
    ping_vals.push_back(r.ping_ms);
    if (std::abs(ratio - 1.0) <= 0.10) ++within10;
    if (std::abs(ratio - 1.0) > 0.30) ++over30;
  }

  print_cdf(Cdf(ratios), "measured/real");
  std::printf("\n# headline statistics (paper values in parentheses)\n");
  std::printf("pairs measured\t%zu (930 ordered / 465 unordered)\n",
              rows.size());
  std::printf("within 10%% of real\t%.1f%% (91%%)\n",
              100.0 * within10 / static_cast<double>(rows.size()));
  std::printf("error > 30%%\t%.1f%% (<2%%)\n",
              100.0 * over30 / static_cast<double>(rows.size()));
  std::printf("median ratio\t%.3f (~1.0, no skew)\n",
              quantile(ratios, 0.5));
  std::printf("spearman rank corr\t%.4f (0.997)\n",
              spearman(ting_vals, ping_vals));
  return 0;
}
