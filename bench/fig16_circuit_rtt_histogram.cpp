// Figure 16: number of circuits (scaled from a 10k sample to the full
// C(50, l) population) whose end-to-end RTT falls in each 50 ms bin, for
// circuit lengths 3–10.
//
// Paper shape: in the 200–300 ms band, 4-hop circuits offer ~an order of
// magnitude more options than 3-hop, and 10-hop four orders of magnitude
// more; no 3-hop circuit exceeds ~1 s while millions of 10-hop ones exceed
// 2 s.
#include "bench_common.h"

#include "analysis/circuits.h"

int main() {
  using namespace ting;
  using namespace ting::bench;
  using namespace ting::analysis;
  header("Figure 16", "circuits per RTT bin, lengths 3-10, scaled to C(50,l)");

  const FiftyNodeDataset ds = fifty_node_dataset();
  const std::size_t kSamplesPerLength =
      static_cast<std::size_t>(scaled(10000, 2000));
  const double kBin = 50.0;
  const std::size_t kBins = 50;  // 0..2.5 s

  Rng rng(16);
  std::vector<CircuitRttHistogram> hists;
  std::printf("# bin_rtt_s");
  for (std::size_t len = 3; len <= 10; ++len) std::printf("\tlen%zu", len);
  std::printf("\n");
  for (std::size_t len = 3; len <= 10; ++len)
    hists.push_back(circuit_rtt_histogram(ds.matrix, ds.nodes, len,
                                          kSamplesPerLength, kBin, kBins,
                                          rng));
  for (std::size_t b = 0; b < kBins; ++b) {
    std::printf("%.2f", (static_cast<double>(b) + 0.5) * kBin / 1000.0);
    for (const auto& h : hists) std::printf("\t%.3g", h.scaled_counts[b]);
    std::printf("\n");
  }

  auto band_count = [&](const CircuitRttHistogram& h, double lo_ms,
                        double hi_ms) {
    double total = 0;
    for (std::size_t b = 0; b < kBins; ++b) {
      const double center = (static_cast<double>(b) + 0.5) * kBin;
      if (center >= lo_ms && center < hi_ms) total += h.scaled_counts[b];
    }
    return total;
  };
  const double c3 = band_count(hists[0], 200, 300);
  const double c4 = band_count(hists[1], 200, 300);
  const double c10 = band_count(hists[7], 200, 300);
  std::printf("\n# circuits in 200-300ms: 3-hop %.3g, 4-hop %.3g, 10-hop "
              "%.3g\n", c3, c4, c10);
  std::printf("# 4-hop vs 3-hop\t%.0fx (paper: ~10x)\n", c4 / c3);
  std::printf("# 10-hop vs 3-hop\t%.0fx (paper: ~4 orders of magnitude)\n",
              c10 / c3);
  return 0;
}
