// Figure 9: stability of Ting measurements over time — CDF of the
// coefficient of variation (stddev/mean) for 30 pairs measured repeatedly
// over a simulated week.
//
// Paper headline: 96.7% of pairs (all but one) have cv < 0.5; over 50% have
// cv ≈ 0.
#include "bench_common.h"

int main() {
  using namespace ting;
  using namespace ting::bench;
  header("Figure 9",
         "CDF of the coefficient of variation across repeated measurements");

  scenario::TestbedOptions options;
  options.seed = 409;
  scenario::Testbed tb = scenario::live_tor(100, options);

  const int kPairs = 30;
  const int kRounds = scaled(56, 10);  // paper: hourly for a week (168)
  meas::TingConfig cfg;
  cfg.samples = scaled(100, 30);
  meas::TingMeasurer measurer(tb.ting(), cfg);

  // §4.6 picks pairs whose RTTs spread uniformly from low to high: sort
  // candidate pairs by ground truth and take evenly spaced ones.
  Rng rng(11);
  std::vector<std::pair<std::size_t, std::size_t>> candidates;
  for (int k = 0; k < 400; ++k) {
    const auto idx = rng.sample_indices(tb.relay_count(), 2);
    candidates.emplace_back(idx[0], idx[1]);
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](const auto& a, const auto& b) {
              return tb.true_rtt_ms(tb.fp(a.first), tb.fp(a.second)) <
                     tb.true_rtt_ms(tb.fp(b.first), tb.fp(b.second));
            });
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (int i = 0; i < kPairs; ++i)
    pairs.push_back(candidates[static_cast<std::size_t>(i) *
                               (candidates.size() - 1) / (kPairs - 1)]);

  std::vector<std::vector<double>> series(pairs.size());
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      const meas::PairResult r = measurer.measure_blocking(
          tb.fp(pairs[p].first), tb.fp(pairs[p].second));
      if (r.ok) series[p].push_back(r.rtt_ms);
    }
    // An hour passes between rounds.
    tb.loop().run_until(tb.loop().now() + Duration::seconds(3600));
  }

  std::vector<double> cvs;
  for (const auto& s : series)
    if (s.size() >= 2) cvs.push_back(summarize(s).cv());
  print_cdf(Cdf(cvs), "coefficient_of_variation", 30);

  int below_half = 0, near_zero = 0;
  for (double cv : cvs) {
    if (cv < 0.5) ++below_half;
    if (cv < 0.05) ++near_zero;
  }
  std::printf("\n# pairs with cv < 0.5\t%d/%zu (paper: 96.7%%)\n", below_half,
              cvs.size());
  std::printf("# pairs with cv ~ 0 (<0.05)\t%d/%zu (paper: >50%%)\n",
              near_zero, cvs.size());
  return 0;
}
