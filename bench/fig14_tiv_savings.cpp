// Figure 14: CDF of the RTT saving from routing via the best
// triangle-inequality-violation detour instead of the direct path.
//
// Paper headline: 69% of pairs have at least one TIV; median saving 7.5%;
// 10% of TIVs save 28% or more.
#include "bench_common.h"

#include "analysis/tiv.h"

int main() {
  using namespace ting;
  using namespace ting::bench;
  using namespace ting::analysis;
  header("Figure 14", "CDF of RTT savings from the best TIV detour");

  const FiftyNodeDataset ds = fifty_node_dataset();
  const auto tivs = find_all_tivs(ds.matrix);
  const double frac = fraction_pairs_with_tiv(ds.matrix);

  std::vector<double> savings_pct;
  for (const auto& t : tivs) savings_pct.push_back(100.0 * t.savings());
  print_cdf(Cdf(savings_pct), "rtt_savings_percent", 30);

  std::printf("\n# pairs with a TIV\t%.1f%% (paper: 69%%)\n", 100 * frac);
  if (!savings_pct.empty()) {
    std::printf("# median saving\t%.1f%% (paper: 7.5%%)\n",
                quantile(savings_pct, 0.5));
    std::printf("# p90 saving\t%.1f%% (paper: 28%%)\n",
                quantile(savings_pct, 0.9));
  }
  return 0;
}
