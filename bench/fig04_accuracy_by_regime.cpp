// Figure 4: the Figure-3 accuracy CDF split into latency regimes
// (<50ms, 50–150ms, 150–250ms, >250ms).
//
// Paper shape: accuracy improves with true RTT — each successive regime's
// CDF is more vertical and centred on 1.0; most outliers live in <50ms,
// where a large relative error is a small absolute one.
#include "bench_common.h"

int main() {
  using namespace ting;
  using namespace ting::bench;
  header("Figure 4", "Ting accuracy CDFs by true-latency regime");

  const auto rows = planetlab_accuracy_dataset();
  struct Regime {
    const char* label;
    double lo, hi;
    std::vector<double> ratios;
  };
  Regime regimes[] = {{"<50ms", 0, 50, {}},
                      {"50-150ms", 50, 150, {}},
                      {"150-250ms", 150, 250, {}},
                      {">250ms", 250, 1e9, {}}};
  for (const auto& r : rows) {
    for (auto& regime : regimes) {
      if (r.ping_ms >= regime.lo && r.ping_ms < regime.hi)
        regime.ratios.push_back(r.ting_1000_ms / r.ping_ms);
    }
  }

  for (const auto& regime : regimes) {
    std::printf("\n# regime %s (%zu pairs)\n", regime.label,
                regime.ratios.size());
    if (regime.ratios.empty()) continue;
    print_cdf(Cdf(regime.ratios), "measured/real", 20);
  }

  std::printf("\n# spread (p90-p10 of the ratio) per regime — should shrink "
              "with RTT\n");
  for (const auto& regime : regimes) {
    if (regime.ratios.size() < 5) continue;
    const Cdf cdf(regime.ratios);
    std::printf("%s\t%.4f\n", regime.label,
                cdf.value_at(0.9) - cdf.value_at(0.1));
  }
  return 0;
}
