// Figure 10: the same repeated measurements as Figure 9, shown per pair
// (box plots, pairs sorted by median latency) — large relative variance is
// revealed as small absolute error when the mean is low.
//
// Paper headline: 67% of pairs have interquartile range < 5 ms and no
// outliers; the cv outlier of Fig 9 is the lowest-latency pair (~3 ms).
#include "bench_common.h"

int main() {
  using namespace ting;
  using namespace ting::bench;
  header("Figure 10", "per-pair latency distributions over a week");

  scenario::TestbedOptions options;
  options.seed = 409;  // same world as fig09
  scenario::Testbed tb = scenario::live_tor(100, options);

  const int kPairs = 30;
  const int kRounds = scaled(40, 8);
  meas::TingConfig cfg;
  cfg.samples = scaled(100, 30);
  meas::TingMeasurer measurer(tb.ting(), cfg);

  Rng rng(11);
  std::vector<std::pair<std::size_t, std::size_t>> candidates;
  for (int k = 0; k < 400; ++k) {
    const auto idx = rng.sample_indices(tb.relay_count(), 2);
    candidates.emplace_back(idx[0], idx[1]);
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](const auto& a, const auto& b) {
              return tb.true_rtt_ms(tb.fp(a.first), tb.fp(a.second)) <
                     tb.true_rtt_ms(tb.fp(b.first), tb.fp(b.second));
            });
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (int i = 0; i < kPairs; ++i)
    pairs.push_back(candidates[static_cast<std::size_t>(i) *
                               (candidates.size() - 1) / (kPairs - 1)]);

  std::vector<std::vector<double>> series(pairs.size());
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      const meas::PairResult r = measurer.measure_blocking(
          tb.fp(pairs[p].first), tb.fp(pairs[p].second));
      if (r.ok) series[p].push_back(r.rtt_ms);
    }
    tb.loop().run_until(tb.loop().now() + Duration::seconds(3600));
  }

  std::vector<Summary> sums;
  for (const auto& s : series) sums.push_back(summarize(s));
  std::sort(sums.begin(), sums.end(),
            [](const Summary& a, const Summary& b) {
              return a.median < b.median;
            });

  std::printf("# pair\tmin\tp25\tmedian\tp75\tmax\tiqr\n");
  int tight = 0;
  for (std::size_t p = 0; p < sums.size(); ++p) {
    const Summary& s = sums[p];
    std::printf("%zu\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n", p, s.min, s.p25,
                s.median, s.p75, s.max, s.p75 - s.p25);
    if (s.p75 - s.p25 < 5.0) ++tight;
  }
  std::printf("\n# pairs with IQR < 5ms\t%d/%zu (paper: 67%%+)\n", tight,
              sums.size());
  std::printf("# lowest-median pair\t%.2f ms — the Fig 9 cv outlier "
              "(paper: ~3 ms)\n", sums.front().median);
  return 0;
}
