// Figure 11: CDF of the RTTs in the 50-node all-pairs Ting dataset that
// drives the §5 applications. This bench also *creates* that dataset (a
// real all-pairs Ting measurement), cached for the later figure benches.
//
// Paper shape: consistent with Fig 8's latency distribution — most pairs
// below ~150 ms, a tail to ~400 ms.
#include "bench_common.h"

int main() {
  using namespace ting;
  using namespace ting::bench;
  header("Figure 11", "all-pairs RTT CDF of the 50-node Ting dataset");

  const FiftyNodeDataset ds = fifty_node_dataset();
  const std::vector<double> values = ds.matrix.values();
  print_cdf(Cdf(values), "inter-tor-node-rtt_ms", 40);

  const Summary s = summarize(values);
  std::printf("\n# pairs\t%zu\n", values.size());
  std::printf("# median\t%.1f ms\n", s.median);
  std::printf("# p90\t%.1f ms\n", quantile(values, 0.9));
  std::printf("# max\t%.1f ms (paper: tail to ~400 ms)\n", s.max);
  std::printf("# mean (the mu of Algorithm 1)\t%.1f ms\n", s.mean);
  return 0;
}
