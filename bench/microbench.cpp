// Microbenchmarks (google-benchmark) for the hot primitives under every
// simulated measurement: cell crypto, the sponge hash, X25519, cell codec,
// event-loop scheduling, and end-to-end echo sampling through a circuit.
#include <benchmark/benchmark.h>

#include "cells/cell.h"
#include "cells/relay_payload.h"
#include "crypto/chacha.h"
#include "crypto/hash.h"
#include "crypto/x25519.h"
#include "scenario/testbed.h"
#include "simnet/event_loop.h"
#include "ting/measurer.h"

namespace {

using namespace ting;

void BM_ChaChaCellPayload(benchmark::State& state) {
  crypto::Key key{};
  key.fill(7);
  crypto::Nonce nonce{};
  crypto::ChaChaCipher cipher(key, nonce);
  Bytes payload(cells::kPayloadSize, 0xab);
  for (auto _ : state) {
    cipher.apply(std::span<std::uint8_t>(payload.data(), payload.size()));
    benchmark::DoNotOptimize(payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_ChaChaCellPayload);

void BM_TingHashCellPayload(benchmark::State& state) {
  Bytes payload(cells::kPayloadSize, 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hash(
        std::span<const std::uint8_t>(payload.data(), payload.size())));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_TingHashCellPayload);

void BM_X25519(benchmark::State& state) {
  crypto::X25519Key scalar{};
  scalar.fill(9);
  for (auto _ : state) {
    scalar = crypto::x25519_base(scalar);
    benchmark::DoNotOptimize(scalar);
  }
}
BENCHMARK(BM_X25519);

void BM_CellEncodeDecode(benchmark::State& state) {
  const cells::Cell cell =
      cells::Cell::make(42, cells::CellCommand::kRelay, Bytes(100, 1));
  for (auto _ : state) {
    const Bytes wire = cell.encode();
    benchmark::DoNotOptimize(
        cells::Cell::decode(std::span<const std::uint8_t>(wire.data(),
                                                          wire.size())));
  }
}
BENCHMARK(BM_CellEncodeDecode);

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    simnet::EventLoop loop;
    int fired = 0;
    for (int i = 0; i < 1000; ++i)
      loop.schedule(Duration::micros(i), [&fired]() { ++fired; });
    loop.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EventLoopScheduleRun);

void BM_EventLoopCancelChurn(benchmark::State& state) {
  // The parallel scanner's retry-timer pattern at scale: 1M schedule+cancel
  // rounds against one loop. Regresses badly if cancellation tombstones are
  // never compacted (the old priority_queue grew without bound).
  const int kEvents = 1'000'000;
  for (auto _ : state) {
    simnet::EventLoop loop;
    for (int i = 0; i < kEvents; ++i) {
      const simnet::EventId id =
          loop.schedule(Duration::seconds(3600), []() {});
      loop.cancel(id);
    }
    benchmark::DoNotOptimize(loop.cancelled_tombstones());
    if (loop.pending() != 0) state.SkipWithError("events leaked");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kEvents);
}
BENCHMARK(BM_EventLoopCancelChurn)->Unit(benchmark::kMillisecond);

void relay_cell_round_trip(benchmark::State& state, bool pooled) {
  // The per-cell data plane a relay executes: decode the wire bytes, touch
  // the payload, re-encode, recycle — with and without the Bytes pool that
  // on_cell/handle_relay use.
  pool::set_enabled(pooled);
  cells::Cell cell =
      cells::Cell::make(42, cells::CellCommand::kRelay, Bytes(100, 1));
  Bytes wire = cell.encode();
  for (auto _ : state) {
    cells::Cell c = cells::Cell::decode(
        std::span<const std::uint8_t>(wire.data(), wire.size()));
    c.payload[0] ^= 1;
    Bytes out = c.encode();
    benchmark::DoNotOptimize(out.data());
    pool::recycle(std::move(c.payload));
    pool::recycle(std::move(out));
  }
  pool::set_enabled(true);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_RelayCellRoundTripPooled(benchmark::State& state) {
  relay_cell_round_trip(state, true);
}
BENCHMARK(BM_RelayCellRoundTripPooled);

void BM_RelayCellRoundTripUnpooled(benchmark::State& state) {
  relay_cell_round_trip(state, false);
}
BENCHMARK(BM_RelayCellRoundTripUnpooled);

void BM_TingPairMeasurement(benchmark::State& state) {
  scenario::TestbedOptions options;
  options.seed = 31337;
  scenario::Testbed tb = scenario::planetlab31(options);
  meas::TingConfig cfg;
  cfg.samples = static_cast<int>(state.range(0));
  meas::TingMeasurer measurer(tb.ting(), cfg);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto r = measurer.measure_blocking(tb.fp(i % 31),
                                             tb.fp((i + 7) % 31));
    benchmark::DoNotOptimize(r.rtt_ms);
    ++i;
  }
}
BENCHMARK(BM_TingPairMeasurement)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
