// Figure 13: fraction of nodes implicitly ruled out (never probed, excluded
// purely by the too-large-RTT rules) as a function of the circuit's
// end-to-end RTT.
//
// Paper shape: strong anti-correlation — low-RTT circuits let the attacker
// discard most of the network up front; the highest-RTT circuits gain
// nothing.
#include "bench_common.h"

#include "analysis/deanon.h"

int main() {
  using namespace ting;
  using namespace ting::bench;
  using namespace ting::analysis;
  header("Figure 13", "implicitly ruled-out fraction vs end-to-end RTT");

  const FiftyNodeDataset ds = fifty_node_dataset();
  DeanonWorld world;
  world.nodes = ds.nodes;
  world.matrix = &ds.matrix;

  const int kRuns = scaled(1000, 150);
  Rng circuit_rng(42), probe_rng(43);
  std::vector<double> e2e, ruled_out;
  std::printf("# e2e_rtt_ms\tfraction_ruled_out\n");
  for (int i = 0; i < kRuns; ++i) {
    const CircuitInstance c = sample_circuit(world, circuit_rng, false);
    const DeanonResult r =
        deanonymize(world, c, Strategy::kIgnoreTooLarge, probe_rng);
    e2e.push_back(c.e2e_ms);
    ruled_out.push_back(r.fraction_ruled_out_initially);
    if (i < 250) std::printf("%.1f\t%.3f\n", c.e2e_ms, r.fraction_ruled_out_initially);
  }

  std::printf("\n# pearson(e2e, ruled_out)\t%.3f (paper: strong negative)\n",
              pearson(e2e, ruled_out));
  // Bucketised medians for the trend line.
  std::printf("# e2e bucket -> median ruled-out fraction\n");
  for (double lo = 0; lo < 800; lo += 100) {
    std::vector<double> bucket;
    for (std::size_t k = 0; k < e2e.size(); ++k)
      if (e2e[k] >= lo && e2e[k] < lo + 100) bucket.push_back(ruled_out[k]);
    if (bucket.size() < 3) continue;
    std::printf("%4.0f-%4.0f ms\t%.3f (n=%zu)\n", lo, lo + 100,
                quantile(bucket, 0.5), bucket.size());
  }
  return 0;
}
