// Figure 5: per-relay forwarding-delay distributions measured with the
// §4.3 procedure, using both ICMP (ping) and TCP (tcptraceroute-style)
// probes, repeated across rounds; relays sorted by median ICMP estimate.
//
// Paper shape: ~65% of relays sit tightly in 0–2 ms; the rest are
// "extremely odd", including negative delays — networks that treat ICMP,
// TCP, and Tor traffic differently.
#include "bench_common.h"

#include "ting/forwarding_delay.h"

int main() {
  using namespace ting;
  using namespace ting::bench;
  header("Figure 5",
         "forwarding delays across 31 relays, ICMP- vs TCP-derived");

  scenario::TestbedOptions options;
  options.seed = 405;
  options.differential_fraction = 0.35;  // the paper's anomalous ~35%
  scenario::Testbed tb = scenario::planetlab31(options);

  meas::TingConfig cfg;
  meas::TingMeasurer measurer(tb.ting(), cfg);
  meas::ForwardingDelayEstimator estimator(measurer,
                                           /*probes=*/scaled(60, 20));

  const int rounds = scaled(8, 3);  // paper: hourly over 48 h
  struct PerRelay {
    std::size_t index;
    std::vector<double> icmp, tcp;
    double true_base;
  };
  std::vector<PerRelay> relays;
  for (std::size_t i = 0; i < tb.relay_count(); ++i) {
    PerRelay pr;
    pr.index = i;
    pr.true_base = tb.relay(i).config().base_forward_ms;
    for (int round = 0; round < rounds; ++round) {
      const auto r = estimator.measure_blocking(tb.fp(i));
      if (!r.ok) continue;
      pr.icmp.push_back(r.icmp_based_ms);
      pr.tcp.push_back(r.tcp_based_ms);
    }
    relays.push_back(std::move(pr));
  }

  std::sort(relays.begin(), relays.end(), [](const PerRelay& a,
                                             const PerRelay& b) {
    return quantile(a.icmp, 0.5) < quantile(b.icmp, 0.5);
  });

  std::printf("# rank\ticmp_med\ticmp_p25\ticmp_p75\ttcp_med\ttcp_p25\t"
              "tcp_p75\ttrue_base_ms\n");
  int normal = 0, anomalous = 0;
  for (std::size_t rank = 0; rank < relays.size(); ++rank) {
    const PerRelay& pr = relays[rank];
    const Summary si = summarize(pr.icmp), st = summarize(pr.tcp);
    std::printf("%zu\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n", rank,
                si.median, si.p25, si.p75, st.median, st.p25, st.p75,
                pr.true_base);
    // "Normal": both probe flavours agree and land in the 0–3 ms band.
    const bool ok_band = si.median >= -0.5 && si.median <= 3.0 &&
                         st.median >= -0.5 && st.median <= 3.0 &&
                         std::abs(si.median - st.median) < 1.0;
    ok_band ? ++normal : ++anomalous;
  }
  std::printf("\n# relays with consistent 0-3ms delays\t%d/%zu (paper: ~65%%)\n",
              normal, relays.size());
  std::printf("# relays with anomalous/negative estimates\t%d/%zu (paper: ~35%%)\n",
              anomalous, relays.size());
  return 0;
}
