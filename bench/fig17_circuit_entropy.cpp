// Figure 17: the "entropy" of circuit choice — for each circuit length and
// RTT bin, the median (over nodes) probability that a given node is on a
// circuit whose RTT lands in that bin.
//
// Paper shape: humps peaking at intermediate RTTs; very low values at the
// extremes, where few circuits exist and they reuse few nodes (an attacker
// knowing length + RTT can pare the candidate set).
#include "bench_common.h"

#include "analysis/circuits.h"

int main() {
  using namespace ting;
  using namespace ting::bench;
  using namespace ting::analysis;
  header("Figure 17", "median node-on-circuit probability per RTT bin");

  const FiftyNodeDataset ds = fifty_node_dataset();
  const std::size_t kSamplesPerLength =
      static_cast<std::size_t>(scaled(10000, 2000));
  const double kBin = 50.0;
  const std::size_t kBins = 50;

  Rng rng(17);
  std::vector<CircuitRttHistogram> hists;
  for (std::size_t len = 3; len <= 10; ++len)
    hists.push_back(circuit_rtt_histogram(ds.matrix, ds.nodes, len,
                                          kSamplesPerLength, kBin, kBins,
                                          rng));

  std::printf("# bin_rtt_s");
  for (std::size_t len = 3; len <= 10; ++len) std::printf("\tlen%zu", len);
  std::printf("\n");
  for (std::size_t b = 0; b < kBins; ++b) {
    std::printf("%.2f", (static_cast<double>(b) + 0.5) * kBin / 1000.0);
    for (const auto& h : hists)
      std::printf("\t%.5f", h.median_node_probability[b]);
    std::printf("\n");
  }

  // Each length's hump peaks at its own intermediate RTT, and the peak
  // location grows with length.
  std::printf("\n# peak bin per length (s)\n");
  double prev_peak = 0;
  bool monotone = true;
  for (const auto& h : hists) {
    std::size_t peak = 0;
    for (std::size_t b = 0; b < kBins; ++b)
      if (h.median_node_probability[b] >
          h.median_node_probability[peak])
        peak = b;
    const double peak_s = (static_cast<double>(peak) + 0.5) * kBin / 1000.0;
    std::printf("len%zu\t%.2f\n", h.length, peak_s);
    if (peak_s + 1e-9 < prev_peak) monotone = false;
    prev_peak = peak_s;
  }
  std::printf("# peaks shift right with length\t%s\n",
              monotone ? "yes (paper: yes)" : "no");
  return 0;
}
