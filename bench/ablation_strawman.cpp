// Ablation (§3.2): the strawman estimator — an end-to-end circuit through
// (x, y) corrected with ICMP pings — against Ting, on networks with and
// without protocol-differential treatment. This is the design-choice
// experiment behind Ting's "measure strictly over Tor" rule.
//
// Expected shape: on neutral networks both techniques track truth (the
// strawman still misses forwarding delays); once some networks treat ICMP
// or Tor traffic specially, the strawman's error explodes while Ting's
// stays bounded.
#include "bench_common.h"

int main() {
  using namespace ting;
  using namespace ting::bench;
  header("Ablation", "strawman (circuit + ping) vs Ting under protocol bias");

  const int kPairs = scaled(40, 10);
  const int kSamples = scaled(100, 30);

  // Three worlds: neutral, the testbed's mild 35% anomaly rate, and a
  // "severe" world where a third of networks shape ICMP by tens of
  // milliseconds (the paper observed disparities "on the order of tens of
  // milliseconds" for some networks).
  for (const double differential : {0.0, 0.35, -1.0}) {
    const bool severe = differential < 0;
    scenario::TestbedOptions options;
    options.seed = 777;
    options.differential_fraction = severe ? 0.0 : differential;
    scenario::Testbed tb = scenario::planetlab31(options);
    if (severe) {
      Rng srng(4);
      for (std::size_t i = 0; i < tb.relay_count(); ++i) {
        if (!srng.chance(0.33)) continue;
        simnet::NetworkPolicy p;
        p.icmp_extra_ms = srng.uniform(8.0, 30.0);
        tb.net().latency().set_policy(tb.host_of(tb.fp(i)), p);
      }
    }
    meas::TingConfig cfg;
    cfg.samples = kSamples;
    meas::TingMeasurer measurer(tb.ting(), cfg);

    Rng rng(3);
    std::vector<double> ting_err, straw_err;
    for (int p = 0; p < kPairs; ++p) {
      const auto idx = rng.sample_indices(tb.relay_count(), 2);
      const auto x = tb.fp(idx[0]), y = tb.fp(idx[1]);
      const double truth = tb.net()
                               .latency()
                               .rtt(tb.host_of(x), tb.host_of(y),
                                    simnet::Protocol::kTor)
                               .ms();
      const meas::PairResult t = measurer.measure_blocking(x, y);
      const meas::PairResult s =
          measurer.strawman_measure_blocking(x, y, kSamples);
      if (!t.ok || !s.ok) continue;
      ting_err.push_back(std::abs(t.rtt_ms - truth));
      straw_err.push_back(std::abs(s.rtt_ms - truth));
    }
    if (severe)
      std::printf("\n# severe ICMP shaping on 1/3 of networks (%zu pairs)\n",
                  ting_err.size());
    else
      std::printf("\n# differential_fraction=%.2f (%zu pairs)\n", differential,
                  ting_err.size());
    std::printf("ting    |err| median\t%.2f ms\tp90\t%.2f ms\n",
                quantile(ting_err, 0.5), quantile(ting_err, 0.9));
    std::printf("strawman|err| median\t%.2f ms\tp90\t%.2f ms\n",
                quantile(straw_err, 0.5), quantile(straw_err, 0.9));
  }
  std::printf("\n# conclusion: mixing ping with Tor is unreliable on "
              "networks that\n# treat protocols differently — Ting's "
              "all-Tor design avoids this.\n");
  return 0;
}
