// Scan-engine scaling: virtual time of an all-pairs scan as the parallel
// engine's pool grows — the "parallelizes trivially" observation of §4.5
// quantified. Prints virtual hours and speedup vs the sequential engine for
// K in {1, 2, 4, 8}, plus the engine's admission/retry statistics, and the
// overhead a faulted network (packet loss + consensus churn) adds at K=4.
#include <memory>

#include "bench_common.h"
#include "scenario/faults.h"
#include "simnet/fault_plan.h"
#include "ting/scheduler.h"

int main() {
  using namespace ting;
  using namespace ting::bench;
  header("Scan scaling", "all-pairs virtual time vs pool size K");

  scenario::TestbedOptions options;
  options.seed = 420;
  options.differential_fraction = 0;
  scenario::Testbed tb = scenario::live_tor(
      static_cast<std::size_t>(scaled(40, 25)), options);

  const std::size_t kNodes = static_cast<std::size_t>(scaled(24, 12));
  meas::TingConfig cfg;
  cfg.samples = scaled(100, 20);
  std::vector<dir::Fingerprint> nodes;
  for (std::size_t i = 0; i < std::min(kNodes, tb.relay_count()); ++i)
    nodes.push_back(tb.fp(i));

  meas::TingMeasurer sequential_measurer(tb.ting(), cfg);
  meas::RttMatrix seq_matrix;
  meas::AllPairsScanner sequential(sequential_measurer, seq_matrix);
  const meas::ScanReport seq = sequential.scan(nodes);
  const double seq_hours = seq.virtual_time.sec() / 3600.0;

  std::printf("# nodes\t%zu\tpairs\t%zu\tsamples/circuit\t%d\n", nodes.size(),
              seq.pairs_total, cfg.samples);
  std::printf("# K\tvirtual_hours\tspeedup\tmax_in_flight\tper_relay_peak"
              "\tretries\n");
  std::printf("1\t%.2f\t%.2f\t%zu\t%zu\t%zu\n", seq_hours, 1.0,
              seq.max_in_flight, seq.max_per_relay_in_flight, seq.retries);

  for (const std::size_t k : {2u, 4u, 8u}) {
    std::vector<std::unique_ptr<meas::TingMeasurer>> owned;
    std::vector<meas::TingMeasurer*> pool;
    for (meas::MeasurementHost* host : tb.measurement_pool(k)) {
      owned.push_back(std::make_unique<meas::TingMeasurer>(*host, cfg));
      pool.push_back(owned.back().get());
    }
    meas::RttMatrix matrix;
    meas::ParallelScanner scanner(pool, matrix);
    meas::ParallelScanOptions scan_options;
    scan_options.max_age = Duration::seconds(0);  // always remeasure
    const meas::ScanReport r = scanner.scan(nodes, scan_options);
    const double hours = r.virtual_time.sec() / 3600.0;
    std::printf("%zu\t%.2f\t%.2f\t%zu\t%zu\t%zu\n", k, hours,
                seq_hours / hours, r.max_in_flight,
                r.max_per_relay_in_flight, r.retries);
  }
  std::printf("# engine phase split at K=1: build %.2fh, sample %.2fh\n",
              seq.time_building.sec() / 3600.0,
              seq.time_sampling.sec() / 3600.0);

  // The same K=4 scan under faults: 3% loss everywhere plus two consensus
  // leave/rejoin cycles. Quantifies what the retry/re-resolution machinery
  // costs relative to a clean scan.
  {
    simnet::FaultPlan plan(tb.net());
    scenario::apply_fault_spec(
        scenario::FaultSpec::parse("loss:*:0.03;churn:2:30:60:120"), tb,
        nodes, plan, options.seed);
    std::vector<std::unique_ptr<meas::TingMeasurer>> owned;
    std::vector<meas::TingMeasurer*> pool;
    for (meas::MeasurementHost* host : tb.measurement_pool(4)) {
      owned.push_back(std::make_unique<meas::TingMeasurer>(*host, cfg));
      pool.push_back(owned.back().get());
    }
    meas::RttMatrix matrix;
    meas::ParallelScanner scanner(pool, matrix);
    meas::ParallelScanOptions scan_options;
    scan_options.max_age = Duration::seconds(0);
    scan_options.attempts_per_pair = 6;
    scan_options.live_consensus = &tb.consensus();
    scan_options.churn_requeue_delay = Duration::seconds(20);
    scan_options.fault_plan = &plan;
    const meas::ScanReport r = scanner.scan(nodes, scan_options);
    std::printf("# K=4 under faults (3%% loss, churn): %.2fh, %zu/%zu "
                "measured, retries %zu, churned re-resolved %zu, failures "
                "t/p/c %zu/%zu/%zu\n",
                r.virtual_time.sec() / 3600.0, r.measured, r.pairs_total,
                r.retries, r.churn_reresolved, r.failed_transient,
                r.failed_permanent, r.failed_churned);
  }
  return 0;
}
