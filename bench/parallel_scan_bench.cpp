// Scan-engine scaling: virtual time of an all-pairs scan as the parallel
// engine's pool grows — the "parallelizes trivially" observation of §4.5
// quantified. Prints virtual hours and speedup vs the sequential engine for
// K in {1, 2, 4, 8}, plus the engine's admission/retry statistics, and the
// overhead a faulted network (packet loss + consensus churn) adds at K=4.
//
// A final leg benches the sharded engine's WALL-CLOCK scaling (real threads,
// one world clone per shard): a 50-node all-pairs scan at --shards 1 vs 4,
// verifying the merged matrices are bit-identical, and writes the result as
// machine-readable BENCH_scan.json for CI to archive.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>

#include "bench_common.h"
#include "ting/half_circuit_cache.h"
#include "scenario/faults.h"
#include "scenario/shard_world.h"
#include "simnet/fault_plan.h"
#include "ting/scan_journal.h"
#include "ting/scheduler.h"
#include "ting/sharded_scan.h"

int main() {
  using namespace ting;
  using namespace ting::bench;
  header("Scan scaling", "all-pairs virtual time vs pool size K");

  scenario::TestbedOptions options;
  options.seed = 420;
  options.differential_fraction = 0;
  scenario::Testbed tb = scenario::live_tor(
      static_cast<std::size_t>(scaled(40, 25)), options);

  const std::size_t kNodes = static_cast<std::size_t>(scaled(24, 12));
  meas::TingConfig cfg;
  cfg.samples = scaled(100, 20);
  std::vector<dir::Fingerprint> nodes;
  for (std::size_t i = 0; i < std::min(kNodes, tb.relay_count()); ++i)
    nodes.push_back(tb.fp(i));

  meas::TingMeasurer sequential_measurer(tb.ting(), cfg);
  meas::RttMatrix seq_matrix;
  meas::AllPairsScanner sequential(sequential_measurer, seq_matrix);
  const meas::ScanReport seq = sequential.scan(nodes);
  const double seq_hours = seq.virtual_time.sec() / 3600.0;

  std::printf("# nodes\t%zu\tpairs\t%zu\tsamples/circuit\t%d\n", nodes.size(),
              seq.pairs_total, cfg.samples);
  std::printf("# K\tvirtual_hours\tspeedup\tmax_in_flight\tper_relay_peak"
              "\tretries\n");
  std::printf("1\t%.2f\t%.2f\t%zu\t%zu\t%zu\n", seq_hours, 1.0,
              seq.max_in_flight, seq.max_per_relay_in_flight, seq.retries);

  for (const std::size_t k : {2u, 4u, 8u}) {
    std::vector<std::unique_ptr<meas::TingMeasurer>> owned;
    std::vector<meas::TingMeasurer*> pool;
    for (meas::MeasurementHost* host : tb.measurement_pool(k)) {
      owned.push_back(std::make_unique<meas::TingMeasurer>(*host, cfg));
      pool.push_back(owned.back().get());
    }
    meas::RttMatrix matrix;
    meas::ParallelScanner scanner(pool, matrix);
    meas::ParallelScanOptions scan_options;
    scan_options.max_age = Duration::seconds(0);  // always remeasure
    const meas::ScanReport r = scanner.scan(nodes, scan_options);
    const double hours = r.virtual_time.sec() / 3600.0;
    std::printf("%zu\t%.2f\t%.2f\t%zu\t%zu\t%zu\n", k, hours,
                seq_hours / hours, r.max_in_flight,
                r.max_per_relay_in_flight, r.retries);
  }
  std::printf("# engine phase split at K=1: build %.2fh, sample %.2fh\n",
              seq.time_building.sec() / 3600.0,
              seq.time_sampling.sec() / 3600.0);

  // The same K=4 scan under faults: 3% loss everywhere plus two consensus
  // leave/rejoin cycles. Quantifies what the retry/re-resolution machinery
  // costs relative to a clean scan.
  {
    simnet::FaultPlan plan(tb.net());
    scenario::apply_fault_spec(
        scenario::FaultSpec::parse("loss:*:0.03;churn:2:30:60:120"), tb,
        nodes, plan, options.seed);
    std::vector<std::unique_ptr<meas::TingMeasurer>> owned;
    std::vector<meas::TingMeasurer*> pool;
    for (meas::MeasurementHost* host : tb.measurement_pool(4)) {
      owned.push_back(std::make_unique<meas::TingMeasurer>(*host, cfg));
      pool.push_back(owned.back().get());
    }
    meas::RttMatrix matrix;
    meas::ParallelScanner scanner(pool, matrix);
    meas::ParallelScanOptions scan_options;
    scan_options.max_age = Duration::seconds(0);
    scan_options.attempts_per_pair = 6;
    scan_options.live_consensus = &tb.consensus();
    scan_options.churn_requeue_delay = Duration::seconds(20);
    scan_options.fault_plan = &plan;
    const meas::ScanReport r = scanner.scan(nodes, scan_options);
    std::printf("# K=4 under faults (3%% loss, churn): %.2fh, %zu/%zu "
                "measured, retries %zu, churned re-resolved %zu, failures "
                "t/p/c %zu/%zu/%zu\n",
                r.virtual_time.sec() / 3600.0, r.measured, r.pairs_total,
                r.retries, r.churn_reresolved, r.failed_transient,
                r.failed_permanent, r.failed_churned);
  }

  // ---- measurement-plane optimizations: cache + adaptive + pipeline ---------
  // The ISSUE-4 leg: a 20-node faulted scan on the serial engine (K=1, the
  // paper's own configuration), cold baseline vs all optimizations on.
  // Reports throughput (pairs per virtual hour), the circuits-built ratio,
  // and the worst per-pair estimate deviation the optimizations introduce.
  //
  // Deviation methodology: two independently-evolving faulted scans differ
  // by >1 ms even when BOTH are cold (pair order alone shifts which pairs
  // meet a fault window, and relay load history shifts the attainable
  // minima), so comparing the cold and optimized scans above would measure
  // scan-replay noise, not the optimizations. The deviation leg instead
  // uses the deterministic per-pair replay (ScanOptions::reseed_world, the
  // sharded engine's mechanism): every pair's estimate is a pure function
  // of (world seed, pair_seed, pair), so a cold replay and a
  // cached+adaptive replay differ by exactly what the optimizations change
  // and nothing else.
  double opt_speedup = 0, opt_circuit_ratio = 0, opt_max_dev_ms = 0;
  std::size_t opt_pairs = 0, base_circuits = 0, opt_circuits = 0;
  std::size_t opt_half_hits = 0, opt_samples_saved = 0;
  double base_pairs_per_hour = 0, opt_pairs_per_hour = 0;
  {
    const std::size_t kOptNodes = static_cast<std::size_t>(scaled(20, 8));
    meas::TingConfig base_cfg;
    base_cfg.samples = scaled(200, 20);
    meas::TingConfig opt_cfg = base_cfg;
    opt_cfg.adaptive_samples = true;

    struct Leg {
      meas::RttMatrix matrix;
      meas::ScanReport report;
    };
    const auto run = [&](const meas::TingConfig& cfg, bool optimized) {
      scenario::TestbedOptions wopt;
      wopt.seed = 422;
      wopt.differential_fraction = 0;
      scenario::Testbed world = scenario::live_tor(
          static_cast<std::size_t>(scaled(40, 16)), wopt);
      std::vector<dir::Fingerprint> subset;
      for (std::size_t i = 0; i < std::min(kOptNodes, world.relay_count()); ++i)
        subset.push_back(world.fp(i));
      simnet::FaultPlan plan(world.net());
      scenario::apply_fault_spec(
          scenario::FaultSpec::parse("loss:*:0.03;churn:2:30:60:120"), world,
          subset, plan, wopt.seed);

      meas::TingMeasurer measurer(world.ting(), cfg);
      Leg leg;
      meas::AllPairsScanner scanner(measurer, leg.matrix);
      meas::ScanOptions so;
      so.attempts_per_pair = 6;
      so.live_consensus = &world.consensus();
      so.churn_requeue_delay = Duration::seconds(20);
      so.fault_plan = &plan;
      meas::HalfCircuitCache halves;
      so.half_cache = optimized ? &halves : nullptr;
      so.pipeline_builds = optimized;
      leg.report = scanner.scan(subset, so);
      return leg;
    };

    // Deterministic replay of the same faulted world: strictly serial, one
    // world reseed per probe, so the cold and optimized replays sample
    // identical jitter streams and their difference is purely
    // optimization-induced (see methodology note above).
    const auto run_det = [&](const meas::TingConfig& cfg, bool cached) {
      scenario::TestbedOptions wopt;
      wopt.seed = 422;
      wopt.differential_fraction = 0;
      scenario::Testbed world = scenario::live_tor(
          static_cast<std::size_t>(scaled(40, 16)), wopt);
      std::vector<dir::Fingerprint> subset;
      for (std::size_t i = 0; i < std::min(kOptNodes, world.relay_count()); ++i)
        subset.push_back(world.fp(i));
      simnet::FaultPlan plan(world.net());
      scenario::apply_fault_spec(
          scenario::FaultSpec::parse("loss:*:0.03;churn:2:30:60:120"), world,
          subset, plan, wopt.seed);

      meas::TingMeasurer measurer(world.ting(), cfg);
      Leg leg;
      std::vector<meas::TingMeasurer*> pool{&measurer};
      meas::ParallelScanner scanner(pool, leg.matrix);
      meas::ParallelScanOptions so;
      so.attempts_per_pair = 6;
      so.live_consensus = &world.consensus();
      so.churn_requeue_delay = Duration::seconds(20);
      so.fault_plan = &plan;
      so.reseed_world = [&](std::uint64_t s) { world.reseed_stochastics(s); };
      so.pair_seed = wopt.seed;
      meas::HalfCircuitCache halves;
      so.half_cache = cached ? &halves : nullptr;
      meas::ParallelScanner::PairList pairs;
      for (std::size_t i = 0; i < subset.size(); ++i)
        for (std::size_t j = i + 1; j < subset.size(); ++j)
          pairs.push_back({i, j});
      leg.report = scanner.scan_pairs(subset, pairs, so);
      return leg;
    };

    const Leg base = run(base_cfg, false);
    const Leg opt = run(opt_cfg, true);
    const Leg det_cold = run_det(base_cfg, false);
    const Leg det_opt = run_det(opt_cfg, true);
    const auto pairs_per_hour = [](const meas::ScanReport& r) {
      const double h = r.virtual_time.sec() / 3600.0;
      return h > 0 ? static_cast<double>(r.measured) / h : 0.0;
    };
    base_pairs_per_hour = pairs_per_hour(base.report);
    opt_pairs_per_hour = pairs_per_hour(opt.report);
    opt_speedup =
        base_pairs_per_hour > 0 ? opt_pairs_per_hour / base_pairs_per_hour : 0;
    base_circuits = base.report.circuits_built;
    opt_circuits = opt.report.circuits_built;
    opt_circuit_ratio =
        base_circuits > 0
            ? static_cast<double>(opt_circuits) / static_cast<double>(base_circuits)
            : 0;
    opt_pairs = base.report.pairs_total;
    opt_half_hits = opt.report.half_cache_hits;
    opt_samples_saved = opt.report.samples_saved;
    const std::vector<dir::Fingerprint> measured = det_cold.matrix.nodes();
    for (std::size_t i = 0; i < measured.size(); ++i)
      for (std::size_t j = i + 1; j < measured.size(); ++j) {
        const auto b = det_cold.matrix.rtt(measured[i], measured[j]);
        const auto o = det_opt.matrix.rtt(measured[i], measured[j]);
        if (b.has_value() && o.has_value())
          opt_max_dev_ms = std::max(opt_max_dev_ms, std::abs(*b - *o));
      }

    std::printf("# optimizations at K=1, %zu nodes under faults (cache + "
                "adaptive + pipeline vs cold):\n",
                kOptNodes);
    std::printf("# leg\tpairs/vhour\tcircuits\thalf_hits\tsamples_saved\n");
    std::printf("cold\t%.1f\t%zu\t%zu\t%zu\n", base_pairs_per_hour,
                base_circuits, base.report.half_cache_hits,
                base.report.samples_saved);
    std::printf("opt\t%.1f\t%zu\t%zu\t%zu\n", opt_pairs_per_hour, opt_circuits,
                opt.report.half_cache_hits, opt.report.samples_saved);
    std::printf("# throughput x%.2f, circuits ratio %.2f, max estimate "
                "deviation %.3f ms (deterministic per-pair replay, "
                "cached+adaptive vs cold)\n",
                opt_speedup, opt_circuit_ratio, opt_max_dev_ms);
  }

  // ---- sharded engine: wall-clock scaling + bit-identity --------------------
  {
    scenario::ShardWorldOptions swo;
    swo.relays = static_cast<std::size_t>(scaled(50, 16));
    swo.scan_nodes = swo.relays;  // all-pairs over the whole testbed
    swo.testbed.seed = 421;
    swo.testbed.differential_fraction = 0;
    swo.ting.samples = scaled(100, 20);
    const std::vector<dir::Fingerprint> sharded_nodes =
        scenario::shard_scan_nodes(swo);

    const auto run = [&](std::size_t shards, meas::RttMatrix& m,
                         meas::ScanReport& r) {
      meas::ShardedScanner scanner(scenario::make_testbed_shard_factory(swo));
      meas::ShardedScanOptions so;
      so.shards = shards;
      so.pair_seed = swo.testbed.seed;
      const auto t0 = std::chrono::steady_clock::now();
      r = scanner.scan(sharded_nodes, m, so);
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
          .count();
    };
    meas::RttMatrix m1, m4;
    meas::ScanReport r1, r4;
    const double wall1 = run(1, m1, r1);
    const double wall4 = run(4, m4, r4);
    const bool identical = m1.to_csv() == m4.to_csv();
    const double speedup = wall4 > 0 ? wall1 / wall4 : 0;
    const unsigned cpus = std::thread::hardware_concurrency();

    // Journaling overhead: the identical W=1 scan with the write-ahead
    // journal attached — one fsync'd record per resolved pair and per
    // half-circuit store. Compares wall clock against the unjournaled run
    // above and checks the crash-safety machinery costs no correctness
    // (the journaled matrix must still be bit-identical).
    double wall_journal = 0;
    std::size_t journal_fsyncs = 0, journal_pair_records = 0;
    bool journal_identical = false;
    {
      meas::ScanJournal::Meta jm;
      jm.pair_seed = swo.testbed.seed;
      jm.nodes = sharded_nodes.size();
      meas::ScanJournal journal("BENCH_scan.journal",
                                meas::ScanJournal::Mode::kFresh, jm);
      meas::RttMatrix mj;
      meas::ShardedScanner scanner(scenario::make_testbed_shard_factory(swo));
      meas::ShardedScanOptions so;
      so.shards = 1;
      so.pair_seed = swo.testbed.seed;
      so.journal = &journal;
      const auto t0 = std::chrono::steady_clock::now();
      const meas::ScanReport rj = scanner.scan(sharded_nodes, mj, so);
      wall_journal = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
      journal_fsyncs = journal.fsyncs();
      journal_pair_records = journal.pairs().size();
      journal_identical =
          rj.failed == 0 && mj.to_csv() == m1.to_csv();
      journal.remove_file();
    }
    const double journal_overhead =
        wall1 > 0 ? wall_journal / wall1 : 0;

    // ---- world construction: shared immutable topology vs legacy clones ---
    // Times what the sharded-scan workers pay before the first probe (the
    // quantity ScanReport.world_construct_ms tracks): the legacy path
    // re-derives the full topology (identity keygen, geography, base-RTT
    // table) inside every worker's factory call, the shared path
    // instantiates only the mutable half over a topology the coordinating
    // thread built once — and needed anyway, to derive the scan-node list.
    // The one-time build is reported separately. Fixed at 100 relays /
    // 4 shards regardless of TING_BENCH_SCALE: keygen cost grows with relay
    // count, and the gate needs a stable operating point.
    double legacy_construct_ms = 0, shared_construct_ms = 0;
    double topology_build_ms = 0, construct_speedup = 0, reseed_us = 0;
    const std::size_t kConstructRelays = 100, kConstructShards = 4;
    {
      scenario::ShardWorldOptions cwo;
      cwo.relays = kConstructRelays;
      cwo.scan_nodes = kConstructRelays;
      cwo.testbed.seed = 421;
      cwo.testbed.differential_fraction = 0;

      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t s = 0; s < kConstructShards; ++s)
        scenario::TestbedShardWorld legacy(cwo);
      legacy_construct_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();

      const auto t1 = std::chrono::steady_clock::now();
      const scenario::TopologyPtr topology = scenario::shard_topology(cwo);
      topology_build_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t1)
                              .count();
      const auto t2 = std::chrono::steady_clock::now();
      std::vector<std::unique_ptr<scenario::TestbedShardWorld>> worlds;
      for (std::size_t s = 0; s < kConstructShards; ++s)
        worlds.push_back(
            std::make_unique<scenario::TestbedShardWorld>(cwo, topology));
      shared_construct_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t2)
                                .count();
      construct_speedup = shared_construct_ms > 0
                              ? legacy_construct_ms / shared_construct_ms
                              : 0;

      // Reseed microbench: the deterministic engine reseeds the world before
      // every pair replay, so this is a per-pair cost on the hot path.
      const std::size_t kReseeds = 200;
      const auto t3 = std::chrono::steady_clock::now();
      for (std::size_t n = 0; n < kReseeds; ++n)
        worlds[0]->reseed(0x5eed + n);
      reseed_us = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - t3)
                      .count() /
                  static_cast<double>(kReseeds);
    }

    std::printf("# sharded engine (wall clock, deterministic): %zu nodes, "
                "%zu pairs, %u host cpus\n",
                sharded_nodes.size(), r1.pairs_total, cpus);
    std::printf("# W\twall_seconds\tspeedup\tmeasured\tfailed\n");
    std::printf("1\t%.2f\t%.2f\t%zu\t%zu\n", wall1, 1.0, r1.measured,
                r1.failed);
    std::printf("4\t%.2f\t%.2f\t%zu\t%zu\n", wall4, speedup, r4.measured,
                r4.failed);
    std::printf("# merged matrices bit-identical across W: %s\n",
                identical ? "yes" : "NO");
    std::printf("# journaling overhead at W=1: %.2fs vs %.2fs (x%.3f), "
                "%zu fsyncs, %zu pair records, bit-identical: %s\n",
                wall_journal, wall1, journal_overhead, journal_fsyncs,
                journal_pair_records, journal_identical ? "yes" : "NO");
    std::printf("# world construction (%zu relays x %zu shards): legacy "
                "clones %.1f ms, shared-topology worlds %.1f ms (x%.1f, "
                "one-time topology build %.1f ms), reseed %.1f us; W=4 scan "
                "spent %.1f ms constructing, %zu reseeds\n",
                kConstructRelays, kConstructShards, legacy_construct_ms,
                shared_construct_ms, construct_speedup, topology_build_ms,
                reseed_us, r4.world_construct_ms, r4.reseeds);
    if (cpus < 4)
      std::printf("# (only %u cpu(s) available: wall-clock speedup is "
                  "core-bound, not engine-bound)\n",
                  cpus);

    std::FILE* json = std::fopen("BENCH_scan.json", "w");
    if (json != nullptr) {
      std::fprintf(
          json,
          "{\n"
          "  \"benchmark\": \"sharded_scan\",\n"
          "  \"nodes\": %zu,\n"
          "  \"pairs\": %zu,\n"
          "  \"samples_per_circuit\": %d,\n"
          "  \"host_cpus\": %u,\n"
          "  \"shards_1_wall_s\": %.3f,\n"
          "  \"shards_4_wall_s\": %.3f,\n"
          "  \"speedup_4_vs_1\": %.3f,\n"
          "  \"bit_identical\": %s,\n"
          "  \"measured\": %zu,\n"
          "  \"failed\": %zu,\n"
          "  \"optimizations\": {\n"
          "    \"leg\": \"20-node faulted scan at K=1, cold vs "
          "cache+adaptive+pipeline\",\n"
          "    \"pairs\": %zu,\n"
          "    \"baseline_pairs_per_vhour\": %.2f,\n"
          "    \"optimized_pairs_per_vhour\": %.2f,\n"
          "    \"throughput_speedup\": %.3f,\n"
          "    \"baseline_circuits_built\": %zu,\n"
          "    \"optimized_circuits_built\": %zu,\n"
          "    \"circuits_built_ratio\": %.3f,\n"
          "    \"half_cache_hits\": %zu,\n"
          "    \"samples_saved\": %zu,\n"
          "    \"max_estimate_deviation_ms\": %.4f,\n"
          "    \"deviation_method\": \"deterministic per-pair replay "
          "(reseed_world): cached+adaptive vs cold on identical jitter "
          "streams\"\n"
          "  },\n"
          "  \"journaling\": {\n"
          "    \"leg\": \"W=1 sharded scan, write-ahead journal on vs off\",\n"
          "    \"wall_off_s\": %.3f,\n"
          "    \"wall_on_s\": %.3f,\n"
          "    \"overhead_ratio\": %.3f,\n"
          "    \"fsyncs\": %zu,\n"
          "    \"pair_records\": %zu,\n"
          "    \"bit_identical_with_journal\": %s\n"
          "  },\n"
          "  \"world_construction\": {\n"
          "    \"leg\": \"%zu-relay topology x %zu shard worlds, legacy "
          "clone-per-shard vs shared immutable topology\",\n"
          "    \"relays\": %zu,\n"
          "    \"shards\": %zu,\n"
          "    \"legacy_clone_ms\": %.3f,\n"
          "    \"shared_topology_ms\": %.3f,\n"
          "    \"topology_build_once_ms\": %.3f,\n"
          "    \"construct_speedup\": %.3f,\n"
          "    \"reseed_us\": %.3f,\n"
          "    \"scan_w4_construct_ms\": %.3f,\n"
          "    \"scan_w4_reseeds\": %zu\n"
          "  }\n"
          "}\n",
          sharded_nodes.size(), r1.pairs_total, swo.ting.samples, cpus, wall1,
          wall4, speedup, identical ? "true" : "false", r4.measured, r4.failed,
          opt_pairs, base_pairs_per_hour, opt_pairs_per_hour, opt_speedup,
          base_circuits, opt_circuits, opt_circuit_ratio, opt_half_hits,
          opt_samples_saved, opt_max_dev_ms, wall1, wall_journal,
          journal_overhead, journal_fsyncs, journal_pair_records,
          journal_identical ? "true" : "false", kConstructRelays,
          kConstructShards, kConstructRelays, kConstructShards,
          legacy_construct_ms, shared_construct_ms, topology_build_ms,
          construct_speedup, reseed_us, r4.world_construct_ms, r4.reseeds);
      std::fclose(json);
      std::printf("# wrote BENCH_scan.json\n");
    }
  }
  return 0;
}
