// Figure 18: total running relays and unique /24 prefixes over the
// Feb 28 – Apr 28 2015 window, plus the §5.3 residential/datacenter
// classification of the final consensus.
//
// Paper headline: 5426–6044 unique /24s throughout; ~61% of relays with an
// rDNS name classify as residential; 361 at named hosting sites plus 345 in
// Digital Ocean's ranges.
#include "bench_common.h"

#include "analysis/coverage.h"
#include "scenario/timeline.h"

int main() {
  using namespace ting;
  using namespace ting::bench;
  header("Figure 18", "relays and unique /24s over two months");

  scenario::TimelineOptions options;
  options.days = 60;
  options.initial_relays = static_cast<std::size_t>(scaled(6400, 1000));
  const scenario::ConsensusTimeline tl = scenario::make_timeline(options);

  std::printf("# date\ttotal_relays\tunique_slash24\n");
  for (const auto& d : tl.days)
    std::printf("%s\t%zu\t%zu\n", d.date.c_str(), d.total_relays,
                d.unique_slash24);

  std::size_t min24 = SIZE_MAX, max24 = 0;
  for (const auto& d : tl.days) {
    min24 = std::min(min24, d.unique_slash24);
    max24 = std::max(max24, d.unique_slash24);
  }
  std::printf("\n# unique /24 range over the window\t%zu-%zu "
              "(paper: 5426-6044)\n", min24, max24);
  std::printf("# net relay growth\t%+.1f%% (paper: ~30%%/year)\n",
              100.0 * (static_cast<double>(tl.days.back().total_relays) /
                           static_cast<double>(tl.days.front().total_relays) -
                       1.0));

  // ---- §5.3 classification of the final consensus -------------------------
  const analysis::CoverageStats stats =
      analysis::coverage_stats(tl.final_consensus);
  std::printf("\n# §5.3 host-type classification (final day)\n");
  std::printf("total relays\t%zu\n", stats.total_relays);
  std::printf("with rDNS name\t%zu (%.0f%%)\n", stats.with_rdns,
              100.0 * static_cast<double>(stats.with_rdns) /
                  static_cast<double>(stats.total_relays));
  std::printf("residential (of named)\t%zu (%.0f%%; paper: ~61%%)\n",
              stats.residential, 100.0 * stats.residential_fraction_of_named());
  std::printf("datacenter-named\t%zu (paper: 361 named + 345 DO)\n",
              stats.datacenter_named);
  std::printf("unclassified named\t%zu\n", stats.unclassified_named);
  std::printf("countries represented\t%zu (paper: 77)\n", stats.countries);
  return 0;
}
