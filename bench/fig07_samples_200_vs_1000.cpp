// Figure 7: accuracy CDF (estimate/real) taking 200 samples per circuit vs
// 1000 — the justification for Ting's 200-sample default.
//
// Paper shape: the two CDFs are almost identical.
#include "bench_common.h"

int main() {
  using namespace ting;
  using namespace ting::bench;
  header("Figure 7", "200-sample vs 1000-sample accuracy on 465 pairs");

  const auto rows = planetlab_accuracy_dataset();
  std::vector<double> ratio_hi, ratio_200;
  for (const auto& r : rows) {
    ratio_hi.push_back(r.ting_1000_ms / r.ping_ms);
    ratio_200.push_back(r.ting_200_ms / r.ping_ms);
  }

  std::printf("\n# series 1000 samples\n");
  print_cdf(Cdf(ratio_hi), "estimated/real", 30);
  std::printf("\n# series 200 samples\n");
  print_cdf(Cdf(ratio_200), "estimated/real", 30);

  // How far apart are the two CDFs?
  const double ks = ks_distance(Cdf(ratio_hi), Cdf(ratio_200));
  std::printf("\n# max CDF gap (KS distance)\t%.4f (paper: \"almost "
              "identical\")\n", ks);
  std::printf("# median ratio 1000 vs 200\t%.4f vs %.4f\n",
              quantile(ratio_hi, 0.5), quantile(ratio_200, 0.5));
  return 0;
}
