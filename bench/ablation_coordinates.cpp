// Ablation (§2): direct measurement (Ting) vs a Vivaldi coordinate
// embedding fit on the same data — the quantitative version of the paper's
// argument that "estimation systems offer considerably greater coverage
// than Ting ... but suffer from the fact that Internet latencies are
// inherently difficult to estimate accurately, e.g., due to triangle
// inequality violations", and §5.2.1's "Distances do not violate the
// triangle inequality, while Tor often does."
#include "bench_common.h"

#include "analysis/coordinates.h"
#include "analysis/tiv.h"

int main() {
  using namespace ting;
  using namespace ting::bench;
  using namespace ting::analysis;
  header("Ablation", "Ting direct measurement vs Vivaldi coordinates");

  const FiftyNodeDataset ds = fifty_node_dataset();

  for (const double fraction : {1.0, 0.3, 0.1}) {
    VivaldiSystem vivaldi;
    Rng rng(2);
    vivaldi.fit(ds.matrix, ds.nodes, rng, fraction);
    const auto errs = vivaldi.relative_errors(ds.matrix);
    std::printf("\n# vivaldi fit on %.0f%% of pairs: relative error "
                "median %.1f%%, p90 %.1f%%\n",
                100 * fraction, 100 * quantile(errs, 0.5),
                100 * quantile(errs, 0.9));
  }
  std::printf("# ting direct measurement: error vs its own dataset is zero "
              "by construction;\n# vs ground truth it is the Fig 3 "
              "distribution (~80%% of pairs within 10%%).\n");

  // The TIV blind spot: every detour the measured matrix exposes is
  // invisible to the embedding.
  const auto true_tivs = find_all_tivs(ds.matrix);
  VivaldiSystem vivaldi;
  Rng rng(3);
  vivaldi.fit(ds.matrix, ds.nodes, rng, 1.0);
  meas::RttMatrix estimated;
  for (std::size_t i = 0; i < ds.nodes.size(); ++i)
    for (std::size_t j = i + 1; j < ds.nodes.size(); ++j)
      estimated.set(ds.nodes[i], ds.nodes[j],
                    vivaldi.estimate_ms(ds.nodes[i], ds.nodes[j]));
  const auto embedded_tivs = find_all_tivs(estimated);
  std::size_t significant = 0;
  for (const auto& t : embedded_tivs)
    if (t.savings() > 1e-6) ++significant;
  std::printf("\n# TIVs in the measured matrix\t%zu\n", true_tivs.size());
  std::printf("# TIVs expressible by the embedding\t%zu (a metric space "
              "cannot violate the triangle inequality)\n", significant);
  std::printf("\n# conclusion: coordinates trade accuracy for coverage and "
              "are structurally\n# blind to the TIV detours that §5.2 "
              "exploits — direct measurement is necessary.\n");
  return 0;
}
