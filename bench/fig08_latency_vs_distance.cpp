// Figure 8: Ting-measured RTT vs geolocation-derived great-circle distance
// for random pairs of live relays, with the (2/3)c bound, our linear fit,
// and the Htrae reference line; marginal CDFs of both axes.
//
// Paper shape: a cloud above the (2/3)c line with a handful of points below
// it (geolocation-database errors); a linear fit between the bound and the
// Htrae (median-latency) line.
#include "bench_common.h"

#include "geo/geo.h"

namespace {
/// Htrae's reported median-latency fit (Agarwal & Lorch, SIGCOMM 2009),
/// embedded as the published reference line the paper plots.
double htrae_ms(double km) { return 0.022 * km + 31.0; }
}  // namespace

int main() {
  using namespace ting;
  using namespace ting::bench;
  header("Figure 8", "Ting RTT vs great-circle distance on live pairs");

  scenario::TestbedOptions options;
  options.seed = 408;
  const std::size_t n_relays = static_cast<std::size_t>(scaled(600, 100));
  scenario::Testbed tb = scenario::live_tor(n_relays, options);

  const int kPairs = scaled(10000, 400) / 4;  // 2500 pairs at scale 1
  meas::TingConfig cfg;
  cfg.samples = scaled(50, 15);
  meas::TingMeasurer measurer(tb.ting(), cfg);

  Rng rng(9);
  std::vector<double> dists_km, rtts_ms;
  int below_speed_of_light = 0, geoloc_errors_among_them = 0;
  std::printf("# distance_km\trtt_ms\n");
  for (int p = 0; p < kPairs; ++p) {
    const auto idx = rng.sample_indices(tb.relay_count(), 2);
    const auto x = tb.fp(idx[0]), y = tb.fp(idx[1]);
    const meas::PairResult r = measurer.measure_blocking(x, y);
    if (!r.ok) continue;
    // Distance per the (noisy) geolocation service, as the paper did.
    const auto gx = tb.geolocation().lookup(tb.net().ip_of(tb.host_of(x)));
    const auto gy = tb.geolocation().lookup(tb.net().ip_of(tb.host_of(y)));
    if (!gx.has_value() || !gy.has_value()) continue;
    const double km = geo::great_circle_km(*gx, *gy);
    dists_km.push_back(km);
    rtts_ms.push_back(r.rtt_ms);
    if (r.rtt_ms < geo::min_rtt_ms_for_distance(km)) {
      ++below_speed_of_light;
      // Was the *true* geometry also superluminal? (It never is — points
      // below the line are geolocation errors, as the paper observes.)
      const auto tx = tb.geolocation().ground_truth(
          tb.net().ip_of(tb.host_of(x)));
      const auto ty = tb.geolocation().ground_truth(
          tb.net().ip_of(tb.host_of(y)));
      const double true_km = geo::great_circle_km(*tx, *ty);
      if (geo::great_circle_km(*gx, *gy) > true_km ||
          r.rtt_ms >= geo::min_rtt_ms_for_distance(true_km))
        ++geoloc_errors_among_them;
    }
    if (p < 400) std::printf("%.0f\t%.2f\n", km, r.rtt_ms);  // scatter sample
  }

  const LinearFit fit = linear_fit(dists_km, rtts_ms);
  std::printf("\n# pairs measured\t%zu\n", rtts_ms.size());
  std::printf("# linear fit\trtt_ms = %.4f * km + %.2f (r2=%.3f)\n",
              fit.slope, fit.intercept, fit.r2);
  std::printf("# (2/3)c bound\trtt_ms = %.4f * km\n",
              geo::min_rtt_ms_for_distance(1.0));
  std::printf("# Htrae reference\trtt_ms = 0.0220 * km + 31.0\n");
  std::printf("# fit sits between the bound and Htrae\t%s\n",
              (fit.slope > geo::min_rtt_ms_for_distance(1.0) &&
               quantile(rtts_ms, 0.5) < htrae_ms(quantile(dists_km, 0.5)))
                  ? "yes (paper: yes — Htrae reports medians, Ting minima)"
                  : "NO — check model");
  std::printf("# points below (2/3)c\t%d of %zu (paper: a handful)\n",
              below_speed_of_light, rtts_ms.size());
  std::printf("# ...attributable to geolocation error\t%d\n",
              geoloc_errors_among_them);

  std::printf("\n# marginal CDF: distance_km\n");
  print_cdf(Cdf(dists_km), "km", 20);
  std::printf("\n# marginal CDF: rtt_ms\n");
  print_cdf(Cdf(rtts_ms), "ms", 20);

  // ---- the paper's speculation about international links ------------------
  // "We speculate that this is evidence that, at least for international
  // circuits, Tor traffic is being treated differently." Enable the model's
  // cross-border inflation and split the fit by domestic/international:
  // the international slope should exceed the domestic one, steepening the
  // overall fit exactly as Fig 8's surge between 5000-10000 km suggests.
  {
    scenario::TestbedOptions intl = options;
    intl.seed = options.seed + 1;
    intl.latency.cross_group_extra_min = 0.10;
    intl.latency.cross_group_extra_max = 0.45;
    scenario::Testbed tb2 = scenario::live_tor(200, intl);
    std::vector<double> dom_km, dom_ms, int_km, int_ms;
    for (std::size_t i = 0; i < tb2.relay_count(); ++i) {
      for (std::size_t j = i + 1; j < tb2.relay_count(); ++j) {
        const auto hx = tb2.host_of(tb2.fp(i)), hy = tb2.host_of(tb2.fp(j));
        const double km = geo::great_circle_km(
            tb2.net().latency().location(hx), tb2.net().latency().location(hy));
        if (km < 50) continue;
        const double ms =
            tb2.net().latency().rtt(hx, hy, simnet::Protocol::kTor).ms();
        const bool domestic = tb2.net().latency().group_tag(hx) ==
                              tb2.net().latency().group_tag(hy);
        (domestic ? dom_km : int_km).push_back(km);
        (domestic ? dom_ms : int_ms).push_back(ms);
      }
    }
    const LinearFit dom = linear_fit(dom_km, dom_ms);
    const LinearFit intl_fit = linear_fit(int_km, int_ms);
    std::printf("\n# international-links variant (cross-border inflation on)\n");
    std::printf("# domestic fit\trtt_ms = %.4f * km + %.2f (%zu pairs)\n",
                dom.slope, dom.intercept, dom_km.size());
    std::printf("# international fit\trtt_ms = %.4f * km + %.2f (%zu pairs)\n",
                intl_fit.slope, intl_fit.intercept, int_km.size());
    std::printf("# international slope steeper\t%s (paper: speculated yes)\n",
                intl_fit.slope > dom.slope ? "yes" : "no");
  }
  return 0;
}
