// Serving-layer throughput: path-selection queries answered concurrently
// with a live scan daemon publishing fresh snapshots every epoch.
//
// The daemon from daemon_bench runs against a churning testbed consensus;
// its checkpoint hook publishes each epoch's matrix into a PathServer
// (incremental detour-index patching when the changed set is small). While
// it runs, reader threads hammer the server with the §5 query mix — direct
// RTT, best TIV detour, fastest-k through a relay, band candidates — and we
// report queries/sec sustained *during* publication, then again against the
// quiescent final state. Writes BENCH_serve.json for CI to gate (floor:
// 10k concurrent queries/sec; see tools/bench_compare.py gate-serve).
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "scenario/daemon_world.h"
#include "serve/path_server.h"
#include "ting/daemon.h"
#include "util/rng.h"

namespace {

using namespace ting;

/// One pass of the mixed query workload against whatever state is current.
/// Returns the number of queries issued (0 while the server has nothing
/// published yet). The mix leans on the O(1)/O(log n) queries the way a
/// client population would, with an occasional fastest-k enumeration.
std::size_t query_round(const serve::PathServer& server, Rng& rng) {
  const auto st = server.state();
  if (st == nullptr) return 0;
  const auto& nodes = st->snapshot.nodes();
  if (nodes.size() < 2) return 0;
  const auto pick = [&] {
    return nodes[static_cast<std::size_t>(rng.next_below(nodes.size()))];
  };
  std::size_t issued = 0;
  const dir::Fingerprint a = pick();
  const dir::Fingerprint b = pick();
  (void)server.rtt(a, b);
  ++issued;
  (void)server.best_detour(a, b);
  ++issued;
  if (rng.chance(0.25)) {
    (void)server.circuits_in_band(3, 50.0, 250.0, 3);
    ++issued;
  }
  if (rng.chance(0.05)) {
    (void)server.fastest_through(a, 3);
    ++issued;
  }
  return issued;
}

}  // namespace

int main() {
  using namespace ting;
  using namespace ting::bench;
  header("Path server", "query throughput concurrent with daemon epochs");

  scenario::DaemonWorldOptions wo;
  wo.relays = static_cast<std::size_t>(scaled(60, 20));
  wo.testbed.seed = 432;
  wo.testbed.differential_fraction = 0;
  wo.ting.samples = scaled(50, 10);
  wo.churn.seed = 433;
  wo.churn.churn_rate = 0.05;
  wo.churn.rejoin_rate = 0.5;
  wo.churn.initially_absent = 0.1;
  scenario::TestbedDaemonEnvironment env(wo);

  meas::DaemonOptions d;
  d.epochs = static_cast<std::size_t>(scaled(6, 3));
  d.out = "BENCH_serve.tingmx";
  d.seed = 432;
  d.config_tag = "serve-bench";

  serve::ServeOptions so;
  so.candidates_per_length = static_cast<std::size_t>(scaled(1000, 200));
  so.seed = d.seed;
  serve::PathServer server(so);

  std::printf("# relays %zu, %.0f%% churn/epoch, %zu epochs, "
              "%zu candidates/length\n",
              wo.relays, wo.churn.churn_rate * 100, d.epochs,
              so.candidates_per_length);

  // Concurrent-phase bookkeeping: the readers only count queries issued
  // after the first publish, and the wall clock for the throughput figure
  // starts there too — before that there is nothing to serve.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> concurrent_queries{0};
  std::atomic<std::int64_t> first_publish_ns{0};
  const auto bench_t0 = std::chrono::steady_clock::now();
  const auto ns_since_start = [&bench_t0] {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - bench_t0)
        .count();
  };

  d.on_checkpoint = [&](const meas::SparseRttMatrix& m,
                        const std::vector<dir::Fingerprint>&,
                        const std::vector<dir::Fingerprint>& changed,
                        const meas::EpochStats& s) {
    const auto t_pub = std::chrono::steady_clock::now();
    server.publish(m, s.epoch,
                   meas::ScanDaemon::epoch_clock(d.epoch_interval, s.epoch),
                   changed);
    const double pub_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t_pub)
                              .count();
    std::int64_t expected = 0;
    first_publish_ns.compare_exchange_strong(expected, ns_since_start());
    const auto st = server.state();
    std::printf("%zu\t%zu\t%zu\t%.4f\t%zu\t%.2f\n", s.epoch,
                st->snapshot.node_count(), st->snapshot.pair_count(),
                st->snapshot.coverage(), changed.size(), pub_ms);
  };

  const unsigned kReaders = 2;
  std::vector<std::thread> readers;
  for (unsigned r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(1000 + r);
      std::uint64_t mine = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t got = query_round(server, rng);
        if (got == 0) {
          std::this_thread::yield();
          continue;
        }
        mine += got;
      }
      concurrent_queries.fetch_add(mine, std::memory_order_relaxed);
    });
  }

  std::printf("# epoch\tnodes\tpairs\tcoverage\tchanged\tpublish_ms\n");
  meas::ScanDaemon daemon(env, d);
  const meas::DaemonReport report = daemon.run();
  const std::int64_t end_ns = ns_since_start();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  const std::int64_t served_ns = end_ns - first_publish_ns.load();
  const double concurrent_wall_s =
      served_ns > 0 ? static_cast<double>(served_ns) * 1e-9 : 0;
  const double concurrent_qps =
      concurrent_wall_s > 0
          ? static_cast<double>(concurrent_queries.load()) / concurrent_wall_s
          : 0;
  std::printf("# %" PRIu64 " publishes; %" PRIu64
              " queries in %.2fs concurrent with the daemon — %.0f q/s\n",
              server.publishes(), concurrent_queries.load(), concurrent_wall_s,
              concurrent_qps);

  // ---- quiescent throughput: same mix, final state, no writer ------------
  const std::uint64_t post_target =
      static_cast<std::uint64_t>(scaled(200000, 20000));
  Rng post_rng(77);
  std::uint64_t post_queries = 0;
  const auto t_post = std::chrono::steady_clock::now();
  while (post_queries < post_target)
    post_queries += query_round(server, post_rng);
  const double post_wall_s = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t_post)
                                 .count();
  const double post_qps =
      post_wall_s > 0 ? static_cast<double>(post_queries) / post_wall_s : 0;
  std::printf("# quiescent: %" PRIu64 " queries in %.2fs — %.0f q/s\n",
              post_queries, post_wall_s, post_qps);

  const auto st = server.state();
  const double coverage = st != nullptr ? st->snapshot.coverage() : 0;
  const double tiv_fraction = st != nullptr ? st->detours.tiv_fraction() : 0;
  const std::size_t node_count = st != nullptr ? st->snapshot.node_count() : 0;

  std::FILE* json = std::fopen("BENCH_serve.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"benchmark\": \"path_server\",\n"
                 "  \"relays\": %zu,\n"
                 "  \"epochs\": %zu,\n"
                 "  \"publishes\": %" PRIu64 ",\n"
                 "  \"nodes_served\": %zu,\n"
                 "  \"final_coverage\": %.4f,\n"
                 "  \"tiv_fraction\": %.4f,\n"
                 "  \"reader_threads\": %u,\n"
                 "  \"concurrent_queries\": %" PRIu64 ",\n"
                 "  \"concurrent_wall_s\": %.3f,\n"
                 "  \"concurrent_queries_per_sec\": %.0f,\n"
                 "  \"quiescent_queries\": %" PRIu64 ",\n"
                 "  \"quiescent_wall_s\": %.3f,\n"
                 "  \"quiescent_queries_per_sec\": %.0f\n"
                 "}\n",
                 wo.relays, d.epochs, server.publishes(), node_count, coverage,
                 tiv_fraction, kReaders, concurrent_queries.load(),
                 concurrent_wall_s, concurrent_qps, post_queries, post_wall_s,
                 post_qps);
    std::fclose(json);
    std::printf("# wrote BENCH_serve.json\n");
  }
  return report.converged && server.publishes() > 0 ? 0 : 1;
}
