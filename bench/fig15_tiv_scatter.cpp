// Figure 15: TIV detour RTT vs the default (direct) path RTT, with the
// y = x and 30%-decrease reference lines.
//
// Paper shape: TIV-capable pairs are spread across the whole RTT range, not
// confined to slow or fast paths; most points sit just below y = x with a
// minority of deep detours.
#include "bench_common.h"

#include "analysis/tiv.h"

int main() {
  using namespace ting;
  using namespace ting::bench;
  using namespace ting::analysis;
  header("Figure 15", "TIV detour RTT vs default-path RTT");

  const FiftyNodeDataset ds = fifty_node_dataset();
  const auto tivs = find_all_tivs(ds.matrix);

  std::printf("# default_rtt_ms\tdetour_rtt_ms\n");
  for (const auto& t : tivs)
    std::printf("%.1f\t%.1f\n", t.direct_ms, t.detour_ms);

  // Spread of TIV-capable pairs across RTT quartiles of the full dataset.
  const Cdf all_rtts(ds.matrix.values());
  int per_quartile[4] = {0, 0, 0, 0};
  for (const auto& t : tivs) {
    const double q = all_rtts.fraction_at_or_below(t.direct_ms);
    per_quartile[std::min(3, static_cast<int>(q * 4))]++;
  }
  std::printf("\n# TIV-capable pairs per direct-RTT quartile\t%d/%d/%d/%d "
              "(paper: spread across the range)\n",
              per_quartile[0], per_quartile[1], per_quartile[2],
              per_quartile[3]);
  int deep = 0;
  for (const auto& t : tivs)
    if (t.savings() >= 0.30) ++deep;
  std::printf("# detours below the 30%%-decrease line\t%d of %zu\n", deep,
              tivs.size());
  return 0;
}
