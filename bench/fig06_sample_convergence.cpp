// Figure 6: how many samples it takes to reach the minimum of 1000 (and
// approximations of it) when measuring live pairs — the Jansen et al.
// observation revisited.
//
// Paper shape: the exact minimum needs many samples, but "within 1 ms"
// needs roughly 25x fewer at the median; also quotes ~2.5 min/pair at 200
// samples vs <15 s at looser tolerance (virtual-time equivalents printed).
#include <algorithm>

#include "bench_common.h"

int main() {
  using namespace ting;
  using namespace ting::bench;
  header("Figure 6",
         "samples needed to approximate the min-of-1000 Ting estimate");

  scenario::TestbedOptions options;
  options.seed = 406;
  scenario::Testbed tb = scenario::live_tor(120, options);

  const int kSamples = scaled(1000, 200);
  const int kPairs = scaled(100, 20);
  meas::TingConfig cfg;
  cfg.samples = kSamples;
  cfg.keep_raw_samples = true;
  meas::TingMeasurer measurer(tb.ting(), cfg);

  Rng rng(5);
  struct Need {
    int exact = 0, within_1ms = 0, within_1pct = 0, within_5pct = 0,
        within_10pct = 0;
  };
  std::vector<Need> needs;
  std::vector<double> virtual_secs_200;

  for (int p = 0; p < kPairs; ++p) {
    const auto idx = rng.sample_indices(tb.relay_count(), 2);
    const meas::PairResult r =
        measurer.measure_blocking(tb.fp(idx[0]), tb.fp(idx[1]));
    if (!r.ok) continue;
    // Track the raw RTT samples of the full circuit C_xy, as Jansen et al.
    // (and the paper) do: how long until a sample approaches the eventual
    // minimum of all 1000?
    const std::vector<double>& samples = r.cxy.raw_samples_ms;
    const double final_min =
        *std::min_element(samples.begin(), samples.end());
    Need need;
    auto first_k_within = [&](double tolerance_ms) {
      double running = 1e18;
      for (int k = 1; k <= kSamples; ++k) {
        running = std::min(running, samples[static_cast<std::size_t>(k - 1)]);
        if (running - final_min <= tolerance_ms) return k;
      }
      return kSamples;
    };
    need.exact = first_k_within(1e-9);
    need.within_1ms = first_k_within(1.0);
    need.within_1pct = first_k_within(0.01 * final_min);
    need.within_5pct = first_k_within(0.05 * final_min);
    need.within_10pct = first_k_within(0.10 * final_min);
    needs.push_back(need);
    // Virtual measurement cost scales with sample count.
    virtual_secs_200.push_back(r.wall_time.sec() * 200.0 / kSamples);
  }

  auto cdf_of = [&](auto member) {
    std::vector<double> v;
    for (const Need& n : needs) v.push_back(n.*member);
    return Cdf(v);
  };
  struct Series {
    const char* label;
    int Need::*member;
  };
  const Series series[] = {{"measured_min", &Need::exact},
                           {"within_1ms", &Need::within_1ms},
                           {"within_1pct", &Need::within_1pct},
                           {"within_5pct", &Need::within_5pct},
                           {"within_10pct", &Need::within_10pct}};
  for (const Series& s : series) {
    const Cdf cdf = cdf_of(s.member);
    std::printf("\n# series %s (cumulative tings -> fraction of pairs)\n",
                s.label);
    print_cdf(cdf, "samples", 25);
    std::printf("# median\t%.0f\n", cdf.value_at(0.5));
  }

  const Cdf exact = cdf_of(&Need::exact);
  const Cdf ms1 = cdf_of(&Need::within_1ms);
  std::printf("\n# median samples, exact vs within-1ms\t%.0f vs %.0f "
              "(paper: ~25x fewer for 1ms)\n",
              exact.value_at(0.5), ms1.value_at(0.5));
  std::printf("# median virtual time per pair at 200 samples\t%.1f s "
              "(paper wall-clock: ~150 s)\n",
              quantile(virtual_secs_200, 0.5));
  return 0;
}
