// Shared plumbing for the figure-regeneration benches.
//
// Every bench prints the same series the corresponding paper figure plots
// (tab-separated, gnuplot-ready), plus the headline statistics the paper
// quotes in prose, so EXPERIMENTS.md can record paper-vs-measured.
//
// Expensive datasets (the 465-pair PlanetLab accuracy run, the 50-node
// all-pairs Ting matrix) are computed once and cached as CSV files in the
// working directory; later benches in the sweep reload them. Delete the
// *.csv files (or set TING_BENCH_FRESH=1) to force remeasurement.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "scenario/testbed.h"
#include "ting/measurer.h"
#include "ting/rtt_matrix.h"
#include "util/stats.h"

namespace ting::bench {

/// TING_BENCH_SCALE scales sample counts / pair counts (default 1.0).
inline double scale() {
  const char* s = std::getenv("TING_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

inline int scaled(int n, int floor_value = 1) {
  const int v = static_cast<int>(static_cast<double>(n) * scale());
  return v < floor_value ? floor_value : v;
}

inline bool fresh_requested() {
  const char* s = std::getenv("TING_BENCH_FRESH");
  return s != nullptr && s[0] == '1';
}

inline void header(const std::string& figure, const std::string& what) {
  std::printf("# %s — %s\n", figure.c_str(), what.c_str());
}

inline void print_cdf(const Cdf& cdf, const std::string& x_label,
                      std::size_t max_rows = 40) {
  std::printf("# %s\tcum_fraction\n", x_label.c_str());
  std::fputs(cdf.gnuplot_rows(max_rows).c_str(), stdout);
}

// ---- cached PlanetLab accuracy dataset (feeds Figs 3, 4, 7) ----------------

struct AccuracyRow {
  std::size_t i = 0, j = 0;      ///< relay indices in the testbed
  double ting_1000_ms = 0;       ///< Ting estimate, high-sample arm
  double ting_200_ms = 0;        ///< Ting estimate, 200-sample arm
  double ping_ms = 0;            ///< min of 100 pings x->y ("real")
  double truth_ms = 0;           ///< simulator ground truth (Tor class)
};

inline const char* kAccuracyCachePath = "ting_planetlab_accuracy.csv";

/// Compute (or reload) the all-pairs PlanetLab accuracy dataset. The
/// high-sample arm uses `hi_samples` (paper: 1000; scaled by
/// TING_BENCH_SCALE), the low arm 200.
std::vector<AccuracyRow> planetlab_accuracy_dataset();

// ---- cached 50-node live-Tor Ting matrix (feeds Figs 11–17) ----------------

inline const char* kFiftyNodeCachePath = "ting_50node_matrix.csv";

struct FiftyNodeDataset {
  meas::RttMatrix matrix;
  std::vector<dir::Fingerprint> nodes;  ///< stable order (sorted)
  std::vector<double> weights;          ///< consensus bandwidths, same order
};

FiftyNodeDataset fifty_node_dataset();

}  // namespace ting::bench
