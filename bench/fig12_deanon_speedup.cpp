// Figure 12: fraction of the network an attacker must probe to deanonymize
// a circuit, for the three strategies of §5.1, over 1000 simulated runs —
// plus the bandwidth-weighted variant from the §5.1.2 footnote.
//
// Paper headline: medians 72% (RTT-unaware), 62% (ignore too-large), 48%
// (+ informed selection) — a 1.5x speedup; weighted variant: ~2x vs probing
// in decreasing weight order.
#include "bench_common.h"

#include "analysis/deanon.h"

int main() {
  using namespace ting;
  using namespace ting::bench;
  using namespace ting::analysis;
  header("Figure 12", "probes needed to deanonymize, by attacker strategy");

  const FiftyNodeDataset ds = fifty_node_dataset();
  DeanonWorld world;
  world.nodes = ds.nodes;
  world.matrix = &ds.matrix;

  const int kRuns = scaled(1000, 100);
  struct Row {
    const char* label;
    Strategy strategy;
    bool weighted;
  };
  const Row rows[] = {
      {"rtt_unaware", Strategy::kRttUnaware, false},
      {"ignore_too_large", Strategy::kIgnoreTooLarge, false},
      {"informed_selection", Strategy::kInformed, false},
  };

  double unaware_median = 0, informed_median = 0;
  for (const Row& row : rows) {
    Rng circuit_rng(42), probe_rng(43);
    std::vector<double> fractions;
    for (int i = 0; i < kRuns; ++i) {
      const CircuitInstance c = sample_circuit(world, circuit_rng, false);
      fractions.push_back(
          deanonymize(world, c, row.strategy, probe_rng).fraction_probed);
    }
    std::printf("\n# series %s (fraction of nodes tested)\n", row.label);
    print_cdf(Cdf(fractions), "fraction_tested", 25);
    const double med = quantile(fractions, 0.5);
    std::printf("# median\t%.3f\n", med);
    if (row.strategy == Strategy::kRttUnaware) unaware_median = med;
    if (row.strategy == Strategy::kInformed) informed_median = med;
  }
  std::printf("\n# medians paper vs measured\t0.72/0.62/0.48 — see series "
              "above\n");
  std::printf("# informed speedup over unaware\t%.2fx (paper: 1.5x)\n",
              unaware_median / informed_median);

  // ---- weighted variant (§5.1.2 footnote) --------------------------------
  DeanonWorld weighted_world = world;
  weighted_world.weights = ds.weights;
  double base_med = 0, informed_w_med = 0;
  for (const Row& row : {Row{"weight_ordered", Strategy::kWeightOrdered, true},
                         Row{"informed_weighted", Strategy::kInformed, true}}) {
    Rng circuit_rng(44), probe_rng(45);
    std::vector<double> fractions;
    for (int i = 0; i < kRuns; ++i) {
      const CircuitInstance c =
          sample_circuit(weighted_world, circuit_rng, true);
      fractions.push_back(
          deanonymize(weighted_world, c, row.strategy, probe_rng)
              .fraction_probed);
    }
    const double med = quantile(fractions, 0.5);
    std::printf("\n# weighted series %s: median %.3f mean %.3f\n", row.label,
                med, mean_of(fractions));
    if (row.strategy == Strategy::kWeightOrdered) base_med = med;
    else informed_w_med = med;
  }
  std::printf("\n# weighted informed speedup vs weight-ordered\t%.2fx "
              "(paper: 2x; see EXPERIMENTS.md on the gap)\n",
              base_med / informed_w_med);
  return 0;
}
