// ting — command-line front-end for the library.
//
// Runs the paper's workflows end to end against simulated worlds and
// CSV-persisted RTT matrices, so the pieces compose like a real toolchain:
//
//   ting measure  --relays 60 --samples 200 --x 0 --y 15
//   ting scan     --relays 25 --nodes 12 --samples 100 --out matrix.csv
//   ting tiv      --matrix matrix.csv
//   ting deanon   --matrix matrix.csv --runs 300
//   ting coords   --matrix matrix.csv
//   ting coverage --days 60 --relays 6400
//
// Matrices written by `scan` feed `tiv`, `deanon`, and `coords`.
#include <atomic>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/congestion.h"
#include "analysis/coordinates.h"
#include "analysis/coverage.h"
#include "analysis/deanon.h"
#include "analysis/tiv.h"
#include "scenario/daemon_world.h"
#include "serve/path_server.h"
#include "scenario/faults.h"
#include "scenario/scenario_file.h"
#include "scenario/scenario_library.h"
#include "scenario/shard_world.h"
#include "scenario/synthetic_env.h"
#include "scenario/testbed.h"
#include "scenario/timeline.h"
#include "simnet/fault_plan.h"
#include "ting/daemon.h"
#include "ting/half_circuit_cache.h"
#include "ting/measurer.h"
#include "ting/scan_journal.h"
#include "ting/scheduler.h"
#include "ting/sparse_matrix.h"
#include "util/stats.h"

namespace {

using namespace ting;

/// Graceful shutdown: SIGINT/SIGTERM ask the scan engines to stop claiming
/// pairs, drain what's in flight, and flush the artifacts + journal.
std::atomic<bool> g_stop{false};

void handle_stop(int) { g_stop.store(true); }

struct Args {
  std::map<std::string, std::string> kv;

  static Args parse(int argc, char** argv, int from) {
    Args a;
    for (int i = from; i < argc;) {
      const std::string key = argv[i];
      if (key.size() < 3 || key[0] != '-' || key[1] != '-') {
        std::fprintf(stderr, "bad flag: %s\n", key.c_str());
        std::exit(2);
      }
      // A flag followed by another flag (or nothing) is boolean: "--pipeline".
      if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
        a.kv[key.substr(2)] = "1";
        i += 1;
      } else {
        a.kv[key.substr(2)] = argv[i + 1];
        i += 2;
      }
    }
    return a;
  }
  long num(const std::string& key, long fallback) const {
    auto it = kv.find(key);
    return it == kv.end() ? fallback : std::atol(it->second.c_str());
  }
  double real(const std::string& key, double fallback) const {
    auto it = kv.find(key);
    return it == kv.end() ? fallback : std::atof(it->second.c_str());
  }
  std::string str(const std::string& key, const std::string& fallback) const {
    auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
  /// On/off switch with a --no-<key> escape hatch; bare "--<key>" means on.
  bool flag(const std::string& key, bool fallback) const {
    if (kv.contains("no-" + key)) return false;
    auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second != "0";
  }
};

/// Resolve --scenario for scan/daemon/serve. The scenario supplies the
/// defaults (topology sizing, faults, churn process); explicit CLI flags
/// still win, so `--scenario massacre --nodes 8` shrinks the massacre.
std::optional<scenario::ScenarioFile> scenario_from_args(const Args& args) {
  const std::string handle = args.str("scenario", "");
  if (handle.empty()) return std::nullopt;
  scenario::ScenarioFile s = scenario::load_scenario(handle);
  std::fprintf(stderr, "scenario '%s' (%s): %s\n", s.name.c_str(),
               s.origin.c_str(), s.summary.c_str());
  return s;
}

/// The scenario's fault clauses plus any --faults clauses, in that order,
/// in canonical grammar (what apply_fault_spec will parse).
std::string merged_fault_spec(const std::optional<scenario::ScenarioFile>& scn,
                              const Args& args) {
  const std::string extra = args.str("faults", "");
  const std::string base = scn.has_value() ? scn->fault_spec_string() : "";
  if (base.empty()) return extra;
  if (extra.empty()) return base;
  return base + ";" + extra;
}

/// Run the scenario's Murdoch–Danezis congestion attacker: build the
/// calibrated §4.1 probe testbed, put a victim stream on the scenario's
/// circuit, and probe one on-path and one off-path candidate with real
/// congestion floods (analysis/congestion.h). Returns 0 when the probes
/// ran and the on/off decisions match ground truth — the detection signal
/// the scenario-matrix CI job asserts on.
int run_congestion_adversary(const scenario::ScenarioFile& scn) {
  const scenario::CongestionAdversary& adv = scn.congestion;
  scenario::TestbedOptions o;
  o.seed = scn.seed;
  o.differential_fraction = scn.differential >= 0 ? scn.differential : 0;
  // Low ambient jitter: the probe reads latency shifts of a few ms, so the
  // attack world is calibrated like the congestion tests' ProbeWorld.
  o.latency.jitter_mean_ms = 0.05;
  o.latency.jitter_spike_prob = 0;
  scenario::Testbed tb = scenario::planetlab31(o);

  const auto idx = [&](int i) { return static_cast<std::size_t>(i); };
  bool built = false;
  tor::CircuitHandle handle = 0;
  tb.ting().op().build_circuit(
      {tb.fp(idx(adv.entry)), tb.fp(idx(adv.middle)), tb.fp(idx(adv.exit)),
       tb.ting().z_fp()},
      [&](tor::CircuitHandle h) {
        built = true;
        handle = h;
      },
      {});
  tb.loop().run_while_waiting_for([&] { return built; },
                                  Duration::seconds(120));
  if (!built) {
    std::fprintf(stderr, "congestion adversary: victim circuit %d-%d-%d "
                         "failed to build\n",
                 adv.entry, adv.middle, adv.exit);
    return 1;
  }
  bool connected = false;
  const tor::OnionProxy::StreamPtr victim = tb.ting().op().open_stream(
      handle, tb.ting().echo_endpoint(), [&] { connected = true; }, {});
  tb.loop().run_while_waiting_for([&] { return connected; },
                                  Duration::seconds(120));
  if (!connected) {
    std::fprintf(stderr, "congestion adversary: victim stream never "
                         "connected\n");
    return 1;
  }

  analysis::CongestionProbeConfig cfg;
  cfg.rounds = adv.rounds;
  cfg.burst_spacing = Duration::millis(1);

  struct Candidate {
    const char* role;
    int index;
    bool expect_on_path;
  };
  int rc = 0;
  for (const Candidate& c :
       {Candidate{"victim middle", adv.middle, true},
        Candidate{"off-path control", adv.off_path, false}}) {
    const analysis::CongestionVerdict v =
        analysis::congestion_probe(tb.ting(), victim, tb.fp(idx(c.index)),
                                   cfg);
    if (!v.ok) {
      std::fprintf(stderr, "congestion adversary: probe of relay %d (%s) "
                           "failed: %s\n",
                   c.index, c.role, v.error.c_str());
      rc = 1;
      continue;
    }
    std::printf("congestion adversary: relay %d (%s) -> %s, effect %.2f "
                "(on %.2fms vs off %.2fms, %zu flood cells)\n",
                c.index, c.role, v.on_path ? "ON PATH" : "off path",
                v.effect_size, v.mean_on_ms, v.mean_off_ms, v.flood_cells);
    if (v.on_path != c.expect_on_path) {
      std::fprintf(stderr, "congestion adversary: relay %d verdict "
                           "contradicts ground truth\n",
                   c.index);
      rc = 1;
    }
  }
  return rc;
}

int cmd_measure(const Args& args) {
  const auto relays = static_cast<std::size_t>(args.num("relays", 60));
  const int samples = static_cast<int>(args.num("samples", 200));
  const auto xi = static_cast<std::size_t>(args.num("x", 0));
  const auto yi = static_cast<std::size_t>(args.num("y", 1));
  scenario::TestbedOptions options;
  options.seed = static_cast<std::uint64_t>(args.num("seed", 1));
  scenario::Testbed world = scenario::live_tor(relays, options);
  if (xi >= world.relay_count() || yi >= world.relay_count() || xi == yi) {
    std::fprintf(stderr, "x/y must be distinct indices below %zu\n",
                 world.relay_count());
    return 2;
  }
  meas::TingConfig cfg;
  cfg.samples = samples;
  meas::TingMeasurer measurer(world.ting(), cfg);
  const meas::PairResult r =
      measurer.measure_blocking(world.fp(xi), world.fp(yi));
  if (!r.ok) {
    std::fprintf(stderr, "measurement failed: %s\n", r.error.c_str());
    return 1;
  }
  std::printf("C_xy=%.3fms C_x=%.3fms C_y=%.3fms\n", r.cxy.min_rtt_ms,
              r.cx.min_rtt_ms, r.cy.min_rtt_ms);
  std::printf("ting estimate R(x,y) = %.3f ms (truth %.3f ms)\n", r.rtt_ms,
              world.true_rtt_ms(world.fp(xi), world.fp(yi)));
  return 0;
}

int cmd_scan(const Args& args) {
  const auto scn = scenario_from_args(args);
  const auto relays = static_cast<std::size_t>(
      args.num("relays", scn ? static_cast<long>(scn->relays) : 25));
  const auto nodes = static_cast<std::size_t>(
      args.num("nodes", scn ? static_cast<long>(scn->nodes) : 12));
  const int samples = static_cast<int>(args.num("samples", 200));
  const int parallel = static_cast<int>(args.num("parallel", 1));
  const int shards = static_cast<int>(args.num("shards", 1));
  const int cap = static_cast<int>(args.num("cap", 1));
  const std::string out = args.str("out", "matrix.csv");
  const std::string faults = merged_fault_spec(scn, args);
  // Measurement-plane optimizations, on by default (--no-* to disable).
  const bool use_half_cache = args.flag("half-cache", true);
  const bool adaptive = args.flag("adaptive-samples", true);
  const bool pipeline = args.flag("pipeline", true);
  // Crash safety and graceful degradation, on by default (--no-* to disable).
  const bool use_journal = args.flag("journal", true);
  const bool resume = args.flag("resume", false);
  const auto checkpoint_every =
      static_cast<std::size_t>(args.num("checkpoint-every", 25));
  meas::QuarantineOptions quarantine;
  quarantine.enabled = args.flag("quarantine", true);
  quarantine.threshold = static_cast<int>(args.num("quarantine-threshold", 3));
  quarantine.cooldown = Duration::seconds(args.num("quarantine-cooldown", 600));
  quarantine.max_windows =
      static_cast<int>(args.num("quarantine-max-windows", 2));
  if (parallel < 1 || cap < 1 || shards < 1) {
    std::fprintf(stderr, "--parallel, --cap, and --shards must be >= 1\n");
    return 2;
  }
  if (resume && !use_journal) {
    std::fprintf(stderr, "--resume needs the journal (drop --no-journal)\n");
    return 2;
  }
  scenario::TestbedOptions options;
  options.seed = static_cast<std::uint64_t>(
      args.num("seed", scn ? static_cast<long>(scn->seed) : 1));
  if (scn && scn->differential >= 0)
    options.differential_fraction = scn->differential;
  meas::TingConfig cfg;
  cfg.samples = samples;
  cfg.adaptive_samples = adaptive;

  // The half-circuit cache persists beside the matrix, so re-scans reuse
  // R_Cx measurements the same way they reuse fresh matrix entries. On
  // --resume the CSV is skipped: the journal restores the cache with exact
  // bit patterns (the CSV rounds to 6 significant digits, which would break
  // the deterministic mode's bit-identity guarantee).
  const std::string halves_path = out + ".halves.csv";
  meas::HalfCircuitCache half_cache;
  if (use_half_cache && !resume) {
    if (std::ifstream probe(halves_path); probe.good())
      half_cache = meas::HalfCircuitCache::load_csv(halves_path);
  }
  meas::HalfCircuitCache* half_cache_ptr =
      use_half_cache ? &half_cache : nullptr;

  const auto progress = [](std::size_t done, std::size_t total,
                           const meas::PairResult& r) {
    std::fprintf(stderr, "\r[%zu/%zu] last=%.1fms   ", done, total, r.rtt_ms);
  };
  meas::RttMatrix matrix;
  meas::ScanReport report;

  // The journal needs the scan-node count (a cheap same-scan check on
  // resume), so it opens inside each engine branch once the subset is known.
  const std::string journal_path = out + ".journal";
  std::unique_ptr<meas::ScanJournal> journal;
  const auto open_journal = [&](std::size_t node_count) {
    if (!use_journal) return;
    meas::ScanJournal::Meta meta;
    meta.pair_seed = options.seed;
    meta.nodes = node_count;
    journal = std::make_unique<meas::ScanJournal>(
        journal_path,
        resume ? meas::ScanJournal::Mode::kResume
               : meas::ScanJournal::Mode::kFresh,
        meta);
    if (resume) {
      journal->restore(matrix, half_cache_ptr);
      std::fprintf(stderr,
                   "resume: %zu records recovered (%zu pairs done) from %s",
                   journal->records_recovered(), journal->pairs().size(),
                   journal_path.c_str());
      if (journal->torn_bytes() > 0)
        std::fprintf(stderr, "; dropped %zu-byte torn tail",
                     journal->torn_bytes());
      std::fprintf(stderr, "\n");
    }
    journal->enable_checkpoints(out, use_half_cache ? halves_path : "",
                                checkpoint_every);
    if (half_cache_ptr != nullptr)
      half_cache.set_store_observer(
          [&journal](const dir::Fingerprint& host_w,
                     const dir::Fingerprint& relay,
                     const meas::HalfCircuitCache::Entry& e) {
            journal->record_half(meas::ScanJournal::HalfRecord{
                host_w, relay, e.rtt_ms, e.measured_at, e.samples});
          });
  };

  std::signal(SIGINT, handle_stop);
  std::signal(SIGTERM, handle_stop);

  if (args.kv.contains("shards")) {
    // Sharded engine: W worker threads sharing one immutable topology, each
    // owning only the mutable world half. With --parallel 1 (the default)
    // pairs are measured deterministically — the merged matrix is
    // bit-identical for any W. --no-share-topology restores the historical
    // full-clone-per-shard behaviour (same output, slower setup).
    scenario::ShardWorldOptions swo;
    swo.relays = relays;
    swo.scan_nodes = nodes;
    swo.testbed = options;
    swo.ting = cfg;
    swo.pool = static_cast<std::size_t>(parallel);
    swo.fault_spec = faults;
    swo.share_topology = args.flag("share-topology", true);
    // One topology build serves the node list and (when sharing) every
    // shard world.
    const scenario::TopologyPtr topology = scenario::shard_topology(swo);
    const std::vector<dir::Fingerprint> subset =
        scenario::shard_scan_nodes(swo, topology);
    open_journal(subset.size());
    meas::ShardedScanner scanner(
        swo.share_topology
            ? scenario::make_testbed_shard_factory(swo, topology)
            : scenario::make_testbed_shard_factory(swo));
    meas::ShardedScanOptions scan_options;
    scan_options.per_relay_cap = cap;
    scan_options.pair_seed = options.seed;
    scan_options.shards = static_cast<std::size_t>(shards);
    scan_options.deterministic = parallel == 1;
    scan_options.half_cache = half_cache_ptr;
    scan_options.pipeline_builds = pipeline;
    scan_options.journal = journal.get();
    scan_options.stop = &g_stop;
    scan_options.quarantine = quarantine;
    report = scanner.scan(subset, matrix, scan_options, progress);
  } else {
    scenario::Testbed world = scenario::live_tor(relays, options);
    std::vector<dir::Fingerprint> subset;
    for (std::size_t i = 0; i < std::min(nodes, world.relay_count()); ++i)
      subset.push_back(world.fp(i));
    open_journal(subset.size());

    simnet::FaultPlan plan(world.net());
    if (!faults.empty()) {
      const auto spec = scenario::FaultSpec::parse(faults);
      scenario::apply_fault_spec(spec, world, subset, plan, options.seed);
    }

    meas::ScanOptions common;
    common.half_cache = half_cache_ptr;
    common.pipeline_builds = pipeline;
    common.journal = journal.get();
    common.stop = &g_stop;
    common.quarantine = quarantine;
    if (!faults.empty()) {
      common.live_consensus = &world.consensus();
      common.fault_plan = &plan;
    }
    if (parallel == 1) {
      meas::TingMeasurer measurer(world.ting(), cfg);
      meas::AllPairsScanner scanner(measurer, matrix);
      report = scanner.scan(subset, common, progress);
    } else {
      // One measurement host per in-flight pair, all driving the same
      // simulated world; the admission policy caps circuits per target
      // relay.
      std::vector<std::unique_ptr<meas::TingMeasurer>> measurers;
      std::vector<meas::TingMeasurer*> pool;
      for (meas::MeasurementHost* host :
           world.measurement_pool(static_cast<std::size_t>(parallel))) {
        measurers.push_back(std::make_unique<meas::TingMeasurer>(*host, cfg));
        pool.push_back(measurers.back().get());
      }
      meas::ParallelScanner scanner(pool, matrix);
      meas::ParallelScanOptions scan_options;
      static_cast<meas::ScanOptions&>(scan_options) = common;
      scan_options.per_relay_cap = cap;
      report = scanner.scan(subset, scan_options, progress);
    }
  }
  std::fprintf(stderr, "\n");
  matrix.save_csv(out);
  if (use_half_cache) half_cache.save_csv(halves_path);
  std::printf("scanned %zu pairs (%zu measured, %zu cached, %zu failed, "
              "%zu retries) in %.1f virtual hours -> %s\n",
              report.pairs_total, report.measured, report.from_cache,
              report.failed, report.retries,
              report.virtual_time.sec() / 3600.0, out.c_str());
  if (!report.quarantine_events.empty() || report.deferred > 0) {
    std::printf("quarantine: %zu breaker events, %zu pairs deferred, "
                "%zu probation probes\n",
                report.quarantine_events.size(), report.deferred,
                report.probation_probes);
    for (const auto& ev : report.quarantine_events)
      std::printf("  quarantine @%8.1fs  %s %s (%d consecutive failures)\n",
                  ev.at.sec(), ev.relay.short_name().c_str(),
                  ev.terminal ? "written off" : "quarantined", ev.failures);
    for (const auto& dp : report.deferred_pairs)
      std::fprintf(stderr, "deferred %s <-> %s (relay %s quarantined)\n",
                   dp.a.short_name().c_str(), dp.b.short_name().c_str(),
                   dp.relay.short_name().c_str());
  }
  std::printf("engine: W=%d K=%d in-flight peak %zu, per-relay peak %zu "
              "(cap %d), build %.1fh sample %.1fh\n",
              shards, parallel, report.max_in_flight,
              report.max_per_relay_in_flight, cap,
              report.time_building.sec() / 3600.0,
              report.time_sampling.sec() / 3600.0);
  std::printf("setup: world construction %.1f ms across shards, "
              "%zu world reseeds\n",
              report.world_construct_ms, report.reseeds);
  std::printf("optimizations: %zu circuits built, %zu half-cache hits, "
              "%zu samples saved%s\n",
              report.circuits_built, report.half_cache_hits,
              report.samples_saved,
              use_half_cache ? (" -> " + halves_path).c_str() : "");
  if (!faults.empty()) {
    std::printf("failures by class: %zu transient, %zu permanent, %zu "
                "churned (%zu pairs re-resolved after churn)\n",
                report.failed_transient, report.failed_permanent,
                report.failed_churned, report.churn_reresolved);
    for (const auto& e : report.fault_events)
      std::printf("  fault @%8.1fs  %s\n", e.at.sec(), e.what.c_str());
  }
  for (const auto& fp : report.failed_pairs)
    std::fprintf(stderr, "failed [%s] %s <-> %s: %s\n",
                 meas::to_string(fp.error_class), fp.a.short_name().c_str(),
                 fp.b.short_name().c_str(), fp.error.c_str());
  if (scn.has_value()) {
    // Every pair must land in exactly one bucket — the graceful-degradation
    // ledger the scenario-matrix CI job checks under hostile scenarios.
    const std::size_t accounted = report.measured + report.from_cache +
                                  report.failed + report.deferred +
                                  report.interrupted_pairs;
    std::printf("scenario %s accounting: %zu measured + %zu cached + %zu "
                "failed + %zu deferred + %zu interrupted = %zu of %zu pairs "
                "(%s)\n",
                scn->name.c_str(), report.measured, report.from_cache,
                report.failed, report.deferred, report.interrupted_pairs,
                accounted, report.pairs_total,
                accounted == report.pairs_total ? "OK" : "VIOLATION");
  }
  if (report.interrupted) {
    // Keep the journal: it carries the exact-bit state --resume needs.
    std::fprintf(stderr,
                 "interrupted: %zu of %zu pairs unresolved; journal kept at "
                 "%s — re-run the same scan command with --resume to "
                 "continue\n",
                 report.interrupted_pairs, report.pairs_total,
                 journal != nullptr ? journal_path.c_str() : "(no journal)");
    return 130;
  }
  // Clean finish: the CSV artifacts carry the full state, so the journal
  // has nothing left to protect.
  if (journal != nullptr) journal->remove_file();
  if (scn && scn->congestion.enabled) {
    const int adversary_rc = run_congestion_adversary(*scn);
    if (adversary_rc != 0) return adversary_rc;
  }
  return report.failed == 0 ? 0 : 1;
}

int cmd_daemon(const Args& args) {
  const auto scn = scenario_from_args(args);
  // --synthetic [N]: swap the cell-level testbed for the paper-scale
  // synthetic environment (scenario/synthetic_env.h); N is the consensus
  // size and defaults to the paper's ~6,000 relays.
  const bool synthetic = args.kv.contains("synthetic");
  const long synth_n = args.num("synthetic", 0);
  const auto relays = static_cast<std::size_t>(
      synthetic
          ? (synth_n > 1 ? synth_n : args.num("relays", 6000))
          : args.num("relays", scn ? static_cast<long>(scn->relays) : 20));
  const auto epochs = static_cast<std::size_t>(args.num("epochs", 6));
  const auto budget = static_cast<std::size_t>(args.num("budget", 0));
  const auto shards = static_cast<std::size_t>(args.num("shards", 1));
  const auto pool = static_cast<std::size_t>(args.num("pool", 1));
  const int samples = static_cast<int>(args.num("samples", 50));
  const double epoch_hours = args.real("epoch-hours", 1.0);
  const double ttl_hours = args.real("ttl-hours", 7 * 24.0);
  const double churn = args.real("churn", scn ? scn->churn_rate : 0.05);
  const double rejoin = args.real("rejoin", scn ? scn->rejoin_rate : 0.5);
  const double absent =
      args.real("absent", scn ? scn->initially_absent : 0.0);
  const double coverage_target = args.real("coverage", 0.99);
  const double noise = args.real("noise", 0.5);
  const double fail_rate = args.real("fail-rate", 0.0);
  const std::string out = args.str("out", "daemon.tingmx");
  const std::string csv_out = args.str("csv", "");
  const std::string faults = merged_fault_spec(scn, args);
  const bool resume = args.flag("resume", false);
  const bool use_half_cache = args.flag("half-cache", !synthetic);
  const bool adaptive = args.flag("adaptive-samples", true);
  const bool use_journal = args.flag("journal", true);
  const bool incremental = args.flag("incremental", true);
  if (relays < 2 || epochs < 1 || shards < 1 || pool < 1 ||
      epoch_hours <= 0 || ttl_hours <= 0) {
    std::fprintf(stderr, "daemon: bad sizing flags\n");
    return 2;
  }

  const auto seed = static_cast<std::uint64_t>(
      args.num("seed", scn ? static_cast<long>(scn->seed) : 1));
  std::unique_ptr<meas::DaemonEnvironment> env;
  char tag[256];
  if (synthetic) {
    scenario::SyntheticEnvOptions seo;
    seo.relays = relays;
    seo.testbed.seed = seed;
    seo.churn.seed = seed;
    seo.churn.churn_rate = churn;
    seo.churn.rejoin_rate = rejoin;
    seo.churn.initially_absent = absent;
    seo.noise_ms = noise;
    seo.failure_rate = fail_rate;
    seo.samples = samples;
    auto senv = std::make_unique<scenario::SyntheticDaemonEnvironment>(seo);
    std::printf("daemon: synthetic topology (%zu relays, %zu pairs) built "
                "in %.1f ms\n",
                relays, relays * (relays - 1) / 2,
                senv->world_construct_ms());
    env = std::move(senv);
    std::snprintf(tag, sizeof(tag),
                  "synthetic=1;relays=%zu;churn=%.6f;rejoin=%.6f;"
                  "absent=%.6f;noise=%.6f;fail=%.6f;samples=%d",
                  relays, churn, rejoin, absent, noise, fail_rate, samples);
  } else {
    scenario::DaemonWorldOptions dwo;
    dwo.relays = relays;
    dwo.testbed.seed = seed;
    if (scn && scn->differential >= 0)
      dwo.testbed.differential_fraction = scn->differential;
    dwo.ting.samples = samples;
    dwo.ting.adaptive_samples = adaptive;
    dwo.churn.seed = dwo.testbed.seed;
    dwo.churn.churn_rate = churn;
    dwo.churn.rejoin_rate = rejoin;
    dwo.churn.initially_absent = absent;
    dwo.fault_spec = faults;
    dwo.shards = shards;
    dwo.pool = pool;
    dwo.share_topology = args.flag("share-topology", true);
    auto tenv = std::make_unique<scenario::TestbedDaemonEnvironment>(dwo);
    std::printf("daemon: %zu persistent shard world(s) built in %.1f ms%s\n",
                shards, tenv->world_construct_ms(),
                dwo.share_topology ? " (shared topology)" : "");
    env = std::move(tenv);
    // Identify the world this store belongs to, so --resume against the
    // wrong testbed or measurement config fails loudly instead of
    // corrupting it. --shards is deliberately absent: deterministic output
    // is shard-count-independent, so a store may resume under a different
    // thread count. Likewise --journal / --incremental: neither changes
    // the artifacts (pinned by tests), only crash granularity / plan cost.
    std::snprintf(tag, sizeof(tag),
                  "relays=%zu;churn=%.6f;rejoin=%.6f;absent=%.6f;samples=%d;"
                  "adaptive=%d;half=%d;faults=%s",
                  relays, churn, rejoin, absent, samples, adaptive ? 1 : 0,
                  use_half_cache ? 1 : 0, faults.c_str());
  }

  meas::DaemonOptions opt;
  opt.epochs = epochs;
  opt.epoch_interval = Duration::from_ms(epoch_hours * 3600e3);
  opt.ttl = Duration::from_ms(ttl_hours * 3600e3);
  opt.budget = budget;
  opt.coverage_target = coverage_target;
  opt.out = out;
  opt.resume = resume;
  opt.seed = seed;
  opt.half_cache = use_half_cache;
  opt.journal = use_journal;
  opt.incremental_planner = incremental;
  opt.stop = &g_stop;
  opt.engine.quarantine.enabled = args.flag("quarantine", true);
  opt.engine.quarantine.threshold =
      static_cast<int>(args.num("quarantine-threshold", 3));
  opt.config_tag = tag;

  std::signal(SIGINT, handle_stop);
  std::signal(SIGTERM, handle_stop);

  meas::ScanDaemon daemon(*env, opt);
  const auto on_epoch = [](const meas::EpochStats& s) {
    std::printf("epoch %zu: %zu nodes (+%zu/-%zu), planned %zu "
                "(%zu new, %zu expired, %zu over budget), measured %zu, "
                "cached %zu, failed %zu, deferred %zu, %zu reseeds -> "
                "coverage %.1f%% (%zu/%zu pairs fresh), store %zu pairs / "
                "%.1f MB\n",
                s.epoch, s.nodes, s.joined, s.left, s.plan.pairs.size(),
                s.plan.new_pairs, s.plan.expired_pairs,
                s.plan.dropped_over_budget, s.scan.measured,
                s.scan.from_cache, s.scan.failed, s.scan.deferred,
                s.scan.reseeds, 100 * s.coverage.coverage(),
                s.coverage.fresh, s.coverage.total, s.matrix_pairs,
                static_cast<double>(s.matrix_bytes) / 1e6);
    std::fflush(stdout);
  };
  const meas::DaemonReport report = daemon.run(on_epoch);

  if (!csv_out.empty()) daemon.matrix().save_csv(csv_out);
  if (report.interrupted) {
    std::fprintf(stderr,
                 "interrupted at epoch %zu; journal and state kept — re-run "
                 "the same daemon command with --resume to continue\n",
                 report.epochs_completed);
    return 130;
  }
  std::printf("daemon: %zu epochs complete, %zu pairs stored (%.1f MB), "
              "final coverage %.2f%% (target %.0f%%) -> %s\n",
              report.epochs_completed, report.matrix_pairs,
              static_cast<double>(report.matrix_bytes) / 1e6,
              100 * report.final_coverage, 100 * coverage_target,
              out.c_str());
  return report.converged ? 0 : 1;
}

void print_circuit(const serve::PathServer::Circuit& c) {
  std::printf("  %7.1fms ", c.rtt_ms);
  for (std::size_t i = 0; i < c.relays.size(); ++i)
    std::printf("%s%s", i == 0 ? "" : " -> ", c.relays[i].short_name().c_str());
  std::printf("\n");
}

/// Load a matrix, publish it into a PathServer once, and answer one query.
int cmd_query(const Args& args) {
  const meas::RttMatrix matrix =
      meas::load_matrix_any(args.str("matrix", "matrix.csv"));
  serve::ServeOptions so;
  so.candidates_per_length =
      static_cast<std::size_t>(args.num("candidates", 2000));
  so.max_length = static_cast<std::size_t>(args.num("max-length", 6));
  so.seed = static_cast<std::uint64_t>(args.num("seed", 1));
  so.float32_snapshot = args.flag("float32", false);
  serve::PathServer server(so);
  server.publish(matrix);
  const auto st = server.state();
  const auto& nodes = st->snapshot.nodes();
  std::printf("serving %zu relays, %zu pairs (%.1f%% coverage, %s image, "
              "%.1f MB), %.0f%% of measured pairs have a TIV detour\n",
              st->snapshot.node_count(), st->snapshot.pair_count(),
              100 * st->snapshot.coverage(),
              st->snapshot.storage() == serve::SnapshotStorage::kFloat32
                  ? "float32"
                  : "float64",
              static_cast<double>(st->snapshot.memory_bytes()) / 1e6,
              100 * st->detours.tiv_fraction());

  const auto node_at = [&](long i) -> const dir::Fingerprint* {
    if (i < 0 || static_cast<std::size_t>(i) >= nodes.size()) {
      std::fprintf(stderr, "relay index %ld out of range [0, %zu)\n", i,
                   nodes.size());
      return nullptr;
    }
    return &nodes[static_cast<std::size_t>(i)];
  };

  if (args.kv.contains("pair")) {
    long a = 0, b = 1;
    if (std::sscanf(args.kv.at("pair").c_str(), "%ld,%ld", &a, &b) != 2) {
      std::fprintf(stderr, "--pair wants i,j relay indices\n");
      return 2;
    }
    const auto* fa = node_at(a);
    const auto* fb = node_at(b);
    if (fa == nullptr || fb == nullptr) return 2;
    const auto direct = server.rtt(*fa, *fb);
    if (direct.has_value())
      std::printf("%s <-> %s: direct %.1fms\n", fa->short_name().c_str(),
                  fb->short_name().c_str(), *direct);
    else
      std::printf("%s <-> %s: direct unmeasured\n", fa->short_name().c_str(),
                  fb->short_name().c_str());
    const auto detour = server.best_detour(*fa, *fb);
    if (detour.has_value()) {
      std::printf("  best detour: %.1fms via %s%s\n", detour->detour_ms,
                  detour->via.short_name().c_str(),
                  detour->tiv ? " (beats direct: TIV)" : "");
    } else {
      std::printf("  no relay has both legs measured\n");
    }
    return 0;
  }
  if (args.kv.contains("through")) {
    const auto* relay = node_at(args.num("through", 0));
    if (relay == nullptr) return 2;
    const auto k = static_cast<std::size_t>(args.num("k", 5));
    const auto circuits = server.fastest_through(*relay, k);
    std::printf("fastest %zu 3-hop circuits with %s as middle:\n",
                circuits.size(), relay->short_name().c_str());
    for (const auto& c : circuits) print_circuit(c);
    return 0;
  }
  if (args.kv.contains("band")) {
    double lo = 0, hi = 0;
    if (std::sscanf(args.kv.at("band").c_str(), "%lf:%lf", &lo, &hi) != 2) {
      std::fprintf(stderr, "--band wants lo:hi in ms\n");
      return 2;
    }
    const auto length = static_cast<std::size_t>(args.num("length", 3));
    const auto want = static_cast<std::size_t>(args.num("want", 5));
    const auto circuits = server.circuits_in_band(length, lo, hi, want);
    std::printf("~%.3g circuits of length %zu in [%.0f, %.0f]ms; sampled:\n",
                server.options_in_band(length, lo, hi), length, lo, hi);
    for (const auto& c : circuits) print_circuit(c);
    return 0;
  }
  std::fprintf(stderr,
               "query wants one of --pair i,j | --through i [--k n] | "
               "--band lo:hi [--length l] [--want n]\n");
  return 2;
}

/// A daemon run with the serving layer attached: every epoch checkpoint
/// publishes a fresh snapshot + detour index while (in a deployment)
/// readers keep querying the previous one lock-free.
int cmd_serve(const Args& args) {
  const auto scn = scenario_from_args(args);
  const bool synthetic = args.kv.contains("synthetic");
  const long synth_n = args.num("synthetic", 0);
  const auto relays = static_cast<std::size_t>(
      synthetic
          ? (synth_n > 1 ? synth_n : args.num("relays", 6000))
          : args.num("relays", scn ? static_cast<long>(scn->relays) : 20));
  const auto epochs = static_cast<std::size_t>(args.num("epochs", 6));
  const auto budget = static_cast<std::size_t>(args.num("budget", 0));
  const auto shards = static_cast<std::size_t>(args.num("shards", 1));
  const int samples = static_cast<int>(args.num("samples", 50));
  const double epoch_hours = args.real("epoch-hours", 1.0);
  const double ttl_hours = args.real("ttl-hours", 7 * 24.0);
  const double churn = args.real("churn", scn ? scn->churn_rate : 0.05);
  const double rejoin = args.real("rejoin", scn ? scn->rejoin_rate : 0.5);
  const double absent =
      args.real("absent", scn ? scn->initially_absent : 0.0);
  const std::string faults = merged_fault_spec(scn, args);
  const std::string out = args.str("out", "daemon.tingmx");
  const bool resume = args.flag("resume", false);
  if (relays < 2 || epochs < 1 || shards < 1 || epoch_hours <= 0 ||
      ttl_hours <= 0) {
    std::fprintf(stderr, "serve: bad sizing flags\n");
    return 2;
  }

  const auto seed = static_cast<std::uint64_t>(
      args.num("seed", scn ? static_cast<long>(scn->seed) : 1));
  std::unique_ptr<meas::DaemonEnvironment> env;
  char tag[256];
  if (synthetic) {
    scenario::SyntheticEnvOptions seo;
    seo.relays = relays;
    seo.testbed.seed = seed;
    seo.churn.seed = seed;
    seo.churn.churn_rate = churn;
    seo.churn.rejoin_rate = rejoin;
    seo.churn.initially_absent = absent;
    seo.noise_ms = args.real("noise", 0.5);
    seo.failure_rate = args.real("fail-rate", 0.0);
    seo.samples = samples;
    env = std::make_unique<scenario::SyntheticDaemonEnvironment>(seo);
    std::snprintf(tag, sizeof(tag),
                  "synthetic=1;relays=%zu;churn=%.6f;rejoin=%.6f;"
                  "absent=%.6f;noise=%.6f;fail=%.6f;samples=%d",
                  relays, churn, rejoin, absent, seo.noise_ms,
                  seo.failure_rate, samples);
  } else {
    scenario::DaemonWorldOptions dwo;
    dwo.relays = relays;
    dwo.testbed.seed = seed;
    if (scn && scn->differential >= 0)
      dwo.testbed.differential_fraction = scn->differential;
    dwo.ting.samples = samples;
    dwo.ting.adaptive_samples = true;
    dwo.churn.seed = dwo.testbed.seed;
    dwo.churn.churn_rate = churn;
    dwo.churn.rejoin_rate = rejoin;
    dwo.churn.initially_absent = absent;
    dwo.fault_spec = faults;
    dwo.shards = shards;
    env = std::make_unique<scenario::TestbedDaemonEnvironment>(dwo);
    std::snprintf(tag, sizeof(tag),
                  "relays=%zu;churn=%.6f;rejoin=%.6f;absent=%.6f;samples=%d;"
                  "adaptive=%d;half=%d;faults=%s",
                  relays, churn, rejoin, absent, samples, 1, 1,
                  faults.c_str());
  }

  meas::DaemonOptions opt;
  opt.epochs = epochs;
  opt.epoch_interval = Duration::from_ms(epoch_hours * 3600e3);
  opt.ttl = Duration::from_ms(ttl_hours * 3600e3);
  opt.budget = budget;
  opt.out = out;
  opt.resume = resume;
  opt.seed = seed;
  opt.half_cache = args.flag("half-cache", !synthetic);
  opt.journal = args.flag("journal", true);
  opt.incremental_planner = args.flag("incremental", true);
  opt.stop = &g_stop;
  opt.config_tag = tag;

  serve::ServeOptions so;
  so.candidates_per_length =
      static_cast<std::size_t>(args.num("candidates", 500));
  so.seed = opt.seed;
  so.float32_snapshot = args.flag("float32", false);
  serve::PathServer server(so);
  opt.on_checkpoint = [&server, &opt](
                          const meas::SparseRttMatrix& m,
                          const std::vector<dir::Fingerprint>&,
                          const std::vector<dir::Fingerprint>& changed,
                          const meas::EpochStats& s) {
    server.publish(m, s.epoch,
                   meas::ScanDaemon::epoch_clock(opt.epoch_interval, s.epoch),
                   changed);
    const auto st = server.state();
    std::printf("epoch %zu: published snapshot — %zu relays, %zu pairs "
                "(%.1f%% coverage, %s, %.1f MB), %.0f%% TIV, %zu changed "
                "relays\n",
                s.epoch, st->snapshot.node_count(),
                st->snapshot.pair_count(), 100 * st->snapshot.coverage(),
                st->snapshot.storage() == serve::SnapshotStorage::kFloat32
                    ? "float32"
                    : "float64",
                static_cast<double>(st->snapshot.memory_bytes()) / 1e6,
                100 * st->detours.tiv_fraction(), changed.size());
    std::fflush(stdout);
  };

  std::signal(SIGINT, handle_stop);
  std::signal(SIGTERM, handle_stop);

  meas::ScanDaemon daemon(*env, opt);
  const meas::DaemonReport report = daemon.run();

  if (report.interrupted) {
    std::fprintf(stderr, "interrupted at epoch %zu; re-run with --resume\n",
                 report.epochs_completed);
    return 130;
  }
  if (!server.ready()) {
    std::fprintf(stderr, "no epoch completed; nothing was published\n");
    return 1;
  }
  // Show the serving layer answering off the last published state.
  const auto st = server.state();
  const auto& nodes = st->snapshot.nodes();
  std::printf("%" PRIu64 " snapshots published; sample queries:\n",
              server.publishes());
  if (nodes.size() >= 2) {
    const auto detour = server.best_detour(nodes[0], nodes[1]);
    if (detour.has_value())
      std::printf("  detour %s <-> %s: %.1fms via %s%s\n",
                  nodes[0].short_name().c_str(), nodes[1].short_name().c_str(),
                  detour->detour_ms, detour->via.short_name().c_str(),
                  detour->tiv ? " (TIV)" : "");
    for (const auto& c : server.fastest_through(nodes[0], 3)) print_circuit(c);
  }
  return 0;
}

int cmd_convert(const Args& args) {
  const std::string in = args.str("matrix", "matrix.csv");
  const std::string csv_out = args.str("csv", "");
  const std::string bin_out = args.str("bin", "");
  std::ifstream f(in, std::ios::binary);
  if (!f.good()) {
    std::fprintf(stderr, "cannot open %s\n", in.c_str());
    return 2;
  }
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  const bool is_bin =
      content.size() >= 8 &&
      std::memcmp(content.data(), meas::SparseRttMatrix::kBinMagic, 8) == 0;
  const meas::SparseRttMatrix matrix =
      is_bin ? meas::SparseRttMatrix::from_bin(content)
             : meas::SparseRttMatrix::from_csv(content);
  if (!csv_out.empty()) matrix.save_csv(csv_out);
  if (!bin_out.empty()) matrix.save_bin(bin_out);
  std::printf("%s: %s, %zu pairs over %zu relays%s%s%s%s\n", in.c_str(),
              is_bin ? "sparse binary" : "csv", matrix.size(),
              matrix.nodes().size(), csv_out.empty() ? "" : " -> ",
              csv_out.c_str(), bin_out.empty() ? "" : " -> ",
              bin_out.c_str());
  return 0;
}

int cmd_tiv(const Args& args) {
  const meas::RttMatrix matrix =
      meas::load_matrix_any(args.str("matrix", "matrix.csv"));
  // One O(n³) detour-index pass yields the findings and the fraction
  // together (this used to run the full scan twice).
  const auto summary = analysis::tiv_summary(matrix);
  const auto& tivs = summary.findings;
  std::printf("%zu pairs, %.0f%% with a TIV\n", summary.measured_pairs,
              100 * summary.fraction);
  std::vector<double> savings;
  for (const auto& t : tivs) savings.push_back(100 * t.savings());
  if (!savings.empty())
    std::printf("savings: median %.1f%%, p90 %.1f%%\n",
                quantile(savings, 0.5), quantile(savings, 0.9));
  int shown = 0;
  for (const auto& t : tivs) {
    if (t.savings() < 0.15 || shown >= 10) continue;
    std::printf("  %s <-> %s: %.1fms direct, %.1fms via %s (-%.0f%%)\n",
                t.a.short_name().c_str(), t.b.short_name().c_str(),
                t.direct_ms, t.detour_ms, t.detour.short_name().c_str(),
                100 * t.savings());
    ++shown;
  }
  return 0;
}

int cmd_deanon(const Args& args) {
  const meas::RttMatrix matrix =
      meas::load_matrix_any(args.str("matrix", "matrix.csv"));
  const int runs = static_cast<int>(args.num("runs", 300));
  analysis::DeanonWorld world;
  world.nodes = matrix.nodes();
  world.matrix = &matrix;
  if (world.nodes.size() < 4) {
    std::fprintf(stderr, "matrix too small (need >= 4 nodes)\n");
    return 2;
  }
  struct Row {
    const char* name;
    analysis::Strategy strategy;
  };
  for (const Row& row :
       {Row{"rtt-unaware", analysis::Strategy::kRttUnaware},
        Row{"ignore-too-large", analysis::Strategy::kIgnoreTooLarge},
        Row{"informed", analysis::Strategy::kInformed}}) {
    Rng crng(42), prng(43);
    std::vector<double> fr;
    int skipped = 0;
    for (int i = 0; i < runs; ++i) {
      // Redraws until every leg is measured, so a partially-converged
      // daemon store analyses instead of aborting; on a complete matrix
      // the first draw lands and the RNG stream is the historical one.
      const auto c = analysis::try_sample_circuit(world, crng, false);
      if (!c.has_value()) {
        ++skipped;
        continue;
      }
      fr.push_back(
          analysis::deanonymize(world, *c, row.strategy, prng).fraction_probed);
    }
    if (fr.empty()) {
      std::printf("%-18s no measurable circuit in %d runs (matrix too "
                  "sparse)\n",
                  row.name, runs);
      continue;
    }
    std::printf("%-18s median %.1f%% of nodes probed", row.name,
                100 * quantile(fr, 0.5));
    if (skipped > 0)
      std::printf("  (%d/%d runs skipped: unmeasured legs)", skipped, runs);
    std::printf("\n");
  }
  return 0;
}

int cmd_coords(const Args& args) {
  const meas::RttMatrix matrix =
      meas::load_matrix_any(args.str("matrix", "matrix.csv"));
  analysis::VivaldiSystem vivaldi;
  Rng rng(static_cast<std::uint64_t>(args.num("seed", 2)));
  vivaldi.fit(matrix, matrix.nodes(), rng,
              args.num("percent", 100) / 100.0);
  const auto errs = vivaldi.relative_errors(matrix);
  std::printf("vivaldi embedding: relative error median %.1f%%, p90 %.1f%%\n",
              100 * quantile(errs, 0.5), 100 * quantile(errs, 0.9));
  const auto tivs = analysis::find_all_tivs(matrix);
  std::printf("TIVs in the measured matrix: %zu; expressible by the "
              "embedding: 0 (metric space)\n",
              tivs.size());
  return 0;
}

/// `ting scenario list | show <name|path> [--raw] | validate <name|path>`.
/// Positional, unlike the other commands: scenario names are the operands.
int cmd_scenario(int argc, char** argv) {
  const std::string action = argc >= 3 ? argv[2] : "list";
  if (action == "list") {
    std::printf("%-20s %s\n", "NAME", "SUMMARY");
    for (const auto& entry : scenario::scenario_library()) {
      const scenario::ScenarioFile s = scenario::ScenarioFile::parse(
          entry.text, "<embedded:" + entry.name + ">");
      std::printf("%-20s %s\n", entry.name.c_str(), s.summary.c_str());
    }
    std::printf("(run with: ting scan --scenario <name>; files in "
                "examples/scenarios/ load by path)\n");
    return 0;
  }
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: ting scenario list | show <name|path> [--raw] | "
                 "validate <name|path>\n");
    return 2;
  }
  const std::string target = argv[3];
  if (action == "show") {
    const bool raw = argc >= 5 && std::string(argv[4]) == "--raw";
    if (raw) {
      // Byte-exact text: the CI lint diffs this against the on-disk copy.
      if (const scenario::LibraryScenario* entry =
              scenario::find_scenario(target)) {
        std::fputs(entry->text.c_str(), stdout);
        return 0;
      }
      std::ifstream f(target);
      if (!f.good()) {
        std::fprintf(stderr, "unknown scenario or unreadable file: %s\n",
                     target.c_str());
        return 2;
      }
      std::string content((std::istreambuf_iterator<char>(f)),
                          std::istreambuf_iterator<char>());
      std::fputs(content.c_str(), stdout);
      return 0;
    }
    const scenario::ScenarioFile s = scenario::load_scenario(target);
    std::printf("scenario %s (v%d, from %s)\n  %s\n", s.name.c_str(),
                s.version, s.origin.c_str(), s.summary.c_str());
    std::printf("  topology: %zu relays, %zu scan nodes, seed %" PRIu64 "\n",
                s.relays, s.nodes, s.seed);
    if (s.differential >= 0)
      std::printf("  differential fraction: %.2f\n", s.differential);
    if (s.has_faults())
      std::printf("  faults (%zu clauses): %s\n", s.faults.clauses.size(),
                  s.fault_spec_string().c_str());
    if (s.churn_rate > 0)
      std::printf("  daemon churn: rate %.3f, rejoin %.3f, initially absent "
                  "%.3f\n",
                  s.churn_rate, s.rejoin_rate, s.initially_absent);
    if (s.congestion.enabled)
      std::printf("  congestion adversary: %d rounds against victim circuit "
                  "%d-%d-%d (off-path control %d)\n",
                  s.congestion.rounds, s.congestion.entry,
                  s.congestion.middle, s.congestion.exit,
                  s.congestion.off_path);
    return 0;
  }
  if (action == "validate") {
    try {
      const scenario::ScenarioFile s = scenario::load_scenario(target);
      std::printf("%s: OK (scenario %s, %zu fault clauses%s)\n",
                  target.c_str(), s.name.c_str(), s.faults.clauses.size(),
                  s.congestion.enabled ? ", congestion adversary" : "");
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: INVALID — %s\n", target.c_str(), e.what());
      return 1;
    }
  }
  std::fprintf(stderr, "unknown scenario action '%s' (list, show, validate)\n",
               action.c_str());
  return 2;
}

int cmd_coverage(const Args& args) {
  scenario::TimelineOptions options;
  options.days = static_cast<int>(args.num("days", 60));
  options.initial_relays = static_cast<std::size_t>(args.num("relays", 6400));
  const auto tl = scenario::make_timeline(options);
  std::printf("%s: %zu relays, %zu /24s  ->  %s: %zu relays, %zu /24s\n",
              tl.days.front().date.c_str(), tl.days.front().total_relays,
              tl.days.front().unique_slash24, tl.days.back().date.c_str(),
              tl.days.back().total_relays, tl.days.back().unique_slash24);
  const auto stats = analysis::coverage_stats(tl.final_consensus);
  std::printf("final day: %zu relays, %zu named (%.0f%% residential), "
              "%zu countries\n",
              stats.total_relays, stats.with_rdns,
              100 * stats.residential_fraction_of_named(), stats.countries);
  return 0;
}

void usage() {
  std::fputs(
      "usage: ting <command> [--flag value ...]\n"
      "commands:\n"
      "  measure   measure one relay pair with Ting     (--relays --samples --x --y --seed)\n"
      "  scan      all-pairs scan to a CSV matrix       (--relays --nodes --samples --out --seed\n"
      "                                                  --parallel K --cap per-relay-circuits\n"
      "                                                  --shards W --faults SPEC\n"
      "                                                  --scenario name|file)\n"
      "  (--shards W fans the pair list across W threads, each with its own\n"
      "   world clone; with --parallel 1 output is bit-identical for any W)\n"
      "  (scan optimizations, on by default: --half-cache memoizes R_Cx per\n"
      "   relay and persists it at <out>.halves.csv, --adaptive-samples stops\n"
      "   sampling once the running minimum plateaus, --pipeline prebuilds the\n"
      "   next pair's circuit while the current one samples; disable with\n"
      "   --no-half-cache / --no-adaptive-samples / --no-pipeline)\n"
      "  (crash safety, on by default: every resolved pair is fsync'd to\n"
      "   <out>.journal and the artifacts are checkpointed atomically every\n"
      "   --checkpoint-every pairs [25]; after a crash or SIGINT/SIGTERM,\n"
      "   re-run with --resume to continue from the journal; --no-journal\n"
      "   disables. --quarantine [on] benches a relay after\n"
      "   --quarantine-threshold [3] consecutive permanent failures for\n"
      "   --quarantine-cooldown seconds [600], deferring its pairs once\n"
      "   --quarantine-max-windows [2] windows are spent; --no-quarantine\n"
      "   disables)\n"
      "fault spec (clauses ';'-separated, see src/scenario/faults.h):\n"
      "  loss:<target>:<prob>[:<start_s>:<dur_s>]\n"
      "  degrade:<target>:<extra_ms>:<jitter_ms>[:<start_s>:<dur_s>]\n"
      "  crash:<target>:<start_s>:<dur_s>\n"
      "  churn:<events>:<start_s>:<period_s>:<down_s>\n"
      "  die:<target>[:<start_s>]\n"
      "  diurnal:<target>:<peak_ms>:<period_s>[:<steps>:<periods>]\n"
      "  flash:<target>:<start_s>:<dur_s>:<extra_ms>:<loss_prob>\n"
      "  (<target> = scan-node index or '*'; e.g. \"loss:*:0.05;churn:2:30:60:120\")\n"
      "  (--scenario loads a declarative hostile-network file — topology +\n"
      "   dynamics + adversaries — by library name or path; explicit flags\n"
      "   still override its defaults. See `ting scenario list` and\n"
      "   examples/scenarios/*.ting; format in src/scenario/scenario_file.h)\n"
      "  scenario  scenario library tooling             (list | show <name|path> [--raw] |\n"
      "                                                  validate <name|path>)\n"
      "  daemon    continuous scan service              (--relays --epochs --budget --ttl-hours\n"
      "                                                  --epoch-hours --churn --rejoin --absent\n"
      "                                                  --coverage --samples --shards --pool\n"
      "                                                  --faults --seed --out --csv --resume\n"
      "                                                  --synthetic [N] --noise --fail-rate\n"
      "                                                  --scenario name|file)\n"
      "  (scans the whole consensus in epochs: each epoch applies churn, plans\n"
      "   a delta worklist [new pairs first, then TTL-expired oldest-first, cut\n"
      "   to --budget pairs], measures it deterministically, and checkpoints the\n"
      "   sparse binary matrix at <out>, state at <out>.state, journal at\n"
      "   <out>.journal, half cache at <out>.halves. SIGTERM/kill at any point\n"
      "   resumes into the same epoch with --resume, byte-identically for\n"
      "   churn-only runs. exit: 0 converged to --coverage, 1 not converged,\n"
      "   130 interrupted)\n"
      "  (--synthetic [N] answers pairs from the topology's base-RTT table plus\n"
      "   deterministic jitter [--noise ms] and faults [--fail-rate p] — no\n"
      "   circuit simulation, so daemon logic runs at the paper's full\n"
      "   consensus: ting daemon --synthetic 6000 --budget 500000. Epochs are\n"
      "   planned incrementally in O(churn + expired + budget) rather than by\n"
      "   an all-pairs census; --no-incremental restores the full census\n"
      "   [identical plans, pinned by tests], --no-journal trades pair-level\n"
      "   crash resume for epoch-level to skip per-record fsyncs)\n"
      "  serve     daemon + path-selection serving      (--relays --epochs --budget --churn\n"
      "                                                  --samples --shards --candidates\n"
      "                                                  --out --resume --synthetic [N]\n"
      "                                                  --float32 --scenario name|file)\n"
      "  (runs the continuous scan with the serving layer attached: each epoch\n"
      "   checkpoint publishes an immutable matrix snapshot + detour index via\n"
      "   one atomic pointer swap, so path queries never lock and never see a\n"
      "   half-updated epoch; --float32 halves the dense snapshot image)\n"
      "  query     path-selection queries off a matrix  (--matrix [--float32], then one of:\n"
      "                                                  --pair i,j | --through i --k n |\n"
      "                                                  --band lo:hi --length l --want n)\n"
      "  convert   matrix format conversion             (--matrix in [--csv out] [--bin out])\n"
      "  tiv       triangle-inequality report           (--matrix)\n"
      "  deanon    deanonymization strategy comparison  (--matrix --runs)\n"
      "  coords    Vivaldi-embedding comparison         (--matrix --percent --seed)\n"
      "  coverage  consensus timeline + host classes    (--days --relays)\n"
      "  (tiv/deanon/coords accept scan CSVs and daemon sparse binaries alike)\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    // `scenario` takes positional operands (names), not --flag pairs.
    if (cmd == "scenario") return cmd_scenario(argc, argv);
    const Args args = Args::parse(argc, argv, 2);
    if (cmd == "measure") return cmd_measure(args);
    if (cmd == "scan") return cmd_scan(args);
    if (cmd == "daemon") return cmd_daemon(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "query") return cmd_query(args);
    if (cmd == "convert") return cmd_convert(args);
    if (cmd == "tiv") return cmd_tiv(args);
    if (cmd == "deanon") return cmd_deanon(args);
    if (cmd == "coords") return cmd_coords(args);
    if (cmd == "coverage") return cmd_coverage(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
