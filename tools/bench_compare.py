#!/usr/bin/env python3
"""CI gates over BENCH_scan.json (bench/parallel_scan_bench.cpp output).

Two subcommands, both stdlib-only:

  gate-speedup FRESH.json [--min-speedup 2.0] [--min-cpus 4]
      Fail if the fresh run's host had >= --min-cpus CPUs but the sharded
      engine's wall-clock speedup_4_vs_1 came in under --min-speedup. On a
      host with fewer CPUs the gate records the numbers and passes (the
      speedup is core-bound, not engine-bound — the committed baseline was
      produced on a 1-CPU container and reads 0.944).

  gate-regression BASELINE.json FRESH.json [--max-regression 0.15]
      Fail if the optimizations leg regressed: the fresh
      optimizations.throughput_speedup must be at least
      (1 - max_regression) x the baseline's. The speedup is a
      within-run ratio (optimized vs cold pairs/vhour on the same host and
      scale), so it is comparable across machines where raw pairs/vhour is
      not; absolute pairs/vhour is additionally compared only when the two
      runs measured the same leg (same pairs and samples_per_circuit).

  gate-construct FRESH.json [--min-speedup 5.0]
      Gate over the world-construction leg: fail unless instantiating the
      shard worlds over a shared immutable topology was at least
      --min-speedup cheaper than the legacy clone-per-shard path. Both
      sides measure what workers pay inside the factory call (the
      ScanReport.world_construct_ms quantity); the topology's one-time
      build on the coordinating thread is reported separately, since the
      scan needs it regardless to derive the node list. The leg runs at a
      fixed 100 relays x 4 shards (not scaled by TING_BENCH_SCALE), so the
      ratio is stable across hosts: it measures work eliminated (per-shard
      keygen, geography, base-RTT table), not host speed.

  gate-serve FRESH.json [--min-qps 10000]
      Gate over BENCH_serve.json (bench/serve_bench.cpp): fail unless the
      path server sustained --min-qps queries/sec *while* the scan daemon
      was publishing snapshots, and every daemon epoch actually published.
      The floor is deliberately conservative (measured throughput is
      ~1000x higher on a 1-CPU container): it catches an accidental lock
      or a per-query rebuild, not host-speed variance.

  gate-scale FRESH.json [--min-speedup 10] [--min-relays 6000]
              [--max-daemon-rss-mb 2048] [--max-peak-rss-mb 4096]
      Gate over BENCH_daemon.json's paper-scale leg (the synthetic
      6,000-relay environment). Always fails if the incremental planner's
      plan diverged from plan_delta's (a correctness bug). When the leg ran
      at >= --min-relays, additionally requires the incremental planner to
      beat the full C(n,2) census by --min-speedup and caps resident
      memory: --max-daemon-rss-mb after the budgeted daemon epochs,
      --max-peak-rss-mb after the 18M-entry full-mesh fill. Below
      --min-relays (a TING_BENCH_SCALE-reduced run) the speedup and RSS
      are recorded but informational — both are scale-bound, and the
      equality check still gates.

Exit status: 0 = pass, 1 = gate failed, 2 = unusable input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def require(doc, path, *keys):
    cur = doc
    for k in keys:
        if not isinstance(cur, dict) or k not in cur:
            print(f"bench_compare: {path} is missing {'.'.join(keys)}",
                  file=sys.stderr)
            sys.exit(2)
        cur = cur[k]
    return cur


def gate_speedup(args):
    doc = load(args.fresh)
    cpus = require(doc, args.fresh, "host_cpus")
    speedup = require(doc, args.fresh, "speedup_4_vs_1")
    identical = require(doc, args.fresh, "bit_identical")
    print(f"sharded scan: host_cpus={cpus} speedup_4_vs_1={speedup} "
          f"bit_identical={identical}")
    if not identical:
        print("FAIL: shard counts disagreed on the merged matrix")
        return 1
    if cpus < args.min_cpus:
        print(f"PASS (informational): {cpus} < {args.min_cpus} CPUs, "
              "wall-clock speedup is core-bound on this host")
        return 0
    if speedup < args.min_speedup:
        print(f"FAIL: {cpus}-CPU host but speedup_4_vs_1={speedup} "
              f"< {args.min_speedup}")
        return 1
    print(f"PASS: speedup_4_vs_1={speedup} >= {args.min_speedup}")
    return 0


def gate_regression(args):
    base = load(args.baseline)
    fresh = load(args.fresh)
    b = require(base, args.baseline, "optimizations", "throughput_speedup")
    f = require(fresh, args.fresh, "optimizations", "throughput_speedup")
    floor = b * (1.0 - args.max_regression)
    print(f"optimizations leg: baseline throughput_speedup={b} "
          f"fresh={f} floor={floor:.3f}")
    failed = False
    if f < floor:
        print(f"FAIL: throughput_speedup regressed more than "
              f"{args.max_regression:.0%}")
        failed = True

    # Absolute pairs/vhour is host- and scale-sensitive; only comparable
    # when both runs measured the same leg.
    same_leg = all(
        require(base, args.baseline, "optimizations", k)
        == require(fresh, args.fresh, "optimizations", k)
        for k in ("pairs",)
    ) and require(base, args.baseline, "samples_per_circuit") == require(
        fresh, args.fresh, "samples_per_circuit")
    if same_leg:
        pb = require(base, args.baseline, "optimizations",
                     "optimized_pairs_per_vhour")
        pf = require(fresh, args.fresh, "optimizations",
                     "optimized_pairs_per_vhour")
        pfloor = pb * (1.0 - args.max_regression)
        print(f"optimized pairs/vhour: baseline={pb} fresh={pf} "
              f"floor={pfloor:.2f}")
        if pf < pfloor:
            print(f"FAIL: optimized pairs/vhour regressed more than "
                  f"{args.max_regression:.0%}")
            failed = True
    else:
        print("pairs/vhour comparison skipped: runs measured different legs")

    if not failed:
        print("PASS: no bench regression")
    return 1 if failed else 0


def gate_construct(args):
    doc = load(args.fresh)
    legacy = require(doc, args.fresh, "world_construction", "legacy_clone_ms")
    shared = require(doc, args.fresh, "world_construction",
                     "shared_topology_ms")
    speedup = require(doc, args.fresh, "world_construction",
                      "construct_speedup")
    reseed = require(doc, args.fresh, "world_construction", "reseed_us")
    print(f"world construction: legacy_clone_ms={legacy} "
          f"shared_topology_ms={shared} construct_speedup={speedup} "
          f"reseed_us={reseed}")
    if speedup < args.min_speedup:
        print(f"FAIL: shared-topology construction only {speedup}x faster "
              f"than clone-per-shard (< {args.min_speedup})")
        return 1
    print(f"PASS: construct_speedup={speedup} >= {args.min_speedup}")
    return 0


def gate_serve(args):
    doc = load(args.fresh)
    qps = require(doc, args.fresh, "concurrent_queries_per_sec")
    publishes = require(doc, args.fresh, "publishes")
    epochs = require(doc, args.fresh, "epochs")
    queries = require(doc, args.fresh, "concurrent_queries")
    print(f"path server: concurrent_queries_per_sec={qps} "
          f"({queries} queries), publishes={publishes}/{epochs} epochs")
    failed = False
    if publishes < epochs:
        print(f"FAIL: only {publishes} of {epochs} epochs published "
              "a snapshot")
        failed = True
    if qps < args.min_qps:
        print(f"FAIL: concurrent query throughput {qps} < {args.min_qps}")
        failed = True
    if not failed:
        print(f"PASS: sustained {qps} q/s >= {args.min_qps} "
              "concurrent with daemon epochs")
    return 1 if failed else 0


def gate_scale(args):
    doc = load(args.fresh)
    relays = require(doc, args.fresh, "scale", "relays")
    identical = require(doc, args.fresh, "scale", "planner_identical")
    speedup = require(doc, args.fresh, "scale", "planner_speedup")
    full_ms = require(doc, args.fresh, "scale", "plan_full_ms")
    incr_ms = require(doc, args.fresh, "scale", "plan_incremental_ms")
    fill_pairs = require(doc, args.fresh, "scale", "fill_pairs")
    matrix_mb = require(doc, args.fresh, "scale", "matrix_memory_mb")
    daemon_rss = require(doc, args.fresh, "scale", "daemon_rss_mb")
    peak_rss = require(doc, args.fresh, "scale", "peak_rss_mb")
    print(f"scale leg: relays={relays} fill_pairs={fill_pairs} "
          f"matrix_memory_mb={matrix_mb}")
    print(f"  planner: full={full_ms}ms incremental={incr_ms}ms "
          f"speedup={speedup}x identical={identical}")
    print(f"  rss: daemon={daemon_rss}MB peak={peak_rss}MB")
    if not identical:
        print("FAIL: incremental planner diverged from plan_delta")
        return 1
    if relays < args.min_relays:
        print(f"PASS (informational): {relays} < {args.min_relays} relays, "
              "speedup and RSS are scale-bound on this run")
        return 0
    failed = False
    if speedup < args.min_speedup:
        print(f"FAIL: incremental planner only {speedup}x faster than the "
              f"full census at {relays} relays (< {args.min_speedup})")
        failed = True
    if daemon_rss > args.max_daemon_rss_mb:
        print(f"FAIL: daemon epochs peaked at {daemon_rss} MB RSS "
              f"(> {args.max_daemon_rss_mb})")
        failed = True
    if peak_rss > args.max_peak_rss_mb:
        print(f"FAIL: process peaked at {peak_rss} MB RSS "
              f"(> {args.max_peak_rss_mb})")
        failed = True
    if not failed:
        print(f"PASS: identical plans, {speedup}x planner speedup, "
              f"RSS within caps at {relays} relays")
    return 1 if failed else 0


def main():
    p = argparse.ArgumentParser(description=__doc__)
    sub = p.add_subparsers(dest="cmd", required=True)

    sp = sub.add_parser("gate-speedup")
    sp.add_argument("fresh")
    sp.add_argument("--min-speedup", type=float, default=2.0)
    sp.add_argument("--min-cpus", type=int, default=4)
    sp.set_defaults(func=gate_speedup)

    rp = sub.add_parser("gate-regression")
    rp.add_argument("baseline")
    rp.add_argument("fresh")
    rp.add_argument("--max-regression", type=float, default=0.15)
    rp.set_defaults(func=gate_regression)

    cp = sub.add_parser("gate-construct")
    cp.add_argument("fresh")
    cp.add_argument("--min-speedup", type=float, default=5.0)
    cp.set_defaults(func=gate_construct)

    vp = sub.add_parser("gate-serve")
    vp.add_argument("fresh")
    vp.add_argument("--min-qps", type=float, default=10000)
    vp.set_defaults(func=gate_serve)

    gp = sub.add_parser("gate-scale")
    gp.add_argument("fresh")
    gp.add_argument("--min-speedup", type=float, default=10.0)
    gp.add_argument("--min-relays", type=int, default=6000)
    gp.add_argument("--max-daemon-rss-mb", type=float, default=2048)
    gp.add_argument("--max-peak-rss-mb", type=float, default=4096)
    gp.set_defaults(func=gate_scale)

    args = p.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
