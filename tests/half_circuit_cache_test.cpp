// Tests for HalfCircuitCache (memoized R_Cx/R_Cy entries: freshness TTL,
// churn invalidation, freshest-wins merging, CSV persistence) and for the
// measurer behaviors the cache composes with: memoized half probes,
// adaptive sample early-stop, and estimate_with_prefix's clamping when raw
// sample counts differ across probes.
#include <gtest/gtest.h>

#include "crypto/x25519.h"
#include "scenario/testbed.h"
#include "ting/half_circuit_cache.h"
#include "ting/measurer.h"
#include "util/assert.h"

namespace ting::meas {
namespace {

dir::Fingerprint fake_fp(std::uint8_t b) {
  crypto::X25519Key k;
  k.fill(b);
  return dir::Fingerprint::of_identity(k);
}

TEST(HalfCircuitCacheTest, StoreLookupAndMiss) {
  HalfCircuitCache c;
  const auto w = fake_fp(1), x = fake_fp(2), y = fake_fp(3);
  c.store(w, x, 12.5, TimePoint::from_ns(1000), 200);

  const auto* e = c.lookup(w, x);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->rtt_ms, 12.5);
  EXPECT_EQ(e->measured_at.ns(), 1000);
  EXPECT_EQ(e->samples, 200);

  EXPECT_EQ(c.lookup(w, y), nullptr);   // different relay
  EXPECT_EQ(c.lookup(x, w), nullptr);   // keys are (host, relay), not symmetric
  EXPECT_EQ(c.size(), 1u);
}

TEST(HalfCircuitCacheTest, ApparatusCannotBeItsOwnTarget) {
  HalfCircuitCache c;
  EXPECT_THROW(c.store(fake_fp(1), fake_fp(1), 1.0, TimePoint{}, 10),
               CheckError);
}

TEST(HalfCircuitCacheTest, FreshnessMirrorsMatrixTtl) {
  HalfCircuitCache c;
  const auto w = fake_fp(1), x = fake_fp(2);
  const TimePoint at = TimePoint{} + Duration::seconds(100);
  c.store(w, x, 9.0, at, 50);

  // Inside the TTL: fresh. Exactly at the boundary: still fresh (matches
  // RttMatrix::is_fresh's strict > comparison). Past it: stale but still
  // present for lookup.
  EXPECT_NE(c.fresh(w, x, at + Duration::seconds(3600)), nullptr);
  EXPECT_NE(c.fresh(w, x, at + c.max_age()), nullptr);
  EXPECT_EQ(c.fresh(w, x, at + c.max_age() + Duration::millis(1)), nullptr);
  EXPECT_NE(c.lookup(w, x), nullptr);
}

TEST(HalfCircuitCacheTest, ChurnInvalidationDropsRelayUnderEveryApparatus) {
  HalfCircuitCache c;
  const auto w1 = fake_fp(1), w2 = fake_fp(2);
  const auto churned = fake_fp(3), stable = fake_fp(4);
  c.store(w1, churned, 1.0, TimePoint{}, 10);
  c.store(w2, churned, 2.0, TimePoint{}, 10);
  c.store(w1, stable, 3.0, TimePoint{}, 10);

  EXPECT_EQ(c.erase_relay(churned), 2u);
  EXPECT_EQ(c.lookup(w1, churned), nullptr);
  EXPECT_EQ(c.lookup(w2, churned), nullptr);
  EXPECT_NE(c.lookup(w1, stable), nullptr);
  EXPECT_EQ(c.erase_relay(churned), 0u);
}

TEST(HalfCircuitCacheTest, MergeKeepsFreshestEntry) {
  const auto w = fake_fp(1), x = fake_fp(2), y = fake_fp(3);
  HalfCircuitCache a, b;
  a.store(w, x, 10.0, TimePoint::from_ns(100), 10);
  b.store(w, x, 20.0, TimePoint::from_ns(200), 20);  // newer: wins
  b.store(w, y, 30.0, TimePoint::from_ns(50), 30);   // only in b: adopted

  a.merge_freshest(b);
  EXPECT_EQ(a.lookup(w, x)->rtt_ms, 20.0);
  EXPECT_EQ(a.lookup(w, y)->rtt_ms, 30.0);

  // Ties keep the existing entry (deterministic merges regardless of order).
  HalfCircuitCache tie;
  tie.store(w, x, 99.0, TimePoint::from_ns(200), 5);
  a.merge_freshest(tie);
  EXPECT_EQ(a.lookup(w, x)->rtt_ms, 20.0);
}

TEST(HalfCircuitCacheTest, CsvRoundTrips) {
  HalfCircuitCache c;
  c.store(fake_fp(1), fake_fp(2), 12.25, TimePoint::from_ns(777), 200);
  c.store(fake_fp(1), fake_fp(3), 0.5, TimePoint{}, 15);

  const HalfCircuitCache back = HalfCircuitCache::from_csv(c.to_csv());
  EXPECT_EQ(back.size(), 2u);
  const auto* e = back.lookup(fake_fp(1), fake_fp(2));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->rtt_ms, 12.25);
  EXPECT_EQ(e->measured_at.ns(), 777);
  EXPECT_EQ(e->samples, 200);
}

TEST(HalfCircuitCacheTest, MalformedCsvRowsAreRejected) {
  const std::string header = "host_fp,relay_fp,rtt_ms,measured_at_ns,samples\n";
  const std::string a = fake_fp(1).hex(), b = fake_fp(2).hex();
  EXPECT_THROW(HalfCircuitCache::from_csv(header + "not,enough,cols\n"),
               CheckError);
  EXPECT_THROW(
      HalfCircuitCache::from_csv(header + a + "," + b + ",oops,777,200\n"),
      CheckError);
  EXPECT_THROW(
      HalfCircuitCache::from_csv(header + a + "," + b + ",12.5x,777,200\n"),
      CheckError);
  EXPECT_THROW(
      HalfCircuitCache::from_csv(header + a + "," + b + ",12.5,777,200junk\n"),
      CheckError);
}

// ---- measurer integration ---------------------------------------------------

scenario::TestbedOptions calm(std::uint64_t seed) {
  scenario::TestbedOptions o;
  o.seed = seed;
  o.differential_fraction = 0;
  o.latency.jitter_mean_ms = 0.05;
  o.latency.jitter_spike_prob = 0;
  return o;
}

TEST(HalfCircuitCacheTest, MeasurerMemoizesHalfProbes) {
  scenario::Testbed tb = scenario::planetlab31(calm(831));
  TingConfig cfg;
  cfg.samples = 20;
  TingMeasurer m(tb.ting(), cfg);
  HalfCircuitCache cache;
  m.set_half_cache(&cache);

  const PairResult cold = m.measure_blocking(tb.fp(0), tb.fp(1));
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_FALSE(cold.cx.memoized);
  EXPECT_FALSE(cold.cy.memoized);
  EXPECT_EQ(cold.circuits_built(), 3);
  EXPECT_EQ(cold.half_cache_hits(), 0);
  EXPECT_EQ(cache.size(), 2u);  // R_C0 and R_C1 stored

  // Second pair shares relay 0: its half probe is served from the cache and
  // skips a circuit entirely.
  const PairResult warm = m.measure_blocking(tb.fp(0), tb.fp(2));
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_TRUE(warm.cx.memoized);
  EXPECT_FALSE(warm.cy.memoized);
  EXPECT_EQ(warm.cx.min_rtt_ms, cold.cx.min_rtt_ms);
  EXPECT_EQ(warm.circuits_built(), 2);
  EXPECT_EQ(warm.half_cache_hits(), 1);
  EXPECT_EQ(cache.size(), 3u);

  // Fully warm: both halves memoized, one circuit built.
  const PairResult hot = m.measure_blocking(tb.fp(1), tb.fp(2));
  ASSERT_TRUE(hot.ok) << hot.error;
  EXPECT_EQ(hot.circuits_built(), 1);
  EXPECT_EQ(hot.half_cache_hits(), 2);
}

TEST(HalfCircuitCacheTest, MemoizedEstimateMatchesColdEstimate) {
  // Same pair measured cold in one world and with both halves memoized in a
  // world built from the same seed: Eq. (4)'s cancellation is unaffected by
  // where the half minima came from, so estimates agree to sampling noise.
  TingConfig cfg;
  cfg.samples = 30;
  scenario::TestbedOptions o = calm(832);
  o.forward_queue_scale = 0.05;

  scenario::Testbed cold_world = scenario::planetlab31(o);
  TingMeasurer cold_m(cold_world.ting(), cfg);
  const PairResult cold = cold_m.measure_blocking(cold_world.fp(2), cold_world.fp(3));
  ASSERT_TRUE(cold.ok) << cold.error;

  scenario::Testbed warm_world = scenario::planetlab31(o);
  TingMeasurer warm_m(warm_world.ting(), cfg);
  HalfCircuitCache cache;
  warm_m.set_half_cache(&cache);
  (void)warm_m.measure_blocking(warm_world.fp(2), warm_world.fp(3));
  const PairResult warm = warm_m.measure_blocking(warm_world.fp(2), warm_world.fp(3));
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.half_cache_hits(), 2);
  EXPECT_NEAR(warm.rtt_ms, cold.rtt_ms, 1.0);
}

TEST(HalfCircuitCacheTest, AdaptiveEarlyStopSavesSamplesWithoutBias) {
  scenario::Testbed tb = scenario::planetlab31(calm(833));
  TingConfig full;
  full.samples = 200;
  TingConfig adaptive = full;
  adaptive.adaptive_samples = true;
  // Aggressive stop rule: this test exercises the mechanism on a calm
  // world, not the conservative library defaults.
  adaptive.min_samples = 10;
  adaptive.plateau_samples = 10;
  adaptive.epsilon_ms = 0.05;

  TingMeasurer fm(tb.ting(), full);
  const PairResult f = fm.measure_blocking(tb.fp(4), tb.fp(5));
  ASSERT_TRUE(f.ok) << f.error;
  EXPECT_EQ(f.cxy.samples_taken, 200);
  EXPECT_EQ(f.samples_saved(), 0);

  TingMeasurer am(tb.ting(), adaptive);
  const PairResult a = am.measure_blocking(tb.fp(4), tb.fp(5));
  ASSERT_TRUE(a.ok) << a.error;
  // §4.4: the running minimum plateaus long before the 200-sample cap.
  EXPECT_LT(a.cxy.samples_taken, 200);
  EXPECT_GE(a.cxy.samples_taken, 10);  // min_samples floor
  EXPECT_EQ(a.samples_saved(),
            (200 - a.cxy.samples_taken) + (200 - a.cx.samples_taken) +
                (200 - a.cy.samples_taken));
  EXPECT_NEAR(a.rtt_ms, f.rtt_ms, 1.0);
}

TEST(HalfCircuitCacheTest, EstimateWithPrefixClampsToAvailableSamples) {
  scenario::Testbed tb = scenario::planetlab31(calm(834));
  TingConfig cfg;
  cfg.samples = 60;
  cfg.keep_raw_samples = true;
  cfg.adaptive_samples = true;  // probes may stop with < 60 raw samples
  cfg.min_samples = 10;
  cfg.plateau_samples = 10;
  cfg.epsilon_ms = 0.05;
  TingMeasurer m(tb.ting(), cfg);
  const PairResult r = m.measure_blocking(tb.fp(0), tb.fp(1));
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_LT(r.cxy.raw_samples_ms.size(), 60u);

  // Regression: k beyond an early-stopped probe's raw count used to read
  // past the end of raw_samples_ms; it must clamp instead. The full-prefix
  // estimate equals the reported estimate, and k=0 behaves like k=1.
  const double full = r.estimate_with_prefix(60);
  EXPECT_NEAR(full, r.rtt_ms, 1e-9);
  EXPECT_EQ(r.estimate_with_prefix(0), r.estimate_with_prefix(1));
  // Prefix estimates with any k are finite and sane.
  for (std::size_t k : {1u, 5u, 1000u})
    EXPECT_GT(r.estimate_with_prefix(k), -50.0);
}

TEST(HalfCircuitCacheTest, EstimateWithPrefixUsesCachedMinimumForMemoizedHalf) {
  scenario::Testbed tb = scenario::planetlab31(calm(835));
  TingConfig cfg;
  cfg.samples = 25;
  cfg.keep_raw_samples = true;
  TingMeasurer m(tb.ting(), cfg);
  HalfCircuitCache cache;
  m.set_half_cache(&cache);

  (void)m.measure_blocking(tb.fp(0), tb.fp(1));
  const PairResult warm = m.measure_blocking(tb.fp(0), tb.fp(2));
  ASSERT_TRUE(warm.ok) << warm.error;
  ASSERT_TRUE(warm.cx.memoized);
  ASSERT_TRUE(warm.cx.raw_samples_ms.empty());
  // A memoized half has no raw samples; the prefix estimate falls back to
  // its cached minimum instead of tripping the keep_raw_samples contract.
  const double est = warm.estimate_with_prefix(25);
  EXPECT_NEAR(est, warm.rtt_ms, 1e-9);
}

}  // namespace
}  // namespace ting::meas
